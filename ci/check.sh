#!/usr/bin/env bash
# CI gate: build + test in Release, then rebuild the concurrency-sensitive
# targets under ThreadSanitizer and run the core/shm/util/query suites
# (the parallel copy engine's and the parallel query scan's data-race
# surface).
#
# Usage: ci/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== Release build + full test suite ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

echo
echo "=== TSan build + core/shm/util/query suites ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCUBA_TSAN=ON \
  >/dev/null
cmake --build build-tsan -j "${JOBS}" \
  --target util_test shm_test core_test query_test server_test
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|ParallelFor|ByteBudget|ParallelCopy|ShutdownRestore|Shm|TableSegment|LeafMetadata|ParallelScan|VectorizedDiff|Aggregator'

echo
echo "=== OK ==="
