#!/usr/bin/env bash
# CI gate: build + test in Release, then rebuild the concurrency-sensitive
# targets under ThreadSanitizer and run the core/shm/util/query suites
# (the parallel copy engine's and the parallel query scan's data-race
# surface).
#
# Usage: ci/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== Release build + full test suite ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

echo
echo "=== Bench smoke: tiny-scale --json runs parse and carry metrics ==="
cmake --build build-release -j "${JOBS}" \
  --target bench_shutdown_restore bench_query
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
./build-release/bench/bench_shutdown_restore --smoke \
  --json "${SMOKE_DIR}/shutdown_restore.json" >/dev/null
./build-release/bench/bench_query --smoke \
  --json "${SMOKE_DIR}/query.json" >/dev/null
python3 - "${SMOKE_DIR}/shutdown_restore.json" "${SMOKE_DIR}/query.json" \
  <<'PYEOF'
import json, sys

PROFILE_KEYS = {
    "query_id", "wall_micros", "blocks_scanned", "blocks_time_pruned",
    "blocks_zone_pruned", "rows_scanned", "rows_matched", "bytes_decoded",
    "leaves_total", "leaves_responded", "unavailable_leaves", "prune_micros",
    "decode_micros", "kernel_micros", "merge_micros", "leaf_execute_micros",
    "fanout_queue_wait_micros", "cache_hit_buckets", "cache_miss_buckets",
}

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("results"), f"{path}: empty results"
    assert doc.get("schema_version") == 4, \
        f"{path}: missing/unexpected schema_version: {doc.get('schema_version')!r}"
    metrics = doc.get("metrics")
    assert isinstance(metrics, dict), f"{path}: missing metrics block"
    for key in ("counters", "gauges", "histograms"):
        assert key in metrics, f"{path}: metrics missing '{key}'"
    print(f"{path}: OK ({len(doc['results'])} results, "
          f"{len(metrics['counters'])} counters)")

# Schema v4: bench_query rows embed a complete QueryProfile each, plus a
# top-level profile + sampled span timeline for the observability leg.
with open(sys.argv[2]) as f:
    query = json.load(f)
for row in query["results"]:
    profile = row.get("profile")
    assert isinstance(profile, dict), f"row {row.get('case')}: no profile"
    missing = PROFILE_KEYS - profile.keys()
    assert not missing, f"row {row.get('case')}: profile missing {missing}"
assert PROFILE_KEYS <= query.get("profile", {}).keys(), \
    "top-level profile incomplete"
trace = query.get("trace")
assert isinstance(trace, dict) and trace.get("spans"), \
    "missing sampled-query trace section"
span_names = {s.get("name") for s in trace["spans"]}
for name in ("prune", "decode", "kernel"):
    assert name in span_names, f"trace missing '{name}' span: {span_names}"
print(f"{sys.argv[2]}: profile schema OK "
      f"({len(query['results'])} rows, {len(trace['spans'])} spans)")
PYEOF

echo
echo "=== SIMD/scalar equivalence: forced-scalar rerun must match digests ==="
SCUBA_FORCE_SCALAR=1 ./build-release/bench/bench_query --smoke \
  --json "${SMOKE_DIR}/query_scalar.json" >/dev/null
python3 - "${SMOKE_DIR}/query.json" "${SMOKE_DIR}/query_scalar.json" <<'PYEOF'
import json, sys

# Every (section, case, engine, threads) row must produce the same result
# digest whether the packed SIMD kernels ran or SCUBA_FORCE_SCALAR pinned
# the whole process to the scalar tier: a SIMD kernel may only ever be
# faster, never different.
def digests(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc["results"]:
        key = (row["section"], row["case"], row["engine"], row["threads"])
        out[key] = (row["result_digest"], row["rows_matched"])
    return out

simd, scalar = digests(sys.argv[1]), digests(sys.argv[2])
assert simd.keys() == scalar.keys(), \
    f"row sets differ: {simd.keys() ^ scalar.keys()}"
for key in sorted(simd):
    assert simd[key] == scalar[key], \
        f"{key}: simd {simd[key]} != forced-scalar {scalar[key]}"
print(f"{len(simd)} rows digest-identical under SCUBA_FORCE_SCALAR=1")
PYEOF

echo
echo "=== Self-stats smoke: __scuba_stats restart rows survive a rollover ==="
cmake --build build-release -j "${JOBS}" --target selfstats_rollover
./build-release/examples/selfstats_rollover

echo
echo "=== Slow-query-log smoke: a slow query's __scuba_queries row survives a rollover ==="
cmake --build build-release -j "${JOBS}" --target slow_query_log
./build-release/examples/slow_query_log

echo
echo "=== TSan build + core/shm/util/query/obs suites ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCUBA_TSAN=ON \
  >/dev/null
cmake --build build-tsan -j "${JOBS}" \
  --target util_test shm_test core_test query_test server_test obs_test
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|ParallelFor|ByteBudget|ParallelCopy|ShutdownRestore|Shm|TableSegment|LeafMetadata|ParallelScan|VectorizedDiff|Aggregator|ObsMetrics|ObsTracer|RestartTrace|RestartHeartbeat|StatsExporter|SelfStats|QueryTrace|SlowQueryLog|ProfileDeterminism|PackedKernelFuzz|PackedScan|ResultCache'

echo
echo "=== OK ==="
