#!/usr/bin/env bash
# CI gate: build + test in Release, then rebuild the concurrency-sensitive
# targets under ThreadSanitizer and run the core/shm/util/query suites
# (the parallel copy engine's and the parallel query scan's data-race
# surface).
#
# Usage: ci/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== Release build + full test suite ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

echo
echo "=== Bench smoke: tiny-scale --json runs parse and carry metrics ==="
cmake --build build-release -j "${JOBS}" \
  --target bench_shutdown_restore bench_query
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
./build-release/bench/bench_shutdown_restore --smoke \
  --json "${SMOKE_DIR}/shutdown_restore.json" >/dev/null
./build-release/bench/bench_query --smoke \
  --json "${SMOKE_DIR}/query.json" >/dev/null
python3 - "${SMOKE_DIR}/shutdown_restore.json" "${SMOKE_DIR}/query.json" \
  <<'PYEOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("results"), f"{path}: empty results"
    assert doc.get("schema_version") == 2, \
        f"{path}: missing/unexpected schema_version: {doc.get('schema_version')!r}"
    metrics = doc.get("metrics")
    assert isinstance(metrics, dict), f"{path}: missing metrics block"
    for key in ("counters", "gauges", "histograms"):
        assert key in metrics, f"{path}: metrics missing '{key}'"
    print(f"{path}: OK ({len(doc['results'])} results, "
          f"{len(metrics['counters'])} counters)")
PYEOF

echo
echo "=== Self-stats smoke: __scuba_stats restart rows survive a rollover ==="
cmake --build build-release -j "${JOBS}" --target selfstats_rollover
./build-release/examples/selfstats_rollover

echo
echo "=== TSan build + core/shm/util/query/obs suites ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCUBA_TSAN=ON \
  >/dev/null
cmake --build build-tsan -j "${JOBS}" \
  --target util_test shm_test core_test query_test server_test obs_test
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|ParallelFor|ByteBudget|ParallelCopy|ShutdownRestore|Shm|TableSegment|LeafMetadata|ParallelScan|VectorizedDiff|Aggregator|ObsMetrics|ObsTracer|RestartTrace|RestartHeartbeat|StatsExporter|SelfStats'

echo
echo "=== OK ==="
