// E4 — THE headline result (paper §1, §6, Table-equivalent):
//
//   "We can restart one Scuba machine in 2-3 minutes using shared memory
//    versus 2-3 hours from disk."
//   "Reading about 120 GB of data from disk takes 20-25 minutes; reading
//    that data in its disk format and translating it to its in-memory
//    format takes 2.5-3 hours."
//
// The same dataset is recovered through both paths. The disk path's raw
// read is throttled to the paper's spinning-disk rate (~90 MB/s) so its
// read-vs-translate split is faithful; the translation cost is real (the
// backup format genuinely requires per-value decode + re-encode).
// Measured per-byte rates are then extrapolated to the paper's 120 GB
// machine to compare shapes.

#include <cstdio>

#include "bench_util.h"
#include "core/restart_manager.h"
#include "disk/backup_writer.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;
using bench_util::MiB;
using bench_util::Rate;

constexpr uint64_t kDiskBytesPerSec = 90ull << 20;  // paper-era disk

struct PathTimes {
  double disk_read_s = 0;
  double disk_translate_s = 0;
  double shm_s = 0;
  uint64_t disk_file_bytes = 0;
  uint64_t heap_bytes = 0;
};

// Builds a leaf whose backup is ~target_bytes on disk, then recovers it
// via both paths.
StatusOr<PathTimes> Measure(BenchEnv* env, uint64_t target_disk_bytes,
                            int tag) {
  PathTimes times;
  std::string backup_dir =
      env->dir() + "/leaf_" + std::to_string(tag);

  RestartConfig config;
  config.namespace_prefix = env->prefix();
  config.leaf_id = static_cast<uint32_t>(tag);
  config.backup_dir = backup_dir;
  config.restore.verify_checksums = false;
  config.disk.throttle_bytes_per_sec = kDiskBytesPerSec;

  // Ingest through the backup writer so the disk file is the real format.
  {
    SCUBA_RETURN_IF_ERROR(EnsureDir(backup_dir));
    BackupWriter writer(backup_dir);
    SCUBA_RETURN_IF_ERROR(writer.Init());
    LeafMap leaf_map;
    RowGeneratorConfig gconfig;
    gconfig.seed = static_cast<uint64_t>(tag) * 13 + 1;
    RowGenerator gen(gconfig);
    Table* table = leaf_map.GetOrCreateTable("service_logs");
    while (writer.total_bytes_written() < target_disk_bytes) {
      std::vector<Row> batch = gen.NextBatch(8192);
      SCUBA_RETURN_IF_ERROR(writer.AppendBatch("service_logs", batch));
      SCUBA_RETURN_IF_ERROR(table->AddRows(batch, gen.current_time()));
    }
    SCUBA_RETURN_IF_ERROR(writer.SyncAll());
    SCUBA_RETURN_IF_ERROR(table->SealWriteBuffer(0));
    times.heap_bytes = leaf_map.TotalMemoryBytes();

    // Park the state in shared memory for the shm-path measurement.
    RestartManager manager(config);
    ShutdownStats sstats;
    SCUBA_RETURN_IF_ERROR(manager.Shutdown(&leaf_map, &sstats));
  }

  // Path A: shared memory (consumes the segments).
  {
    RestartManager manager(config);
    LeafMap recovered;
    SCUBA_ASSIGN_OR_RETURN(RecoveryResult result,
                           manager.Recover(&recovered, 1500000000));
    if (result.source != RecoverySource::kSharedMemory) {
      return Status::Internal("expected shm recovery");
    }
    times.shm_s = static_cast<double>(result.shm_stats.elapsed_micros) / 1e6;
  }

  // Path B: disk (shm is gone; the manager falls back).
  {
    RestartManager manager(config);
    LeafMap recovered;
    SCUBA_ASSIGN_OR_RETURN(RecoveryResult result,
                           manager.Recover(&recovered, 1500000000));
    if (result.source != RecoverySource::kDisk) {
      return Status::Internal("expected disk recovery");
    }
    times.disk_read_s =
        static_cast<double>(result.disk_stats.read_micros) / 1e6;
    times.disk_translate_s =
        static_cast<double>(result.disk_stats.translate_micros) / 1e6;
    times.disk_file_bytes = result.disk_stats.bytes_read;
  }
  return times;
}

int Run(const std::string& json_path) {
  BenchEnv env("e4");
  bench_util::JsonWriter json("disk_vs_shm");
  std::printf(
      "E4: disk recovery vs shared-memory recovery (paper §1/§6 headline)\n"
      "disk read throttled to %.0f MB/s to model the paper's disks; "
      "translation cost is real\n\n",
      static_cast<double>(kDiskBytesPerSec) / 1e6);
  std::printf("%10s %10s %11s %12s %10s %9s\n", "disk_MiB", "read_s",
              "translate_s", "disk_total_s", "shm_s", "speedup");

  PathTimes last;
  int tag = 0;
  for (uint64_t target : {8ull << 20, 32ull << 20, 96ull << 20}) {
    auto times = Measure(&env, target, tag++);
    if (!times.ok()) {
      std::fprintf(stderr, "measure failed: %s\n",
                   times.status().ToString().c_str());
      return 1;
    }
    last = *times;
    double disk_total = last.disk_read_s + last.disk_translate_s;
    std::printf("%10.0f %10.2f %11.2f %12.2f %10.3f %8.0fx\n",
                MiB(last.disk_file_bytes), last.disk_read_s,
                last.disk_translate_s, disk_total, last.shm_s,
                disk_total / last.shm_s);
    json.Row();
    json.Field("disk_file_bytes", last.disk_file_bytes);
    json.Field("heap_bytes", last.heap_bytes);
    json.Field("disk_read_seconds", last.disk_read_s);
    json.Field("disk_translate_seconds", last.disk_translate_s);
    json.Field("shm_seconds", last.shm_s);
    json.Field("speedup", disk_total / last.shm_s);
  }

  // Extrapolate to the paper's machine: 120 GB on disk.
  double gb120 = 120.0 * (1ull << 30);
  double read_rate = Rate(last.disk_file_bytes,
                          static_cast<int64_t>(last.disk_read_s * 1e6));
  double translate_rate =
      Rate(last.disk_file_bytes,
           static_cast<int64_t>(last.disk_translate_s * 1e6));
  double shm_rate =
      Rate(last.heap_bytes, static_cast<int64_t>(last.shm_s * 1e6));
  // In-memory bytes for 120 GB of disk data (per-machine heap ~ disk size
  // in the paper; our compressed heap is smaller per disk byte).
  double heap_per_disk = static_cast<double>(last.heap_bytes) /
                         static_cast<double>(last.disk_file_bytes);

  double read_s = gb120 / read_rate;
  double translate_s = gb120 / translate_rate;
  double shm_s = gb120 * heap_per_disk / shm_rate;
  std::printf("\nextrapolation to the paper's 120 GB machine "
              "(measured rates, modeled disk):\n");
  std::printf("  disk: read %5.1f min + translate %6.1f min = %6.1f min "
              "(paper: 20-25 min read, 2.5-3 h total)\n",
              read_s / 60, translate_s / 60, (read_s + translate_s) / 60);
  std::printf("  shm:  %4.1f min including process overhead budget "
              "(paper: 2-3 min)\n",
              (shm_s + 60.0) / 60);
  std::printf("  speedup: %.0fx (paper: ~60x)\n",
              (read_s + translate_s) / (shm_s + 60.0));
  std::printf("  translate/read ratio: %.1fx (paper: ~6-8x)\n",
              translate_s / read_s);

  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace scuba

int main(int argc, char** argv) {
  return scuba::Run(scuba::bench_util::JsonPathFromArgs(argc, argv));
}
