// E2 — Column compression (paper §2.1).
//
// "Compression reduces the size of the row block column by a factor of
// about 30 ... a combination of dictionary encoding, bit packing, delta
// encoding, and lz4 compression, with at least two methods applied to each
// column." This harness builds a service-log row block and prints, per
// column: the chain chosen, raw vs stored bytes, and the ratio; then the
// whole-block ratio to compare against the paper's ~30x.

#include <cstdio>

#include "bench_util.h"
#include "columnar/table.h"
#include "compress/column_codec.h"
#include "ingest/row_generator.h"

namespace scuba {
namespace {

uint64_t RawColumnBytes(const RowBlockColumn& column) {
  return column.uncompressed_bytes();
}

int Run() {
  RowGeneratorConfig config;
  config.seed = 7;
  RowGenerator gen(config);

  Table table("service_logs");
  constexpr size_t kRows = 65536;
  if (!table.AddRows(gen.NextBatch(kRows), 0).ok()) return 1;
  if (!table.SealWriteBuffer(0).ok()) return 1;
  const RowBlock* block = table.row_block(0);

  std::printf("E2: column compression on %zu service-log rows (paper §2.1: "
              "~30x)\n\n",
              kRows);
  std::printf("%-12s %-10s %-22s %12s %12s %8s\n", "column", "type", "chain",
              "raw_bytes", "stored", "ratio");

  uint64_t total_raw = 0;
  uint64_t total_stored = 0;
  for (size_t c = 0; c < block->num_columns(); ++c) {
    const RowBlockColumn* column = block->column(c);
    uint64_t raw = RawColumnBytes(*column);
    uint64_t stored = column->total_bytes();
    total_raw += raw;
    total_stored += stored;
    std::printf("%-12s %-10s %-22s %12llu %12llu %7.1fx\n",
                block->schema().column(c).name.c_str(),
                std::string(ColumnTypeName(column->type())).c_str(),
                column_codec::ChainToString(column->compression_chain())
                    .c_str(),
                static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(stored),
                static_cast<double>(raw) / static_cast<double>(stored));
  }
  std::printf("%-12s %-10s %-22s %12llu %12llu %7.1fx\n", "TOTAL", "", "",
              static_cast<unsigned long long>(total_raw),
              static_cast<unsigned long long>(total_stored),
              static_cast<double>(total_raw) /
                  static_cast<double>(total_stored));
  std::printf("\npaper claim: ~30x with >=2 methods per column; "
              "every chain above has >=2 stages except raw fallbacks\n");
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Run(); }
