#ifndef SCUBA_BENCH_BENCH_UTIL_H_
#define SCUBA_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <string>

#include "columnar/leaf_map.h"
#include "ingest/row_generator.h"
#include "shm/shm_segment.h"

namespace scuba {
namespace bench_util {

/// A /dev/shm + /tmp namespace unique to this process, scrubbed on exit.
class BenchEnv {
 public:
  explicit BenchEnv(const std::string& tag)
      : prefix_("scbench_" + std::to_string(getpid()) + "_" + tag),
        dir_("/tmp/" + prefix_) {
    ShmSegment::RemoveAll("/" + prefix_);
    std::string cmd = "rm -rf " + dir_ + " && mkdir -p " + dir_;
    if (std::system(cmd.c_str()) != 0) std::abort();
  }
  ~BenchEnv() {
    ShmSegment::RemoveAll("/" + prefix_);
    std::string cmd = "rm -rf " + dir_;
    if (std::system(cmd.c_str()) != 0) {
      // best effort
    }
  }

  const std::string& prefix() const { return prefix_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string prefix_;
  std::string dir_;
};

/// Sum of sealed row-block bytes (excludes write-buffer estimates, which
/// overstate pre-compression size by ~10x).
inline uint64_t SealedBytes(const LeafMap& leaf_map) {
  uint64_t bytes = 0;
  for (const std::string& name : leaf_map.TableNames()) {
    const Table* table = leaf_map.GetTable(name);
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      if (table->row_block(b) != nullptr) {
        bytes += table->row_block(b)->MemoryBytes();
      }
    }
  }
  return bytes;
}

/// Fills a leaf map with service-log tables until its SEALED (compressed)
/// heap size is at least `target_bytes`. Returns the actual heap bytes.
inline uint64_t FillLeafToBytes(LeafMap* leaf_map, uint64_t target_bytes,
                                size_t num_tables = 4, uint64_t seed = 42) {
  RowGeneratorConfig config;
  config.seed = seed;
  RowGenerator gen(config);
  size_t t = 0;
  while (SealedBytes(*leaf_map) < target_bytes) {
    Table* table =
        leaf_map->GetOrCreateTable("table_" + std::to_string(t % num_tables));
    if (!table->AddRows(gen.NextBatch(16384), gen.current_time()).ok()) {
      std::abort();
    }
    if (!table->SealWriteBuffer(gen.current_time()).ok()) std::abort();
    ++t;
  }
  return leaf_map->TotalMemoryBytes();
}

inline double MiB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double Rate(uint64_t bytes, int64_t micros) {
  return micros <= 0 ? 0.0
                     : static_cast<double>(bytes) /
                           (static_cast<double>(micros) / 1e6);
}

}  // namespace bench_util
}  // namespace scuba

#endif  // SCUBA_BENCH_BENCH_UTIL_H_
