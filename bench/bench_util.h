#ifndef SCUBA_BENCH_BENCH_UTIL_H_
#define SCUBA_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "columnar/leaf_map.h"
#include "ingest/row_generator.h"
#include "shm/shm_segment.h"
#include "util/clock.h"

namespace scuba {
namespace bench_util {

/// The one monotonic timer every bench uses (steady clock, via
/// util/clock.h's Stopwatch): milliseconds consumed by a single call of
/// `run`. Benches wanting best-of-N wrap this in their own loop.
template <typename Run>
inline double TimedMillis(const Run& run) {
  Stopwatch watch;
  run();
  return static_cast<double>(watch.ElapsedMicros()) / 1000.0;
}

/// A /dev/shm + /tmp namespace unique to this process, scrubbed on exit.
class BenchEnv {
 public:
  explicit BenchEnv(const std::string& tag)
      : prefix_("scbench_" + std::to_string(getpid()) + "_" + tag),
        dir_("/tmp/" + prefix_) {
    ShmSegment::RemoveAll("/" + prefix_);
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_, ec);
    if (ec) std::abort();
  }
  ~BenchEnv() {
    ShmSegment::RemoveAll("/" + prefix_);
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort
  }

  const std::string& prefix() const { return prefix_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string prefix_;
  std::string dir_;
};

/// Sum of sealed row-block bytes (excludes write-buffer estimates, which
/// overstate pre-compression size by ~10x).
inline uint64_t SealedBytes(const LeafMap& leaf_map) {
  uint64_t bytes = 0;
  for (const std::string& name : leaf_map.TableNames()) {
    const Table* table = leaf_map.GetTable(name);
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      if (table->row_block(b) != nullptr) {
        bytes += table->row_block(b)->MemoryBytes();
      }
    }
  }
  return bytes;
}

/// Fills a leaf map with service-log tables until its SEALED (compressed)
/// heap size is at least `target_bytes`. Returns the actual heap bytes.
inline uint64_t FillLeafToBytes(LeafMap* leaf_map, uint64_t target_bytes,
                                size_t num_tables = 4, uint64_t seed = 42) {
  RowGeneratorConfig config;
  config.seed = seed;
  RowGenerator gen(config);
  size_t t = 0;
  while (SealedBytes(*leaf_map) < target_bytes) {
    Table* table =
        leaf_map->GetOrCreateTable("table_" + std::to_string(t % num_tables));
    if (!table->AddRows(gen.NextBatch(16384), gen.current_time()).ok()) {
      std::abort();
    }
    if (!table->SealWriteBuffer(gen.current_time()).ok()) std::abort();
    ++t;
  }
  return leaf_map->TotalMemoryBytes();
}

inline double MiB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double Rate(uint64_t bytes, int64_t micros) {
  return micros <= 0 ? 0.0
                     : static_cast<double>(bytes) /
                           (static_cast<double>(micros) / 1e6);
}

/// Minimal machine-readable bench output: a flat JSON document of the form
///   {"bench": "<name>", "results": [{...}, {...}], "<section>": {...}}
/// where each result row is a string->scalar map. Rows are built with
/// Row()/Field(); extra top-level sections (e.g. the "metrics" registry
/// snapshot or a "trace" span timeline) are attached with Section(); the
/// document is written once at the end — enough for the plotting/CI
/// scripts without dragging in a JSON library.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Starts a new result row.
  void Row() { rows_.emplace_back(); }

  void Field(const std::string& key, const std::string& value) {
    Append(key, "\"" + Escaped(value) + "\"");
  }
  void Field(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    Append(key, os.str());
  }
  void Field(const std::string& key, uint64_t value) {
    Append(key, std::to_string(value));
  }
  void Field(const std::string& key, int64_t value) {
    Append(key, std::to_string(value));
  }
  void Field(const std::string& key, bool value) {
    Append(key, value ? "true" : "false");
  }

  /// Attaches a pre-encoded JSON value as a field of the current row
  /// (e.g. a QueryProfile::ToJson() object); `raw_json` must be valid
  /// JSON.
  void RawField(const std::string& key, std::string raw_json) {
    Append(key, std::move(raw_json));
  }

  /// Attaches a pre-encoded JSON value as a top-level section; `raw_json`
  /// must be valid JSON (e.g. MetricsRegistry::ToJson() or
  /// PhaseTracer::ToJson()). A repeated key replaces the earlier value.
  void Section(const std::string& key, std::string raw_json) {
    for (auto& [k, v] : sections_) {
      if (k == key) {
        v = std::move(raw_json);
        return;
      }
    }
    sections_.emplace_back(key, std::move(raw_json));
  }

  /// Writes the document; returns false (and prints to stderr) on failure.
  bool WriteTo(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "json: cannot open %s\n", path.c_str());
      return false;
    }
    out << "{\"bench\": \"" << Escaped(bench_name_) << "\", \"results\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{";
      for (size_t f = 0; f < rows_[i].size(); ++f) {
        if (f > 0) out << ", ";
        out << "\"" << Escaped(rows_[i][f].first)
            << "\": " << rows_[i][f].second;
      }
      out << "}";
    }
    out << "]";
    for (const auto& [key, raw] : sections_) {
      out << ", \"" << Escaped(key) << "\": " << raw;
    }
    out << "}\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') r.push_back('\\');
      r.push_back(c);
    }
    return r;
  }
  void Append(const std::string& key, std::string encoded) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, std::move(encoded));
  }

  std::string bench_name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parses a `--json <path>` argument pair; returns "" when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

/// True when a bare flag (e.g. "--smoke") is present.
inline bool FlagFromArgs(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

}  // namespace bench_util
}  // namespace scuba

#endif  // SCUBA_BENCH_BENCH_UTIL_H_
