// E6 — Why 8 leaf servers per machine, and why batches spread across
// machines (paper §2, §4.2, §6):
//
//   "Memory bandwidth for a machine is constant, no matter how many
//    servers try to roll over, so it is much better to restart eight leaf
//    servers on eight different machines in parallel than to restart all
//    eight leaf servers on the same machine at once."
//   "By running N leaf servers on each machine ... we get close to N times
//    as much disk bandwidth (for disk recovery) and memory bandwidth (for
//    shared memory recovery)."
//
// Two tables: (a) whole-cluster restart time vs per-machine concurrency,
// for both recovery paths; (b) rollover duration for 1 vs 8 leaves per
// machine at equal per-machine data.

#include <cstdio>

#include "cluster/rollover_sim.h"

namespace scuba {
namespace {

int Run() {
  std::printf("E6: per-machine bandwidth is the restart bottleneck "
              "(§2, §4.2, §6)\n\n");

  RolloverSimConfig config;  // 100 machines x 8 leaves x 15 GB

  std::printf("(a) whole-cluster restart: all machines restart all 8 "
              "leaves, k at a time per machine\n");
  std::printf("%20s %18s %18s\n", "k (per machine)", "shm_total_s",
              "disk_total_h");
  for (size_t k : {1u, 2u, 4u, 8u}) {
    config.path = RecoveryPath::kSharedMemory;
    double shm = SimulateFullClusterRestartSeconds(config, k);
    config.path = RecoveryPath::kDisk;
    double disk = SimulateFullClusterRestartSeconds(config, k);
    std::printf("%20zu %18.0f %18.2f\n", k, shm, disk / 3600);
  }
  std::printf("-> the copy/read time barely changes with k (bandwidth is "
              "shared); only fixed per-leaf overhead amortizes.\n\n");

  std::printf("(b) 2%%-batch rollover duration: 1 big leaf per machine vs "
              "8 small leaves (same 120 GB per machine)\n");
  std::printf("%26s %14s %16s\n", "topology", "shm_hours", "disk_hours");
  for (size_t leaves : {1u, 8u}) {
    RolloverSimConfig topo;
    topo.leaves_per_machine = leaves;
    topo.bytes_per_leaf = (120ull << 30) / leaves;
    topo.path = RecoveryPath::kSharedMemory;
    double shm = SimulateRollover(topo).total_seconds;
    topo.path = RecoveryPath::kDisk;
    double disk = SimulateRollover(topo).total_seconds;
    std::printf("%13zu leaves/machine %14.2f %16.2f\n", leaves, shm / 3600,
                disk / 3600);
  }
  std::printf("-> with 8 leaves/machine a 2%% batch touches 16 machines' "
              "bandwidth at 1/8 the data each; with 1 leaf/machine each "
              "batch member moves 8x the bytes on one machine's "
              "bandwidth.\n");
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Run(); }
