// E1 — Row block column relocation (paper §2.1, §4.4, Fig 3).
//
// The mechanism's enabling property: because every internal location in a
// row block column is an offset from its base, moving a column between heap
// and shared memory is ONE memcpy. The paper's rejected alternative would
// rebuild pointerful structures value by value. This benchmark measures
// both, at RBC sizes from a few KB to tens of MB; the gap is the per-byte
// advantage the restart path inherits.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "columnar/row_block_column.h"
#include "util/random.h"

namespace scuba {
namespace {

// Builds a string RBC with roughly `target_bytes` of encoded payload.
RowBlockColumn MakeColumn(size_t target_bytes) {
  Random random(target_bytes);
  std::vector<std::string> values;
  // Unique-ish strings defeat the dictionary so the buffer actually has
  // ~target_bytes of payload.
  size_t n = target_bytes / 24;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back("payload_" + std::to_string(random.Next()));
  }
  return RowBlockColumn::BuildString(values);
}

void BM_SingleMemcpyRelocate(benchmark::State& state) {
  RowBlockColumn column = MakeColumn(static_cast<size_t>(state.range(0)));
  Slice bytes = column.AsSlice();
  std::unique_ptr<uint8_t[]> dst(new uint8_t[bytes.size()]);
  for (auto _ : state) {
    // The paper's copy: relocate the whole column in one memcpy; only the
    // column's own address changes.
    std::memcpy(dst.get(), bytes.data(), bytes.size());
    benchmark::DoNotOptimize(dst.get());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.counters["rbc_bytes"] = static_cast<double>(bytes.size());
}

void BM_ValueByValueTranslate(benchmark::State& state) {
  RowBlockColumn column = MakeColumn(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    // The alternative a pointerful layout forces: decode every value and
    // re-encode it at the destination (here: decode + rebuild).
    std::vector<std::string> values;
    if (!column.DecodeString(&values).ok()) state.SkipWithError("decode");
    RowBlockColumn rebuilt = RowBlockColumn::BuildString(values);
    benchmark::DoNotOptimize(rebuilt.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(column.total_bytes()));
}

void BM_RelocateAndValidateCrc(benchmark::State& state) {
  // Relocation plus the optional CRC32C integrity check (what restore
  // does with verify_checksums=true).
  RowBlockColumn column = MakeColumn(static_cast<size_t>(state.range(0)));
  Slice bytes = column.AsSlice();
  for (auto _ : state) {
    std::unique_ptr<uint8_t[]> dst(new uint8_t[bytes.size()]);
    std::memcpy(dst.get(), bytes.data(), bytes.size());
    auto adopted = RowBlockColumn::FromBuffer(std::move(dst), bytes.size(),
                                              /*verify_checksum=*/true);
    if (!adopted.ok()) state.SkipWithError("validate");
    benchmark::DoNotOptimize(adopted->data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}

BENCHMARK(BM_SingleMemcpyRelocate)->Range(64 << 10, 64 << 20);
BENCHMARK(BM_ValueByValueTranslate)->Range(64 << 10, 64 << 20);
BENCHMARK(BM_RelocateAndValidateCrc)->Range(64 << 10, 64 << 20);

}  // namespace
}  // namespace scuba
