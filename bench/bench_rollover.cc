// E5 — Figure 8 + §4.5/§1: the cluster rollover.
//
//   "Typically, we restart 2% of the leaf servers at a time, and the
//    entire rollover takes 10-12 hours to restart from disk. ... Using
//    shared memory is much faster, about 2-3 minutes per server."
//   "instead of having 100% of the data available only 93% of the time
//    with a 12 hour rollover once a week, Scuba is now fully available
//    99.5% of the time"
//
// Two parts:
//  1. A REAL in-process rollover over a mini-cluster (every leaf actually
//     round-trips through shared memory), with its Fig 8 dashboard.
//  2. The calibrated discrete-event simulation at the paper's scale
//     (100 machines x 8 leaves x 15 GB), disk vs shm, with dashboards,
//     durations, and the weekly availability numbers.

#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "cluster/dashboard.h"
#include "cluster/rollover_sim.h"
#include "ingest/row_generator.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;

int RunRealRollover(BenchEnv* env) {
  std::printf("--- part 1: REAL rollover of an in-process mini-cluster "
              "(4 machines x 8 leaves) ---\n");
  ClusterConfig config;
  config.num_machines = 4;
  config.leaves_per_machine = 8;
  config.namespace_prefix = env->prefix();
  config.backup_root = env->dir() + "/cluster";
  Cluster cluster(config);
  if (!cluster.Start().ok()) return 1;

  RowGenerator gen;
  cluster.log().AppendBatch("requests", gen.NextBatch(64000));
  cluster.AddTailer("requests", 512);
  if (!cluster.PumpTailers(true).ok()) return 1;

  RealRolloverOptions options;
  options.batch_fraction = 0.0625;  // 2 of 32 leaves per batch
  auto report = cluster.Rollover(options);
  if (!report.ok()) {
    std::fprintf(stderr, "rollover failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", Dashboard::Render(report->timeline, 12).c_str());
  std::printf("rolled %zu leaves in %zu batches, %.2f s wall; "
              "%zu shm recoveries, %zu disk; rows %llu -> %llu; "
              "min availability %.1f%%\n\n",
              report->leaves_rolled, report->num_batches,
              report->total_micros / 1e6, report->shm_recoveries,
              report->disk_recoveries,
              static_cast<unsigned long long>(report->rows_before),
              static_cast<unsigned long long>(report->rows_after),
              report->min_availability * 100);
  cluster.Cleanup();
  return 0;
}

void PrintSimReport(const char* label, const RolloverReport& report) {
  std::printf("--- %s ---\n", label);
  std::printf("%s", Dashboard::Render(report.timeline, 10).c_str());
  std::printf("total: %.1f h (%.0f s), %zu batches, min availability "
              "%.1f%%, mean availability %.2f%%\n",
              report.total_seconds / 3600, report.total_seconds,
              report.num_batches, report.min_data_availability * 100,
              report.mean_data_availability * 100);
  constexpr double kWeek = 7 * 24 * 3600.0;
  std::printf("weekly full-availability (one rollover/week): %.1f%%\n\n",
              report.FullAvailabilityFraction(kWeek) * 100);
}

int RunSimulation() {
  std::printf("--- part 2: calibrated simulation at paper scale "
              "(100 machines x 8 leaves x 15 GB, 2%% batches) ---\n\n");
  RolloverSimConfig config;
  config.path = RecoveryPath::kSharedMemory;
  RolloverReport shm = SimulateRollover(config);
  PrintSimReport("shared-memory rollover (paper: under an hour, 99.5%)",
                 shm);

  config.path = RecoveryPath::kDisk;
  RolloverReport disk = SimulateRollover(config);
  PrintSimReport("disk rollover (paper: 10-12 hours, 93%)", disk);

  std::printf("disk/shm rollover ratio: %.1fx\n",
              disk.total_seconds / shm.total_seconds);

  // Watchdog sensitivity: a few killed shutdowns should not blow up the
  // rollover (§4.3's 3-minute kill + disk fallback).
  config.path = RecoveryPath::kSharedMemory;
  config.shutdown_kill_probability = 0.02;
  RolloverReport flaky = SimulateRollover(config);
  std::printf("with 2%% watchdog kills: %.1f h, %zu disk fallbacks\n",
              flaky.total_seconds / 3600, flaky.disk_fallbacks);
  return 0;
}

}  // namespace
}  // namespace scuba

int main() {
  scuba::bench_util::BenchEnv env("e5");
  std::printf("E5: system-wide rollover (Fig 8, §4.5)\n\n");
  int rc = scuba::RunRealRollover(&env);
  if (rc != 0) return rc;
  return scuba::RunSimulation();
}
