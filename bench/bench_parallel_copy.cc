// E12 — Parallel copy engine for shutdown/restore (§4.2: recovery from
// shared memory is "limited only by memory bandwidth"; one memcpy stream
// does not saturate a multi-channel memory system).
//
// Sweeps copy threads in {1, 2, 4, 8} over both directions on the same
// leaf and reports GB/s plus the peak footprint against the §4.4 budget
// bound: live data + the in-flight byte budget (+ small bookkeeping
// slack). The footprint assertion runs unconditionally; the speedup is
// hardware-dependent (a single-core host serializes the workers and shows
// ~1x — expect >=2x at 4 threads on a real multi-core machine).

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/footprint.h"
#include "core/restore.h"
#include "core/shutdown.h"
#include "obs/metrics.h"
#include "shm/shm_segment.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;
using bench_util::FillLeafToBytes;
using bench_util::JsonWriter;
using bench_util::MiB;
using bench_util::Rate;

constexpr uint64_t kLeafTargetBytes = 128ull << 20;
constexpr uint64_t kSlackBytes = 8ull << 20;  // headers/meta/alignment

struct LeafShape {
  uint64_t live_bytes = 0;
  uint64_t max_column_bytes = 0;   // shutdown's budget unit
  uint64_t max_block_bytes = 0;    // restore's budget unit
};

LeafShape ShapeOf(const LeafMap& leaf_map) {
  LeafShape shape;
  shape.live_bytes = leaf_map.TotalMemoryBytes();
  for (const std::string& name : leaf_map.TableNames()) {
    const Table* table = leaf_map.GetTable(name);
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      const RowBlock* block = table->row_block(b);
      if (block == nullptr) continue;
      uint64_t block_payload = 0;
      for (size_t c = 0; c < block->num_columns(); ++c) {
        uint64_t bytes = block->column(c)->total_bytes();
        shape.max_column_bytes = std::max(shape.max_column_bytes, bytes);
        block_payload += bytes;
      }
      shape.max_block_bytes = std::max(shape.max_block_bytes, block_payload);
    }
  }
  return shape;
}

struct Sample {
  uint64_t bytes = 0;
  int64_t micros = 0;
  uint64_t peak = 0;
  uint64_t bound = 0;
  bool within = false;
};

int Run(const std::string& json_path) {
  BenchEnv env("e6");
  JsonWriter json("parallel_copy");

  std::printf("E12: parallel copy engine, threads x {shutdown, restore}\n");
  std::printf("footprint bound = live/segment bytes + in-flight budget "
              "+ %.0f MiB slack (threads=1: one copy unit)\n\n",
              MiB(kSlackBytes));
  std::printf("%8s %10s %14s %12s %12s %12s %8s\n", "threads", "dir",
              "GiB/s", "peak_MiB", "bound_MiB", "budget_MiB", "ok");

  double shutdown_base_rate = 0;
  double restore_base_rate = 0;
  double shutdown_4t_rate = 0;
  double restore_4t_rate = 0;
  bool all_within = true;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    LeafMap leaf_map;
    FillLeafToBytes(&leaf_map, kLeafTargetBytes);
    LeafShape shape = ShapeOf(leaf_map);

    // --- Shutdown direction -------------------------------------------
    ShutdownOptions soptions;
    soptions.namespace_prefix = env.prefix();
    soptions.num_copy_threads = threads;
    uint64_t sbudget = threads > 1 ? threads * shape.max_column_bytes
                                   : shape.max_column_bytes;
    FootprintTracker stracker;
    ShutdownStats sstats;
    if (!ShutdownToShm(&leaf_map, soptions, &sstats, &stracker).ok()) {
      std::fprintf(stderr, "shutdown failed (threads=%zu)\n", threads);
      return 1;
    }
    Sample sh;
    sh.bytes = sstats.bytes_copied;
    sh.micros = sstats.elapsed_micros;
    sh.peak = stracker.peak();
    sh.bound = shape.live_bytes + sbudget + kSlackBytes;
    sh.within = sh.peak <= sh.bound;
    double srate = Rate(sh.bytes, sh.micros);
    if (threads == 1) shutdown_base_rate = srate;
    if (threads == 4) shutdown_4t_rate = srate;
    std::printf("%8zu %10s %14.2f %12.0f %12.0f %12.0f %8s\n", threads,
                "shutdown", srate / (1 << 30), MiB(sh.peak), MiB(sh.bound),
                MiB(sbudget), sh.within ? "yes" : "NO");

    // --- Restore direction --------------------------------------------
    uint64_t shm_bytes =
        TotalShmBytes("/" + env.prefix() + "_leaf_0_");
    RestoreOptions roptions;
    roptions.namespace_prefix = env.prefix();
    roptions.num_copy_threads = threads;
    uint64_t rbudget = threads > 1 ? threads * shape.max_block_bytes
                                   : shape.max_block_bytes;
    FootprintTracker rtracker;
    RestoreStats rstats;
    LeafMap restored;
    if (!RestoreFromShm(&restored, roptions, &rstats, &rtracker).ok()) {
      std::fprintf(stderr, "restore failed (threads=%zu)\n", threads);
      return 1;
    }
    Sample re;
    re.bytes = rstats.bytes_copied;
    re.micros = rstats.elapsed_micros;
    re.peak = rtracker.peak();
    re.bound = shm_bytes + rbudget + kSlackBytes;
    re.within = re.peak <= re.bound;
    double rrate = Rate(re.bytes, re.micros);
    if (threads == 1) restore_base_rate = rrate;
    if (threads == 4) restore_4t_rate = rrate;
    std::printf("%8zu %10s %14.2f %12.0f %12.0f %12.0f %8s\n", threads,
                "restore", rrate / (1 << 30), MiB(re.peak), MiB(re.bound),
                MiB(rbudget), re.within ? "yes" : "NO");

    all_within = all_within && sh.within && re.within;

    for (const auto& [dir, sample, rate, budget] :
         {std::tuple{"shutdown", sh, srate, sbudget},
          std::tuple{"restore", re, rrate, rbudget}}) {
      json.Row();
      json.Field("direction", std::string(dir));
      json.Field("threads", threads);
      json.Field("bytes_copied", sample.bytes);
      json.Field("elapsed_micros", sample.micros);
      json.Field("bytes_per_sec", rate);
      json.Field("peak_footprint_bytes", sample.peak);
      json.Field("footprint_bound_bytes", sample.bound);
      json.Field("in_flight_budget_bytes", budget);
      json.Field("within_bound", sample.within);
    }

    // Drop restored state and leftover segments before the next config.
    ShmSegment::RemoveAll("/" + env.prefix() + "_leaf_0_");
  }

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nscaling at 4 threads vs 1 (host has %u core%s):\n", cores,
              cores == 1 ? "" : "s");
  std::printf("  shutdown: %.2f -> %.2f GiB/s (%.2fx)\n",
              shutdown_base_rate / (1 << 30), shutdown_4t_rate / (1 << 30),
              shutdown_base_rate > 0 ? shutdown_4t_rate / shutdown_base_rate
                                     : 0.0);
  std::printf("  restore:  %.2f -> %.2f GiB/s (%.2fx)\n",
              restore_base_rate / (1 << 30), restore_4t_rate / (1 << 30),
              restore_base_rate > 0 ? restore_4t_rate / restore_base_rate
                                    : 0.0);
  if (cores <= 1) {
    std::printf("  NOTE: single-core host — workers serialize; run on a "
                "multi-core machine to see the >=2x target.\n");
  }
  if (!all_within) {
    std::fprintf(stderr, "FOOTPRINT BUDGET EXCEEDED (see table above)\n");
    return 1;
  }
  std::printf("  footprint: within budget bound in every configuration\n");

  json.Section("metrics", obs::MetricsRegistry::Global().ToJson());
  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace scuba

int main(int argc, char** argv) {
  return scuba::Run(scuba::bench_util::JsonPathFromArgs(argc, argv));
}
