// E3 — Shutdown-to-shm and restore-from-shm cost (paper §4.3, Fig 6/7).
//
// "Usually, the leaf copies its data to shared memory and exits in 3-4
// seconds" and memory recovery "takes a few seconds per leaf". Both are
// linear memcpy-bound passes. This harness sweeps leaf sizes, measures
// both directions, reports per-byte rates, and extrapolates to the paper's
// 10-15 GB leaf to check the 3-4 s claim's shape.

#include <cstdio>

#include "bench_util.h"
#include "core/restart_manager.h"
#include "core/restore.h"
#include "core/shutdown.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/leaf_server.h"
#include "shm/shm_segment.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;
using bench_util::FillLeafToBytes;
using bench_util::JsonWriter;
using bench_util::MiB;
using bench_util::Rate;

int Run(const std::string& json_path, bool smoke) {
  BenchEnv env("e3");
  JsonWriter json("shutdown_restore");

  std::printf("E3: shutdown/restore via shared memory (paper §4.3: copy out "
              "in 3-4 s for 10-15 GB)\n\n");
  std::printf("%10s %14s %14s %14s %14s\n", "leaf_MiB", "shutdown_ms",
              "out_GiB/s", "restore_ms", "back_GiB/s");

  std::vector<uint64_t> targets = {16ull << 20, 64ull << 20, 256ull << 20};
  if (smoke) targets = {4ull << 20};

  double last_out_rate = 0;
  double last_back_rate = 0;
  std::string shutdown_trace_json;
  std::string restore_trace_json;
  for (uint64_t target : targets) {
    LeafMap leaf_map;
    uint64_t bytes = FillLeafToBytes(&leaf_map, target);

    obs::PhaseTracer shutdown_tracer;
    ShutdownOptions soptions;
    soptions.namespace_prefix = env.prefix();
    soptions.tracer = &shutdown_tracer;
    ShutdownStats sstats;
    if (!ShutdownToShm(&leaf_map, soptions, &sstats).ok()) return 1;
    shutdown_trace_json = shutdown_tracer.ToJson();

    obs::PhaseTracer restore_tracer;
    RestoreOptions roptions;
    roptions.namespace_prefix = env.prefix();
    roptions.verify_checksums = false;  // paper does not checksum
    roptions.tracer = &restore_tracer;
    RestoreStats rstats;
    LeafMap restored;
    if (!RestoreFromShm(&restored, roptions, &rstats).ok()) return 1;
    restore_trace_json = restore_tracer.ToJson();

    last_out_rate = Rate(sstats.bytes_copied, sstats.elapsed_micros);
    last_back_rate = Rate(rstats.bytes_copied, rstats.elapsed_micros);
    std::printf("%10.0f %14.1f %14.2f %14.1f %14.2f\n", MiB(bytes),
                sstats.elapsed_micros / 1000.0, last_out_rate / (1 << 30),
                rstats.elapsed_micros / 1000.0, last_back_rate / (1 << 30));

    json.Row();
    json.Field("case", std::string("roundtrip"));
    json.Field("leaf_bytes", bytes);
    json.Field("shutdown_micros", sstats.elapsed_micros.load());
    json.Field("shutdown_bytes_per_sec", last_out_rate);
    json.Field("restore_micros", rstats.elapsed_micros.load());
    json.Field("restore_bytes_per_sec", last_back_rate);
  }

  // Ablation: Fig 6's "estimate size of table". Underestimates pay
  // segment grows (ftruncate + mremap); overestimates are truncated free
  // of charge at Finish. The factor barely matters — which is why the
  // paper can use a simple estimate.
  const uint64_t ablation_bytes = smoke ? 8ull << 20 : 128ull << 20;
  std::printf("\nsize-estimate ablation (%.0f MiB leaf):\n",
              MiB(ablation_bytes));
  std::printf("%18s %14s %14s\n", "estimate_factor", "shutdown_ms",
              "segment_grows");
  for (double factor : {0.1, 0.5, 1.05, 2.0}) {
    LeafMap leaf_map;
    FillLeafToBytes(&leaf_map, ablation_bytes);
    ShutdownOptions soptions;
    soptions.namespace_prefix = env.prefix();
    soptions.leaf_id = 7;
    soptions.size_estimate_factor = factor;
    ShutdownStats sstats;
    if (!ShutdownToShm(&leaf_map, soptions, &sstats).ok()) return 1;
    std::printf("%18.2f %14.1f %14llu\n", factor,
                sstats.elapsed_micros / 1000.0,
                static_cast<unsigned long long>(sstats.segment_grow_count));
    json.Row();
    json.Field("case", std::string("estimate_ablation"));
    json.Field("estimate_factor", factor);
    json.Field("shutdown_micros", sstats.elapsed_micros.load());
    json.Field("segment_grows", sstats.segment_grow_count.load());
    ShmSegment::RemoveAll("/" + env.prefix() + "_leaf_7_");
  }

  double leaf_bytes = 12.0 * (1 << 30);
  std::printf("\nextrapolation to a 12 GB production leaf (measured rates):\n");
  std::printf("  shutdown copy-out: %5.1f s   (paper: 3-4 s)\n",
              leaf_bytes / last_out_rate);
  std::printf("  restore copy-back: %5.1f s   (paper: \"a few seconds\")\n",
              leaf_bytes / last_back_rate);

  // E14 — self-stats exporter overhead on the restart path. The exporter
  // ("Scuba monitors Scuba") runs at a 1 s period while the leaf ingests,
  // is flushed + stopped before PREPARE, and its __scuba_stats rows ride
  // the shm handoff like any other table. The claim to check: enabling it
  // costs < 1% of shutdown/restore throughput.
  std::printf("\nE14: self-stats exporter overhead (1 s period):\n");
  std::printf("%12s %14s %14s %14s\n", "self_stats", "shutdown_ms",
              "out_GiB/s", "restore_ms");
  {
    const size_t batches = smoke ? 8 : 64;
    double out_rate[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      const bool self_stats = mode == 1;
      LeafServerConfig lc;
      lc.leaf_id = 40 + static_cast<uint32_t>(mode);
      lc.namespace_prefix = env.prefix();
      lc.self_stats_enabled = self_stats;
      lc.self_stats_period_millis = 1000;
      LeafServer leaf(lc);
      if (!leaf.Start().ok()) return 1;
      RowGenerator gen;
      for (size_t b = 0; b < batches; ++b) {
        if (!leaf.AddRows("e14", gen.NextBatch(4096)).ok()) return 1;
      }
      ShutdownStats sstats;
      if (!leaf.ShutdownToSharedMemory(&sstats).ok()) return 1;

      LeafServerConfig successor_config = lc;
      LeafServer successor(successor_config);
      auto recovery = successor.Start();
      if (!recovery.ok() ||
          recovery->source != RecoverySource::kSharedMemory) {
        return 1;
      }
      const RestoreStats& rstats = successor.last_recovery().shm_stats;
      out_rate[mode] = Rate(sstats.bytes_copied, sstats.elapsed_micros);
      std::printf("%12s %14.1f %14.2f %14.1f\n", self_stats ? "on" : "off",
                  sstats.elapsed_micros / 1000.0, out_rate[mode] / (1 << 30),
                  rstats.elapsed_micros / 1000.0);
      json.Row();
      json.Field("case", std::string("exporter_overhead"));
      json.Field("self_stats", self_stats);
      json.Field("shutdown_micros", sstats.elapsed_micros.load());
      json.Field("shutdown_bytes_per_sec", out_rate[mode]);
      json.Field("restore_micros", rstats.elapsed_micros.load());
      json.Field("restore_bytes_per_sec",
                 Rate(rstats.bytes_copied, rstats.elapsed_micros));
    }
    double overhead_pct =
        out_rate[0] <= 0 ? 0.0
                         : (out_rate[0] - out_rate[1]) / out_rate[0] * 100.0;
    std::printf("  shutdown throughput delta with exporter on: %+.2f%% "
                "(target < 1%%)\n", overhead_pct);
    json.Row();
    json.Field("case", std::string("exporter_overhead_delta"));
    json.Field("shutdown_throughput_delta_pct", overhead_pct);
  }

  if (!json_path.empty()) {
    json.Section("schema_version",
                 std::to_string(kRestartReportSchemaVersion));
    json.Section("metrics", obs::MetricsRegistry::Global().ToJson());
    json.Section("shutdown_trace", shutdown_trace_json);
    json.Section("restore_trace", restore_trace_json);
    if (!json.WriteTo(json_path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace scuba

int main(int argc, char** argv) {
  return scuba::Run(scuba::bench_util::JsonPathFromArgs(argc, argv),
                    scuba::bench_util::FlagFromArgs(argc, argv, "--smoke"));
}
