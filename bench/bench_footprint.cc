// E8 — Memory footprint during the handoff (paper §4.4):
//
//   "There is still not enough physical memory free to allocate enough
//    space for it in shared memory, copy it all, and then free it from
//    the heap. Instead, we copy data gradually, allocating enough space
//    for one row block column at a time in shared memory, copying it, and
//    then freeing it from the heap. ... this method keeps the total
//    memory footprint of the leaf nearly unchanged."
//
// Table: peak(heap + shm) during shutdown for the paper's chunked
// free-as-you-copy strategy vs the naive copy-everything-then-free
// strategy, as a multiple of the live data size.

#include <cstdio>

#include "bench_util.h"
#include "core/restore.h"
#include "core/shutdown.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;
using bench_util::FillLeafToBytes;
using bench_util::MiB;

int Run() {
  BenchEnv env("e8");
  std::printf("E8: footprint during shutdown/restore (paper §4.4: "
              "\"nearly unchanged\")\n\n");
  std::printf("%10s %12s %16s %14s %16s\n", "leaf_MiB", "strategy",
              "peak_MiB", "peak/live", "restore_peak");

  uint32_t leaf_id = 0;
  for (uint64_t target : {32ull << 20, 128ull << 20}) {
    for (bool chunked : {true, false}) {
      LeafMap leaf_map;
      uint64_t live = FillLeafToBytes(&leaf_map, target);

      ShutdownOptions soptions;
      soptions.namespace_prefix = env.prefix();
      soptions.leaf_id = leaf_id;
      soptions.free_incrementally = chunked;
      FootprintTracker tracker;
      ShutdownStats sstats;
      if (!ShutdownToShm(&leaf_map, soptions, &sstats, &tracker).ok()) {
        return 1;
      }

      RestoreOptions roptions;
      roptions.namespace_prefix = env.prefix();
      roptions.leaf_id = leaf_id;
      roptions.verify_checksums = false;
      FootprintTracker restore_tracker;
      RestoreStats rstats;
      LeafMap restored;
      if (!RestoreFromShm(&restored, roptions, &rstats, &restore_tracker)
               .ok()) {
        return 1;
      }

      std::printf("%10.0f %12s %16.1f %13.2fx %15.2fx\n", MiB(live),
                  chunked ? "chunked" : "naive", MiB(tracker.peak()),
                  static_cast<double>(tracker.peak()) /
                      static_cast<double>(live),
                  static_cast<double>(restore_tracker.peak()) /
                      static_cast<double>(live));
      ++leaf_id;
    }
  }
  std::printf("\n-> the paper's strategy keeps peak ~1.0x live (one extra "
              "row block column); naive needs ~2x, which a 144 GB machine "
              "with 120 GB of data does not have.\n");
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Run(); }
