// E7 — Query performance and availability (paper §1, §2):
//
//   "These queries typically run in under a second over GBs of data."
//   "Nearly all queries contain predicates on time; the minimum and
//    maximum timestamps are used to decide whether to even look at a row
//    block."
//
// google-benchmark micro-benchmarks over a leaf holding ~1M rows:
// full-scan count, grouped aggregation, filtered aggregation, and the
// time-pruned variant that demonstrates the row-block min/max index.

#include <benchmark/benchmark.h>

#include <memory>

#include "columnar/table.h"
#include "ingest/row_generator.h"
#include "query/executor.h"

namespace scuba {
namespace {

constexpr size_t kRows = 1 << 20;  // ~1M rows across 16 row blocks

const Table& TestTable() {
  static const Table& table = *[] {
    auto* t = new Table("service_logs");
    RowGeneratorConfig config;
    config.seed = 3;
    config.rows_per_second = 2000;
    RowGenerator gen(config);
    for (size_t i = 0; i < kRows / 8192; ++i) {
      if (!t->AddRows(gen.NextBatch(8192), gen.current_time()).ok()) {
        std::abort();
      }
    }
    if (!t->SealWriteBuffer(0).ok()) std::abort();
    return t;
  }();
  return table;
}

void RunQuery(benchmark::State& state, const Query& query) {
  const Table& table = TestTable();
  uint64_t rows_scanned = 0;
  uint64_t blocks_pruned = 0;
  for (auto _ : state) {
    auto result = LeafExecutor::Execute(table, query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    rows_scanned = result->rows_scanned;
    blocks_pruned = result->blocks_pruned;
    benchmark::DoNotOptimize(result->num_groups());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows_scanned));
  state.counters["rows_scanned"] = static_cast<double>(rows_scanned);
  state.counters["blocks_pruned"] = static_cast<double>(blocks_pruned);
}

void BM_CountAll(benchmark::State& state) {
  Query q;
  q.table = "service_logs";
  q.aggregates = {Count()};
  RunQuery(state, q);
}

void BM_GroupByServiceAvgLatency(benchmark::State& state) {
  Query q;
  q.table = "service_logs";
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms")};
  RunQuery(state, q);
}

void BM_FilteredErrorCount(benchmark::State& state) {
  Query q;
  q.table = "service_logs";
  q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  q.group_by = {"service"};
  q.aggregates = {Count()};
  RunQuery(state, q);
}

void BM_TimePrunedNarrowWindow(benchmark::State& state) {
  // The last ~6% of event time: most row blocks are pruned via their
  // min/max timestamps without decoding a single column.
  const Table& table = TestTable();
  int64_t max_time = 0;
  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    max_time = std::max(max_time, table.row_block(b)->header().max_time);
  }
  Query q;
  q.table = "service_logs";
  q.begin_time = max_time - 30;
  q.aggregates = {Count(), Avg("latency_ms")};
  RunQuery(state, q);
}

void BM_FullWindowSameAggregate(benchmark::State& state) {
  // Baseline for BM_TimePrunedNarrowWindow: same aggregate, no pruning.
  Query q;
  q.table = "service_logs";
  q.aggregates = {Count(), Avg("latency_ms")};
  RunQuery(state, q);
}

void BM_P99LatencyByService(benchmark::State& state) {
  Query q;
  q.table = "service_logs";
  q.group_by = {"service"};
  q.aggregates = {P50("latency_ms"), P99("latency_ms")};
  RunQuery(state, q);
}

void BM_ErrorTimelinePerMinute(benchmark::State& state) {
  Query q;
  q.table = "service_logs";
  q.time_bucket_seconds = 60;
  q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  q.aggregates = {Count()};
  RunQuery(state, q);
}

BENCHMARK(BM_CountAll)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GroupByServiceAvgLatency)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FilteredErrorCount)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TimePrunedNarrowWindow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullWindowSameAggregate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_P99LatencyByService)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ErrorTimelinePerMinute)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scuba
