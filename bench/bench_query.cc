// E7/E13 — Query performance: vectorized + parallel leaf scan (paper §1,
// §2: "These queries typically run in under a second over GBs of data").
//
// Three sections over a leaf table holding ~1M rows in 16 row blocks:
//
//   A. The E7 query set, scalar (row-at-a-time reference) vs vectorized,
//      single-threaded: the selection-vector + dictionary-filter win.
//   B. String-predicate selectivity sweep x scan threads {1, 2, 4}: how
//      the dictionary-aware filter and the per-row-block fan-out compose.
//   C. Zone-map pruning: a selective int64 predicate whose blocks are
//      skipped from the v2 footer min/max without decoding (the scalar
//      engine scans everything; the vectorized one reports blocks_pruned).
//   D. Observability overhead (E15): the heaviest query unsampled (null
//      tracer — what every production query pays for the always-on
//      QueryProfile) vs trace-sampled (PhaseTracer attached, spans per
//      block); emits the overhead percentage, the sampled profile, and
//      the span timeline.
//   E. Aggregator result cache (E16): a dashboard's bucketed query
//      re-issued over a fixed window against a 2-leaf fleet, with the
//      fingerprint-keyed partial-result cache off vs on. Sealed buckets
//      serve from cache; only the write-buffer tail rescans. Reports QPS
//      both ways and the decode_micros share; results must be
//      bit-identical (digest-checked).
//
// Every row carries `result_digest`, a CRC32C over the finalized rows
// (group keys + aggregate bit patterns, in Finalize's deterministic
// order): ci/check.sh re-runs the bench under SCUBA_FORCE_SCALAR=1 and
// asserts the digests match the SIMD run's.
//
// Thread speedups are hardware-dependent: on a single-core host the pool
// serializes and shows ~1x; expect the multi-thread gains on real cores.
// Every vectorized run is checked against the scalar result (groups and
// matched rows must agree).
//
// Usage: bench_query [--json <path>] [--smoke]

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "columnar/table.h"
#include "core/restart_manager.h"
#include "ingest/row_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/query_context.h"
#include "server/aggregator.h"
#include "server/leaf_server.h"
#include "util/crc32c.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

using bench_util::JsonPathFromArgs;
using bench_util::JsonWriter;

// ~1M rows across 16 row blocks; --smoke shrinks to 2 blocks.
size_t g_rows = 1 << 20;
int g_timed_iters = 5;

std::unique_ptr<Table> BuildTable() {
  auto table = std::make_unique<Table>("service_logs");
  RowGeneratorConfig config;
  config.seed = 3;
  config.rows_per_second = 2000;
  RowGenerator gen(config);
  for (size_t i = 0; i < g_rows / 8192; ++i) {
    if (!table->AddRows(gen.NextBatch(8192), gen.current_time()).ok()) {
      std::abort();
    }
  }
  if (!table->SealWriteBuffer(0).ok()) std::abort();
  return table;
}

int64_t MaxTime(const Table& table) {
  int64_t max_time = 0;
  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    max_time = std::max(max_time, table.row_block(b)->header().max_time);
  }
  return max_time;
}

struct Timing {
  double millis = 0.0;  // best of g_timed_iters
  QueryResult result;
};

// Times `run` (warm-up + best-of-N) and returns the last result.
template <typename Run>
Timing Time(const Run& run) {
  Timing t;
  t.result = run();  // warm-up
  t.millis = 1e30;
  for (int i = 0; i < g_timed_iters; ++i) {
    double ms = bench_util::TimedMillis([&] { t.result = run(); });
    t.millis = std::min(t.millis, ms);
  }
  return t;
}

Timing TimeScalar(const Table& table, const Query& query) {
  return Time([&] {
    auto result = LeafExecutor::ExecuteScalar(table, query);
    if (!result.ok()) {
      std::fprintf(stderr, "scalar: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    return *std::move(result);
  });
}

Timing TimeVectorized(const Table& table, const Query& query,
                      ThreadPool* pool) {
  return Time([&] {
    LeafExecutor::ExecOptions options;
    options.pool = pool;
    auto result = LeafExecutor::Execute(table, query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "vectorized: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    return *std::move(result);
  });
}

void CheckAgainstScalar(const char* label, const QueryResult& scalar,
                        const QueryResult& vectorized) {
  if (scalar.num_groups() != vectorized.num_groups() ||
      scalar.rows_matched != vectorized.rows_matched) {
    std::fprintf(stderr,
                 "%s: vectorized mismatch (groups %zu vs %zu, matched %llu "
                 "vs %llu)\n",
                 label, scalar.num_groups(), vectorized.num_groups(),
                 static_cast<unsigned long long>(scalar.rows_matched),
                 static_cast<unsigned long long>(vectorized.rows_matched));
    std::abort();
  }
}

// Order-independent of engine, order-dependent of content: CRC32C over the
// finalized rows (Finalize sorts by the order-preserving key encoding), a
// type tag + canonical bytes per group-key value and the raw bit pattern
// of every aggregate. Engines that produce bit-identical results — the
// SIMD/scalar contract, and the cache-on/cache-off contract — produce
// equal digests.
uint32_t ResultDigest(const QueryResult& result,
                      const std::vector<Aggregate>& aggregates) {
  uint32_t crc = 0;
  auto add = [&crc](const void* p, size_t n) {
    crc = crc32c::Extend(crc, static_cast<const uint8_t*>(p), n);
  };
  for (const ResultRow& row : result.Finalize(aggregates)) {
    for (const Value& v : row.group_key) {
      uint8_t tag = static_cast<uint8_t>(v.index());
      add(&tag, 1);
      if (const auto* i = std::get_if<int64_t>(&v)) {
        add(i, sizeof(*i));
      } else if (const auto* d = std::get_if<double>(&v)) {
        add(d, sizeof(*d));
      } else {
        const std::string& s = std::get<std::string>(v);
        uint64_t len = s.size();
        add(&len, sizeof(len));
        add(s.data(), s.size());
      }
    }
    for (double a : row.aggregates) add(&a, sizeof(a));
  }
  return crc;
}

void Emit(JsonWriter* json, const std::string& section,
          const std::string& name, const std::string& engine, size_t threads,
          const Timing& t, double speedup,
          const std::vector<Aggregate>& aggregates) {
  json->Row();
  json->Field("section", section);
  json->Field("case", name);
  json->Field("engine", engine);
  json->Field("threads", static_cast<uint64_t>(threads));
  json->Field("millis", t.millis);
  json->Field("speedup_vs_scalar", speedup);
  json->Field("rows_scanned", t.result.rows_scanned);
  json->Field("rows_matched", t.result.rows_matched);
  json->Field("blocks_scanned", t.result.blocks_scanned);
  json->Field("blocks_pruned", t.result.blocks_pruned);
  json->Field("groups", static_cast<uint64_t>(t.result.num_groups()));
  json->Field("result_digest",
              static_cast<uint64_t>(ResultDigest(t.result, aggregates)));
  json->RawField("profile", t.result.profile().ToJson());
}

int Run(const std::string& json_path, bool smoke) {
  if (smoke) {
    g_rows = 2 * 8192;  // 2 row blocks
    g_timed_iters = 1;
  }
  std::unique_ptr<Table> table = BuildTable();
  JsonWriter json("query_engine");

  ThreadPool pool2(2);
  ThreadPool pool4(4);
  struct PoolRow {
    size_t threads;
    ThreadPool* pool;
  };
  const PoolRow pools[] = {{1, nullptr}, {2, &pool2}, {4, &pool4}};

  std::printf("E13: vectorized + parallel leaf query engine\n");
  std::printf("table: %llu rows, %zu row blocks; host cores: %u\n\n",
              static_cast<unsigned long long>(table->RowCount()),
              table->num_row_blocks(), std::thread::hardware_concurrency());

  // --- A: the E7 query set, scalar vs vectorized (single thread) ----------
  struct Case {
    const char* name;
    Query query;
  };
  std::vector<Case> cases;
  {
    Query q;
    q.table = "service_logs";
    q.aggregates = {Count()};
    cases.push_back({"count_all", q});
  }
  {
    Query q;
    q.table = "service_logs";
    q.group_by = {"service"};
    q.aggregates = {Count(), Avg("latency_ms")};
    cases.push_back({"group_by_service_avg_latency", q});
  }
  {
    Query q;
    q.table = "service_logs";
    q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
    q.group_by = {"service"};
    q.aggregates = {Count()};
    cases.push_back({"filtered_error_count", q});
  }
  {
    Query q;
    q.table = "service_logs";
    q.begin_time = MaxTime(*table) - 30;
    q.aggregates = {Count(), Avg("latency_ms")};
    cases.push_back({"time_pruned_narrow_window", q});
  }
  {
    Query q;
    q.table = "service_logs";
    q.group_by = {"service"};
    q.aggregates = {P50("latency_ms"), P99("latency_ms")};
    cases.push_back({"p99_latency_by_service", q});
  }
  {
    Query q;
    q.table = "service_logs";
    q.time_bucket_seconds = 60;
    q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
    q.aggregates = {Count()};
    cases.push_back({"error_timeline_per_minute", q});
  }

  std::printf("-- A: scalar vs vectorized (1 thread) --\n");
  std::printf("%-32s %12s %12s %9s\n", "case", "scalar_ms", "vector_ms",
              "speedup");
  for (const Case& c : cases) {
    Timing scalar = TimeScalar(*table, c.query);
    Timing vec = TimeVectorized(*table, c.query, nullptr);
    CheckAgainstScalar(c.name, scalar.result, vec.result);
    double speedup = vec.millis > 0 ? scalar.millis / vec.millis : 0.0;
    std::printf("%-32s %12.3f %12.3f %8.2fx\n", c.name, scalar.millis,
                vec.millis, speedup);
    Emit(&json, "query_set", c.name, "scalar", 1, scalar, 1.0,
         c.query.aggregates);
    Emit(&json, "query_set", c.name, "vectorized", 1, vec, speedup,
         c.query.aggregates);
  }

  // --- B: string-predicate selectivity x threads ---------------------------
  struct StringCase {
    const char* name;
    Predicate pred;
  };
  const StringCase string_cases[] = {
      {"string_eq_narrow",
       {"endpoint", CompareOp::kEq, Value(std::string("/api/v2/endpoint_7"))}},
      {"string_contains_mid",
       {"endpoint", CompareOp::kContains, Value(std::string("endpoint_1"))}},
      {"string_prefix_all",
       {"endpoint", CompareOp::kPrefix, Value(std::string("/api/v2/"))}},
  };

  std::printf("\n-- B: string-filter selectivity x scan threads --\n");
  std::printf("%-24s %9s %12s %9s %9s\n", "case", "threads", "millis",
              "speedup", "matched%");
  for (const StringCase& sc : string_cases) {
    Query q;
    q.table = "service_logs";
    q.predicates = {sc.pred};
    q.group_by = {"service"};
    q.aggregates = {Count(), Avg("latency_ms")};

    Timing scalar = TimeScalar(*table, q);
    double matched = 100.0 * static_cast<double>(scalar.result.rows_matched) /
                     static_cast<double>(scalar.result.rows_scanned);
    std::printf("%-24s %9s %12.3f %8.2fx %8.1f%%\n", sc.name, "scalar",
                scalar.millis, 1.0, matched);
    Emit(&json, "selectivity_sweep", sc.name, "scalar", 1, scalar, 1.0,
         q.aggregates);

    for (const PoolRow& p : pools) {
      Timing vec = TimeVectorized(*table, q, p.pool);
      CheckAgainstScalar(sc.name, scalar.result, vec.result);
      double speedup = vec.millis > 0 ? scalar.millis / vec.millis : 0.0;
      std::printf("%-24s %9zu %12.3f %8.2fx %8.1f%%\n", sc.name, p.threads,
                  vec.millis, speedup, matched);
      Emit(&json, "selectivity_sweep", sc.name, "vectorized", p.threads, vec,
           speedup, q.aggregates);
    }
  }

  // --- C: zone-map pruning -------------------------------------------------
  // A selective predicate on the time COLUMN (the query's [begin, end]
  // range stays wide open, so the header min/max prunes nothing): blocks
  // seal in time order, so the v2 footer zone map skips every block but
  // the last without decoding. The scalar engine has no zone maps and
  // scans all 16 blocks.
  {
    Query q;
    q.table = "service_logs";
    q.predicates = {
        {kTimeColumnName, CompareOp::kGe, Value(MaxTime(*table) - 30)}};
    q.group_by = {"service"};
    q.aggregates = {Count()};

    Timing scalar = TimeScalar(*table, q);
    Timing vec = TimeVectorized(*table, q, nullptr);
    CheckAgainstScalar("zone_map_prune", scalar.result, vec.result);
    double speedup = vec.millis > 0 ? scalar.millis / vec.millis : 0.0;
    uint64_t total = vec.result.blocks_scanned + vec.result.blocks_pruned;
    double pruned_frac = total > 0 ? static_cast<double>(
                                         vec.result.blocks_pruned) /
                                         static_cast<double>(total)
                                   : 0.0;
    std::printf("\n-- C: zone-map pruning (selective int64 predicate) --\n");
    std::printf("scalar: %.3f ms, %llu/%llu blocks scanned\n", scalar.millis,
                static_cast<unsigned long long>(scalar.result.blocks_scanned),
                static_cast<unsigned long long>(total));
    std::printf(
        "vector: %.3f ms, %llu/%llu blocks pruned (%.0f%%), %.2fx\n",
        vec.millis, static_cast<unsigned long long>(vec.result.blocks_pruned),
        static_cast<unsigned long long>(total), 100.0 * pruned_frac, speedup);
    Emit(&json, "zone_map", "zone_map_prune", "scalar", 1, scalar, 1.0,
         q.aggregates);
    Emit(&json, "zone_map", "zone_map_prune", "vectorized", 1, vec, speedup,
         q.aggregates);
    // A smoke run only has 2 blocks, so the 90% bar does not apply.
    if (!smoke && pruned_frac < 0.9) {
      std::fprintf(stderr, "zone maps pruned only %.0f%% of blocks\n",
                   100.0 * pruned_frac);
      return 1;
    }
  }

  // --- D: observability overhead (E15) -------------------------------------
  // The heaviest query from section A, run unsampled (null tracer: the
  // always-on QueryProfile is the only cost) vs trace-sampled (PhaseTracer
  // attached, one span + two synthesized children per block). Sampling is
  // 1-in-N in production, so the sampled cost is paid by ~none of the
  // fleet's queries; the unsampled number is the one the ≤2% E15 budget
  // applies to, against the pre-instrumentation E13 baseline.
  {
    Query q;
    q.table = "service_logs";
    q.group_by = {"service"};
    q.aggregates = {Count(), Avg("latency_ms")};

    Timing unsampled = TimeVectorized(*table, q, nullptr);
    std::unique_ptr<obs::PhaseTracer> tracer;
    Timing sampled = Time([&] {
      tracer = std::make_unique<obs::PhaseTracer>();
      QueryContext ctx;
      ctx.query_id = NextQueryId();
      ctx.sampled = true;
      ctx.tracer = tracer.get();
      LeafExecutor::ExecOptions options;
      options.ctx = &ctx;
      auto result = LeafExecutor::Execute(*table, q, options);
      if (!result.ok()) {
        std::fprintf(stderr, "sampled: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
      return *std::move(result);
    });
    double overhead_pct =
        unsampled.millis > 0
            ? 100.0 * (sampled.millis - unsampled.millis) / unsampled.millis
            : 0.0;
    std::printf("\n-- D: observability overhead (group_by, 1 thread) --\n");
    std::printf("unsampled (profile only): %.3f ms\n", unsampled.millis);
    std::printf("sampled (span timeline):  %.3f ms  (%+.1f%%)\n",
                sampled.millis, overhead_pct);
    std::printf("%s\n", sampled.result.profile().ToText().c_str());
    Emit(&json, "observability_overhead", "group_by_service_avg_latency",
         "vectorized_unsampled", 1, unsampled, 1.0, q.aggregates);
    Emit(&json, "observability_overhead", "group_by_service_avg_latency",
         "vectorized_sampled", 1, sampled, 1.0, q.aggregates);
    json.Field("sampling_overhead_pct", overhead_pct);
    json.Section("profile", sampled.result.profile().ToJson());
    json.Section("trace", tracer->ToJson());
  }

  // --- E: aggregator result cache (E16) ------------------------------------
  // The dashboard-refresh pattern: the same bucketed query over a fixed
  // window, re-issued against a 2-leaf fleet. With the cache on, every
  // whole sealed bucket serves its per-leaf partial from memory after the
  // first pass; only the unsealed write-buffer tail rescans.
  {
    bench_util::BenchEnv env("e16");
    const size_t kLeaves = 2;
    std::vector<std::unique_ptr<LeafServer>> leaves;
    std::vector<LeafServer*> leaf_ptrs;
    for (size_t i = 0; i < kLeaves; ++i) {
      LeafServerConfig config;
      config.leaf_id = static_cast<uint32_t>(i);
      config.namespace_prefix = env.prefix();
      config.backup_dir = env.dir() + "/leaf_" + std::to_string(i);
      std::error_code ec;
      std::filesystem::create_directories(config.backup_dir, ec);
      if (ec) std::abort();
      leaves.push_back(std::make_unique<LeafServer>(config));
      if (!leaves.back()->Start().ok()) std::abort();
      leaf_ptrs.push_back(leaves.back().get());
    }
    RowGeneratorConfig config;
    config.seed = 3;
    config.rows_per_second = 2000;
    RowGenerator gen(config);
    for (size_t i = 0; i < g_rows / 8192; ++i) {
      if (!leaves[i % kLeaves]
               ->AddRows("service_logs", gen.NextBatch(8192))
               .ok()) {
        std::abort();
      }
    }

    Query q;
    q.table = "service_logs";
    q.begin_time = config.start_time;
    q.end_time = gen.current_time();  // fixed window, as a dashboard refresh
    q.time_bucket_seconds = 60;
    q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
    q.group_by = {"service"};
    q.aggregates = {Count(), Avg("latency_ms")};

    const int iters = smoke ? 3 : 50;
    auto repeat = [&](Aggregator* agg) {
      Timing t;
      auto once = [&] {
        auto result = agg->Execute(q);
        if (!result.ok()) {
          std::fprintf(stderr, "e16: %s\n",
                       result.status().ToString().c_str());
          std::abort();
        }
        return *std::move(result);
      };
      t.result = once();  // warm-up (fills the cache when enabled)
      t.millis = bench_util::TimedMillis([&] {
        for (int i = 0; i < iters; ++i) t.result = once();
      });
      return t;
    };

    Aggregator agg_off;
    agg_off.SetLeaves(leaf_ptrs);
    Timing off = repeat(&agg_off);

    Aggregator agg_on;
    agg_on.EnableResultCache(64ull << 20);
    agg_on.SetLeaves(leaf_ptrs);
    Timing on = repeat(&agg_on);

    uint32_t digest_off = ResultDigest(off.result, q.aggregates);
    uint32_t digest_on = ResultDigest(on.result, q.aggregates);
    if (digest_off != digest_on) {
      std::fprintf(stderr, "e16: cached result digest mismatch (%08x vs %08x)\n",
                   digest_off, digest_on);
      std::abort();
    }

    double qps_off = off.millis > 0 ? 1000.0 * iters / off.millis : 0.0;
    double qps_on = on.millis > 0 ? 1000.0 * iters / on.millis : 0.0;
    double speedup = on.millis > 0 ? off.millis / on.millis : 0.0;
    auto decode_share = [](const QueryResult& r) {
      return r.profile().wall_micros > 0
                 ? 100.0 * static_cast<double>(r.profile().decode_micros) /
                       static_cast<double>(r.profile().wall_micros)
                 : 0.0;
    };
    ResultCache::Stats cache_stats = agg_on.result_cache()->GetStats();
    std::printf("\n-- E: aggregator result cache (repeated dashboard) --\n");
    std::printf("cache off: %8.2f q/s  (decode %4.1f%% of wall)\n", qps_off,
                decode_share(off.result));
    std::printf("cache on:  %8.2f q/s  (decode %4.1f%% of wall)  %.2fx\n",
                qps_on, decode_share(on.result), speedup);
    std::printf("           %llu bucket hits / %llu misses per query, "
                "%llu entries, %.1f KB cached\n",
                static_cast<unsigned long long>(
                    on.result.profile().cache_hit_buckets),
                static_cast<unsigned long long>(
                    on.result.profile().cache_miss_buckets),
                static_cast<unsigned long long>(cache_stats.entries),
                static_cast<double>(cache_stats.bytes) / 1024.0);
    Emit(&json, "result_cache", "repeated_dashboard", "cache_off", 1, off,
         1.0, q.aggregates);
    Emit(&json, "result_cache", "repeated_dashboard", "cache_on", 1, on,
         speedup, q.aggregates);
    json.Field("cache_qps_off", qps_off);
    json.Field("cache_qps_on", qps_on);
    json.Field("cache_speedup", speedup);
    if (!smoke && on.result.profile().cache_hit_buckets == 0) {
      std::fprintf(stderr, "e16: cache produced no bucket hits\n");
      return 1;
    }
  }

  if (!json_path.empty()) {
    json.Section("schema_version",
                 std::to_string(kRestartReportSchemaVersion));
    json.Section("metrics", obs::MetricsRegistry::Global().ToJson());
    if (!json.WriteTo(json_path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace scuba

int main(int argc, char** argv) {
  return scuba::Run(scuba::bench_util::JsonPathFromArgs(argc, argv),
                    scuba::bench_util::FlagFromArgs(argc, argv, "--smoke"));
}
