// E9 — Ablation of the REJECTED design (paper §3, method 1):
//
//   "Allocate all data in shared memory all of the time. This alternative
//    requires writing a custom allocator ... We worried that an allocator
//    in shared memory would lead to increased fragmentation over time."
//
// A live table's churn (append blocks, expire old blocks) runs against the
// shm arena allocator. The table prints fragmentation over time and the
// first large allocation that fails despite sufficient total free space —
// the failure mode jemalloc's lazy page backing avoids on the heap and the
// paper's copy-at-shutdown design sidesteps entirely (method 2 allocates
// exactly-sized segments and deletes them whole).

#include <cstdio>
#include <deque>
#include <vector>

#include "bench_util.h"
#include "shm/shm_arena_allocator.h"
#include "util/random.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;
using bench_util::MiB;

int Run() {
  BenchEnv env("e9");
  constexpr size_t kArenaBytes = 256 << 20;
  auto arena_or = ShmArenaAllocator::Create("/" + env.prefix() + "_arena",
                                            kArenaBytes);
  if (!arena_or.ok()) {
    std::fprintf(stderr, "%s\n", arena_or.status().ToString().c_str());
    return 1;
  }
  ShmArenaAllocator& arena = *arena_or;

  std::printf("E9: method-1 ablation — live-in-shm custom allocator under "
              "table churn (§3)\n");
  std::printf("arena: %.0f MiB, workload: mixed 64 KB-4 MB row-block-column "
              "allocations, random expiry\n\n",
              MiB(kArenaBytes));
  std::printf("%8s %12s %12s %14s %14s %10s\n", "step", "live_MiB",
              "free_MiB", "largest_free", "free_ranges", "frag");

  Random random(2014);
  std::vector<std::pair<uint64_t, size_t>> live;
  uint64_t failed_allocs = 0;
  uint64_t first_failure_step = 0;
  double first_failure_free = 0;

  constexpr int kSteps = 20000;
  for (int step = 1; step <= kSteps; ++step) {
    // Allocation sizes shaped like compressed RBCs: mostly small, with an
    // occasional near-full row block column (the 1 GB cap scaled down).
    size_t size = random.Bernoulli(0.05)
                      ? (2 << 20) + random.Uniform(10 << 20)
                      : (64 << 10) + random.Uniform(192 << 10);
    auto off = arena.Allocate(size);
    if (off.ok()) {
      live.emplace_back(*off, size);
    } else {
      ++failed_allocs;
      if (failed_allocs == 1) {
        first_failure_step = static_cast<uint64_t>(step);
        first_failure_free = MiB(arena.free_bytes());
      }
    }

    // Expiry: tables drop whole old blocks; randomize victims to model
    // many tables expiring on their own schedules.
    bool over_budget = arena.allocated_bytes() > kArenaBytes * 3 / 4;
    size_t expire = over_budget ? 4 : (random.Bernoulli(0.5) ? 1 : 0);
    for (size_t i = 0; i < expire && !live.empty(); ++i) {
      size_t victim = random.Uniform(live.size());
      if (!arena.Free(live[victim].first, live[victim].second).ok()) {
        return 1;
      }
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }

    if (step % (kSteps / 10) == 0) {
      std::printf("%8d %12.1f %12.1f %13.1fM %14zu %9.1f%%\n", step,
                  MiB(arena.allocated_bytes()), MiB(arena.free_bytes()),
                  MiB(arena.largest_free_range()), arena.num_free_ranges(),
                  arena.FragmentationRatio() * 100);
    }
  }

  std::printf("\nfailed allocations: %llu",
              static_cast<unsigned long long>(failed_allocs));
  if (failed_allocs > 0) {
    std::printf(" (first at step %llu with %.1f MiB nominally free)",
                static_cast<unsigned long long>(first_failure_step),
                first_failure_free);
  }
  std::printf("\n-> method 2 (paper): segments are allocated exactly-sized "
              "at shutdown and deleted whole at restore; fragmentation is "
              "structurally impossible and the heap keeps jemalloc's lazy "
              "page backing during normal operation.\n");
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Run(); }
