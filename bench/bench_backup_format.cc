// E11 — the paper's §6 prediction, measured:
//
//   "One large overhead in Scuba's disk recovery is translating from the
//    disk format to the heap memory format. ... We are planning to use
//    the shared memory format described in this paper as the disk format,
//    instead. We expect that the much simpler translation to heap memory
//    format will speed up disk recovery significantly."
//
// The same rows are ingested through a row-major-format leaf and a
// columnar-format leaf; both then crash and disk-recover. The raw read is
// throttled identically; the difference is pure translation. (The
// columnar file is also ~9x smaller — compression persists to disk — so
// its raw read shrinks too.)

#include <cstdio>

#include "bench_util.h"
#include "ingest/row_generator.h"
#include "server/leaf_server.h"

namespace scuba {
namespace {

using bench_util::BenchEnv;
using bench_util::MiB;

constexpr uint64_t kDiskBytesPerSec = 90ull << 20;

struct Outcome {
  double read_s = 0;
  double translate_s = 0;
  uint64_t disk_bytes = 0;
  uint64_t rows = 0;
};

StatusOr<Outcome> Run(BenchEnv* env, BackupFormatKind format,
                      uint32_t leaf_id, size_t batches) {
  LeafServerConfig config;
  config.leaf_id = leaf_id;
  config.namespace_prefix = env->prefix();
  config.backup_dir = env->dir() + "/leaf_" + std::to_string(leaf_id);
  config.backup_format = format;
  config.disk_throttle_bytes_per_sec = kDiskBytesPerSec;

  {
    LeafServer leaf(config);
    SCUBA_ASSIGN_OR_RETURN(RecoveryResult ignored, leaf.Start());
    (void)ignored;
    RowGeneratorConfig gconfig;
    gconfig.seed = 99;
    RowGenerator gen(gconfig);
    for (size_t i = 0; i < batches; ++i) {
      SCUBA_RETURN_IF_ERROR(leaf.AddRows("service_logs", gen.NextBatch(8192)));
    }
    leaf.Crash();  // unclean death: only the disk backup survives
  }

  LeafServer fresh(config);
  SCUBA_ASSIGN_OR_RETURN(RecoveryResult result, fresh.Start());
  if (result.source != RecoverySource::kDisk) {
    return Status::Internal("expected disk recovery");
  }
  Outcome outcome;
  outcome.rows = fresh.RowCount();
  if (format == BackupFormatKind::kColumnar) {
    outcome.read_s = result.columnar_stats.read_micros / 1e6;
    outcome.translate_s = result.columnar_stats.translate_micros / 1e6;
    outcome.disk_bytes = result.columnar_stats.bytes_read;
  } else {
    outcome.read_s = result.disk_stats.read_micros / 1e6;
    outcome.translate_s = result.disk_stats.translate_micros / 1e6;
    outcome.disk_bytes = result.disk_stats.bytes_read;
  }
  return outcome;
}

int Main() {
  BenchEnv env("e11");
  std::printf("E11: disk recovery with the row-major format vs the §6 "
              "columnar (shm-layout) format\n"
              "identical rows, disk read modeled at %.0f MB/s\n\n",
              static_cast<double>(kDiskBytesPerSec) / 1e6);
  std::printf("%12s %10s %10s %12s %12s %10s\n", "format", "disk_MiB",
              "read_s", "translate_s", "total_s", "rows");

  constexpr size_t kBatches = 24;  // ~196k rows, ~3 sealed blocks
  Outcome row_major;
  Outcome columnar;
  {
    auto outcome = Run(&env, BackupFormatKind::kRowMajor, 0, kBatches);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    row_major = *outcome;
  }
  {
    auto outcome = Run(&env, BackupFormatKind::kColumnar, 1, kBatches);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    columnar = *outcome;
  }

  for (const auto& [name, o] :
       {std::pair<const char*, Outcome&>{"row-major", row_major},
        std::pair<const char*, Outcome&>{"columnar", columnar}}) {
    std::printf("%12s %10.1f %10.2f %12.3f %12.2f %10llu\n", name,
                MiB(o.disk_bytes), o.read_s, o.translate_s,
                o.read_s + o.translate_s,
                static_cast<unsigned long long>(o.rows));
  }

  double speedup = (row_major.read_s + row_major.translate_s) /
                   (columnar.read_s + columnar.translate_s);
  std::printf("\ncolumnar disk recovery is %.1fx faster end-to-end "
              "(translate alone: %.0fx faster), and the file is %.1fx "
              "smaller — §6's expectation holds.\n",
              speedup, row_major.translate_s / columnar.translate_s,
              static_cast<double>(row_major.disk_bytes) /
                  static_cast<double>(columnar.disk_bytes));
  std::printf("(shared memory remains faster still: no disk read at "
              "all; see bench_disk_vs_shm.)\n");
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Main(); }
