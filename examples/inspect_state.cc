// inspect_state: an operator's view of a leaf's persistent state — what
// the rollover dashboard's operator would run when something looks off.
//
//   ./build/examples/inspect_state <namespace_prefix> [backup_dir]
//
// Reports, without modifying anything:
//   - shared memory: per-leaf metadata segments (valid bit, layout
//     version, table segments and their sizes) — i.e. whether the next
//     restart will take the fast path;
//   - disk: backup files per format (row-major .bak, columnar .cols +
//     tails) and their sizes.
//
// With no arguments it demos itself: builds a leaf, shuts it down to shm,
// and inspects the result.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "disk/columnar_backup.h"
#include "disk/file.h"
#include "ingest/row_generator.h"
#include "server/leaf_server.h"
#include "shm/leaf_metadata.h"
#include "shm/shm_segment.h"

namespace {

void InspectSharedMemory(const std::string& ns) {
  std::printf("shared memory (namespace '%s'):\n", ns.c_str());
  auto segments = scuba::ShmSegment::List("/" + ns + "_");
  if (segments.empty()) {
    std::printf("  (no segments — next restart will use disk)\n");
    return;
  }
  // Find leaf ids by probing metadata names.
  for (uint32_t leaf_id = 0; leaf_id < 1024; ++leaf_id) {
    if (!scuba::LeafMetadata::Exists(ns, leaf_id)) continue;
    auto meta = scuba::LeafMetadata::Open(ns, leaf_id);
    if (!meta.ok()) {
      std::printf("  leaf %u: metadata UNREADABLE (%s) -> disk recovery\n",
                  leaf_id, meta.status().ToString().c_str());
      continue;
    }
    std::printf("  leaf %u: valid=%s layout_version=%u tables=%zu %s\n",
                leaf_id, meta->valid() ? "TRUE" : "false",
                meta->layout_version(), meta->table_segment_names().size(),
                meta->valid() ? "-> memory recovery ready"
                              : "-> disk recovery (crash or in-flight)");
    for (const std::string& segment_name : meta->table_segment_names()) {
      std::string path = "/dev/shm" + segment_name;
      std::printf("      %-48s %10.2f MiB\n", segment_name.c_str(),
                  scuba::FileSize(path) / 1048576.0);
    }
  }
  std::printf("  total shm bytes: %.2f MiB\n",
              scuba::TotalShmBytes("/" + ns + "_") / 1048576.0);
}

void InspectBackupDir(const std::string& dir) {
  std::printf("disk backups ('%s'):\n", dir.c_str());
  auto row_major = scuba::ListFiles(dir, ".bak");
  if (row_major.ok() && !row_major->empty()) {
    for (const std::string& file : *row_major) {
      std::printf("  [row-major] %-32s %10.2f MiB\n", file.c_str(),
                  scuba::FileSize(dir + "/" + file) / 1048576.0);
    }
  }
  auto columnar = scuba::ColumnarBackupReader::ListTables(dir);
  if (columnar.ok()) {
    for (const std::string& table : *columnar) {
      std::string cols = dir + "/" + table + ".cols";
      auto blocks = scuba::ColumnarBackupReader::CountBlocks(cols);
      std::printf("  [columnar]  %-32s %10.2f MiB, %llu sealed blocks\n",
                  (table + ".cols").c_str(),
                  scuba::FileSize(cols) / 1048576.0,
                  blocks.ok() ? static_cast<unsigned long long>(*blocks)
                              : 0ull);
      // Tail generations present (exactly one is live).
      auto all = scuba::ListFiles(dir, "");
      if (all.ok()) {
        for (const std::string& file : *all) {
          if (file.rfind(table + ".tail.", 0) == 0) {
            std::printf("              %-32s %10.2f KiB\n", file.c_str(),
                        scuba::FileSize(dir + "/" + file) / 1024.0);
          }
        }
      }
    }
  }
  if ((!row_major.ok() || row_major->empty()) &&
      (!columnar.ok() || columnar->empty())) {
    std::printf("  (no backup files)\n");
  }
}

int Demo() {
  std::string ns = "scuba_inspect_" + std::to_string(getpid());
  std::string dir = "/tmp/" + ns;
  scuba::ShmSegment::RemoveAll("/" + ns);

  {
    scuba::LeafServerConfig config;
    config.leaf_id = 0;
    config.namespace_prefix = ns;
    config.backup_dir = dir;
    config.backup_format = scuba::BackupFormatKind::kColumnar;
    scuba::LeafServer leaf(config);
    if (!leaf.Start().ok()) return 1;
    scuba::RowGenerator gen;
    for (int i = 0; i < 10; ++i) {
      if (!leaf.AddRows("requests", gen.NextBatch(8192)).ok()) return 1;
    }
    scuba::ShutdownStats stats;
    if (!leaf.ShutdownToSharedMemory(&stats).ok()) return 1;
  }

  std::printf("--- demo leaf after a clean shutdown ---\n");
  InspectSharedMemory(ns);
  InspectBackupDir(dir);

  scuba::ShmSegment::RemoveAll("/" + ns);
  std::string cleanup = "rm -rf " + dir;
  if (std::system(cleanup.c_str()) != 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Demo();
  InspectSharedMemory(argv[1]);
  if (argc > 2) InspectBackupDir(argv[2]);
  return 0;
}
