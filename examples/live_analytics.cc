// Live analytics: the Scuba use case the paper opens with — engineers
// watching error rates and latency in near real time (§1: "detecting
// user-facing errors", "performance debugging").
//
// An aggregator fans time-windowed queries out over four leaves while a
// tailer keeps streaming rows in; mid-session one leaf restarts through
// shared memory, and the dashboards keep rendering (briefly partial).
//
// Run: ./build/examples/live_analytics

#include <unistd.h>

#include <cstdio>
#include <memory>

#include "ingest/row_generator.h"
#include "ingest/tailer.h"
#include "server/aggregator.h"
#include "shm/shm_segment.h"

namespace {

struct Fleet {
  std::vector<std::unique_ptr<scuba::LeafServer>> leaves;
  scuba::Aggregator aggregator;
  scuba::CategoryLog log;
  std::unique_ptr<scuba::Tailer> tailer;

  std::vector<scuba::LeafServer*> Pointers() {
    std::vector<scuba::LeafServer*> out;
    for (auto& leaf : leaves) out.push_back(leaf.get());
    return out;
  }
};

void ShowDashboard(Fleet* fleet, int64_t window_begin, int64_t window_end) {
  scuba::Query query;
  query.table = "requests";
  query.begin_time = window_begin;
  query.end_time = window_end;
  query.group_by = {"service"};
  query.aggregates = {scuba::Count(), scuba::P50("latency_ms"),
                      scuba::P99("latency_ms")};

  auto result = fleet->aggregator.Execute(query);
  if (!result.ok()) {
    std::printf("  query error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  window [%lld, %lld] -> %zu services, %llu rows scanned, "
              "%llu blocks pruned%s\n",
              static_cast<long long>(window_begin),
              static_cast<long long>(window_end),
              result->num_groups(),
              static_cast<unsigned long long>(result->rows_scanned),
              static_cast<unsigned long long>(result->blocks_pruned),
              result->IsPartial() ? "  [PARTIAL: a leaf is restarting]"
                                  : "");
  for (const scuba::ResultRow& row : result->Finalize(query.aggregates, 3)) {
    std::printf("    %-8s n=%7.0f p50=%6.1f ms p99=%7.1f ms\n",
                std::get<std::string>(row.group_key[0]).c_str(),
                row.aggregates[0], row.aggregates[1], row.aggregates[2]);
  }
}

// Per-10-second error-count timeline over the whole session — the Scuba
// dashboard chart, via time-bucketed grouping.
void ShowErrorTimeline(Fleet* fleet, int64_t begin, int64_t end) {
  scuba::Query query;
  query.table = "requests";
  query.begin_time = begin;
  query.end_time = end;
  query.time_bucket_seconds = 10;
  query.predicates = {{"status", scuba::CompareOp::kGe,
                       scuba::Value(int64_t{500})}};
  query.aggregates = {scuba::Count()};
  auto result = fleet->aggregator.Execute(query);
  if (!result.ok()) return;
  std::printf("  errors per 10s:");
  for (const scuba::ResultRow& row : result->Finalize(query.aggregates)) {
    std::printf(" [t+%lld: %.0f]",
                static_cast<long long>(std::get<int64_t>(row.group_key[0]) -
                                       begin),
                row.aggregates[0]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::string ns = "scuba_live_" + std::to_string(getpid());
  scuba::ShmSegment::RemoveAll("/" + ns);

  Fleet fleet;
  for (uint32_t i = 0; i < 4; ++i) {
    scuba::LeafServerConfig config;
    config.leaf_id = i;
    config.namespace_prefix = ns;
    config.backup_dir = "/tmp/" + ns + "/leaf_" + std::to_string(i);
    std::string mk = "mkdir -p " + config.backup_dir;
    if (std::system(mk.c_str()) != 0) return 1;
    fleet.leaves.push_back(std::make_unique<scuba::LeafServer>(config));
    if (!fleet.leaves.back()->Start().ok()) return 1;
  }
  fleet.aggregator.SetLeaves(fleet.Pointers());

  scuba::TailerConfig tconfig;
  tconfig.category = "requests";
  tconfig.batch_rows = 1024;
  fleet.tailer = std::make_unique<scuba::Tailer>(tconfig, &fleet.log,
                                                 fleet.Pointers());

  scuba::RowGeneratorConfig gconfig;
  gconfig.rows_per_second = 4000;
  scuba::RowGenerator gen(gconfig);

  // Minute 1 of traffic.
  fleet.log.AppendBatch("requests", gen.NextBatch(120000));
  if (!fleet.tailer->Pump(true).ok()) return 1;
  int64_t t0 = gconfig.start_time;
  std::printf("tick 1: all leaves alive\n");
  ShowDashboard(&fleet, t0, gen.current_time());

  // A leaf goes down for upgrade; dashboards keep working (partially).
  scuba::ShutdownStats stats;
  if (!fleet.leaves[1]->ShutdownToSharedMemory(&stats).ok()) return 1;
  std::printf("\ntick 2: leaf 1 restarting (copied %.1f MiB to shm)\n",
              stats.bytes_copied / 1048576.0);
  ShowDashboard(&fleet, t0, gen.current_time());

  // The new process adopts the memory; traffic kept flowing to the others.
  fleet.log.AppendBatch("requests", gen.NextBatch(60000));
  if (!fleet.tailer->Pump(true).ok()) return 1;
  {
    scuba::LeafServerConfig config = fleet.leaves[1]->config();
    fleet.leaves[1] = std::make_unique<scuba::LeafServer>(config);
    auto recovered = fleet.leaves[1]->Start();
    if (!recovered.ok() ||
        recovered->source != scuba::RecoverySource::kSharedMemory) {
      return 1;
    }
    fleet.aggregator.SetLeaves(fleet.Pointers());
    fleet.tailer->SetLeaves(fleet.Pointers());
  }
  if (!fleet.tailer->Pump(true).ok()) return 1;

  std::printf("\ntick 3: leaf 1 back (memory recovery); complete results, "
              "recent window\n");
  ShowDashboard(&fleet, gen.current_time() - 20, gen.current_time());

  std::printf("\ntick 4: zoom into the first seconds of the session\n");
  ShowDashboard(&fleet, t0, t0 + 5);

  std::printf("\ntick 5: error-rate timeline (time-bucketed group-by)\n");
  ShowErrorTimeline(&fleet, t0, t0 + 45);

  scuba::ShmSegment::RemoveAll("/" + ns);
  std::string cleanup = "rm -rf /tmp/" + ns;
  if (std::system(cleanup.c_str()) != 0) return 1;
  return 0;
}
