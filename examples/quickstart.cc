// Quickstart: the library's core loop in ~100 lines.
//
//  1. start a leaf server
//  2. ingest service-log rows
//  3. run a Scuba-style aggregation query
//  4. shut down THROUGH SHARED MEMORY (Fig 6)
//  5. start a "new binary" that recovers in memory-copy time (Fig 7)
//  6. verify the data survived
//
// Build & run:  ./build/examples/quickstart

#include <unistd.h>

#include <cstdio>

#include "ingest/row_generator.h"
#include "server/leaf_server.h"
#include "shm/shm_segment.h"
#include "util/clock.h"

namespace {

scuba::LeafServerConfig MakeConfig(const std::string& ns) {
  scuba::LeafServerConfig config;
  config.leaf_id = 0;
  config.namespace_prefix = ns;
  config.backup_dir = "/tmp/" + ns + "_backup";
  return config;
}

void PrintErrorRates(scuba::LeafServer* leaf) {
  scuba::Query query;
  query.table = "requests";
  query.predicates = {{"status", scuba::CompareOp::kGe,
                       scuba::Value(int64_t{500})}};
  query.group_by = {"service"};
  query.aggregates = {scuba::Count(), scuba::Avg("latency_ms")};

  auto result = leaf->ExecuteQuery(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  errors by service (top 5): rows_scanned=%llu "
              "blocks_pruned=%llu\n",
              static_cast<unsigned long long>(result->rows_scanned),
              static_cast<unsigned long long>(result->blocks_pruned));
  for (const scuba::ResultRow& row : result->Finalize(query.aggregates, 5)) {
    std::printf("    %-10s errors=%6.0f avg_latency=%.1f ms\n",
                std::get<std::string>(row.group_key[0]).c_str(),
                row.aggregates[0], row.aggregates[1]);
  }
}

}  // namespace

int main() {
  std::string ns = "scuba_quickstart_" + std::to_string(getpid());
  scuba::ShmSegment::RemoveAll("/" + ns);

  // 1-2: start a leaf and ingest half a million rows.
  auto leaf = std::make_unique<scuba::LeafServer>(MakeConfig(ns));
  auto started = leaf->Start();
  if (!started.ok()) return 1;
  std::printf("leaf started (%s recovery)\n",
              std::string(RecoverySourceName(started->source)).c_str());

  scuba::RowGenerator gen;
  for (int i = 0; i < 64; ++i) {
    if (!leaf->AddRows("requests", gen.NextBatch(8192)).ok()) return 1;
  }
  std::printf("ingested %llu rows, %0.1f MiB in memory\n",
              static_cast<unsigned long long>(leaf->RowCount()),
              leaf->MemoryUsedBytes() / 1048576.0);

  // 3: query.
  PrintErrorRates(leaf.get());

  // 4: clean shutdown — data moves to shared memory, process state dies.
  scuba::ShutdownStats stats;
  scuba::Stopwatch down;
  if (!leaf->ShutdownToSharedMemory(&stats).ok()) return 1;
  std::printf("shutdown: copied %0.1f MiB to shared memory in %0.0f ms\n",
              stats.bytes_copied / 1048576.0,
              down.ElapsedMicros() / 1000.0);
  leaf.reset();  // the old process is gone

  // 5: the upgraded binary starts and recovers at memory speed.
  auto fresh = std::make_unique<scuba::LeafServer>(MakeConfig(ns));
  scuba::Stopwatch up;
  auto recovered = fresh->Start();
  if (!recovered.ok()) return 1;
  std::printf("new process recovered %llu rows from %s in %0.0f ms\n",
              static_cast<unsigned long long>(fresh->RowCount()),
              std::string(RecoverySourceName(recovered->source)).c_str(),
              up.ElapsedMicros() / 1000.0);

  // 6: the data is all there.
  PrintErrorRates(fresh.get());

  scuba::ShmSegment::RemoveAll("/" + ns);
  std::string cleanup = "rm -rf /tmp/" + ns + "_backup";
  if (std::system(cleanup.c_str()) != 0) return 1;
  return 0;
}
