// The self-hosted slow-query log, end to end: a deliberately slow query
// lands as a row in the reserved __scuba_queries table, that row is
// queryable back through the same aggregator that ran the query — and
// because the table rides the shared-memory handoff, it is still there
// after a rolling restart of the whole cluster. This demo (and CI smoke)
// proves the loop:
//
//   1. start a mini-cluster with self-stats on and a 1 ms slow threshold,
//   2. run a heavyweight group-by over enough rows to cross the threshold,
//   3. query __scuba_queries through the aggregator: the slow row is
//      there, with the query's fingerprint and profile counters,
//   4. roll the cluster through shared memory,
//   5. query again: the slow-query row survived the rollover.
//
// Exits non-zero if any step fails — ci/check.sh runs it as the
// slow-query-log smoke leg.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dashboard.h"
#include "ingest/row_generator.h"
#include "obs/stats_exporter.h"

namespace scuba {
namespace {

double CountSlowRows(Aggregator& aggregator, const std::string& fingerprint) {
  Query q;
  q.table = obs::kQueriesTableName;
  q.predicates.push_back(
      {"kind", CompareOp::kEq, Value(std::string("slow"))});
  q.predicates.push_back({"fingerprint", CompareOp::kEq, Value(fingerprint)});
  q.aggregates = {Count()};
  auto result = aggregator.Execute(q);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }
  auto rows = result->Finalize({Count()});
  return rows.empty() ? 0.0 : rows[0].aggregates[0];
}

int Run() {
  ClusterConfig config;
  config.num_machines = 1;
  config.leaves_per_machine = 2;
  config.namespace_prefix = "scuba_slowlog_demo_" + std::to_string(getpid());
  config.backup_root = "/tmp/" + config.namespace_prefix;
  config.self_stats_enabled = true;
  // Anything over 1 ms is "slow" — the group-by below comfortably is.
  config.slow_query_log_threshold_micros = 1000;

  Cluster cluster(config);
  if (!cluster.Start().ok()) return 1;

  RowGenerator gen;
  cluster.log().AppendBatch("requests", gen.NextBatch(60000));
  cluster.AddTailer("requests");
  auto pumped = cluster.PumpTailers(true);
  if (!pumped.ok() || *pumped != 60000) return 1;

  // The deliberately slow query: full-table group-by with a percentile.
  Query heavy;
  heavy.table = "requests";
  heavy.group_by = {"service"};
  heavy.aggregates = {Count(), Avg("latency_ms"), P99("latency_ms")};
  auto result = cluster.aggregator().Execute(heavy);
  if (!result.ok()) {
    std::fprintf(stderr, "heavy query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("heavy query profile:\n%s\n",
              result->profile().ToText().c_str());
  if (result->profile().wall_micros < 1000) {
    std::fprintf(stderr, "FAIL: heavy query finished under the threshold "
                 "(%lld us); smoke cannot prove the log\n",
                 static_cast<long long>(result->profile().wall_micros));
    return 1;
  }

  const std::string fingerprint = heavy.Fingerprint();
  double before = CountSlowRows(cluster.aggregator(), fingerprint);
  std::printf("slow-query rows in __scuba_queries before rollover: %.0f\n",
              before);
  if (before <= 0) {
    std::fprintf(stderr, "FAIL: slow query was not logged\n");
    return 1;
  }

  RealRolloverOptions options;
  options.batch_fraction = 0.5;
  auto report = cluster.Rollover(options);
  if (!report.ok()) {
    std::fprintf(stderr, "rollover failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (report->shm_recoveries != cluster.num_leaves()) {
    std::fprintf(stderr, "FAIL: expected every leaf to recover via shm\n");
    return 1;
  }

  double after = CountSlowRows(cluster.aggregator(), fingerprint);
  std::printf("slow-query rows in __scuba_queries after rollover:  %.0f\n",
              after);
  if (after < before) {
    std::fprintf(stderr,
                 "FAIL: slow-query log lost rows in the rollover "
                 "(before=%.0f after=%.0f)\n",
                 before, after);
    return 1;
  }

  // The dashboard's query panel sees the slow query too.
  Dashboard::QueryPanelStats panel =
      Dashboard::CollectQueryPanel(cluster.aggregator(), 0.0);
  std::printf("\nquery panel:\n%s\n",
              Dashboard::RenderQueryPanel(panel).c_str());
  if (panel.slowest_query_id == 0) {
    std::fprintf(stderr, "FAIL: query panel never saw the slow query\n");
    return 1;
  }

  std::printf("OK: the slow query's log row survived the rollover and is "
              "queryable through the aggregator.\n");
  cluster.Cleanup();
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Run(); }
