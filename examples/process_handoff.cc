// Process handoff: the paper's mechanism across REAL process boundaries.
//
// "Shared memory allows a process to communicate with its replacement,
//  even though the lifetimes of the two processes do not overlap" (§3).
//
// This example re-executes its own binary twice:
//   generation 1 (child A): builds a database, copies it to shared memory
//                           (Fig 6), and exits. Its heap is gone.
//   generation 2 (child B): a different process, started after A died,
//                           finds the valid bit set and adopts the data at
//                           memcpy speed (Fig 7).
// The parent verifies B saw exactly what A stored.
//
// Run: ./build/examples/process_handoff

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "ingest/row_generator.h"
#include "server/leaf_server.h"
#include "shm/shm_segment.h"
#include "util/clock.h"

namespace {

constexpr uint64_t kExpectedRows = 25 * 8192;  // exact batch multiple

scuba::LeafServerConfig MakeConfig(const std::string& ns) {
  scuba::LeafServerConfig config;
  config.leaf_id = 7;
  config.namespace_prefix = ns;
  config.backup_dir = "";  // memory-only: shm is the ONLY persistence here
  return config;
}

int RunGeneration1(const std::string& ns) {
  scuba::LeafServer leaf(MakeConfig(ns));
  if (!leaf.Start().ok()) return 10;

  scuba::RowGenerator gen;
  while (leaf.RowCount() < kExpectedRows) {
    if (!leaf.AddRows("events", gen.NextBatch(8192)).ok()) return 11;
  }
  std::printf("[gen1 pid %d] built %llu rows (%.1f MiB); copying to shared "
              "memory and exiting\n",
              getpid(), static_cast<unsigned long long>(leaf.RowCount()),
              leaf.MemoryUsedBytes() / 1048576.0);

  scuba::ShutdownStats stats;
  if (!leaf.ShutdownToSharedMemory(&stats).ok()) return 12;
  return 0;
}

int RunGeneration2(const std::string& ns) {
  scuba::Stopwatch watch;
  scuba::LeafServer leaf(MakeConfig(ns));
  auto recovered = leaf.Start();
  if (!recovered.ok()) return 20;
  if (recovered->source != scuba::RecoverySource::kSharedMemory) return 21;

  std::printf("[gen2 pid %d] adopted %llu rows from shared memory in "
              "%.0f ms\n",
              getpid(), static_cast<unsigned long long>(leaf.RowCount()),
              watch.ElapsedMicros() / 1000.0);

  scuba::Query query;
  query.table = "events";
  query.aggregates = {scuba::Count()};
  auto result = leaf.ExecuteQuery(query);
  if (!result.ok()) return 22;
  double count = result->Finalize(query.aggregates)[0].aggregates[0];
  std::printf("[gen2 pid %d] count(*) = %.0f\n", getpid(), count);
  return count == static_cast<double>(kExpectedRows) ? 0 : 23;
}

int SpawnSelf(const char* self, const std::string& mode,
              const std::string& ns) {
  pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    execl(self, self, mode.c_str(), ns.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) != pid || !WIFEXITED(wstatus)) return -1;
  return WEXITSTATUS(wstatus);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "gen1") == 0) {
    return RunGeneration1(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "gen2") == 0) {
    return RunGeneration2(argv[2]);
  }

  std::string ns = "scuba_handoff_" + std::to_string(getpid());
  scuba::ShmSegment::RemoveAll("/" + ns);

  std::printf("[parent pid %d] spawning generation 1...\n", getpid());
  int rc1 = SpawnSelf(argv[0], "gen1", ns);
  if (rc1 != 0) {
    std::fprintf(stderr, "generation 1 failed: %d\n", rc1);
    return 1;
  }
  std::printf("[parent] generation 1 is dead; its memory lives in "
              "/dev/shm (%zu segments)\n",
              scuba::ShmSegment::List("/" + ns).size());

  std::printf("[parent] spawning generation 2...\n");
  int rc2 = SpawnSelf(argv[0], "gen2", ns);
  scuba::ShmSegment::RemoveAll("/" + ns);
  if (rc2 != 0) {
    std::fprintf(stderr, "generation 2 failed: %d\n", rc2);
    return 1;
  }
  std::printf("[parent] handoff verified: all %llu rows crossed the "
              "process boundary\n",
              static_cast<unsigned long long>(kExpectedRows));
  return 0;
}
