// "Scuba monitors Scuba": the cluster's own restart history lives in the
// reserved __scuba_stats table on every leaf, queryable through the normal
// aggregator fan-out — and because the table rides the shared-memory
// handoff, a rolling upgrade does not erase it. This demo (and CI smoke)
// proves the loop end to end:
//
//   1. start a mini-cluster with self-stats on; every leaf writes a
//      generation-1 "alive" restart row,
//   2. query restart-phase rows through the aggregator (non-zero BEFORE),
//   3. roll the cluster through shared memory, with the heartbeat-fed
//      dashboard view,
//   4. query again: the generation-1 rows are still there, joined by
//      generation-2 rows (non-zero AFTER, strictly more than before).
//
// Exits non-zero if any step fails — ci/check.sh runs it as the
// self-stats smoke leg.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dashboard.h"
#include "ingest/row_generator.h"
#include "obs/stats_exporter.h"

namespace scuba {
namespace {

double CountRestartRows(Aggregator& aggregator) {
  Query q;
  q.table = obs::kStatsTableName;
  q.predicates.push_back(
      {"kind", CompareOp::kEq, Value(std::string("restart"))});
  q.aggregates = {Count()};
  auto result = aggregator.Execute(q);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return -1;
  }
  auto rows = result->Finalize({Count()});
  return rows.empty() ? 0.0 : rows[0].aggregates[0];
}

int Run() {
  ClusterConfig config;
  config.num_machines = 1;
  config.leaves_per_machine = 2;
  config.namespace_prefix =
      "scuba_selfstats_demo_" + std::to_string(getpid());
  config.backup_root =
      "/tmp/" + config.namespace_prefix;
  config.self_stats_enabled = true;

  Cluster cluster(config);
  if (!cluster.Start().ok()) return 1;

  RowGenerator gen;
  cluster.log().AppendBatch("requests", gen.NextBatch(4000));
  cluster.AddTailer("requests");
  auto pumped = cluster.PumpTailers(true);
  if (!pumped.ok() || *pumped != 4000) return 1;

  double before = CountRestartRows(cluster.aggregator());
  std::printf("restart-phase rows in __scuba_stats before rollover: %.0f\n",
              before);
  if (before <= 0) {
    std::fprintf(stderr, "FAIL: no restart rows before rollover\n");
    return 1;
  }

  RealRolloverOptions options;
  options.batch_fraction = 0.5;
  auto report = cluster.Rollover(options);
  if (!report.ok()) {
    std::fprintf(stderr, "rollover failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrollover dashboard (heartbeat-fed live phases):\n%s\n",
              Dashboard::RenderDetailed(report->timeline).c_str());
  if (report->shm_recoveries != cluster.num_leaves()) {
    std::fprintf(stderr, "FAIL: expected every leaf to recover via shm\n");
    return 1;
  }

  double after = CountRestartRows(cluster.aggregator());
  std::printf("restart-phase rows in __scuba_stats after rollover:  %.0f\n",
              after);
  if (after <= before) {
    std::fprintf(stderr,
                 "FAIL: restart history did not survive the rollover "
                 "(before=%.0f after=%.0f)\n", before, after);
    return 1;
  }

  std::printf("\nOK: generation-1 restart history survived the restart; "
              "generation 2 appended its own rows.\n");
  cluster.Cleanup();
  return 0;
}

}  // namespace
}  // namespace scuba

int main() { return scuba::Run(); }
