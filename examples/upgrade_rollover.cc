// Rolling upgrade of a whole (mini) cluster — Fig 8 live.
//
// A 4-machine x 8-leaf cluster ingests a stream while every leaf is
// upgraded through shared memory, a small batch at a time spread across
// machines. Queries run between batches and always answer — partially
// while a batch is down, fully afterwards.
//
// Run: ./build/examples/upgrade_rollover

#include <unistd.h>

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/dashboard.h"
#include "ingest/row_generator.h"

namespace {

double QueryErrorCount(scuba::Cluster* cluster, bool* partial) {
  scuba::Query query;
  query.table = "requests";
  query.predicates = {{"status", scuba::CompareOp::kGe,
                       scuba::Value(int64_t{500})}};
  query.aggregates = {scuba::Count()};
  auto result = cluster->aggregator().Execute(query);
  if (!result.ok()) return -1;
  *partial = result->IsPartial();
  return result->Finalize(query.aggregates)[0].aggregates[0];
}

}  // namespace

int main() {
  std::string ns = "scuba_rollover_" + std::to_string(getpid());

  scuba::ClusterConfig config;
  config.num_machines = 4;
  config.leaves_per_machine = 8;
  config.namespace_prefix = ns;
  config.backup_root = "/tmp/" + ns;

  scuba::Cluster cluster(config);
  if (!cluster.Start().ok()) return 1;
  std::printf("cluster up: %zu machines x %zu leaves\n", config.num_machines,
              config.leaves_per_machine);

  // Stream rows in through the Scribe-like log + tailers (Fig 1).
  scuba::RowGenerator gen;
  cluster.log().AppendBatch("requests", gen.NextBatch(48000));
  cluster.AddTailer("requests", 512);
  if (!cluster.PumpTailers(true).ok()) return 1;
  bool partial = false;
  std::printf("ingested %llu rows; baseline error count = %.0f\n\n",
              static_cast<unsigned long long>(cluster.TotalRowCount()),
              QueryErrorCount(&cluster, &partial));

  // The upgrade: 2 leaves at a time (1 per machine pair), via shm.
  scuba::RealRolloverOptions options;
  options.batch_fraction = 1.0 / 16;  // 2 of 32 leaves per batch
  options.pump_tailers_between_batches = true;
  std::printf("rolling over (dashboard, Fig 8):\n");
  auto report = cluster.Rollover(options);
  if (!report.ok()) {
    std::fprintf(stderr, "rollover failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", scuba::Dashboard::Render(report->timeline, 12).c_str());
  std::printf("rollover done: %zu leaves in %zu batches, %.2f s wall, "
              "%zu/%zu via shared memory, min availability %.1f%%\n",
              report->leaves_rolled, report->num_batches,
              report->total_micros / 1e6, report->shm_recoveries,
              report->leaves_rolled, report->min_availability * 100);

  // Data fully available again on the "new version".
  if (!cluster.PumpTailers(true).ok()) return 1;
  double errors = QueryErrorCount(&cluster, &partial);
  std::printf("post-upgrade error count = %.0f (%s result), rows = %llu\n",
              errors, partial ? "partial" : "complete",
              static_cast<unsigned long long>(cluster.TotalRowCount()));

  cluster.Cleanup();
  return 0;
}
