// Crash vs clean shutdown: the valid-bit protocol (paper §4, Fig 5b/7).
//
// "We do not use shared memory to recover from a crash; the crash may
//  have been caused by memory corruption."
//
// Three restarts of the same leaf:
//   A. clean shutdown  -> valid bit set   -> memory recovery (fast)
//   B. crash           -> no valid bit    -> disk recovery (slow, safe)
//   C. interrupted restore (valid bit cleared mid-restore) -> disk again
//
// Run: ./build/examples/crash_recovery

#include <unistd.h>

#include <cstdio>

#include "ingest/row_generator.h"
#include "server/leaf_server.h"
#include "shm/leaf_metadata.h"
#include "shm/shm_segment.h"
#include "util/clock.h"

namespace {

scuba::LeafServerConfig MakeConfig(const std::string& ns) {
  scuba::LeafServerConfig config;
  config.leaf_id = 0;
  config.namespace_prefix = ns;
  config.backup_dir = "/tmp/" + ns + "_backup";
  return config;
}

int Restart(const std::string& ns, const char* label,
            scuba::RecoverySource expected) {
  scuba::Stopwatch watch;
  scuba::LeafServer leaf(MakeConfig(ns));
  auto recovered = leaf.Start();
  if (!recovered.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: recovered %llu rows from %-13s in %6.0f ms %s\n", label,
              static_cast<unsigned long long>(leaf.RowCount()),
              std::string(RecoverySourceName(recovered->source)).c_str(),
              watch.ElapsedMicros() / 1000.0,
              recovered->source == expected ? "(as expected)"
                                            : "(UNEXPECTED!)");
  if (recovered->source != expected) return 1;

  // Leave state behind for the next step: clean shutdown for A->B setup
  // happens outside; here we always end with a clean handoff.
  scuba::ShutdownStats stats;
  return leaf.ShutdownToSharedMemory(&stats).ok() ? 0 : 1;
}

}  // namespace

int main() {
  std::string ns = "scuba_crash_" + std::to_string(getpid());
  scuba::ShmSegment::RemoveAll("/" + ns);

  // Seed: build data, back it up to disk, and do one clean shutdown.
  {
    scuba::LeafServer leaf(MakeConfig(ns));
    if (!leaf.Start().ok()) return 1;
    scuba::RowGenerator gen;
    for (int i = 0; i < 24; ++i) {
      if (!leaf.AddRows("events", gen.NextBatch(8192)).ok()) return 1;
    }
    std::printf("seeded %llu rows (backed up to disk as they arrived)\n",
                static_cast<unsigned long long>(leaf.RowCount()));
    scuba::ShutdownStats stats;
    if (!leaf.ShutdownToSharedMemory(&stats).ok()) return 1;
  }

  // A: planned upgrade path — the valid bit is set, memory recovery runs.
  if (Restart(ns, "A (clean shutdown) ", scuba::RecoverySource::kSharedMemory))
    return 1;

  // B: crash. Simulate by scrubbing the valid state the way an unclean
  // death leaves it: the previous clean shutdown's segments exist, but we
  // clear the valid bit as RestoreFromShm would have before dying.
  {
    auto meta = scuba::LeafMetadata::Open(ns, 0);
    if (!meta.ok()) return 1;
    if (!meta->SetValid(false).ok()) return 1;
    std::printf("simulated crash: valid bit cleared; shm contents now "
                "untrusted\n");
  }
  if (Restart(ns, "B (after crash)    ", scuba::RecoverySource::kDisk))
    return 1;

  // C: memory recovery disabled by operator (Fig 5b's left edge).
  {
    scuba::Stopwatch watch;
    auto config = MakeConfig(ns);
    config.memory_recovery_enabled = false;
    scuba::LeafServer leaf(config);
    auto recovered = leaf.Start();
    if (!recovered.ok() ||
        recovered->source != scuba::RecoverySource::kDisk) {
      return 1;
    }
    std::printf("C (recovery disabled): recovered %llu rows from disk "
                "in %6.0f ms; shm segments freed\n",
                static_cast<unsigned long long>(leaf.RowCount()),
                watch.ElapsedMicros() / 1000.0);
    leaf.Crash();
  }

  scuba::ShmSegment::RemoveAll("/" + ns);
  std::string cleanup = "rm -rf /tmp/" + ns + "_backup";
  if (std::system(cleanup.c_str()) != 0) return 1;
  std::printf("done: memory path for planned upgrades, disk path for "
              "everything suspicious\n");
  return 0;
}
