#ifndef SCUBA_DISK_BACKUP_WRITER_H_
#define SCUBA_DISK_BACKUP_WRITER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/row.h"
#include "disk/file.h"
#include "util/status.h"

namespace scuba {

/// Maintains a leaf server's on-disk backup: one append-only file per
/// table under the leaf's backup directory. "Scuba stores backups of all
/// incoming data to disk, so it is always possible to recover from disk"
/// (§4.1). Appends go to the OS page cache; SyncAll() is the shutdown
/// step that "finishes any pending synchronization with the data on disk"
/// — only tables dirty since the last sync are fsync'd.
class BackupWriter {
 public:
  explicit BackupWriter(std::string dir) : dir_(std::move(dir)) {}

  BackupWriter(const BackupWriter&) = delete;
  BackupWriter& operator=(const BackupWriter&) = delete;

  /// Creates the backup directory if needed.
  Status Init() { return EnsureDir(dir_); }

  /// Appends a batch of rows to `table`'s backup file (creating it with a
  /// file header on first use).
  Status AppendBatch(const std::string& table, const std::vector<Row>& rows);

  /// fsyncs every table file dirtied since its last sync.
  Status SyncAll();

  /// Path of a table's backup file: <dir>/<table>.bak.
  std::string FilePathFor(const std::string& table) const {
    return dir_ + "/" + table + ".bak";
  }

  const std::string& dir() const { return dir_; }
  uint64_t total_bytes_written() const { return total_bytes_written_; }
  size_t dirty_table_count() const;

 private:
  struct TableFile {
    std::unique_ptr<AppendableFile> file;
    bool dirty = false;
  };

  StatusOr<TableFile*> GetOrOpen(const std::string& table);

  std::string dir_;
  std::unordered_map<std::string, TableFile> files_;
  uint64_t total_bytes_written_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_DISK_BACKUP_WRITER_H_
