#include "disk/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/clock.h"

namespace scuba {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

StatusOr<AppendableFile> AppendableFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
  return AppendableFile(path, fd);
}

AppendableFile::AppendableFile(AppendableFile&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

AppendableFile& AppendableFile::operator=(AppendableFile&& other) noexcept {
  if (this != &other) {
    Close().ok();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
  }
  return *this;
}

AppendableFile::~AppendableFile() { Close().ok(); }

Status AppendableFile::Append(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write", path_));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  bytes_written_ += size;
  return Status::OK();
}

Status AppendableFile::Sync() {
  if (::fsync(fd_) != 0) return Status::IOError(ErrnoMessage("fsync", path_));
  return Status::OK();
}

Status AppendableFile::Close() {
  if (fd_ >= 0) {
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close", path_));
    }
  }
  return Status::OK();
}

Status ReadFileFully(const std::string& path, ByteBuffer* out,
                     uint64_t throttle_bytes_per_sec) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("file not found: " + path);
    return Status::IOError(ErrnoMessage("open", path));
  }
  out->Clear();

  constexpr size_t kChunk = 1 << 20;
  std::vector<uint8_t> chunk(kChunk);
  Stopwatch watch;
  uint64_t total_read = 0;
  for (;;) {
    ssize_t n = ::read(fd, chunk.data(), kChunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IOError(ErrnoMessage("read", path));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->Append(chunk.data(), static_cast<size_t>(n));
    total_read += static_cast<uint64_t>(n);

    if (throttle_bytes_per_sec > 0) {
      // Pace the read: sleep until wall time catches up with the modeled
      // disk's transfer time for the bytes consumed so far.
      int64_t target_micros = static_cast<int64_t>(
          total_read * 1000000.0 / static_cast<double>(throttle_bytes_per_sec));
      int64_t ahead = target_micros - watch.ElapsedMicros();
      if (ahead > 0) RealClock::Get()->SleepMicros(ahead);
    }
  }
  ::close(fd);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir", dir));
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> ListFiles(const std::string& dir,
                                             const std::string& suffix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(ErrnoMessage("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name(entry->d_name);
    if (name == "." || name == "..") continue;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  return names;
}

}  // namespace scuba
