#include "disk/backup_reader.h"

#include <memory>
#include <mutex>

#include "disk/backup_format.h"
#include "disk/file.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

// Cumulative process-wide mirror of BackupReader::Stats
// (scuba.disk.backup.read.*).
struct ReaderMetrics {
  obs::Counter* tables;
  obs::Counter* bytes_read;
  obs::Counter* rows;
  obs::Counter* records_dropped;
  obs::Histogram* read_micros;
  obs::Histogram* translate_micros;

  static ReaderMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ReaderMetrics m{
        reg.GetCounter("scuba.disk.backup.read.tables_recovered"),
        reg.GetCounter("scuba.disk.backup.read.bytes_read"),
        reg.GetCounter("scuba.disk.backup.read.rows_recovered"),
        reg.GetCounter("scuba.disk.backup.read.records_dropped"),
        reg.GetHistogram("scuba.disk.backup.read.read_micros"),
        reg.GetHistogram("scuba.disk.backup.read.translate_micros")};
    return m;
  }
};

}  // namespace

Status BackupReader::RecoverTable(const std::string& path, Table* table,
                                  const Options& options, int64_t now,
                                  Stats* stats) {
  ReaderMetrics& metrics = ReaderMetrics::Get();

  // Phase 1: the raw disk read (20-25 minutes of the paper's recovery).
  Stopwatch read_watch;
  ByteBuffer contents;
  SCUBA_RETURN_IF_ERROR(
      ReadFileFully(path, &contents, options.throttle_bytes_per_sec));
  int64_t read_micros = read_watch.ElapsedMicros();
  stats->read_micros += read_micros;
  stats->bytes_read += contents.size();
  metrics.read_micros->Record(static_cast<uint64_t>(read_micros));
  metrics.bytes_read->Add(contents.size());

  // Phase 2: translation to the in-memory format (the dominant cost).
  Stopwatch translate_watch;
  Slice input = contents.AsSlice();
  SCUBA_RETURN_IF_ERROR(backup_format::CheckFileHeader(&input));

  uint64_t rows_before = table->RowCount();
  for (;;) {
    std::vector<Row> rows;
    Status s = backup_format::ReadRowBatchRecord(&input, &rows);
    if (s.IsNotFound()) break;  // clean end of file
    if (s.IsCorruption()) {
      // Torn tail from a crash mid-append: keep what we have (§4.1 —
      // "losing a tiny amount of data ... acceptable").
      SCUBA_WARN << "backup " << path
                 << ": stopping at corrupt record: " << s.ToString();
      ++stats->records_dropped;
      metrics.records_dropped->Add(1);
      break;
    }
    SCUBA_RETURN_IF_ERROR(s);
    SCUBA_RETURN_IF_ERROR(table->AddRows(rows, now));
  }
  SCUBA_RETURN_IF_ERROR(table->SealWriteBuffer(now));
  table->ExpireData(now);

  int64_t translate_micros = translate_watch.ElapsedMicros();
  stats->translate_micros += translate_micros;
  stats->rows_recovered += table->RowCount() - rows_before;
  ++stats->tables_recovered;
  metrics.translate_micros->Record(static_cast<uint64_t>(translate_micros));
  metrics.rows->Add(table->RowCount() - rows_before);
  metrics.tables->Add(1);
  return Status::OK();
}

Status BackupReader::RecoverLeaf(const std::string& dir, LeafMap* leaf_map,
                                 const Options& options, int64_t now,
                                 Stats* stats) {
  SCUBA_ASSIGN_OR_RETURN(std::vector<std::string> files,
                         ListFiles(dir, ".bak"));

  // Create all tables serially (LeafMap is not thread-safe), then fan the
  // per-table read+translate out: tables are independent, so this is the
  // disk path's parallel copy engine.
  std::vector<Table*> tables;
  tables.reserve(files.size());
  for (const std::string& file : files) {
    std::string table_name = file.substr(0, file.size() - 4);
    SCUBA_ASSIGN_OR_RETURN(
        Table * table,
        leaf_map->CreateTable(table_name, options.table_limits));
    tables.push_back(table);
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1 && files.size() > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  std::mutex stats_mutex;
  SCUBA_RETURN_IF_ERROR(ParallelFor(
      pool.get(), files.size(), [&](size_t i) -> Status {
        Stats local;
        Status s = RecoverTable(dir + "/" + files[i], tables[i], options, now,
                                pool != nullptr ? &local : stats);
        if (pool != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex);
          stats->bytes_read += local.bytes_read;
          stats->rows_recovered += local.rows_recovered;
          stats->tables_recovered += local.tables_recovered;
          stats->records_dropped += local.records_dropped;
          stats->read_micros += local.read_micros;
          stats->translate_micros += local.translate_micros;
        }
        return s;
      }));
  return Status::OK();
}

}  // namespace scuba
