#include "disk/backup_writer.h"

#include "disk/backup_format.h"
#include "obs/metrics.h"
#include "util/byte_buffer.h"

namespace scuba {
namespace {

// Cumulative process-wide counters for the row-major backup writer
// (scuba.disk.backup.write.*).
struct WriterMetrics {
  obs::Counter* batches;
  obs::Counter* bytes_written;
  obs::Counter* syncs;

  static WriterMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static WriterMetrics m{
        reg.GetCounter("scuba.disk.backup.write.batches"),
        reg.GetCounter("scuba.disk.backup.write.bytes_written"),
        reg.GetCounter("scuba.disk.backup.write.syncs")};
    return m;
  }
};

}  // namespace

StatusOr<BackupWriter::TableFile*> BackupWriter::GetOrOpen(
    const std::string& table) {
  auto it = files_.find(table);
  if (it != files_.end()) return &it->second;

  std::string path = FilePathFor(table);
  bool fresh = !FileExists(path) || FileSize(path) == 0;
  SCUBA_ASSIGN_OR_RETURN(AppendableFile file, AppendableFile::Open(path));
  TableFile entry;
  entry.file = std::make_unique<AppendableFile>(std::move(file));
  if (fresh) {
    ByteBuffer header;
    backup_format::AppendFileHeader(&header);
    SCUBA_RETURN_IF_ERROR(entry.file->Append(header.data(), header.size()));
    total_bytes_written_ += header.size();
  }
  auto [inserted, ok] = files_.emplace(table, std::move(entry));
  (void)ok;
  return &inserted->second;
}

Status BackupWriter::AppendBatch(const std::string& table,
                                 const std::vector<Row>& rows) {
  SCUBA_ASSIGN_OR_RETURN(TableFile * entry, GetOrOpen(table));
  ByteBuffer record;
  SCUBA_RETURN_IF_ERROR(backup_format::AppendRowBatchRecord(rows, &record));
  SCUBA_RETURN_IF_ERROR(entry->file->Append(record.data(), record.size()));
  total_bytes_written_ += record.size();
  entry->dirty = true;
  WriterMetrics& metrics = WriterMetrics::Get();
  metrics.batches->Add(1);
  metrics.bytes_written->Add(record.size());
  return Status::OK();
}

Status BackupWriter::SyncAll() {
  for (auto& [name, entry] : files_) {
    if (!entry.dirty) continue;
    SCUBA_RETURN_IF_ERROR(entry.file->Sync());
    entry.dirty = false;
    WriterMetrics::Get().syncs->Add(1);
  }
  return Status::OK();
}

size_t BackupWriter::dirty_table_count() const {
  size_t count = 0;
  for (const auto& [name, entry] : files_) {
    if (entry.dirty) ++count;
  }
  return count;
}

}  // namespace scuba
