#ifndef SCUBA_DISK_COLUMNAR_BACKUP_H_
#define SCUBA_DISK_COLUMNAR_BACKUP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/leaf_map.h"
#include "columnar/row_block.h"
#include "disk/file.h"
#include "util/status.h"

namespace scuba {

class ThreadPool;

/// The paper's §6 future work, implemented: "One large overhead in Scuba's
/// disk recovery is translating from the disk format to the heap memory
/// format. ... We are planning to use the shared memory format described
/// in this paper as the disk format, instead. We expect that the much
/// simpler translation to heap memory format will speed up disk recovery
/// significantly."
///
/// Per table, TWO files:
///
///   <table>.cols      append-only sealed row blocks in the shared-memory
///                     column format: each record is
///                       [u32 payload_len][u32 masked crc32c(meta part)]
///                       [u32 meta_len][meta][RBC buffers, 8-aligned]
///                     Recovery of a record is one memcpy per column (the
///                     RBC buffers are bit-identical to their heap form).
///
///   <table>.tail.<K>  rows not yet sealed into any block, as row-major
///                     records (backup_format), where K is the number of
///                     blocks in the .cols file when this tail started.
///
/// Seal protocol (crash-safe):
///   1. append the sealed block to .cols and fsync it,
///   2. create the empty tail.<K+1>,
///   3. delete tail.<K>.
/// Recovery reads .cols (K valid blocks) and replays EXACTLY tail.<K>;
/// any other tail generation is a crash leftover whose rows either are
/// already in a block (stale) or belong to a newer epoch that never
/// committed — both are ignored, matching the paper's "losing a tiny
/// amount of data on a crash is acceptable" stance (§4.1).
class ColumnarBackupWriter {
 public:
  explicit ColumnarBackupWriter(std::string dir) : dir_(std::move(dir)) {}

  ColumnarBackupWriter(const ColumnarBackupWriter&) = delete;
  ColumnarBackupWriter& operator=(const ColumnarBackupWriter&) = delete;

  Status Init() { return EnsureDir(dir_); }

  /// Appends a batch of not-yet-sealed rows to the table's current tail.
  Status AppendBatch(const std::string& table, const std::vector<Row>& rows);

  /// Mirrors a just-sealed row block to the .cols file and rotates the
  /// tail. Wire this as the table's SealObserver.
  Status OnBlockSealed(const std::string& table, const RowBlock& block);

  /// fsyncs all dirty files.
  Status SyncAll();

  std::string ColsPathFor(const std::string& table) const {
    return dir_ + "/" + table + ".cols";
  }
  std::string TailPathFor(const std::string& table, uint64_t k) const {
    return dir_ + "/" + table + ".tail." + std::to_string(k);
  }

  const std::string& dir() const { return dir_; }
  uint64_t total_bytes_written() const { return total_bytes_written_; }

 private:
  struct TableState {
    std::unique_ptr<AppendableFile> cols;
    std::unique_ptr<AppendableFile> tail;
    uint64_t num_blocks = 0;  // records in the .cols file
    bool cols_dirty = false;
    bool tail_dirty = false;
  };

  StatusOr<TableState*> GetOrInit(const std::string& table);
  Status OpenTail(const std::string& table, TableState* state);

  std::string dir_;
  std::unordered_map<std::string, TableState> tables_;
  uint64_t total_bytes_written_ = 0;
};

/// Recovery from the columnar backup.
class ColumnarBackupReader {
 public:
  struct Options {
    uint64_t throttle_bytes_per_sec = 0;
    /// Verify each adopted column's CRC32C (structural checks always run).
    bool verify_checksums = false;
    TableLimits table_limits;
    /// Workers for the translate phase. RecoverLeaf fans out across tables
    /// when there are several; with a single table the pool parallelizes
    /// block parsing inside it instead. 1 keeps the serial loops.
    size_t num_threads = 1;
  };

  struct Stats {
    uint64_t bytes_read = 0;
    uint64_t blocks_recovered = 0;
    uint64_t tail_rows_recovered = 0;
    uint64_t rows_recovered = 0;
    uint64_t tables_recovered = 0;
    uint64_t records_dropped = 0;   // torn .cols tail records
    uint64_t stale_tails_ignored = 0;
    int64_t read_micros = 0;        // raw file reads
    int64_t translate_micros = 0;   // memcpy adoption + tail replay
  };

  /// Recovers one table from its .cols + matching tail. With a non-null
  /// `pool`, block payloads are parsed (memcpy + checksum) in parallel;
  /// the stop-at-first-corrupt-record semantics are preserved by adopting
  /// only the contiguous prefix of blocks that parsed cleanly, in order.
  /// The pool must not be one this call is itself running on.
  static Status RecoverTable(const std::string& dir, const std::string& table,
                             Table* out, const Options& options, int64_t now,
                             Stats* stats, ThreadPool* pool = nullptr);

  /// Recovers every "<name>.cols" table under `dir` into `leaf_map`.
  static Status RecoverLeaf(const std::string& dir, LeafMap* leaf_map,
                            const Options& options, int64_t now,
                            Stats* stats);

  /// Lists table names that have a .cols file in `dir`.
  static StatusOr<std::vector<std::string>> ListTables(const std::string& dir);

  /// Counts valid block records in a .cols file without loading payloads
  /// (used by the writer to resume K after a restart that recovered from
  /// shared memory and never read the disk files).
  static StatusOr<uint64_t> CountBlocks(const std::string& cols_path);
};

}  // namespace scuba

#endif  // SCUBA_DISK_COLUMNAR_BACKUP_H_
