#ifndef SCUBA_DISK_BACKUP_READER_H_
#define SCUBA_DISK_BACKUP_READER_H_

#include <string>
#include <vector>

#include "columnar/leaf_map.h"
#include "util/status.h"

namespace scuba {

/// Disk recovery: reads every table backup file and re-translates the
/// row-major records into the columnar heap format. This is the slow path
/// the paper measures at 2.5-3 hours per 120 GB server (§1): the raw read
/// is a fraction of it; decode + row block building + recompression
/// dominates.
class BackupReader {
 public:
  struct Options {
    /// >0 models a slow disk by pacing the raw read (bytes/second).
    uint64_t throttle_bytes_per_sec = 0;
    /// Retention limits applied to recovered tables.
    TableLimits table_limits;
    /// Workers for RecoverLeaf; tables are translated in parallel (each
    /// table stays serial internally). 1 keeps the serial loop.
    size_t num_threads = 1;
  };

  /// Totals across one recovery, split into the paper's two phases.
  struct Stats {
    uint64_t bytes_read = 0;
    uint64_t rows_recovered = 0;
    uint64_t tables_recovered = 0;
    uint64_t records_dropped = 0;  // torn/corrupt tail records skipped
    int64_t read_micros = 0;       // raw file reads
    int64_t translate_micros = 0;  // decode + rebuild + recompress
  };

  /// Recovers one table's backup file into `table`, appending row blocks.
  /// `now` is used as block creation time.
  static Status RecoverTable(const std::string& path, Table* table,
                             const Options& options, int64_t now,
                             Stats* stats);

  /// Recovers every "<name>.bak" under `dir` into `leaf_map`. With
  /// options.num_threads > 1 the per-table read+translate work fans out
  /// over a pool (translation dominates disk recovery, §6.1, and is
  /// embarrassingly parallel across tables); `stats` micros then sum CPU
  /// time across workers rather than wall time.
  static Status RecoverLeaf(const std::string& dir, LeafMap* leaf_map,
                            const Options& options, int64_t now,
                            Stats* stats);
};

}  // namespace scuba

#endif  // SCUBA_DISK_BACKUP_READER_H_
