#ifndef SCUBA_DISK_FILE_H_
#define SCUBA_DISK_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/byte_buffer.h"
#include "util/status.h"

namespace scuba {

/// Append-only file with explicit fsync, used for the on-disk backups.
/// During normal operation writes are asynchronous (OS page cache); the
/// clean-shutdown path calls Sync() to finish "any pending synchronization
/// with the data on disk" (§4.1).
class AppendableFile {
 public:
  static StatusOr<AppendableFile> Open(const std::string& path);

  AppendableFile(AppendableFile&& other) noexcept;
  AppendableFile& operator=(AppendableFile&& other) noexcept;
  AppendableFile(const AppendableFile&) = delete;
  AppendableFile& operator=(const AppendableFile&) = delete;
  ~AppendableFile();

  Status Append(const void* data, size_t size);
  Status Sync();
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  AppendableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  uint64_t bytes_written_ = 0;
};

/// Reads a whole file into `out`. When `throttle_bytes_per_sec` > 0 the
/// read is paced to that bandwidth — used to model the paper's spinning
/// disks (~85 MB/s effective for the 120 GB / 20-25 min read, §1) on a
/// machine whose local filesystem is much faster.
Status ReadFileFully(const std::string& path, ByteBuffer* out,
                     uint64_t throttle_bytes_per_sec = 0);

/// True if `path` exists.
bool FileExists(const std::string& path);

/// Size of `path` in bytes, or 0.
uint64_t FileSize(const std::string& path);

/// Creates `dir` (single level) if missing.
Status EnsureDir(const std::string& dir);

/// Removes a file; OK if missing.
Status RemoveFile(const std::string& path);

/// Lists regular files in `dir` with the given suffix (names only).
StatusOr<std::vector<std::string>> ListFiles(const std::string& dir,
                                             const std::string& suffix);

}  // namespace scuba

#endif  // SCUBA_DISK_FILE_H_
