#include "disk/backup_format.h"

#include <unordered_map>

#include "util/crc32c.h"
#include "util/varint.h"

namespace scuba {
namespace backup_format {
namespace {

constexpr uint8_t kRecordTypeRowBatch = 1;

void AppendValue(const Value& value, ByteBuffer* out) {
  switch (ValueType(value)) {
    case ColumnType::kInt64:
      varint::AppendI64(out, std::get<int64_t>(value));
      break;
    case ColumnType::kDouble: {
      uint64_t bits;
      static_assert(sizeof(double) == 8);
      std::memcpy(&bits, &std::get<double>(value), 8);
      out->AppendU64(bits);
      break;
    }
    case ColumnType::kString: {
      const std::string& s = std::get<std::string>(value);
      varint::AppendU64(out, s.size());
      out->Append(s.data(), s.size());
      break;
    }
  }
}

Status ReadValue(ColumnType type, Slice* in, Value* value) {
  switch (type) {
    case ColumnType::kInt64: {
      int64_t v = 0;
      if (!varint::ReadI64(in, &v)) {
        return Status::Corruption("backup: truncated int64 value");
      }
      *value = v;
      return Status::OK();
    }
    case ColumnType::kDouble: {
      if (in->size() < 8) {
        return Status::Corruption("backup: truncated double value");
      }
      uint64_t bits = ByteBuffer::DecodeU64(in->data());
      in->RemovePrefix(8);
      double v;
      std::memcpy(&v, &bits, 8);
      *value = v;
      return Status::OK();
    }
    case ColumnType::kString: {
      uint64_t len = 0;
      if (!varint::ReadU64(in, &len) || in->size() < len) {
        return Status::Corruption("backup: truncated string value");
      }
      *value = std::string(reinterpret_cast<const char*>(in->data()), len);
      in->RemovePrefix(len);
      return Status::OK();
    }
  }
  return Status::Corruption("backup: unknown value type");
}

}  // namespace

void AppendFileHeader(ByteBuffer* out) {
  out->AppendU32(kFileMagic);
  out->AppendU16(kFileVersion);
  out->AppendU16(0);
}

Status CheckFileHeader(Slice* input) {
  if (input->size() < kFileHeaderSize) {
    return Status::Corruption("backup: missing file header");
  }
  if (ByteBuffer::DecodeU32(input->data()) != kFileMagic) {
    return Status::Corruption("backup: bad file magic");
  }
  uint16_t version = static_cast<uint16_t>(
      (*input)[4] | (static_cast<uint16_t>((*input)[5]) << 8));
  if (version != kFileVersion) {
    return Status::Corruption("backup: unsupported file version");
  }
  input->RemovePrefix(kFileHeaderSize);
  return Status::OK();
}

Status AppendRowBatchRecord(const std::vector<Row>& rows, ByteBuffer* out) {
  if (rows.empty()) {
    return Status::InvalidArgument("backup: empty row batch");
  }

  // Union schema in first-seen order, with type conflict detection.
  Schema schema;
  std::unordered_map<std::string, ColumnType> types;
  for (const Row& row : rows) {
    if (!row.Time().has_value()) {
      return Status::InvalidArgument("backup: row lacks int64 'time' field");
    }
    for (const auto& [name, value] : row.fields) {
      auto it = types.find(name);
      if (it == types.end()) {
        types.emplace(name, ValueType(value));
        schema.AddColumn(name, ValueType(value));
      } else if (it->second != ValueType(value)) {
        return Status::InvalidArgument("backup: field '" + name +
                                       "' has conflicting types in batch");
      }
    }
  }

  ByteBuffer payload;
  payload.AppendU8(kRecordTypeRowBatch);
  schema.Serialize(&payload);
  varint::AppendU64(&payload, rows.size());
  for (const Row& row : rows) {
    // Dense row-major encoding: every schema column, defaults back-filled.
    for (const ColumnDef& col : schema.columns()) {
      const Value* found = nullptr;
      for (const auto& [name, value] : row.fields) {
        if (name == col.name) {
          found = &value;
          break;
        }
      }
      if (found != nullptr) {
        AppendValue(*found, &payload);
      } else {
        AppendValue(DefaultValue(col.type), &payload);
      }
    }
  }

  out->AppendU32(static_cast<uint32_t>(payload.size()));
  out->AppendU32(crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  out->Append(payload.data(), payload.size());
  return Status::OK();
}

Status ReadRowBatchRecord(Slice* input, std::vector<Row>* rows) {
  if (input->empty()) return Status::NotFound("end of backup file");
  if (input->size() < 8) {
    return Status::Corruption("backup: truncated record header");
  }
  uint32_t payload_len = ByteBuffer::DecodeU32(input->data());
  uint32_t stored_crc =
      crc32c::Unmask(ByteBuffer::DecodeU32(input->data() + 4));
  if (input->size() < 8 + static_cast<size_t>(payload_len)) {
    return Status::Corruption("backup: truncated record payload");
  }
  Slice payload(input->data() + 8, payload_len);
  if (crc32c::Value(payload.data(), payload.size()) != stored_crc) {
    return Status::Corruption("backup: record checksum mismatch");
  }
  input->RemovePrefix(8 + payload_len);

  if (payload.empty() || payload[0] != kRecordTypeRowBatch) {
    return Status::Corruption("backup: unknown record type");
  }
  payload.RemovePrefix(1);

  SCUBA_ASSIGN_OR_RETURN(Schema schema, Schema::Parse(&payload));
  uint64_t row_count = 0;
  if (!varint::ReadU64(&payload, &row_count)) {
    return Status::Corruption("backup: truncated row count");
  }

  rows->reserve(rows->size() + row_count);
  for (uint64_t r = 0; r < row_count; ++r) {
    Row row;
    row.fields.reserve(schema.num_columns());
    for (const ColumnDef& col : schema.columns()) {
      Value value;
      SCUBA_RETURN_IF_ERROR(ReadValue(col.type, &payload, &value));
      row.fields.emplace_back(col.name, std::move(value));
    }
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace backup_format
}  // namespace scuba
