#include "disk/columnar_backup.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <mutex>

#include "disk/backup_format.h"
#include "obs/metrics.h"
#include "util/bit_util.h"
#include "util/byte_buffer.h"
#include "util/clock.h"
#include "util/crc32c.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/varint.h"

namespace scuba {
namespace {

constexpr uint32_t kTailMagic = 0x4C494154;  // "TAIL"
constexpr uint16_t kTailVersion = 1;

size_t AlignUp8(size_t v) { return static_cast<size_t>(bit_util::RoundUp(v, 8)); }

// Serializes one sealed block as a .cols record payload:
//   u32 meta_len, meta, pad8, then each RBC buffer pad8.
void BuildBlockPayload(const RowBlock& block, ByteBuffer* payload) {
  ByteBuffer meta;
  block.SerializeMeta(&meta);
  payload->AppendU32(static_cast<uint32_t>(meta.size()));
  payload->Append(meta.data(), meta.size());
  payload->AlignTo(8);
  for (size_t c = 0; c < block.num_columns(); ++c) {
    payload->Append(block.column(c)->AsSlice());
    payload->AlignTo(8);
  }
}

// Parses a .cols record payload into a heap row block. The column copies
// are single memcpys — this is the "much simpler translation" of §6.
StatusOr<std::unique_ptr<RowBlock>> ParseBlockPayload(Slice payload,
                                                      bool verify_checksums) {
  if (payload.size() < 4) {
    return Status::Corruption("cols record: truncated meta length");
  }
  uint32_t meta_len = ByteBuffer::DecodeU32(payload.data());
  payload.RemovePrefix(4);
  if (payload.size() < meta_len) {
    return Status::Corruption("cols record: truncated meta");
  }
  Slice meta_slice = payload.Subslice(0, meta_len);
  SCUBA_ASSIGN_OR_RETURN(RowBlock::Meta meta, RowBlock::ParseMeta(&meta_slice));
  payload.RemovePrefix(AlignUp8(4 + meta_len) - 4);

  std::vector<std::unique_ptr<RowBlockColumn>> columns;
  columns.reserve(meta.column_sizes.size());
  for (uint64_t col_size : meta.column_sizes) {
    if (payload.size() < col_size) {
      return Status::Corruption("cols record: truncated column payload");
    }
    std::unique_ptr<uint8_t[]> heap_buf(new uint8_t[col_size]);
    std::memcpy(heap_buf.get(), payload.data(), col_size);
    SCUBA_ASSIGN_OR_RETURN(
        RowBlockColumn column,
        RowBlockColumn::FromBuffer(std::move(heap_buf),
                                   static_cast<size_t>(col_size),
                                   verify_checksums));
    columns.push_back(std::make_unique<RowBlockColumn>(std::move(column)));
    payload.RemovePrefix(AlignUp8(static_cast<size_t>(col_size)));
  }
  return RowBlock::FromParts(meta.header, std::move(meta.schema),
                             std::move(columns));
}

// Record envelope shared by writer and readers:
//   u32 payload_len, u32 masked crc32c(first min(payload_len, 4+meta_len+4)
//   bytes — in practice the meta region; RBC buffers carry their own CRCs).
// For simplicity the CRC covers the first 512 bytes of the payload (or the
// whole payload when shorter): enough to catch torn meta without paying a
// full-file CRC on the fast path.
constexpr size_t kCrcPrefixBytes = 512;

uint32_t PayloadCrc(Slice payload) {
  size_t n = std::min(payload.size(), kCrcPrefixBytes);
  return crc32c::Mask(crc32c::Value(payload.data(), n));
}

// Cumulative process-wide counters for the columnar backup path
// (scuba.disk.columnar.*); read-side fields mirror
// ColumnarBackupReader::Stats.
struct ColumnarMetrics {
  obs::Counter* blocks_sealed;
  obs::Counter* bytes_written;
  obs::Counter* tables_recovered;
  obs::Counter* bytes_read;
  obs::Counter* blocks_recovered;
  obs::Counter* tail_rows;
  obs::Counter* records_dropped;
  obs::Histogram* read_micros;
  obs::Histogram* translate_micros;

  static ColumnarMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ColumnarMetrics m{
        reg.GetCounter("scuba.disk.columnar.blocks_sealed"),
        reg.GetCounter("scuba.disk.columnar.bytes_written"),
        reg.GetCounter("scuba.disk.columnar.tables_recovered"),
        reg.GetCounter("scuba.disk.columnar.bytes_read"),
        reg.GetCounter("scuba.disk.columnar.blocks_recovered"),
        reg.GetCounter("scuba.disk.columnar.tail_rows_recovered"),
        reg.GetCounter("scuba.disk.columnar.records_dropped"),
        reg.GetHistogram("scuba.disk.columnar.read_micros"),
        reg.GetHistogram("scuba.disk.columnar.translate_micros")};
    return m;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

StatusOr<ColumnarBackupWriter::TableState*> ColumnarBackupWriter::GetOrInit(
    const std::string& table) {
  auto it = tables_.find(table);
  if (it != tables_.end()) return &it->second;

  TableState state;
  std::string cols_path = ColsPathFor(table);
  // Resume K from whatever the file already holds (e.g. after a restart
  // that recovered from shared memory and never read the disk files).
  if (FileExists(cols_path) && FileSize(cols_path) > 0) {
    SCUBA_ASSIGN_OR_RETURN(state.num_blocks,
                           ColumnarBackupReader::CountBlocks(cols_path));
  }
  SCUBA_ASSIGN_OR_RETURN(AppendableFile cols, AppendableFile::Open(cols_path));
  state.cols = std::make_unique<AppendableFile>(std::move(cols));

  auto [inserted, ok] = tables_.emplace(table, std::move(state));
  (void)ok;
  SCUBA_RETURN_IF_ERROR(OpenTail(table, &inserted->second));
  return &inserted->second;
}

Status ColumnarBackupWriter::OpenTail(const std::string& table,
                                      TableState* state) {
  std::string path = TailPathFor(table, state->num_blocks);
  bool fresh = !FileExists(path) || FileSize(path) == 0;
  SCUBA_ASSIGN_OR_RETURN(AppendableFile tail, AppendableFile::Open(path));
  state->tail = std::make_unique<AppendableFile>(std::move(tail));
  if (fresh) {
    ByteBuffer header;
    header.AppendU32(kTailMagic);
    header.AppendU16(kTailVersion);
    header.AppendU16(0);
    header.AppendU64(state->num_blocks);
    SCUBA_RETURN_IF_ERROR(state->tail->Append(header.data(), header.size()));
    total_bytes_written_ += header.size();
  }
  return Status::OK();
}

Status ColumnarBackupWriter::AppendBatch(const std::string& table,
                                         const std::vector<Row>& rows) {
  SCUBA_ASSIGN_OR_RETURN(TableState * state, GetOrInit(table));
  ByteBuffer record;
  SCUBA_RETURN_IF_ERROR(backup_format::AppendRowBatchRecord(rows, &record));
  SCUBA_RETURN_IF_ERROR(state->tail->Append(record.data(), record.size()));
  total_bytes_written_ += record.size();
  state->tail_dirty = true;
  return Status::OK();
}

Status ColumnarBackupWriter::OnBlockSealed(const std::string& table,
                                           const RowBlock& block) {
  SCUBA_ASSIGN_OR_RETURN(TableState * state, GetOrInit(table));

  // 1. Append the block record and fsync .cols: once this is durable, the
  //    old tail's rows are redundant.
  ByteBuffer payload;
  BuildBlockPayload(block, &payload);
  ByteBuffer envelope;
  envelope.AppendU32(static_cast<uint32_t>(payload.size()));
  envelope.AppendU32(PayloadCrc(payload.AsSlice()));
  SCUBA_RETURN_IF_ERROR(state->cols->Append(envelope.data(), envelope.size()));
  SCUBA_RETURN_IF_ERROR(state->cols->Append(payload.data(), payload.size()));
  total_bytes_written_ += envelope.size() + payload.size();
  SCUBA_RETURN_IF_ERROR(state->cols->Sync());
  state->cols_dirty = false;
  ColumnarMetrics& metrics = ColumnarMetrics::Get();
  metrics.blocks_sealed->Add(1);
  metrics.bytes_written->Add(envelope.size() + payload.size());

  // 2. Start the next tail generation.
  uint64_t old_k = state->num_blocks;
  ++state->num_blocks;
  SCUBA_RETURN_IF_ERROR(OpenTail(table, state));
  state->tail_dirty = true;

  // 3. Drop the superseded tail.
  return RemoveFile(TailPathFor(table, old_k));
}

Status ColumnarBackupWriter::SyncAll() {
  for (auto& [name, state] : tables_) {
    if (state.cols_dirty) {
      SCUBA_RETURN_IF_ERROR(state.cols->Sync());
      state.cols_dirty = false;
    }
    if (state.tail_dirty) {
      SCUBA_RETURN_IF_ERROR(state.tail->Sync());
      state.tail_dirty = false;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

StatusOr<std::vector<std::string>> ColumnarBackupReader::ListTables(
    const std::string& dir) {
  SCUBA_ASSIGN_OR_RETURN(std::vector<std::string> files,
                         ListFiles(dir, ".cols"));
  std::vector<std::string> tables;
  tables.reserve(files.size());
  for (const std::string& file : files) {
    tables.push_back(file.substr(0, file.size() - 5));
  }
  return tables;
}

StatusOr<uint64_t> ColumnarBackupReader::CountBlocks(
    const std::string& cols_path) {
  // Walk the record envelopes without reading payloads.
  int fd = ::open(cols_path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("open '" + cols_path + "'");
  uint64_t count = 0;
  off_t offset = 0;
  for (;;) {
    uint8_t envelope[8];
    ssize_t n = ::pread(fd, envelope, 8, offset);
    if (n == 0) break;  // clean end
    if (n != 8) break;  // torn envelope: stop counting
    uint32_t payload_len = ByteBuffer::DecodeU32(envelope);
    off_t next = offset + 8 + static_cast<off_t>(payload_len);
    // Ensure the payload is fully present.
    uint8_t probe;
    if (payload_len > 0 &&
        ::pread(fd, &probe, 1, next - 1) != 1) {
      break;  // torn payload
    }
    ++count;
    offset = next;
  }
  ::close(fd);
  return count;
}

Status ColumnarBackupReader::RecoverTable(const std::string& dir,
                                          const std::string& table,
                                          Table* out, const Options& options,
                                          int64_t now, Stats* stats,
                                          ThreadPool* pool) {
  // Phase 1: raw read of the .cols file.
  Stopwatch read_watch;
  ByteBuffer contents;
  SCUBA_RETURN_IF_ERROR(ReadFileFully(dir + "/" + table + ".cols", &contents,
                                      options.throttle_bytes_per_sec));
  int64_t cols_read_micros = read_watch.ElapsedMicros();
  stats->read_micros += cols_read_micros;
  stats->bytes_read += contents.size();
  ColumnarMetrics& metrics = ColumnarMetrics::Get();
  metrics.bytes_read->Add(contents.size());

  // Phase 2: adopt blocks (memcpy-class translation). The envelope walk
  // (lengths + prefix CRCs) is cheap and stays serial; the per-record
  // payload parse — the memcpys and column checksums that dominate — fans
  // out over `pool` when one is supplied.
  Stopwatch translate_watch;
  Slice input = contents.AsSlice();
  bool envelope_torn = false;
  std::vector<Slice> payloads;
  while (!input.empty()) {
    if (input.size() < 8) {
      envelope_torn = true;
      break;
    }
    uint32_t payload_len = ByteBuffer::DecodeU32(input.data());
    uint32_t stored_crc = ByteBuffer::DecodeU32(input.data() + 4);
    if (input.size() < 8 + static_cast<size_t>(payload_len)) {
      envelope_torn = true;  // torn tail record from a crash
      break;
    }
    Slice payload(input.data() + 8, payload_len);
    if (PayloadCrc(payload) != stored_crc) {
      SCUBA_WARN << "columnar backup " << table
                 << ": corrupt block record " << payloads.size()
                 << "; stopping";
      envelope_torn = true;
      break;
    }
    payloads.push_back(payload);
    input.RemovePrefix(8 + payload_len);
  }

  std::vector<std::unique_ptr<RowBlock>> parsed(payloads.size());
  std::vector<Status> parse_status(payloads.size());
  Status parallel_status = ParallelFor(
      pool, payloads.size(), [&](size_t i) -> Status {
        auto block = ParseBlockPayload(payloads[i], options.verify_checksums);
        if (block.ok()) {
          parsed[i] = std::move(block).value();
        } else {
          parse_status[i] = block.status();
        }
        return Status::OK();  // parse failures handled via the prefix rule
      });
  SCUBA_RETURN_IF_ERROR(parallel_status);

  // Adopt the contiguous prefix of cleanly parsed blocks, in order —
  // identical to the serial stop-at-first-corrupt-record behavior.
  uint64_t blocks = 0;
  bool parse_failed = false;
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (parsed[i] == nullptr) {
      SCUBA_WARN << "columnar backup " << table << ": "
                 << parse_status[i].ToString() << "; stopping";
      parse_failed = true;
      break;
    }
    out->AdoptRowBlock(std::move(parsed[i]));
    ++blocks;
  }
  if (envelope_torn || parse_failed) {
    ++stats->records_dropped;
    metrics.records_dropped->Add(1);
  }
  stats->blocks_recovered += blocks;

  // Phase 3: replay EXACTLY tail.<blocks>; other generations are stale.
  int64_t tail_read_micros = 0;
  std::string tail_path =
      dir + "/" + table + ".tail." + std::to_string(blocks);
  if (FileExists(tail_path)) {
    Stopwatch tail_read;
    ByteBuffer tail;
    SCUBA_RETURN_IF_ERROR(
        ReadFileFully(tail_path, &tail, options.throttle_bytes_per_sec));
    tail_read_micros = tail_read.ElapsedMicros();
    stats->read_micros += tail_read_micros;
    stats->bytes_read += tail.size();
    metrics.bytes_read->Add(tail.size());

    Slice tail_input = tail.AsSlice();
    if (tail_input.size() >= 16 &&
        ByteBuffer::DecodeU32(tail_input.data()) == kTailMagic) {
      tail_input.RemovePrefix(16);
      for (;;) {
        std::vector<Row> rows;
        Status s = backup_format::ReadRowBatchRecord(&tail_input, &rows);
        if (s.IsNotFound()) break;
        if (s.IsCorruption()) {
          ++stats->records_dropped;
          metrics.records_dropped->Add(1);
          break;
        }
        SCUBA_RETURN_IF_ERROR(s);
        SCUBA_RETURN_IF_ERROR(out->AddRows(rows, now));
        stats->tail_rows_recovered += rows.size();
        metrics.tail_rows->Add(rows.size());
      }
    }
  }
  // Count (and implicitly ignore) stale tails.
  SCUBA_ASSIGN_OR_RETURN(std::vector<std::string> all_files,
                         ListFiles(dir, ""));
  std::string stale_prefix = table + ".tail.";
  for (const std::string& file : all_files) {
    if (file.rfind(stale_prefix, 0) == 0 &&
        file != table + ".tail." + std::to_string(blocks)) {
      ++stats->stale_tails_ignored;
    }
  }

  out->ExpireData(now);
  int64_t translate_micros = translate_watch.ElapsedMicros() -
                             tail_read_micros;
  stats->translate_micros += translate_micros;
  stats->rows_recovered += out->RowCount();
  ++stats->tables_recovered;

  metrics.tables_recovered->Add(1);
  metrics.blocks_recovered->Add(blocks);
  metrics.read_micros->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, cols_read_micros + tail_read_micros)));
  metrics.translate_micros->Record(
      static_cast<uint64_t>(std::max<int64_t>(0, translate_micros)));
  return Status::OK();
}

Status ColumnarBackupReader::RecoverLeaf(const std::string& dir,
                                         LeafMap* leaf_map,
                                         const Options& options, int64_t now,
                                         Stats* stats) {
  SCUBA_ASSIGN_OR_RETURN(std::vector<std::string> tables, ListTables(dir));

  // Create all tables serially (LeafMap is not thread-safe).
  std::vector<Table*> out_tables;
  out_tables.reserve(tables.size());
  for (const std::string& name : tables) {
    SCUBA_ASSIGN_OR_RETURN(Table * table,
                           leaf_map->CreateTable(name, options.table_limits));
    out_tables.push_back(table);
  }

  // A pool cannot be used from within its own tasks (Wait would deadlock
  // on the caller's in-flight slot), so parallelism goes to whichever
  // level has the work: across tables when there are several, inside the
  // single table otherwise.
  if (options.num_threads > 1 && tables.size() == 1) {
    ThreadPool pool(options.num_threads);
    return RecoverTable(dir, tables[0], out_tables[0], options, now, stats,
                        &pool);
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1 && tables.size() > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  std::mutex stats_mutex;
  SCUBA_RETURN_IF_ERROR(ParallelFor(
      pool.get(), tables.size(), [&](size_t i) -> Status {
        Stats local;
        Status s = RecoverTable(dir, tables[i], out_tables[i], options, now,
                                pool != nullptr ? &local : stats);
        if (pool != nullptr) {
          std::lock_guard<std::mutex> lock(stats_mutex);
          stats->bytes_read += local.bytes_read;
          stats->blocks_recovered += local.blocks_recovered;
          stats->tail_rows_recovered += local.tail_rows_recovered;
          stats->rows_recovered += local.rows_recovered;
          stats->tables_recovered += local.tables_recovered;
          stats->records_dropped += local.records_dropped;
          stats->stale_tails_ignored += local.stale_tails_ignored;
          stats->read_micros += local.read_micros;
          stats->translate_micros += local.translate_micros;
        }
        return s;
      }));
  return Status::OK();
}

}  // namespace scuba
