#ifndef SCUBA_DISK_BACKUP_FORMAT_H_
#define SCUBA_DISK_BACKUP_FORMAT_H_

#include <string>
#include <vector>

#include "columnar/row.h"
#include "columnar/schema.h"
#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {
namespace backup_format {

/// On-disk backup format for a table, written as rows arrive.
///
/// The format is deliberately ROW-MAJOR and value-encoded: recovering from
/// it requires decoding every value, regrouping rows into row blocks, and
/// re-running the column compression pipeline. This reproduces the paper's
/// disk-recovery bottleneck — "reading that data in its disk format and
/// translating it to its in-memory format takes 2.5-3 hours" vs 20-25
/// minutes for the raw read (§1). (The paper's §6 future work proposes
/// replacing this with the shm format; bench_disk_vs_shm measures both.)
///
/// File = u32 magic + u16 version + u16 reserved, then a record sequence:
///   record = u32 payload_len, u32 masked crc32c(payload), payload
///   payload = u8 type(1 = row batch)
///           + serialized union schema
///           + varint row_count
///           + row-major dense values:
///               int64  -> zigzag varint
///               double -> 8 raw bytes
///               string -> varint len + bytes
///
/// A torn final record (crash mid-write) fails its CRC; recovery stops
/// there and keeps everything before it ("losing a tiny amount of data...
/// acceptable", §4.1).

inline constexpr uint32_t kFileMagic = 0x4B414253;  // "SBAK"
inline constexpr uint16_t kFileVersion = 1;
inline constexpr size_t kFileHeaderSize = 8;

/// Appends the file header to `out`.
void AppendFileHeader(ByteBuffer* out);

/// Validates and strips the file header from `*input`.
Status CheckFileHeader(Slice* input);

/// Encodes one batch of rows as a record. Rows may have heterogeneous
/// field sets; the record stores their union schema with defaults
/// back-filled. Fails if any row lacks the "time" field or types conflict.
Status AppendRowBatchRecord(const std::vector<Row>& rows, ByteBuffer* out);

/// Decodes the next record from `*input` into `rows` (appending).
/// Returns:
///  - OK and advances input on success,
///  - NotFound when input is empty (clean end of file),
///  - Corruption on a torn/corrupt record (input position unspecified).
Status ReadRowBatchRecord(Slice* input, std::vector<Row>* rows);

}  // namespace backup_format
}  // namespace scuba

#endif  // SCUBA_DISK_BACKUP_FORMAT_H_
