#include "compress/delta.h"

#include "util/varint.h"

namespace scuba {
namespace delta {

void Encode(std::vector<int64_t>* values) {
  int64_t prev = 0;
  bool first = true;
  for (int64_t& v : *values) {
    if (first) {
      prev = v;
      first = false;
      continue;
    }
    int64_t cur = v;
    // Wrapping subtraction: defined on the unsigned representation so that
    // arbitrary int64 inputs round-trip.
    v = static_cast<int64_t>(static_cast<uint64_t>(cur) -
                             static_cast<uint64_t>(prev));
    prev = cur;
  }
}

void Decode(std::vector<int64_t>* values) {
  uint64_t acc = 0;
  bool first = true;
  for (int64_t& v : *values) {
    if (first) {
      acc = static_cast<uint64_t>(v);
      first = false;
      continue;
    }
    acc += static_cast<uint64_t>(v);
    v = static_cast<int64_t>(acc);
  }
}

std::vector<uint64_t> ZigZagAll(const std::vector<int64_t>& values) {
  std::vector<uint64_t> out;
  out.reserve(values.size());
  for (int64_t v : values) out.push_back(varint::ZigZagEncode(v));
  return out;
}

std::vector<int64_t> UnZigZagAll(const std::vector<uint64_t>& values) {
  std::vector<int64_t> out;
  out.reserve(values.size());
  for (uint64_t v : values) out.push_back(varint::ZigZagDecode(v));
  return out;
}

}  // namespace delta
}  // namespace scuba
