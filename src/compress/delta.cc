#include "compress/delta.h"

#include <algorithm>

#include "compress/bitpack.h"
#include "util/varint.h"

namespace scuba {
namespace delta {

void Encode(std::vector<int64_t>* values) {
  int64_t prev = 0;
  bool first = true;
  for (int64_t& v : *values) {
    if (first) {
      prev = v;
      first = false;
      continue;
    }
    int64_t cur = v;
    // Wrapping subtraction: defined on the unsigned representation so that
    // arbitrary int64 inputs round-trip.
    v = static_cast<int64_t>(static_cast<uint64_t>(cur) -
                             static_cast<uint64_t>(prev));
    prev = cur;
  }
}

void Decode(std::vector<int64_t>* values) {
  uint64_t acc = 0;
  bool first = true;
  for (int64_t& v : *values) {
    if (first) {
      acc = static_cast<uint64_t>(v);
      first = false;
      continue;
    }
    acc += static_cast<uint64_t>(v);
    v = static_cast<int64_t>(acc);
  }
}

std::vector<uint64_t> ZigZagAll(const std::vector<int64_t>& values) {
  std::vector<uint64_t> out;
  out.reserve(values.size());
  for (int64_t v : values) out.push_back(varint::ZigZagEncode(v));
  return out;
}

std::vector<int64_t> UnZigZagAll(const std::vector<uint64_t>& values) {
  std::vector<int64_t> out;
  out.reserve(values.size());
  for (uint64_t v : values) out.push_back(varint::ZigZagDecode(v));
  return out;
}

void EncodeMiniBlocks(const std::vector<int64_t>& values, ByteBuffer* out) {
  varint::AppendU64(out, kMiniBlockRows);
  const size_t n = values.size();
  ByteBuffer payload;
  std::vector<uint64_t> zz;
  zz.reserve(kMiniBlockRows);
  int64_t prev_first = 0;
  for (size_t begin = 0; begin < n; begin += kMiniBlockRows) {
    const size_t rows = std::min(kMiniBlockRows, n - begin);
    const int64_t first = values[begin];
    int64_t mn = first;
    int64_t mx = first;
    zz.clear();
    int64_t prev = first;
    for (size_t i = 1; i < rows; ++i) {
      const int64_t v = values[begin + i];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      // Wrapping subtraction so arbitrary int64 inputs round-trip.
      zz.push_back(varint::ZigZagEncode(static_cast<int64_t>(
          static_cast<uint64_t>(v) - static_cast<uint64_t>(prev))));
      prev = v;
    }
    const int width = bitpack::RequiredWidth(zz);
    varint::AppendI64(out, static_cast<int64_t>(
                               static_cast<uint64_t>(first) -
                               static_cast<uint64_t>(prev_first)));
    varint::AppendU64(out, static_cast<uint64_t>(first) -
                               static_cast<uint64_t>(mn));
    varint::AppendU64(out, static_cast<uint64_t>(mx) -
                               static_cast<uint64_t>(first));
    out->AppendU8(static_cast<uint8_t>(width));
    bitpack::Pack(zz, width, &payload);
    prev_first = first;
  }
  out->Append(payload.AsSlice());
}

Status ParseMiniBlocks(Slice data, size_t count, std::vector<MiniBlock>* dir,
                       Slice* payload) {
  dir->clear();
  *payload = Slice();
  if (count == 0) return Status::OK();
  uint64_t mb_rows = 0;
  if (!varint::ReadU64(&data, &mb_rows) || mb_rows == 0) {
    return Status::Corruption("miniblock: bad block row count");
  }
  const size_t num_blocks = (count + mb_rows - 1) / mb_rows;
  dir->reserve(num_blocks);
  int64_t prev_first = 0;
  size_t payload_offset = 0;
  for (size_t k = 0; k < num_blocks; ++k) {
    MiniBlock mb;
    mb.row_begin = k * mb_rows;
    mb.rows = std::min<size_t>(mb_rows, count - mb.row_begin);
    int64_t dfirst = 0;
    uint64_t below = 0;
    uint64_t above = 0;
    if (!varint::ReadI64(&data, &dfirst) || !varint::ReadU64(&data, &below) ||
        !varint::ReadU64(&data, &above) || data.empty()) {
      return Status::Corruption("miniblock: truncated directory");
    }
    mb.first = static_cast<int64_t>(static_cast<uint64_t>(prev_first) +
                                    static_cast<uint64_t>(dfirst));
    mb.min = static_cast<int64_t>(static_cast<uint64_t>(mb.first) - below);
    mb.max = static_cast<int64_t>(static_cast<uint64_t>(mb.first) + above);
    mb.width = data[0];
    data.RemovePrefix(1);
    if (mb.width > 64) return Status::Corruption("miniblock: width > 64");
    mb.payload_offset = payload_offset;
    payload_offset += bitpack::PackedSize(mb.rows - 1, mb.width);
    prev_first = mb.first;
    dir->push_back(mb);
  }
  if (data.size() < payload_offset) {
    return Status::Corruption("miniblock: truncated payload");
  }
  *payload = data;
  return Status::OK();
}

Status DecodeMiniBlock(const MiniBlock& mb, Slice payload, int64_t* out) {
  out[0] = mb.first;
  if (mb.rows <= 1) return Status::OK();
  if (payload.size() < mb.payload_offset) {
    return Status::Corruption("miniblock: payload offset out of range");
  }
  Slice packed = Slice(payload.data() + mb.payload_offset,
                       payload.size() - mb.payload_offset);
  std::vector<uint64_t> zz;
  SCUBA_RETURN_IF_ERROR(bitpack::Unpack(packed, mb.width, mb.rows - 1, &zz));
  uint64_t acc = static_cast<uint64_t>(mb.first);
  for (size_t i = 0; i < zz.size(); ++i) {
    acc += static_cast<uint64_t>(varint::ZigZagDecode(zz[i]));
    out[i + 1] = static_cast<int64_t>(acc);
  }
  return Status::OK();
}

Status DecodeMiniBlocks(Slice data, size_t count,
                        std::vector<int64_t>* values) {
  values->clear();
  if (count == 0) return Status::OK();
  std::vector<MiniBlock> dir;
  Slice payload;
  SCUBA_RETURN_IF_ERROR(ParseMiniBlocks(data, count, &dir, &payload));
  values->resize(count);
  for (const MiniBlock& mb : dir) {
    SCUBA_RETURN_IF_ERROR(DecodeMiniBlock(mb, payload, values->data() + mb.row_begin));
  }
  return Status::OK();
}

}  // namespace delta
}  // namespace scuba
