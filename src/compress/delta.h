#ifndef SCUBA_COMPRESS_DELTA_H_
#define SCUBA_COMPRESS_DELTA_H_

#include <cstdint>
#include <vector>

namespace scuba {
namespace delta {

/// Delta encoding for int64 sequences. Scuba's "time" column arrives in
/// roughly chronological order, so consecutive deltas are tiny; combined
/// with zigzag + bit packing this compresses timestamps dramatically.

/// Replaces values[i] (i >= 1) with values[i] - values[i-1]; values[0] is
/// kept as the base. In-place; inverse of Decode.
void Encode(std::vector<int64_t>* values);

/// Reverses Encode via prefix sum.
void Decode(std::vector<int64_t>* values);

/// Maps signed deltas to unsigned via zigzag so small magnitudes pack small.
std::vector<uint64_t> ZigZagAll(const std::vector<int64_t>& values);
std::vector<int64_t> UnZigZagAll(const std::vector<uint64_t>& values);

}  // namespace delta
}  // namespace scuba

#endif  // SCUBA_COMPRESS_DELTA_H_
