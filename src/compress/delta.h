#ifndef SCUBA_COMPRESS_DELTA_H_
#define SCUBA_COMPRESS_DELTA_H_

#include <cstdint>
#include <vector>

#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {
namespace delta {

/// Delta encoding for int64 sequences. Scuba's "time" column arrives in
/// roughly chronological order, so consecutive deltas are tiny; combined
/// with zigzag + bit packing this compresses timestamps dramatically.

/// Replaces values[i] (i >= 1) with values[i] - values[i-1]; values[0] is
/// kept as the base. In-place; inverse of Decode.
void Encode(std::vector<int64_t>* values);

/// Reverses Encode via prefix sum.
void Decode(std::vector<int64_t>* values);

/// Maps signed deltas to unsigned via zigzag so small magnitudes pack small.
std::vector<uint64_t> ZigZagAll(const std::vector<int64_t>& values);
std::vector<int64_t> UnZigZagAll(const std::vector<uint64_t>& values);

/// --- Mini-block layout ---------------------------------------------------
///
/// The delta+zigzag+mbpack chain splits a column into fixed-size mini-blocks
/// of kMiniBlockRows rows. The stream is:
///
///   varint   mini-block row count (kMiniBlockRows; stored for evolution)
///   per block, in order (the directory):
///     zigzag varint   first - previous block's first (wrapping)
///     varint          first - min   (wrapping uint64 difference)
///     varint          max - first   (wrapping uint64 difference)
///     u8              bit width of this block's packed deltas
///   per block, in order (the payload):
///     bitpack(rows - 1 zigzag deltas local to the block, width bits each)
///
/// Every block carries zone-map-style (min, max) bounds and decodes
/// independently of its neighbours, so a selective scan prunes whole blocks
/// against a predicate and decodes only the survivors. Each block's payload
/// offset is derived from the directory widths, not stored.

inline constexpr size_t kMiniBlockRows = 128;

struct MiniBlock {
  int64_t first = 0;  // absolute first value of the block
  int64_t min = 0;    // zone bounds over the block's values
  int64_t max = 0;
  int width = 0;           // bit width of the packed zigzag deltas
  size_t row_begin = 0;    // index of the block's first row in the column
  size_t rows = 0;         // rows in this block (last block may be short)
  size_t payload_offset = 0;  // byte offset of the block's packed deltas
};

/// Appends the mini-block stream for `values` (must be non-empty).
void EncodeMiniBlocks(const std::vector<int64_t>& values, ByteBuffer* out);

/// Parses the directory of an EncodeMiniBlocks stream holding `count` rows.
/// On success *payload covers the packed-deltas region (directory stripped).
Status ParseMiniBlocks(Slice data, size_t count, std::vector<MiniBlock>* dir,
                       Slice* payload);

/// Decodes one mini-block into out[0 .. mb.rows).
Status DecodeMiniBlock(const MiniBlock& mb, Slice payload, int64_t* out);

/// Full decode of an EncodeMiniBlocks stream.
Status DecodeMiniBlocks(Slice data, size_t count,
                        std::vector<int64_t>* values);

}  // namespace delta
}  // namespace scuba

#endif  // SCUBA_COMPRESS_DELTA_H_
