#include "compress/dictionary.h"

#include <unordered_set>

#include "util/varint.h"

namespace scuba {
namespace dictionary {

std::vector<uint64_t> EncodeStrings(const std::vector<std::string>& values,
                                    std::vector<std::string>* dict_values) {
  dict_values->clear();
  std::vector<uint64_t> indexes;
  indexes.reserve(values.size());
  // Keys are owned copies: views into dict_values would dangle for SSO
  // strings when the vector reallocates.
  std::unordered_map<std::string, uint64_t> lookup;
  for (const std::string& v : values) {
    auto [it, inserted] = lookup.try_emplace(v, dict_values->size());
    if (inserted) dict_values->push_back(v);
    indexes.push_back(it->second);
  }
  return indexes;
}

std::vector<uint64_t> EncodeInts(const std::vector<int64_t>& values,
                                 std::vector<int64_t>* dict_values) {
  dict_values->clear();
  std::vector<uint64_t> indexes;
  indexes.reserve(values.size());
  std::unordered_map<int64_t, uint64_t> lookup;
  for (int64_t v : values) {
    auto [it, inserted] = lookup.try_emplace(v, dict_values->size());
    if (inserted) dict_values->push_back(v);
    indexes.push_back(it->second);
  }
  return indexes;
}

void SerializeStringDict(const std::vector<std::string>& dict_values,
                         ByteBuffer* out) {
  varint::AppendU64(out, dict_values.size());
  for (const std::string& v : dict_values) {
    varint::AppendU64(out, v.size());
    out->Append(v.data(), v.size());
  }
}

Status ParseStringDict(Slice input, std::vector<std::string>* dict_values) {
  dict_values->clear();
  uint64_t count = 0;
  if (!varint::ReadU64(&input, &count)) {
    return Status::Corruption("string dict: truncated count");
  }
  dict_values->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    if (!varint::ReadU64(&input, &len) || input.size() < len) {
      return Status::Corruption("string dict: truncated entry");
    }
    dict_values->emplace_back(reinterpret_cast<const char*>(input.data()),
                              len);
    input.RemovePrefix(len);
  }
  return Status::OK();
}

void SerializeIntDict(const std::vector<int64_t>& dict_values,
                      ByteBuffer* out) {
  varint::AppendU64(out, dict_values.size());
  for (int64_t v : dict_values) varint::AppendI64(out, v);
}

Status ParseIntDict(Slice input, std::vector<int64_t>* dict_values) {
  dict_values->clear();
  uint64_t count = 0;
  if (!varint::ReadU64(&input, &count)) {
    return Status::Corruption("int dict: truncated count");
  }
  dict_values->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    if (!varint::ReadI64(&input, &v)) {
      return Status::Corruption("int dict: truncated entry");
    }
    dict_values->push_back(v);
  }
  return Status::OK();
}

size_t CountDistinct(const std::vector<std::string>& values, size_t limit) {
  std::unordered_set<std::string_view> seen;
  for (const std::string& v : values) {
    seen.insert(std::string_view(v));
    if (seen.size() > limit) return limit + 1;
  }
  return seen.size();
}

size_t CountDistinct(const std::vector<int64_t>& values, size_t limit) {
  std::unordered_set<int64_t> seen;
  for (int64_t v : values) {
    seen.insert(v);
    if (seen.size() > limit) return limit + 1;
  }
  return seen.size();
}

}  // namespace dictionary
}  // namespace scuba
