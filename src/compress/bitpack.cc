#include "compress/bitpack.h"

#include "util/bit_util.h"

namespace scuba {
namespace bitpack {

int RequiredWidth(const std::vector<uint64_t>& values) {
  uint64_t max = 0;
  for (uint64_t v : values) max |= v;
  return bit_util::BitWidth(max);
}

void Pack(const std::vector<uint64_t>& values, int width, ByteBuffer* out) {
  if (width == 0 || values.empty()) return;
  const size_t total_bytes = PackedSize(values.size(), width);
  size_t start = out->AppendZeros(total_bytes);
  uint8_t* dst = out->data() + start;
  size_t out_pos = 0;

  // Bit accumulator; invariant at the top of each iteration: acc_bits < 8.
  uint64_t acc = 0;
  int acc_bits = 0;
  for (uint64_t v : values) {
    acc |= acc_bits == 0 ? v : (v << acc_bits);
    int total = acc_bits + width;
    if (total > 64) {
      // acc is full up to bit 63; flush all 8 bytes, then keep v's high bits.
      for (int k = 0; k < 8; ++k) {
        dst[out_pos++] = static_cast<uint8_t>(acc);
        acc >>= 8;
      }
      int consumed = 64 - acc_bits;  // bits of v already flushed
      acc = consumed == 64 ? 0 : (v >> consumed);
      acc_bits = width - consumed;
    } else {
      acc_bits = total;
    }
    while (acc_bits >= 8) {
      dst[out_pos++] = static_cast<uint8_t>(acc);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) dst[out_pos++] = static_cast<uint8_t>(acc);
}

Status Unpack(Slice input, int width, size_t count,
              std::vector<uint64_t>* values) {
  values->clear();
  values->reserve(count);
  if (width == 0) {
    values->assign(count, 0);
    return Status::OK();
  }
  if (input.size() < PackedSize(count, width)) {
    return Status::Corruption("bitpack: input too short");
  }
  const uint8_t* src = input.data();
  const uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);

  uint64_t acc = 0;
  int acc_bits = 0;
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    while (acc_bits < width && acc_bits <= 56) {
      acc |= static_cast<uint64_t>(src[pos++]) << acc_bits;
      acc_bits += 8;
    }
    if (acc_bits >= width) {
      values->push_back(acc & mask);
      acc = width == 64 ? 0 : (acc >> width);
      acc_bits -= width;
    } else {
      // acc_bits in [57, 63] and width > acc_bits: at most 7 more bits needed.
      int rem = width - acc_bits;
      uint8_t byte = src[pos++];
      uint64_t v = acc | (static_cast<uint64_t>(byte & ((1u << rem) - 1))
                          << acc_bits);
      values->push_back(v & mask);
      acc = static_cast<uint64_t>(byte) >> rem;
      acc_bits = 8 - rem;
    }
  }
  return Status::OK();
}

}  // namespace bitpack
}  // namespace scuba
