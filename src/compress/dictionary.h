#ifndef SCUBA_COMPRESS_DICTIONARY_H_
#define SCUBA_COMPRESS_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {
namespace dictionary {

/// Dictionary encoding: the distinct values of a column are stored once in
/// a dictionary blob; the column body becomes a vector of dictionary
/// indexes (then bit-packed by the caller). This is the highest-leverage
/// codec for Scuba-style service logs, whose string columns have tiny
/// cardinality relative to row count.

/// Builds a string dictionary in first-occurrence order.
/// Returns the per-row index vector; `*dict_values` receives the distinct
/// values in index order.
std::vector<uint64_t> EncodeStrings(const std::vector<std::string>& values,
                                    std::vector<std::string>* dict_values);

/// Builds an int64 dictionary in first-occurrence order.
std::vector<uint64_t> EncodeInts(const std::vector<int64_t>& values,
                                 std::vector<int64_t>* dict_values);

/// Serializes a string dictionary as varint(count) then varint(len) + bytes
/// per entry.
void SerializeStringDict(const std::vector<std::string>& dict_values,
                         ByteBuffer* out);
Status ParseStringDict(Slice input, std::vector<std::string>* dict_values);

/// Serializes an int64 dictionary as varint(count) then zigzag-varints.
void SerializeIntDict(const std::vector<int64_t>& dict_values,
                      ByteBuffer* out);
Status ParseIntDict(Slice input, std::vector<int64_t>* dict_values);

/// Counts distinct values without materializing a dictionary; used by the
/// codec chooser to decide whether dictionary encoding pays off. Stops
/// early (returning limit + 1) once more than `limit` distinct are seen.
size_t CountDistinct(const std::vector<std::string>& values, size_t limit);
size_t CountDistinct(const std::vector<int64_t>& values, size_t limit);

}  // namespace dictionary
}  // namespace scuba

#endif  // SCUBA_COMPRESS_DICTIONARY_H_
