#ifndef SCUBA_COMPRESS_LZ4_H_
#define SCUBA_COMPRESS_LZ4_H_

#include <cstddef>
#include <cstdint>

#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {
namespace lz4 {

/// From-scratch implementation of the LZ4 block format (the paper compresses
/// every column with lz4 as one of its stages). Greedy hash-chain-free
/// matcher with a 64K-entry hash table; output is standard LZ4 block
/// sequences: token, literals, little-endian 16-bit offset, match length.
///
/// This is a *block* codec: no frame header, no checksum (the row block
/// column carries its own CRC32C in its footer).

/// Upper bound on compressed size for an input of `n` bytes
/// (worst case is incompressible data plus token overhead).
size_t CompressBound(size_t n);

/// Compresses `input`, appending to `*out`. Always succeeds; output may be
/// larger than the input for incompressible data (callers typically keep
/// the raw bytes in that case).
void Compress(Slice input, ByteBuffer* out);

/// Decompresses an LZ4 block produced by Compress (or any standard LZ4
/// block) into `dst[0, dst_size)`. `dst_size` must be the exact size of the
/// original input. Returns Corruption on malformed input.
Status Decompress(Slice input, uint8_t* dst, size_t dst_size);

}  // namespace lz4
}  // namespace scuba

#endif  // SCUBA_COMPRESS_LZ4_H_
