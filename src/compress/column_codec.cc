#include "compress/column_codec.h"

#include <cstring>

#include "compress/bitpack.h"
#include "compress/delta.h"
#include "compress/dictionary.h"
#include "compress/lz4.h"
#include "util/varint.h"

namespace scuba {
namespace column_codec {
namespace {

// A dictionary pays off when the column has few distinct values relative to
// its row count. 4096 distinct values = 12-bit indexes.
constexpr size_t kMaxDictCardinality = 4096;
constexpr size_t kMinRowsForDict = 16;

// LZ4 is appended to a chain only when it shrinks the blob by at least 1/16.
bool Lz4Helps(size_t raw, size_t compressed) {
  return compressed + raw / 16 < raw;
}

// Wraps `payload` as varint(raw_size) + lz4(payload) if that helps;
// returns true (and replaces *payload) when the LZ4 stage was applied.
bool MaybeLz4(ByteBuffer* payload) {
  ByteBuffer compressed;
  varint::AppendU64(&compressed, payload->size());
  lz4::Compress(payload->AsSlice(), &compressed);
  if (Lz4Helps(payload->size(), compressed.size())) {
    *payload = std::move(compressed);
    return true;
  }
  return false;
}

// Reverses MaybeLz4: *data is replaced by the decompressed payload.
Status UnLz4(Slice input, ByteBuffer* out) {
  uint64_t raw_size = 0;
  if (!varint::ReadU64(&input, &raw_size)) {
    return Status::Corruption("column: truncated lz4 size prefix");
  }
  out->Clear();
  if (raw_size > 0) {
    out->AppendZeros(raw_size);
    SCUBA_RETURN_IF_ERROR(lz4::Decompress(input, out->data(), raw_size));
  }
  return Status::OK();
}

ChainCode AppendStage(ChainCode chain, Stage stage) {
  int len = ChainLength(chain);
  return static_cast<ChainCode>(chain |
                                (static_cast<ChainCode>(stage) << (4 * len)));
}

// Packs index/delta vectors as u8(width) + bitpacked values.
void AppendPacked(const std::vector<uint64_t>& values, ByteBuffer* out) {
  int width = bitpack::RequiredWidth(values);
  out->AppendU8(static_cast<uint8_t>(width));
  bitpack::Pack(values, width, out);
}

Status ReadPacked(Slice* in, size_t count, std::vector<uint64_t>* values) {
  if (in->empty()) return Status::Corruption("column: missing pack width");
  int width = (*in)[0];
  in->RemovePrefix(1);
  if (width > 64) return Status::Corruption("column: pack width > 64");
  SCUBA_RETURN_IF_ERROR(bitpack::Unpack(*in, width, count, values));
  in->RemovePrefix(bitpack::PackedSize(count, width));
  return Status::OK();
}

}  // namespace

ChainCode MakeChain(std::initializer_list<Stage> stages) {
  ChainCode chain = 0;
  int i = 0;
  for (Stage s : stages) {
    chain |= static_cast<ChainCode>(s) << (4 * i);
    ++i;
  }
  return chain;
}

std::vector<Stage> ChainStages(ChainCode chain) {
  std::vector<Stage> stages;
  for (int i = 0; i < 4; ++i) {
    auto s = static_cast<Stage>((chain >> (4 * i)) & 0xF);
    if (s == Stage::kNone) break;
    stages.push_back(s);
  }
  return stages;
}

int ChainLength(ChainCode chain) {
  return static_cast<int>(ChainStages(chain).size());
}

std::string ChainToString(ChainCode chain) {
  std::string out;
  for (Stage s : ChainStages(chain)) {
    if (!out.empty()) out += "+";
    switch (s) {
      case Stage::kNone: out += "none"; break;
      case Stage::kDictionary: out += "dict"; break;
      case Stage::kDelta: out += "delta"; break;
      case Stage::kZigZag: out += "zigzag"; break;
      case Stage::kBitPack: out += "bitpack"; break;
      case Stage::kLz4: out += "lz4"; break;
      case Stage::kShuffle: out += "shuffle"; break;
      case Stage::kRawStrings: out += "rawstr"; break;
      case Stage::kRawFixed: out += "rawfixed"; break;
      case Stage::kMiniBlockPack: out += "mbpack"; break;
    }
  }
  return out.empty() ? "none" : out;
}

EncodedColumn EncodeInt64(const std::vector<int64_t>& values) {
  EncodedColumn out;
  if (values.empty()) return out;

  size_t distinct = dictionary::CountDistinct(values, kMaxDictCardinality);
  if (values.size() >= kMinRowsForDict && distinct <= kMaxDictCardinality &&
      distinct * 4 <= values.size()) {
    std::vector<int64_t> dict_values;
    std::vector<uint64_t> indexes =
        dictionary::EncodeInts(values, &dict_values);
    dictionary::SerializeIntDict(dict_values, &out.dict);
    out.dict_item_count = dict_values.size();
    AppendPacked(indexes, &out.data);
    out.chain = MakeChain({Stage::kDictionary, Stage::kBitPack});
  } else {
    delta::EncodeMiniBlocks(values, &out.data);
    out.chain =
        MakeChain({Stage::kDelta, Stage::kZigZag, Stage::kMiniBlockPack});
  }
  if (MaybeLz4(&out.data)) out.chain = AppendStage(out.chain, Stage::kLz4);
  return out;
}

EncodedColumn EncodeInt64Legacy(const std::vector<int64_t>& values) {
  EncodedColumn out;
  if (values.empty()) return out;
  std::vector<int64_t> work = values;
  delta::Encode(&work);
  int64_t base = work[0];
  work.erase(work.begin());
  std::vector<uint64_t> zz = delta::ZigZagAll(work);
  varint::AppendI64(&out.data, base);
  AppendPacked(zz, &out.data);
  out.chain = MakeChain({Stage::kDelta, Stage::kZigZag, Stage::kBitPack});
  if (MaybeLz4(&out.data)) out.chain = AppendStage(out.chain, Stage::kLz4);
  return out;
}

EncodedColumn EncodeDouble(const std::vector<double>& values) {
  EncodedColumn out;
  if (values.empty()) return out;

  // Byte-plane shuffle: plane k holds byte k of every value. Exponent and
  // high-mantissa planes are highly repetitive in real data, so LZ4 bites.
  const size_t n = values.size();
  ByteBuffer shuffled;
  shuffled.AppendZeros(n * 8);
  uint8_t* planes = shuffled.data();
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &values[i], 8);
    for (int k = 0; k < 8; ++k) {
      planes[static_cast<size_t>(k) * n + i] =
          static_cast<uint8_t>(bits >> (8 * k));
    }
  }
  ByteBuffer compressed;
  varint::AppendU64(&compressed, shuffled.size());
  lz4::Compress(shuffled.AsSlice(), &compressed);

  if (Lz4Helps(n * 8, compressed.size())) {
    out.data = std::move(compressed);
    out.chain = MakeChain({Stage::kShuffle, Stage::kLz4});
  } else {
    // Incompressible (e.g. uniform random doubles): store raw.
    for (double v : values) {
      uint64_t bits;
      std::memcpy(&bits, &v, 8);
      out.data.AppendU64(bits);
    }
    out.chain = MakeChain({Stage::kRawFixed});
  }
  return out;
}

EncodedColumn EncodeString(const std::vector<std::string>& values) {
  EncodedColumn out;
  if (values.empty()) return out;

  size_t distinct = dictionary::CountDistinct(values, kMaxDictCardinality);
  if (values.size() >= kMinRowsForDict && distinct <= kMaxDictCardinality &&
      distinct * 2 <= values.size()) {
    std::vector<std::string> dict_values;
    std::vector<uint64_t> indexes =
        dictionary::EncodeStrings(values, &dict_values);
    dictionary::SerializeStringDict(dict_values, &out.dict);
    out.dict_item_count = dict_values.size();
    AppendPacked(indexes, &out.data);
    out.chain = MakeChain({Stage::kDictionary, Stage::kBitPack});
  } else {
    for (const std::string& v : values) {
      varint::AppendU64(&out.data, v.size());
      out.data.Append(v.data(), v.size());
    }
    out.chain = MakeChain({Stage::kRawStrings});
  }
  if (MaybeLz4(&out.data)) out.chain = AppendStage(out.chain, Stage::kLz4);
  return out;
}

namespace {

// Splits a chain into (body stages, had_lz4_suffix).
bool StripLz4(std::vector<Stage>* stages) {
  if (!stages->empty() && stages->back() == Stage::kLz4) {
    stages->pop_back();
    return true;
  }
  return false;
}

}  // namespace

Status DecodeInt64(ChainCode chain, Slice dict, Slice data, size_t count,
                   std::vector<int64_t>* values) {
  values->clear();
  if (count == 0) return Status::OK();

  std::vector<Stage> stages = ChainStages(chain);
  ByteBuffer unwrapped;
  if (StripLz4(&stages)) {
    SCUBA_RETURN_IF_ERROR(UnLz4(data, &unwrapped));
    data = unwrapped.AsSlice();
  }

  if (stages == std::vector<Stage>{Stage::kDictionary, Stage::kBitPack}) {
    std::vector<int64_t> dict_values;
    SCUBA_RETURN_IF_ERROR(dictionary::ParseIntDict(dict, &dict_values));
    std::vector<uint64_t> indexes;
    SCUBA_RETURN_IF_ERROR(ReadPacked(&data, count, &indexes));
    values->reserve(count);
    for (uint64_t idx : indexes) {
      if (idx >= dict_values.size()) {
        return Status::Corruption("int column: dict index out of range");
      }
      values->push_back(dict_values[idx]);
    }
    return Status::OK();
  }

  if (stages == std::vector<Stage>{Stage::kDelta, Stage::kZigZag,
                                   Stage::kMiniBlockPack}) {
    return delta::DecodeMiniBlocks(data, count, values);
  }

  // Legacy whole-column chain: row blocks written before the mini-block
  // format (shm images and disk backups survive restarts and upgrades, so
  // the old layout must keep decoding).
  if (stages ==
      std::vector<Stage>{Stage::kDelta, Stage::kZigZag, Stage::kBitPack}) {
    int64_t base = 0;
    if (!varint::ReadI64(&data, &base)) {
      return Status::Corruption("int column: truncated base");
    }
    std::vector<uint64_t> zz;
    SCUBA_RETURN_IF_ERROR(ReadPacked(&data, count - 1, &zz));
    std::vector<int64_t> deltas = delta::UnZigZagAll(zz);
    values->reserve(count);
    values->push_back(base);
    uint64_t acc = static_cast<uint64_t>(base);
    for (int64_t d : deltas) {
      acc += static_cast<uint64_t>(d);
      values->push_back(static_cast<int64_t>(acc));
    }
    return Status::OK();
  }

  return Status::Corruption("int column: unknown chain " +
                            ChainToString(chain));
}

Status DecodeDouble(ChainCode chain, Slice dict, Slice data, size_t count,
                    std::vector<double>* values) {
  (void)dict;
  values->clear();
  if (count == 0) return Status::OK();

  std::vector<Stage> stages = ChainStages(chain);
  if (stages == std::vector<Stage>{Stage::kShuffle, Stage::kLz4}) {
    ByteBuffer shuffled;
    SCUBA_RETURN_IF_ERROR(UnLz4(data, &shuffled));
    if (shuffled.size() != count * 8) {
      return Status::Corruption("double column: size mismatch");
    }
    const uint8_t* planes = shuffled.data();
    values->reserve(count);
    for (size_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      for (int k = 0; k < 8; ++k) {
        bits |= static_cast<uint64_t>(planes[static_cast<size_t>(k) * count + i])
                << (8 * k);
      }
      double v;
      std::memcpy(&v, &bits, 8);
      values->push_back(v);
    }
    return Status::OK();
  }

  if (stages == std::vector<Stage>{Stage::kRawFixed}) {
    if (data.size() < count * 8) {
      return Status::Corruption("double column: raw data too short");
    }
    values->reserve(count);
    for (size_t i = 0; i < count; ++i) {
      uint64_t bits = ByteBuffer::DecodeU64(data.data() + i * 8);
      double v;
      std::memcpy(&v, &bits, 8);
      values->push_back(v);
    }
    return Status::OK();
  }

  return Status::Corruption("double column: unknown chain " +
                            ChainToString(chain));
}

bool IsStringDictChain(ChainCode chain) {
  std::vector<Stage> stages = ChainStages(chain);
  StripLz4(&stages);
  return stages == std::vector<Stage>{Stage::kDictionary, Stage::kBitPack};
}

bool IsDictBitPackChain(ChainCode chain) {
  std::vector<Stage> stages = ChainStages(chain);
  StripLz4(&stages);
  return stages == std::vector<Stage>{Stage::kDictionary, Stage::kBitPack};
}

bool IsMiniBlockChain(ChainCode chain) {
  std::vector<Stage> stages = ChainStages(chain);
  StripLz4(&stages);
  return stages == std::vector<Stage>{Stage::kDelta, Stage::kZigZag,
                                      Stage::kMiniBlockPack};
}

Status UnwrapLz4(ChainCode chain, Slice data, ByteBuffer* storage,
                 Slice* out) {
  std::vector<Stage> stages = ChainStages(chain);
  if (StripLz4(&stages)) {
    SCUBA_RETURN_IF_ERROR(UnLz4(data, storage));
    *out = storage->AsSlice();
  } else {
    *out = data;
  }
  return Status::OK();
}

Status ReadPackedCodes(Slice data, size_t count, int* width, Slice* packed) {
  if (data.empty()) return Status::Corruption("column: missing pack width");
  *width = data[0];
  data.RemovePrefix(1);
  if (*width > 64) return Status::Corruption("column: pack width > 64");
  if (data.size() < bitpack::PackedSize(count, *width)) {
    return Status::Corruption("column: packed codes too short");
  }
  *packed = data;
  return Status::OK();
}

Status DecodeStringDictCodes(ChainCode chain, Slice dict, Slice data,
                             size_t count,
                             std::vector<std::string>* dict_values,
                             std::vector<uint32_t>* codes) {
  dict_values->clear();
  codes->clear();
  if (!IsStringDictChain(chain)) {
    return Status::InvalidArgument("string column: not dictionary encoded");
  }
  if (count == 0) return Status::OK();

  std::vector<Stage> stages = ChainStages(chain);
  ByteBuffer unwrapped;
  if (StripLz4(&stages)) {
    SCUBA_RETURN_IF_ERROR(UnLz4(data, &unwrapped));
    data = unwrapped.AsSlice();
  }
  SCUBA_RETURN_IF_ERROR(dictionary::ParseStringDict(dict, dict_values));
  std::vector<uint64_t> indexes;
  SCUBA_RETURN_IF_ERROR(ReadPacked(&data, count, &indexes));
  codes->reserve(count);
  for (uint64_t idx : indexes) {
    if (idx >= dict_values->size()) {
      return Status::Corruption("string column: dict index out of range");
    }
    codes->push_back(static_cast<uint32_t>(idx));
  }
  return Status::OK();
}

Status DecodeString(ChainCode chain, Slice dict, Slice data, size_t count,
                    std::vector<std::string>* values) {
  values->clear();
  if (count == 0) return Status::OK();

  std::vector<Stage> stages = ChainStages(chain);
  ByteBuffer unwrapped;
  if (StripLz4(&stages)) {
    SCUBA_RETURN_IF_ERROR(UnLz4(data, &unwrapped));
    data = unwrapped.AsSlice();
  }

  if (stages == std::vector<Stage>{Stage::kDictionary, Stage::kBitPack}) {
    std::vector<std::string> dict_values;
    SCUBA_RETURN_IF_ERROR(dictionary::ParseStringDict(dict, &dict_values));
    std::vector<uint64_t> indexes;
    SCUBA_RETURN_IF_ERROR(ReadPacked(&data, count, &indexes));
    values->reserve(count);
    for (uint64_t idx : indexes) {
      if (idx >= dict_values.size()) {
        return Status::Corruption("string column: dict index out of range");
      }
      values->push_back(dict_values[idx]);
    }
    return Status::OK();
  }

  if (stages == std::vector<Stage>{Stage::kRawStrings}) {
    values->reserve(count);
    for (size_t i = 0; i < count; ++i) {
      uint64_t len = 0;
      if (!varint::ReadU64(&data, &len) || data.size() < len) {
        return Status::Corruption("string column: truncated entry");
      }
      values->emplace_back(reinterpret_cast<const char*>(data.data()), len);
      data.RemovePrefix(len);
    }
    return Status::OK();
  }

  return Status::Corruption("string column: unknown chain " +
                            ChainToString(chain));
}

}  // namespace column_codec
}  // namespace scuba
