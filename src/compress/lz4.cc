#include "compress/lz4.h"

#include <cstring>

namespace scuba {
namespace lz4 {
namespace {

constexpr size_t kMinMatch = 4;
// The LZ4 block format requires the last 5 bytes to be literals and no match
// to start within the last 12 bytes.
constexpr size_t kLastLiterals = 5;
constexpr size_t kMatchFindLimitMargin = 12;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashLog = 16;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

// Writes a length in the LZ4 extended-length scheme (255-run continuation).
void AppendExtLength(ByteBuffer* out, size_t len) {
  while (len >= 255) {
    out->AppendU8(255);
    len -= 255;
  }
  out->AppendU8(static_cast<uint8_t>(len));
}

void EmitSequence(ByteBuffer* out, const uint8_t* literals, size_t lit_len,
                  size_t offset, size_t match_len) {
  // Token: high nibble literal length, low nibble (match_len - kMinMatch).
  size_t ml_code = match_len - kMinMatch;
  uint8_t token = static_cast<uint8_t>(
      (lit_len >= 15 ? 15 : lit_len) << 4 | (ml_code >= 15 ? 15 : ml_code));
  out->AppendU8(token);
  if (lit_len >= 15) AppendExtLength(out, lit_len - 15);
  out->Append(literals, lit_len);
  out->AppendU16(static_cast<uint16_t>(offset));
  if (ml_code >= 15) AppendExtLength(out, ml_code - 15);
}

void EmitFinalLiterals(ByteBuffer* out, const uint8_t* literals,
                       size_t lit_len) {
  uint8_t token =
      static_cast<uint8_t>((lit_len >= 15 ? 15 : lit_len) << 4);
  out->AppendU8(token);
  if (lit_len >= 15) AppendExtLength(out, lit_len - 15);
  out->Append(literals, lit_len);
}

}  // namespace

size_t CompressBound(size_t n) { return n + n / 255 + 16; }

void Compress(Slice input, ByteBuffer* out) {
  const uint8_t* const base = input.data();
  const size_t n = input.size();

  if (n < kMatchFindLimitMargin + kMinMatch) {
    // Too short to contain any match: one literal run.
    EmitFinalLiterals(out, base, n);
    return;
  }

  // Hash table of absolute positions + 1 (0 = empty), valid within this block.
  static thread_local uint32_t table[1u << kHashLog];
  std::memset(table, 0, sizeof(table));

  const size_t match_limit = n - kMatchFindLimitMargin;
  const size_t input_end = n - kLastLiterals;
  size_t anchor = 0;
  size_t pos = 0;

  while (pos < match_limit) {
    // Find a match for the 4 bytes at pos.
    uint32_t h = Hash(Load32(base + pos));
    size_t candidate = table[h] == 0 ? SIZE_MAX : table[h] - 1;
    table[h] = static_cast<uint32_t>(pos + 1);

    if (candidate == SIZE_MAX || pos - candidate > kMaxOffset ||
        Load32(base + candidate) != Load32(base + pos)) {
      ++pos;
      continue;
    }

    // Extend the match forward (must not run into the end margin).
    size_t match_len = kMinMatch;
    const size_t max_len = input_end - pos;
    while (match_len < max_len &&
           base[candidate + match_len] == base[pos + match_len]) {
      ++match_len;
    }

    EmitSequence(out, base + anchor, pos - anchor, pos - candidate, match_len);
    pos += match_len;
    anchor = pos;

    // Seed the table inside the match so nearby repeats are found.
    if (pos < match_limit) {
      table[Hash(Load32(base + pos - 2))] = static_cast<uint32_t>(pos - 1);
    }
  }

  EmitFinalLiterals(out, base + anchor, n - anchor);
}

Status Decompress(Slice input, uint8_t* dst, size_t dst_size) {
  const uint8_t* src = input.data();
  const uint8_t* const src_end = src + input.size();
  uint8_t* out = dst;
  uint8_t* const out_end = dst + dst_size;

  auto read_ext_length = [&](size_t* len) -> bool {
    uint8_t byte;
    do {
      if (src >= src_end) return false;
      byte = *src++;
      *len += byte;
    } while (byte == 255);
    return true;
  };

  while (src < src_end) {
    const uint8_t token = *src++;

    // Literals.
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !read_ext_length(&lit_len)) {
      return Status::Corruption("lz4: truncated literal length");
    }
    if (static_cast<size_t>(src_end - src) < lit_len ||
        static_cast<size_t>(out_end - out) < lit_len) {
      return Status::Corruption("lz4: literal run overflows buffer");
    }
    std::memcpy(out, src, lit_len);
    src += lit_len;
    out += lit_len;

    if (src >= src_end) break;  // Final literal run has no match part.

    // Match.
    if (src_end - src < 2) return Status::Corruption("lz4: truncated offset");
    size_t offset = static_cast<size_t>(src[0]) |
                    (static_cast<size_t>(src[1]) << 8);
    src += 2;
    if (offset == 0 || offset > static_cast<size_t>(out - dst)) {
      return Status::Corruption("lz4: offset out of range");
    }

    size_t match_len = (token & 0x0F);
    if (match_len == 15 && !read_ext_length(&match_len)) {
      return Status::Corruption("lz4: truncated match length");
    }
    match_len += kMinMatch;
    if (static_cast<size_t>(out_end - out) < match_len) {
      return Status::Corruption("lz4: match overflows buffer");
    }

    // Byte-wise copy: offsets shorter than the match length replicate.
    const uint8_t* match = out - offset;
    for (size_t i = 0; i < match_len; ++i) out[i] = match[i];
    out += match_len;
  }

  if (out != out_end) {
    return Status::Corruption("lz4: decompressed size mismatch");
  }
  return Status::OK();
}

}  // namespace lz4
}  // namespace scuba
