#ifndef SCUBA_COMPRESS_COLUMN_CODEC_H_
#define SCUBA_COMPRESS_COLUMN_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {
namespace column_codec {

/// Scuba compresses each row block column with "a combination of dictionary
/// encoding, bit packing, delta encoding, and lz4 compression, with at least
/// two methods applied to each column" (§2.1). This module implements those
/// four codecs as composable stages and a chooser that picks a chain per
/// column based on cardinality and size.

/// One codec stage. A column's full recipe is a chain of up to four stages,
/// applied left to right at encode time.
enum class Stage : uint8_t {
  kNone = 0,
  kDictionary = 1,  // distinct values -> dictionary blob + index vector
  kDelta = 2,       // v[i] -= v[i-1] (base kept separately)
  kZigZag = 3,      // signed -> unsigned small-magnitude mapping
  kBitPack = 4,     // fixed-width bit packing of uint64 values
  kLz4 = 5,         // LZ4 block compression of the byte stream
  kShuffle = 6,     // byte-plane transpose (doubles), pairs with kLz4
  kRawStrings = 7,  // varint-framed string concatenation
  kRawFixed = 8,    // raw little-endian fixed-width values
  kMiniBlockPack = 9,  // per-mini-block bit packing with (min,max) bounds
};

/// Chain of up to 4 stages packed 4 bits each, first stage in the low bits.
/// This is the 16-bit "compression code" stored in the row block column
/// header (Fig 3).
using ChainCode = uint16_t;

ChainCode MakeChain(std::initializer_list<Stage> stages);
std::vector<Stage> ChainStages(ChainCode chain);
std::string ChainToString(ChainCode chain);
/// Number of distinct codec methods in the chain (kNone excluded).
int ChainLength(ChainCode chain);

/// Result of encoding one column: the chain applied, the dictionary blob
/// (empty unless the chain contains kDictionary), and the data blob.
struct EncodedColumn {
  ChainCode chain = 0;
  uint64_t dict_item_count = 0;
  ByteBuffer dict;
  ByteBuffer data;
};

/// Encodes an int64 column. Chooses dictionary + bit packing for
/// low-cardinality columns, otherwise delta + zigzag + mini-block packing
/// (independently decodable 128-row blocks carrying zone-map bounds, see
/// compress/delta.h); appends an LZ4 stage whenever it shrinks the result.
EncodedColumn EncodeInt64(const std::vector<int64_t>& values);

/// The pre-mini-block int64 chain (delta + zigzag + whole-column bitpack).
/// Kept so back-compat tests can exercise decoding of row blocks written by
/// older builds; DecodeInt64 still accepts both chains.
EncodedColumn EncodeInt64Legacy(const std::vector<int64_t>& values);

/// Encodes a double column with byte-plane shuffle + LZ4 (falls back to raw
/// when incompressible).
EncodedColumn EncodeDouble(const std::vector<double>& values);

/// Encodes a string column. Dictionary + bit-packed indexes when the
/// distinct count is low; varint-framed raw + LZ4 otherwise.
EncodedColumn EncodeString(const std::vector<std::string>& values);

/// True when `chain` is the dictionary-encoded string layout
/// (dict + bitpack, optionally wrapped in lz4).
bool IsStringDictChain(ChainCode chain);

/// Structural chain tests used by the compressed-domain scan path. A
/// dict+bitpack chain stores per-row dictionary codes as u8(width) +
/// bitpacked stream; a mini-block chain stores the compress/delta.h
/// mini-block layout. Both may carry a trailing lz4 stage.
bool IsDictBitPackChain(ChainCode chain);
bool IsMiniBlockChain(ChainCode chain);

/// Strips a trailing lz4 stage: on return *out is either `data` itself (no
/// lz4 in the chain) or a view of *storage holding the decompressed bytes.
Status UnwrapLz4(ChainCode chain, Slice data, ByteBuffer* storage,
                 Slice* out);

/// Splits a (already lz4-unwrapped) dict+bitpack data blob into its bit
/// width and the raw packed code stream of `count` codes.
Status ReadPackedCodes(Slice data, size_t count, int* width, Slice* packed);

/// Decodes the dictionary entries and the per-row dictionary codes of a
/// dictionary-encoded string column WITHOUT materializing per-row strings
/// (codes fit in uint32: the chooser caps cardinality at 4096). The
/// vectorized query engine evaluates string predicates once per distinct
/// entry and filters rows by code. InvalidArgument when the chain is not
/// IsStringDictChain.
Status DecodeStringDictCodes(ChainCode chain, Slice dict, Slice data,
                             size_t count,
                             std::vector<std::string>* dict_values,
                             std::vector<uint32_t>* codes);

/// Decoders. `count` is the item count from the column header; `dict` and
/// `data` are the blobs located via the header offsets.
Status DecodeInt64(ChainCode chain, Slice dict, Slice data, size_t count,
                   std::vector<int64_t>* values);
Status DecodeDouble(ChainCode chain, Slice dict, Slice data, size_t count,
                    std::vector<double>* values);
Status DecodeString(ChainCode chain, Slice dict, Slice data, size_t count,
                    std::vector<std::string>* values);

}  // namespace column_codec
}  // namespace scuba

#endif  // SCUBA_COMPRESS_COLUMN_CODEC_H_
