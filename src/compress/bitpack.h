#ifndef SCUBA_COMPRESS_BITPACK_H_
#define SCUBA_COMPRESS_BITPACK_H_

#include <cstdint>
#include <vector>

#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {
namespace bitpack {

/// Smallest bit width that can represent every value in `values`.
/// Returns 0 for an empty vector or all-zero values (decoder then emits 0s).
int RequiredWidth(const std::vector<uint64_t>& values);

/// Packs each value into `width` bits, LSB-first within a little-endian
/// bit stream. Values must all fit in `width` bits.
void Pack(const std::vector<uint64_t>& values, int width, ByteBuffer* out);

/// Unpacks `count` values of `width` bits from `input`.
/// Returns Corruption if the input is too short.
Status Unpack(Slice input, int width, size_t count,
              std::vector<uint64_t>* values);

/// Number of bytes Pack will produce for `count` values of `width` bits.
inline size_t PackedSize(size_t count, int width) {
  return (count * static_cast<size_t>(width) + 7) / 8;
}

}  // namespace bitpack
}  // namespace scuba

#endif  // SCUBA_COMPRESS_BITPACK_H_
