#include "ingest/tailer.h"

#include "obs/metrics.h"

namespace scuba {
namespace {

// Cumulative process-wide mirror of TailerStats (scuba.ingest.tailer.*),
// summed across every tailer in the process.
struct TailerMetrics {
  obs::Counter* rows_delivered;
  obs::Counter* batches_delivered;
  obs::Counter* batches_failed;
  obs::Counter* batches_to_restarting;
  obs::Counter* choice_rounds;

  static TailerMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static TailerMetrics m{
        reg.GetCounter("scuba.ingest.tailer.rows_delivered"),
        reg.GetCounter("scuba.ingest.tailer.batches_delivered"),
        reg.GetCounter("scuba.ingest.tailer.batches_failed"),
        reg.GetCounter("scuba.ingest.tailer.batches_to_restarting"),
        reg.GetCounter("scuba.ingest.tailer.choice_rounds")};
    return m;
  }
};

}  // namespace

Tailer::Tailer(TailerConfig config, CategoryLog* log,
               std::vector<LeafServer*> leaves)
    : config_(std::move(config)),
      log_(log),
      leaves_(std::move(leaves)),
      random_(config_.seed) {}

uint64_t Tailer::backlog() const {
  uint64_t size = log_->Size(config_.category);
  return size > offset_ ? size - offset_ : 0;
}

LeafServer* Tailer::ChooseLeaf(bool* used_restarting_fallback) {
  *used_restarting_fallback = false;
  if (leaves_.empty()) return nullptr;
  if (leaves_.size() == 1) {
    LeafServer* only = leaves_[0];
    *used_restarting_fallback = !only->IsAlive() && only->CanAcceptAdds();
    return only->CanAcceptAdds() ? only : nullptr;
  }

  for (int round = 0; round < config_.max_choice_rounds; ++round) {
    ++stats_.choice_rounds;
    TailerMetrics::Get().choice_rounds->Add(1);
    size_t a = random_.Uniform(leaves_.size());
    size_t b = random_.Uniform(leaves_.size() - 1);
    if (b >= a) ++b;  // distinct pair
    LeafServer* la = leaves_[a];
    LeafServer* lb = leaves_[b];
    bool a_alive = la->IsAlive();
    bool b_alive = lb->IsAlive();
    if (a_alive && b_alive) {
      // Both alive: more free memory wins (§2).
      return la->FreeMemoryBytes() >= lb->FreeMemoryBytes() ? la : lb;
    }
    if (a_alive) return la;
    if (b_alive) return lb;
  }

  // "(after enough tries) sends the data to a restarting server": any leaf
  // whose state still accepts adds (disk recovery does; memory recovery
  // and copy-to-shm do not, §4.3).
  for (LeafServer* leaf : leaves_) {
    if (leaf->CanAcceptAdds()) {
      *used_restarting_fallback = !leaf->IsAlive();
      return leaf;
    }
  }
  return nullptr;
}

StatusOr<uint64_t> Tailer::Pump(bool flush) {
  TailerMetrics& metrics = TailerMetrics::Get();
  uint64_t delivered = 0;
  for (;;) {
    uint64_t pending = backlog();
    if (pending == 0) break;
    if (pending < config_.batch_rows && !flush) break;

    std::vector<Row> batch;
    size_t n = log_->Read(config_.category, offset_, config_.batch_rows,
                          &batch);
    if (n == 0) break;

    bool fallback = false;
    LeafServer* target = ChooseLeaf(&fallback);
    if (target == nullptr) {
      ++stats_.batches_failed;
      metrics.batches_failed->Add(1);
      break;  // nothing can accept; retry on a later pump
    }
    Status s = target->AddRows(config_.category, batch);
    if (!s.ok()) {
      if (s.IsUnavailable()) {
        // Lost a race with a state change; retry later.
        ++stats_.batches_failed;
        metrics.batches_failed->Add(1);
        break;
      }
      return s;
    }
    offset_ += n;
    delivered += n;
    stats_.rows_delivered += n;
    ++stats_.batches_delivered;
    metrics.rows_delivered->Add(n);
    metrics.batches_delivered->Add(1);
    if (fallback) {
      ++stats_.batches_to_restarting;
      metrics.batches_to_restarting->Add(1);
    }
  }
  return delivered;
}

}  // namespace scuba
