#include "ingest/category_log.h"

#include "obs/metrics.h"
#include "obs/stats_exporter.h"
#include "util/logging.h"

namespace scuba {

bool CategoryLog::IsReservedCategory(const std::string& category) {
  return obs::IsSystemTable(category);
}

void CategoryLog::Append(const std::string& category, Row row) {
  if (IsReservedCategory(category)) {
    DropReserved(category, 1);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  logs_[category].push_back(std::move(row));
}

void CategoryLog::AppendBatch(const std::string& category,
                              std::vector<Row> rows) {
  if (IsReservedCategory(category)) {
    DropReserved(category, rows.size());
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Row>& log = logs_[category];
  log.reserve(log.size() + rows.size());
  for (Row& row : rows) log.push_back(std::move(row));
}

void CategoryLog::DropReserved(const std::string& category, size_t rows) {
  obs::IncrCounter("scuba.ingest.reserved_category_drops", rows);
  SCUBA_WARN << "dropping " << rows << " rows for reserved category '"
             << category << "' (the __scuba namespace is self-stats only)";
}

size_t CategoryLog::Read(const std::string& category, uint64_t offset,
                         size_t max_rows, std::vector<Row>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = logs_.find(category);
  if (it == logs_.end() || offset >= it->second.size()) return 0;
  size_t available = it->second.size() - static_cast<size_t>(offset);
  size_t n = std::min(available, max_rows);
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(it->second[static_cast<size_t>(offset) + i]);
  }
  return n;
}

uint64_t CategoryLog::Size(const std::string& category) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = logs_.find(category);
  return it == logs_.end() ? 0 : it->second.size();
}

std::vector<std::string> CategoryLog::Categories() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(logs_.size());
  for (const auto& [name, log] : logs_) names.push_back(name);
  return names;
}

}  // namespace scuba
