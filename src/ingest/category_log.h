#ifndef SCUBA_INGEST_CATEGORY_LOG_H_
#define SCUBA_INGEST_CATEGORY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/row.h"

namespace scuba {

/// In-process stand-in for Scribe (Fig 1): an append-only log of rows per
/// category. Producers (Facebook products in the paper; workload
/// generators here) append; tailers consume from an offset they track
/// themselves. Rows are retained forever — retention is the database's
/// job, not the transport's.
class CategoryLog {
 public:
  CategoryLog() = default;
  CategoryLog(const CategoryLog&) = delete;
  CategoryLog& operator=(const CategoryLog&) = delete;

  /// True for categories under the reserved `__scuba` system-table
  /// namespace. Appends to these are dropped (with a warning and the
  /// scuba.ingest.reserved_category_drops counter): self-stats rows are
  /// born inside the leaf, never transported through Scribe, so anything
  /// arriving here under that name is a misconfigured producer.
  static bool IsReservedCategory(const std::string& category);

  void Append(const std::string& category, Row row);
  void AppendBatch(const std::string& category, std::vector<Row> rows);

  /// Copies up to `max_rows` rows starting at `offset` into `out`.
  /// Returns the number copied (0 when caught up).
  size_t Read(const std::string& category, uint64_t offset, size_t max_rows,
              std::vector<Row>* out) const;

  /// Total rows ever appended to `category`.
  uint64_t Size(const std::string& category) const;

  std::vector<std::string> Categories() const;

 private:
  static void DropReserved(const std::string& category, size_t rows);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<Row>> logs_;
};

}  // namespace scuba

#endif  // SCUBA_INGEST_CATEGORY_LOG_H_
