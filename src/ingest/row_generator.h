#ifndef SCUBA_INGEST_ROW_GENERATOR_H_
#define SCUBA_INGEST_ROW_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/row.h"
#include "util/random.h"

namespace scuba {

/// Shape of the synthetic service-log workload. Scuba's motivating data
/// is Facebook service logs: low-cardinality string dimensions (service,
/// endpoint, host), status codes, latencies — the kind of columns whose
/// dictionary + bit-pack + lz4 chains give the paper's ~30x compression.
struct RowGeneratorConfig {
  uint64_t seed = 42;
  size_t num_services = 40;
  size_t num_endpoints = 200;
  size_t num_hosts = 400;
  double error_fraction = 0.02;
  /// First row's unix timestamp.
  int64_t start_time = 1400000000;  // 2014-05-13, the paper's era
  /// Rows arriving per second of event time; rows flow "in roughly
  /// chronological order" (§2.1) with bounded jitter.
  int64_t rows_per_second = 2000;
  int64_t time_jitter_seconds = 2;
};

/// Deterministic generator of service-log rows.
class RowGenerator {
 public:
  explicit RowGenerator(RowGeneratorConfig config = RowGeneratorConfig());

  /// Next row; event time advances ~1/rows_per_second per call.
  Row Next();

  std::vector<Row> NextBatch(size_t n);

  /// Unix timestamp the next row will be near.
  int64_t current_time() const {
    return config_.start_time +
           static_cast<int64_t>(rows_generated_) / config_.rows_per_second;
  }
  uint64_t rows_generated() const { return rows_generated_; }
  const RowGeneratorConfig& config() const { return config_; }

 private:
  RowGeneratorConfig config_;
  Random random_;
  uint64_t rows_generated_ = 0;
  std::vector<std::string> services_;
  std::vector<std::string> endpoints_;
  std::vector<std::string> hosts_;
};

}  // namespace scuba

#endif  // SCUBA_INGEST_ROW_GENERATOR_H_
