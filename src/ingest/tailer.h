#ifndef SCUBA_INGEST_TAILER_H_
#define SCUBA_INGEST_TAILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/category_log.h"
#include "server/leaf_server.h"
#include "util/random.h"
#include "util/status.h"

namespace scuba {

/// Tailer configuration (§2): "Every N rows or t seconds, the tailer
/// chooses a new Scuba leaf server and sends it a batch of rows."
struct TailerConfig {
  /// Category in the log == table name in the database.
  std::string category;
  /// N: rows per batch.
  size_t batch_rows = 1000;
  /// "It picks two servers randomly and asks them both for their current
  /// state and how much free memory they have... If neither server is
  /// alive, the tailer will try two more servers until it finds one that
  /// is alive or (after enough tries) sends the data to a restarting
  /// server." Number of two-server draws before giving up on alive-only.
  int max_choice_rounds = 4;
  uint64_t seed = 1;
};

/// Delivery counters.
struct TailerStats {
  uint64_t rows_delivered = 0;
  uint64_t batches_delivered = 0;
  uint64_t batches_to_restarting = 0;  // fell back past alive servers
  uint64_t batches_failed = 0;         // no server accepted; rows retried
  uint64_t choice_rounds = 0;
};

/// Pulls one category's rows out of the CategoryLog and pushes them into
/// leaf servers using power-of-two-choices placement by free memory.
/// Single-threaded pump model: the owner (cluster driver, example, test)
/// calls Pump() periodically.
class Tailer {
 public:
  Tailer(TailerConfig config, CategoryLog* log,
         std::vector<LeafServer*> leaves);

  Tailer(const Tailer&) = delete;
  Tailer& operator=(const Tailer&) = delete;

  /// Delivers as many full batches as the log currently holds; with
  /// `flush` also delivers a final short batch. Rows whose delivery fails
  /// stay in the log (the offset does not advance) and are retried on the
  /// next pump. Returns rows delivered this call.
  StatusOr<uint64_t> Pump(bool flush = false);

  /// Picks the target leaf for one batch (exposed for tests): two random
  /// distinct leaves; the alive one with more free memory wins; after
  /// max_choice_rounds draws with no alive leaf, falls back to any leaf
  /// that will accept adds (a disk-recovering, i.e. restarting, server).
  LeafServer* ChooseLeaf(bool* used_restarting_fallback);

  const TailerStats& stats() const { return stats_; }
  uint64_t log_offset() const { return offset_; }
  uint64_t backlog() const;

  /// Replaces the leaf set (rollovers replace LeafServer objects).
  void SetLeaves(std::vector<LeafServer*> leaves) {
    leaves_ = std::move(leaves);
  }

 private:
  TailerConfig config_;
  CategoryLog* log_;
  std::vector<LeafServer*> leaves_;
  Random random_;
  uint64_t offset_ = 0;
  TailerStats stats_;
};

}  // namespace scuba

#endif  // SCUBA_INGEST_TAILER_H_
