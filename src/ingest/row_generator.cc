#include "ingest/row_generator.h"

#include <cmath>

namespace scuba {
namespace {

std::vector<std::string> MakeNames(const std::string& prefix, size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(prefix + std::to_string(i));
  }
  return names;
}

}  // namespace

RowGenerator::RowGenerator(RowGeneratorConfig config)
    : config_(config),
      random_(config.seed),
      services_(MakeNames("svc_", config.num_services)),
      endpoints_(MakeNames("/api/v2/endpoint_", config.num_endpoints)),
      hosts_(MakeNames("host-", config.num_hosts)) {}

Row RowGenerator::Next() {
  int64_t base_time = current_time();
  int64_t jitter = random_.UniformRange(-config_.time_jitter_seconds,
                                        config_.time_jitter_seconds);
  ++rows_generated_;

  bool is_error = random_.Bernoulli(config_.error_fraction);
  int64_t status = is_error ? (random_.Bernoulli(0.5) ? 500 : 503) : 200;

  // Latency: log-normal-ish, errors slower. Production metrics pipelines
  // record at fixed precision (here 0.1 ms), which is what makes the
  // byte-shuffle + lz4 chain effective on real logs.
  double u = random_.NextDouble();
  double latency_ms = std::exp(u * 3.0) * (is_error ? 25.0 : 3.0);
  latency_ms = std::floor(latency_ms * 10.0) / 10.0;

  Row row;
  row.SetTime(base_time + jitter);
  row.Set("service", services_[random_.Skewed(services_.size())]);
  row.Set("endpoint", endpoints_[random_.Skewed(endpoints_.size())]);
  row.Set("host", hosts_[random_.Uniform(hosts_.size())]);
  row.Set("status", status);
  row.Set("latency_ms", latency_ms);
  // Response sizes cluster around buffer-granular values.
  row.Set("bytes_out",
          static_cast<int64_t>(200 + random_.Skewed(1024) * 64));
  if (is_error) {
    row.Set("error_msg", std::string("upstream timeout after retry"));
  }
  return row;
}

std::vector<Row> RowGenerator::NextBatch(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) rows.push_back(Next());
  return rows;
}

}  // namespace scuba
