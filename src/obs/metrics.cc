#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace scuba {
namespace obs {

size_t ThreadShardIndex() {
  // Hash the thread id once; the counter spreads threads created in a loop
  // (worker pools) across shards even when ids are clustered.
  static std::atomic<size_t> next{0};
  thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return index;
}

size_t Histogram::BucketIndex(uint64_t v) {
  return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

void Histogram::Record(uint64_t v) {
  Shard& s = shards_[ThreadShardIndex()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !s.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Snapshot::PercentileUpperBound(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper bound of bucket i, clamped to the observed max.
      uint64_t upper = i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
      return upper > max ? max : upper;
    }
  }
  return max;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Continuous rank in [0, count]: the quantile observation's position in
  // the sorted sample. Walk the cumulative bucket counts to the bucket
  // holding it, then interpolate by its position among that bucket's
  // observations across the bucket's value range.
  double target = p * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    uint64_t before = seen;
    seen += buckets[i];
    if (static_cast<double>(seen) < target) continue;
    double value;
    if (i == 0) {
      value = 0.0;  // bucket 0 holds only the value 0
    } else {
      double lower = static_cast<double>(uint64_t{1} << (i - 1));
      double width = lower;  // bucket i spans [2^(i-1), 2^i)
      double frac = (target - static_cast<double>(before)) /
                    static_cast<double>(buckets[i]);
      value = lower + frac * width;
    }
    // The true quantile can never leave the observed value range.
    value = std::max(value, static_cast<double>(min));
    value = std::min(value, static_cast<double>(max));
    return value;
  }
  return static_cast<double>(max);
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = other.min < min ? other.min : min;
    max = other.max > max ? other.max : max;
  }
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    Snapshot part;
    part.count = s.count.load(std::memory_order_relaxed);
    if (part.count == 0) continue;
    part.sum = s.sum.load(std::memory_order_relaxed);
    part.min = s.min.load(std::memory_order_relaxed);
    part.max = s.max.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      part.buckets[i] = s.buckets[i].load(std::memory_order_relaxed);
    }
    out.Merge(part);
  }
  return out;
}

void Histogram::ResetForTest() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: subsystems (thread pools, static caches) may record during
  // process teardown.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

namespace {

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    AppendEscaped(os, name);
    os << "\": " << counter->Value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << '"';
    AppendEscaped(os, name);
    os << "\": " << gauge->Value();
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) os << ", ";
    first = false;
    Histogram::Snapshot snap = histogram->TakeSnapshot();
    os << '"';
    AppendEscaped(os, name);
    os << "\": {\"count\": " << snap.count << ", \"sum\": " << snap.sum
       << ", \"min\": " << snap.min << ", \"max\": " << snap.max
       << ", \"mean\": " << snap.Mean()
       << ", \"p50\": " << snap.Percentile(0.50)
       << ", \"p95\": " << snap.Percentile(0.95)
       << ", \"p99\": " << snap.Percentile(0.99)
       << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!first_bucket) os << ", ";
      first_bucket = false;
      os << '[' << Histogram::BucketLowerBound(i) << ", " << snap.buckets[i]
         << ']';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::TakeRegistrySnapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->TakeSnapshot());
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
}

void IncrCounter(std::string_view name, uint64_t n) {
  MetricsRegistry::Global().GetCounter(name)->Add(n);
}

void SetGauge(std::string_view name, int64_t v) {
  MetricsRegistry::Global().GetGauge(name)->Set(v);
}

void RecordHistogram(std::string_view name, uint64_t v) {
  MetricsRegistry::Global().GetHistogram(name)->Record(v);
}

}  // namespace obs
}  // namespace scuba
