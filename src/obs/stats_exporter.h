#ifndef SCUBA_OBS_STATS_EXPORTER_H_
#define SCUBA_OBS_STATS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "columnar/row.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace scuba {
namespace obs {

/// Table names starting with this prefix are reserved for self-hosted
/// system tables ("Scuba monitors Scuba"): external ingestion into them is
/// rejected, they are never backed up to disk (shm handoff + regeneration
/// are their durability), and writes to them do not count in the leaf's
/// ingestion metrics.
inline constexpr std::string_view kSystemTablePrefix = "__scuba";

/// The per-leaf self-stats table StatsExporter appends to.
inline constexpr const char* kStatsTableName = "__scuba_stats";

/// The self-hosted slow-query log: one row per slow (or 1-in-N sampled)
/// query, written through the same system-table sink as __scuba_stats and
/// therefore equally compressed, queryable, and restart-surviving.
inline constexpr const char* kQueriesTableName = "__scuba_queries";

/// True for names under the reserved system-table prefix.
bool IsSystemTable(std::string_view table);

/// Knobs for one leaf's stats exporter.
struct StatsExporterOptions {
  /// Target system table.
  std::string table_name = kStatsTableName;
  /// Target table for ExportQueryRow (the slow-query log).
  std::string query_table_name = kQueriesTableName;
  /// Delta-snapshot period for the background thread.
  int64_t period_millis = 1000;
  /// Restart-heartbeat generation of this process; stamped on every row so
  /// history spanning process generations stays attributable.
  uint64_t generation = 0;
  /// Stamped on every row (the table is per-leaf, but reports merge).
  uint32_t leaf_id = 0;
  /// Registry to snapshot; nullptr = MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Row timestamp source (unix seconds); nullptr = system clock. Tests
  /// inject a simulated clock here.
  std::function<int64_t()> now_unix_seconds;
};

/// Periodically collapses the MetricsRegistry into rows of a self-hosted
/// `__scuba_stats` table, through the normal ingestion path (the sink is
/// LeafServer's system-table insert): counters as per-cycle deltas + rates,
/// gauges as levels, histograms as delta count/sum plus interpolated
/// p50/p95/p99. The rows land in the columnar store like any other data —
/// compressed, queryable through the leaf/aggregator fan-out, and carried
/// across restarts by the shared-memory handoff, which is what makes
/// historical restart behaviour queryable across process generations.
///
/// Self-amplification guard: exporting is itself ingestion, so a naive
/// exporter feeds its own metrics back into the table it writes. Two
/// breaks in the loop keep it bounded: (1) system-table inserts are
/// excluded from the leaf ingestion metrics at the sink (tagged by the
/// reserved name), and (2) the exporter's own scuba.obs.stats_exporter.*
/// metrics are excluded from export. Counters/histograms that do not move
/// produce no row, so an idle process converges to a small fixed row set
/// per cycle.
///
/// Threading: Start spawns one background thread; ExportOnce may also be
/// called directly (initial export after recovery, final flush before
/// shutdown, tests) and is serialized with the thread by an internal
/// mutex. The sink is invoked WITHOUT that mutex's caller holding any
/// exporter state; it must be safe to call from the exporter thread.
class StatsExporter {
 public:
  using Sink = std::function<Status(const std::string& table,
                                    const std::vector<Row>& rows)>;

  StatsExporter(StatsExporterOptions options, Sink sink);
  ~StatsExporter();  // Stop()s if still running (no final flush)

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  /// Spawns the background export thread. No-op if already running.
  void Start();

  /// Stops and joins the background thread, then runs one final
  /// ExportOnce so the deltas accumulated since the last tick are not
  /// lost. Call before the sink's target stops accepting rows (the leaf
  /// does this before PREPARE). No-op on a second call except the flush.
  void Stop();

  /// One delta cycle: snapshot the registry, diff against the previous
  /// snapshot, append the resulting rows through the sink. Rows carry the
  /// cycle timestamp, generation, and leaf id.
  Status ExportOnce();

  /// Appends one restart-event row (kind "restart"): the phase reached,
  /// where the data came from, and how long it took. Written once after
  /// recovery and once when shutdown begins, so the table holds a restart
  /// history row per process generation transition.
  Status ExportRestartEvent(std::string_view phase, std::string_view detail,
                            int64_t duration_micros);

  /// Appends one slow-query-log row to `__scuba_queries`, stamping the
  /// cycle timestamp, generation, and leaf id onto the caller's columns
  /// (fingerprint, latency, profile counters — the aggregator builds
  /// those). The exporter's own query-log accounting lives under
  /// scuba.obs.stats_exporter.* and is therefore excluded from export —
  /// the same self-amplification break __scuba_stats relies on.
  Status ExportQueryRow(Row row);

  /// Slow-query rows exported so far (sink successes).
  uint64_t query_rows() const {
    return query_rows_.load(std::memory_order_relaxed);
  }

  /// Completed export cycles (ExportOnce calls that reached the sink).
  uint64_t cycles() const { return cycles_.load(std::memory_order_relaxed); }

 private:
  void ThreadMain();
  int64_t NowUnixSeconds() const;
  MetricsRegistry& registry() const;
  /// True for metrics excluded from export (the exporter's own).
  static bool ExcludedFromExport(const std::string& name);

  StatsExporterOptions options_;
  Sink sink_;

  std::mutex export_mutex_;  // serializes ExportOnce bodies
  MetricsRegistry::RegistrySnapshot prev_;
  int64_t prev_stamp_millis_ = 0;

  std::mutex thread_mutex_;  // guards thread_/stopping_
  std::condition_variable cv_;
  std::thread thread_;
  bool stopping_ = false;

  std::atomic<uint64_t> cycles_{0};
  std::atomic<uint64_t> query_rows_{0};
};

}  // namespace obs
}  // namespace scuba

#endif  // SCUBA_OBS_STATS_EXPORTER_H_
