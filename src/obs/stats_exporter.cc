#include "obs/stats_exporter.h"

#include <chrono>
#include <ctime>
#include <utility>

namespace scuba {
namespace obs {
namespace {

int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Exporter's own bookkeeping (excluded from export — see the guard note
/// in the class comment).
struct ExporterMetrics {
  Counter* cycles;
  Counter* rows;
  Counter* sink_failures;
  Counter* query_rows;

  static ExporterMetrics& Get() {
    auto& reg = MetricsRegistry::Global();
    static ExporterMetrics m{
        reg.GetCounter("scuba.obs.stats_exporter.cycles"),
        reg.GetCounter("scuba.obs.stats_exporter.rows_exported"),
        reg.GetCounter("scuba.obs.stats_exporter.sink_failures"),
        reg.GetCounter("scuba.obs.stats_exporter.query_rows")};
    return m;
  }
};

}  // namespace

bool IsSystemTable(std::string_view table) {
  return table.substr(0, kSystemTablePrefix.size()) == kSystemTablePrefix;
}

StatsExporter::StatsExporter(StatsExporterOptions options, Sink sink)
    : options_(std::move(options)), sink_(std::move(sink)) {}

StatsExporter::~StatsExporter() {
  // Join without the final flush: during destruction the sink's target may
  // already be gone. Orderly shutdown calls Stop() explicitly first.
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

MetricsRegistry& StatsExporter::registry() const {
  return options_.registry != nullptr ? *options_.registry
                                      : MetricsRegistry::Global();
}

int64_t StatsExporter::NowUnixSeconds() const {
  if (options_.now_unix_seconds) return options_.now_unix_seconds();
  return static_cast<int64_t>(std::time(nullptr));
}

bool StatsExporter::ExcludedFromExport(const std::string& name) {
  return name.rfind("scuba.obs.stats_exporter.", 0) == 0;
}

void StatsExporter::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { ThreadMain(); });
}

void StatsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final flush: whatever moved since the last tick still makes it into
  // the table before the caller seals it for shutdown.
  (void)ExportOnce();
}

void StatsExporter::ThreadMain() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stopping_) {
    // Tick-then-export: the first export happens one period in, so a
    // freshly started leaf's immediate post-recovery ExportOnce (done by
    // the caller) is not duplicated.
    if (cv_.wait_for(lock, std::chrono::milliseconds(options_.period_millis),
                     [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    (void)ExportOnce();
    lock.lock();
  }
}

Status StatsExporter::ExportOnce() {
  std::lock_guard<std::mutex> lock(export_mutex_);
  ExporterMetrics& em = ExporterMetrics::Get();

  MetricsRegistry::RegistrySnapshot snap = registry().TakeRegistrySnapshot();
  int64_t now_millis = SteadyMillis();
  double period_secs =
      prev_stamp_millis_ == 0
          ? 0.0
          : static_cast<double>(now_millis - prev_stamp_millis_) / 1000.0;
  int64_t now = NowUnixSeconds();
  int64_t generation = static_cast<int64_t>(options_.generation);
  int64_t leaf = static_cast<int64_t>(options_.leaf_id);

  std::vector<Row> rows;
  for (const auto& [name, value] : snap.counters) {
    if (ExcludedFromExport(name)) continue;
    auto it = prev_.counters.find(name);
    uint64_t before = it == prev_.counters.end() ? 0 : it->second;
    if (value == before) continue;  // no movement, no row
    uint64_t delta = value - before;
    Row row;
    row.SetTime(now)
        .Set("metric", name)
        .Set("kind", std::string("counter"))
        .Set("generation", generation)
        .Set("leaf", leaf)
        .Set("value", static_cast<int64_t>(delta));
    if (period_secs > 0) {
      row.Set("rate", static_cast<double>(delta) / period_secs);
    }
    rows.push_back(std::move(row));
  }
  for (const auto& [name, value] : snap.gauges) {
    if (ExcludedFromExport(name)) continue;
    auto it = prev_.gauges.find(name);
    // Levels: a row on every change, plus one on first sight.
    if (it != prev_.gauges.end() && it->second == value) continue;
    Row row;
    row.SetTime(now)
        .Set("metric", name)
        .Set("kind", std::string("gauge"))
        .Set("generation", generation)
        .Set("leaf", leaf)
        .Set("value", static_cast<int64_t>(value));
    rows.push_back(std::move(row));
  }
  for (const auto& [name, hsnap] : snap.histograms) {
    if (ExcludedFromExport(name)) continue;
    auto it = prev_.histograms.find(name);
    uint64_t count_before =
        it == prev_.histograms.end() ? 0 : it->second.count;
    uint64_t sum_before = it == prev_.histograms.end() ? 0 : it->second.sum;
    if (hsnap.count == count_before) continue;
    Row row;
    // Deltas for volume; percentiles from the cumulative distribution
    // (log2-bucket interpolation — see Histogram::Snapshot::Percentile).
    row.SetTime(now)
        .Set("metric", name)
        .Set("kind", std::string("histogram"))
        .Set("generation", generation)
        .Set("leaf", leaf)
        .Set("count", static_cast<int64_t>(hsnap.count - count_before))
        .Set("sum", static_cast<int64_t>(hsnap.sum - sum_before))
        .Set("p50", hsnap.Percentile(0.50))
        .Set("p95", hsnap.Percentile(0.95))
        .Set("p99", hsnap.Percentile(0.99));
    rows.push_back(std::move(row));
  }

  prev_ = std::move(snap);
  prev_stamp_millis_ = now_millis;

  if (!rows.empty()) {
    Status s = sink_(options_.table_name, rows);
    if (!s.ok()) {
      em.sink_failures->Add(1);
      return s;
    }
    em.rows->Add(rows.size());
  }
  em.cycles->Add(1);
  cycles_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status StatsExporter::ExportRestartEvent(std::string_view phase,
                                         std::string_view detail,
                                         int64_t duration_micros) {
  Row row;
  row.SetTime(NowUnixSeconds())
      .Set("metric", std::string("scuba.server.restart"))
      .Set("kind", std::string("restart"))
      .Set("generation", static_cast<int64_t>(options_.generation))
      .Set("leaf", static_cast<int64_t>(options_.leaf_id))
      .Set("phase", std::string(phase))
      .Set("detail", std::string(detail))
      .Set("value", duration_micros);
  Status s = sink_(options_.table_name, {row});
  if (!s.ok()) {
    ExporterMetrics::Get().sink_failures->Add(1);
    return s;
  }
  ExporterMetrics::Get().rows->Add(1);
  return s;
}

Status StatsExporter::ExportQueryRow(Row row) {
  row.SetTime(NowUnixSeconds())
      .Set("generation", static_cast<int64_t>(options_.generation))
      .Set("leaf", static_cast<int64_t>(options_.leaf_id));
  Status s = sink_(options_.query_table_name, {row});
  if (!s.ok()) {
    ExporterMetrics::Get().sink_failures->Add(1);
    return s;
  }
  query_rows_.fetch_add(1, std::memory_order_relaxed);
  ExporterMetrics::Get().query_rows->Add(1);
  return s;
}

}  // namespace obs
}  // namespace scuba
