#include "obs/trace.h"

#include <chrono>
#include <sstream>

namespace scuba {
namespace obs {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

PhaseTracer::PhaseTracer() : epoch_steady_micros_(SteadyNowMicros()) {}

int64_t PhaseTracer::ElapsedMicros() const {
  return SteadyNowMicros() - epoch_steady_micros_;
}

int PhaseTracer::BeginSpan(std::string name) {
  return BeginSpanUnder(-1, std::move(name));
}

int PhaseTracer::BeginSpanUnder(int parent, std::string name) {
  int64_t now = ElapsedMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  std::thread::id tid = std::this_thread::get_id();
  auto [tn_it, inserted] = thread_numbers_.try_emplace(
      tid, static_cast<uint32_t>(thread_numbers_.size()));

  TraceSpan span;
  span.name = std::move(name);
  span.start_micros = now;
  span.end_micros = now;
  span.thread = tn_it->second;
  std::vector<int>& stack = open_[tid];
  if (!stack.empty()) {
    // Per-thread nesting wins: this thread is already inside a span.
    span.parent = stack.back();
    span.depth = spans_[stack.back()].depth + 1;
  } else if (parent >= 0 && parent < static_cast<int>(spans_.size())) {
    // Worker thread with no open span: attach to the explicit parent.
    span.parent = parent;
    span.depth = spans_[parent].depth + 1;
  }
  int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack.push_back(id);
  return id;
}

void PhaseTracer::EndSpan(int id, uint64_t bytes) {
  int64_t now = ElapsedMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].end_micros = now;
  spans_[id].bytes += bytes;
  // Pop this span (and anything the thread forgot to close above it) off
  // the calling thread's open stack, if present there.
  auto it = open_.find(std::this_thread::get_id());
  if (it != open_.end()) {
    std::vector<int>& stack = it->second;
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i] == id) {
        stack.resize(i);
        break;
      }
    }
  }
}

void PhaseTracer::AddCompletedSpan(std::string name, int64_t start_micros,
                                   int64_t end_micros, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::thread::id tid = std::this_thread::get_id();
  auto [tn_it, inserted] = thread_numbers_.try_emplace(
      tid, static_cast<uint32_t>(thread_numbers_.size()));
  TraceSpan span;
  span.name = std::move(name);
  span.start_micros = start_micros;
  span.end_micros = end_micros;
  span.bytes = bytes;
  span.thread = tn_it->second;
  auto it = open_.find(tid);
  if (it != open_.end() && !it->second.empty()) {
    span.parent = it->second.back();
    span.depth = spans_[it->second.back()].depth + 1;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> PhaseTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

int64_t PhaseTracer::RootCoverageMicros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const TraceSpan& span : spans_) {
    if (span.depth == 0) total += span.DurationMicros();
  }
  return total;
}

std::string PhaseTracer::ToJson() const {
  // Capture elapsed before the allocation-heavy span copy: the dump's
  // wall time must describe the traced operation, not the serialization.
  const int64_t elapsed = ElapsedMicros();
  std::vector<TraceSpan> spans = Snapshot();
  std::ostringstream os;
  os << "{\"elapsed_micros\": " << elapsed << ", \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"";
    AppendEscaped(os, s.name);
    os << "\", \"start_micros\": " << s.start_micros
       << ", \"end_micros\": " << s.end_micros
       << ", \"duration_micros\": " << s.DurationMicros()
       << ", \"bytes\": " << s.bytes << ", \"thread\": " << s.thread
       << ", \"parent\": " << s.parent << ", \"depth\": " << s.depth << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace scuba
