#ifndef SCUBA_OBS_METRICS_H_
#define SCUBA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace scuba {
namespace obs {

/// Number of cache-line-padded shards per metric. Writers pick a shard by
/// (cached) thread id, so concurrent Record/Add calls from the restart
/// copy workers never contend on one line; readers merge on demand.
inline constexpr size_t kMetricShards = 16;  // power of two

/// This thread's shard index (stable for the thread's lifetime).
size_t ThreadShardIndex();

/// Monotonically increasing sum, sharded for write scalability. Handles
/// returned by MetricsRegistry are valid for the process lifetime, so hot
/// paths cache the pointer (e.g. in a function-local static) and the
/// record path is a single relaxed fetch_add.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThreadShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void ResetForTest() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-writer-wins instantaneous value (e.g. current state, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram for latencies (micros) and byte sizes: bucket 0
/// holds the value 0 and bucket i >= 1 holds [2^(i-1), 2^i). Record is
/// lock-free (sharded relaxed atomics, min/max via CAS); Snapshot merges
/// the shards on read, so a snapshot taken during concurrent recording is
/// a consistent-enough view (each field is atomically read; cross-field
/// skew is bounded by in-flight records).
class Histogram {
 public:
  /// Enough buckets for the full uint64 range: 0, then 64 pow2 ranges.
  static constexpr size_t kNumBuckets = 65;

  /// 0 -> 0; v >= 1 -> bit_width(v), i.e. 1 + floor(log2 v).
  static size_t BucketIndex(uint64_t v);
  /// Smallest value belonging to bucket `i` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(size_t i);

  void Record(uint64_t v);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  // 0 when count == 0
    uint64_t max = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Bucket-resolution estimate (upper bound of the bucket holding the
    /// p-quantile observation), p in [0, 1].
    uint64_t PercentileUpperBound(double p) const;
    /// Interpolated estimate of the p-quantile, p in [0, 1]: locates the
    /// bucket holding the quantile observation and interpolates linearly
    /// across the bucket's [2^(i-1), 2^i) value range by the quantile's
    /// position among the bucket's observations, clamped to [min, max].
    /// Error bound: the estimate always lies inside the true quantile's
    /// log2 bucket, so it is within a factor of 2 of the exact quantile
    /// (relative error < 100%); for values spread across a bucket it is
    /// typically far tighter than PercentileUpperBound, which can be off
    /// by the full bucket width.
    double Percentile(double p) const;
    /// Pointwise accumulation; used to combine per-shard and per-registry
    /// snapshots.
    void Merge(const Snapshot& other);
  };

  Snapshot TakeSnapshot() const;
  void ResetForTest();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Process-wide named-metric registry. Naming scheme (DESIGN.md §6):
/// `scuba.<module>.<metric>`, e.g. scuba.core.shutdown.bytes_copied,
/// scuba.util.thread_pool.queue_wait_micros.
///
/// Get* is get-or-create under a mutex and returns a handle that stays
/// valid (and keeps its identity) for the process lifetime — metrics are
/// never removed, so callers cache the pointer and record lock-free.
class MetricsRegistry {
 public:
  /// The process-wide instance every subsystem records into.
  static MetricsRegistry& Global();

  /// Constructible for injection (StatsExporterOptions::registry, tests);
  /// production code records into Global().
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Machine-readable snapshot of everything, keys sorted:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count":..,"sum":..,"min":..,"max":..,
  ///                          "mean":..,"p50":..,"p95":..,"p99":..,
  ///                          "buckets": [[lower_bound, count], ...]}, ...}}
  /// Only non-zero histogram buckets are emitted. Percentiles are the
  /// interpolated Percentile() estimates (restart-report schema v2).
  std::string ToJson() const;

  /// Point-in-time copy of every metric, keys sorted — the raw material
  /// for delta-based exporters (StatsExporter subtracts two of these).
  /// Metrics are never removed, so successive snapshots only grow.
  struct RegistrySnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  RegistrySnapshot TakeRegistrySnapshot() const;

  /// Zeroes every metric IN PLACE (handles stay valid). Benches and tests
  /// use this to scope a measurement; racing recorders just land in the
  /// fresh epoch.
  void ResetForTest();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Convenience recorders for cold paths (each does a registry lookup; hot
/// paths should cache the handle from Get* instead).
void IncrCounter(std::string_view name, uint64_t n = 1);
void SetGauge(std::string_view name, int64_t v);
void RecordHistogram(std::string_view name, uint64_t v);

}  // namespace obs
}  // namespace scuba

#endif  // SCUBA_OBS_METRICS_H_
