#ifndef SCUBA_OBS_TRACE_H_
#define SCUBA_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace scuba {
namespace obs {

/// One timed phase of an operation. Times are microseconds relative to the
/// owning tracer's epoch (monotonic clock), so a dumped timeline reads
/// like the paper's Fig 6/7 phase breakdown.
struct TraceSpan {
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;       // == start while still open
  uint64_t bytes = 0;           // payload attributed to the span (0 = n/a)
  uint32_t thread = 0;          // dense per-tracer thread number
  int32_t parent = -1;          // index into the span list; -1 = root
  int32_t depth = 0;

  int64_t DurationMicros() const { return end_micros - start_micros; }
};

/// Records nested, possibly concurrent spans for ONE operation (a
/// shutdown, a recovery, a query). Begin/End nest per thread: a span
/// started on a thread becomes the parent of later spans started on the
/// same thread until it ends. Mutex-guarded — spans are phase/block
/// granular, not per-row — and safe to call from pool workers.
///
/// All instrumentation sites take a `PhaseTracer*` and treat nullptr as
/// "tracing off", so the hot paths pay nothing when nobody is looking.
class PhaseTracer {
 public:
  PhaseTracer();

  PhaseTracer(const PhaseTracer&) = delete;
  PhaseTracer& operator=(const PhaseTracer&) = delete;

  /// Starts a span; returns its id (index). Thread-safe.
  int BeginSpan(std::string name);
  /// Starts a span with an explicit fallback parent: if the calling thread
  /// already has an open span, normal per-thread nesting wins; otherwise
  /// the span nests under `parent` (-1 = root). This is how spans started
  /// on pool worker threads attach to the operation-level span their work
  /// belongs to (e.g. a per-leaf query execute under the aggregator's
  /// fan-out root) instead of becoming disconnected roots.
  int BeginSpanUnder(int parent, std::string name);
  /// Ends span `id`, attributing `bytes` to it. Thread-safe.
  void EndSpan(int id, uint64_t bytes = 0);

  /// Inserts an already-measured span (e.g. a read/translate split
  /// reconstructed from phase counters). Times are relative to the epoch.
  void AddCompletedSpan(std::string name, int64_t start_micros,
                        int64_t end_micros, uint64_t bytes = 0);

  /// Microseconds since this tracer was constructed (monotonic).
  int64_t ElapsedMicros() const;

  /// Copies out the spans recorded so far (open spans have end == start).
  std::vector<TraceSpan> Snapshot() const;

  /// Sum of root-span (depth 0) durations — the timeline's coverage of
  /// the operation's wall time when roots are recorded back to back.
  int64_t RootCoverageMicros() const;

  /// {"elapsed_micros": N, "spans": [{"name":..,"start_micros":..,
  ///   "end_micros":..,"duration_micros":..,"bytes":..,"thread":..,
  ///   "parent":..,"depth":..}, ...]}
  std::string ToJson() const;

  /// RAII span; tolerates a null tracer (no-op).
  class Span {
   public:
    Span(PhaseTracer* tracer, std::string name)
        : tracer_(tracer),
          id_(tracer == nullptr ? -1 : tracer->BeginSpan(std::move(name))) {}
    /// Explicit-parent variant (BeginSpanUnder semantics).
    Span(PhaseTracer* tracer, int parent, std::string name)
        : tracer_(tracer),
          id_(tracer == nullptr
                  ? -1
                  : tracer->BeginSpanUnder(parent, std::move(name))) {}
    ~Span() { End(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// The underlying span id (-1 with a null tracer) — pass as the
    /// explicit parent of spans started on other threads.
    int id() const { return id_; }

    void AddBytes(uint64_t bytes) { bytes_ += bytes; }
    /// Ends the span early (idempotent).
    void End() {
      if (tracer_ != nullptr && id_ >= 0) tracer_->EndSpan(id_, bytes_);
      id_ = -1;
    }

   private:
    PhaseTracer* tracer_;
    int id_;
    uint64_t bytes_ = 0;
  };

 private:
  const int64_t epoch_steady_micros_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  // Per-thread stack of open span ids, for nesting.
  std::map<std::thread::id, std::vector<int>> open_;
  std::map<std::thread::id, uint32_t> thread_numbers_;
};

}  // namespace obs
}  // namespace scuba

#endif  // SCUBA_OBS_TRACE_H_
