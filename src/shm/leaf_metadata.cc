#include "shm/leaf_metadata.h"

#include <cstring>

#include "util/byte_buffer.h"
#include "util/crc32c.h"

namespace scuba {
namespace {

constexpr uint32_t kMetaMagic = 0x4D464C53;  // "SLFM"
// Fixed-capacity segment: header + up to ~250 table segment names.
constexpr size_t kMetaCapacity = 64 * 1024;

// Layout within the segment:
//   u32 magic, u16 layout version, u8 valid, u8 reserved,
//   u32 payload crc (masked, over the name list bytes), u32 payload len,
//   u64 num tables, then per table u16 len + bytes.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffValid = 6;
constexpr size_t kOffCrc = 8;
constexpr size_t kOffPayloadLen = 12;
constexpr size_t kOffNumTables = 16;
constexpr size_t kOffNames = 24;

}  // namespace

std::string LeafMetadata::SegmentNameForLeaf(
    const std::string& namespace_prefix, uint32_t leaf_id) {
  return "/" + namespace_prefix + "_leaf_" + std::to_string(leaf_id) +
         "_meta";
}

StatusOr<LeafMetadata> LeafMetadata::Create(
    const std::string& namespace_prefix, uint32_t leaf_id) {
  SCUBA_ASSIGN_OR_RETURN(
      ShmSegment segment,
      ShmSegment::Create(SegmentNameForLeaf(namespace_prefix, leaf_id),
                         kMetaCapacity));
  LeafMetadata meta(std::move(segment));
  meta.valid_ = false;
  meta.layout_version_ = kShmLayoutVersion;
  SCUBA_RETURN_IF_ERROR(meta.Flush());
  return meta;
}

StatusOr<LeafMetadata> LeafMetadata::Open(const std::string& namespace_prefix,
                                          uint32_t leaf_id) {
  SCUBA_ASSIGN_OR_RETURN(
      ShmSegment segment,
      ShmSegment::Open(SegmentNameForLeaf(namespace_prefix, leaf_id)));
  LeafMetadata meta(std::move(segment));
  SCUBA_RETURN_IF_ERROR(meta.Parse());
  return meta;
}

bool LeafMetadata::Exists(const std::string& namespace_prefix,
                          uint32_t leaf_id) {
  return ShmSegment::Exists(SegmentNameForLeaf(namespace_prefix, leaf_id));
}

Status LeafMetadata::Flush() {
  ByteBuffer payload;
  payload.AppendU64(table_segment_names_.size());
  for (const std::string& name : table_segment_names_) {
    if (name.size() > UINT16_MAX) {
      return Status::InvalidArgument("segment name too long");
    }
    payload.AppendU16(static_cast<uint16_t>(name.size()));
    payload.Append(name.data(), name.size());
  }
  if (kOffNumTables + payload.size() > segment_.size()) {
    return Status::ResourceExhausted("leaf metadata segment full");
  }

  uint8_t* p = segment_.data();
  ByteBuffer::EncodeU32(p + kOffMagic, kMetaMagic);
  p[kOffVersion] = static_cast<uint8_t>(layout_version_);
  p[kOffVersion + 1] = static_cast<uint8_t>(layout_version_ >> 8);
  p[kOffValid] = valid_ ? 1 : 0;
  p[kOffValid + 1] = 0;
  // payload includes the num-tables u64 (written at kOffNumTables).
  ByteBuffer::EncodeU32(p + kOffPayloadLen,
                        static_cast<uint32_t>(payload.size()));
  std::memcpy(p + kOffNumTables, payload.data(), payload.size());
  uint32_t crc = crc32c::Value(p + kOffNumTables, payload.size());
  ByteBuffer::EncodeU32(p + kOffCrc, crc32c::Mask(crc));
  return Status::OK();
}

Status LeafMetadata::Parse() {
  if (segment_.size() < kOffNames) {
    return Status::Corruption("leaf metadata: segment too small");
  }
  const uint8_t* p = segment_.data();
  if (ByteBuffer::DecodeU32(p + kOffMagic) != kMetaMagic) {
    return Status::Corruption("leaf metadata: bad magic");
  }
  layout_version_ = static_cast<uint16_t>(
      p[kOffVersion] | (static_cast<uint16_t>(p[kOffVersion + 1]) << 8));
  valid_ = p[kOffValid] != 0;

  uint32_t payload_len = ByteBuffer::DecodeU32(p + kOffPayloadLen);
  if (kOffNumTables + payload_len > segment_.size() || payload_len < 8) {
    return Status::Corruption("leaf metadata: bad payload length");
  }
  uint32_t stored_crc = crc32c::Unmask(ByteBuffer::DecodeU32(p + kOffCrc));
  if (stored_crc != crc32c::Value(p + kOffNumTables, payload_len)) {
    return Status::Corruption("leaf metadata: checksum mismatch");
  }

  uint64_t num_tables = ByteBuffer::DecodeU64(p + kOffNumTables);
  Slice names(p + kOffNames, payload_len - 8);
  table_segment_names_.clear();
  for (uint64_t i = 0; i < num_tables; ++i) {
    if (names.size() < 2) {
      return Status::Corruption("leaf metadata: truncated name list");
    }
    uint16_t len = static_cast<uint16_t>(
        names[0] | (static_cast<uint16_t>(names[1]) << 8));
    names.RemovePrefix(2);
    if (names.size() < len) {
      return Status::Corruption("leaf metadata: truncated name");
    }
    table_segment_names_.emplace_back(
        reinterpret_cast<const char*>(names.data()), len);
    names.RemovePrefix(len);
  }
  return Status::OK();
}

Status LeafMetadata::AddTableSegment(const std::string& segment_name) {
  table_segment_names_.push_back(segment_name);
  Status s = Flush();
  if (!s.ok()) table_segment_names_.pop_back();
  return s;
}

Status LeafMetadata::SetValid(bool valid) {
  valid_ = valid;
  segment_.data()[kOffValid] = valid ? 1 : 0;
  return Status::OK();
}

Status LeafMetadata::Destroy() { return segment_.Unlink(); }

Status LeafMetadata::DestroyAllSegments() {
  Status first_error = Status::OK();
  for (const std::string& name : table_segment_names_) {
    Status s = ShmSegment::Remove(name);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  Status s = Destroy();
  if (!s.ok() && first_error.ok()) first_error = s;
  return first_error;
}

}  // namespace scuba
