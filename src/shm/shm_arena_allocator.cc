#include "shm/shm_arena_allocator.h"

#include <algorithm>

#include "util/bit_util.h"

namespace scuba {

ShmArenaAllocator::ShmArenaAllocator(ShmSegment segment)
    : segment_(std::move(segment)) {
  free_ranges_.emplace(0, segment_.size());
}

StatusOr<ShmArenaAllocator> ShmArenaAllocator::Create(
    const std::string& segment_name, size_t capacity) {
  SCUBA_ASSIGN_OR_RETURN(ShmSegment segment,
                         ShmSegment::Create(segment_name, capacity));
  return ShmArenaAllocator(std::move(segment));
}

StatusOr<uint64_t> ShmArenaAllocator::Allocate(size_t size) {
  if (size == 0) return Status::InvalidArgument("arena: zero-size alloc");
  uint64_t need = bit_util::RoundUp(size, 8);

  // First fit: the simplest policy, and the one that best exhibits the
  // fragmentation behaviour the ablation measures.
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second >= need) {
      uint64_t offset = it->first;
      uint64_t remaining = it->second - need;
      free_ranges_.erase(it);
      if (remaining > 0) free_ranges_.emplace(offset + need, remaining);
      allocated_bytes_ += need;
      return offset;
    }
  }
  return Status::ResourceExhausted(
      "arena: no free range of " + std::to_string(need) + " bytes (" +
      std::to_string(free_bytes()) + " free total, fragmented)");
}

Status ShmArenaAllocator::Free(uint64_t offset, size_t size) {
  uint64_t len = bit_util::RoundUp(size, 8);
  if (offset + len > capacity()) {
    return Status::InvalidArgument("arena: free out of range");
  }

  auto [it, inserted] = free_ranges_.emplace(offset, len);
  if (!inserted) return Status::InvalidArgument("arena: double free");

  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_ranges_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_ranges_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_ranges_.erase(it);
    }
  }
  allocated_bytes_ -= len;
  return Status::OK();
}

uint64_t ShmArenaAllocator::largest_free_range() const {
  uint64_t largest = 0;
  for (const auto& [offset, len] : free_ranges_) {
    largest = std::max(largest, len);
  }
  return largest;
}

double ShmArenaAllocator::FragmentationRatio() const {
  uint64_t total_free = free_bytes();
  if (total_free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_range()) /
                   static_cast<double>(total_free);
}

}  // namespace scuba
