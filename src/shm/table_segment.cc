#include "shm/table_segment.h"

#include <cstring>

#include "util/bit_util.h"
#include "util/byte_buffer.h"

namespace scuba {
namespace {

constexpr uint32_t kTableMagic = 0x4C425453;  // "STBL"
constexpr uint16_t kTableVersion = 1;

constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
// 2 reserved bytes at offset 6.
constexpr size_t kOffNumBlocks = 8;
constexpr size_t kOffUsedBytes = 16;
constexpr size_t kOffNameLen = 24;
constexpr size_t kFixedHeaderSize = 32;

size_t AlignUp8(size_t v) { return static_cast<size_t>(bit_util::RoundUp(v, 8)); }

}  // namespace

StatusOr<TableSegmentWriter> TableSegmentWriter::Create(
    const std::string& segment_name, const std::string& table_name,
    size_t size_estimate) {
  size_t header_bytes = AlignUp8(kFixedHeaderSize + table_name.size());
  size_t initial = std::max(size_estimate, header_bytes + 64);
  SCUBA_ASSIGN_OR_RETURN(ShmSegment segment,
                         ShmSegment::Create(segment_name, initial));

  uint8_t* p = segment.data();
  std::memset(p, 0, kFixedHeaderSize);
  ByteBuffer::EncodeU32(p + kOffMagic, kTableMagic);
  p[kOffVersion] = static_cast<uint8_t>(kTableVersion);
  p[kOffVersion + 1] = static_cast<uint8_t>(kTableVersion >> 8);
  ByteBuffer::EncodeU64(p + kOffNameLen, table_name.size());
  std::memcpy(p + kFixedHeaderSize, table_name.data(), table_name.size());

  return TableSegmentWriter(std::move(segment), header_bytes);
}

Status TableSegmentWriter::EnsureRoom(size_t bytes) {
  if (cursor_ + bytes <= segment_.size()) return Status::OK();
  // Grow geometrically to amortize remaps, but at least to what is needed
  // (Fig 6 "grow the table segment in size if needed").
  size_t target = std::max(cursor_ + bytes, segment_.size() +
                                                segment_.size() / 4);
  ++grow_count_;
  return segment_.Grow(target);
}

Status TableSegmentWriter::AppendRowBlockMeta(const RowBlock& block) {
  ByteBuffer meta;
  block.SerializeMeta(&meta);
  SCUBA_RETURN_IF_ERROR(EnsureRoom(4 + meta.size() + 8));
  ByteBuffer::EncodeU32(segment_.data() + cursor_,
                        static_cast<uint32_t>(meta.size()));
  cursor_ += 4;
  std::memcpy(segment_.data() + cursor_, meta.data(), meta.size());
  cursor_ = AlignUp8(cursor_ + meta.size());
  return Status::OK();
}

Status TableSegmentWriter::AppendColumnBuffer(Slice rbc_buffer) {
  SCUBA_ASSIGN_OR_RETURN(size_t offset,
                         ReserveColumnSlot(rbc_buffer.size()));
  CopyIntoSlot(offset, rbc_buffer);
  return Status::OK();
}

StatusOr<size_t> TableSegmentWriter::ReserveColumnSlot(size_t bytes) {
  SCUBA_RETURN_IF_ERROR(EnsureRoom(bytes + 8));
  size_t offset = cursor_;
  cursor_ = AlignUp8(cursor_ + bytes);
  return offset;
}

void TableSegmentWriter::CopyIntoSlot(size_t offset, Slice rbc_buffer) {
  std::memcpy(segment_.data() + offset, rbc_buffer.data(), rbc_buffer.size());
}

Status TableSegmentWriter::Finish(uint64_t num_row_blocks) {
  ByteBuffer::EncodeU64(segment_.data() + kOffNumBlocks, num_row_blocks);
  ByteBuffer::EncodeU64(segment_.data() + kOffUsedBytes, cursor_);
  // Return any over-estimated pages to the OS.
  return segment_.Truncate(cursor_);
}

StatusOr<TableSegmentReader> TableSegmentReader::Open(
    const std::string& segment_name) {
  SCUBA_ASSIGN_OR_RETURN(ShmSegment segment, ShmSegment::Open(segment_name));
  TableSegmentReader reader(std::move(segment));
  SCUBA_RETURN_IF_ERROR(reader.Parse());
  return reader;
}

Status TableSegmentReader::Parse() {
  if (segment_.size() < kFixedHeaderSize) {
    return Status::Corruption("table segment: too small");
  }
  const uint8_t* p = segment_.data();
  if (ByteBuffer::DecodeU32(p + kOffMagic) != kTableMagic) {
    return Status::Corruption("table segment: bad magic");
  }
  uint16_t version = static_cast<uint16_t>(
      p[kOffVersion] | (static_cast<uint16_t>(p[kOffVersion + 1]) << 8));
  if (version != kTableVersion) {
    return Status::Corruption("table segment: unsupported version");
  }
  uint64_t num_blocks = ByteBuffer::DecodeU64(p + kOffNumBlocks);
  used_bytes_ = ByteBuffer::DecodeU64(p + kOffUsedBytes);
  uint64_t name_len = ByteBuffer::DecodeU64(p + kOffNameLen);
  if (used_bytes_ > segment_.size() ||
      kFixedHeaderSize + name_len > used_bytes_) {
    return Status::Corruption("table segment: inconsistent sizes");
  }
  table_name_.assign(reinterpret_cast<const char*>(p + kFixedHeaderSize),
                     name_len);

  size_t cursor = AlignUp8(kFixedHeaderSize + static_cast<size_t>(name_len));
  blocks_.clear();
  blocks_.reserve(num_blocks);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    BlockEntry entry;
    entry.block_offset = cursor;
    if (cursor + 4 > used_bytes_) {
      return Status::Corruption("table segment: truncated block meta length");
    }
    uint32_t meta_len = ByteBuffer::DecodeU32(p + cursor);
    cursor += 4;
    if (cursor + meta_len > used_bytes_) {
      return Status::Corruption("table segment: truncated block meta");
    }
    Slice meta_slice(p + cursor, meta_len);
    SCUBA_ASSIGN_OR_RETURN(entry.meta, RowBlock::ParseMeta(&meta_slice));
    cursor = AlignUp8(cursor + meta_len);

    entry.columns.reserve(entry.meta.column_sizes.size());
    for (uint64_t col_size : entry.meta.column_sizes) {
      if (cursor + col_size > used_bytes_) {
        return Status::Corruption("table segment: truncated column payload");
      }
      entry.columns.emplace_back(cursor, static_cast<size_t>(col_size));
      cursor = AlignUp8(cursor + static_cast<size_t>(col_size));
    }
    blocks_.push_back(std::move(entry));
  }
  return Status::OK();
}

Slice TableSegmentReader::ColumnSlice(size_t b, size_t c) const {
  const auto& [offset, size] = blocks_[b].columns[c];
  return Slice(segment_.data() + offset, size);
}

}  // namespace scuba
