#ifndef SCUBA_SHM_LEAF_METADATA_H_
#define SCUBA_SHM_LEAF_METADATA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "shm/shm_segment.h"
#include "util/status.h"

namespace scuba {

/// Current shared-memory layout version. Bumped whenever the segment
/// formats change; a mismatch at restore time forces disk recovery
/// ("the layout version number indicates whether the shared memory layout
/// has changed; note that the heap memory layout can change independently
/// of the shared memory layout", §4.2).
inline constexpr uint16_t kShmLayoutVersion = 1;

/// Per-leaf metadata stored at a fixed, hard-coded shared memory location
/// (Fig 4): a valid bit, the layout version, and the names of the table
/// segments the leaf allocated. "Each leaf has a unique hard coded location
/// in shared memory for its metadata" (§4.2) — the location is the segment
/// name derived from the leaf id.
class LeafMetadata {
 public:
  /// The fixed segment name for leaf `leaf_id` under `namespace_prefix`
  /// (prefix isolates clusters/tests; e.g. "scuba" ->
  /// "/scuba_leaf_3_meta").
  static std::string SegmentNameForLeaf(const std::string& namespace_prefix,
                                        uint32_t leaf_id);

  /// Creates the metadata segment with valid=false and no tables
  /// (Fig 6 step 1). Fails if it already exists.
  static StatusOr<LeafMetadata> Create(const std::string& namespace_prefix,
                                       uint32_t leaf_id);

  /// Opens and parses an existing metadata segment. Corruption/NotFound
  /// sends the caller to disk recovery.
  static StatusOr<LeafMetadata> Open(const std::string& namespace_prefix,
                                     uint32_t leaf_id);

  /// True if a metadata segment exists for this leaf.
  static bool Exists(const std::string& namespace_prefix, uint32_t leaf_id);

  LeafMetadata(LeafMetadata&&) noexcept = default;
  LeafMetadata& operator=(LeafMetadata&&) noexcept = default;

  bool valid() const { return valid_; }
  uint16_t layout_version() const { return layout_version_; }
  const std::vector<std::string>& table_segment_names() const {
    return table_segment_names_;
  }

  /// Registers a table segment name (Fig 6 "add table segment to the leaf
  /// metadata") and persists the list.
  Status AddTableSegment(const std::string& segment_name);

  /// Sets the valid bit, persisting immediately. Setting true is the final
  /// shutdown step (Fig 6); setting false is the first restore step
  /// (Fig 7), so an interrupted restore falls back to disk next time.
  Status SetValid(bool valid);

  /// Unlinks the metadata segment itself (final restore step).
  Status Destroy();

  /// Unlinks the metadata segment AND every table segment it references.
  /// Used when the valid bit is false (Fig 7 "delete shared memory
  /// segments") or when memory recovery is abandoned.
  Status DestroyAllSegments();

 private:
  explicit LeafMetadata(ShmSegment segment) : segment_(std::move(segment)) {}

  Status Flush();
  Status Parse();

  ShmSegment segment_;
  bool valid_ = false;
  uint16_t layout_version_ = kShmLayoutVersion;
  std::vector<std::string> table_segment_names_;
};

}  // namespace scuba

#endif  // SCUBA_SHM_LEAF_METADATA_H_
