#ifndef SCUBA_SHM_RESTART_HEARTBEAT_H_
#define SCUBA_SHM_RESTART_HEARTBEAT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "shm/shm_segment.h"
#include "util/status.h"

namespace scuba {

/// The restart pipeline phase a leaf process is currently in, as published
/// through the heartbeat block. Values are stable wire constants (they live
/// in shared memory across binaries); append only.
enum class RestartPhase : uint32_t {
  kIdle = 0,          // no restart in progress
  kPrepare = 1,       // Fig 5c PREPARE: drain, seal buffers, flush backups
  kCopyOut = 2,       // Fig 6 heap -> shm copy loop
  kSetValid = 3,      // Fig 6 final step
  kExited = 4,        // old process done; successor not attached yet
  kOpenMetadata = 5,  // Fig 7 open + validate metadata
  kCopyIn = 6,        // Fig 7 shm -> heap copy loop
  kDiskRecover = 7,   // Fig 5b disk path (read + translate)
  kAlive = 8,         // recovery finished, serving
  kFailed = 9,        // restart op failed (successor falls back / operator)
};

std::string_view RestartPhaseName(RestartPhase phase);

/// A tiny fixed-name shared-memory block through which a leaf publishes
/// restart progress to observers OUTSIDE the process (the rollover
/// orchestrator, dashboards): generation, phase, bytes copied / total, a
/// monotonic stamp, and a checksum. This is what makes the §4.3 restart
/// window externally trackable — today's alternative is a blunt 180 s
/// watchdog over an opaque process.
///
/// The block deliberately lives OUTSIDE the `<prefix>_leaf_<id>_` segment
/// namespace that ScrubSharedMemory() removes: progress reporting must
/// survive the scrub that precedes a shutdown and the cleanup that follows
/// a failed restore.
///
/// Concurrency: every slot is a lock-free `std::atomic<uint64_t>` mapped
/// in shared memory. `AddBytesCopied` / `Beat` are called from every copy
/// worker (relaxed fetch_add / store — the same discipline as the sharded
/// metrics); the slow fields (generation, phase, bytes_total) are written
/// by the single orchestrating thread and covered by a CRC32C so a reader
/// can tell a live block from the garbage a crashed predecessor (or a
/// different layout) left behind. A reader racing a slow-field update can
/// observe a transient checksum mismatch; readers poll, so they simply
/// skip that sample.
class RestartHeartbeat {
 public:
  /// Bumped when the block layout changes; a mismatch reads as stale.
  static constexpr uint32_t kLayoutVersion = 1;

  /// Fixed block name for `leaf_id` under `namespace_prefix`
  /// (e.g. "scuba" -> "/scuba_hb_3").
  static std::string SegmentNameForLeaf(const std::string& namespace_prefix,
                                        uint32_t leaf_id);

  /// Writer entry point: opens the leaf's block, creating it if missing or
  /// reinitializing it if its magic/version/checksum do not validate
  /// (stale garbage from a crashed predecessor). On a valid existing block
  /// the generation increments — each Attach is one process generation.
  static StatusOr<RestartHeartbeat> Attach(const std::string& namespace_prefix,
                                           uint32_t leaf_id);

  /// Removes the block (cluster cleanup, tests). OK if absent.
  static Status Remove(const std::string& namespace_prefix, uint32_t leaf_id);

  RestartHeartbeat(RestartHeartbeat&&) noexcept = default;
  RestartHeartbeat& operator=(RestartHeartbeat&&) noexcept = default;

  uint64_t generation() const { return generation_; }

  /// Publishes the phase (slow field; re-checksums) and refreshes the
  /// stamp. Called a handful of times per restart.
  void SetPhase(RestartPhase phase);

  /// Publishes the total bytes this restart op will move (slow field).
  void SetBytesTotal(uint64_t total);

  /// Adds to the free-running progress counter and refreshes the stamp.
  /// Called from every copy worker after each column/block lands; a
  /// handful of relaxed atomic ops, negligible next to the memcpy.
  void AddBytesCopied(uint64_t bytes);

  /// Refreshes the stamp only — "alive, still in this phase". For long
  /// phases that move no bytes (seal, fsync, metadata).
  void Beat();

  /// One validated sample of a heartbeat block.
  struct Reading {
    uint64_t generation = 0;
    RestartPhase phase = RestartPhase::kIdle;
    uint64_t bytes_copied = 0;
    uint64_t bytes_total = 0;
    /// Writer's CLOCK_MONOTONIC-domain stamp (comparable across processes
    /// on one machine) of the last SetPhase/AddBytesCopied/Beat.
    int64_t stamp_micros = 0;

    double Progress() const {
      return bytes_total == 0
                 ? 0.0
                 : static_cast<double>(bytes_copied) /
                       static_cast<double>(bytes_total);
    }
    /// True if this sample shows advance over `prev` (generation, phase,
    /// bytes, or stamp moved) — the unit of stall detection.
    bool AdvancedOver(const Reading& prev) const {
      return generation != prev.generation || phase != prev.phase ||
             bytes_copied != prev.bytes_copied ||
             stamp_micros != prev.stamp_micros;
    }
  };

  /// Reader entry point: opens an existing block WITHOUT reinitializing it
  /// or bumping the generation. The handle keeps the mapping, so a polling
  /// monitor maps once and samples with Read().
  ///  - NotFound — no block (leaf never published).
  static StatusOr<RestartHeartbeat> OpenForRead(
      const std::string& namespace_prefix, uint32_t leaf_id);

  /// One validated sample of this handle's block.
  ///  - Unavailable — magic/version/checksum do not validate (stale
  ///                  predecessor garbage or a racing slow-field write);
  ///                  poll again or ignore.
  StatusOr<Reading> Read() const;

  /// Convenience: OpenForRead + Read in one shot (tests, one-off probes).
  static StatusOr<Reading> ReadOnce(const std::string& namespace_prefix,
                                    uint32_t leaf_id);

  /// The monotonic clock the stamp lives in, exposed so readers can
  /// compute a sample's age in the writer's time domain.
  static int64_t MonotonicMicros();

 private:
  // Slot layout (all uint64): [0] magic|version, [1] generation,
  // [2] phase, [3] bytes_copied, [4] bytes_total, [5] stamp_micros,
  // [6] checksum over slots 0,1,2,4, [7] reserved.
  static constexpr size_t kNumSlots = 8;
  static constexpr size_t kBlockBytes = kNumSlots * sizeof(uint64_t);

  explicit RestartHeartbeat(ShmSegment segment)
      : segment_(std::move(segment)) {}

  std::atomic<uint64_t>* Slot(size_t i);
  const std::atomic<uint64_t>* Slot(size_t i) const;
  /// Recomputes and stores the slow-field checksum.
  void Seal();

  ShmSegment segment_;
  uint64_t generation_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_SHM_RESTART_HEARTBEAT_H_
