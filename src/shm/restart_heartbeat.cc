#include "shm/restart_heartbeat.h"

#include <chrono>
#include <cstring>
#include <optional>
#include <utility>

#include "util/crc32c.h"

namespace scuba {
namespace {

constexpr uint64_t kMagic = 0x5343554248423164ull;  // "SCUBHB1d"

// CRC32C over the slow fields (magic|version word, generation, phase,
// bytes_total), masked so a zeroed page never validates.
uint64_t SlowFieldChecksum(uint64_t word0, uint64_t generation, uint64_t phase,
                           uint64_t bytes_total) {
  uint64_t words[4] = {word0, generation, phase, bytes_total};
  return crc32c::Mask(
      crc32c::Value(reinterpret_cast<const uint8_t*>(words), sizeof(words)));
}

}  // namespace

std::string_view RestartPhaseName(RestartPhase phase) {
  switch (phase) {
    case RestartPhase::kIdle:
      return "idle";
    case RestartPhase::kPrepare:
      return "prepare";
    case RestartPhase::kCopyOut:
      return "copy_out";
    case RestartPhase::kSetValid:
      return "set_valid";
    case RestartPhase::kExited:
      return "exited";
    case RestartPhase::kOpenMetadata:
      return "open_metadata";
    case RestartPhase::kCopyIn:
      return "copy_in";
    case RestartPhase::kDiskRecover:
      return "disk_recover";
    case RestartPhase::kAlive:
      return "alive";
    case RestartPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string RestartHeartbeat::SegmentNameForLeaf(
    const std::string& namespace_prefix, uint32_t leaf_id) {
  return "/" + namespace_prefix + "_hb_" + std::to_string(leaf_id);
}

int64_t RestartHeartbeat::MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<uint64_t>* RestartHeartbeat::Slot(size_t i) {
  return reinterpret_cast<std::atomic<uint64_t>*>(segment_.data()) + i;
}

const std::atomic<uint64_t>* RestartHeartbeat::Slot(size_t i) const {
  return reinterpret_cast<const std::atomic<uint64_t>*>(segment_.data()) + i;
}

void RestartHeartbeat::Seal() {
  uint64_t checksum = SlowFieldChecksum(
      Slot(0)->load(std::memory_order_relaxed),
      Slot(1)->load(std::memory_order_relaxed),
      Slot(2)->load(std::memory_order_relaxed),
      Slot(4)->load(std::memory_order_relaxed));
  // Release-publish the checksum so a reader that validates it also sees
  // the slow-field values it covers.
  Slot(6)->store(checksum, std::memory_order_release);
}

StatusOr<RestartHeartbeat> RestartHeartbeat::Attach(
    const std::string& namespace_prefix, uint32_t leaf_id) {
  static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
  std::string name = SegmentNameForLeaf(namespace_prefix, leaf_id);

  // Reinitialize an existing, correctly-sized block IN PLACE: an observer
  // that mapped it while watching the predecessor's shutdown keeps seeing
  // the successor's restore through the same mapping. Only a missing or
  // wrongly-sized block is (re)created.
  uint64_t prev_generation = 0;
  std::optional<ShmSegment> segment;
  if (ShmSegment::Exists(name)) {
    SCUBA_ASSIGN_OR_RETURN(ShmSegment opened, ShmSegment::Open(name));
    if (opened.size() >= kBlockBytes) {
      segment.emplace(std::move(opened));
    } else {
      SCUBA_RETURN_IF_ERROR(ShmSegment::Remove(name));
    }
  }
  if (!segment.has_value()) {
    SCUBA_ASSIGN_OR_RETURN(ShmSegment created,
                           ShmSegment::Create(name, kBlockBytes));
    segment.emplace(std::move(created));
  }

  RestartHeartbeat hb(std::move(segment).value());
  {
    uint64_t word0 = hb.Slot(0)->load(std::memory_order_relaxed);
    uint64_t generation = hb.Slot(1)->load(std::memory_order_relaxed);
    uint64_t phase = hb.Slot(2)->load(std::memory_order_relaxed);
    uint64_t total = hb.Slot(4)->load(std::memory_order_relaxed);
    uint64_t checksum = hb.Slot(6)->load(std::memory_order_acquire);
    if (word0 == (kMagic ^ kLayoutVersion) &&
        checksum == SlowFieldChecksum(word0, generation, phase, total)) {
      // Valid predecessor block: continue its generation sequence. An
      // invalid one (stale garbage, torn write at death, other layout)
      // restarts from generation 1.
      prev_generation = generation;
    }
  }
  hb.generation_ = prev_generation + 1;
  hb.Slot(0)->store(kMagic ^ kLayoutVersion, std::memory_order_relaxed);
  hb.Slot(1)->store(hb.generation_, std::memory_order_relaxed);
  hb.Slot(2)->store(static_cast<uint64_t>(RestartPhase::kIdle),
                    std::memory_order_relaxed);
  hb.Slot(3)->store(0, std::memory_order_relaxed);
  hb.Slot(4)->store(0, std::memory_order_relaxed);
  hb.Slot(5)->store(static_cast<uint64_t>(MonotonicMicros()),
                    std::memory_order_relaxed);
  hb.Slot(7)->store(0, std::memory_order_relaxed);
  hb.Seal();
  return hb;
}

Status RestartHeartbeat::Remove(const std::string& namespace_prefix,
                                uint32_t leaf_id) {
  return ShmSegment::Remove(SegmentNameForLeaf(namespace_prefix, leaf_id));
}

void RestartHeartbeat::SetPhase(RestartPhase phase) {
  Slot(2)->store(static_cast<uint64_t>(phase), std::memory_order_relaxed);
  Seal();
  Beat();
}

void RestartHeartbeat::SetBytesTotal(uint64_t total) {
  Slot(4)->store(total, std::memory_order_relaxed);
  Seal();
  Beat();
}

void RestartHeartbeat::AddBytesCopied(uint64_t bytes) {
  Slot(3)->fetch_add(bytes, std::memory_order_relaxed);
  Beat();
}

void RestartHeartbeat::Beat() {
  Slot(5)->store(static_cast<uint64_t>(MonotonicMicros()),
                 std::memory_order_relaxed);
}

StatusOr<RestartHeartbeat> RestartHeartbeat::OpenForRead(
    const std::string& namespace_prefix, uint32_t leaf_id) {
  std::string name = SegmentNameForLeaf(namespace_prefix, leaf_id);
  if (!ShmSegment::Exists(name)) {
    return Status::NotFound("no restart heartbeat block: " + name);
  }
  SCUBA_ASSIGN_OR_RETURN(ShmSegment segment, ShmSegment::Open(name));
  if (segment.size() < kBlockBytes) {
    return Status::Unavailable("restart heartbeat block truncated: " + name);
  }
  return RestartHeartbeat(std::move(segment));
}

StatusOr<RestartHeartbeat::Reading> RestartHeartbeat::Read() const {
  uint64_t checksum = Slot(6)->load(std::memory_order_acquire);
  uint64_t word0 = Slot(0)->load(std::memory_order_relaxed);
  uint64_t generation = Slot(1)->load(std::memory_order_relaxed);
  uint64_t phase = Slot(2)->load(std::memory_order_relaxed);
  uint64_t total = Slot(4)->load(std::memory_order_relaxed);
  if (word0 != (kMagic ^ kLayoutVersion) ||
      checksum != SlowFieldChecksum(word0, generation, phase, total)) {
    return Status::Unavailable("restart heartbeat block not valid: " +
                               segment_.name());
  }
  Reading reading;
  reading.generation = generation;
  reading.phase = static_cast<RestartPhase>(phase);
  reading.bytes_copied = Slot(3)->load(std::memory_order_relaxed);
  reading.bytes_total = total;
  reading.stamp_micros =
      static_cast<int64_t>(Slot(5)->load(std::memory_order_relaxed));
  return reading;
}

StatusOr<RestartHeartbeat::Reading> RestartHeartbeat::ReadOnce(
    const std::string& namespace_prefix, uint32_t leaf_id) {
  SCUBA_ASSIGN_OR_RETURN(RestartHeartbeat hb,
                         OpenForRead(namespace_prefix, leaf_id));
  return hb.Read();
}

}  // namespace scuba
