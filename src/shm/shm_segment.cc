#include "shm/shm_segment.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace scuba {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& name) {
  return what + " '" + name + "': " + std::strerror(errno);
}

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Segment resize metrics (scuba.shm.segment.*): grows are the price of an
// underestimated table size (Fig 6 ablation), truncates the §4.4
// drain-as-you-go release. Both are ftruncate + mremap, so the micros
// histograms directly expose kernel remap cost.
struct SegmentMetrics {
  obs::Counter* grows;
  obs::Counter* grow_bytes;
  obs::Histogram* grow_micros;
  obs::Counter* truncates;
  obs::Counter* truncate_bytes;
  obs::Histogram* truncate_micros;

  static SegmentMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static SegmentMetrics m{
        reg.GetCounter("scuba.shm.segment.grows"),
        reg.GetCounter("scuba.shm.segment.grow_bytes"),
        reg.GetHistogram("scuba.shm.segment.grow_micros"),
        reg.GetCounter("scuba.shm.segment.truncates"),
        reg.GetCounter("scuba.shm.segment.truncate_bytes"),
        reg.GetHistogram("scuba.shm.segment.truncate_micros")};
    return m;
  }
};

}  // namespace

StatusOr<ShmSegment> ShmSegment::Create(const std::string& name, size_t size) {
  if (name.empty() || name[0] != '/' ||
      name.find('/', 1) != std::string::npos) {
    return Status::InvalidArgument("shm name must be '/name': " + name);
  }
  if (size == 0) {
    return Status::InvalidArgument("shm segment size must be > 0");
  }
  int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("shm segment exists: " + name);
    }
    return Status::IOError(ErrnoMessage("shm_open", name));
  }
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status s = Status::IOError(ErrnoMessage("ftruncate", name));
    close(fd);
    shm_unlink(name.c_str());
    return s;
  }
  void* addr = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) {
    Status s = Status::IOError(ErrnoMessage("mmap", name));
    close(fd);
    shm_unlink(name.c_str());
    return s;
  }
  return ShmSegment(name, fd, addr, size);
}

StatusOr<ShmSegment> ShmSegment::Open(const std::string& name) {
  int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("shm segment not found: " + name);
    }
    return Status::IOError(ErrnoMessage("shm_open", name));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    Status s = Status::IOError(ErrnoMessage("fstat", name));
    close(fd);
    return s;
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    close(fd);
    return Status::Corruption("shm segment has zero size: " + name);
  }
  void* addr = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) {
    Status s = Status::IOError(ErrnoMessage("mmap", name));
    close(fd);
    return s;
  }
  return ShmSegment(name, fd, addr, size);
}

Status ShmSegment::Remove(const std::string& name) {
  if (shm_unlink(name.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("shm_unlink", name));
  }
  return Status::OK();
}

bool ShmSegment::Exists(const std::string& name) {
  int fd = shm_open(name.c_str(), O_RDONLY, 0600);
  if (fd < 0) return false;
  close(fd);
  return true;
}

std::vector<std::string> ShmSegment::List(const std::string& prefix) {
  std::vector<std::string> names;
  // POSIX shm objects live in /dev/shm on Linux.
  DIR* dir = opendir("/dev/shm");
  if (dir == nullptr) return names;
  std::string bare_prefix =
      prefix.empty() || prefix[0] != '/' ? prefix : prefix.substr(1);
  while (struct dirent* entry = readdir(dir)) {
    std::string entry_name(entry->d_name);
    if (entry_name == "." || entry_name == "..") continue;
    if (entry_name.rfind(bare_prefix, 0) == 0) {
      names.push_back("/" + entry_name);
    }
  }
  closedir(dir);
  return names;
}

size_t ShmSegment::RemoveAll(const std::string& prefix) {
  size_t removed = 0;
  for (const std::string& name : List(prefix)) {
    if (shm_unlink(name.c_str()) == 0) ++removed;
  }
  return removed;
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : name_(std::move(other.name_)),
      fd_(other.fd_),
      addr_(other.addr_),
      size_(other.size_) {
  other.fd_ = -1;
  other.addr_ = nullptr;
  other.size_ = 0;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    CloseNoUnlink();
    name_ = std::move(other.name_);
    fd_ = other.fd_;
    addr_ = other.addr_;
    size_ = other.size_;
    other.fd_ = -1;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

ShmSegment::~ShmSegment() { CloseNoUnlink(); }

void ShmSegment::CloseNoUnlink() {
  if (addr_ != nullptr) {
    munmap(addr_, size_);
    addr_ = nullptr;
  }
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

Status ShmSegment::Grow(size_t new_size) {
  if (new_size <= size_) return Status::OK();
  SegmentMetrics& metrics = SegmentMetrics::Get();
  int64_t start = SteadyNowMicros();
  if (ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate (grow)", name_));
  }
  void* fresh = mremap(addr_, size_, new_size, MREMAP_MAYMOVE);
  if (fresh == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("mremap (grow)", name_));
  }
  metrics.grows->Add(1);
  metrics.grow_bytes->Add(new_size - size_);
  metrics.grow_micros->Record(
      static_cast<uint64_t>(SteadyNowMicros() - start));
  addr_ = fresh;
  size_ = new_size;
  return Status::OK();
}

Status ShmSegment::Truncate(size_t new_size) {
  if (new_size >= size_) return Status::OK();
  if (new_size == 0) new_size = 1;  // Keep a valid mapping.
  SegmentMetrics& metrics = SegmentMetrics::Get();
  int64_t start = SteadyNowMicros();
  // Shrink WITHOUT MREMAP_MAYMOVE: a shrinking remap just unmaps the tail
  // pages, so the base address is stable. The parallel restore path
  // depends on this — workers keep memcpy'ing from offsets below the
  // truncation point while the drained tail is returned to the OS.
  void* fresh = mremap(addr_, size_, new_size, 0);
  if (fresh == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("mremap (truncate)", name_));
  }
  addr_ = fresh;
  if (ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate (truncate)", name_));
  }
  metrics.truncates->Add(1);
  metrics.truncate_bytes->Add(size_ - new_size);
  metrics.truncate_micros->Record(
      static_cast<uint64_t>(SteadyNowMicros() - start));
  size_ = new_size;
  return Status::OK();
}

Status ShmSegment::Sync() {
  if (msync(addr_, size_, MS_SYNC) != 0) {
    return Status::IOError(ErrnoMessage("msync", name_));
  }
  return Status::OK();
}

Status ShmSegment::Unlink() {
  std::string name = name_;
  CloseNoUnlink();
  return Remove(name);
}

uint64_t TotalShmBytes(const std::string& prefix) {
  uint64_t total = 0;
  for (const std::string& name : ShmSegment::List(prefix)) {
    std::string path = "/dev/shm" + name;
    struct stat st;
    if (stat(path.c_str(), &st) == 0) {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  return total;
}

}  // namespace scuba
