#ifndef SCUBA_SHM_SHM_ARENA_ALLOCATOR_H_
#define SCUBA_SHM_SHM_ARENA_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "shm/shm_segment.h"
#include "util/status.h"

namespace scuba {

/// Ablation substrate for the paper's REJECTED design (method 1, §3):
/// "allocate all data in shared memory all of the time. This alternative
/// requires writing a custom allocator to subdivide shared memory
/// segments... We worried that an allocator in shared memory would lead to
/// increased fragmentation over time."
///
/// This is a deliberately straightforward first-fit allocator with
/// coalescing over one fixed-size shared memory segment. Unlike jemalloc
/// it cannot lazily back virtual pages, so every byte of arena is a byte
/// of physical shared memory — the fragmentation it accumulates under
/// churn (bench_shm_allocator) is the cost the paper chose to avoid.
///
/// Bookkeeping lives in process memory; a production version would also
/// need crash-consistent metadata in shm plus thread safety — exactly the
/// "significant complexity" the paper cites.
class ShmArenaAllocator {
 public:
  static StatusOr<ShmArenaAllocator> Create(const std::string& segment_name,
                                            size_t capacity);

  ShmArenaAllocator(ShmArenaAllocator&&) noexcept = default;
  ShmArenaAllocator& operator=(ShmArenaAllocator&&) noexcept = default;

  /// Allocates `size` bytes (8-aligned); returns the segment offset.
  /// Fails with ResourceExhausted when no free range fits — which can
  /// happen even when total free space is sufficient (fragmentation).
  StatusOr<uint64_t> Allocate(size_t size);

  /// Frees a previously allocated range. Adjacent free ranges coalesce.
  Status Free(uint64_t offset, size_t size);

  uint8_t* data() { return segment_.data(); }
  size_t capacity() const { return segment_.size(); }
  uint64_t allocated_bytes() const { return allocated_bytes_; }
  uint64_t free_bytes() const { return capacity() - allocated_bytes_; }
  size_t num_free_ranges() const { return free_ranges_.size(); }
  uint64_t largest_free_range() const;

  /// 0 = one contiguous free range; approaching 1 = free space shattered
  /// into unusably small pieces.
  double FragmentationRatio() const;

  Status Unlink() { return segment_.Unlink(); }

 private:
  explicit ShmArenaAllocator(ShmSegment segment);

  // offset -> size of each free range, ordered for coalescing.
  std::map<uint64_t, uint64_t> free_ranges_;
  ShmSegment segment_;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_SHM_SHM_ARENA_ALLOCATOR_H_
