#ifndef SCUBA_SHM_SHM_SEGMENT_H_
#define SCUBA_SHM_SHM_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace scuba {

/// RAII wrapper over one POSIX shared memory object (shm_open + mmap).
///
/// This is the primitive that decouples memory lifetime from process
/// lifetime (§3): a segment created by one process survives its exit and
/// can be opened by the successor. The destructor unmaps but does NOT
/// unlink — persistence across processes is the point; call Remove()
/// explicitly when the data has been consumed (Fig 7).
///
/// Segment names follow POSIX shm rules: a leading '/', no other slashes.
class ShmSegment {
 public:
  /// Creates a new segment of `size` bytes (fails if it already exists).
  static StatusOr<ShmSegment> Create(const std::string& name, size_t size);

  /// Opens an existing segment read-write, mapping its current size.
  static StatusOr<ShmSegment> Open(const std::string& name);

  /// Unlinks a segment by name. OK if it does not exist.
  static Status Remove(const std::string& name);

  /// True if a segment with this name currently exists.
  static bool Exists(const std::string& name);

  /// Lists existing segment names (with leading '/') starting with
  /// `prefix`. Used for crash cleanup and tests.
  static std::vector<std::string> List(const std::string& prefix);

  /// Unlinks every segment whose name starts with `prefix`; returns the
  /// number removed.
  static size_t RemoveAll(const std::string& prefix);

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment();

  const std::string& name() const { return name_; }
  size_t size() const { return size_; }
  uint8_t* data() { return static_cast<uint8_t*>(addr_); }
  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  Slice AsSlice() const { return Slice(data(), size_); }

  /// Grows the segment to `new_size` (ftruncate + remap). Shrinking is not
  /// allowed here; use Truncate. No-op if new_size <= size().
  Status Grow(size_t new_size);

  /// Shrinks the segment to `new_size`, returning the freed pages to the
  /// OS (restore truncates the segment as it drains it, Fig 7). The
  /// mapping shrinks in place — data() stays valid for offsets below
  /// new_size, which the parallel restore path relies on.
  Status Truncate(size_t new_size);

  /// Flushes mapped pages (msync). Shared memory on tmpfs does not need
  /// this for cross-process visibility; exposed for completeness.
  Status Sync();

  /// Unmaps and unlinks this segment.
  Status Unlink();

 private:
  ShmSegment(std::string name, int fd, void* addr, size_t size)
      : name_(std::move(name)), fd_(fd), addr_(addr), size_(size) {}

  void CloseNoUnlink();

  std::string name_;
  int fd_ = -1;
  void* addr_ = nullptr;
  size_t size_ = 0;
};

/// Total bytes currently used by segments matching `prefix` (for footprint
/// accounting in tests and benches).
uint64_t TotalShmBytes(const std::string& prefix);

}  // namespace scuba

#endif  // SCUBA_SHM_SHM_SEGMENT_H_
