#ifndef SCUBA_SHM_TABLE_SEGMENT_H_
#define SCUBA_SHM_TABLE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "columnar/row_block.h"
#include "shm/shm_segment.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {

/// Shared-memory layout of ONE table (Fig 4): "there is one segment per
/// table" (§4.2). Unlike the heap layout, row blocks and row block columns
/// are laid out contiguously — the full set and their sizes are known when
/// the memory is written, so one level of indirection disappears:
///
///   [fixed header | table name]
///   per row block: [meta: header + schema + column sizes][RBC buffers...]
///
/// Each RBC buffer is bit-identical to its heap form (offsets only), so
/// writing it is a single memcpy and reading it back is a single memcpy.
///
/// The writer is streaming: shutdown appends one column at a time, growing
/// the segment when needed (Fig 6), so the process never needs room for
/// two copies of the data (§4.4).
class TableSegmentWriter {
 public:
  /// Creates the segment with an initial size estimate (Fig 6 "estimate
  /// size of table"). The estimate may be wrong in either direction:
  /// too small grows, too large is truncated at Finish.
  static StatusOr<TableSegmentWriter> Create(const std::string& segment_name,
                                             const std::string& table_name,
                                             size_t size_estimate);

  TableSegmentWriter(TableSegmentWriter&&) noexcept = default;
  TableSegmentWriter& operator=(TableSegmentWriter&&) noexcept = default;

  /// Appends the row block's metadata (header + schema + column sizes).
  /// Must be followed by exactly one AppendColumnBuffer per column.
  Status AppendRowBlockMeta(const RowBlock& block);

  /// Appends one RBC buffer — this is the paper's single-memcpy copy of a
  /// row block column into shared memory.
  Status AppendColumnBuffer(Slice rbc_buffer);

  /// Parallel-shutdown variant of AppendColumnBuffer, split in two:
  /// ReserveColumnSlot advances the cursor (growing the segment if needed)
  /// and returns the offset where the buffer belongs; CopyIntoSlot does
  /// the memcpy. All reservations for a segment must happen before its
  /// copies start — reservation may remap the segment, copying never does,
  /// so concurrent CopyIntoSlot calls (distinct slots) are safe.
  StatusOr<size_t> ReserveColumnSlot(size_t bytes);
  void CopyIntoSlot(size_t offset, Slice rbc_buffer);

  /// Patches the row block count and used size, shrinks the segment to its
  /// used size, and closes it (the segment object persists in /dev/shm).
  Status Finish(uint64_t num_row_blocks);

  const std::string& segment_name() const { return segment_.name(); }
  size_t used_bytes() const { return cursor_; }
  /// How many times the initial size estimate proved too small.
  uint64_t grow_count() const { return grow_count_; }

 private:
  TableSegmentWriter(ShmSegment segment, size_t cursor)
      : segment_(std::move(segment)), cursor_(cursor) {}

  Status EnsureRoom(size_t bytes);

  ShmSegment segment_;
  size_t cursor_;
  uint64_t grow_count_ = 0;
};

/// Reader for a table segment written by TableSegmentWriter. Parses all
/// row block metadata on open; column payloads are exposed as slices into
/// the mapping so restore can memcpy them straight to fresh heap buffers.
class TableSegmentReader {
 public:
  struct BlockEntry {
    RowBlock::Meta meta;
    /// Segment offset where this block's bytes begin (its meta record).
    size_t block_offset;
    /// (offset, size) of each column's RBC buffer within the segment.
    std::vector<std::pair<size_t, size_t>> columns;
  };

  static StatusOr<TableSegmentReader> Open(const std::string& segment_name);

  TableSegmentReader(TableSegmentReader&&) noexcept = default;
  TableSegmentReader& operator=(TableSegmentReader&&) noexcept = default;

  const std::string& table_name() const { return table_name_; }
  /// Base of the mapping. Truncation shrinks the mapping in place, so the
  /// base stays valid for offsets below the truncation point — the
  /// parallel restore path captures it once and addresses columns as
  /// base + offset while the tail is being drained.
  const uint8_t* data() const { return segment_.data(); }
  size_t num_row_blocks() const { return blocks_.size(); }
  const BlockEntry& block(size_t i) const { return blocks_[i]; }
  uint64_t used_bytes() const { return used_bytes_; }
  size_t segment_bytes() const { return segment_.size(); }

  /// The raw RBC bytes for column `c` of block `b` (points into the
  /// mapping; invalidated by TruncateTo past its offset).
  Slice ColumnSlice(size_t b, size_t c) const;

  /// Shrinks the backing segment (restore drains blocks from the tail and
  /// truncates as it goes, Fig 7 "truncate the table shared memory segment
  /// if needed").
  Status TruncateTo(size_t bytes) { return segment_.Truncate(bytes); }

  /// Unmaps and unlinks the segment (Fig 7 "delete the table shared
  /// memory segment").
  Status Unlink() { return segment_.Unlink(); }

 private:
  explicit TableSegmentReader(ShmSegment segment)
      : segment_(std::move(segment)) {}

  Status Parse();

  ShmSegment segment_;
  std::string table_name_;
  uint64_t used_bytes_ = 0;
  std::vector<BlockEntry> blocks_;
};

}  // namespace scuba

#endif  // SCUBA_SHM_TABLE_SEGMENT_H_
