#include "columnar/table.h"

#include <algorithm>

namespace scuba {

Status Table::SealInternal(int64_t now) {
  SCUBA_ASSIGN_OR_RETURN(std::unique_ptr<RowBlock> block,
                         write_buffer_.Seal(now));
  row_blocks_.push_back(std::move(block));
  if (seal_observer_) {
    SCUBA_RETURN_IF_ERROR(seal_observer_(*row_blocks_.back()));
  }
  return Status::OK();
}

Status Table::AddRows(const std::vector<Row>& rows, int64_t now) {
  for (const Row& row : rows) {
    SCUBA_RETURN_IF_ERROR(write_buffer_.AddRow(row));
    if (write_buffer_.Full()) {
      SCUBA_RETURN_IF_ERROR(SealInternal(now));
    }
  }
  return Status::OK();
}

Status Table::SealWriteBuffer(int64_t now) {
  if (write_buffer_.empty()) return Status::OK();
  return SealInternal(now);
}

size_t Table::ExpireData(int64_t now) {
  size_t dropped = 0;

  if (limits_.max_age_seconds > 0) {
    int64_t cutoff = now - limits_.max_age_seconds;
    auto it = row_blocks_.begin();
    while (it != row_blocks_.end()) {
      if ((*it) != nullptr && (*it)->header().max_time < cutoff) {
        it = row_blocks_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }

  if (limits_.max_bytes > 0) {
    // Rows arrive roughly chronologically, so the front blocks are oldest.
    while (row_blocks_.size() > 1 && MemoryBytes() > limits_.max_bytes) {
      row_blocks_.erase(row_blocks_.begin());
      ++dropped;
    }
  }
  return dropped;
}

uint64_t Table::RowCount() const {
  uint64_t count = write_buffer_.row_count();
  for (const auto& block : row_blocks_) {
    if (block != nullptr) count += block->header().row_count;
  }
  return count;
}

uint64_t Table::MemoryBytes() const {
  uint64_t bytes = write_buffer_.EstimatedBytes();
  for (const auto& block : row_blocks_) {
    if (block != nullptr) bytes += block->MemoryBytes();
  }
  return bytes;
}

std::vector<size_t> Table::BlocksInTimeRange(int64_t begin, int64_t end) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < row_blocks_.size(); ++i) {
    if (row_blocks_[i] != nullptr &&
        row_blocks_[i]->OverlapsTimeRange(begin, end)) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace scuba
