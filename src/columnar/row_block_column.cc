#include "columnar/row_block_column.h"

#include <cstring>

#include "util/byte_buffer.h"
#include "util/crc32c.h"

namespace scuba {
namespace {

// Header field offsets (see class comment for the layout).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffCompression = 6;
constexpr size_t kOffType = 8;
// 4 reserved bytes at offset 12.
constexpr size_t kOffTotalBytes = 16;
constexpr size_t kOffItemCount = 24;
constexpr size_t kOffDictItemCount = 32;
constexpr size_t kOffDictOffset = 40;
constexpr size_t kOffDataOffset = 48;
// Footer field offsets relative to footer start.
constexpr size_t kFooterOffUncompressed = 0;
constexpr size_t kFooterOffChecksum = 8;
constexpr size_t kFooterOffEndMagic = 12;

uint64_t ReadU64At(const uint8_t* base, size_t off) {
  return ByteBuffer::DecodeU64(base + off);
}
uint32_t ReadU32At(const uint8_t* base, size_t off) {
  return ByteBuffer::DecodeU32(base + off);
}
uint16_t ReadU16At(const uint8_t* base, size_t off) {
  return static_cast<uint16_t>(base[off] |
                               (static_cast<uint16_t>(base[off + 1]) << 8));
}

// The footer offset is not stored as a header field: it is derivable as
// total_bytes - kFooterSize, and keeping a single source of truth avoids
// inconsistent-offset corruption classes. (Fig 3 lists it; we document the
// derivation instead of duplicating state.)
size_t FooterOffset(uint64_t total_bytes) {
  return static_cast<size_t>(total_bytes) - RowBlockColumn::kFooterSize;
}

}  // namespace

RowBlockColumn RowBlockColumn::Assemble(ColumnType type,
                                        column_codec::EncodedColumn encoded,
                                        uint64_t item_count,
                                        uint64_t uncompressed_bytes) {
  const size_t dict_size = encoded.dict.size();
  const size_t data_size = encoded.data.size();
  const size_t dict_offset = kHeaderSize;
  const size_t data_offset = dict_offset + dict_size;
  const size_t footer_offset = data_offset + data_size;
  const size_t total = footer_offset + kFooterSize;

  std::unique_ptr<uint8_t[]> buf(new uint8_t[total]);
  uint8_t* p = buf.get();
  std::memset(p, 0, kHeaderSize);
  ByteBuffer::EncodeU32(p + kOffMagic, kMagic);
  p[kOffVersion] = static_cast<uint8_t>(kVersion);
  p[kOffVersion + 1] = static_cast<uint8_t>(kVersion >> 8);
  p[kOffCompression] = static_cast<uint8_t>(encoded.chain);
  p[kOffCompression + 1] = static_cast<uint8_t>(encoded.chain >> 8);
  ByteBuffer::EncodeU32(p + kOffType, static_cast<uint32_t>(type));
  ByteBuffer::EncodeU64(p + kOffTotalBytes, total);
  ByteBuffer::EncodeU64(p + kOffItemCount, item_count);
  ByteBuffer::EncodeU64(p + kOffDictItemCount, encoded.dict_item_count);
  ByteBuffer::EncodeU64(p + kOffDictOffset, dict_offset);
  ByteBuffer::EncodeU64(p + kOffDataOffset, data_offset);

  if (dict_size > 0) std::memcpy(p + dict_offset, encoded.dict.data(), dict_size);
  if (data_size > 0) std::memcpy(p + data_offset, encoded.data.data(), data_size);

  uint8_t* footer = p + footer_offset;
  ByteBuffer::EncodeU64(footer + kFooterOffUncompressed, uncompressed_bytes);
  uint32_t crc = crc32c::Value(p, footer_offset + 8);
  ByteBuffer::EncodeU32(footer + kFooterOffChecksum, crc32c::Mask(crc));
  ByteBuffer::EncodeU32(footer + kFooterOffEndMagic, kEndMagic);

  return RowBlockColumn(std::move(buf), total);
}

RowBlockColumn RowBlockColumn::BuildInt64(const std::vector<int64_t>& values) {
  return Assemble(ColumnType::kInt64, column_codec::EncodeInt64(values),
                  values.size(), values.size() * 8);
}

RowBlockColumn RowBlockColumn::BuildDouble(const std::vector<double>& values) {
  return Assemble(ColumnType::kDouble, column_codec::EncodeDouble(values),
                  values.size(), values.size() * 8);
}

RowBlockColumn RowBlockColumn::BuildString(
    const std::vector<std::string>& values) {
  uint64_t logical = 0;
  for (const std::string& v : values) logical += v.size() + 8;
  return Assemble(ColumnType::kString, column_codec::EncodeString(values),
                  values.size(), logical);
}

Status RowBlockColumn::ValidateBuffer(Slice buffer, bool verify_checksum) {
  if (buffer.size() < kHeaderSize + kFooterSize) {
    return Status::Corruption("rbc: buffer smaller than header + footer");
  }
  const uint8_t* p = buffer.data();
  if (ReadU32At(p, kOffMagic) != kMagic) {
    return Status::Corruption("rbc: bad magic");
  }
  if (ReadU16At(p, kOffVersion) != kVersion) {
    return Status::Corruption("rbc: unsupported version");
  }
  uint64_t total = ReadU64At(p, kOffTotalBytes);
  if (total != buffer.size()) {
    return Status::Corruption("rbc: total bytes mismatch");
  }
  uint64_t dict_offset = ReadU64At(p, kOffDictOffset);
  uint64_t data_offset = ReadU64At(p, kOffDataOffset);
  size_t footer_offset = FooterOffset(total);
  if (dict_offset != kHeaderSize || data_offset < dict_offset ||
      data_offset > footer_offset) {
    return Status::Corruption("rbc: inconsistent section offsets");
  }
  uint32_t type = ReadU32At(p, kOffType);
  if (type < 1 || type > 3) {
    return Status::Corruption("rbc: invalid column type");
  }
  const uint8_t* footer = p + footer_offset;
  if (ReadU32At(footer, kFooterOffEndMagic) != kEndMagic) {
    return Status::Corruption("rbc: bad end magic");
  }
  if (verify_checksum) {
    uint32_t stored = crc32c::Unmask(ReadU32At(footer, kFooterOffChecksum));
    uint32_t actual = crc32c::Value(p, footer_offset + 8);
    if (stored != actual) {
      return Status::Corruption("rbc: checksum mismatch");
    }
  }
  return Status::OK();
}

StatusOr<RowBlockColumn> RowBlockColumn::FromBuffer(
    std::unique_ptr<uint8_t[]> buffer, size_t size, bool verify_checksum) {
  SCUBA_RETURN_IF_ERROR(
      ValidateBuffer(Slice(buffer.get(), size), verify_checksum));
  return RowBlockColumn(std::move(buffer), size);
}

ColumnType RowBlockColumn::type() const {
  return static_cast<ColumnType>(ReadU32At(buffer_.get(), kOffType));
}

column_codec::ChainCode RowBlockColumn::compression_chain() const {
  return ReadU16At(buffer_.get(), kOffCompression);
}

uint64_t RowBlockColumn::item_count() const {
  return ReadU64At(buffer_.get(), kOffItemCount);
}

uint64_t RowBlockColumn::dict_item_count() const {
  return ReadU64At(buffer_.get(), kOffDictItemCount);
}

uint64_t RowBlockColumn::uncompressed_bytes() const {
  return ReadU64At(buffer_.get(), FooterOffset(size_) + kFooterOffUncompressed);
}

Slice RowBlockColumn::DictSlice() const {
  uint64_t dict_offset = ReadU64At(buffer_.get(), kOffDictOffset);
  uint64_t data_offset = ReadU64At(buffer_.get(), kOffDataOffset);
  return Slice(buffer_.get() + dict_offset,
               static_cast<size_t>(data_offset - dict_offset));
}

Slice RowBlockColumn::DataSlice() const {
  uint64_t data_offset = ReadU64At(buffer_.get(), kOffDataOffset);
  return Slice(buffer_.get() + data_offset,
               FooterOffset(size_) - static_cast<size_t>(data_offset));
}

Status RowBlockColumn::DecodeInt64(std::vector<int64_t>* values) const {
  if (type() != ColumnType::kInt64) {
    return Status::InvalidArgument("rbc: not an int64 column");
  }
  return column_codec::DecodeInt64(compression_chain(), DictSlice(),
                                   DataSlice(), item_count(), values);
}

Status RowBlockColumn::DecodeDouble(std::vector<double>* values) const {
  if (type() != ColumnType::kDouble) {
    return Status::InvalidArgument("rbc: not a double column");
  }
  return column_codec::DecodeDouble(compression_chain(), DictSlice(),
                                    DataSlice(), item_count(), values);
}

Status RowBlockColumn::DecodeString(std::vector<std::string>* values) const {
  if (type() != ColumnType::kString) {
    return Status::InvalidArgument("rbc: not a string column");
  }
  return column_codec::DecodeString(compression_chain(), DictSlice(),
                                    DataSlice(), item_count(), values);
}

}  // namespace scuba
