#include "columnar/row_block_column.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/byte_buffer.h"
#include "util/crc32c.h"

namespace scuba {
namespace {

// Header field offsets (see class comment for the layout).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffCompression = 6;
constexpr size_t kOffType = 8;
// 4 reserved bytes at offset 12.
constexpr size_t kOffTotalBytes = 16;
constexpr size_t kOffItemCount = 24;
constexpr size_t kOffDictItemCount = 32;
constexpr size_t kOffDictOffset = 40;
constexpr size_t kOffDataOffset = 48;
// V2 footer field offsets relative to footer start (the trailing
// [uncompressed | checksum | end magic] 16 bytes are common to both
// versions and addressed from the buffer END instead).
constexpr size_t kFooterOffZoneMin = 0;
constexpr size_t kFooterOffZoneMax = 8;
constexpr size_t kFooterOffZoneFlags = 16;
constexpr uint32_t kZoneFlagPresent = 1u;
// Common trailing fields, relative to the END of the buffer.
constexpr size_t kTrailerOffUncompressed = 16;
constexpr size_t kTrailerOffChecksum = 8;
constexpr size_t kTrailerOffEndMagic = 4;

uint64_t ReadU64At(const uint8_t* base, size_t off) {
  return ByteBuffer::DecodeU64(base + off);
}
uint32_t ReadU32At(const uint8_t* base, size_t off) {
  return ByteBuffer::DecodeU32(base + off);
}
uint16_t ReadU16At(const uint8_t* base, size_t off) {
  return static_cast<uint16_t>(base[off] |
                               (static_cast<uint16_t>(base[off + 1]) << 8));
}

}  // namespace

// The footer offset is not stored as a header field: it is derivable as
// total_bytes - footer_size(version), and keeping a single source of truth
// avoids inconsistent-offset corruption classes. (Fig 3 lists it; we
// document the derivation instead of duplicating state.)
size_t RowBlockColumn::FooterOffset() const {
  return size_ - FooterSizeForVersion(version());
}

RowBlockColumn RowBlockColumn::Assemble(ColumnType type,
                                        column_codec::EncodedColumn encoded,
                                        uint64_t item_count,
                                        uint64_t uncompressed_bytes,
                                        ZoneMap zone) {
  const size_t dict_size = encoded.dict.size();
  const size_t data_size = encoded.data.size();
  const size_t dict_offset = kHeaderSize;
  const size_t data_offset = dict_offset + dict_size;
  const size_t footer_offset = data_offset + data_size;
  const size_t total = footer_offset + kFooterSizeV2;

  std::unique_ptr<uint8_t[]> buf(new uint8_t[total]);
  uint8_t* p = buf.get();
  std::memset(p, 0, kHeaderSize);
  ByteBuffer::EncodeU32(p + kOffMagic, kMagic);
  p[kOffVersion] = static_cast<uint8_t>(kVersion);
  p[kOffVersion + 1] = static_cast<uint8_t>(kVersion >> 8);
  p[kOffCompression] = static_cast<uint8_t>(encoded.chain);
  p[kOffCompression + 1] = static_cast<uint8_t>(encoded.chain >> 8);
  ByteBuffer::EncodeU32(p + kOffType, static_cast<uint32_t>(type));
  ByteBuffer::EncodeU64(p + kOffTotalBytes, total);
  ByteBuffer::EncodeU64(p + kOffItemCount, item_count);
  ByteBuffer::EncodeU64(p + kOffDictItemCount, encoded.dict_item_count);
  ByteBuffer::EncodeU64(p + kOffDictOffset, dict_offset);
  ByteBuffer::EncodeU64(p + kOffDataOffset, data_offset);

  if (dict_size > 0) std::memcpy(p + dict_offset, encoded.dict.data(), dict_size);
  if (data_size > 0) std::memcpy(p + data_offset, encoded.data.data(), data_size);

  uint8_t* footer = p + footer_offset;
  ByteBuffer::EncodeU64(footer + kFooterOffZoneMin, zone.min_bits);
  ByteBuffer::EncodeU64(footer + kFooterOffZoneMax, zone.max_bits);
  ByteBuffer::EncodeU32(footer + kFooterOffZoneFlags,
                        zone.present ? kZoneFlagPresent : 0u);
  ByteBuffer::EncodeU32(footer + kFooterOffZoneFlags + 4, 0);  // reserved
  ByteBuffer::EncodeU64(p + total - kTrailerOffUncompressed,
                        uncompressed_bytes);
  uint32_t crc = crc32c::Value(p, total - kTrailerOffChecksum);
  ByteBuffer::EncodeU32(p + total - kTrailerOffChecksum, crc32c::Mask(crc));
  ByteBuffer::EncodeU32(p + total - kTrailerOffEndMagic, kEndMagic);

  return RowBlockColumn(std::move(buf), total);
}

RowBlockColumn RowBlockColumn::BuildInt64(const std::vector<int64_t>& values) {
  ZoneMap zone;
  if (!values.empty()) {
    auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    zone.present = true;
    zone.min_bits = static_cast<uint64_t>(*mn);
    zone.max_bits = static_cast<uint64_t>(*mx);
  }
  return Assemble(ColumnType::kInt64, column_codec::EncodeInt64(values),
                  values.size(), values.size() * 8, zone);
}

RowBlockColumn RowBlockColumn::BuildDouble(const std::vector<double>& values) {
  ZoneMap zone;
  if (!values.empty()) {
    double mn = values[0], mx = values[0];
    bool has_nan = false;
    for (double v : values) {
      if (std::isnan(v)) {
        has_nan = true;
        break;
      }
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    if (!has_nan) {
      zone.present = true;
      std::memcpy(&zone.min_bits, &mn, 8);
      std::memcpy(&zone.max_bits, &mx, 8);
    }
  }
  return Assemble(ColumnType::kDouble, column_codec::EncodeDouble(values),
                  values.size(), values.size() * 8, zone);
}

RowBlockColumn RowBlockColumn::BuildString(
    const std::vector<std::string>& values) {
  uint64_t logical = 0;
  for (const std::string& v : values) logical += v.size() + 8;
  return Assemble(ColumnType::kString, column_codec::EncodeString(values),
                  values.size(), logical, ZoneMap());
}

Status RowBlockColumn::ValidateBuffer(Slice buffer, bool verify_checksum) {
  if (buffer.size() < kHeaderSize + kFooterSizeV1) {
    return Status::Corruption("rbc: buffer smaller than header + footer");
  }
  const uint8_t* p = buffer.data();
  if (ReadU32At(p, kOffMagic) != kMagic) {
    return Status::Corruption("rbc: bad magic");
  }
  uint16_t version = ReadU16At(p, kOffVersion);
  if (version < 1 || version > kVersion) {
    return Status::Corruption("rbc: unsupported version");
  }
  const size_t footer_size = FooterSizeForVersion(version);
  if (buffer.size() < kHeaderSize + footer_size) {
    return Status::Corruption("rbc: buffer smaller than header + footer");
  }
  uint64_t total = ReadU64At(p, kOffTotalBytes);
  if (total != buffer.size()) {
    return Status::Corruption("rbc: total bytes mismatch");
  }
  uint64_t dict_offset = ReadU64At(p, kOffDictOffset);
  uint64_t data_offset = ReadU64At(p, kOffDataOffset);
  size_t footer_offset = static_cast<size_t>(total) - footer_size;
  if (dict_offset != kHeaderSize || data_offset < dict_offset ||
      data_offset > footer_offset) {
    return Status::Corruption("rbc: inconsistent section offsets");
  }
  uint32_t type = ReadU32At(p, kOffType);
  if (type < 1 || type > 3) {
    return Status::Corruption("rbc: invalid column type");
  }
  if (ReadU32At(p, total - kTrailerOffEndMagic) != kEndMagic) {
    return Status::Corruption("rbc: bad end magic");
  }
  if (verify_checksum) {
    uint32_t stored =
        crc32c::Unmask(ReadU32At(p, total - kTrailerOffChecksum));
    uint32_t actual = crc32c::Value(p, total - kTrailerOffChecksum);
    if (stored != actual) {
      return Status::Corruption("rbc: checksum mismatch");
    }
  }
  return Status::OK();
}

StatusOr<RowBlockColumn> RowBlockColumn::FromBuffer(
    std::unique_ptr<uint8_t[]> buffer, size_t size, bool verify_checksum) {
  SCUBA_RETURN_IF_ERROR(
      ValidateBuffer(Slice(buffer.get(), size), verify_checksum));
  return RowBlockColumn(std::move(buffer), size);
}

uint16_t RowBlockColumn::version() const {
  return ReadU16At(buffer_.get(), kOffVersion);
}

ColumnType RowBlockColumn::type() const {
  return static_cast<ColumnType>(ReadU32At(buffer_.get(), kOffType));
}

column_codec::ChainCode RowBlockColumn::compression_chain() const {
  return ReadU16At(buffer_.get(), kOffCompression);
}

uint64_t RowBlockColumn::item_count() const {
  return ReadU64At(buffer_.get(), kOffItemCount);
}

uint64_t RowBlockColumn::dict_item_count() const {
  return ReadU64At(buffer_.get(), kOffDictItemCount);
}

uint64_t RowBlockColumn::uncompressed_bytes() const {
  return ReadU64At(buffer_.get(), size_ - kTrailerOffUncompressed);
}

bool RowBlockColumn::HasZoneMap() const {
  if (version() < 2) return false;
  return (ReadU32At(buffer_.get(), FooterOffset() + kFooterOffZoneFlags) &
          kZoneFlagPresent) != 0;
}

bool RowBlockColumn::ZoneRangeInt64(int64_t* min, int64_t* max) const {
  if (type() != ColumnType::kInt64 || !HasZoneMap()) return false;
  const size_t footer = FooterOffset();
  *min = static_cast<int64_t>(
      ReadU64At(buffer_.get(), footer + kFooterOffZoneMin));
  *max = static_cast<int64_t>(
      ReadU64At(buffer_.get(), footer + kFooterOffZoneMax));
  return true;
}

bool RowBlockColumn::ZoneRangeDouble(double* min, double* max) const {
  if (type() != ColumnType::kDouble || !HasZoneMap()) return false;
  const size_t footer = FooterOffset();
  uint64_t min_bits = ReadU64At(buffer_.get(), footer + kFooterOffZoneMin);
  uint64_t max_bits = ReadU64At(buffer_.get(), footer + kFooterOffZoneMax);
  std::memcpy(min, &min_bits, 8);
  std::memcpy(max, &max_bits, 8);
  return true;
}

Slice RowBlockColumn::DictSlice() const {
  uint64_t dict_offset = ReadU64At(buffer_.get(), kOffDictOffset);
  uint64_t data_offset = ReadU64At(buffer_.get(), kOffDataOffset);
  return Slice(buffer_.get() + dict_offset,
               static_cast<size_t>(data_offset - dict_offset));
}

Slice RowBlockColumn::DataSlice() const {
  uint64_t data_offset = ReadU64At(buffer_.get(), kOffDataOffset);
  return Slice(buffer_.get() + data_offset,
               FooterOffset() - static_cast<size_t>(data_offset));
}

Status RowBlockColumn::DecodeInt64(std::vector<int64_t>* values) const {
  if (type() != ColumnType::kInt64) {
    return Status::InvalidArgument("rbc: not an int64 column");
  }
  return column_codec::DecodeInt64(compression_chain(), DictSlice(),
                                   DataSlice(), item_count(), values);
}

Status RowBlockColumn::DecodeDouble(std::vector<double>* values) const {
  if (type() != ColumnType::kDouble) {
    return Status::InvalidArgument("rbc: not a double column");
  }
  return column_codec::DecodeDouble(compression_chain(), DictSlice(),
                                    DataSlice(), item_count(), values);
}

Status RowBlockColumn::DecodeString(std::vector<std::string>* values) const {
  if (type() != ColumnType::kString) {
    return Status::InvalidArgument("rbc: not a string column");
  }
  return column_codec::DecodeString(compression_chain(), DictSlice(),
                                    DataSlice(), item_count(), values);
}

Status RowBlockColumn::DecodeStringDictionary(
    std::vector<std::string>* dict_values, std::vector<uint32_t>* codes) const {
  if (type() != ColumnType::kString) {
    return Status::InvalidArgument("rbc: not a string column");
  }
  if (!column_codec::IsStringDictChain(compression_chain())) {
    return Status::FailedPrecondition("rbc: not dictionary encoded");
  }
  return column_codec::DecodeStringDictCodes(compression_chain(), DictSlice(),
                                             DataSlice(), item_count(),
                                             dict_values, codes);
}

}  // namespace scuba
