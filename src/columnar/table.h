#ifndef SCUBA_COLUMNAR_TABLE_H_
#define SCUBA_COLUMNAR_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "columnar/row.h"
#include "columnar/row_block.h"
#include "columnar/write_buffer.h"
#include "util/status.h"

namespace scuba {

/// Retention limits: data expires by age or by total size (§2, "they also
/// delete data as it expires due to either age or size limits").
struct TableLimits {
  /// Rows older than now - max_age_seconds are dropped (0 = no age limit).
  int64_t max_age_seconds = 0;
  /// Oldest row blocks are dropped while the table exceeds this many bytes
  /// (0 = no size limit).
  uint64_t max_bytes = 0;
};

/// A table (Fig 2): name + header + a vector of POINTERS to row blocks,
/// plus the active write buffer receiving new rows. Not thread-safe; the
/// owning leaf server serializes access.
class Table {
 public:
  explicit Table(std::string name, TableLimits limits = TableLimits())
      : name_(std::move(name)), limits_(limits) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const TableLimits& limits() const { return limits_; }

  /// Observer invoked right after a row block is sealed (by AddRows or
  /// SealWriteBuffer). Used by the columnar backup (§6) to mirror sealed
  /// blocks to disk. A failing observer fails the sealing operation.
  using SealObserver = std::function<Status(const RowBlock& block)>;
  void SetSealObserver(SealObserver observer) {
    seal_observer_ = std::move(observer);
  }

  /// Appends rows, sealing the write buffer into row blocks as it fills.
  /// `now` is the unix timestamp used as block creation time.
  Status AddRows(const std::vector<Row>& rows, int64_t now);

  /// Seals any buffered rows into a final (possibly short) row block.
  /// Called when shutdown flushes state (Fig 5c "PREPARE"). No-op when the
  /// buffer is empty.
  Status SealWriteBuffer(int64_t now);

  /// Applies the age/size limits, dropping whole expired row blocks.
  /// Returns the number of blocks dropped.
  size_t ExpireData(int64_t now);

  size_t num_row_blocks() const { return row_blocks_.size(); }
  const RowBlock* row_block(size_t i) const { return row_blocks_[i].get(); }
  RowBlock* mutable_row_block(size_t i) { return row_blocks_[i].get(); }
  const WriteBuffer& write_buffer() const { return write_buffer_; }

  /// Rows in sealed blocks plus buffered rows.
  uint64_t RowCount() const;

  /// Heap bytes held by sealed blocks plus the buffered estimate.
  uint64_t MemoryBytes() const;

  /// Indices of row blocks whose time range intersects [begin, end].
  std::vector<size_t> BlocksInTimeRange(int64_t begin, int64_t end) const;

  // --- restart support -----------------------------------------------------

  /// Detaches row block `i` so the shutdown path can free it after copying
  /// (Fig 6 "delete row block from heap").
  std::unique_ptr<RowBlock> ReleaseRowBlock(size_t i) {
    return std::move(row_blocks_[i]);
  }

  /// Appends a recovered row block (restore path).
  void AdoptRowBlock(std::unique_ptr<RowBlock> block) {
    row_blocks_.push_back(std::move(block));
  }

 private:
  Status SealInternal(int64_t now);

  std::string name_;
  TableLimits limits_;
  std::vector<std::unique_ptr<RowBlock>> row_blocks_;
  WriteBuffer write_buffer_;
  SealObserver seal_observer_;
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_TABLE_H_
