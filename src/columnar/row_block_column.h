#ifndef SCUBA_COLUMNAR_ROW_BLOCK_COLUMN_H_
#define SCUBA_COLUMNAR_ROW_BLOCK_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "compress/column_codec.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {

/// A row block column (RBC, Fig 3): all values of one column for every row
/// in a row block, stored as ONE contiguous byte buffer:
///
///   [Header | dictionary | data | Footer]
///
/// Every internal location (dictionary, data, footer) is an OFFSET from the
/// buffer base, never a pointer. This is the property the paper's restart
/// mechanism rests on: "using offsets enables us to copy the entire row
/// block column between heap and shared memory in one memory copy
/// operation. Only the address of the row block column itself needs to be
/// changed for its new location" (§2.1, §4.4).
///
/// Header (fixed 56 bytes, little-endian):
///   u32 magic            'RBC1'
///   u16 version          layout version of this column format (1 or 2)
///   u16 compression      codec chain code (column_codec::ChainCode)
///   u32 column type      ColumnType
///   u32 reserved
///   u64 total bytes      number of bytes used by the column (whole buffer)
///   u64 item count       number of items in the column
///   u64 dict item count  number of items in the dictionary
///   u64 dict offset      offset at which the dictionary is found
///   u64 data offset      offset at which the data is found
///   u64 footer offset    offset at which the footer is found
///
/// Footer, version 1 (16 bytes):
///   u64 uncompressed bytes  logical (pre-compression) size of the column
///   u32 checksum            masked CRC32C of bytes [0, footer_offset + 8)
///   u32 end magic           'RBCE'
///
/// Footer, version 2 (40 bytes) — adds a zone map so query execution can
/// prune whole row blocks on comparison predicates without decoding (the
/// same trick the header's min/max time plays for time predicates, §2.1):
///   u64 zone min bits       min value (int64 bits, or double bit pattern)
///   u64 zone max bits       max value
///   u32 zone flags          bit 0: zone map present
///   u32 reserved
///   u64 uncompressed bytes
///   u32 checksum            masked CRC32C of bytes [0, footer_offset + 32)
///   u32 end magic           'RBCE'
///
/// Both versions keep [uncompressed | checksum | end magic] as the LAST 16
/// bytes of the buffer; readers accept either version (old blocks restored
/// from shm or disk keep working), writers always emit version 2.
class RowBlockColumn {
 public:
  static constexpr uint32_t kMagic = 0x31434252;     // "RBC1"
  static constexpr uint32_t kEndMagic = 0x45434252;  // "RBCE"
  static constexpr uint16_t kVersion = 2;
  static constexpr size_t kHeaderSize = 56;
  static constexpr size_t kFooterSizeV1 = 16;
  static constexpr size_t kFooterSizeV2 = 40;

  /// Footer byte size for a given layout version.
  static size_t FooterSizeForVersion(uint16_t version) {
    return version >= 2 ? kFooterSizeV2 : kFooterSizeV1;
  }

  RowBlockColumn(RowBlockColumn&&) noexcept = default;
  RowBlockColumn& operator=(RowBlockColumn&&) noexcept = default;
  RowBlockColumn(const RowBlockColumn&) = delete;
  RowBlockColumn& operator=(const RowBlockColumn&) = delete;

  /// Builders: encode a typed value vector into a fresh column buffer.
  /// Int64 and double builders record the column's min/max in the footer
  /// zone map (doubles containing NaN get no zone map).
  static RowBlockColumn BuildInt64(const std::vector<int64_t>& values);
  static RowBlockColumn BuildDouble(const std::vector<double>& values);
  static RowBlockColumn BuildString(const std::vector<std::string>& values);

  /// Adopts a buffer that already holds a serialized column (e.g. memcpy'd
  /// out of a shared memory segment). Validates magic and offsets, plus the
  /// CRC32C when `verify_checksum` (skipping the CRC makes adoption pure
  /// memcpy-speed, which is what the paper's restore path does).
  static StatusOr<RowBlockColumn> FromBuffer(std::unique_ptr<uint8_t[]> buffer,
                                             size_t size,
                                             bool verify_checksum = true);

  /// Validates an in-place serialized column without copying (used to check
  /// a column while it still lives in a shared memory segment).
  static Status ValidateBuffer(Slice buffer, bool verify_checksum = true);

  // Header accessors.
  uint16_t version() const;
  ColumnType type() const;
  column_codec::ChainCode compression_chain() const;
  uint64_t item_count() const;
  uint64_t dict_item_count() const;
  uint64_t total_bytes() const { return size_; }
  uint64_t uncompressed_bytes() const;

  // Zone map accessors (v2 footers only; v1 columns report none).
  bool HasZoneMap() const;
  /// Min/max of an int64 column; false when absent or wrong type.
  bool ZoneRangeInt64(int64_t* min, int64_t* max) const;
  /// Min/max of a double column; false when absent or wrong type.
  bool ZoneRangeDouble(double* min, double* max) const;

  /// The whole contiguous buffer; relocating the column IS memcpy'ing this.
  Slice AsSlice() const { return Slice(buffer_.get(), size_); }
  const uint8_t* data() const { return buffer_.get(); }

  /// Raw views of the dictionary and data blobs (still encoded). The
  /// compressed-domain scan path (query/packed_column) filters directly on
  /// these without materializing the column.
  Slice dict_slice() const { return DictSlice(); }
  Slice data_slice() const { return DataSlice(); }

  // Decoders (full column materialization).
  Status DecodeInt64(std::vector<int64_t>* values) const;
  Status DecodeDouble(std::vector<double>* values) const;
  Status DecodeString(std::vector<std::string>* values) const;

  /// Dictionary view of a dictionary-encoded string column: the distinct
  /// values plus the per-row code vector, WITHOUT materializing a
  /// std::string per row. FailedPrecondition when the column is not
  /// dictionary-encoded (callers fall back to DecodeString).
  Status DecodeStringDictionary(std::vector<std::string>* dict_values,
                                std::vector<uint32_t>* codes) const;

  /// Integrity check of this column's buffer.
  Status Validate() const { return ValidateBuffer(AsSlice()); }

 private:
  RowBlockColumn(std::unique_ptr<uint8_t[]> buffer, size_t size)
      : buffer_(std::move(buffer)), size_(size) {}

  struct ZoneMap {
    bool present = false;
    uint64_t min_bits = 0;
    uint64_t max_bits = 0;
  };

  static RowBlockColumn Assemble(ColumnType type,
                                 column_codec::EncodedColumn encoded,
                                 uint64_t item_count,
                                 uint64_t uncompressed_bytes, ZoneMap zone);

  size_t FooterOffset() const;
  Slice DictSlice() const;
  Slice DataSlice() const;

  std::unique_ptr<uint8_t[]> buffer_;
  size_t size_;
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_ROW_BLOCK_COLUMN_H_
