#include "columnar/leaf_map.h"

#include <algorithm>

namespace scuba {

StatusOr<Table*> LeafMap::CreateTable(const std::string& name,
                                      TableLimits limits) {
  if (GetTable(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.push_back(std::make_unique<Table>(name, limits));
  return tables_.back().get();
}

Table* LeafMap::GetTable(const std::string& name) {
  for (const auto& t : tables_) {
    if (t != nullptr && t->name() == name) return t.get();
  }
  return nullptr;
}

const Table* LeafMap::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t != nullptr && t->name() == name) return t.get();
  }
  return nullptr;
}

Table* LeafMap::GetOrCreateTable(const std::string& name) {
  Table* existing = GetTable(name);
  if (existing != nullptr) return existing;
  tables_.push_back(std::make_unique<Table>(name));
  return tables_.back().get();
}

Status LeafMap::DropTable(const std::string& name) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (*it != nullptr && (*it)->name() == name) {
      tables_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("table '" + name + "' not found");
}

std::vector<std::string> LeafMap::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) {
    if (t != nullptr) names.push_back(t->name());
  }
  return names;
}

uint64_t LeafMap::TotalMemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& t : tables_) {
    if (t != nullptr) bytes += t->MemoryBytes();
  }
  return bytes;
}

uint64_t LeafMap::TotalRowCount() const {
  uint64_t rows = 0;
  for (const auto& t : tables_) {
    if (t != nullptr) rows += t->RowCount();
  }
  return rows;
}

std::unique_ptr<Table> LeafMap::ReleaseTable(const std::string& name) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (*it != nullptr && (*it)->name() == name) {
      std::unique_ptr<Table> table = std::move(*it);
      tables_.erase(it);
      return table;
    }
  }
  return nullptr;
}

Status LeafMap::AdoptTable(std::unique_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot adopt null table");
  }
  if (GetTable(table->name()) != nullptr) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already exists");
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

}  // namespace scuba
