#include "columnar/write_buffer.h"

#include <algorithm>

namespace scuba {

void WriteBuffer::AppendDefaults(ColumnBuffer* col, size_t n) {
  switch (col->type) {
    case ColumnType::kInt64: {
      auto& v = std::get<std::vector<int64_t>>(col->values);
      v.insert(v.end(), n, 0);
      break;
    }
    case ColumnType::kDouble: {
      auto& v = std::get<std::vector<double>>(col->values);
      v.insert(v.end(), n, 0.0);
      break;
    }
    case ColumnType::kString: {
      auto& v = std::get<std::vector<std::string>>(col->values);
      v.insert(v.end(), n, std::string());
      break;
    }
  }
}

Status WriteBuffer::AppendValue(ColumnBuffer* col, const Value& value) {
  if (ValueType(value) != col->type) {
    return Status::InvalidArgument("write buffer: field type conflicts with "
                                   "buffered column type");
  }
  switch (col->type) {
    case ColumnType::kInt64:
      std::get<std::vector<int64_t>>(col->values)
          .push_back(std::get<int64_t>(value));
      break;
    case ColumnType::kDouble:
      std::get<std::vector<double>>(col->values)
          .push_back(std::get<double>(value));
      break;
    case ColumnType::kString:
      std::get<std::vector<std::string>>(col->values)
          .push_back(std::get<std::string>(value));
      break;
  }
  return Status::OK();
}

Status WriteBuffer::AddRow(const Row& row) {
  std::optional<int64_t> time = row.Time();
  if (!time.has_value()) {
    return Status::InvalidArgument(
        "write buffer: row lacks an int64 'time' field");
  }

  // Validate types up front so a failed row leaves the buffer unchanged.
  for (const auto& [name, value] : row.fields) {
    auto it = columns_.find(name);
    if (it != columns_.end() && it->second.type != ValueType(value)) {
      return Status::InvalidArgument("write buffer: field '" + name +
                                     "' conflicts with buffered column type");
    }
  }

  // Create any new columns, back-filled with defaults for earlier rows.
  for (const auto& [name, value] : row.fields) {
    if (columns_.find(name) != columns_.end()) continue;
    ColumnBuffer col;
    col.type = ValueType(value);
    switch (col.type) {
      case ColumnType::kInt64:
        col.values = std::vector<int64_t>();
        break;
      case ColumnType::kDouble:
        col.values = std::vector<double>();
        break;
      case ColumnType::kString:
        col.values = std::vector<std::string>();
        break;
    }
    AppendDefaults(&col, row_count_);
    column_order_.push_back(name);
    columns_.emplace(name, std::move(col));
  }

  // Append this row's values; densify columns the row does not mention.
  for (const auto& [name, value] : row.fields) {
    Status s = AppendValue(&columns_.find(name)->second, value);
    (void)s;  // Types were validated above; AppendValue cannot fail here.
  }
  for (const std::string& name : column_order_) {
    ColumnBuffer& col = columns_.find(name)->second;
    size_t expect = row_count_ + 1;
    size_t have = std::visit([](const auto& v) { return v.size(); },
                             col.values);
    if (have < expect) AppendDefaults(&col, expect - have);
  }

  ++row_count_;
  estimated_bytes_ += row.EstimatedBytes();
  if (row_count_ == 1) {
    min_time_ = max_time_ = *time;
  } else {
    min_time_ = std::min(min_time_, *time);
    max_time_ = std::max(max_time_, *time);
  }
  return Status::OK();
}

std::optional<ColumnValues> WriteBuffer::MaterializeColumn(
    const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) return std::nullopt;
  return it->second.values;
}

std::optional<ColumnType> WriteBuffer::ColumnTypeOf(
    const std::string& name) const {
  auto it = columns_.find(name);
  if (it == columns_.end()) return std::nullopt;
  return it->second.type;
}

std::vector<Row> WriteBuffer::MaterializeRows() const {
  std::vector<Row> rows(row_count_);
  for (const std::string& name : column_order_) {
    const ColumnBuffer& col = columns_.find(name)->second;
    std::visit(
        [&](const auto& values) {
          for (size_t i = 0; i < values.size() && i < rows.size(); ++i) {
            rows[i].Set(name, values[i]);
          }
        },
        col.values);
  }
  return rows;
}

StatusOr<std::unique_ptr<RowBlock>> WriteBuffer::Seal(
    int64_t creation_timestamp) {
  if (empty()) {
    return Status::FailedPrecondition("write buffer: nothing to seal");
  }
  Schema schema;
  std::vector<ColumnValues> values;
  values.reserve(column_order_.size());
  for (const std::string& name : column_order_) {
    ColumnBuffer& col = columns_.find(name)->second;
    schema.AddColumn(name, col.type);
    values.push_back(std::move(col.values));
  }
  auto block = RowBlock::Build(std::move(schema), std::move(values),
                               creation_timestamp);

  column_order_.clear();
  columns_.clear();
  row_count_ = 0;
  estimated_bytes_ = 0;
  min_time_ = max_time_ = 0;
  return block;
}

}  // namespace scuba
