#ifndef SCUBA_COLUMNAR_ROW_BLOCK_H_
#define SCUBA_COLUMNAR_ROW_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "columnar/row_block_column.h"
#include "columnar/schema.h"
#include "columnar/types.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace scuba {

/// Row blocks hold up to 65,536 consecutively-arrived rows (§2.1).
inline constexpr size_t kMaxRowsPerBlock = 65536;
/// A row block is additionally capped at 1 GB pre-compression (§2.1).
inline constexpr uint64_t kMaxRowBlockBytes = 1ull << 30;

/// Typed value vector used to build row block columns.
using ColumnValues = std::variant<std::vector<int64_t>, std::vector<double>,
                                  std::vector<std::string>>;

/// Fixed per-block properties (Fig 2 "Header"): byte size, row count, the
/// min/max of the required time column, and the block creation timestamp.
struct RowBlockHeader {
  uint64_t size_bytes = 0;  // total bytes of all column buffers
  uint32_t row_count = 0;
  int64_t min_time = 0;
  int64_t max_time = 0;
  int64_t creation_timestamp = 0;
};

/// A row block (Fig 2): header + schema + a vector of POINTERS to row block
/// columns. The heap layout keeps the indirection (columns are separately
/// allocated); the shared memory layout flattens it (Fig 4).
class RowBlock {
 public:
  /// Builds a row block from per-column value vectors, which must all have
  /// the same length (<= kMaxRowsPerBlock) and match the schema's types.
  /// The schema must contain the int64 "time" column.
  static StatusOr<std::unique_ptr<RowBlock>> Build(
      Schema schema, std::vector<ColumnValues> columns,
      int64_t creation_timestamp);

  /// Reassembles a row block from parts recovered from shm or disk.
  /// Column order must match the schema; counts are re-validated.
  static StatusOr<std::unique_ptr<RowBlock>> FromParts(
      RowBlockHeader header, Schema schema,
      std::vector<std::unique_ptr<RowBlockColumn>> columns);

  RowBlock(const RowBlock&) = delete;
  RowBlock& operator=(const RowBlock&) = delete;

  const RowBlockHeader& header() const { return header_; }
  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }

  /// May be null after the column was released during shutdown copy.
  const RowBlockColumn* column(size_t i) const { return columns_[i].get(); }

  /// Column for `name`, or nullptr if this block's schema lacks it.
  const RowBlockColumn* ColumnByName(std::string_view name) const;

  /// True iff the block's [min_time, max_time] intersects [begin, end].
  /// Nearly all queries carry time predicates; this is the pruning test
  /// that makes the time column "close to an index" (§2.1).
  bool OverlapsTimeRange(int64_t begin, int64_t end) const {
    return header_.max_time >= begin && header_.min_time <= end;
  }

  /// Total heap bytes currently held by the block's column buffers.
  uint64_t MemoryBytes() const;

  /// Detaches column `i` (for the shutdown path, which frees each column
  /// as soon as it has been copied to shared memory, §4.4).
  std::unique_ptr<RowBlockColumn> ReleaseColumn(size_t i) {
    return std::move(columns_[i]);
  }

  /// Serializes header + schema + per-column byte sizes (shared by the shm
  /// and disk layouts). Column payloads are written separately.
  void SerializeMeta(ByteBuffer* out) const;

  /// Parsed form of SerializeMeta.
  struct Meta {
    RowBlockHeader header;
    Schema schema;
    std::vector<uint64_t> column_sizes;
  };
  static StatusOr<Meta> ParseMeta(Slice* input);

 private:
  RowBlock(RowBlockHeader header, Schema schema,
           std::vector<std::unique_ptr<RowBlockColumn>> columns)
      : header_(header),
        schema_(std::move(schema)),
        columns_(std::move(columns)) {}

  RowBlockHeader header_;
  Schema schema_;
  std::vector<std::unique_ptr<RowBlockColumn>> columns_;
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_ROW_BLOCK_H_
