#ifndef SCUBA_COLUMNAR_WRITE_BUFFER_H_
#define SCUBA_COLUMNAR_WRITE_BUFFER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/row.h"
#include "columnar/row_block.h"
#include "columnar/schema.h"
#include "util/status.h"

namespace scuba {

/// Accumulates incoming rows for one table until a row block is full
/// (65,536 rows or the 1 GB pre-compression cap, §2.1), then seals them
/// into an immutable, compressed RowBlock.
///
/// Rows may carry different field sets; the buffer maintains the union
/// schema and back-fills default values, so each sealed block has a single
/// dense schema (blocks sealed at different times may differ in schema).
class WriteBuffer {
 public:
  WriteBuffer() = default;
  WriteBuffer(const WriteBuffer&) = delete;
  WriteBuffer& operator=(const WriteBuffer&) = delete;

  /// Appends one row. Fails (leaving the buffer unchanged) if the row lacks
  /// a valid "time" field or a field's type conflicts with the buffered
  /// column's type.
  Status AddRow(const Row& row);

  size_t row_count() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }

  /// Estimated pre-compression bytes buffered.
  uint64_t EstimatedBytes() const { return estimated_bytes_; }

  /// True when the next row must go into a fresh block.
  bool Full() const {
    return row_count_ >= kMaxRowsPerBlock ||
           estimated_bytes_ >= kMaxRowBlockBytes;
  }

  /// Seals the buffered rows into a RowBlock and resets the buffer.
  /// Fails if the buffer is empty.
  StatusOr<std::unique_ptr<RowBlock>> Seal(int64_t creation_timestamp);

  /// Min/max of buffered "time" values (valid when !empty()).
  int64_t min_time() const { return min_time_; }
  int64_t max_time() const { return max_time_; }

  /// The buffered column's dense values (copy), or nullopt if no row has
  /// supplied the column yet. Lets queries see not-yet-sealed rows.
  std::optional<ColumnValues> MaterializeColumn(const std::string& name) const;

  /// Type of a buffered column, or nullopt.
  std::optional<ColumnType> ColumnTypeOf(const std::string& name) const;

  /// Reconstructs the buffered rows (densified to the union schema, in
  /// arrival order). Used to re-seed the columnar backup's tail after a
  /// mid-batch seal rotated it away.
  std::vector<Row> MaterializeRows() const;

 private:
  struct ColumnBuffer {
    ColumnType type;
    ColumnValues values;
  };

  // Appends the column's default value `n` times (back-fill).
  static void AppendDefaults(ColumnBuffer* col, size_t n);
  static Status AppendValue(ColumnBuffer* col, const Value& value);

  std::vector<std::string> column_order_;
  std::unordered_map<std::string, ColumnBuffer> columns_;
  size_t row_count_ = 0;
  uint64_t estimated_bytes_ = 0;
  int64_t min_time_ = 0;
  int64_t max_time_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_WRITE_BUFFER_H_
