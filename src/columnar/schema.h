#ifndef SCUBA_COLUMNAR_SCHEMA_H_
#define SCUBA_COLUMNAR_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {

/// One column declaration: name and type.
struct ColumnDef {
  std::string name;
  ColumnType type;

  friend bool operator==(const ColumnDef& a, const ColumnDef& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// The schema of one row block: an ordered list of column definitions
/// (Fig 2: "Name_0, Type_0 ... Name_k, Type_k"). Different row blocks of
/// the same table may have different schemas (§2.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name`, or nullopt.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Appends a column. Caller guarantees the name is not already present.
  void AddColumn(std::string name, ColumnType type) {
    columns_.push_back(ColumnDef{std::move(name), type});
  }

  /// Serialization: varint(count), then per column varint(name_len) + name
  /// + u8 type. Used in row block headers (heap/shm/disk all share it).
  void Serialize(ByteBuffer* out) const;
  static StatusOr<Schema> Parse(Slice* input);

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_SCHEMA_H_
