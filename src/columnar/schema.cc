#include "columnar/schema.h"

#include "util/varint.h"

namespace scuba {

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

void Schema::Serialize(ByteBuffer* out) const {
  varint::AppendU64(out, columns_.size());
  for (const ColumnDef& col : columns_) {
    varint::AppendU64(out, col.name.size());
    out->Append(col.name.data(), col.name.size());
    out->AppendU8(static_cast<uint8_t>(col.type));
  }
}

StatusOr<Schema> Schema::Parse(Slice* input) {
  uint64_t count = 0;
  if (!varint::ReadU64(input, &count)) {
    return Status::Corruption("schema: truncated column count");
  }
  std::vector<ColumnDef> columns;
  columns.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!varint::ReadU64(input, &name_len) || input->size() < name_len + 1) {
      return Status::Corruption("schema: truncated column definition");
    }
    std::string name(reinterpret_cast<const char*>(input->data()), name_len);
    input->RemovePrefix(name_len);
    uint8_t type_byte = (*input)[0];
    input->RemovePrefix(1);
    if (type_byte < 1 || type_byte > 3) {
      return Status::Corruption("schema: invalid column type");
    }
    columns.push_back(
        ColumnDef{std::move(name), static_cast<ColumnType>(type_byte)});
  }
  return Schema(std::move(columns));
}

}  // namespace scuba
