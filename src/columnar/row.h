#ifndef SCUBA_COLUMNAR_ROW_H_
#define SCUBA_COLUMNAR_ROW_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "columnar/types.h"

namespace scuba {

/// One ingested row: named fields. Every row must include the int64 "time"
/// field (the event's unix timestamp, §2.1). Rows within one table may have
/// different field sets; the write buffer densifies them.
struct Row {
  std::vector<std::pair<std::string, Value>> fields;

  Row() = default;
  explicit Row(std::vector<std::pair<std::string, Value>> f)
      : fields(std::move(f)) {}

  Row& Set(std::string name, Value value) {
    fields.emplace_back(std::move(name), std::move(value));
    return *this;
  }
  Row& SetTime(int64_t unix_seconds) {
    return Set(kTimeColumnName, Value(unix_seconds));
  }

  /// The value of the "time" field, if present and int64-typed.
  std::optional<int64_t> Time() const {
    for (const auto& [name, value] : fields) {
      if (name == kTimeColumnName) {
        if (const int64_t* t = std::get_if<int64_t>(&value)) return *t;
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Rough in-memory size used for row-block byte capping.
  size_t EstimatedBytes() const {
    size_t bytes = 0;
    for (const auto& [name, value] : fields) {
      bytes += name.size() + 16;
      if (const std::string* s = std::get_if<std::string>(&value)) {
        bytes += s->size();
      }
    }
    return bytes;
  }
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_ROW_H_
