#ifndef SCUBA_COLUMNAR_LEAF_MAP_H_
#define SCUBA_COLUMNAR_LEAF_MAP_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "util/status.h"

namespace scuba {

/// The leaf map (Fig 2): the root of a leaf server's heap state, holding a
/// pointer to each table. Each leaf stores a fraction of most tables (§2.1).
class LeafMap {
 public:
  LeafMap() = default;
  LeafMap(const LeafMap&) = delete;
  LeafMap& operator=(const LeafMap&) = delete;

  /// Creates a table; fails if the name exists.
  StatusOr<Table*> CreateTable(const std::string& name,
                               TableLimits limits = TableLimits());

  /// Returns the table or nullptr.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Returns the table, creating it with default limits if missing.
  Table* GetOrCreateTable(const std::string& name);

  /// Removes a table entirely. Returns NotFound if absent.
  Status DropTable(const std::string& name);

  /// Table names in creation order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// Total heap bytes across all tables (used for free-memory placement
  /// and footprint accounting).
  uint64_t TotalMemoryBytes() const;
  uint64_t TotalRowCount() const;

  /// Detaches a table so the shutdown path can free it after copying
  /// (Fig 6 "delete table from heap").
  std::unique_ptr<Table> ReleaseTable(const std::string& name);

  /// Adopts a recovered table (restore path). Fails if the name exists.
  Status AdoptTable(std::unique_ptr<Table> table);

  /// Drops all tables (used to discard a partially-restored state before
  /// falling back to disk recovery).
  void Clear() { tables_.clear(); }

 private:
  // Creation-ordered for deterministic shutdown/restore ordering.
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_LEAF_MAP_H_
