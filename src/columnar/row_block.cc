#include "columnar/row_block.h"

#include <algorithm>

#include "util/varint.h"

namespace scuba {
namespace {

StatusOr<RowBlockColumn> BuildColumn(ColumnType declared,
                                     const ColumnValues& values) {
  switch (declared) {
    case ColumnType::kInt64:
      if (!std::holds_alternative<std::vector<int64_t>>(values)) {
        return Status::InvalidArgument("row block: column type mismatch");
      }
      return RowBlockColumn::BuildInt64(std::get<std::vector<int64_t>>(values));
    case ColumnType::kDouble:
      if (!std::holds_alternative<std::vector<double>>(values)) {
        return Status::InvalidArgument("row block: column type mismatch");
      }
      return RowBlockColumn::BuildDouble(std::get<std::vector<double>>(values));
    case ColumnType::kString:
      if (!std::holds_alternative<std::vector<std::string>>(values)) {
        return Status::InvalidArgument("row block: column type mismatch");
      }
      return RowBlockColumn::BuildString(
          std::get<std::vector<std::string>>(values));
  }
  return Status::InvalidArgument("row block: unknown column type");
}

size_t ValuesSize(const ColumnValues& values) {
  return std::visit([](const auto& v) { return v.size(); }, values);
}

}  // namespace

StatusOr<std::unique_ptr<RowBlock>> RowBlock::Build(
    Schema schema, std::vector<ColumnValues> columns,
    int64_t creation_timestamp) {
  if (schema.num_columns() != columns.size()) {
    return Status::InvalidArgument(
        "row block: schema/column count mismatch");
  }
  auto time_idx = schema.FindColumn(kTimeColumnName);
  if (!time_idx.has_value() ||
      schema.column(*time_idx).type != ColumnType::kInt64) {
    return Status::InvalidArgument(
        "row block: schema must contain int64 'time' column");
  }
  if (columns.empty() || ValuesSize(columns[0]) == 0) {
    return Status::InvalidArgument("row block: empty block");
  }
  const size_t row_count = ValuesSize(columns[0]);
  if (row_count > kMaxRowsPerBlock) {
    return Status::InvalidArgument("row block: too many rows");
  }
  for (const ColumnValues& v : columns) {
    if (ValuesSize(v) != row_count) {
      return Status::InvalidArgument("row block: ragged columns");
    }
  }

  const auto& times = std::get<std::vector<int64_t>>(columns[*time_idx]);
  RowBlockHeader header;
  header.row_count = static_cast<uint32_t>(row_count);
  header.creation_timestamp = creation_timestamp;
  header.min_time = *std::min_element(times.begin(), times.end());
  header.max_time = *std::max_element(times.begin(), times.end());

  std::vector<std::unique_ptr<RowBlockColumn>> built;
  built.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    SCUBA_ASSIGN_OR_RETURN(RowBlockColumn col,
                           BuildColumn(schema.column(i).type, columns[i]));
    header.size_bytes += col.total_bytes();
    built.push_back(std::make_unique<RowBlockColumn>(std::move(col)));
  }

  return std::unique_ptr<RowBlock>(
      new RowBlock(header, std::move(schema), std::move(built)));
}

StatusOr<std::unique_ptr<RowBlock>> RowBlock::FromParts(
    RowBlockHeader header, Schema schema,
    std::vector<std::unique_ptr<RowBlockColumn>> columns) {
  if (schema.num_columns() != columns.size()) {
    return Status::Corruption("row block: schema/column count mismatch");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return Status::Corruption("row block: missing column");
    }
    if (columns[i]->type() != schema.column(i).type) {
      return Status::Corruption("row block: column type mismatch vs schema");
    }
    if (columns[i]->item_count() != header.row_count) {
      return Status::Corruption("row block: column row count mismatch");
    }
  }
  return std::unique_ptr<RowBlock>(
      new RowBlock(header, std::move(schema), std::move(columns)));
}

const RowBlockColumn* RowBlock::ColumnByName(std::string_view name) const {
  auto idx = schema_.FindColumn(name);
  if (!idx.has_value()) return nullptr;
  return columns_[*idx].get();
}

uint64_t RowBlock::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) {
    if (col != nullptr) total += col->total_bytes();
  }
  return total;
}

void RowBlock::SerializeMeta(ByteBuffer* out) const {
  out->AppendU64(header_.size_bytes);
  out->AppendU32(header_.row_count);
  out->AppendU64(static_cast<uint64_t>(header_.min_time));
  out->AppendU64(static_cast<uint64_t>(header_.max_time));
  out->AppendU64(static_cast<uint64_t>(header_.creation_timestamp));
  schema_.Serialize(out);
  varint::AppendU64(out, columns_.size());
  for (const auto& col : columns_) {
    varint::AppendU64(out, col == nullptr ? 0 : col->total_bytes());
  }
}

StatusOr<RowBlock::Meta> RowBlock::ParseMeta(Slice* input) {
  constexpr size_t kFixedPart = 8 + 4 + 8 + 8 + 8;
  if (input->size() < kFixedPart) {
    return Status::Corruption("row block meta: truncated header");
  }
  Meta meta;
  const uint8_t* p = input->data();
  meta.header.size_bytes = ByteBuffer::DecodeU64(p);
  meta.header.row_count = ByteBuffer::DecodeU32(p + 8);
  meta.header.min_time = static_cast<int64_t>(ByteBuffer::DecodeU64(p + 12));
  meta.header.max_time = static_cast<int64_t>(ByteBuffer::DecodeU64(p + 20));
  meta.header.creation_timestamp =
      static_cast<int64_t>(ByteBuffer::DecodeU64(p + 28));
  input->RemovePrefix(kFixedPart);

  SCUBA_ASSIGN_OR_RETURN(meta.schema, Schema::Parse(input));

  uint64_t col_count = 0;
  if (!varint::ReadU64(input, &col_count)) {
    return Status::Corruption("row block meta: truncated column count");
  }
  if (col_count != meta.schema.num_columns()) {
    return Status::Corruption("row block meta: column count mismatch");
  }
  meta.column_sizes.reserve(col_count);
  for (uint64_t i = 0; i < col_count; ++i) {
    uint64_t sz = 0;
    if (!varint::ReadU64(input, &sz)) {
      return Status::Corruption("row block meta: truncated column size");
    }
    meta.column_sizes.push_back(sz);
  }
  return meta;
}

}  // namespace scuba
