#ifndef SCUBA_COLUMNAR_TYPES_H_
#define SCUBA_COLUMNAR_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace scuba {

/// Column value types supported by the store. Every table additionally has
/// a required int64 "time" column holding a unix timestamp (§2.1).
enum class ColumnType : uint8_t {
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

inline std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

/// A single cell value.
using Value = std::variant<int64_t, double, std::string>;

inline ColumnType ValueType(const Value& v) {
  switch (v.index()) {
    case 0:
      return ColumnType::kInt64;
    case 1:
      return ColumnType::kDouble;
    default:
      return ColumnType::kString;
  }
}

/// Default value used to fill a column for rows that did not supply it
/// (row blocks have a single schema; sparse rows are densified).
inline Value DefaultValue(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return Value(int64_t{0});
    case ColumnType::kDouble:
      return Value(0.0);
    case ColumnType::kString:
      return Value(std::string());
  }
  return Value(int64_t{0});
}

/// Name of the required timestamp column.
inline constexpr const char* kTimeColumnName = "time";

}  // namespace scuba

#endif  // SCUBA_COLUMNAR_TYPES_H_
