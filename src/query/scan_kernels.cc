#include "query/scan_kernels.h"

namespace scuba {
namespace scan {
namespace {

// In-place selection compaction: keeps rows passing `keep`. Writes trail
// reads (out index <= read index), so the single pass is safe.
template <typename Keep>
void Refine(const Keep& keep, SelVector* sel) {
  uint32_t* out = sel->data();
  size_t n = 0;
  for (uint32_t row : *sel) {
    if (keep(row)) out[n++] = row;
  }
  sel->resize(n);
}

// One tight loop per comparison operator: the operator dispatch happens
// once per chunk, not once per cell.
template <typename T>
void FilterCompare(CompareOp op, const std::vector<T>& v, const T& lit,
                   SelVector* sel) {
  switch (op) {
    case CompareOp::kEq:
      Refine([&](uint32_t r) { return v[r] == lit; }, sel);
      break;
    case CompareOp::kNe:
      Refine([&](uint32_t r) { return v[r] != lit; }, sel);
      break;
    case CompareOp::kLt:
      Refine([&](uint32_t r) { return v[r] < lit; }, sel);
      break;
    case CompareOp::kLe:
      Refine([&](uint32_t r) { return v[r] <= lit; }, sel);
      break;
    case CompareOp::kGt:
      Refine([&](uint32_t r) { return v[r] > lit; }, sel);
      break;
    case CompareOp::kGe:
      Refine([&](uint32_t r) { return v[r] >= lit; }, sel);
      break;
    case CompareOp::kContains:
    case CompareOp::kPrefix:
      // String-only; the typed string kernels handle these.
      sel->clear();
      break;
  }
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EvalStringOp(CompareOp op, const std::string& s,
                  const std::string& lit) {
  switch (op) {
    case CompareOp::kEq:
      return s == lit;
    case CompareOp::kNe:
      return s != lit;
    case CompareOp::kLt:
      return s < lit;
    case CompareOp::kLe:
      return s <= lit;
    case CompareOp::kGt:
      return s > lit;
    case CompareOp::kGe:
      return s >= lit;
    case CompareOp::kContains:
      return s.find(lit) != std::string::npos;
    case CompareOp::kPrefix:
      return HasPrefix(s, lit);
  }
  return false;
}

template <typename T>
bool ZoneCanPrune(CompareOp op, T zone_min, T zone_max, T lit) {
  switch (op) {
    case CompareOp::kEq:
      return lit < zone_min || lit > zone_max;
    case CompareOp::kNe:
      return zone_min == zone_max && zone_min == lit;
    case CompareOp::kLt:
      return !(zone_min < lit);
    case CompareOp::kLe:
      return !(zone_min <= lit);
    case CompareOp::kGt:
      return !(zone_max > lit);
    case CompareOp::kGe:
      return !(zone_max >= lit);
    case CompareOp::kContains:
    case CompareOp::kPrefix:
      return false;
  }
  return false;
}

}  // namespace

size_t ScanColumnSize(const ScanColumn& column) {
  return std::visit(
      [](const auto& v) -> size_t {
        if constexpr (std::is_same_v<std::decay_t<decltype(v)>,
                                     DictStringColumn>) {
          return v.codes.size();
        } else {
          return v.size();
        }
      },
      column);
}

Value ScanCellValue(const ScanColumn& column, uint32_t row) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return (*ints)[row];
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    return (*dbls)[row];
  }
  if (const auto* strs = std::get_if<std::vector<std::string>>(&column)) {
    return (*strs)[row];
  }
  const auto& dict = std::get<DictStringColumn>(column);
  return dict.dict[dict.codes[row]];
}

double ScanNumericCell(const ScanColumn& column, uint32_t row) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return static_cast<double>((*ints)[row]);
  }
  return std::get<std::vector<double>>(column)[row];
}

void SelectTimeRange(const std::vector<int64_t>& times, int64_t begin,
                     int64_t end, SelVector* sel) {
  sel->clear();
  sel->reserve(times.size());
  for (size_t r = 0; r < times.size(); ++r) {
    if (times[r] >= begin && times[r] <= end) {
      sel->push_back(static_cast<uint32_t>(r));
    }
  }
}

void FilterInt64(CompareOp op, const std::vector<int64_t>& values,
                 int64_t literal, SelVector* sel) {
  FilterCompare(op, values, literal, sel);
}

void FilterDouble(CompareOp op, const std::vector<double>& values,
                  double literal, SelVector* sel) {
  FilterCompare(op, values, literal, sel);
}

void FilterString(CompareOp op, const std::vector<std::string>& values,
                  const std::string& literal, SelVector* sel) {
  switch (op) {
    case CompareOp::kContains:
      Refine([&](uint32_t r) {
        return values[r].find(literal) != std::string::npos;
      }, sel);
      break;
    case CompareOp::kPrefix:
      Refine([&](uint32_t r) { return HasPrefix(values[r], literal); }, sel);
      break;
    default:
      FilterCompare(op, values, literal, sel);
      break;
  }
}

void FilterDictString(CompareOp op, const DictStringColumn& column,
                      const std::string& literal, SelVector* sel) {
  // Evaluate the predicate once per DISTINCT value...
  std::vector<uint8_t> keep(column.dict.size(), 0);
  size_t kept = 0;
  for (size_t i = 0; i < column.dict.size(); ++i) {
    if (EvalStringOp(op, column.dict[i], literal)) {
      keep[i] = 1;
      ++kept;
    }
  }
  // ...then filter rows by code. All-or-nothing dictionaries short-circuit.
  if (kept == 0) {
    sel->clear();
    return;
  }
  if (kept == column.dict.size()) return;
  const std::vector<uint32_t>& codes = column.codes;
  Refine([&](uint32_t r) { return keep[codes[r]] != 0; }, sel);
}

bool ZoneCanPruneInt64(CompareOp op, int64_t zone_min, int64_t zone_max,
                       int64_t literal) {
  return ZoneCanPrune(op, zone_min, zone_max, literal);
}

bool ZoneCanPruneDouble(CompareOp op, double zone_min, double zone_max,
                        double literal) {
  return ZoneCanPrune(op, zone_min, zone_max, literal);
}

bool ZoneAllMatchInt64(CompareOp op, int64_t zone_min, int64_t zone_max,
                       int64_t literal) {
  switch (op) {
    case CompareOp::kEq:
      return zone_min == zone_max && zone_min == literal;
    case CompareOp::kNe:
      return literal < zone_min || literal > zone_max;
    case CompareOp::kLt:
      return zone_max < literal;
    case CompareOp::kLe:
      return zone_max <= literal;
    case CompareOp::kGt:
      return zone_min > literal;
    case CompareOp::kGe:
      return zone_min >= literal;
    case CompareOp::kContains:
    case CompareOp::kPrefix:
      return false;
  }
  return false;
}

}  // namespace scan
}  // namespace scuba
