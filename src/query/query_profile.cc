#include "query/query_profile.h"

#include <cstdio>
#include <sstream>

namespace scuba {

void QueryProfile::Merge(const QueryProfile& other) {
  blocks_scanned += other.blocks_scanned;
  blocks_time_pruned += other.blocks_time_pruned;
  blocks_zone_pruned += other.blocks_zone_pruned;
  rows_scanned += other.rows_scanned;
  rows_matched += other.rows_matched;
  bytes_decoded += other.bytes_decoded;
  cache_hit_buckets += other.cache_hit_buckets;
  cache_miss_buckets += other.cache_miss_buckets;
  leaves_total += other.leaves_total;
  leaves_responded += other.leaves_responded;
  unavailable_leaves.insert(unavailable_leaves.end(),
                            other.unavailable_leaves.begin(),
                            other.unavailable_leaves.end());
  prune_micros += other.prune_micros;
  decode_micros += other.decode_micros;
  kernel_micros += other.kernel_micros;
  merge_micros += other.merge_micros;
  leaf_execute_micros += other.leaf_execute_micros;
  fanout_queue_wait_micros += other.fanout_queue_wait_micros;
  // query_id and wall_micros are aggregator-stamped: keep this side's.
}

std::string QueryProfile::ToJson() const {
  std::ostringstream os;
  os << "{\"query_id\": " << query_id
     << ", \"wall_micros\": " << wall_micros
     << ", \"blocks_scanned\": " << blocks_scanned
     << ", \"blocks_time_pruned\": " << blocks_time_pruned
     << ", \"blocks_zone_pruned\": " << blocks_zone_pruned
     << ", \"rows_scanned\": " << rows_scanned
     << ", \"rows_matched\": " << rows_matched
     << ", \"bytes_decoded\": " << bytes_decoded
     << ", \"cache_hit_buckets\": " << cache_hit_buckets
     << ", \"cache_miss_buckets\": " << cache_miss_buckets
     << ", \"leaves_total\": " << leaves_total
     << ", \"leaves_responded\": " << leaves_responded
     << ", \"unavailable_leaves\": [";
  for (size_t i = 0; i < unavailable_leaves.size(); ++i) {
    if (i > 0) os << ", ";
    os << unavailable_leaves[i];
  }
  os << "], \"prune_micros\": " << prune_micros
     << ", \"decode_micros\": " << decode_micros
     << ", \"kernel_micros\": " << kernel_micros
     << ", \"merge_micros\": " << merge_micros
     << ", \"leaf_execute_micros\": " << leaf_execute_micros
     << ", \"fanout_queue_wait_micros\": " << fanout_queue_wait_micros << "}";
  return os.str();
}

namespace {

std::string Millis(int64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(micros) / 1000.0);
  return buf;
}

}  // namespace

std::string QueryProfile::ToText() const {
  std::ostringstream os;
  os << "query " << query_id << ": " << Millis(wall_micros) << " wall, "
     << leaves_responded << "/" << leaves_total << " leaves";
  if (!unavailable_leaves.empty()) {
    os << " (unavailable:";
    for (uint32_t id : unavailable_leaves) os << " " << id;
    os << ")";
  }
  os << "\n  blocks: " << blocks_scanned << " scanned, " << blocks_time_pruned
     << " time-pruned, " << blocks_zone_pruned << " zone-pruned";
  double matched_pct =
      rows_scanned == 0 ? 0.0
                        : 100.0 * static_cast<double>(rows_matched) /
                              static_cast<double>(rows_scanned);
  char pct[16];
  std::snprintf(pct, sizeof(pct), "%.1f%%", matched_pct);
  os << "\n  rows:   " << rows_scanned << " scanned, " << rows_matched
     << " matched (" << pct << ")";
  os << "\n  bytes:  " << bytes_decoded << " decoded";
  if (cache_hit_buckets > 0 || cache_miss_buckets > 0) {
    os << "\n  cache:  " << cache_hit_buckets << " bucket hits, "
       << cache_miss_buckets << " misses";
  }
  os << "\n  stages: prune " << Millis(prune_micros) << ", decode "
     << Millis(decode_micros) << ", kernel " << Millis(kernel_micros)
     << ", merge " << Millis(merge_micros);
  os << "\n  fanout: " << Millis(leaf_execute_micros)
     << " summed leaf execute, " << Millis(fanout_queue_wait_micros)
     << " queue wait";
  return os.str();
}

}  // namespace scuba
