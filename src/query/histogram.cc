#include "query/histogram.h"

#include <algorithm>
#include <cmath>

namespace scuba {
namespace {

// log(kMaxValue / kMinValue) precomputed for the bucket transform.
const double kLogSpan = std::log(Histogram::kMaxValue / Histogram::kMinValue);

}  // namespace

int Histogram::BucketFor(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN, <= 0
  if (value >= kMaxValue) return kNumBuckets - 1;
  double fraction = std::log(value / kMinValue) / kLogSpan;
  int bucket = static_cast<int>(fraction * kNumBuckets);
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double Histogram::BucketMidpoint(int bucket) {
  // Geometric midpoint of [lo, hi) where the bounds are exponential in
  // the bucket index.
  double lo_frac = static_cast<double>(bucket) / kNumBuckets;
  double hi_frac = static_cast<double>(bucket + 1) / kNumBuckets;
  double lo = kMinValue * std::exp(lo_frac * kLogSpan);
  double hi = kMinValue * std::exp(hi_frac * kLogSpan);
  return std::sqrt(lo * hi);
}

void Histogram::Add(double value) {
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[static_cast<size_t>(BucketFor(value))];
  ++count_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.empty()) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] +=
        other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
}

double Histogram::ValueAtPercentile(double p) const {
  if (empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based, nearest-rank method).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<uint64_t>(rank, 1);

  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= rank) return BucketMidpoint(i);
  }
  return BucketMidpoint(kNumBuckets - 1);
}

}  // namespace scuba
