#ifndef SCUBA_QUERY_HISTOGRAM_H_
#define SCUBA_QUERY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace scuba {

/// Mergeable log-bucketed histogram for percentile aggregates (p50/p90/
/// p99 latency is the canonical Scuba dashboard). Like the rest of the
/// query engine's partial state, histograms from different leaves merge
/// exactly (bucket-wise addition), so percentile queries compose across
/// the cluster the same way count/sum/min/max do; only the within-bucket
/// interpolation is approximate (bounded by the bucket ratio, ~5.5%).
///
/// Geometry: 512 buckets spanning [kMinValue, kMaxValue) geometrically
/// (1e-3 .. 1e9; values outside clamp to the edge buckets). Storage is
/// lazy: a histogram that never sees a sample owns no memory.
class Histogram {
 public:
  static constexpr int kNumBuckets = 512;
  static constexpr double kMinValue = 1e-3;
  static constexpr double kMaxValue = 1e9;

  Histogram() = default;

  void Add(double value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Value at percentile `p` in [0, 100]: the geometric midpoint of the
  /// bucket containing the p-th sample. Returns 0 for an empty histogram.
  double ValueAtPercentile(double p) const;

 private:
  static int BucketFor(double value);
  static double BucketMidpoint(int bucket);

  std::vector<uint64_t> buckets_;  // empty until the first Add
  uint64_t count_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_QUERY_HISTOGRAM_H_
