#ifndef SCUBA_QUERY_SCAN_KERNELS_PACKED_INTERNAL_H_
#define SCUBA_QUERY_SCAN_KERNELS_PACKED_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "query/scan_kernels.h"

/// Shared between scan_kernels_packed.cc and the -mavx2 translation unit.
/// Everything here must stay inlineable without AVX2 codegen: the base TU
/// is compiled with the project's default flags.

namespace scuba {
namespace scan {
namespace internal {

/// Unsigned-domain comparison used by every packed kernel tier.
inline bool CompareU64(uint64_t v, CompareOp op, uint64_t lit) {
  switch (op) {
    case CompareOp::kEq: return v == lit;
    case CompareOp::kNe: return v != lit;
    case CompareOp::kLt: return v < lit;
    case CompareOp::kLe: return v <= lit;
    case CompareOp::kGt: return v > lit;
    case CompareOp::kGe: return v >= lit;
    case CompareOp::kContains:
    case CompareOp::kPrefix: return false;
  }
  return false;
}

/// Appends to *out every row in [0, count) whose lane `<op> literal`.
/// One implementation per SIMD tier; all produce identical output.
void DensePackedCompareScalar(const uint8_t* packed, size_t packed_size,
                              int width, size_t count, uint64_t literal,
                              CompareOp op, SelVector* out);
void DensePackedCompareSse2(const uint8_t* packed, size_t packed_size,
                            int width, size_t count, uint64_t literal,
                            CompareOp op, SelVector* out);
void DensePackedCompareAvx2(const uint8_t* packed, size_t packed_size,
                            int width, size_t count, uint64_t literal,
                            CompareOp op, SelVector* out);

/// True when the AVX2 translation unit was built with AVX2 codegen (the
/// toolchain supported -mavx2); runtime CPUID is checked separately.
bool Avx2CompiledIn();

}  // namespace internal
}  // namespace scan
}  // namespace scuba

#endif  // SCUBA_QUERY_SCAN_KERNELS_PACKED_INTERNAL_H_
