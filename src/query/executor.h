#ifndef SCUBA_QUERY_EXECUTOR_H_
#define SCUBA_QUERY_EXECUTOR_H_

#include "columnar/table.h"
#include "query/query.h"
#include "query/result.h"
#include "util/status.h"

namespace scuba {

/// Leaf-side query execution over one table:
///
///  1. Row blocks whose [min_time, max_time] misses the query's time range
///     are pruned without decoding ("the minimum and maximum timestamps
///     are used to decide whether to even look at a row block", §2.1).
///  2. Surviving blocks decode only the columns the query touches.
///  3. Rows are filtered (time range + predicates), grouped, aggregated.
///  4. Buffered (not-yet-sealed) rows are scanned too, so fresh inserts
///     are visible immediately.
///
/// Columns missing from a block's schema read as the column type's default
/// value (the same densification rule the write path applies). A column
/// whose type differs across blocks fails with InvalidArgument.
class LeafExecutor {
 public:
  static StatusOr<QueryResult> Execute(const Table& table, const Query& query);
};

}  // namespace scuba

#endif  // SCUBA_QUERY_EXECUTOR_H_
