#ifndef SCUBA_QUERY_EXECUTOR_H_
#define SCUBA_QUERY_EXECUTOR_H_

#include "columnar/table.h"
#include "query/query.h"
#include "query/query_context.h"
#include "query/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace scuba {

/// Leaf-side query execution over one table:
///
///  1. Row blocks whose [min_time, max_time] misses the query's time range
///     are pruned without decoding ("the minimum and maximum timestamps
///     are used to decide whether to even look at a row block", §2.1).
///  2. Per-column zone maps (layout v2 footers) extend the same pruning to
///     comparison predicates on int64/double columns: a block whose
///     min/max range cannot satisfy a predicate is skipped undecoded.
///  3. Surviving blocks are scanned with a vectorized kernel pipeline:
///     predicates are type-checked once per chunk and refine a selection
///     vector through tight typed loops; dictionary-encoded string columns
///     are filtered by dictionary code without materializing strings.
///     Decode is lazy — predicate columns first; group-by and aggregate
///     columns only if any row survived the filters.
///  4. Matching rows are grouped and aggregated into a per-block partial
///     result; partials merge in block order (deterministic for any thread
///     count). With ExecOptions::pool set, blocks fan out across the
///     worker pool; the merge is associative, the same property the
///     aggregation tree relies on across leaves.
///  5. Buffered (not-yet-sealed) rows are scanned too, so fresh inserts
///     are visible immediately.
///
/// Columns missing from a block's schema read as the column type's default
/// value (the same densification rule the write path applies). A column
/// whose type differs across blocks fails with InvalidArgument.
class LeafExecutor {
 public:
  /// Knobs for one execution.
  struct ExecOptions {
    /// Worker pool for the per-row-block fan-out; nullptr scans serially
    /// on the calling thread. Results are identical either way.
    ThreadPool* pool = nullptr;
    /// Observability context (query id, trace sampling). nullptr behaves
    /// like an unsampled context: the profile in the result is still
    /// filled (its counters are free), but no spans are recorded.
    const QueryContext* ctx = nullptr;
  };

  /// Vectorized execution (serial block scan).
  static StatusOr<QueryResult> Execute(const Table& table, const Query& query);

  /// Vectorized execution with explicit options (parallel block scan when
  /// options.pool is set).
  static StatusOr<QueryResult> Execute(const Table& table, const Query& query,
                                       const ExecOptions& options);

  /// The retained row-at-a-time reference implementation: one block at a
  /// time, full column materialization, per-cell predicate dispatch. Kept
  /// as the differential-testing oracle and the bench baseline; no zone
  /// map pruning, no dictionary-aware filtering, no lazy decode.
  static StatusOr<QueryResult> ExecuteScalar(const Table& table,
                                             const Query& query);
};

}  // namespace scuba

#endif  // SCUBA_QUERY_EXECUTOR_H_
