#include "query/query_context.h"

#include <atomic>

namespace scuba {

uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace scuba
