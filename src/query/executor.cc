#include "query/executor.h"

#include <set>
#include <unordered_map>

namespace scuba {
namespace {

// Decoded columns of one scan unit (a row block or the write buffer).
struct DecodedChunk {
  size_t row_count = 0;
  std::unordered_map<std::string, ColumnValues> columns;
};

// The set of column names a query touches.
std::set<std::string> NeededColumns(const Query& query) {
  std::set<std::string> needed;
  needed.insert(kTimeColumnName);
  for (const Predicate& p : query.predicates) needed.insert(p.column);
  for (const std::string& g : query.group_by) needed.insert(g);
  for (const Aggregate& a : query.aggregates) {
    if (a.op != AggregateOp::kCount) needed.insert(a.column);
  }
  return needed;
}

// Resolves each needed column to a single type across the table; absent
// columns default to the predicate literal's type when referenced by a
// predicate, otherwise int64.
StatusOr<std::unordered_map<std::string, ColumnType>> ResolveTypes(
    const Table& table, const Query& query,
    const std::set<std::string>& needed) {
  std::unordered_map<std::string, ColumnType> types;
  auto note = [&](const std::string& name, ColumnType type) -> Status {
    auto [it, inserted] = types.try_emplace(name, type);
    if (!inserted && it->second != type) {
      return Status::InvalidArgument("query: column '" + name +
                                     "' has conflicting types across blocks");
    }
    return Status::OK();
  };

  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    const RowBlock* block = table.row_block(b);
    if (block == nullptr) continue;
    for (const ColumnDef& col : block->schema().columns()) {
      if (needed.count(col.name) > 0) {
        SCUBA_RETURN_IF_ERROR(note(col.name, col.type));
      }
    }
  }
  for (const std::string& name : needed) {
    auto buffered = table.write_buffer().ColumnTypeOf(name);
    if (buffered.has_value()) SCUBA_RETURN_IF_ERROR(note(name, *buffered));
  }
  // Columns seen nowhere: infer from predicates, else default to int64.
  for (const Predicate& p : query.predicates) {
    types.try_emplace(p.column, ValueType(p.literal));
  }
  for (const std::string& name : needed) {
    types.try_emplace(name, ColumnType::kInt64);
  }
  return types;
}

ColumnValues DefaultColumn(ColumnType type, size_t rows) {
  switch (type) {
    case ColumnType::kInt64:
      return std::vector<int64_t>(rows, 0);
    case ColumnType::kDouble:
      return std::vector<double>(rows, 0.0);
    case ColumnType::kString:
      return std::vector<std::string>(rows);
  }
  return std::vector<int64_t>(rows, 0);
}

Status DecodeBlock(const RowBlock& block, const std::set<std::string>& needed,
                   const std::unordered_map<std::string, ColumnType>& types,
                   DecodedChunk* chunk) {
  chunk->row_count = block.header().row_count;
  for (const std::string& name : needed) {
    const RowBlockColumn* column = block.ColumnByName(name);
    ColumnType expected = types.at(name);
    if (column == nullptr) {
      chunk->columns.emplace(name, DefaultColumn(expected, chunk->row_count));
      continue;
    }
    switch (expected) {
      case ColumnType::kInt64: {
        std::vector<int64_t> values;
        SCUBA_RETURN_IF_ERROR(column->DecodeInt64(&values));
        chunk->columns.emplace(name, std::move(values));
        break;
      }
      case ColumnType::kDouble: {
        std::vector<double> values;
        SCUBA_RETURN_IF_ERROR(column->DecodeDouble(&values));
        chunk->columns.emplace(name, std::move(values));
        break;
      }
      case ColumnType::kString: {
        std::vector<std::string> values;
        SCUBA_RETURN_IF_ERROR(column->DecodeString(&values));
        chunk->columns.emplace(name, std::move(values));
        break;
      }
    }
  }
  return Status::OK();
}

Status DecodeBuffer(const WriteBuffer& buffer,
                    const std::set<std::string>& needed,
                    const std::unordered_map<std::string, ColumnType>& types,
                    DecodedChunk* chunk) {
  chunk->row_count = buffer.row_count();
  for (const std::string& name : needed) {
    auto values = buffer.MaterializeColumn(name);
    if (values.has_value()) {
      chunk->columns.emplace(name, std::move(*values));
    } else {
      chunk->columns.emplace(name,
                             DefaultColumn(types.at(name), chunk->row_count));
    }
  }
  return Status::OK();
}

// Three-way comparison of a column cell against a literal of the same type.
template <typename T>
int Compare3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

StatusOr<int> CompareCell(const ColumnValues& column, size_t row,
                          const Value& literal, const std::string& name) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    const int64_t* lit = std::get_if<int64_t>(&literal);
    if (lit == nullptr) {
      return Status::InvalidArgument("query: predicate on int64 column '" +
                                     name + "' needs an int64 literal");
    }
    return Compare3((*ints)[row], *lit);
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    const double* lit = std::get_if<double>(&literal);
    if (lit == nullptr) {
      return Status::InvalidArgument("query: predicate on double column '" +
                                     name + "' needs a double literal");
    }
    return Compare3((*dbls)[row], *lit);
  }
  const auto& strs = std::get<std::vector<std::string>>(column);
  const std::string* lit = std::get_if<std::string>(&literal);
  if (lit == nullptr) {
    return Status::InvalidArgument("query: predicate on string column '" +
                                   name + "' needs a string literal");
  }
  return Compare3(strs[row], *lit);
}

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kContains:
    case CompareOp::kPrefix:
      return false;  // handled by EvalPredicate before Compare3
  }
  return false;
}

// Full predicate evaluation for one cell, including the string-only text
// operators.
StatusOr<bool> EvalPredicate(const Predicate& pred, const ColumnValues& column,
                             size_t row) {
  if (pred.op == CompareOp::kContains || pred.op == CompareOp::kPrefix) {
    const auto* strs = std::get_if<std::vector<std::string>>(&column);
    const std::string* lit = std::get_if<std::string>(&pred.literal);
    if (strs == nullptr || lit == nullptr) {
      return Status::InvalidArgument(
          "query: '" + std::string(CompareOpName(pred.op)) +
          "' requires a string column and literal (column '" + pred.column +
          "')");
    }
    const std::string& cell = (*strs)[row];
    if (pred.op == CompareOp::kPrefix) {
      return cell.size() >= lit->size() &&
             cell.compare(0, lit->size(), *lit) == 0;
    }
    return cell.find(*lit) != std::string::npos;
  }
  SCUBA_ASSIGN_OR_RETURN(int cmp,
                         CompareCell(column, row, pred.literal, pred.column));
  return ApplyOp(pred.op, cmp);
}

Value CellValue(const ColumnValues& column, size_t row) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return (*ints)[row];
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    return (*dbls)[row];
  }
  return std::get<std::vector<std::string>>(column)[row];
}

StatusOr<double> NumericCell(const ColumnValues& column, size_t row,
                             const std::string& name) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return static_cast<double>((*ints)[row]);
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    return (*dbls)[row];
  }
  return Status::InvalidArgument("query: aggregate over string column '" +
                                 name + "'");
}

Status ProcessChunk(const DecodedChunk& chunk, const Query& query,
                    QueryResult* result) {
  const auto& times =
      std::get<std::vector<int64_t>>(chunk.columns.at(kTimeColumnName));

  const bool bucketed = query.time_bucket_seconds > 0;
  const size_t key_offset = bucketed ? 1 : 0;
  std::vector<Value> group_key(query.group_by.size() + key_offset);
  std::vector<QueryResult::Sample> samples(query.aggregates.size());

  for (size_t row = 0; row < chunk.row_count; ++row) {
    ++result->rows_scanned;
    if (times[row] < query.begin_time || times[row] > query.end_time) {
      continue;
    }
    bool match = true;
    for (const Predicate& pred : query.predicates) {
      SCUBA_ASSIGN_OR_RETURN(
          bool ok, EvalPredicate(pred, chunk.columns.at(pred.column), row));
      if (!ok) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++result->rows_matched;

    if (bucketed) {
      // Floor-divide toward negative infinity so pre-epoch times bucket
      // consistently.
      int64_t w = query.time_bucket_seconds;
      int64_t t = times[row];
      int64_t bucket = (t >= 0 ? t / w : (t - w + 1) / w) * w;
      group_key[0] = bucket;
    }
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      group_key[g + key_offset] =
          CellValue(chunk.columns.at(query.group_by[g]), row);
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const Aggregate& agg = query.aggregates[a];
      if (agg.op == AggregateOp::kCount) {
        samples[a] = {0.0, false};
      } else {
        SCUBA_ASSIGN_OR_RETURN(
            double v,
            NumericCell(chunk.columns.at(agg.column), row, agg.column));
        samples[a] = {v, true};
      }
    }
    result->Accumulate(group_key, samples);
  }
  return Status::OK();
}

}  // namespace

StatusOr<QueryResult> LeafExecutor::Execute(const Table& table,
                                            const Query& query) {
  SCUBA_RETURN_IF_ERROR(query.Validate());

  QueryResult result(query.aggregates);
  std::set<std::string> needed = NeededColumns(query);
  SCUBA_ASSIGN_OR_RETURN(auto types, ResolveTypes(table, query, needed));

  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    const RowBlock* block = table.row_block(b);
    if (block == nullptr) continue;
    if (!block->OverlapsTimeRange(query.begin_time, query.end_time)) {
      ++result.blocks_pruned;
      continue;
    }
    DecodedChunk chunk;
    SCUBA_RETURN_IF_ERROR(DecodeBlock(*block, needed, types, &chunk));
    SCUBA_RETURN_IF_ERROR(ProcessChunk(chunk, query, &result));
    ++result.blocks_scanned;
  }

  if (!table.write_buffer().empty()) {
    DecodedChunk chunk;
    SCUBA_RETURN_IF_ERROR(
        DecodeBuffer(table.write_buffer(), needed, types, &chunk));
    SCUBA_RETURN_IF_ERROR(ProcessChunk(chunk, query, &result));
  }
  return result;
}

}  // namespace scuba
