#include "query/executor.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/packed_column.h"
#include "query/scan_kernels.h"
#include "util/clock.h"

namespace scuba {
namespace {

using TypeMap = std::unordered_map<std::string, ColumnType>;

// Process-wide query-engine counters (scuba.query.executor.*). The
// decode/kernel split answers "where does scan time go": decode_micros is
// column decompression into scan form, kernel_micros is the vectorized
// predicate + aggregation work on the decoded vectors.
struct QueryMetrics {
  obs::Counter* queries;
  obs::Counter* blocks_scanned;
  obs::Counter* blocks_pruned;
  obs::Counter* rows_matched;
  obs::Histogram* decode_micros;
  obs::Histogram* kernel_micros;

  static QueryMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static QueryMetrics m{
        reg.GetCounter("scuba.query.executor.queries"),
        reg.GetCounter("scuba.query.executor.blocks_scanned"),
        reg.GetCounter("scuba.query.executor.blocks_pruned"),
        reg.GetCounter("scuba.query.executor.rows_matched"),
        reg.GetHistogram("scuba.query.executor.decode_micros"),
        reg.GetHistogram("scuba.query.executor.kernel_micros")};
    return m;
  }
};

// The set of column names a query touches.
std::set<std::string> NeededColumns(const Query& query) {
  std::set<std::string> needed;
  needed.insert(kTimeColumnName);
  for (const Predicate& p : query.predicates) needed.insert(p.column);
  for (const std::string& g : query.group_by) needed.insert(g);
  for (const Aggregate& a : query.aggregates) {
    if (a.op != AggregateOp::kCount) needed.insert(a.column);
  }
  return needed;
}

// Resolves each needed column to a single type across the table; absent
// columns default to the predicate literal's type when referenced by a
// predicate, otherwise int64.
StatusOr<TypeMap> ResolveTypes(const Table& table, const Query& query,
                               const std::set<std::string>& needed) {
  TypeMap types;
  auto note = [&](const std::string& name, ColumnType type) -> Status {
    auto [it, inserted] = types.try_emplace(name, type);
    if (!inserted && it->second != type) {
      return Status::InvalidArgument("query: column '" + name +
                                     "' has conflicting types across blocks");
    }
    return Status::OK();
  };

  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    const RowBlock* block = table.row_block(b);
    if (block == nullptr) continue;
    for (const ColumnDef& col : block->schema().columns()) {
      if (needed.count(col.name) > 0) {
        SCUBA_RETURN_IF_ERROR(note(col.name, col.type));
      }
    }
  }
  for (const std::string& name : needed) {
    auto buffered = table.write_buffer().ColumnTypeOf(name);
    if (buffered.has_value()) SCUBA_RETURN_IF_ERROR(note(name, *buffered));
  }
  // Columns seen nowhere: infer from predicates, else default to int64.
  for (const Predicate& p : query.predicates) {
    types.try_emplace(p.column, ValueType(p.literal));
  }
  for (const std::string& name : needed) {
    types.try_emplace(name, ColumnType::kInt64);
  }
  return types;
}

ColumnValues DefaultColumn(ColumnType type, size_t rows) {
  switch (type) {
    case ColumnType::kInt64:
      return std::vector<int64_t>(rows, 0);
    case ColumnType::kDouble:
      return std::vector<double>(rows, 0.0);
    case ColumnType::kString:
      return std::vector<std::string>(rows);
  }
  return std::vector<int64_t>(rows, 0);
}

// Floor-divide toward negative infinity so pre-epoch times bucket
// consistently.
int64_t TimeBucket(int64_t t, int64_t w) {
  return (t >= 0 ? t / w : (t - w + 1) / w) * w;
}

// ===========================================================================
// Scalar reference path (row-at-a-time; the differential-testing oracle).
// ===========================================================================

// Decoded columns of one scan unit (a row block or the write buffer).
struct DecodedChunk {
  size_t row_count = 0;
  std::unordered_map<std::string, ColumnValues> columns;
};

Status DecodeBlock(const RowBlock& block, const std::set<std::string>& needed,
                   const TypeMap& types, DecodedChunk* chunk) {
  chunk->row_count = block.header().row_count;
  for (const std::string& name : needed) {
    const RowBlockColumn* column = block.ColumnByName(name);
    ColumnType expected = types.at(name);
    if (column == nullptr) {
      chunk->columns.emplace(name, DefaultColumn(expected, chunk->row_count));
      continue;
    }
    switch (expected) {
      case ColumnType::kInt64: {
        std::vector<int64_t> values;
        SCUBA_RETURN_IF_ERROR(column->DecodeInt64(&values));
        chunk->columns.emplace(name, std::move(values));
        break;
      }
      case ColumnType::kDouble: {
        std::vector<double> values;
        SCUBA_RETURN_IF_ERROR(column->DecodeDouble(&values));
        chunk->columns.emplace(name, std::move(values));
        break;
      }
      case ColumnType::kString: {
        std::vector<std::string> values;
        SCUBA_RETURN_IF_ERROR(column->DecodeString(&values));
        chunk->columns.emplace(name, std::move(values));
        break;
      }
    }
  }
  return Status::OK();
}

Status DecodeBuffer(const WriteBuffer& buffer,
                    const std::set<std::string>& needed, const TypeMap& types,
                    DecodedChunk* chunk) {
  chunk->row_count = buffer.row_count();
  for (const std::string& name : needed) {
    auto values = buffer.MaterializeColumn(name);
    if (values.has_value()) {
      chunk->columns.emplace(name, std::move(*values));
    } else {
      chunk->columns.emplace(name,
                             DefaultColumn(types.at(name), chunk->row_count));
    }
  }
  return Status::OK();
}

// Three-way comparison of a column cell against a literal of the same type.
template <typename T>
int Compare3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

StatusOr<int> CompareCell(const ColumnValues& column, size_t row,
                          const Value& literal, const std::string& name) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    const int64_t* lit = std::get_if<int64_t>(&literal);
    if (lit == nullptr) {
      return Status::InvalidArgument("query: predicate on int64 column '" +
                                     name + "' needs an int64 literal");
    }
    return Compare3((*ints)[row], *lit);
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    const double* lit = std::get_if<double>(&literal);
    if (lit == nullptr) {
      return Status::InvalidArgument("query: predicate on double column '" +
                                     name + "' needs a double literal");
    }
    return Compare3((*dbls)[row], *lit);
  }
  const auto& strs = std::get<std::vector<std::string>>(column);
  const std::string* lit = std::get_if<std::string>(&literal);
  if (lit == nullptr) {
    return Status::InvalidArgument("query: predicate on string column '" +
                                   name + "' needs a string literal");
  }
  return Compare3(strs[row], *lit);
}

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kContains:
    case CompareOp::kPrefix:
      return false;  // handled by EvalPredicate before Compare3
  }
  return false;
}

// Full predicate evaluation for one cell, including the string-only text
// operators.
StatusOr<bool> EvalPredicate(const Predicate& pred, const ColumnValues& column,
                             size_t row) {
  if (pred.op == CompareOp::kContains || pred.op == CompareOp::kPrefix) {
    const auto* strs = std::get_if<std::vector<std::string>>(&column);
    const std::string* lit = std::get_if<std::string>(&pred.literal);
    if (strs == nullptr || lit == nullptr) {
      return Status::InvalidArgument(
          "query: '" + std::string(CompareOpName(pred.op)) +
          "' requires a string column and literal (column '" + pred.column +
          "')");
    }
    const std::string& cell = (*strs)[row];
    if (pred.op == CompareOp::kPrefix) {
      return cell.size() >= lit->size() &&
             cell.compare(0, lit->size(), *lit) == 0;
    }
    return cell.find(*lit) != std::string::npos;
  }
  SCUBA_ASSIGN_OR_RETURN(int cmp,
                         CompareCell(column, row, pred.literal, pred.column));
  return ApplyOp(pred.op, cmp);
}

Value CellValue(const ColumnValues& column, size_t row) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return (*ints)[row];
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    return (*dbls)[row];
  }
  return std::get<std::vector<std::string>>(column)[row];
}

StatusOr<double> NumericCell(const ColumnValues& column, size_t row,
                             const std::string& name) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return static_cast<double>((*ints)[row]);
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    return (*dbls)[row];
  }
  return Status::InvalidArgument("query: aggregate over string column '" +
                                 name + "'");
}

Status ProcessChunkScalar(const DecodedChunk& chunk, const Query& query,
                          QueryResult* result) {
  const auto& times =
      std::get<std::vector<int64_t>>(chunk.columns.at(kTimeColumnName));

  const bool bucketed = query.time_bucket_seconds > 0;
  const size_t key_offset = bucketed ? 1 : 0;
  std::vector<Value> group_key(query.group_by.size() + key_offset);
  std::vector<QueryResult::Sample> samples(query.aggregates.size());

  for (size_t row = 0; row < chunk.row_count; ++row) {
    ++result->rows_scanned;
    if (times[row] < query.begin_time || times[row] > query.end_time) {
      continue;
    }
    bool match = true;
    for (const Predicate& pred : query.predicates) {
      SCUBA_ASSIGN_OR_RETURN(
          bool ok, EvalPredicate(pred, chunk.columns.at(pred.column), row));
      if (!ok) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++result->rows_matched;

    if (bucketed) {
      group_key[0] = TimeBucket(times[row], query.time_bucket_seconds);
    }
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      group_key[g + key_offset] =
          CellValue(chunk.columns.at(query.group_by[g]), row);
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const Aggregate& agg = query.aggregates[a];
      if (agg.op == AggregateOp::kCount) {
        samples[a] = {0.0, false};
      } else {
        SCUBA_ASSIGN_OR_RETURN(
            double v,
            NumericCell(chunk.columns.at(agg.column), row, agg.column));
        samples[a] = {v, true};
      }
    }
    result->Accumulate(group_key, samples);
  }
  return Status::OK();
}

// ===========================================================================
// Vectorized path.
// ===========================================================================

// Lazily decoded columns of one scan unit. Predicate columns load first;
// group-by and aggregate columns only load if any row survived the filters.
//
// Get() passes the CURRENT selection to the loader so block columns can
// materialize only the selected rows (selection-vector-driven partial
// decode). Caching a partial column is sound because the selection only
// ever shrinks within a chunk: every later Get sees a subset of the rows
// the cached column was materialized for.
class LazyColumns {
 public:
  using Loader = std::function<Status(
      const std::string&, const scan::SelVector*, scan::ScanColumn*)>;

  LazyColumns(size_t rows, Loader loader)
      : rows_(rows), loader_(std::move(loader)) {}

  size_t rows() const { return rows_; }

  StatusOr<const scan::ScanColumn*> Get(const std::string& name,
                                        const scan::SelVector* sel) {
    auto it = cache_.find(name);
    if (it != cache_.end()) return &it->second;
    scan::ScanColumn column;
    SCUBA_RETURN_IF_ERROR(loader_(name, sel, &column));
    auto [ins, inserted] = cache_.emplace(name, std::move(column));
    (void)inserted;
    return &ins->second;
  }

 private:
  size_t rows_;
  Loader loader_;
  std::unordered_map<std::string, scan::ScanColumn> cache_;
};

// Lazily opened compressed-domain views of one row block's int64 columns
// (filter-before-decode): predicates and the time-range select run on the
// stored bytes, and the loader above materializes only surviving rows.
// Get() returns nullptr when a column cannot execute packed — absent,
// non-int64, a legacy chain, or a parse failure (the full-decode fallback
// then also surfaces corruption errors exactly as before).
class PackedChunk {
 public:
  PackedChunk(const RowBlock& block, const TypeMap& types)
      : block_(block), types_(types) {}

  PackedInt64Column* Get(const std::string& name) {
    auto it = views_.find(name);
    if (it == views_.end()) {
      std::unique_ptr<PackedInt64Column> view;
      auto type = types_.find(name);
      if (type != types_.end() && type->second == ColumnType::kInt64) {
        const RowBlockColumn* column = block_.ColumnByName(name);
        if (column != nullptr) view = PackedInt64Column::Open(*column);
        if (view != nullptr && view->rows() != block_.header().row_count) {
          view.reset();
        }
      }
      it = views_.emplace(name, std::move(view)).first;
    }
    return it->second.get();
  }

 private:
  const RowBlock& block_;
  const TypeMap& types_;
  std::unordered_map<std::string, std::unique_ptr<PackedInt64Column>> views_;
};

// Decodes one row block column into scan form, by the resolved type.
// String columns keep their dictionary form when the stored encoding has
// one; absent columns read as defaults (a one-entry dictionary for strings).
Status LoadBlockColumn(const RowBlock& block, const TypeMap& types,
                       size_t rows, const std::string& name,
                       scan::ScanColumn* out) {
  const RowBlockColumn* column = block.ColumnByName(name);
  ColumnType expected = types.at(name);
  if (column == nullptr) {
    switch (expected) {
      case ColumnType::kInt64:
        *out = std::vector<int64_t>(rows, 0);
        break;
      case ColumnType::kDouble:
        *out = std::vector<double>(rows, 0.0);
        break;
      case ColumnType::kString:
        *out = scan::DictStringColumn{{std::string()},
                                      std::vector<uint32_t>(rows, 0)};
        break;
    }
    return Status::OK();
  }
  switch (expected) {
    case ColumnType::kInt64: {
      std::vector<int64_t> values;
      SCUBA_RETURN_IF_ERROR(column->DecodeInt64(&values));
      *out = std::move(values);
      break;
    }
    case ColumnType::kDouble: {
      std::vector<double> values;
      SCUBA_RETURN_IF_ERROR(column->DecodeDouble(&values));
      *out = std::move(values);
      break;
    }
    case ColumnType::kString: {
      scan::DictStringColumn dict;
      Status dict_status =
          column->DecodeStringDictionary(&dict.dict, &dict.codes);
      if (dict_status.ok()) {
        *out = std::move(dict);
        break;
      }
      if (!dict_status.IsFailedPrecondition()) return dict_status;
      std::vector<std::string> values;
      SCUBA_RETURN_IF_ERROR(column->DecodeString(&values));
      *out = std::move(values);
      break;
    }
  }
  return Status::OK();
}

Status LoadBufferColumn(const WriteBuffer& buffer, const TypeMap& types,
                        const std::string& name, scan::ScanColumn* out) {
  auto values = buffer.MaterializeColumn(name);
  if (!values.has_value()) {
    ColumnValues defaults = DefaultColumn(types.at(name), buffer.row_count());
    std::visit([&](auto&& v) { *out = std::move(v); }, defaults);
    return Status::OK();
  }
  std::visit([&](auto&& v) { *out = std::move(v); }, *values);
  return Status::OK();
}

// Per-chunk predicate type validation (the scalar path's per-cell errors,
// raised once per chunk instead). Only called while rows are selected, so
// a chunk whose time filter selects nothing raises no error — exactly the
// rows the scalar path would never have evaluated.
Status CheckPredicateTypes(const Predicate& pred, ColumnType column_type) {
  if (pred.op == CompareOp::kContains || pred.op == CompareOp::kPrefix) {
    if (column_type != ColumnType::kString ||
        !std::holds_alternative<std::string>(pred.literal)) {
      return Status::InvalidArgument(
          "query: '" + std::string(CompareOpName(pred.op)) +
          "' requires a string column and literal (column '" + pred.column +
          "')");
    }
    return Status::OK();
  }
  switch (column_type) {
    case ColumnType::kInt64:
      if (!std::holds_alternative<int64_t>(pred.literal)) {
        return Status::InvalidArgument("query: predicate on int64 column '" +
                                       pred.column +
                                       "' needs an int64 literal");
      }
      break;
    case ColumnType::kDouble:
      if (!std::holds_alternative<double>(pred.literal)) {
        return Status::InvalidArgument("query: predicate on double column '" +
                                       pred.column +
                                       "' needs a double literal");
      }
      break;
    case ColumnType::kString:
      if (!std::holds_alternative<std::string>(pred.literal)) {
        return Status::InvalidArgument("query: predicate on string column '" +
                                       pred.column +
                                       "' needs a string literal");
      }
      break;
  }
  return Status::OK();
}

// Bytes a decoded scan column occupies — the profile's bytes_decoded.
// Deterministic per block (lazy decode decisions depend only on the query
// and the block contents), so the merged total is part of the
// determinism contract.
uint64_t ScanColumnBytes(const scan::ScanColumn& column) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    return ints->size() * sizeof(int64_t);
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    return dbls->size() * sizeof(double);
  }
  if (const auto* strs = std::get_if<std::vector<std::string>>(&column)) {
    uint64_t bytes = 0;
    for (const std::string& s : *strs) bytes += s.size();
    return bytes;
  }
  const auto& dict = std::get<scan::DictStringColumn>(column);
  uint64_t bytes = dict.codes.size() * sizeof(uint32_t);
  for (const std::string& s : dict.dict) bytes += s.size();
  return bytes;
}

// Refines `sel` with one (already type-checked) predicate.
void ApplyPredicate(const Predicate& pred, const scan::ScanColumn& column,
                    scan::SelVector* sel) {
  if (const auto* ints = std::get_if<std::vector<int64_t>>(&column)) {
    scan::FilterInt64(pred.op, *ints, std::get<int64_t>(pred.literal), sel);
    return;
  }
  if (const auto* dbls = std::get_if<std::vector<double>>(&column)) {
    scan::FilterDouble(pred.op, *dbls, std::get<double>(pred.literal), sel);
    return;
  }
  if (const auto* strs = std::get_if<std::vector<std::string>>(&column)) {
    scan::FilterString(pred.op, *strs, std::get<std::string>(pred.literal),
                       sel);
    return;
  }
  scan::FilterDictString(pred.op, std::get<scan::DictStringColumn>(column),
                         std::get<std::string>(pred.literal), sel);
}

// True when the block provably contains no row satisfying `pred`, decided
// from the column's footer zone map alone. Absent columns read as the
// type's default for every row, i.e. an implicit zone of [0, 0]. Columns
// with a v1 footer (no zone map) never prune. A literal whose type does
// not match the column never prunes, so the type error still surfaces at
// scan time exactly as in the scalar path.
bool ZonePrunesBlock(const RowBlock& block, const Predicate& pred,
                     ColumnType expected) {
  if (pred.op == CompareOp::kContains || pred.op == CompareOp::kPrefix) {
    return false;
  }
  if (ValueType(pred.literal) != expected) return false;
  const RowBlockColumn* column = block.ColumnByName(pred.column);
  if (expected == ColumnType::kInt64) {
    int64_t zone_min = 0, zone_max = 0;
    if (column != nullptr && !column->ZoneRangeInt64(&zone_min, &zone_max)) {
      return false;
    }
    return scan::ZoneCanPruneInt64(pred.op, zone_min, zone_max,
                                   std::get<int64_t>(pred.literal));
  }
  if (expected == ColumnType::kDouble) {
    double zone_min = 0.0, zone_max = 0.0;
    if (column != nullptr && !column->ZoneRangeDouble(&zone_min, &zone_max)) {
      return false;
    }
    return scan::ZoneCanPruneDouble(pred.op, zone_min, zone_max,
                                    std::get<double>(pred.literal));
  }
  return false;  // no zone maps for string columns
}

Status ProcessChunkVectorized(LazyColumns* cols, PackedChunk* packed,
                              const Query& query, const TypeMap& types,
                              QueryResult* result) {
  result->rows_scanned += cols->rows();
  result->profile().rows_scanned += cols->rows();

  // Filter-before-decode: when the time column's encoding supports it, the
  // initial time-range selection comes straight off the packed bytes —
  // mini-block (min,max) bounds admit or reject whole blocks, and only the
  // straddling ones decode. `times` stays null until (and unless) the
  // bucketed group path needs the actual values of the surviving rows.
  scan::SelVector sel;
  const std::vector<int64_t>* times = nullptr;
  PackedInt64Column* packed_time =
      packed != nullptr ? packed->Get(kTimeColumnName) : nullptr;
  if (packed_time != nullptr) {
    SCUBA_RETURN_IF_ERROR(
        packed_time->SelectTimeRange(query.begin_time, query.end_time, &sel));
  } else {
    SCUBA_ASSIGN_OR_RETURN(const scan::ScanColumn* time_col,
                           cols->Get(kTimeColumnName, nullptr));
    times = std::get_if<std::vector<int64_t>>(time_col);
    if (times == nullptr) {
      return Status::InvalidArgument("query: 'time' column is not int64");
    }
    scan::SelectTimeRange(*times, query.begin_time, query.end_time, &sel);
  }

  for (const Predicate& pred : query.predicates) {
    if (sel.empty()) break;
    SCUBA_RETURN_IF_ERROR(CheckPredicateTypes(pred, types.at(pred.column)));
    // The type check above passed, so an int64 column implies an int64
    // literal; packed evaluation is bit-identical to decode + FilterInt64.
    PackedInt64Column* view =
        packed != nullptr ? packed->Get(pred.column) : nullptr;
    if (view != nullptr) {
      SCUBA_RETURN_IF_ERROR(
          view->Filter(pred.op, std::get<int64_t>(pred.literal), &sel));
      continue;
    }
    SCUBA_ASSIGN_OR_RETURN(const scan::ScanColumn* col,
                           cols->Get(pred.column, &sel));
    ApplyPredicate(pred, *col, &sel);
  }
  result->rows_matched += sel.size();
  result->profile().rows_matched += sel.size();
  QueryMetrics::Get().rows_matched->Add(sel.size());
  if (sel.empty()) return Status::OK();

  // Only now — with survivors known — decode group-by/aggregate columns,
  // and only the surviving rows of each.
  std::vector<const scan::ScanColumn*> group_cols(query.group_by.size());
  for (size_t g = 0; g < query.group_by.size(); ++g) {
    SCUBA_ASSIGN_OR_RETURN(group_cols[g], cols->Get(query.group_by[g], &sel));
  }
  std::vector<const scan::ScanColumn*> agg_cols(query.aggregates.size(),
                                                nullptr);
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    const Aggregate& agg = query.aggregates[a];
    if (agg.op == AggregateOp::kCount) continue;
    if (types.at(agg.column) == ColumnType::kString) {
      return Status::InvalidArgument("query: aggregate over string column '" +
                                     agg.column + "'");
    }
    SCUBA_ASSIGN_OR_RETURN(agg_cols[a], cols->Get(agg.column, &sel));
  }

  const bool bucketed = query.time_bucket_seconds > 0;
  if (bucketed && times == nullptr) {
    // Packed time select skipped the decode; the bucketed group key needs
    // the survivors' timestamps after all.
    SCUBA_ASSIGN_OR_RETURN(const scan::ScanColumn* time_col,
                           cols->Get(kTimeColumnName, &sel));
    times = std::get_if<std::vector<int64_t>>(time_col);
    if (times == nullptr) {
      return Status::InvalidArgument("query: 'time' column is not int64");
    }
  }
  const size_t key_offset = bucketed ? 1 : 0;
  std::vector<Value> group_key(query.group_by.size() + key_offset);
  std::vector<QueryResult::Sample> samples(query.aggregates.size());

  for (uint32_t row : sel) {
    if (bucketed) {
      group_key[0] = TimeBucket((*times)[row], query.time_bucket_seconds);
    }
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      group_key[g + key_offset] = scan::ScanCellValue(*group_cols[g], row);
    }
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      if (agg_cols[a] == nullptr) {
        samples[a] = {0.0, false};
      } else {
        samples[a] = {scan::ScanNumericCell(*agg_cols[a], row), true};
      }
    }
    result->Accumulate(group_key, samples);
  }
  return Status::OK();
}

Status ScanBlock(const RowBlock& block, size_t block_index,
                 const Query& query, const TypeMap& types,
                 const QueryContext* ctx, QueryResult* result) {
  QueryMetrics& metrics = QueryMetrics::Get();
  obs::PhaseTracer* tracer = ctx != nullptr ? ctx->tracer : nullptr;
  // A worker thread has no open span, so the block span attaches under the
  // explicit parent (the leaf's execute span); on the calling thread the
  // per-thread nesting wins and gives the same shape.
  obs::PhaseTracer::Span block_span(
      tracer, ctx != nullptr ? ctx->parent_span : -1,
      "block " + std::to_string(block_index));
  const int64_t span_start = tracer != nullptr ? tracer->ElapsedMicros() : 0;

  const size_t rows = block.header().row_count;
  int64_t decode_micros = 0;
  uint64_t decode_bytes = 0;
  PackedChunk packed(block, types);
  LazyColumns cols(rows, [&](const std::string& name,
                             const scan::SelVector* sel,
                             scan::ScanColumn* out) {
    Stopwatch decode_watch;
    Status s;
    PackedInt64Column* view = packed.Get(name);
    if (view != nullptr) {
      // Partial decode: only the mini-blocks (or dictionary codes) covering
      // the selected rows materialize.
      std::vector<int64_t> values;
      s = view->MaterializeInto(sel, &values);
      if (s.ok()) *out = std::move(values);
    } else {
      s = LoadBlockColumn(block, types, rows, name, out);
    }
    decode_micros += decode_watch.ElapsedMicros();
    if (s.ok()) decode_bytes += ScanColumnBytes(*out);
    return s;
  });
  Stopwatch scan_watch;
  SCUBA_RETURN_IF_ERROR(
      ProcessChunkVectorized(&cols, &packed, query, types, result));
  // Decode happens lazily inside the kernel pass, so the split is
  // total-minus-decode rather than two disjoint timers.
  int64_t total_micros = scan_watch.ElapsedMicros();
  int64_t kernel_micros = std::max<int64_t>(0, total_micros - decode_micros);
  metrics.decode_micros->Record(static_cast<uint64_t>(decode_micros));
  metrics.kernel_micros->Record(static_cast<uint64_t>(kernel_micros));
  metrics.blocks_scanned->Add(1);
  ++result->blocks_scanned;

  QueryProfile& profile = result->profile();
  ++profile.blocks_scanned;
  profile.decode_micros += decode_micros;
  profile.kernel_micros += kernel_micros;
  profile.bytes_decoded += decode_bytes;

  if (tracer != nullptr) {
    // Decode interleaves with the kernel (lazy per column), so the
    // timeline shows the split as two back-to-back synthesized children
    // whose durations are the measured totals — the same presentation the
    // restore path uses for its disk read/translate split.
    block_span.AddBytes(decode_bytes);
    tracer->AddCompletedSpan("decode", span_start, span_start + decode_micros,
                             decode_bytes);
    tracer->AddCompletedSpan("kernel", span_start + decode_micros,
                             span_start + decode_micros + kernel_micros);
  }
  return Status::OK();
}

}  // namespace

StatusOr<QueryResult> LeafExecutor::Execute(const Table& table,
                                            const Query& query) {
  return Execute(table, query, ExecOptions{});
}

StatusOr<QueryResult> LeafExecutor::Execute(const Table& table,
                                            const Query& query,
                                            const ExecOptions& options) {
  SCUBA_RETURN_IF_ERROR(query.Validate());
  QueryMetrics& metrics = QueryMetrics::Get();
  metrics.queries->Add(1);

  QueryResult result(query.aggregates);
  if (options.ctx != nullptr) result.profile().query_id = options.ctx->query_id;
  std::set<std::string> needed = NeededColumns(query);
  SCUBA_ASSIGN_OR_RETURN(TypeMap types, ResolveTypes(table, query, needed));

  // Predicates evaluate left to right with short-circuiting, so pruning a
  // block via predicate j is only equivalent to scanning it when
  // predicates 1..j-1 cannot fail on it: a mistyped earlier predicate
  // would have raised its error on the first selected row. Only the
  // well-typed predicate prefix is prune-eligible; a block that a later
  // predicate could have pruned is scanned instead so the error surfaces
  // exactly as in the scalar engine.
  size_t prunable_predicates = 0;
  while (prunable_predicates < query.predicates.size()) {
    const Predicate& pred = query.predicates[prunable_predicates];
    if (!CheckPredicateTypes(pred, types.at(pred.column)).ok()) break;
    ++prunable_predicates;
  }

  obs::PhaseTracer* tracer = options.ctx != nullptr ? options.ctx->tracer
                                                    : nullptr;
  const int parent_span = options.ctx != nullptr ? options.ctx->parent_span
                                                 : -1;

  // Pruning pass: header time range first, then per-predicate zone maps.
  // Both decide from fixed-size metadata without decoding the block.
  Stopwatch prune_watch;
  std::vector<const RowBlock*> to_scan;
  to_scan.reserve(table.num_row_blocks());
  {
    obs::PhaseTracer::Span prune_span(tracer, parent_span, "prune");
    for (size_t b = 0; b < table.num_row_blocks(); ++b) {
      const RowBlock* block = table.row_block(b);
      if (block == nullptr) continue;
      if (!block->OverlapsTimeRange(query.begin_time, query.end_time)) {
        ++result.blocks_pruned;
        ++result.profile().blocks_time_pruned;
        metrics.blocks_pruned->Add(1);
        continue;
      }
      bool pruned = false;
      for (size_t p = 0; p < prunable_predicates; ++p) {
        const Predicate& pred = query.predicates[p];
        if (ZonePrunesBlock(*block, pred, types.at(pred.column))) {
          pruned = true;
          break;
        }
      }
      if (pruned) {
        ++result.blocks_pruned;
        ++result.profile().blocks_zone_pruned;
        metrics.blocks_pruned->Add(1);
        continue;
      }
      to_scan.push_back(block);
    }
  }
  result.profile().prune_micros = prune_watch.ElapsedMicros();

  // One partial per surviving block, merged in block order below: the
  // result is bit-identical for every thread count, serial included.
  std::vector<QueryResult> partials(to_scan.size(),
                                    QueryResult(query.aggregates));
  SCUBA_RETURN_IF_ERROR(
      ParallelFor(options.pool, to_scan.size(), [&](size_t i) {
        return ScanBlock(*to_scan[i], i, query, types, options.ctx,
                         &partials[i]);
      }));
  Stopwatch merge_watch;
  {
    obs::PhaseTracer::Span merge_span(tracer, parent_span, "merge blocks");
    for (const QueryResult& partial : partials) result.Merge(partial);
  }
  // Stamped after the block merge (partials carry no merge time of their
  // own, so the += below only ever adds the buffer partial's zero).
  result.profile().merge_micros += merge_watch.ElapsedMicros();

  // The write buffer scans last, on the calling thread, into its own
  // partial: merging it like a block keeps aggregate rounding identical to
  // a run where the same rows have already been sealed into a block (the
  // restart round-trip property tests compare results bit-for-bit).
  if (!table.write_buffer().empty()) {
    const WriteBuffer& buffer = table.write_buffer();
    obs::PhaseTracer::Span buffer_span(tracer, parent_span, "write buffer");
    int64_t decode_micros = 0;
    uint64_t decode_bytes = 0;
    LazyColumns cols(buffer.row_count(),
                     [&](const std::string& name, const scan::SelVector* sel,
                         scan::ScanColumn* out) {
                       (void)sel;  // buffer rows are already materialized
                       Stopwatch decode_watch;
                       Status s = LoadBufferColumn(buffer, types, name, out);
                       decode_micros += decode_watch.ElapsedMicros();
                       if (s.ok()) decode_bytes += ScanColumnBytes(*out);
                       return s;
                     });
    QueryResult partial(query.aggregates);
    Stopwatch scan_watch;
    SCUBA_RETURN_IF_ERROR(
        ProcessChunkVectorized(&cols, nullptr, query, types, &partial));
    QueryProfile& buffer_profile = partial.profile();
    buffer_profile.decode_micros = decode_micros;
    buffer_profile.kernel_micros =
        std::max<int64_t>(0, scan_watch.ElapsedMicros() - decode_micros);
    buffer_profile.bytes_decoded = decode_bytes;
    buffer_span.AddBytes(decode_bytes);
    result.Merge(partial);
  }
  return result;
}

StatusOr<QueryResult> LeafExecutor::ExecuteScalar(const Table& table,
                                                  const Query& query) {
  SCUBA_RETURN_IF_ERROR(query.Validate());

  QueryResult result(query.aggregates);
  std::set<std::string> needed = NeededColumns(query);
  SCUBA_ASSIGN_OR_RETURN(auto types, ResolveTypes(table, query, needed));

  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    const RowBlock* block = table.row_block(b);
    if (block == nullptr) continue;
    if (!block->OverlapsTimeRange(query.begin_time, query.end_time)) {
      ++result.blocks_pruned;
      continue;
    }
    DecodedChunk chunk;
    SCUBA_RETURN_IF_ERROR(DecodeBlock(*block, needed, types, &chunk));
    SCUBA_RETURN_IF_ERROR(ProcessChunkScalar(chunk, query, &result));
    ++result.blocks_scanned;
  }

  if (!table.write_buffer().empty()) {
    DecodedChunk chunk;
    SCUBA_RETURN_IF_ERROR(
        DecodeBuffer(table.write_buffer(), needed, types, &chunk));
    SCUBA_RETURN_IF_ERROR(ProcessChunkScalar(chunk, query, &result));
  }
  // The oracle fills the profile's coarse counters from its legacy stats
  // (it prunes on time range only and never tracks decode), so profile
  // fields in bench output stay meaningful on the scalar legs.
  QueryProfile& profile = result.profile();
  profile.blocks_scanned = result.blocks_scanned;
  profile.blocks_time_pruned = result.blocks_pruned;
  profile.rows_scanned = result.rows_scanned;
  profile.rows_matched = result.rows_matched;
  return result;
}

}  // namespace scuba
