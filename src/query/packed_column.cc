#include "query/packed_column.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "compress/bitpack.h"
#include "compress/column_codec.h"
#include "compress/dictionary.h"
#include "obs/metrics.h"

namespace scuba {
namespace {

// Mini-block fate breakdown, for the __scuba_stats compressed-scan panel:
// pruned/allmatch blocks never touch the payload; only `decoded` blocks pay
// the bitpack unpack + prefix sum.
struct PackedColumnMetrics {
  obs::Counter* miniblocks_pruned;
  obs::Counter* miniblocks_allmatch;
  obs::Counter* miniblocks_decoded;
  obs::Counter* dict_filters;

  static PackedColumnMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static PackedColumnMetrics m{
        reg.GetCounter("scuba.query.packed.miniblocks_pruned"),
        reg.GetCounter("scuba.query.packed.miniblocks_allmatch"),
        reg.GetCounter("scuba.query.packed.miniblocks_decoded"),
        reg.GetCounter("scuba.query.packed.dict_filters")};
    return m;
  }
};

// Signed comparison with FilterInt64's exact semantics (kContains/kPrefix
// never match an int64).
bool CompareI64(int64_t v, CompareOp op, int64_t literal) {
  switch (op) {
    case CompareOp::kEq: return v == literal;
    case CompareOp::kNe: return v != literal;
    case CompareOp::kLt: return v < literal;
    case CompareOp::kLe: return v <= literal;
    case CompareOp::kGt: return v > literal;
    case CompareOp::kGe: return v >= literal;
    default: return false;
  }
}

}  // namespace

std::unique_ptr<PackedInt64Column> PackedInt64Column::Open(
    const RowBlockColumn& column) {
  if (column.type() != ColumnType::kInt64) return nullptr;
  const size_t count = column.item_count();
  if (count == 0) return nullptr;
  const column_codec::ChainCode chain = column.compression_chain();

  auto view = std::unique_ptr<PackedInt64Column>(new PackedInt64Column());
  view->count_ = count;

  if (column_codec::IsDictBitPackChain(chain)) {
    Slice data;
    if (!column_codec::UnwrapLz4(chain, column.data_slice(),
                                 &view->lz4_storage_, &data)
             .ok()) {
      return nullptr;
    }
    if (!dictionary::ParseIntDict(column.dict_slice(), &view->dict_).ok()) {
      return nullptr;
    }
    if (view->dict_.empty()) return nullptr;
    if (!column_codec::ReadPackedCodes(data, count, &view->width_,
                                       &view->codes_)
             .ok()) {
      return nullptr;
    }
    view->mode_ = Mode::kDict;
    return view;
  }

  if (column_codec::IsMiniBlockChain(chain)) {
    Slice data;
    if (!column_codec::UnwrapLz4(chain, column.data_slice(),
                                 &view->lz4_storage_, &data)
             .ok()) {
      return nullptr;
    }
    if (!delta::ParseMiniBlocks(data, count, &view->dir_, &view->payload_)
             .ok()) {
      return nullptr;
    }
    if (view->dir_.empty()) return nullptr;
    view->mb_rows_ =
        view->dir_.size() > 1 ? view->dir_[1].row_begin : count;
    view->mode_ = Mode::kMiniBlock;
    return view;
  }

  return nullptr;  // legacy bitpack / unexpected chain: full decode path
}

Status PackedInt64Column::EnsureDecoded(size_t mb_index) {
  if (cache_.empty()) {
    cache_.assign(count_, 0);
    mb_decoded_.assign(dir_.size(), 0);
  }
  if (mb_decoded_[mb_index]) return Status::OK();
  const delta::MiniBlock& mb = dir_[mb_index];
  SCUBA_RETURN_IF_ERROR(
      delta::DecodeMiniBlock(mb, payload_, cache_.data() + mb.row_begin));
  mb_decoded_[mb_index] = 1;
  PackedColumnMetrics::Get().miniblocks_decoded->Add(1);
  return Status::OK();
}

Status PackedInt64Column::Filter(CompareOp op, int64_t literal,
                                 scan::SelVector* sel) {
  if (sel->empty()) return Status::OK();

  if (mode_ == Mode::kDict) {
    auto& metrics = PackedColumnMetrics::Get();
    metrics.dict_filters->Add(1);
    // The predicate runs once per distinct entry; rows then filter by code
    // in the packed domain (single-code predicates collapse to an Eq/Ne
    // compare, which takes the SIMD kernels instead of the bitmap probe).
    std::vector<uint8_t> keep(dict_.size(), 0);
    size_t kept = 0;
    for (size_t i = 0; i < dict_.size(); ++i) {
      if (CompareI64(dict_[i], op, literal)) {
        keep[i] = 1;
        ++kept;
      }
    }
    if (kept == 0) {
      sel->clear();
      return Status::OK();
    }
    if (kept == keep.size()) return Status::OK();
    if (kept == 1 || kept + 1 == keep.size()) {
      const uint8_t needle = kept == 1 ? 1 : 0;
      const size_t code = static_cast<size_t>(
          std::find(keep.begin(), keep.end(), needle) - keep.begin());
      scan::FilterPackedU64(needle ? CompareOp::kEq : CompareOp::kNe,
                            codes_.data(), codes_.size(), width_, count_,
                            static_cast<uint64_t>(code), sel);
      return Status::OK();
    }
    scan::FilterPackedByBitmap(codes_.data(), codes_.size(), width_, count_,
                               keep, sel);
    return Status::OK();
  }

  // Mini-block mode: walk the selection one block at a time. Blocks whose
  // (min,max) bounds decide the predicate wholesale never decode.
  if (op == CompareOp::kContains || op == CompareOp::kPrefix) {
    sel->clear();  // string-only ops: FilterInt64 clears too
    return Status::OK();
  }
  auto& metrics = PackedColumnMetrics::Get();
  scan::SelVector out;
  out.reserve(sel->size());
  const size_t n = sel->size();
  size_t i = 0;
  while (i < n) {
    const size_t mb_index = (*sel)[i] / mb_rows_;
    const delta::MiniBlock& mb = dir_[mb_index];
    const uint32_t mb_end = static_cast<uint32_t>(mb.row_begin + mb.rows);
    size_t j = i;
    while (j < n && (*sel)[j] < mb_end) ++j;
    if (scan::ZoneCanPruneInt64(op, mb.min, mb.max, literal)) {
      metrics.miniblocks_pruned->Add(1);
      i = j;
      continue;
    }
    if (scan::ZoneAllMatchInt64(op, mb.min, mb.max, literal)) {
      metrics.miniblocks_allmatch->Add(1);
      out.insert(out.end(), sel->begin() + i, sel->begin() + j);
      i = j;
      continue;
    }
    SCUBA_RETURN_IF_ERROR(EnsureDecoded(mb_index));
    for (; i < j; ++i) {
      const uint32_t row = (*sel)[i];
      if (CompareI64(cache_[row], op, literal)) out.push_back(row);
    }
  }
  *sel = std::move(out);
  return Status::OK();
}

Status PackedInt64Column::SelectTimeRange(int64_t begin, int64_t end,
                                          scan::SelVector* sel) {
  sel->clear();
  if (mode_ == Mode::kDict) {
    std::vector<uint8_t> keep(dict_.size(), 0);
    size_t kept = 0;
    for (size_t i = 0; i < dict_.size(); ++i) {
      if (dict_[i] >= begin && dict_[i] <= end) {
        keep[i] = 1;
        ++kept;
      }
    }
    if (kept == 0) return Status::OK();
    sel->resize(count_);
    std::iota(sel->begin(), sel->end(), 0u);
    if (kept == keep.size()) return Status::OK();
    scan::FilterPackedByBitmap(codes_.data(), codes_.size(), width_, count_,
                               keep, sel);
    return Status::OK();
  }

  auto& metrics = PackedColumnMetrics::Get();
  sel->reserve(count_);
  for (size_t k = 0; k < dir_.size(); ++k) {
    const delta::MiniBlock& mb = dir_[k];
    if (mb.min > end || mb.max < begin) {
      metrics.miniblocks_pruned->Add(1);
      continue;
    }
    const uint32_t row_begin = static_cast<uint32_t>(mb.row_begin);
    const uint32_t row_end = static_cast<uint32_t>(mb.row_begin + mb.rows);
    if (mb.min >= begin && mb.max <= end) {
      metrics.miniblocks_allmatch->Add(1);
      for (uint32_t r = row_begin; r < row_end; ++r) sel->push_back(r);
      continue;
    }
    SCUBA_RETURN_IF_ERROR(EnsureDecoded(k));
    for (uint32_t r = row_begin; r < row_end; ++r) {
      if (cache_[r] >= begin && cache_[r] <= end) sel->push_back(r);
    }
  }
  return Status::OK();
}

Status PackedInt64Column::MaterializeInto(const scan::SelVector* sel,
                                          std::vector<int64_t>* out) {
  if (mode_ == Mode::kDict) {
    if (sel == nullptr || sel->size() == count_) {
      std::vector<uint64_t> codes;
      SCUBA_RETURN_IF_ERROR(
          bitpack::Unpack(codes_, width_, count_, &codes));
      out->resize(count_);
      for (size_t i = 0; i < count_; ++i) {
        if (codes[i] >= dict_.size()) {
          return Status::Corruption("packed column: code out of dict range");
        }
        (*out)[i] = dict_[codes[i]];
      }
      return Status::OK();
    }
    out->assign(count_, 0);
    for (const uint32_t row : *sel) {
      const uint64_t code =
          scan::ExtractPackedLane(codes_.data(), codes_.size(), width_, row);
      if (code >= dict_.size()) {
        return Status::Corruption("packed column: code out of dict range");
      }
      (*out)[row] = dict_[code];
    }
    return Status::OK();
  }

  out->assign(count_, 0);
  auto& metrics = PackedColumnMetrics::Get();
  if (sel == nullptr) {
    for (const delta::MiniBlock& mb : dir_) {
      SCUBA_RETURN_IF_ERROR(
          delta::DecodeMiniBlock(mb, payload_, out->data() + mb.row_begin));
      metrics.miniblocks_decoded->Add(1);
    }
    return Status::OK();
  }
  const size_t n = sel->size();
  size_t i = 0;
  while (i < n) {
    const size_t mb_index = (*sel)[i] / mb_rows_;
    const delta::MiniBlock& mb = dir_[mb_index];
    const uint32_t mb_end = static_cast<uint32_t>(mb.row_begin + mb.rows);
    if (!cache_.empty() && mb_decoded_[mb_index]) {
      std::copy(cache_.begin() + mb.row_begin,
                cache_.begin() + mb.row_begin + mb.rows,
                out->begin() + mb.row_begin);
    } else {
      SCUBA_RETURN_IF_ERROR(
          delta::DecodeMiniBlock(mb, payload_, out->data() + mb.row_begin));
      metrics.miniblocks_decoded->Add(1);
    }
    while (i < n && (*sel)[i] < mb_end) ++i;
  }
  return Status::OK();
}

}  // namespace scuba
