#ifndef SCUBA_QUERY_PACKED_COLUMN_H_
#define SCUBA_QUERY_PACKED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "columnar/row_block_column.h"
#include "compress/delta.h"
#include "query/scan_kernels.h"
#include "util/byte_buffer.h"
#include "util/slice.h"
#include "util/status.h"

namespace scuba {

/// Compressed-domain view of one int64 row block column: predicates run on
/// the stored bytes (C-Store style), and only rows that survive every
/// filter materialize.
///
/// Two encoded forms are executable without decode (the chains EncodeInt64
/// emits):
///   dict+bitpack[+lz4]          predicates evaluate once per dictionary
///                               entry, rows filter by bit-packed code via
///                               the packed SIMD kernels
///   delta+zigzag+mbpack[+lz4]   mini-blocks prune (or wholesale-match) on
///                               their (min,max) bounds; only undecided
///                               blocks decode, into a per-view cache
///
/// Every operation is bit-identical to full decode + the scalar kernels —
/// that contract is what lets the executor pick this path freely. Open()
/// returns nullptr for any other chain (legacy bitpack blocks, other
/// types); callers fall back to full decode, which also keeps error
/// surfacing for corrupt blocks on the decode path.
class PackedInt64Column {
 public:
  /// Borrows `column`'s buffer (the caller keeps it alive); owns only the
  /// lz4-unwrapped bytes when the chain carried an lz4 stage.
  static std::unique_ptr<PackedInt64Column> Open(const RowBlockColumn& column);

  size_t rows() const { return count_; }

  /// Refines `sel` in place, keeping rows where `value <op> literal`.
  Status Filter(CompareOp op, int64_t literal, scan::SelVector* sel);

  /// Builds the initial selection of rows whose value lies in [begin, end],
  /// ascending — scan::SelectTimeRange without the decode.
  Status SelectTimeRange(int64_t begin, int64_t end, scan::SelVector* sel);

  /// Materializes a dense vector of rows() values in which every row of
  /// `sel` holds its decoded value; rows outside `sel` are unspecified
  /// (zero unless their mini-block decoded anyway). nullptr decodes all.
  Status MaterializeInto(const scan::SelVector* sel,
                         std::vector<int64_t>* out);

 private:
  enum class Mode { kDict, kMiniBlock };

  PackedInt64Column() = default;

  Status EnsureDecoded(size_t mb_index);

  Mode mode_ = Mode::kDict;
  size_t count_ = 0;
  ByteBuffer lz4_storage_;  // backing for the views below when lz4-wrapped

  // kDict: parsed dictionary + raw bit-packed code stream.
  std::vector<int64_t> dict_;
  int width_ = 0;
  Slice codes_;

  // kMiniBlock: parsed directory + payload, plus the decode cache filled
  // one mini-block at a time as predicates need them.
  std::vector<delta::MiniBlock> dir_;
  Slice payload_;
  size_t mb_rows_ = 0;
  std::vector<int64_t> cache_;
  std::vector<uint8_t> mb_decoded_;
};

}  // namespace scuba

#endif  // SCUBA_QUERY_PACKED_COLUMN_H_
