#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "query/scan_kernels_packed_internal.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>  // SSE2 — baseline on x86-64, no extra flags needed
#define SCUBA_HAVE_SSE2 1
#endif

namespace scuba {
namespace scan {
namespace {

using internal::CompareU64;

// Rows filtered at each tier, for the __scuba_stats SIMD-path breakdown.
struct PackedMetrics {
  obs::Counter* rows_scalar;
  obs::Counter* rows_sse2;
  obs::Counter* rows_avx2;
  obs::Counter* bitmap_rows;

  static PackedMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static PackedMetrics m{
        reg.GetCounter("scuba.query.packed.rows_scalar"),
        reg.GetCounter("scuba.query.packed.rows_sse2"),
        reg.GetCounter("scuba.query.packed.rows_avx2"),
        reg.GetCounter("scuba.query.packed.bitmap_rows")};
    return m;
  }
};

SimdLevel DetectSimdLevel() {
  const char* force = std::getenv("SCUBA_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return SimdLevel::kScalar;
  }
#if defined(SCUBA_HAVE_SSE2)
  if (internal::Avx2CompiledIn() && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kSse2;  // SSE2 is baseline x86-64
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel DetectedSimdLevel() {
  static SimdLevel detected = DetectSimdLevel();
  return detected;
}

std::atomic<int> g_simd_override{-1};

}  // namespace

SimdLevel ActiveSimdLevel() {
  int forced = g_simd_override.load(std::memory_order_relaxed);
  SimdLevel detected = DetectedSimdLevel();
  if (forced < 0) return detected;
  return forced < static_cast<int>(detected) ? static_cast<SimdLevel>(forced)
                                             : detected;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

void SetSimdLevelOverrideForTest(int level) {
  g_simd_override.store(level, std::memory_order_relaxed);
}

uint64_t ExtractPackedLane(const uint8_t* packed, size_t packed_size,
                           int width, size_t index) {
  if (width == 0) return 0;
  const uint64_t mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  const size_t bit = index * static_cast<size_t>(width);
  const size_t byte = bit >> 3;
  const int shift = static_cast<int>(bit & 7);
  // The lane spans at most 9 bytes (shift 7 + width 64 = 71 bits). Clamp
  // the 8-byte load to the buffer so the last lanes never read past the
  // end of the packed stream.
  uint64_t lo = 0;
  const size_t avail = packed_size - byte;
  std::memcpy(&lo, packed + byte, avail < 8 ? avail : 8);
  uint64_t v = lo >> shift;
  const int got = 64 - shift;
  if (got < width) {
    const uint64_t hi = byte + 8 < packed_size ? packed[byte + 8] : 0;
    v |= hi << got;
  }
  return v & mask;
}

namespace internal {

void DensePackedCompareScalar(const uint8_t* packed, size_t packed_size,
                              int width, size_t count, uint64_t literal,
                              CompareOp op, SelVector* out) {
  for (size_t i = 0; i < count; ++i) {
    if (CompareU64(ExtractPackedLane(packed, packed_size, width, i), op,
                   literal)) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

#if defined(SCUBA_HAVE_SSE2)
namespace {

// Byte-aligned fast paths: width 8/16/32 lanes are plain little-endian
// arrays, so 128-bit loads + biased signed compares cover the unsigned
// domain. SSE2 has no unsigned ordered compare; XOR-ing the sign bit maps
// unsigned order onto signed order.
void DenseCompareW8Sse2(const uint8_t* data, size_t count, uint64_t literal,
                        CompareOp op, SelVector* out) {
  const __m128i ones = _mm_set1_epi8(static_cast<char>(0xFF));
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i lit = _mm_set1_epi8(static_cast<char>(literal));
  const __m128i litb = _mm_xor_si128(lit, bias);
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i vb = _mm_xor_si128(v, bias);
    __m128i m;
    switch (op) {
      case CompareOp::kEq: m = _mm_cmpeq_epi8(v, lit); break;
      case CompareOp::kNe:
        m = _mm_xor_si128(_mm_cmpeq_epi8(v, lit), ones);
        break;
      case CompareOp::kLt: m = _mm_cmplt_epi8(vb, litb); break;
      case CompareOp::kLe:
        m = _mm_xor_si128(_mm_cmpgt_epi8(vb, litb), ones);
        break;
      case CompareOp::kGt: m = _mm_cmpgt_epi8(vb, litb); break;
      case CompareOp::kGe:
        m = _mm_xor_si128(_mm_cmplt_epi8(vb, litb), ones);
        break;
      default: return;
    }
    int bits = _mm_movemask_epi8(m);
    while (bits != 0) {
      const int j = __builtin_ctz(static_cast<unsigned>(bits));
      out->push_back(static_cast<uint32_t>(i) + static_cast<uint32_t>(j));
      bits &= bits - 1;
    }
  }
  for (; i < count; ++i) {
    if (CompareU64(data[i], op, literal)) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

void DenseCompareW16Sse2(const uint8_t* data, size_t count, uint64_t literal,
                         CompareOp op, SelVector* out) {
  const __m128i ones = _mm_set1_epi16(static_cast<short>(0xFFFF));
  const __m128i bias = _mm_set1_epi16(static_cast<short>(0x8000));
  const __m128i lit = _mm_set1_epi16(static_cast<short>(literal));
  const __m128i litb = _mm_xor_si128(lit, bias);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i * 2));
    const __m128i vb = _mm_xor_si128(v, bias);
    __m128i m;
    switch (op) {
      case CompareOp::kEq: m = _mm_cmpeq_epi16(v, lit); break;
      case CompareOp::kNe:
        m = _mm_xor_si128(_mm_cmpeq_epi16(v, lit), ones);
        break;
      case CompareOp::kLt: m = _mm_cmplt_epi16(vb, litb); break;
      case CompareOp::kLe:
        m = _mm_xor_si128(_mm_cmpgt_epi16(vb, litb), ones);
        break;
      case CompareOp::kGt: m = _mm_cmpgt_epi16(vb, litb); break;
      case CompareOp::kGe:
        m = _mm_xor_si128(_mm_cmplt_epi16(vb, litb), ones);
        break;
      default: return;
    }
    const int bits = _mm_movemask_epi8(m);
    for (int j = 0; j < 8; ++j) {
      if ((bits >> (2 * j)) & 1) {
        out->push_back(static_cast<uint32_t>(i) + static_cast<uint32_t>(j));
      }
    }
  }
  for (; i < count; ++i) {
    uint16_t v;
    std::memcpy(&v, data + i * 2, 2);
    if (CompareU64(v, op, literal)) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

void DenseCompareW32Sse2(const uint8_t* data, size_t count, uint64_t literal,
                         CompareOp op, SelVector* out) {
  const __m128i ones = _mm_set1_epi32(-1);
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i lit = _mm_set1_epi32(static_cast<int>(literal));
  const __m128i litb = _mm_xor_si128(lit, bias);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i * 4));
    const __m128i vb = _mm_xor_si128(v, bias);
    __m128i m;
    switch (op) {
      case CompareOp::kEq: m = _mm_cmpeq_epi32(v, lit); break;
      case CompareOp::kNe:
        m = _mm_xor_si128(_mm_cmpeq_epi32(v, lit), ones);
        break;
      case CompareOp::kLt: m = _mm_cmplt_epi32(vb, litb); break;
      case CompareOp::kLe:
        m = _mm_xor_si128(_mm_cmpgt_epi32(vb, litb), ones);
        break;
      case CompareOp::kGt: m = _mm_cmpgt_epi32(vb, litb); break;
      case CompareOp::kGe:
        m = _mm_xor_si128(_mm_cmplt_epi32(vb, litb), ones);
        break;
      default: return;
    }
    const int bits = _mm_movemask_ps(_mm_castsi128_ps(m));
    for (int j = 0; j < 4; ++j) {
      if ((bits >> j) & 1) {
        out->push_back(static_cast<uint32_t>(i) + static_cast<uint32_t>(j));
      }
    }
  }
  for (; i < count; ++i) {
    uint32_t v;
    std::memcpy(&v, data + i * 4, 4);
    if (CompareU64(v, op, literal)) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

}  // namespace

void DensePackedCompareSse2(const uint8_t* packed, size_t packed_size,
                            int width, size_t count, uint64_t literal,
                            CompareOp op, SelVector* out) {
  switch (width) {
    case 8: DenseCompareW8Sse2(packed, count, literal, op, out); return;
    case 16: DenseCompareW16Sse2(packed, count, literal, op, out); return;
    case 32: DenseCompareW32Sse2(packed, count, literal, op, out); return;
    default:
      DensePackedCompareScalar(packed, packed_size, width, count, literal,
                               op, out);
      return;
  }
}
#else
void DensePackedCompareSse2(const uint8_t* packed, size_t packed_size,
                            int width, size_t count, uint64_t literal,
                            CompareOp op, SelVector* out) {
  DensePackedCompareScalar(packed, packed_size, width, count, literal, op,
                           out);
}
#endif  // SCUBA_HAVE_SSE2

}  // namespace internal

void FilterPackedU64(CompareOp op, const uint8_t* packed, size_t packed_size,
                     int width, size_t count, uint64_t literal,
                     SelVector* sel) {
  if (sel->empty()) return;
  if (op == CompareOp::kContains || op == CompareOp::kPrefix) {
    sel->clear();
    return;
  }
  // A literal above the packed domain resolves analytically: every lane is
  // strictly below it. (This also guarantees the SIMD paths only ever see
  // literals that fit `width` bits.)
  const uint64_t mask = width >= 64 ? ~0ull
                        : width == 0 ? 0ull
                                     : ((1ull << width) - 1);
  if (literal > mask) {
    switch (op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
      case CompareOp::kNe:
        return;  // every lane matches
      default:
        sel->clear();
        return;
    }
  }
  PackedMetrics& metrics = PackedMetrics::Get();
  const SimdLevel level = ActiveSimdLevel();
  // Dense selections stream the whole lane range through the tier's kernel;
  // sparse selections do per-row random access (the branchy gather would
  // waste the SIMD lanes anyway).
  const bool dense = sel->size() == count;
  if (dense) {
    sel->clear();
    switch (level) {
      case SimdLevel::kAvx2:
        internal::DensePackedCompareAvx2(packed, packed_size, width, count,
                                         literal, op, sel);
        metrics.rows_avx2->Add(count);
        break;
      case SimdLevel::kSse2:
        internal::DensePackedCompareSse2(packed, packed_size, width, count,
                                         literal, op, sel);
        metrics.rows_sse2->Add(count);
        break;
      case SimdLevel::kScalar:
        internal::DensePackedCompareScalar(packed, packed_size, width, count,
                                           literal, op, sel);
        metrics.rows_scalar->Add(count);
        break;
    }
    return;
  }
  metrics.rows_scalar->Add(sel->size());
  uint32_t* out = sel->data();
  size_t n = 0;
  for (uint32_t row : *sel) {
    if (internal::CompareU64(
            ExtractPackedLane(packed, packed_size, width, row), op,
            literal)) {
      out[n++] = row;
    }
  }
  sel->resize(n);
}

void FilterPackedByBitmap(const uint8_t* packed, size_t packed_size,
                          int width, size_t count,
                          const std::vector<uint8_t>& keep, SelVector* sel) {
  if (sel->empty()) return;
  (void)count;
  PackedMetrics::Get().bitmap_rows->Add(sel->size());
  const size_t dict_size = keep.size();
  uint32_t* out = sel->data();
  size_t n = 0;
  for (uint32_t row : *sel) {
    const uint64_t code = ExtractPackedLane(packed, packed_size, width, row);
    if (code < dict_size && keep[code] != 0) out[n++] = row;
  }
  sel->resize(n);
}

}  // namespace scan
}  // namespace scuba
