#ifndef SCUBA_QUERY_QUERY_PROFILE_H_
#define SCUBA_QUERY_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace scuba {

/// Execution profile of one query, carried inside QueryResult and merged
/// exactly like the aggregate partials: Merge is associative, and because
/// per-block partials merge in block order and per-leaf partials in leaf
/// order, every COUNTER below is bit-identical for any
/// `num_query_threads` and for sequential vs parallel aggregator fan-out.
/// The TIMING fields are honest wall-clock measurements and therefore not
/// reproducible run to run — they sum on merge so the totals stay
/// meaningful ("how much decode time did this query buy across all
/// leaves"), but they are excluded from the determinism contract.
struct QueryProfile {
  // --- identity (stamped by the aggregator; kept on merge) ---------------
  uint64_t query_id = 0;

  // --- deterministic counters (summed on merge) ---------------------------
  uint64_t blocks_scanned = 0;
  /// Blocks skipped from the header [min_time, max_time] alone (§2.1).
  uint64_t blocks_time_pruned = 0;
  /// Blocks skipped from a per-column zone map (layout v2 footers).
  uint64_t blocks_zone_pruned = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  /// Bytes materialized by column decode (lazy: only columns a predicate
  /// touched, plus group/aggregate columns of blocks with survivors).
  uint64_t bytes_decoded = 0;
  /// Aggregator result cache: full time buckets served from a cached
  /// per-leaf partial vs. executed fresh. Head/tail ranges that don't
  /// cover a whole bucket (and uncacheable queries) count in neither.
  uint64_t cache_hit_buckets = 0;
  uint64_t cache_miss_buckets = 0;

  // --- availability (summed on merge, like QueryResult's) -----------------
  uint32_t leaves_total = 0;
  uint32_t leaves_responded = 0;
  /// Leaf ids that returned Unavailable (restarting mid-rollover),
  /// appended in leaf order on merge — the per-leaf attribution of how
  /// partial a partial result is.
  std::vector<uint32_t> unavailable_leaves;

  // --- per-stage timings, microseconds (summed on merge) ------------------
  /// Pruning pass over block metadata (time range + zone maps).
  int64_t prune_micros = 0;
  /// Column decompression into scan form.
  int64_t decode_micros = 0;
  /// Vectorized predicate + accumulate work on decoded vectors
  /// (total scan minus decode).
  int64_t kernel_micros = 0;
  /// Merging partial results (per-block at the leaf, per-leaf at the
  /// aggregator).
  int64_t merge_micros = 0;
  /// Sum of per-leaf execute wall times (what the fan-out bought: with N
  /// parallel leaves this exceeds the aggregator wall).
  int64_t leaf_execute_micros = 0;
  /// Time the per-leaf tasks spent queued behind busy workers in the
  /// aggregator's shared fan-out pool (0 on the sequential path).
  int64_t fanout_queue_wait_micros = 0;

  // --- aggregator-level (stamped after the last merge; kept on merge) -----
  /// End-to-end aggregator wall time of the whole query.
  int64_t wall_micros = 0;

  /// Associative, commutative-over-counters accumulation; identity and
  /// wall_micros keep this side's value (the aggregator stamps them last).
  void Merge(const QueryProfile& other);

  /// Machine-readable single-object JSON of every field above.
  std::string ToJson() const;

  /// Human-readable EXPLAIN-ANALYZE-style rendering, e.g.
  ///   query 42: 12.3 ms wall, 3/4 leaves
  ///     blocks: 5 scanned, 10 time-pruned, 1 zone-pruned
  ///     rows:   40960 scanned, 512 matched (1.2%)
  ///     ...
  std::string ToText() const;
};

}  // namespace scuba

#endif  // SCUBA_QUERY_QUERY_PROFILE_H_
