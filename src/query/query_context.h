#ifndef SCUBA_QUERY_QUERY_CONTEXT_H_
#define SCUBA_QUERY_QUERY_CONTEXT_H_

#include <cstdint>

#include "obs/trace.h"

namespace scuba {

/// Per-query observability context, created once at the aggregator and
/// threaded through the whole read path — LeafServer::ExecuteQuery, the
/// LeafExecutor, and the per-row-block scans — so a single query's work is
/// attributable end to end across the fan-out (§2: "the aggregator servers
/// distribute a query to all leaves and then aggregate the results as they
/// arrive").
///
/// The context is cheap plain data, copied per leaf. An unsampled query
/// carries a null tracer, and every instrumentation site treats a null
/// tracer as "off" (PhaseTracer::Span no-ops), so the common path pays a
/// pointer test and nothing else.
struct QueryContext {
  /// Process-unique query id (NextQueryId()); 0 = not yet assigned. The
  /// aggregator stamps it into the merged result's profile and the slow
  /// query log, so a `__scuba_queries` row, a span timeline, and a bench
  /// profile all name the same execution.
  uint64_t query_id = 0;

  /// Whether this query was chosen for span tracing (the aggregator's
  /// 1-in-N trace sampling decision, or an explicit caller request).
  bool sampled = false;

  /// Span sink for a sampled query; nullptr = tracing off (free).
  obs::PhaseTracer* tracer = nullptr;

  /// Explicit parent span for spans started on worker threads (a parallel
  /// fan-out's per-leaf execute spans attach under the aggregator's
  /// fan-out root; a leaf's per-block scan spans attach under the leaf's
  /// execute span). -1 = become a root when the thread has no open span.
  int parent_span = -1;
};

/// Process-wide monotonically increasing query id (never returns 0).
uint64_t NextQueryId();

}  // namespace scuba

#endif  // SCUBA_QUERY_QUERY_CONTEXT_H_
