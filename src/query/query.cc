#include "query/query.h"

namespace scuba {

std::string_view AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "count";
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
    case AggregateOp::kAvg:
      return "avg";
    case AggregateOp::kP50:
      return "p50";
    case AggregateOp::kP90:
      return "p90";
    case AggregateOp::kP99:
      return "p99";
  }
  return "unknown";
}

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
    case CompareOp::kPrefix:
      return "prefix";
  }
  return "?";
}

std::string Query::Fingerprint() const {
  std::string fp = table;
  for (const Predicate& pred : predicates) {
    fp += '|';
    fp += pred.column;
    fp += CompareOpName(pred.op);
    fp += '?';
  }
  if (time_bucket_seconds > 0) {
    fp += "|bucket:" + std::to_string(time_bucket_seconds);
  }
  for (const std::string& g : group_by) {
    fp += "|group:";
    fp += g;
  }
  for (const Aggregate& agg : aggregates) {
    fp += '|';
    fp += AggregateOpName(agg.op);
    if (!agg.column.empty()) {
      fp += '(';
      fp += agg.column;
      fp += ')';
    }
  }
  return fp;
}

Status Query::Validate() const {
  if (table.empty()) {
    return Status::InvalidArgument("query: table name required");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("query: at least one aggregate required");
  }
  if (begin_time > end_time) {
    return Status::InvalidArgument("query: begin_time > end_time");
  }
  if (time_bucket_seconds < 0) {
    return Status::InvalidArgument("query: negative time bucket");
  }
  for (const Aggregate& agg : aggregates) {
    if (agg.op != AggregateOp::kCount && agg.column.empty()) {
      return Status::InvalidArgument("query: aggregate needs a column");
    }
  }
  for (const Predicate& pred : predicates) {
    if (pred.column.empty()) {
      return Status::InvalidArgument("query: predicate needs a column");
    }
  }
  return Status::OK();
}

}  // namespace scuba
