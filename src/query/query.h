#ifndef SCUBA_QUERY_QUERY_H_
#define SCUBA_QUERY_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "util/status.h"

namespace scuba {

/// Aggregation operators for Scuba-style analysis queries. The percentile
/// operators aggregate through mergeable log-bucketed histograms
/// (query/histogram.h) so they compose across leaves like sum/min/max.
enum class AggregateOp {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kP50,
  kP90,
  kP99,
};

std::string_view AggregateOpName(AggregateOp op);

/// True for the histogram-backed percentile operators.
inline bool IsPercentileOp(AggregateOp op) {
  return op == AggregateOp::kP50 || op == AggregateOp::kP90 ||
         op == AggregateOp::kP99;
}

/// Comparison operators for column predicates. kContains and kPrefix are
/// string-only substring/prefix matches (Scuba's text filters).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains, kPrefix };

std::string_view CompareOpName(CompareOp op);

/// One column predicate: <column> <op> <literal>. The literal's type must
/// match the column's type; a column absent from a row block reads as the
/// type's default value (dense-schema semantics).
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// One aggregate: op over a column. kCount ignores the column (may be
/// empty); kSum/kMin/kMax/kAvg require a numeric column.
struct Aggregate {
  AggregateOp op = AggregateOp::kCount;
  std::string column;
};

/// An aggregation query over one table. "Nearly all queries contain
/// predicates on time" (§2.1) — the [begin_time, end_time] range is
/// mandatory and drives row block pruning via each block's min/max time.
struct Query {
  std::string table;
  int64_t begin_time = 0;
  int64_t end_time = std::numeric_limits<int64_t>::max();
  std::vector<Predicate> predicates;
  /// When > 0, results are additionally grouped by time bucket: each
  /// matching row lands in the bucket starting at
  /// floor(time / time_bucket_seconds) * time_bucket_seconds, and the
  /// bucket start becomes the FIRST element of every result group key.
  /// This is the Scuba dashboard primitive (per-minute error counts,
  /// latency timelines).
  int64_t time_bucket_seconds = 0;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  /// Maximum number of groups in the final result (0 = unlimited);
  /// applied after merging, ordered by group key.
  uint64_t limit = 0;

  /// Structural validation (at least one aggregate, time range sane).
  Status Validate() const;

  /// Canonical shape of this query with literals and the time range
  /// masked, e.g. `service_logs|status>=?|bucket:60|group:service|count` —
  /// the grouping key of the slow-query log, under which "the same
  /// dashboard query with a different time window" collapses to one entry.
  std::string Fingerprint() const;
};

/// Convenience builders.
inline Aggregate Count() { return Aggregate{AggregateOp::kCount, ""}; }
inline Aggregate Sum(std::string column) {
  return Aggregate{AggregateOp::kSum, std::move(column)};
}
inline Aggregate Min(std::string column) {
  return Aggregate{AggregateOp::kMin, std::move(column)};
}
inline Aggregate Max(std::string column) {
  return Aggregate{AggregateOp::kMax, std::move(column)};
}
inline Aggregate Avg(std::string column) {
  return Aggregate{AggregateOp::kAvg, std::move(column)};
}
inline Aggregate P50(std::string column) {
  return Aggregate{AggregateOp::kP50, std::move(column)};
}
inline Aggregate P90(std::string column) {
  return Aggregate{AggregateOp::kP90, std::move(column)};
}
inline Aggregate P99(std::string column) {
  return Aggregate{AggregateOp::kP99, std::move(column)};
}

}  // namespace scuba

#endif  // SCUBA_QUERY_QUERY_H_
