#include "query/result.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "util/byte_buffer.h"

namespace scuba {
namespace {

// 64-bit mix (boost::hash_combine style, golden-ratio constant widened).
void HashCombine(size_t* seed, size_t v) {
  *seed ^= v + 0x9e3779b97f4a7c15ull + (*seed << 6) + (*seed >> 2);
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

size_t QueryResult::KeyHash::operator()(const std::vector<Value>& key) const {
  size_t seed = key.size();
  for (const Value& v : key) {
    HashCombine(&seed, v.index());
    switch (ValueType(v)) {
      case ColumnType::kInt64:
        HashCombine(&seed, std::hash<uint64_t>{}(
                               static_cast<uint64_t>(std::get<int64_t>(v))));
        break;
      case ColumnType::kDouble:
        HashCombine(&seed,
                    std::hash<uint64_t>{}(DoubleBits(std::get<double>(v))));
        break;
      case ColumnType::kString:
        HashCombine(&seed, std::hash<std::string>{}(std::get<std::string>(v)));
        break;
    }
  }
  return seed;
}

bool QueryResult::KeyEq::operator()(const std::vector<Value>& a,
                                    const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].index() != b[i].index()) return false;
    if (const double* da = std::get_if<double>(&a[i])) {
      if (DoubleBits(*da) != DoubleBits(std::get<double>(b[i]))) return false;
    } else if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

std::string QueryResult::EncodeKey(const std::vector<Value>& key) {
  ByteBuffer buf;
  for (const Value& v : key) {
    buf.AppendU8(static_cast<uint8_t>(ValueType(v)));
    switch (ValueType(v)) {
      case ColumnType::kInt64: {
        // Order-preserving encoding: flip the sign bit, big-endian bytes.
        uint64_t bits = static_cast<uint64_t>(std::get<int64_t>(v)) ^
                        (1ull << 63);
        for (int i = 7; i >= 0; --i) {
          buf.AppendU8(static_cast<uint8_t>(bits >> (8 * i)));
        }
        break;
      }
      case ColumnType::kDouble: {
        uint64_t bits = DoubleBits(std::get<double>(v));
        // Total-order trick: positive doubles flip sign bit, negatives
        // flip all bits.
        bits = (bits & (1ull << 63)) ? ~bits : (bits | (1ull << 63));
        for (int i = 7; i >= 0; --i) {
          buf.AppendU8(static_cast<uint8_t>(bits >> (8 * i)));
        }
        break;
      }
      case ColumnType::kString: {
        const std::string& s = std::get<std::string>(v);
        buf.Append(s.data(), s.size());
        buf.AppendU8(0);  // terminator keeps prefixes ordered
        break;
      }
    }
  }
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

void QueryResult::Accumulate(const std::vector<Value>& group_key,
                             const std::vector<Sample>& samples) {
  auto [it, inserted] = groups_.try_emplace(group_key);
  Group& group = it->second;
  if (inserted) group.partials.resize(ops_.size());
  for (size_t i = 0; i < samples.size() && i < group.partials.size(); ++i) {
    if (samples[i].has_sample) {
      group.partials[i].AddSample(samples[i].value,
                                  IsPercentileOp(ops_[i]));
    } else {
      group.partials[i].AddCountOnly();
    }
  }
}

void QueryResult::Merge(const QueryResult& other) {
  if (ops_.empty()) ops_ = other.ops_;
  for (const auto& [key, other_group] : other.groups_) {
    auto [it, inserted] = groups_.try_emplace(key);
    Group& group = it->second;
    if (inserted) group.partials.resize(ops_.size());
    for (size_t i = 0;
         i < other_group.partials.size() && i < group.partials.size(); ++i) {
      group.partials[i].Merge(other_group.partials[i]);
    }
  }
  rows_scanned += other.rows_scanned;
  rows_matched += other.rows_matched;
  blocks_scanned += other.blocks_scanned;
  blocks_pruned += other.blocks_pruned;
  leaves_total += other.leaves_total;
  leaves_responded += other.leaves_responded;
  profile_.Merge(other.profile_);
}

uint64_t QueryResult::EstimatedHeapBytes() const {
  uint64_t bytes = sizeof(QueryResult);
  for (const auto& [key, group] : groups_) {
    bytes += sizeof(std::vector<Value>) + key.size() * sizeof(Value);
    for (const Value& v : key) {
      if (const auto* s = std::get_if<std::string>(&v)) bytes += s->size();
    }
    bytes += group.partials.size() * sizeof(AggPartial);
    for (const AggPartial& p : group.partials) {
      if (!p.histogram.empty()) {
        bytes += Histogram::kNumBuckets * sizeof(uint64_t);
      }
    }
  }
  return bytes;
}

std::vector<ResultRow> QueryResult::Finalize(
    const std::vector<Aggregate>& aggregates, uint64_t limit) const {
  // Deterministic output order: sort group pointers by the order-preserving
  // key encoding (computed once per GROUP here, not once per ROW as the old
  // map-keyed accumulation did).
  struct SortEntry {
    std::string encoded;
    const std::vector<Value>* key;
    const Group* group;
  };
  std::vector<SortEntry> order;
  order.reserve(groups_.size());
  for (const auto& [key, group] : groups_) {
    order.push_back(SortEntry{EncodeKey(key), &key, &group});
  }
  std::sort(order.begin(), order.end(),
            [](const SortEntry& a, const SortEntry& b) {
              return a.encoded < b.encoded;
            });

  std::vector<ResultRow> rows;
  rows.reserve(limit > 0 ? std::min<uint64_t>(limit, order.size())
                         : order.size());
  for (const SortEntry& entry : order) {
    if (limit > 0 && rows.size() >= limit) break;
    ResultRow row;
    row.group_key = *entry.key;
    row.aggregates.reserve(aggregates.size());
    for (size_t i = 0; i < aggregates.size(); ++i) {
      double v = i < entry.group->partials.size()
                     ? entry.group->partials[i].Finalize(aggregates[i].op)
                     : 0.0;
      row.aggregates.push_back(v);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace scuba
