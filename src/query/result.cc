#include "query/result.h"

#include "util/byte_buffer.h"

namespace scuba {

std::string QueryResult::EncodeKey(const std::vector<Value>& key) {
  ByteBuffer buf;
  for (const Value& v : key) {
    buf.AppendU8(static_cast<uint8_t>(ValueType(v)));
    switch (ValueType(v)) {
      case ColumnType::kInt64: {
        // Order-preserving encoding: flip the sign bit, big-endian bytes.
        uint64_t bits = static_cast<uint64_t>(std::get<int64_t>(v)) ^
                        (1ull << 63);
        for (int i = 7; i >= 0; --i) {
          buf.AppendU8(static_cast<uint8_t>(bits >> (8 * i)));
        }
        break;
      }
      case ColumnType::kDouble: {
        uint64_t bits;
        std::memcpy(&bits, &std::get<double>(v), 8);
        // Total-order trick: positive doubles flip sign bit, negatives
        // flip all bits.
        bits = (bits & (1ull << 63)) ? ~bits : (bits | (1ull << 63));
        for (int i = 7; i >= 0; --i) {
          buf.AppendU8(static_cast<uint8_t>(bits >> (8 * i)));
        }
        break;
      }
      case ColumnType::kString: {
        const std::string& s = std::get<std::string>(v);
        buf.Append(s.data(), s.size());
        buf.AppendU8(0);  // terminator keeps prefixes ordered
        break;
      }
    }
  }
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

void QueryResult::Accumulate(const std::vector<Value>& group_key,
                             const std::vector<Sample>& samples) {
  std::string key = EncodeKey(group_key);
  auto [it, inserted] = groups_.try_emplace(std::move(key));
  Group& group = it->second;
  if (inserted) {
    group.key = group_key;
    group.partials.resize(ops_.size());
  }
  for (size_t i = 0; i < samples.size() && i < group.partials.size(); ++i) {
    if (samples[i].has_sample) {
      group.partials[i].AddSample(samples[i].value,
                                  IsPercentileOp(ops_[i]));
    } else {
      group.partials[i].AddCountOnly();
    }
  }
}

void QueryResult::Merge(const QueryResult& other) {
  if (ops_.empty()) ops_ = other.ops_;
  for (const auto& [key, other_group] : other.groups_) {
    auto [it, inserted] = groups_.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      group.key = other_group.key;
      group.partials.resize(ops_.size());
    }
    for (size_t i = 0;
         i < other_group.partials.size() && i < group.partials.size(); ++i) {
      group.partials[i].Merge(other_group.partials[i]);
    }
  }
  rows_scanned += other.rows_scanned;
  rows_matched += other.rows_matched;
  blocks_scanned += other.blocks_scanned;
  blocks_pruned += other.blocks_pruned;
  leaves_total += other.leaves_total;
  leaves_responded += other.leaves_responded;
}

std::vector<ResultRow> QueryResult::Finalize(
    const std::vector<Aggregate>& aggregates, uint64_t limit) const {
  std::vector<ResultRow> rows;
  rows.reserve(limit > 0 ? std::min<uint64_t>(limit, groups_.size())
                         : groups_.size());
  for (const auto& [key, group] : groups_) {
    if (limit > 0 && rows.size() >= limit) break;
    ResultRow row;
    row.group_key = group.key;
    row.aggregates.reserve(aggregates.size());
    for (size_t i = 0; i < aggregates.size(); ++i) {
      double v = i < group.partials.size()
                     ? group.partials[i].Finalize(aggregates[i].op)
                     : 0.0;
      row.aggregates.push_back(v);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace scuba
