#ifndef SCUBA_QUERY_RESULT_H_
#define SCUBA_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/types.h"
#include "query/histogram.h"
#include "query/query.h"
#include "query/query_profile.h"
#include "util/status.h"

namespace scuba {

/// Mergeable partial state of one aggregate. Sum/min/max/count compose
/// across leaves; avg is finalized as sum/count after the last merge.
struct AggPartial {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool has_value = false;  // min/max defined only once a row contributed

  /// Populated only for percentile aggregates (lazy inside Histogram).
  Histogram histogram;

  void AddSample(double v, bool with_histogram = false) {
    ++count;
    sum += v;
    if (!has_value || v < min) min = v;
    if (!has_value || v > max) max = v;
    has_value = true;
    if (with_histogram) histogram.Add(v);
  }
  void AddCountOnly() { ++count; }

  void Merge(const AggPartial& other) {
    count += other.count;
    sum += other.sum;
    if (other.has_value) {
      if (!has_value || other.min < min) min = other.min;
      if (!has_value || other.max > max) max = other.max;
      has_value = true;
    }
    histogram.Merge(other.histogram);
  }

  double Finalize(AggregateOp op) const {
    switch (op) {
      case AggregateOp::kCount:
        return static_cast<double>(count);
      case AggregateOp::kSum:
        return sum;
      case AggregateOp::kMin:
        return min;
      case AggregateOp::kMax:
        return max;
      case AggregateOp::kAvg:
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
      case AggregateOp::kP50:
        return histogram.ValueAtPercentile(50);
      case AggregateOp::kP90:
        return histogram.ValueAtPercentile(90);
      case AggregateOp::kP99:
        return histogram.ValueAtPercentile(99);
    }
    return 0.0;
  }
};

/// One output row after finalization: the group key values plus one double
/// per aggregate.
struct ResultRow {
  std::vector<Value> group_key;
  std::vector<double> aggregates;
};

/// The (partial) result of a query on one leaf, or the merged result of
/// many leaves. Scuba "can and does return partial query results when not
/// all servers are available" (§1): `leaves_total` vs `leaves_responded`
/// quantifies how partial.
class QueryResult {
 public:
  QueryResult() = default;
  /// All-count shape; percentile aggregates need the ops-aware ctor.
  explicit QueryResult(size_t num_aggregates)
      : ops_(num_aggregates, AggregateOp::kCount) {}
  /// Shape from the query's aggregate list (knows which partials need
  /// histograms).
  explicit QueryResult(const std::vector<Aggregate>& aggregates) {
    ops_.reserve(aggregates.size());
    for (const Aggregate& agg : aggregates) ops_.push_back(agg.op);
  }

  /// Accumulates one matching row into its group.
  /// `samples[i]` is aggregate i's sample for this row; an entry with
  /// has_sample=false contributes count only (kCount aggregates).
  struct Sample {
    double value = 0.0;
    bool has_sample = false;
  };
  void Accumulate(const std::vector<Value>& group_key,
                  const std::vector<Sample>& samples);

  /// Merges another leaf's partial result (same query shape).
  void Merge(const QueryResult& other);

  /// Finalized rows ordered by group key; `limit` 0 = all.
  std::vector<ResultRow> Finalize(const std::vector<Aggregate>& aggregates,
                                  uint64_t limit = 0) const;

  size_t num_groups() const { return groups_.size(); }

  /// Rough heap footprint of the accumulated groups (keys + partials +
  /// lazy percentile histograms). The aggregator's result cache charges
  /// each stored partial against its byte budget with this.
  uint64_t EstimatedHeapBytes() const;

  // Scan / pruning statistics (summed on merge). These are the historical
  // coarse counters; profile() below carries the full per-stage breakdown
  // (time- vs zone-pruned split, bytes decoded, stage timings).
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  uint64_t blocks_scanned = 0;
  uint64_t blocks_pruned = 0;

  // Availability accounting (summed on merge).
  uint32_t leaves_total = 0;
  uint32_t leaves_responded = 0;
  bool IsPartial() const { return leaves_responded < leaves_total; }

  /// Execution profile, merged like the aggregate partials (associative,
  /// block-order/leaf-order deterministic counters — see QueryProfile).
  const QueryProfile& profile() const { return profile_; }
  QueryProfile& profile() { return profile_; }

 private:
  struct Group {
    std::vector<AggPartial> partials;
  };

  /// Hash/equality over raw group keys. Doubles hash and compare by BIT
  /// PATTERN, not operator==: the ordered map this replaced keyed groups by
  /// their order-preserving byte encoding, under which -0.0 and 0.0 (and
  /// distinct NaN payloads) were distinct groups, and bit semantics keep
  /// the hash from ever disagreeing with equality.
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  /// Order-preserving byte encoding of a group key; used only to sort the
  /// finalized rows (accumulation no longer encodes a string per row).
  static std::string EncodeKey(const std::vector<Value>& key);

  std::vector<AggregateOp> ops_;
  std::unordered_map<std::vector<Value>, Group, KeyHash, KeyEq> groups_;
  QueryProfile profile_;
};

}  // namespace scuba

#endif  // SCUBA_QUERY_RESULT_H_
