// AVX2 tier of the packed compare kernel. This file is the ONLY translation
// unit compiled with -mavx2 (see src/query/CMakeLists.txt); everything else
// stays at the project baseline so the binary runs on non-AVX2 hosts — the
// functions here execute only behind the runtime CPUID check in
// ActiveSimdLevel().

#include "query/scan_kernels_packed_internal.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace scuba {
namespace scan {
namespace internal {

#if defined(__AVX2__)

bool Avx2CompiledIn() { return true; }

void DensePackedCompareAvx2(const uint8_t* packed, size_t packed_size,
                            int width, size_t count, uint64_t literal,
                            CompareOp op, SelVector* out) {
  // Byte-aligned widths reuse the 128-bit loops (16/8/4 lanes per
  // iteration beats the 4-lane gather below).
  if (width == 8 || width == 16 || width == 32) {
    DensePackedCompareSse2(packed, packed_size, width, count, literal, op,
                           out);
    return;
  }
  // A lane at bit offset b occupies bytes [b>>3, (b>>3)+8) after the shift
  // by (b&7) — that only holds while width <= 57 (7-bit shift + 57-bit lane
  // fits one 64-bit load). Wider lanes take the two-part scalar extract.
  // The gather also needs 32-bit signed offsets.
  if (width < 1 || width > 57 || packed_size > (1ull << 31)) {
    DensePackedCompareScalar(packed, packed_size, width, count, literal, op,
                             out);
    return;
  }
  const uint64_t mask = (1ull << width) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vlit = _mm256_set1_epi64x(static_cast<long long>(literal));
  const __m256i ones = _mm256_set1_epi64x(-1);

  size_t i = 0;
  const size_t w = static_cast<size_t>(width);
  for (; i + 4 <= count; i += 4) {
    const size_t bit0 = i * w;
    const size_t bit3 = (i + 3) * w;
    // Stop the vector loop once an 8-byte lane load would cross the end of
    // the packed stream; the scalar tail clamps its loads instead.
    if ((bit3 >> 3) + 8 > packed_size) break;
    const __m128i offsets =
        _mm_set_epi32(static_cast<int>(bit3 >> 3),
                      static_cast<int>((bit0 + 2 * w) >> 3),
                      static_cast<int>((bit0 + w) >> 3),
                      static_cast<int>(bit0 >> 3));
    const __m256i raw = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(packed), offsets, 1);
    const __m256i shifts =
        _mm256_set_epi64x(static_cast<long long>(bit3 & 7),
                          static_cast<long long>((bit0 + 2 * w) & 7),
                          static_cast<long long>((bit0 + w) & 7),
                          static_cast<long long>(bit0 & 7));
    const __m256i lanes =
        _mm256_and_si256(_mm256_srlv_epi64(raw, shifts), vmask);
    // Lanes and literal both fit 57 bits, so the signed 64-bit compares
    // coincide with the unsigned-domain contract.
    __m256i m;
    switch (op) {
      case CompareOp::kEq: m = _mm256_cmpeq_epi64(lanes, vlit); break;
      case CompareOp::kNe:
        m = _mm256_xor_si256(_mm256_cmpeq_epi64(lanes, vlit), ones);
        break;
      case CompareOp::kLt: m = _mm256_cmpgt_epi64(vlit, lanes); break;
      case CompareOp::kLe:
        m = _mm256_xor_si256(_mm256_cmpgt_epi64(lanes, vlit), ones);
        break;
      case CompareOp::kGt: m = _mm256_cmpgt_epi64(lanes, vlit); break;
      case CompareOp::kGe:
        m = _mm256_xor_si256(_mm256_cmpgt_epi64(vlit, lanes), ones);
        break;
      default: return;
    }
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(m));
    for (int j = 0; j < 4; ++j) {
      if ((bits >> j) & 1) {
        out->push_back(static_cast<uint32_t>(i) + static_cast<uint32_t>(j));
      }
    }
  }
  for (; i < count; ++i) {
    if (CompareU64(ExtractPackedLane(packed, packed_size, width, i), op,
                   literal)) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

#else  // !defined(__AVX2__)

bool Avx2CompiledIn() { return false; }

void DensePackedCompareAvx2(const uint8_t* packed, size_t packed_size,
                            int width, size_t count, uint64_t literal,
                            CompareOp op, SelVector* out) {
  // Toolchain had no -mavx2; ActiveSimdLevel() never reports kAvx2, but
  // keep the symbol total.
  DensePackedCompareSse2(packed, packed_size, width, count, literal, op,
                         out);
}

#endif  // __AVX2__

}  // namespace internal
}  // namespace scan
}  // namespace scuba
