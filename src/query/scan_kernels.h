#ifndef SCUBA_QUERY_SCAN_KERNELS_H_
#define SCUBA_QUERY_SCAN_KERNELS_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "query/query.h"

namespace scuba {
namespace scan {

/// The vectorized execution primitives (MonetDB/X100-style): predicates are
/// type-dispatched ONCE per chunk, then refine a selection vector through
/// tight typed loops — no per-cell variant inspection, no per-cell
/// StatusOr. Dictionary-encoded string columns are filtered by code
/// (C-Store-style operation on compressed data): the predicate runs once
/// per distinct dictionary entry, never materializing per-row strings.

/// Indexes of the rows still selected, ascending.
using SelVector = std::vector<uint32_t>;

/// Dictionary view of a string column: `codes[row]` indexes into `dict`.
struct DictStringColumn {
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
};

/// One decoded column of a scan chunk. String columns stay in dictionary
/// form whenever the stored encoding allows it.
using ScanColumn = std::variant<std::vector<int64_t>, std::vector<double>,
                                std::vector<std::string>, DictStringColumn>;

/// Number of rows in a scan column.
size_t ScanColumnSize(const ScanColumn& column);

/// Cell accessors for the (non-hot) group-key / aggregate-input reads.
Value ScanCellValue(const ScanColumn& column, uint32_t row);
double ScanNumericCell(const ScanColumn& column, uint32_t row);

/// Builds the initial selection: rows whose time lies in [begin, end].
void SelectTimeRange(const std::vector<int64_t>& times, int64_t begin,
                     int64_t end, SelVector* sel);

/// Refine `sel` in place, keeping rows where `values[row] <op> literal`.
/// kContains/kPrefix are string-only; callers type-check before dispatch.
void FilterInt64(CompareOp op, const std::vector<int64_t>& values,
                 int64_t literal, SelVector* sel);
void FilterDouble(CompareOp op, const std::vector<double>& values,
                  double literal, SelVector* sel);
void FilterString(CompareOp op, const std::vector<std::string>& values,
                  const std::string& literal, SelVector* sel);
void FilterDictString(CompareOp op, const DictStringColumn& column,
                      const std::string& literal, SelVector* sel);

/// Zone-map pruning decision: true when NO value inside the closed range
/// [zone_min, zone_max] can satisfy `<op> literal`, so the whole block can
/// be skipped without decoding (the generalization of the min/max-time
/// pruning of §2.1 to arbitrary numeric columns). kContains/kPrefix never
/// prune.
bool ZoneCanPruneInt64(CompareOp op, int64_t zone_min, int64_t zone_max,
                       int64_t literal);
bool ZoneCanPruneDouble(CompareOp op, double zone_min, double zone_max,
                        double literal);

/// Zone-map acceptance decision, the dual of ZoneCanPruneInt64: true when
/// EVERY value inside [zone_min, zone_max] satisfies `<op> literal`, so a
/// whole mini-block's rows survive the predicate without decoding.
bool ZoneAllMatchInt64(CompareOp op, int64_t zone_min, int64_t zone_max,
                       int64_t literal);

/// --- Compressed-domain (packed) kernels ----------------------------------
///
/// These kernels evaluate predicates directly on the bit-packed streams the
/// codecs store (compress/bitpack layout: `width`-bit unsigned lanes,
/// LSB-first within a little-endian bit stream) — the rows that fail never
/// decode. All comparisons are in the UNSIGNED domain of the packed lanes
/// (dictionary codes, zigzag deltas); the caller maps its predicate into
/// that domain first. Contract: for every width, op, literal, and selection
/// the result is bit-identical to decoding the lanes and running the scalar
/// FilterInt64 oracle, at every SIMD level.

/// SIMD tier the packed kernels run at, chosen once per process from CPUID.
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The active tier: the best level the CPU (and build) supports, clamped to
/// kScalar when the SCUBA_FORCE_SCALAR environment variable is set to a
/// non-empty value other than "0".
SimdLevel ActiveSimdLevel();
const char* SimdLevelName(SimdLevel level);

/// Test hook: forces ActiveSimdLevel() to `level`; pass -1 to restore
/// auto-detection. Levels above what the CPU supports are clamped.
void SetSimdLevelOverrideForTest(int level);

/// Random access into a packed stream. `packed_size` bounds tail reads; the
/// caller guarantees index < count and packed_size >= PackedSize(count,
/// width).
uint64_t ExtractPackedLane(const uint8_t* packed, size_t packed_size,
                           int width, size_t index);

/// Refines `sel` in place, keeping rows whose packed lane `<op> literal`
/// (unsigned compare). `count` is the total lane count of the stream; every
/// row in `sel` must be < count. kContains/kPrefix clear the selection.
void FilterPackedU64(CompareOp op, const uint8_t* packed, size_t packed_size,
                     int width, size_t count, uint64_t literal,
                     SelVector* sel);

/// Refines `sel` in place, keeping rows whose packed lane c has keep[c] !=
/// 0. Lanes >= keep.size() never match (corrupt codes drop out rather than
/// read out of bounds). This is the dictionary-predicate kernel: the
/// predicate runs once per distinct entry into `keep`, rows filter by code.
void FilterPackedByBitmap(const uint8_t* packed, size_t packed_size,
                          int width, size_t count,
                          const std::vector<uint8_t>& keep, SelVector* sel);

}  // namespace scan
}  // namespace scuba

#endif  // SCUBA_QUERY_SCAN_KERNELS_H_
