#ifndef SCUBA_QUERY_SCAN_KERNELS_H_
#define SCUBA_QUERY_SCAN_KERNELS_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "query/query.h"

namespace scuba {
namespace scan {

/// The vectorized execution primitives (MonetDB/X100-style): predicates are
/// type-dispatched ONCE per chunk, then refine a selection vector through
/// tight typed loops — no per-cell variant inspection, no per-cell
/// StatusOr. Dictionary-encoded string columns are filtered by code
/// (C-Store-style operation on compressed data): the predicate runs once
/// per distinct dictionary entry, never materializing per-row strings.

/// Indexes of the rows still selected, ascending.
using SelVector = std::vector<uint32_t>;

/// Dictionary view of a string column: `codes[row]` indexes into `dict`.
struct DictStringColumn {
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
};

/// One decoded column of a scan chunk. String columns stay in dictionary
/// form whenever the stored encoding allows it.
using ScanColumn = std::variant<std::vector<int64_t>, std::vector<double>,
                                std::vector<std::string>, DictStringColumn>;

/// Number of rows in a scan column.
size_t ScanColumnSize(const ScanColumn& column);

/// Cell accessors for the (non-hot) group-key / aggregate-input reads.
Value ScanCellValue(const ScanColumn& column, uint32_t row);
double ScanNumericCell(const ScanColumn& column, uint32_t row);

/// Builds the initial selection: rows whose time lies in [begin, end].
void SelectTimeRange(const std::vector<int64_t>& times, int64_t begin,
                     int64_t end, SelVector* sel);

/// Refine `sel` in place, keeping rows where `values[row] <op> literal`.
/// kContains/kPrefix are string-only; callers type-check before dispatch.
void FilterInt64(CompareOp op, const std::vector<int64_t>& values,
                 int64_t literal, SelVector* sel);
void FilterDouble(CompareOp op, const std::vector<double>& values,
                  double literal, SelVector* sel);
void FilterString(CompareOp op, const std::vector<std::string>& values,
                  const std::string& literal, SelVector* sel);
void FilterDictString(CompareOp op, const DictStringColumn& column,
                      const std::string& literal, SelVector* sel);

/// Zone-map pruning decision: true when NO value inside the closed range
/// [zone_min, zone_max] can satisfy `<op> literal`, so the whole block can
/// be skipped without decoding (the generalization of the min/max-time
/// pruning of §2.1 to arbitrary numeric columns). kContains/kPrefix never
/// prune.
bool ZoneCanPruneInt64(CompareOp op, int64_t zone_min, int64_t zone_max,
                       int64_t literal);
bool ZoneCanPruneDouble(CompareOp op, double zone_min, double zone_max,
                        double literal);

}  // namespace scan
}  // namespace scuba

#endif  // SCUBA_QUERY_SCAN_KERNELS_H_
