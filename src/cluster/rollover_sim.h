#ifndef SCUBA_CLUSTER_ROLLOVER_SIM_H_
#define SCUBA_CLUSTER_ROLLOVER_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "util/status.h"

namespace scuba {

/// Recovery path used by a simulated rollover.
enum class RecoveryPath { kSharedMemory, kDisk };

/// Configuration of one simulated cluster rollover (§4.5, Fig 8).
struct RolloverSimConfig {
  size_t num_machines = 100;
  size_t leaves_per_machine = 8;  // Scuba runs 8 leaf servers per machine
  uint64_t bytes_per_leaf = 15ull << 30;  // 8 x 15 GB = 120 GB per machine
  /// Fraction of all leaves restarted per batch ("typically ... 2% of the
  /// leaf servers at a time").
  double batch_fraction = 0.02;
  /// Concurrent restarts allowed on one machine. 1 is the paper's policy:
  /// spread a batch across machines to use every machine's bandwidth.
  size_t max_restarting_per_machine = 1;
  RecoveryPath path = RecoveryPath::kSharedMemory;
  /// Probability a leaf's clean shutdown is killed by the watchdog and the
  /// new process must disk-recover instead (§4.3).
  double shutdown_kill_probability = 0.0;
  /// "The loop ensures that we kill the leaf server if it has not shut
  /// down after 3 minutes" (§4.3): dead time charged to a killed leaf
  /// before its disk recovery starts.
  double watchdog_timeout_seconds = 180.0;
  CostModel costs;
  uint64_t seed = 7;
};

/// One dashboard sample (Fig 8): the cluster mix at a point in time.
struct DashboardSample {
  double time_seconds = 0;
  double fraction_old = 0;         // still on the old version
  double fraction_restarting = 0;  // offline right now
  double fraction_new = 0;         // upgraded and serving
  /// Enriched live view: how many leaves are offline right now, the
  /// restart phase they are in (empty between batches and on the plain
  /// batch-boundary samples), and the batch's aggregate throughput in
  /// that phase. Phase names follow the tracer span names: copy_out /
  /// copy_in for the shm path, disk_read / disk_translate for disk.
  size_t restarting_leaves = 0;
  std::string phase;
  double phase_bytes_per_sec = 0;
  /// Live heartbeat progress of the restarting batch (real rollovers only:
  /// read from the leaves' shm heartbeat blocks; zero in pure simulation).
  /// bytes_copied/bytes_total is the copy-phase completion fraction the
  /// dashboard renders as a percentage.
  uint64_t bytes_copied = 0;
  uint64_t bytes_total = 0;
};

/// Results of one simulated rollover.
struct RolloverReport {
  double total_seconds = 0;
  /// Time-weighted mean fraction of data online during the rollover.
  double mean_data_availability = 0;
  /// Worst-case instantaneous availability.
  double min_data_availability = 1.0;
  /// Leaves that fell back to disk recovery (watchdog kills).
  size_t disk_fallbacks = 0;
  size_t num_batches = 0;
  std::vector<DashboardSample> timeline;

  /// Fraction of a `window_seconds` period (e.g. a week) during which
  /// 100% of data is available, assuming one rollover per window — the
  /// paper's "93% of the time" vs "99.5%" metric (§1).
  double FullAvailabilityFraction(double window_seconds) const {
    if (window_seconds <= 0) return 0;
    double frac = 1.0 - total_seconds / window_seconds;
    return frac < 0 ? 0 : frac;
  }
};

/// Batch-synchronous discrete-event simulation of a cluster rollover:
/// restart `batch_fraction` of leaves at a time, spread across machines
/// (at most `max_restarting_per_machine` concurrent per machine), wait for
/// the slowest leaf of the batch, repeat. Per-leaf durations come from the
/// cost model, with machine bandwidth shared among concurrent restarts on
/// the same machine.
RolloverReport SimulateRollover(const RolloverSimConfig& config);

/// Whole-cluster simultaneous restart (§6 closing numbers: "restart the
/// entire cluster ... in under an hour by using shared memory ... disk
/// recovery takes about 12 hours" — with ALL machines restarting, limited
/// by per-machine bandwidth): every machine restarts all of its leaves,
/// `concurrent_per_machine` at a time. Used by bench_parallel_restart to
/// show why one-leaf-per-machine batches are the right rollover shape.
double SimulateFullClusterRestartSeconds(const RolloverSimConfig& config,
                                         size_t concurrent_per_machine);

}  // namespace scuba

#endif  // SCUBA_CLUSTER_ROLLOVER_SIM_H_
