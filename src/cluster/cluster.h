#ifndef SCUBA_CLUSTER_CLUSTER_H_
#define SCUBA_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/rollover_sim.h"
#include "ingest/category_log.h"
#include "ingest/tailer.h"
#include "server/aggregator.h"
#include "server/leaf_server.h"
#include "util/random.h"
#include "util/status.h"

namespace scuba {

/// Configuration of an in-process mini-cluster.
struct ClusterConfig {
  size_t num_machines = 2;
  /// "Each machine currently runs eight leaf servers" (§2) — eight gives
  /// query parallelism AND lets a rollover take down only 1/8 of a
  /// machine's data at a time.
  size_t leaves_per_machine = 8;
  std::string namespace_prefix = "scubacluster";
  /// Root directory for per-leaf backup dirs ("" = no disk backups).
  std::string backup_root;
  uint64_t leaf_memory_capacity_bytes = 256ull << 20;
  bool memory_recovery_enabled = true;
  TableLimits default_table_limits;
  /// Fanned into every leaf: publish restart progress through the per-leaf
  /// shm heartbeat block (the rollover monitor and dashboard read it).
  bool publish_restart_heartbeat = true;
  /// Fanned into every leaf: run the self-stats exporter, filling the
  /// reserved `__scuba_stats` table ("Scuba monitors Scuba").
  bool self_stats_enabled = false;
  int64_t self_stats_period_millis = 1000;
  /// Aggregator query observability: trace-sample every Nth non-system
  /// query into a span timeline (0 = off).
  uint64_t trace_sample_every_n = 0;
  /// Slow-query log: a non-system query slower than this gets a row in
  /// `__scuba_queries` via a leaf's StatsExporter (0 = off). Needs
  /// self_stats_enabled (the exporter is the log's writer).
  int64_t slow_query_log_threshold_micros = 0;
  /// Also log every Nth non-system query regardless of latency (0 = off).
  uint64_t slow_query_sample_every_n = 0;
  Clock* clock = nullptr;
  uint64_t seed = 11;
};

/// Options for a REAL (in-process, not simulated) rolling upgrade.
struct RealRolloverOptions {
  /// Fraction of leaves restarted per batch (paper: 2%).
  double batch_fraction = 0.02;
  /// At most this many concurrent restarts per machine (paper: 1).
  size_t max_restarting_per_machine = 1;
  /// Use the shared memory path; false forces disk recovery.
  bool use_shared_memory = true;
  /// Pump tailers and sample availability between batches.
  bool pump_tailers_between_batches = true;
  /// Probability that a leaf's clean shutdown is killed by the watchdog
  /// (§4.3) and its successor must disk-recover. Failure injection for
  /// tests/benches; the rollover itself must survive it.
  double inject_shutdown_kill_rate = 0.0;
  /// Phase-aware watchdog: run each shm shutdown on a worker thread while
  /// the orchestrator polls the leaf's heartbeat block. A leaf whose
  /// heartbeat stops advancing for `heartbeat_stall_millis` gets a targeted
  /// RequestShutdownCancel() — it aborts at the next row-block boundary and
  /// its successor disk-recovers. This replaces the paper's blunt
  /// "kill -9 after 180 s" (§4.3) with progress-based stall detection; the
  /// default threshold keeps the same 3-minute patience.
  bool monitor_heartbeat = true;
  int64_t heartbeat_stall_millis = 180'000;
  int64_t heartbeat_poll_millis = 10;
};

/// Outcome of a real rollover.
struct RealRolloverReport {
  int64_t total_micros = 0;
  size_t num_batches = 0;
  size_t leaves_rolled = 0;
  size_t shm_recoveries = 0;
  size_t disk_recoveries = 0;
  size_t fresh_recoveries = 0;  // leaf held no data (placement skew)
  size_t watchdog_kills = 0;
  /// Subset of watchdog_kills issued by the heartbeat stall monitor (as
  /// opposed to injected kills).
  size_t heartbeat_stall_cancels = 0;
  uint64_t rows_before = 0;
  uint64_t rows_after = 0;
  double min_availability = 1.0;
  std::vector<DashboardSample> timeline;
};

/// An in-process Scuba mini-cluster: machines x leaves, one aggregator,
/// a Scribe-like log with tailers, and a rollover orchestrator that
/// actually exercises the shared-memory restart path on every leaf
/// (Fig 1 + §4.5, at laptop scale).
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every leaf (recovering from shm/disk if state exists).
  Status Start();

  size_t num_leaves() const { return leaves_.size(); }
  LeafServer* leaf(size_t i) { return leaves_[i].get(); }
  /// Machine index hosting leaf `i` (leaves are striped round-robin).
  size_t MachineOf(size_t i) const { return i % config_.num_machines; }

  Aggregator& aggregator() { return aggregator_; }
  CategoryLog& log() { return log_; }

  /// Adds a tailer for `category` delivering to all leaves.
  void AddTailer(const std::string& category, size_t batch_rows = 512);

  /// Pumps every tailer once; returns rows delivered.
  StatusOr<uint64_t> PumpTailers(bool flush = false);

  /// Executes a rolling upgrade over all leaves: `batch_fraction` at a
  /// time, spread across machines, each leaf restarting through shared
  /// memory (or disk). Queries keep working throughout with partial
  /// results.
  StatusOr<RealRolloverReport> Rollover(const RealRolloverOptions& options);

  /// Cleanly shuts every leaf down to shared memory (for process handoff
  /// demos). After this the cluster is dead; a new Cluster with the same
  /// config recovers from shm.
  Status ShutdownAllToSharedMemory();

  /// Total rows across live leaves.
  uint64_t TotalRowCount() const;

  /// Removes every shm segment and backup file this cluster created.
  void Cleanup();

 private:
  LeafServerConfig MakeLeafConfig(uint32_t leaf_id) const;
  std::vector<LeafServer*> LeafPointers() const;
  /// Restarts one leaf via shutdown-to-shm + new server + recover.
  /// `base_sample` builds a DashboardSample with the time/fraction fields
  /// filled; the heartbeat monitor copies it, adds live phase + bytes, and
  /// appends it to the report timeline on every phase transition.
  Status RolloverLeaf(size_t index, const RealRolloverOptions& options,
                      RealRolloverReport* report,
                      const std::function<DashboardSample()>& base_sample);
  /// Runs `old_leaf`'s shm shutdown on a worker thread while polling its
  /// heartbeat block; cancels it on stall. Returns the shutdown status.
  Status MonitoredShutdown(LeafServer* old_leaf,
                           const RealRolloverOptions& options,
                           RealRolloverReport* report,
                           const std::function<DashboardSample()>& base_sample);

  ClusterConfig config_;
  Random random_{11};
  std::vector<std::unique_ptr<LeafServer>> leaves_;
  Aggregator aggregator_;
  CategoryLog log_;
  std::vector<std::unique_ptr<Tailer>> tailers_;
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_CLUSTER_H_
