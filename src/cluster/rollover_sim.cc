#include "cluster/rollover_sim.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/random.h"

namespace scuba {
namespace {

// Process-wide rollover-sim counters (scuba.cluster.rollover.*).
struct RolloverMetrics {
  obs::Counter* rollovers;
  obs::Counter* batches;
  obs::Counter* leaves_restarted;
  obs::Counter* disk_fallbacks;

  static RolloverMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static RolloverMetrics m{
        reg.GetCounter("scuba.cluster.rollover.rollovers"),
        reg.GetCounter("scuba.cluster.rollover.batches"),
        reg.GetCounter("scuba.cluster.rollover.leaves_restarted"),
        reg.GetCounter("scuba.cluster.rollover.disk_fallbacks")};
    return m;
  }
};

// Seconds for one leaf to restart when `contention` leaves share its
// machine's bandwidth (§4.2: machine bandwidth is constant regardless of
// how many servers roll over).
double LeafRestartSeconds(const RolloverSimConfig& config, RecoveryPath path,
                          size_t contention) {
  const CostModel& costs = config.costs;
  double bytes = static_cast<double>(config.bytes_per_leaf);
  double k = static_cast<double>(contention);
  if (path == RecoveryPath::kSharedMemory) {
    // Copy out at shutdown + copy back at startup, both memcpy-bound;
    // the parallel copy engine raises the per-leaf stream rate up to the
    // machine bandwidth ceiling.
    double copy = 2.0 * bytes / costs.ShmCopyRate(k);
    return copy + costs.per_leaf_fixed_seconds;
  }
  double read = bytes / (costs.disk_read_bytes_per_sec / k);
  double translate = bytes / costs.DiskTranslateRate(k);
  return read + translate + costs.per_leaf_fixed_seconds;
}

// The phase schedule of one clean restart under `contention`, named after
// the tracer spans of the real pipeline. Durations are the cost model's;
// fixed per-leaf overhead is excluded (it has no meaningful throughput).
struct PhaseSlice {
  const char* name;
  double seconds;
  double bytes;  // bytes each leaf moves during this phase
};

std::vector<PhaseSlice> BatchPhases(const RolloverSimConfig& config,
                                    size_t contention) {
  const CostModel& costs = config.costs;
  double bytes = static_cast<double>(config.bytes_per_leaf);
  double k = static_cast<double>(contention);
  if (config.path == RecoveryPath::kSharedMemory) {
    double copy = bytes / costs.ShmCopyRate(k);
    return {{"copy_out", copy, bytes}, {"copy_in", copy, bytes}};
  }
  return {{"disk_read", bytes / (costs.disk_read_bytes_per_sec / k), bytes},
          {"disk_translate", bytes / costs.DiskTranslateRate(k), bytes}};
}

}  // namespace

RolloverReport SimulateRollover(const RolloverSimConfig& config) {
  RolloverReport report;
  Random random(config.seed);
  RolloverMetrics& metrics = RolloverMetrics::Get();
  metrics.rollovers->Add(1);

  const size_t total_leaves = config.num_machines * config.leaves_per_machine;
  if (total_leaves == 0) return report;

  size_t batch_size = std::max<size_t>(
      1, static_cast<size_t>(std::floor(static_cast<double>(total_leaves) *
                                        config.batch_fraction)));
  batch_size = std::min(batch_size,
                        config.num_machines * config.max_restarting_per_machine);

  // Enumerate leaves machine-striped (slot-major) so consecutive batch
  // members land on distinct machines: leaf i lives on machine i % M.
  double now = 0;
  size_t restarted = 0;
  double weighted_online = 0;

  auto sample_at = [&](size_t restarting, double at) -> DashboardSample& {
    DashboardSample s;
    s.time_seconds = at;
    s.restarting_leaves = restarting;
    s.fraction_restarting =
        static_cast<double>(restarting) / static_cast<double>(total_leaves);
    s.fraction_new =
        static_cast<double>(restarted) / static_cast<double>(total_leaves);
    s.fraction_old = 1.0 - s.fraction_restarting - s.fraction_new;
    report.timeline.push_back(s);
    return report.timeline.back();
  };
  auto sample = [&](size_t restarting) -> DashboardSample& {
    return sample_at(restarting, now);
  };

  sample(0);
  while (restarted < total_leaves) {
    size_t batch = std::min(batch_size, total_leaves - restarted);

    // Contention: how many of this batch land on the same machine. With
    // striping, batch leaves spread evenly; machines receive either
    // floor(batch/M) or ceil(batch/M) leaves.
    size_t per_machine =
        (batch + config.num_machines - 1) / config.num_machines;
    per_machine = std::min(per_machine, config.max_restarting_per_machine);
    per_machine = std::max<size_t>(per_machine, 1);

    // Batch duration = slowest member; watchdog kills take the shm dead
    // time and then disk-recover.
    double batch_seconds = 0;
    for (size_t i = 0; i < batch; ++i) {
      double leaf_seconds;
      if (config.path == RecoveryPath::kSharedMemory &&
          random.Bernoulli(config.shutdown_kill_probability)) {
        ++report.disk_fallbacks;
        metrics.disk_fallbacks->Add(1);
        leaf_seconds =
            config.watchdog_timeout_seconds +
            LeafRestartSeconds(config, RecoveryPath::kDisk, per_machine);
      } else {
        leaf_seconds = LeafRestartSeconds(config, config.path, per_machine);
      }
      batch_seconds = std::max(batch_seconds, leaf_seconds);
    }

    sample(batch);  // batch begins: these leaves go offline
    double online =
        1.0 - static_cast<double>(batch) / static_cast<double>(total_leaves);
    report.min_data_availability =
        std::min(report.min_data_availability, online);
    weighted_online += online * batch_seconds;

    // Live phase sub-samples: what the batch's leaves are doing and how
    // fast the batch moves bytes in each phase.
    double phase_time = now;
    for (const PhaseSlice& p : BatchPhases(config, per_machine)) {
      DashboardSample& s = sample_at(batch, phase_time);
      s.phase = p.name;
      s.phase_bytes_per_sec =
          p.seconds > 0
              ? static_cast<double>(batch) * p.bytes / p.seconds
              : 0;
      phase_time += p.seconds;
    }

    now += batch_seconds;
    restarted += batch;
    ++report.num_batches;
    metrics.batches->Add(1);
    metrics.leaves_restarted->Add(batch);
    sample(0);  // batch ends: everyone back online
  }

  // Deployment tooling overhead (§6): serving continues during it.
  weighted_online += 1.0 * config.costs.deploy_overhead_seconds;
  now += config.costs.deploy_overhead_seconds;
  sample(0);

  report.total_seconds = now;
  report.mean_data_availability = now > 0 ? weighted_online / now : 1.0;
  return report;
}

double SimulateFullClusterRestartSeconds(const RolloverSimConfig& config,
                                         size_t concurrent_per_machine) {
  size_t k = std::max<size_t>(1, concurrent_per_machine);
  k = std::min(k, config.leaves_per_machine);
  size_t waves = (config.leaves_per_machine + k - 1) / k;
  double wave_seconds = LeafRestartSeconds(config, config.path, k);
  // All machines proceed in parallel; each machine serializes its waves.
  return static_cast<double>(waves) * wave_seconds;
}

}  // namespace scuba
