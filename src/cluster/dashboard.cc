#include "cluster/dashboard.h"

#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace scuba {

std::string Dashboard::RenderSample(const DashboardSample& sample,
                                    size_t bar_width) {
  size_t old_chars = static_cast<size_t>(
      std::round(sample.fraction_old * static_cast<double>(bar_width)));
  size_t roll_chars = static_cast<size_t>(
      std::round(sample.fraction_restarting * static_cast<double>(bar_width)));
  if (old_chars + roll_chars > bar_width) {
    roll_chars = bar_width - old_chars;
  }
  size_t new_chars = bar_width - old_chars - roll_chars;

  std::string bar;
  bar.append(old_chars, 'o');
  bar.append(roll_chars, '#');
  bar.append(new_chars, 'n');

  char line[160];
  std::snprintf(line, sizeof(line),
                "t=%8.0fs  [%s]  old %4.1f%%  roll %4.1f%%  new %4.1f%%",
                sample.time_seconds, bar.c_str(), sample.fraction_old * 100,
                sample.fraction_restarting * 100, sample.fraction_new * 100);
  return line;
}

std::string Dashboard::RenderDetailedSample(const DashboardSample& sample,
                                            size_t bar_width) {
  std::string line = RenderSample(sample, bar_width);
  if (sample.phase.empty()) return line;
  char detail[128];
  if (sample.bytes_total > 0) {
    // Heartbeat-fed live view: copy-phase completion from the shm block.
    double pct = 100.0 * static_cast<double>(sample.bytes_copied) /
                 static_cast<double>(sample.bytes_total);
    std::snprintf(detail, sizeof(detail),
                  "  | %zu leaves %s %5.1f%% (%llu/%llu bytes)",
                  sample.restarting_leaves, sample.phase.c_str(), pct,
                  static_cast<unsigned long long>(sample.bytes_copied),
                  static_cast<unsigned long long>(sample.bytes_total));
  } else {
    std::snprintf(detail, sizeof(detail), "  | %zu leaves %s %.2f GB/s",
                  sample.restarting_leaves, sample.phase.c_str(),
                  sample.phase_bytes_per_sec / (1024.0 * 1024.0 * 1024.0));
  }
  return line + detail;
}

std::string Dashboard::Render(const std::vector<DashboardSample>& timeline,
                              size_t max_rows, size_t bar_width) {
  std::string out;
  if (timeline.empty()) return out;
  size_t stride =
      timeline.size() <= max_rows ? 1 : (timeline.size() + max_rows - 1) /
                                            max_rows;
  for (size_t i = 0; i < timeline.size(); i += stride) {
    out += RenderSample(timeline[i], bar_width);
    out += '\n';
  }
  if ((timeline.size() - 1) % stride != 0) {
    out += RenderSample(timeline.back(), bar_width);
    out += '\n';
  }
  return out;
}

std::string Dashboard::RenderDetailed(
    const std::vector<DashboardSample>& timeline, size_t max_rows,
    size_t bar_width) {
  std::string out;
  if (timeline.empty()) return out;
  size_t stride =
      timeline.size() <= max_rows ? 1 : (timeline.size() + max_rows - 1) /
                                            max_rows;
  for (size_t i = 0; i < timeline.size(); i += stride) {
    out += RenderDetailedSample(timeline[i], bar_width);
    out += '\n';
  }
  if ((timeline.size() - 1) % stride != 0) {
    out += RenderDetailedSample(timeline.back(), bar_width);
    out += '\n';
  }
  return out;
}

Dashboard::QueryPanelStats Dashboard::CollectQueryPanel(
    const Aggregator& aggregator, double window_seconds) {
  QueryPanelStats stats;
  Aggregator::QueryPanelData panel = aggregator.SampleQueryPanel();
  stats.queries = panel.queries;
  stats.slowest_query_id = panel.slowest_query_id;
  stats.slowest_latency_micros = panel.slowest_latency_micros;
  stats.slowest_fingerprint = panel.slowest_fingerprint;
  const ResultCache* cache = aggregator.result_cache();
  if (cache != nullptr) {
    ResultCache::Stats cs = cache->GetStats();
    stats.cache_enabled = true;
    stats.cache_hits = cs.hits;
    stats.cache_misses = cs.misses;
    stats.cache_bytes = cs.bytes;
    stats.cache_entries = cs.entries;
  }
  if (window_seconds > 0.0) {
    stats.qps = static_cast<double>(panel.queries) / window_seconds;
  }
  obs::Histogram::Snapshot latency =
      obs::MetricsRegistry::Global()
          .GetHistogram("scuba.server.aggregator.query_latency_micros")
          ->TakeSnapshot();
  stats.p50_micros = latency.Percentile(0.50);
  stats.p95_micros = latency.Percentile(0.95);
  stats.p99_micros = latency.Percentile(0.99);
  return stats;
}

std::string Dashboard::RenderQueryPanel(const QueryPanelStats& stats) {
  char line1[160];
  std::snprintf(line1, sizeof(line1),
                "queries: %llu (%.1f/s)  p50 %.1f ms  p95 %.1f ms  "
                "p99 %.1f ms",
                static_cast<unsigned long long>(stats.queries), stats.qps,
                stats.p50_micros / 1000.0, stats.p95_micros / 1000.0,
                stats.p99_micros / 1000.0);
  std::string out = line1;
  out += '\n';
  if (stats.slowest_query_id != 0) {
    char line2[192];
    std::snprintf(line2, sizeof(line2), "slowest: query %llu  %.1f ms  %s",
                  static_cast<unsigned long long>(stats.slowest_query_id),
                  static_cast<double>(stats.slowest_latency_micros) / 1000.0,
                  stats.slowest_fingerprint.c_str());
    out += line2;
  } else {
    out += "slowest: (none)";
  }
  out += '\n';
  if (stats.cache_enabled) {
    uint64_t lookups = stats.cache_hits + stats.cache_misses;
    double hit_pct = lookups > 0 ? 100.0 * static_cast<double>(
                                       stats.cache_hits) /
                                       static_cast<double>(lookups)
                                 : 0.0;
    char line3[160];
    std::snprintf(line3, sizeof(line3),
                  "cache:   hits %llu  misses %llu  (%.1f%%)  "
                  "%llu entries, %.1f MB",
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.cache_misses), hit_pct,
                  static_cast<unsigned long long>(stats.cache_entries),
                  static_cast<double>(stats.cache_bytes) / (1024.0 * 1024.0));
    out += line3;
    out += '\n';
  }
  return out;
}

}  // namespace scuba
