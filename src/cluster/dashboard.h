#ifndef SCUBA_CLUSTER_DASHBOARD_H_
#define SCUBA_CLUSTER_DASHBOARD_H_

#include <string>
#include <vector>

#include "cluster/rollover_sim.h"

namespace scuba {

/// Renders the rollover progress dashboard of Fig 8 as text: one bar per
/// sampled time showing the old / rolling-over / new mix of the cluster.
///
///   t=     0s  [oooooooooooooooooooooooooooooooo............]  old  98%  roll  2%  new   0%
///
/// 'o' = old version, '#' = restarting, 'n' = new version.
class Dashboard {
 public:
  /// Renders up to `max_rows` evenly spaced samples from the timeline.
  static std::string Render(const std::vector<DashboardSample>& timeline,
                            size_t max_rows = 16, size_t bar_width = 48);

  /// Renders one sample as a single bar line.
  static std::string RenderSample(const DashboardSample& sample,
                                  size_t bar_width = 48);

  /// Renders one sample with the live restart detail appended: how many
  /// leaves are offline, which pipeline phase they are in (copy_out,
  /// copy_in, disk_read, disk_translate) and the batch's aggregate
  /// throughput. A sample with no phase renders exactly like RenderSample.
  ///
  ///   t=     0s  [oo##..]  old 98%  roll 2%  new 0%  | 16 leaves copy_out 12.3 GB/s
  static std::string RenderDetailedSample(const DashboardSample& sample,
                                          size_t bar_width = 48);

  /// Render() with RenderDetailedSample rows: the live view of a rollover,
  /// per-leaf restart phase and throughput included.
  static std::string RenderDetailed(const std::vector<DashboardSample>& timeline,
                                    size_t max_rows = 16,
                                    size_t bar_width = 48);
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_DASHBOARD_H_
