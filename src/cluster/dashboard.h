#ifndef SCUBA_CLUSTER_DASHBOARD_H_
#define SCUBA_CLUSTER_DASHBOARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/rollover_sim.h"
#include "server/aggregator.h"

namespace scuba {

/// Renders the rollover progress dashboard of Fig 8 as text: one bar per
/// sampled time showing the old / rolling-over / new mix of the cluster.
///
///   t=     0s  [oooooooooooooooooooooooooooooooo............]  old  98%  roll  2%  new   0%
///
/// 'o' = old version, '#' = restarting, 'n' = new version.
class Dashboard {
 public:
  /// Renders up to `max_rows` evenly spaced samples from the timeline.
  static std::string Render(const std::vector<DashboardSample>& timeline,
                            size_t max_rows = 16, size_t bar_width = 48);

  /// Renders one sample as a single bar line.
  static std::string RenderSample(const DashboardSample& sample,
                                  size_t bar_width = 48);

  /// Renders one sample with the live restart detail appended: how many
  /// leaves are offline, which pipeline phase they are in (copy_out,
  /// copy_in, disk_read, disk_translate) and the batch's aggregate
  /// throughput. A sample with no phase renders exactly like RenderSample.
  ///
  ///   t=     0s  [oo##..]  old 98%  roll 2%  new 0%  | 16 leaves copy_out 12.3 GB/s
  static std::string RenderDetailedSample(const DashboardSample& sample,
                                          size_t bar_width = 48);

  /// Render() with RenderDetailedSample rows: the live view of a rollover,
  /// per-leaf restart phase and throughput included.
  static std::string RenderDetailed(const std::vector<DashboardSample>& timeline,
                                    size_t max_rows = 16,
                                    size_t bar_width = 48);

  /// Everything the query panel shows. CollectQueryPanel fills the latency
  /// fields from the aggregator's registry histogram and the rest from
  /// Aggregator::SampleQueryPanel; tests may also fill one by hand.
  struct QueryPanelStats {
    uint64_t queries = 0;             // non-system queries answered
    double qps = 0.0;                 // queries / window_seconds
    double p50_micros = 0.0;          // from the latency histogram
    double p95_micros = 0.0;
    double p99_micros = 0.0;
    uint64_t slowest_query_id = 0;
    int64_t slowest_latency_micros = 0;
    std::string slowest_fingerprint;
    // Aggregator result cache (server/result_cache.h); all zero — and the
    // panel's cache line absent — when the cache is disabled.
    bool cache_enabled = false;
    uint64_t cache_hits = 0;          // whole-bucket segments served cached
    uint64_t cache_misses = 0;        // segments that had to rescan a leaf
    uint64_t cache_bytes = 0;         // resident cached partials
    uint64_t cache_entries = 0;
  };

  /// Samples the aggregator (panel counters + the global
  /// scuba.server.aggregator.query_latency_micros histogram).
  /// `window_seconds` <= 0 leaves qps at 0.
  static QueryPanelStats CollectQueryPanel(const Aggregator& aggregator,
                                           double window_seconds);

  /// Query panel; the cache line appears only when the result cache is on:
  ///   queries: 1234 (41.1/s)  p50 0.8 ms  p95 3.1 ms  p99 9.4 ms
  ///   slowest: query 87 12.3 ms  events|service==?|count
  ///   cache:   hits 960  misses 64  (93.8%)  12 entries, 0.3 MB
  static std::string RenderQueryPanel(const QueryPanelStats& stats);
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_DASHBOARD_H_
