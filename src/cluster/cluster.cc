#include "cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "disk/file.h"
#include "shm/restart_heartbeat.h"
#include "shm/shm_segment.h"
#include "util/clock.h"
#include "util/logging.h"

namespace scuba {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), random_(config_.seed) {
  size_t total = config_.num_machines * config_.leaves_per_machine;
  leaves_.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    leaves_.push_back(
        std::make_unique<LeafServer>(MakeLeafConfig(static_cast<uint32_t>(i))));
  }
  aggregator_.SetLeaves(LeafPointers());
  aggregator_.SetTraceSampling(config_.trace_sample_every_n);
  aggregator_.SetSlowQueryLog(config_.slow_query_log_threshold_micros,
                              config_.slow_query_sample_every_n);
}

Cluster::~Cluster() = default;

LeafServerConfig Cluster::MakeLeafConfig(uint32_t leaf_id) const {
  LeafServerConfig lc;
  lc.leaf_id = leaf_id;
  lc.namespace_prefix = config_.namespace_prefix;
  if (!config_.backup_root.empty()) {
    lc.backup_dir = config_.backup_root + "/leaf_" + std::to_string(leaf_id);
  }
  lc.memory_recovery_enabled = config_.memory_recovery_enabled;
  lc.memory_capacity_bytes = config_.leaf_memory_capacity_bytes;
  lc.default_table_limits = config_.default_table_limits;
  lc.publish_restart_heartbeat = config_.publish_restart_heartbeat;
  lc.self_stats_enabled = config_.self_stats_enabled;
  lc.self_stats_period_millis = config_.self_stats_period_millis;
  lc.clock = config_.clock;
  return lc;
}

std::vector<LeafServer*> Cluster::LeafPointers() const {
  std::vector<LeafServer*> pointers;
  pointers.reserve(leaves_.size());
  for (const auto& leaf : leaves_) pointers.push_back(leaf.get());
  return pointers;
}

Status Cluster::Start() {
  if (!config_.backup_root.empty()) {
    SCUBA_RETURN_IF_ERROR(EnsureDir(config_.backup_root));
  }
  for (auto& leaf : leaves_) {
    SCUBA_ASSIGN_OR_RETURN(RecoveryResult result, leaf->Start());
    (void)result;
  }
  return Status::OK();
}

void Cluster::AddTailer(const std::string& category, size_t batch_rows) {
  TailerConfig tc;
  tc.category = category;
  tc.batch_rows = batch_rows;
  tc.seed = config_.seed + tailers_.size() + 1;
  tailers_.push_back(std::make_unique<Tailer>(tc, &log_, LeafPointers()));
}

StatusOr<uint64_t> Cluster::PumpTailers(bool flush) {
  uint64_t delivered = 0;
  for (auto& tailer : tailers_) {
    SCUBA_ASSIGN_OR_RETURN(uint64_t n, tailer->Pump(flush));
    delivered += n;
  }
  return delivered;
}

Status Cluster::MonitoredShutdown(
    LeafServer* old_leaf, const RealRolloverOptions& options,
    RealRolloverReport* report,
    const std::function<DashboardSample()>& base_sample) {
  uint32_t leaf_id = old_leaf->config().leaf_id;
  auto reader =
      RestartHeartbeat::OpenForRead(config_.namespace_prefix, leaf_id);
  ShutdownStats stats;
  if (!reader.ok()) {
    // No heartbeat block (leaf opted out or attach failed at start): fall
    // back to the unmonitored synchronous path.
    return old_leaf->ShutdownToSharedMemory(&stats);
  }

  Status shutdown_status;
  std::atomic<bool> done{false};
  std::thread worker([&] {
    shutdown_status = old_leaf->ShutdownToSharedMemory(&stats);
    done.store(true, std::memory_order_release);
  });

  // Poll the heartbeat: any advance (phase, bytes, or stamp) resets the
  // stall clock; silence past the threshold means the copy loop is wedged
  // (or the process would be dead, in the multi-process deployment) and
  // the leaf gets a targeted cancel instead of a blind kill -9.
  RestartHeartbeat::Reading last{};
  RestartPhase recorded_phase = RestartPhase::kIdle;
  int64_t last_advance_micros = RestartHeartbeat::MonotonicMicros();
  const int64_t stall_micros = options.heartbeat_stall_millis * 1000;
  bool cancelled = false;
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.heartbeat_poll_millis));
    auto reading = reader->Read();
    if (reading.ok()) {
      if (reading->AdvancedOver(last)) {
        last = *reading;
        last_advance_micros = RestartHeartbeat::MonotonicMicros();
      }
      // Timeline: one live sample per phase transition, carrying the
      // heartbeat's progress counters for the dashboard.
      if (reading->phase != recorded_phase) {
        recorded_phase = reading->phase;
        DashboardSample s = base_sample();
        s.phase = std::string(RestartPhaseName(reading->phase));
        s.bytes_copied = reading->bytes_copied;
        s.bytes_total = reading->bytes_total;
        report->timeline.push_back(s);
      }
    }
    if (!cancelled && stall_micros > 0 &&
        RestartHeartbeat::MonotonicMicros() - last_advance_micros >
            stall_micros) {
      SCUBA_WARN << "leaf " << leaf_id << " heartbeat stalled in phase "
                 << RestartPhaseName(last.phase) << " ("
                 << last.bytes_copied << "/" << last.bytes_total
                 << " bytes); cancelling shutdown";
      old_leaf->RequestShutdownCancel();
      cancelled = true;
      ++report->heartbeat_stall_cancels;
    }
  }
  worker.join();
  return shutdown_status;
}

Status Cluster::RolloverLeaf(
    size_t index, const RealRolloverOptions& options,
    RealRolloverReport* report,
    const std::function<DashboardSample()>& base_sample) {
  LeafServer* old_leaf = leaves_[index].get();
  uint32_t leaf_id = old_leaf->config().leaf_id;

  if (options.use_shared_memory) {
    if (options.inject_shutdown_kill_rate > 0 &&
        random_.Bernoulli(options.inject_shutdown_kill_rate)) {
      old_leaf->InjectShutdownKillForTest();
    }
    Status s;
    if (options.monitor_heartbeat &&
        old_leaf->config().publish_restart_heartbeat) {
      s = MonitoredShutdown(old_leaf, options, report, base_sample);
    } else {
      ShutdownStats stats;
      s = old_leaf->ShutdownToSharedMemory(&stats);
    }
    if (s.IsAborted()) {
      // Watchdog kill (§4.3): the script gives up on this leaf; its
      // successor recovers from the disk backup instead.
      ++report->watchdog_kills;
    } else {
      SCUBA_RETURN_IF_ERROR(s);
    }
  } else {
    // Forced disk path: flush backups via clean shm shutdown, then scrub
    // the segments so the new process must read from disk.
    ShutdownStats stats;
    SCUBA_RETURN_IF_ERROR(old_leaf->ShutdownToSharedMemory(&stats));
    ShmSegment::RemoveAll("/" + config_.namespace_prefix + "_leaf_" +
                          std::to_string(leaf_id) + "_");
  }

  // The "new binary": a fresh LeafServer for the same id recovers the
  // previous process's state.
  auto fresh = std::make_unique<LeafServer>(MakeLeafConfig(leaf_id));
  SCUBA_ASSIGN_OR_RETURN(RecoveryResult result, fresh->Start());
  switch (result.source) {
    case RecoverySource::kSharedMemory:
      ++report->shm_recoveries;
      break;
    case RecoverySource::kDisk:
      ++report->disk_recoveries;
      break;
    case RecoverySource::kFresh:
      ++report->fresh_recoveries;
      break;
  }
  leaves_[index] = std::move(fresh);
  return Status::OK();
}

StatusOr<RealRolloverReport> Cluster::Rollover(
    const RealRolloverOptions& options) {
  RealRolloverReport report;
  Stopwatch watch;

  const size_t total = leaves_.size();
  report.rows_before = TotalRowCount();
  size_t batch_size = std::max<size_t>(
      1, static_cast<size_t>(std::floor(static_cast<double>(total) *
                                        options.batch_fraction)));
  batch_size = std::min(
      batch_size, config_.num_machines * options.max_restarting_per_machine);

  // Stripe the batch across machines: leaves are stored machine-striped
  // (leaf i on machine i % M), so consecutive indices hit distinct
  // machines.
  size_t next = 0;
  auto base = [&](size_t restarting) {
    DashboardSample s;
    s.time_seconds = static_cast<double>(watch.ElapsedMicros()) / 1e6;
    s.fraction_restarting =
        static_cast<double>(restarting) / static_cast<double>(total);
    s.fraction_new =
        static_cast<double>(report.leaves_rolled) / static_cast<double>(total);
    s.fraction_old = 1.0 - s.fraction_restarting - s.fraction_new;
    s.restarting_leaves = restarting;
    return s;
  };
  auto sample = [&](size_t restarting) {
    report.timeline.push_back(base(restarting));
  };

  sample(0);
  while (next < total) {
    size_t batch = std::min(batch_size, total - next);
    sample(batch);
    report.min_availability = std::min(
        report.min_availability,
        1.0 - static_cast<double>(batch) / static_cast<double>(total));

    for (size_t i = 0; i < batch; ++i) {
      SCUBA_RETURN_IF_ERROR(
          RolloverLeaf(next + i, options, &report, [&] { return base(1); }));
      ++report.leaves_rolled;
    }
    next += batch;
    ++report.num_batches;

    // Leaf objects were replaced: refresh every pointer holder.
    aggregator_.SetLeaves(LeafPointers());
    for (auto& tailer : tailers_) tailer->SetLeaves(LeafPointers());

    if (options.pump_tailers_between_batches) {
      SCUBA_RETURN_IF_ERROR(PumpTailers().status());
    }
    sample(0);
  }

  report.rows_after = TotalRowCount();
  report.total_micros = watch.ElapsedMicros();
  return report;
}

Status Cluster::ShutdownAllToSharedMemory() {
  for (auto& leaf : leaves_) {
    if (leaf->state() == LeafState::kAlive) {
      ShutdownStats stats;
      SCUBA_RETURN_IF_ERROR(leaf->ShutdownToSharedMemory(&stats));
    }
  }
  return Status::OK();
}

uint64_t Cluster::TotalRowCount() const {
  uint64_t rows = 0;
  for (const auto& leaf : leaves_) {
    if (leaf->state() == LeafState::kAlive) rows += leaf->RowCount();
  }
  return rows;
}

void Cluster::Cleanup() {
  ShmSegment::RemoveAll("/" + config_.namespace_prefix + "_");
  if (!config_.backup_root.empty()) {
    for (const auto& leaf : leaves_) {
      const std::string& dir = leaf->config().backup_dir;
      // Remove every backup artifact regardless of format (.bak, .cols,
      // .tail.<k>).
      auto files = ListFiles(dir, "");
      if (files.ok()) {
        for (const std::string& f : *files) RemoveFile(dir + "/" + f).ok();
      }
      ::remove(dir.c_str());
    }
    ::remove(config_.backup_root.c_str());
  }
}

}  // namespace scuba
