#ifndef SCUBA_CLUSTER_COST_MODEL_H_
#define SCUBA_CLUSTER_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace scuba {

/// Per-byte and fixed costs that drive the cluster rollover simulator.
///
/// Defaults are calibrated to the paper's production numbers (144 GB
/// machines, 8 leaves of 10-15 GB each, spinning disks):
///   - disk read: 120 GB in 20-25 min  =>  ~85-100 MB/s per machine (§1)
///   - disk translate: 120 GB in ~2.5 h => ~13-15 MB/s per machine (§1)
///   - shm copy: "3-4 seconds" for 10-15 GB => multi-GB/s memcpy (§4.3)
///   - per-leaf rollover slot ~2-3 min including "the time to detect that
///     a leaf is done with recovery and then initiate rollover for the
///     next one" (§4.5)
///   - deployment software overhead ~40 min per full rollover (§6)
///
/// Benches overwrite the byte rates with locally measured values
/// (bench_shutdown_restore / bench_disk_vs_shm) before simulating, so the
/// simulated shapes rest on measured per-byte costs.
struct CostModel {
  /// Heap<->shm memcpy rate of one machine (shared by its restarting
  /// leaves: "memory bandwidth for a machine is constant, no matter how
  /// many servers try to roll over", §4.2).
  double shm_copy_bytes_per_sec = 3.0e9;
  /// Sequential disk read rate of one machine's disk (shared likewise):
  /// 120 GB in 20-25 min (§1).
  double disk_read_bytes_per_sec = 100.0e6;
  /// Disk-format -> heap-format translation rate per machine (the §1
  /// bottleneck; CPU-bound). Calibrated between the §1 whole-machine
  /// number (120 GB in 2.5-3 h with 8 leaves sharing) and the §1 rollover
  /// number (10-12 h at 2% batches).
  double disk_translate_bytes_per_sec = 20.0e6;
  /// Fixed seconds per leaf restart slot: process exit/start, recovery
  /// detection, rollover initiation for the next one (§4.5).
  double per_leaf_fixed_seconds = 30.0;
  /// Fixed seconds of deployment tooling per whole-cluster rollover (§6
  /// attributes tens of minutes of the under-an-hour total to it).
  double deploy_overhead_seconds = 1500.0;

  /// Threads in each leaf's parallel copy engine (shutdown/restore memcpy
  /// and disk translate). 1 models the paper's serial loops.
  size_t copy_threads = 1;
  /// Fraction of linear scaling realized per extra copy thread (memcpy
  /// streams contend for channels; translate contends for cores).
  double parallel_copy_efficiency = 0.7;
  /// Whole-machine memcpy bandwidth ceiling. One serial stream
  /// (shm_copy_bytes_per_sec) cannot saturate a multi-channel memory
  /// system; parallel copies approach this but never exceed it — and it is
  /// shared by every leaf restarting on the machine (§4.2).
  double machine_memory_bandwidth_bytes_per_sec = 12.0e9;

  /// Speedup of one leaf's copy/translate phase from copy_threads.
  double CopySpeedup() const {
    if (copy_threads <= 1) return 1.0;
    return 1.0 + static_cast<double>(copy_threads - 1) *
                     parallel_copy_efficiency;
  }
  /// Per-leaf shm copy rate with `contention` leaves sharing the machine:
  /// thread-scaled but capped by machine memory bandwidth.
  double ShmCopyRate(double contention) const {
    double rate = shm_copy_bytes_per_sec * CopySpeedup();
    if (rate > machine_memory_bandwidth_bytes_per_sec) {
      rate = machine_memory_bandwidth_bytes_per_sec;
    }
    return rate / contention;
  }
  /// Per-leaf disk translate rate (CPU-bound: scales with threads).
  double DiskTranslateRate(double contention) const {
    return disk_translate_bytes_per_sec * CopySpeedup() / contention;
  }
};

}  // namespace scuba

#endif  // SCUBA_CLUSTER_COST_MODEL_H_
