#ifndef SCUBA_SERVER_RESULT_CACHE_H_
#define SCUBA_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "query/query.h"
#include "query/result.h"

namespace scuba {

/// Bounded LRU cache of per-leaf partial results for SEALED time buckets.
///
/// Scuba dashboards re-issue the same shape of query over a sliding window
/// ("the same dashboard query with a different time window"); everything
/// but the newest bucket aggregates data that can no longer change. The
/// aggregator therefore decomposes a bucketed query into whole-bucket
/// segments per leaf and caches each segment's partial under
///
///   leaf id | leaf instance token | table | bucket start | bucket width |
///   fingerprint | canonical literal values
///
/// Query::Fingerprint() masks literals, so the key appends their canonical
/// encodings — two queries that differ only in a literal never collide.
/// The instance token changes on every leaf (re)start, so a restarted
/// leaf's rebuilt data is never served from its predecessor's entries.
///
/// Invalidation: every ingest into (and expiry from) a table bumps that
/// (leaf, table)'s epoch and drops its entries. Store() re-checks the
/// epoch observed before the scan, so a partial computed concurrently
/// with an ingest is discarded instead of cached stale. Buckets the
/// write buffer overlaps are never stored at all — unsealed rows must be
/// rescanned every time.
///
/// Thread-safe; one mutex (lookups copy out, the lock is never held
/// across query execution).
class ResultCache {
 public:
  explicit ResultCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Cache key of one whole-bucket segment of `query` on one leaf.
  static std::string SegmentKey(uint32_t leaf_id, uint64_t instance_token,
                                const Query& query, int64_t bucket_start);

  /// Current ingest epoch of (leaf, table). Sampled before a segment scan
  /// and passed back to Store().
  uint64_t TableEpoch(uint32_t leaf_id, const std::string& table) const;

  /// Copies the cached partial for `key` into *out and returns true, or
  /// returns false (counting a miss). Hits refresh LRU order.
  bool Lookup(const std::string& key, QueryResult* out);

  /// Inserts a partial, charging EstimatedHeapBytes() against the byte
  /// budget (evicting LRU entries as needed). Dropped silently when the
  /// (leaf, table) epoch advanced past `epoch_at_scan` — an ingest raced
  /// the scan and the partial may already be stale. Timing fields of the
  /// stored profile are zeroed (a future hit does no decode/kernel work);
  /// the deterministic counters are kept.
  void Store(const std::string& key, uint32_t leaf_id,
             const std::string& table, uint64_t epoch_at_scan,
             QueryResult partial);

  /// Bumps (leaf, table)'s epoch and drops its entries. Called by the
  /// leaf's ingest observer on AddRows and ExpireData.
  void InvalidateTable(uint32_t leaf_id, const std::string& table);

  /// Per-cache counters (mirrored into the global MetricsRegistry under
  /// scuba.server.result_cache.*).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  // entries dropped by InvalidateTable
    uint64_t stores = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };
  Stats GetStats() const;

  uint64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::string scope;  // "leaf|table", the invalidation index bucket
    uint64_t bytes = 0;
    QueryResult result;
  };

  static std::string Scope(uint32_t leaf_id, const std::string& table);

  /// Removes *it from the list and both indexes; callers hold mutex_.
  void EraseLocked(std::list<Entry>::iterator it);

  const uint64_t max_bytes_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// scope -> keys, so invalidation touches only the table's entries.
  std::unordered_map<std::string, std::unordered_set<std::string>> by_scope_;
  std::unordered_map<std::string, uint64_t> epochs_;
  uint64_t bytes_ = 0;
  Stats stats_;
};

}  // namespace scuba

#endif  // SCUBA_SERVER_RESULT_CACHE_H_
