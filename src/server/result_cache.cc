#include "server/result_cache.h"

#include <cstring>
#include <utility>
#include <variant>

#include "obs/metrics.h"

namespace scuba {
namespace {

struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* invalidations;
  obs::Counter* stores;
  obs::Gauge* cached_bytes;
  obs::Gauge* entries;

  static CacheMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static CacheMetrics m{
        reg.GetCounter("scuba.server.result_cache.hits"),
        reg.GetCounter("scuba.server.result_cache.misses"),
        reg.GetCounter("scuba.server.result_cache.evictions"),
        reg.GetCounter("scuba.server.result_cache.invalidations"),
        reg.GetCounter("scuba.server.result_cache.stores"),
        reg.GetGauge("scuba.server.result_cache.cached_bytes"),
        reg.GetGauge("scuba.server.result_cache.entries")};
    return m;
  }
};

/// Canonical encoding of a predicate literal. Doubles encode by bit
/// pattern so -0.0 vs 0.0 (and NaN payloads) key distinctly — the same
/// bit semantics QueryResult uses for group keys.
void AppendLiteral(const Value& literal, std::string* out) {
  if (const auto* i = std::get_if<int64_t>(&literal)) {
    out->push_back('i');
    out->append(std::to_string(*i));
    return;
  }
  if (const auto* d = std::get_if<double>(&literal)) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(*d));
    std::memcpy(&bits, d, sizeof(bits));
    out->push_back('d');
    out->append(std::to_string(bits));
    return;
  }
  const std::string& s = std::get<std::string>(literal);
  out->push_back('s');
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

/// A cache hit does no scan work, so the stored profile keeps only the
/// deterministic counters; serving cached buckets with the original
/// decode/kernel timings would double-book time the query never spent.
void ZeroProfileTimings(QueryProfile* profile) {
  profile->prune_micros = 0;
  profile->decode_micros = 0;
  profile->kernel_micros = 0;
  profile->merge_micros = 0;
  profile->leaf_execute_micros = 0;
  profile->fanout_queue_wait_micros = 0;
  profile->wall_micros = 0;
}

}  // namespace

std::string ResultCache::Scope(uint32_t leaf_id, const std::string& table) {
  return std::to_string(leaf_id) + '|' + table;
}

std::string ResultCache::SegmentKey(uint32_t leaf_id, uint64_t instance_token,
                                    const Query& query, int64_t bucket_start) {
  std::string key = std::to_string(leaf_id);
  key.push_back('|');
  key.append(std::to_string(instance_token));
  key.push_back('|');
  key.append(std::to_string(bucket_start));
  key.push_back('|');
  key.append(std::to_string(query.time_bucket_seconds));
  key.push_back('|');
  // Fingerprint() canonicalizes the shape (table, predicate columns/ops,
  // grouping, aggregates) but masks literal values; append them so
  // status>=500 and status>=200 never share an entry.
  key.append(query.Fingerprint());
  for (const Predicate& pred : query.predicates) {
    key.push_back('|');
    AppendLiteral(pred.literal, &key);
  }
  return key;
}

uint64_t ResultCache::TableEpoch(uint32_t leaf_id,
                                 const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = epochs_.find(Scope(leaf_id, table));
  return it == epochs_.end() ? 0 : it->second;
}

bool ResultCache::Lookup(const std::string& key, QueryResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    CacheMetrics::Get().misses->Add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  ++stats_.hits;
  CacheMetrics::Get().hits->Add(1);
  return true;
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  auto scope_it = by_scope_.find(it->scope);
  if (scope_it != by_scope_.end()) {
    scope_it->second.erase(it->key);
    if (scope_it->second.empty()) by_scope_.erase(scope_it);
  }
  index_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::Store(const std::string& key, uint32_t leaf_id,
                        const std::string& table, uint64_t epoch_at_scan,
                        QueryResult partial) {
  CacheMetrics& metrics = CacheMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string scope = Scope(leaf_id, table);
  auto epoch_it = epochs_.find(scope);
  const uint64_t current = epoch_it == epochs_.end() ? 0 : epoch_it->second;
  if (current != epoch_at_scan) return;  // ingest raced the scan

  auto existing = index_.find(key);
  if (existing != index_.end()) EraseLocked(existing->second);

  ZeroProfileTimings(&partial.profile());
  Entry entry;
  entry.key = key;
  entry.scope = scope;
  entry.bytes = partial.EstimatedHeapBytes() + key.size();
  entry.result = std::move(partial);

  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  by_scope_[scope].insert(key);
  ++stats_.stores;
  metrics.stores->Add(1);

  while (bytes_ > max_bytes_ && !lru_.empty()) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
    metrics.evictions->Add(1);
  }
  stats_.bytes = bytes_;
  stats_.entries = lru_.size();
  metrics.cached_bytes->Set(static_cast<int64_t>(bytes_));
  metrics.entries->Set(static_cast<int64_t>(lru_.size()));
}

void ResultCache::InvalidateTable(uint32_t leaf_id, const std::string& table) {
  CacheMetrics& metrics = CacheMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string scope = Scope(leaf_id, table);
  ++epochs_[scope];
  auto scope_it = by_scope_.find(scope);
  if (scope_it == by_scope_.end()) return;
  // EraseLocked mutates the scope set; drain from a moved-out copy.
  std::unordered_set<std::string> keys = std::move(scope_it->second);
  by_scope_.erase(scope_it);
  for (const std::string& key : keys) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    metrics.invalidations->Add(1);
  }
  stats_.bytes = bytes_;
  stats_.entries = lru_.size();
  metrics.cached_bytes->Set(static_cast<int64_t>(bytes_));
  metrics.entries->Set(static_cast<int64_t>(lru_.size()));
}

ResultCache::Stats ResultCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace scuba
