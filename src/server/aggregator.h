#ifndef SCUBA_SERVER_AGGREGATOR_H_
#define SCUBA_SERVER_AGGREGATOR_H_

#include <memory>
#include <vector>

#include "query/query.h"
#include "query/result.h"
#include "server/leaf_server.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace scuba {

/// The aggregator server (§2, Fig 1): "distributes a query to all leaves
/// and then aggregates the results as they arrive". Leaves that are
/// restarting simply do not contribute — "Scuba can and does return
/// partial query results when not all servers are available" (§1). The
/// result's leaves_total / leaves_responded expose how partial it is.
class Aggregator {
 public:
  Aggregator() = default;

  /// Registers a leaf. Does not take ownership; leaves must outlive the
  /// aggregator.
  void AddLeaf(LeafServer* leaf) { leaves_.push_back(leaf); }

  /// Replaces the leaf set (rollovers replace LeafServer objects).
  void SetLeaves(std::vector<LeafServer*> leaves) {
    leaves_ = std::move(leaves);
  }

  size_t num_leaves() const { return leaves_.size(); }
  LeafServer* leaf(size_t i) { return leaves_[i]; }

  /// Fans the query out to every registered leaf and merges the partials.
  /// Individual leaf Unavailable states are recorded (partial result),
  /// not propagated; real query errors are propagated.
  /// With parallel fan-out enabled, leaves execute on a shared worker pool
  /// (§2: "the aggregator servers distribute a query to all leaves and
  /// then aggregate the results as they arrive from the leaves"); partials
  /// merge in leaf order, so the result matches the sequential fan-out.
  StatusOr<QueryResult> Execute(const Query& query);

  /// Enables/disables threaded fan-out (default: sequential — the leaves
  /// on one machine share one core in this reproduction's benches).
  void SetParallelFanout(bool parallel) { parallel_fanout_ = parallel; }

  /// Fraction of leaves currently answering queries, in [0, 1].
  double AvailableFraction() const;

 private:
  /// Fan-out pool cap; queries over more leaves than this queue behind the
  /// busy workers rather than spawning a thread per leaf.
  static constexpr size_t kMaxFanoutThreads = 8;

  StatusOr<QueryResult> ExecuteSequential(const Query& query);
  StatusOr<QueryResult> ExecuteParallel(const Query& query);

  std::vector<LeafServer*> leaves_;
  bool parallel_fanout_ = false;
  /// Shared across queries; created by the first parallel execution.
  std::unique_ptr<ThreadPool> fanout_pool_;
};

}  // namespace scuba

#endif  // SCUBA_SERVER_AGGREGATOR_H_
