#ifndef SCUBA_SERVER_AGGREGATOR_H_
#define SCUBA_SERVER_AGGREGATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "query/query.h"
#include "query/query_context.h"
#include "query/result.h"
#include "server/leaf_server.h"
#include "server/result_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace scuba {

/// The aggregator server (§2, Fig 1): "distributes a query to all leaves
/// and then aggregates the results as they arrive". Leaves that are
/// restarting simply do not contribute — "Scuba can and does return
/// partial query results when not all servers are available" (§1). The
/// result's leaves_total / leaves_responded expose how partial it is.
///
/// The aggregator is also where a query's observability begins: Execute
/// assigns the query id, makes the trace-sampling decision, threads the
/// QueryContext through every leaf, stamps the merged QueryProfile, feeds
/// the latency histograms, and hands slow/sampled queries to a leaf's
/// StatsExporter for the self-hosted `__scuba_queries` log.
class Aggregator {
 public:
  Aggregator() = default;

  /// Registers a leaf. Does not take ownership; leaves must outlive the
  /// aggregator.
  void AddLeaf(LeafServer* leaf) {
    leaves_.push_back(leaf);
    if (result_cache_ != nullptr) InstallIngestObserver(leaf);
  }

  /// Replaces the leaf set (rollovers replace LeafServer objects).
  void SetLeaves(std::vector<LeafServer*> leaves) {
    leaves_ = std::move(leaves);
    if (result_cache_ != nullptr) {
      for (LeafServer* leaf : leaves_) InstallIngestObserver(leaf);
    }
  }

  size_t num_leaves() const { return leaves_.size(); }
  LeafServer* leaf(size_t i) { return leaves_[i]; }

  /// Fans the query out to every registered leaf and merges the partials.
  /// A leaf's Unavailable is recorded (partial result + its id in
  /// profile().unavailable_leaves), not propagated; a real query error is
  /// propagated prefixed with the offending leaf's id.
  /// With parallel fan-out enabled, leaves execute on a shared worker pool
  /// (§2: "the aggregator servers distribute a query to all leaves and
  /// then aggregate the results as they arrive from the leaves"); partials
  /// merge in leaf order, so the result matches the sequential fan-out.
  ///
  /// This overload creates the QueryContext itself: a fresh query id, and
  /// the 1-in-N trace sampling decision (never for `__scuba*` system
  /// tables). The last sampled timeline is retrievable via
  /// LastSampledTraceJson().
  StatusOr<QueryResult> Execute(const Query& query);

  /// Same, with a caller-supplied context (tests and benches pass their
  /// own PhaseTracer to capture one specific query's timeline). The merged
  /// result's profile is stamped with ctx.query_id and the measured wall
  /// time; latency histograms and the slow-query log still apply.
  StatusOr<QueryResult> Execute(const Query& query, const QueryContext& ctx);

  /// Enables/disables threaded fan-out (default: sequential — the leaves
  /// on one machine share one core in this reproduction's benches).
  void SetParallelFanout(bool parallel) { parallel_fanout_ = parallel; }

  /// Enables the per-leaf partial-result cache (see server/result_cache.h)
  /// with a byte budget, and installs the ingest-invalidation observer on
  /// every currently registered leaf (leaves added later get it on
  /// registration). Bucketed queries over non-system tables then decompose
  /// into whole-bucket segments per leaf: segments the cache holds skip
  /// the leaf entirely, fresh sealed segments are cached on the way out,
  /// and the write-buffer tail plus unaligned head/tail ranges always
  /// rescan. Results are identical to uncached execution; the profile's
  /// cache_hit_buckets/cache_miss_buckets report the split. Call once,
  /// before queries run.
  void EnableResultCache(uint64_t max_bytes);

  /// The enabled cache, or nullptr. Tests and the dashboard read stats
  /// through it.
  ResultCache* result_cache() { return result_cache_.get(); }
  const ResultCache* result_cache() const { return result_cache_.get(); }

  /// Trace-sample every Nth non-system query (0 = never, the default).
  /// The first query after enabling is sampled, then every Nth.
  void SetTraceSampling(uint64_t every_n) {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    trace_sample_every_n_ = every_n;
    trace_counter_ = 0;
  }

  /// Slow-query log policy: a non-system query slower than
  /// `threshold_micros` (0 = never), or every `sample_every_n`-th
  /// non-system query (0 = never), gets one row in `__scuba_queries` via
  /// the first live leaf's StatsExporter.
  void SetSlowQueryLog(int64_t threshold_micros, uint64_t sample_every_n) {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    slow_query_threshold_micros_ = threshold_micros;
    slow_query_sample_every_n_ = sample_every_n;
    slow_query_counter_ = 0;
  }

  /// JSON timeline (PhaseTracer::ToJson) of the most recent
  /// trace-sampled query; empty when none has been sampled yet.
  std::string LastSampledTraceJson() const {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    return last_trace_json_;
  }

  /// What the dashboard's query panel shows beyond the registry
  /// histograms: total queries through this aggregator and the slowest
  /// recent (non-system) query.
  struct QueryPanelData {
    uint64_t queries = 0;
    uint64_t slowest_query_id = 0;
    int64_t slowest_latency_micros = 0;
    std::string slowest_fingerprint;
  };
  QueryPanelData SampleQueryPanel() const {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    return panel_;
  }

  /// Fraction of leaves currently answering queries, in [0, 1].
  double AvailableFraction() const;

 private:
  /// Fan-out pool cap; queries over more leaves than this queue behind the
  /// busy workers rather than spawning a thread per leaf.
  static constexpr size_t kMaxFanoutThreads = 8;

  /// Fan-out + merge, spans, per-leaf error attribution. Does not stamp
  /// wall time or touch the latency/slow-log policy (Execute does).
  StatusOr<QueryResult> ExecuteInternal(const Query& query,
                                        const QueryContext& ctx);
  /// One leaf's execution: straight ExecuteQuery, or the cache-aware
  /// bucket decomposition when the cache is on and the query qualifies.
  StatusOr<QueryResult> ExecuteLeaf(LeafServer* leaf, const Query& query,
                                    const QueryContext& ctx);
  void InstallIngestObserver(LeafServer* leaf);
  /// Latency histograms, slow-query log, query panel. `system` queries
  /// (against `__scuba*` tables) skip the per-table histogram, the log,
  /// and the panel — the self-amplification guard.
  void RecordQueryStats(const Query& query, const QueryResult& result,
                        int64_t wall_micros, bool system);

  /// A query spanning more full buckets than this bypasses the cache (the
  /// default [0, int64 max] range would otherwise decompose into billions
  /// of segments).
  static constexpr uint64_t kMaxCachedBuckets = 4096;

  std::vector<LeafServer*> leaves_;
  bool parallel_fanout_ = false;
  /// Shared across queries; created by the first parallel execution.
  std::unique_ptr<ThreadPool> fanout_pool_;
  /// shared_ptr: the leaves' ingest observers capture it, and a leaf may
  /// outlive this aggregator.
  std::shared_ptr<ResultCache> result_cache_;

  /// Guards the observability knobs and their counters (queries can run
  /// concurrently through one aggregator).
  mutable std::mutex obs_mutex_;
  uint64_t trace_sample_every_n_ = 0;
  uint64_t trace_counter_ = 0;
  int64_t slow_query_threshold_micros_ = 0;
  uint64_t slow_query_sample_every_n_ = 0;
  uint64_t slow_query_counter_ = 0;
  std::string last_trace_json_;
  QueryPanelData panel_;
};

}  // namespace scuba

#endif  // SCUBA_SERVER_AGGREGATOR_H_
