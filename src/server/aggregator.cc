#include "server/aggregator.h"

#include <mutex>
#include <thread>

namespace scuba {

StatusOr<QueryResult> Aggregator::Execute(const Query& query) {
  SCUBA_RETURN_IF_ERROR(query.Validate());
  return parallel_fanout_ ? ExecuteParallel(query)
                          : ExecuteSequential(query);
}

StatusOr<QueryResult> Aggregator::ExecuteSequential(const Query& query) {
  QueryResult merged(query.aggregates);
  merged.leaves_total = static_cast<uint32_t>(leaves_.size());

  for (LeafServer* leaf : leaves_) {
    auto result = leaf->ExecuteQuery(query);
    if (!result.ok()) {
      if (result.status().IsUnavailable()) {
        // Restarting leaf: its data is simply missing from the result.
        continue;
      }
      return result.status();
    }
    // Count the leaf once; the per-leaf result already carries 1/1.
    result->leaves_total = 0;
    result->leaves_responded = 0;
    merged.Merge(*result);
    ++merged.leaves_responded;
  }
  return merged;
}

StatusOr<QueryResult> Aggregator::ExecuteParallel(const Query& query) {
  QueryResult merged(query.aggregates);
  merged.leaves_total = static_cast<uint32_t>(leaves_.size());

  std::mutex merge_mutex;
  Status first_error;  // OK unless a leaf hit a real (non-Unavailable) error

  std::vector<std::thread> workers;
  workers.reserve(leaves_.size());
  for (LeafServer* leaf : leaves_) {
    workers.emplace_back([&, leaf] {
      auto result = leaf->ExecuteQuery(query);
      std::lock_guard<std::mutex> lock(merge_mutex);
      if (!result.ok()) {
        if (!result.status().IsUnavailable() && first_error.ok()) {
          first_error = result.status();
        }
        return;
      }
      result->leaves_total = 0;
      result->leaves_responded = 0;
      merged.Merge(*result);  // merge as results arrive (§2)
      ++merged.leaves_responded;
    });
  }
  for (std::thread& worker : workers) worker.join();

  if (!first_error.ok()) return first_error;
  return merged;
}

double Aggregator::AvailableFraction() const {
  if (leaves_.empty()) return 1.0;
  size_t available = 0;
  for (LeafServer* leaf : leaves_) {
    if (leaf->CanAcceptQueries()) ++available;
  }
  return static_cast<double>(available) / static_cast<double>(leaves_.size());
}

}  // namespace scuba
