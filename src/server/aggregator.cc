#include "server/aggregator.h"

#include <algorithm>
#include <optional>

namespace scuba {

StatusOr<QueryResult> Aggregator::Execute(const Query& query) {
  SCUBA_RETURN_IF_ERROR(query.Validate());
  return parallel_fanout_ ? ExecuteParallel(query)
                          : ExecuteSequential(query);
}

StatusOr<QueryResult> Aggregator::ExecuteSequential(const Query& query) {
  QueryResult merged(query.aggregates);
  merged.leaves_total = static_cast<uint32_t>(leaves_.size());

  for (LeafServer* leaf : leaves_) {
    auto result = leaf->ExecuteQuery(query);
    if (!result.ok()) {
      if (result.status().IsUnavailable()) {
        // Restarting leaf: its data is simply missing from the result.
        continue;
      }
      return result.status();
    }
    // Count the leaf once; the per-leaf result already carries 1/1.
    result->leaves_total = 0;
    result->leaves_responded = 0;
    merged.Merge(*result);
    ++merged.leaves_responded;
  }
  return merged;
}

StatusOr<QueryResult> Aggregator::ExecuteParallel(const Query& query) {
  QueryResult merged(query.aggregates);
  merged.leaves_total = static_cast<uint32_t>(leaves_.size());

  // Lazily build the shared fan-out pool the first parallel query needs it
  // (previously: one std::thread spawned per leaf per query). Queries with
  // more leaves than workers just queue; the pool size stays fixed.
  if (fanout_pool_ == nullptr && leaves_.size() > 1) {
    fanout_pool_ = std::make_unique<ThreadPool>(
        std::min(leaves_.size(), kMaxFanoutThreads));
  }

  // Each leaf writes only its own slot — no merge lock; the merge below
  // walks the slots in leaf order so the output is deterministic and
  // identical to the sequential fan-out.
  std::vector<std::optional<StatusOr<QueryResult>>> slots(leaves_.size());
  Status fanout = ParallelFor(fanout_pool_.get(), leaves_.size(),
                              [&](size_t i) -> Status {
                                slots[i] = leaves_[i]->ExecuteQuery(query);
                                return Status::OK();
                              });
  SCUBA_RETURN_IF_ERROR(fanout);  // the tasks themselves never fail

  for (std::optional<StatusOr<QueryResult>>& slot : slots) {
    StatusOr<QueryResult>& result = *slot;
    if (!result.ok()) {
      if (result.status().IsUnavailable()) continue;
      return result.status();
    }
    result->leaves_total = 0;
    result->leaves_responded = 0;
    merged.Merge(*result);
    ++merged.leaves_responded;
  }
  return merged;
}

double Aggregator::AvailableFraction() const {
  if (leaves_.empty()) return 1.0;
  size_t available = 0;
  for (LeafServer* leaf : leaves_) {
    if (leaf->CanAcceptQueries()) ++available;
  }
  return static_cast<double>(available) / static_cast<double>(leaves_.size());
}

}  // namespace scuba
