#include "server/aggregator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "columnar/row.h"
#include "obs/metrics.h"
#include "obs/stats_exporter.h"
#include "util/clock.h"

namespace scuba {
namespace {

// Aggregator-level query counters (scuba.server.aggregator.*). The
// per-table latency histograms are created on first use (dynamic names),
// not cached here.
struct AggregatorMetrics {
  obs::Counter* queries;
  obs::Counter* traces_sampled;
  obs::Counter* slow_queries_logged;
  obs::Histogram* query_latency_micros;
  obs::Histogram* fanout_queue_wait_micros;

  static AggregatorMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static AggregatorMetrics m{
        reg.GetCounter("scuba.server.aggregator.queries"),
        reg.GetCounter("scuba.server.aggregator.traces_sampled"),
        reg.GetCounter("scuba.server.aggregator.slow_queries_logged"),
        reg.GetHistogram("scuba.server.aggregator.query_latency_micros"),
        reg.GetHistogram(
            "scuba.server.aggregator.fanout_queue_wait_micros")};
    return m;
  }
};

// Floor-divide toward negative infinity (the executor's bucketing rule —
// the cache's segment boundaries must match the result's bucket keys).
int64_t BucketFloor(int64_t t, int64_t w) {
  return (t >= 0 ? t / w : (t - w + 1) / w) * w;
}

}  // namespace

StatusOr<QueryResult> Aggregator::Execute(const Query& query) {
  SCUBA_RETURN_IF_ERROR(query.Validate());

  QueryContext ctx;
  ctx.query_id = NextQueryId();
  // The 1-in-N sampling decision. System tables are never sampled: the
  // dashboard and exporter poll them, and tracing the pollers would bury
  // the user queries the samples exist to explain.
  std::unique_ptr<obs::PhaseTracer> tracer;
  {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    if (trace_sample_every_n_ > 0 && !obs::IsSystemTable(query.table) &&
        trace_counter_++ % trace_sample_every_n_ == 0) {
      tracer = std::make_unique<obs::PhaseTracer>();
      ctx.sampled = true;
      ctx.tracer = tracer.get();
    }
  }

  auto result = Execute(query, ctx);

  if (tracer != nullptr) {
    AggregatorMetrics::Get().traces_sampled->Add(1);
    std::string json = tracer->ToJson();
    std::lock_guard<std::mutex> lock(obs_mutex_);
    last_trace_json_ = std::move(json);
  }
  return result;
}

StatusOr<QueryResult> Aggregator::Execute(const Query& query,
                                          const QueryContext& ctx) {
  SCUBA_RETURN_IF_ERROR(query.Validate());
  AggregatorMetrics::Get().queries->Add(1);
  const bool system = obs::IsSystemTable(query.table);

  Stopwatch wall;
  SCUBA_ASSIGN_OR_RETURN(QueryResult merged, ExecuteInternal(query, ctx));
  const int64_t wall_micros = wall.ElapsedMicros();

  // Third back-to-back root after fanout and merge: stamping, histograms,
  // fingerprinting and the slow-query log are real per-query work, and the
  // timeline owns up to it (the >90% wall-coverage bar counts roots only).
  obs::PhaseTracer::Span record_span(ctx.tracer, ctx.parent_span, "record");
  QueryProfile& profile = merged.profile();
  profile.query_id = ctx.query_id;
  profile.wall_micros = wall_micros;
  profile.leaves_total = merged.leaves_total;
  profile.leaves_responded = merged.leaves_responded;

  RecordQueryStats(query, merged, wall_micros, system);
  return merged;
}

void Aggregator::EnableResultCache(uint64_t max_bytes) {
  result_cache_ = std::make_shared<ResultCache>(max_bytes);
  for (LeafServer* leaf : leaves_) InstallIngestObserver(leaf);
}

void Aggregator::InstallIngestObserver(LeafServer* leaf) {
  // Captures the cache by shared_ptr, not `this`: leaves routinely outlive
  // the aggregator object in rollover tests.
  std::shared_ptr<ResultCache> cache = result_cache_;
  const uint32_t leaf_id = leaf->config().leaf_id;
  leaf->SetIngestObserver([cache, leaf_id](const std::string& table) {
    cache->InvalidateTable(leaf_id, table);
  });
}

StatusOr<QueryResult> Aggregator::ExecuteLeaf(LeafServer* leaf,
                                              const Query& query,
                                              const QueryContext& ctx) {
  if (result_cache_ == nullptr || query.time_bucket_seconds <= 0 ||
      obs::IsSystemTable(query.table)) {
    return leaf->ExecuteQuery(query, ctx);
  }
  const int64_t w = query.time_bucket_seconds;
  // Unsigned span arithmetic: end - begin can overflow int64 for the
  // default [0, int64 max] range. Too many buckets -> bypass, don't split.
  // Pre-epoch or near-overflow ranges also bypass (real dashboard times
  // are unix seconds; keeping the segment math in [0, max - w] spares
  // every boundary computation an overflow check).
  const uint64_t span = static_cast<uint64_t>(query.end_time) -
                        static_cast<uint64_t>(query.begin_time);
  if (span / static_cast<uint64_t>(w) >= kMaxCachedBuckets ||
      query.begin_time < 0 ||
      query.end_time > std::numeric_limits<int64_t>::max() - w) {
    return leaf->ExecuteQuery(query, ctx);
  }
  // First bucket start fully inside the range; every segment boundary is
  // bucket-aligned, so each result group's rows fall in exactly ONE
  // segment and the merged result is bit-identical to one whole scan.
  int64_t first = BucketFloor(query.begin_time, w);
  if (first < query.begin_time) first += w;
  std::vector<int64_t> bucket_starts;
  for (int64_t s = first; s <= query.end_time - (w - 1); s += w) {
    bucket_starts.push_back(s);
  }
  if (bucket_starts.empty()) return leaf->ExecuteQuery(query, ctx);

  const uint32_t leaf_id = leaf->config().leaf_id;
  const uint64_t token = leaf->instance_token();
  QueryResult composed(query.aggregates);
  uint64_t hit_buckets = 0;
  uint64_t miss_buckets = 0;

  // Segments merge in time order (head, buckets, tail); any segment's
  // Unavailable makes the whole leaf unavailable, exactly like an
  // uncached restarting leaf.
  auto run_segment = [&](int64_t begin, int64_t end,
                         bool whole_bucket) -> Status {
    std::string key;
    if (whole_bucket) {
      key = ResultCache::SegmentKey(leaf_id, token, query, begin);
      QueryResult cached;
      if (result_cache_->Lookup(key, &cached)) {
        ++hit_buckets;
        composed.Merge(cached);
        return Status::OK();
      }
      ++miss_buckets;
    }
    const uint64_t epoch = result_cache_->TableEpoch(leaf_id, query.table);
    Query segment = query;
    segment.begin_time = begin;
    segment.end_time = end;
    SCUBA_ASSIGN_OR_RETURN(QueryResult partial,
                           leaf->ExecuteQuery(segment, ctx));
    // The composed result carries the leaf's 1/1 exactly once (below).
    partial.leaves_total = 0;
    partial.leaves_responded = 0;
    partial.profile().leaves_total = 0;
    partial.profile().leaves_responded = 0;
    if (whole_bucket &&
        !leaf->WriteBufferOverlaps(query.table, begin, end)) {
      result_cache_->Store(key, leaf_id, query.table, epoch, partial);
    }
    composed.Merge(partial);
    return Status::OK();
  };

  if (first > query.begin_time) {
    SCUBA_RETURN_IF_ERROR(run_segment(query.begin_time, first - 1, false));
  }
  for (int64_t s : bucket_starts) {
    SCUBA_RETURN_IF_ERROR(run_segment(s, s + (w - 1), true));
  }
  const int64_t last_end = bucket_starts.back() + (w - 1);
  if (last_end < query.end_time) {
    SCUBA_RETURN_IF_ERROR(run_segment(last_end + 1, query.end_time, false));
  }

  // Same contract as LeafServer::ExecuteQuery: the per-leaf result counts
  // itself once.
  composed.leaves_total = 1;
  composed.leaves_responded = 1;
  composed.profile().leaves_total = 1;
  composed.profile().leaves_responded = 1;
  composed.profile().cache_hit_buckets += hit_buckets;
  composed.profile().cache_miss_buckets += miss_buckets;
  return composed;
}

StatusOr<QueryResult> Aggregator::ExecuteInternal(const Query& query,
                                                  const QueryContext& ctx) {
  QueryResult merged(query.aggregates);
  merged.leaves_total = static_cast<uint32_t>(leaves_.size());
  obs::PhaseTracer* tracer = ctx.tracer;

  const bool parallel = parallel_fanout_ && leaves_.size() > 1;

  // Each leaf writes only its own slot — no merge lock; the merge below
  // walks the slots in leaf order so the output is deterministic and
  // identical to the sequential fan-out. queue_wait[i] is how long leaf
  // i's task sat behind busy pool workers before starting.
  std::vector<std::optional<StatusOr<QueryResult>>> slots(leaves_.size());
  std::vector<int64_t> queue_wait(leaves_.size(), 0);
  {
    // The fan-out and merge roots are recorded back to back on this
    // thread, so RootCoverageMicros() accounts for (nearly) the whole
    // aggregator wall time; per-leaf execute spans attach under the
    // fan-out root from whatever thread runs them.
    obs::PhaseTracer::Span fanout_span(tracer, ctx.parent_span, "fanout");
    QueryContext leaf_ctx = ctx;
    leaf_ctx.parent_span = fanout_span.id();
    if (parallel) {
      // Lazily build the shared fan-out pool when the first parallel query
      // needs it (previously: one std::thread spawned per leaf per query).
      // Queries over more leaves than workers just queue; the pool size
      // stays fixed. Construction happens under the fanout span so the
      // first query's timeline owns up to the setup cost.
      if (fanout_pool_ == nullptr) {
        fanout_pool_ = std::make_unique<ThreadPool>(
            std::min(leaves_.size(), kMaxFanoutThreads));
      }
      Stopwatch fanout_watch;
      Status fanout = ParallelFor(
          fanout_pool_.get(), leaves_.size(), [&](size_t i) -> Status {
            queue_wait[i] = fanout_watch.ElapsedMicros();
            slots[i] = ExecuteLeaf(leaves_[i], query, leaf_ctx);
            return Status::OK();
          });
      SCUBA_RETURN_IF_ERROR(fanout);  // the tasks themselves never fail
    } else {
      for (size_t i = 0; i < leaves_.size(); ++i) {
        slots[i] = ExecuteLeaf(leaves_[i], query, leaf_ctx);
      }
    }
  }

  Stopwatch merge_watch;
  {
    obs::PhaseTracer::Span merge_span(tracer, ctx.parent_span, "merge");
    AggregatorMetrics& metrics = AggregatorMetrics::Get();
    for (size_t i = 0; i < slots.size(); ++i) {
      StatusOr<QueryResult>& result = *slots[i];
      if (!result.ok()) {
        if (result.status().IsUnavailable()) {
          // Restarting leaf: its data is simply missing from the result,
          // but the profile records who was missing.
          merged.profile().unavailable_leaves.push_back(
              leaves_[i]->config().leaf_id);
          continue;
        }
        // A real query error names the leaf that produced it.
        return Status(result.status().code(),
                      "leaf " +
                          std::to_string(leaves_[i]->config().leaf_id) +
                          ": " + result.status().message());
      }
      // Count the leaf once; the per-leaf result already carries 1/1.
      result->leaves_total = 0;
      result->leaves_responded = 0;
      result->profile().leaves_total = 0;
      result->profile().leaves_responded = 0;
      if (parallel) {
        merged.profile().fanout_queue_wait_micros += queue_wait[i];
        metrics.fanout_queue_wait_micros->Record(
            static_cast<uint64_t>(queue_wait[i]));
      }
      merged.Merge(*result);
      ++merged.leaves_responded;
    }
  }
  merged.profile().merge_micros += merge_watch.ElapsedMicros();
  return merged;
}

void Aggregator::RecordQueryStats(const Query& query,
                                  const QueryResult& result,
                                  int64_t wall_micros, bool system) {
  AggregatorMetrics& metrics = AggregatorMetrics::Get();
  metrics.query_latency_micros->Record(static_cast<uint64_t>(wall_micros));
  // Self-amplification guard: the dashboard/exporter queries against
  // `__scuba*` tables feed neither the per-table histograms, the panel,
  // nor the slow-query log — otherwise monitoring the slow-query log
  // would fill the slow-query log.
  if (system) return;

  obs::MetricsRegistry::Global()
      .GetHistogram("scuba.server.aggregator.query_latency_micros." +
                    query.table)
      ->Record(static_cast<uint64_t>(wall_micros));

  const char* kind = nullptr;
  {
    std::lock_guard<std::mutex> lock(obs_mutex_);
    ++panel_.queries;
    if (wall_micros > panel_.slowest_latency_micros ||
        panel_.slowest_query_id == 0) {
      panel_.slowest_query_id = result.profile().query_id;
      panel_.slowest_latency_micros = wall_micros;
      panel_.slowest_fingerprint = query.Fingerprint();
    }
    const bool sampled =
        slow_query_sample_every_n_ > 0 &&
        slow_query_counter_++ % slow_query_sample_every_n_ == 0;
    if (slow_query_threshold_micros_ > 0 &&
        wall_micros >= slow_query_threshold_micros_) {
      kind = "slow";
    } else if (sampled) {
      kind = "sample";
    }
  }
  if (kind == nullptr) return;

  // Route the row through the first live leaf's exporter; the row lands in
  // that leaf's `__scuba_queries` shard and merges through the normal
  // aggregation path like any other table.
  obs::StatsExporter* exporter = nullptr;
  for (LeafServer* leaf : leaves_) {
    if (leaf->stats_exporter() != nullptr && leaf->IsAlive()) {
      exporter = leaf->stats_exporter();
      break;
    }
  }
  if (exporter == nullptr) return;

  const QueryProfile& p = result.profile();
  Row row;
  row.Set("kind", std::string(kind))
      .Set("query_id", static_cast<int64_t>(p.query_id))
      .Set("fingerprint", query.Fingerprint())
      .Set("table", query.table)
      .Set("latency_micros", wall_micros)
      .Set("rows_scanned", static_cast<int64_t>(p.rows_scanned))
      .Set("rows_matched", static_cast<int64_t>(p.rows_matched))
      .Set("blocks_scanned", static_cast<int64_t>(p.blocks_scanned))
      .Set("blocks_time_pruned", static_cast<int64_t>(p.blocks_time_pruned))
      .Set("blocks_zone_pruned", static_cast<int64_t>(p.blocks_zone_pruned))
      .Set("bytes_decoded", static_cast<int64_t>(p.bytes_decoded))
      .Set("leaves_total", static_cast<int64_t>(p.leaves_total))
      .Set("leaves_responded", static_cast<int64_t>(p.leaves_responded));
  if (exporter->ExportQueryRow(std::move(row)).ok()) {
    metrics.slow_queries_logged->Add(1);
  }
}

double Aggregator::AvailableFraction() const {
  if (leaves_.empty()) return 1.0;
  size_t available = 0;
  for (LeafServer* leaf : leaves_) {
    if (leaf->CanAcceptQueries()) ++available;
  }
  return static_cast<double>(available) / static_cast<double>(leaves_.size());
}

}  // namespace scuba
