#include "server/leaf_server.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace scuba {
namespace {

// Process-wide leaf-server counters (scuba.server.leaf.*), summed across
// every leaf in the process.
struct ServerMetrics {
  obs::Counter* add_batches;
  obs::Counter* rows_added;
  obs::Counter* adds_rejected;
  obs::Counter* queries;
  obs::Counter* queries_rejected;
  obs::Counter* rows_expired;

  static ServerMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ServerMetrics m{
        reg.GetCounter("scuba.server.leaf.add_batches"),
        reg.GetCounter("scuba.server.leaf.rows_added"),
        reg.GetCounter("scuba.server.leaf.adds_rejected"),
        reg.GetCounter("scuba.server.leaf.queries"),
        reg.GetCounter("scuba.server.leaf.queries_rejected"),
        reg.GetCounter("scuba.server.leaf.rows_expired")};
    return m;
  }
};

std::optional<RestartHeartbeat> AttachHeartbeat(
    const LeafServerConfig& config) {
  if (!config.publish_restart_heartbeat) return std::nullopt;
  auto hb = RestartHeartbeat::Attach(config.namespace_prefix, config.leaf_id);
  if (!hb.ok()) {
    SCUBA_WARN << "leaf " << config.leaf_id
               << ": restart heartbeat unavailable: "
               << hb.status().ToString();
    return std::nullopt;
  }
  return std::move(hb).value();
}

RestartConfig MakeRestartConfig(const LeafServerConfig& config,
                                RestartHeartbeat* heartbeat) {
  RestartConfig rc;
  rc.heartbeat = heartbeat;
  rc.namespace_prefix = config.namespace_prefix;
  rc.leaf_id = config.leaf_id;
  rc.backup_dir = config.backup_dir;
  rc.backup_format = config.backup_format;
  rc.memory_recovery_enabled = config.memory_recovery_enabled;
  rc.restore.verify_checksums = config.verify_checksums_on_restore;
  rc.restore.table_limits = config.default_table_limits;
  rc.disk.throttle_bytes_per_sec = config.disk_throttle_bytes_per_sec;
  rc.disk.table_limits = config.default_table_limits;
  rc.columnar_disk.throttle_bytes_per_sec = config.disk_throttle_bytes_per_sec;
  rc.columnar_disk.verify_checksums = config.verify_checksums_on_restore;
  rc.columnar_disk.table_limits = config.default_table_limits;
  rc.num_copy_threads = config.num_copy_threads;
  rc.restore.max_in_flight_bytes = config.max_in_flight_copy_bytes;
  rc.shutdown.max_in_flight_bytes = config.max_in_flight_copy_bytes;
  return rc;
}

}  // namespace

LeafServer::LeafServer(LeafServerConfig config)
    : config_(std::move(config)),
      heartbeat_(AttachHeartbeat(config_)),
      restart_manager_(MakeRestartConfig(
          config_, heartbeat_.has_value() ? &*heartbeat_ : nullptr)),
      backup_writer_(config_.backup_dir),
      columnar_writer_(config_.backup_dir) {
  if (config_.num_query_threads > 1) {
    query_pool_ = std::make_unique<ThreadPool>(config_.num_query_threads);
  }
}

void LeafServer::InstallSealObserver(Table* table) {
  if (!UsesColumnarBackup()) return;
  if (obs::IsSystemTable(table->name())) return;
  std::string name = table->name();
  table->SetSealObserver([this, name](const RowBlock& block) {
    return columnar_writer_.OnBlockSealed(name, block);
  });
}

Status LeafServer::BackupBatch(const std::string& table,
                               const std::vector<Row>& rows) {
  if (config_.backup_dir.empty()) return Status::OK();
  if (UsesColumnarBackup()) return columnar_writer_.AppendBatch(table, rows);
  return backup_writer_.AppendBatch(table, rows);
}

Status LeafServer::SyncBackups() {
  if (config_.backup_dir.empty()) return Status::OK();
  if (UsesColumnarBackup()) return columnar_writer_.SyncAll();
  return backup_writer_.SyncAll();
}

Clock* LeafServer::clock() const {
  return config_.clock != nullptr ? config_.clock : RealClock::Get();
}

StatusOr<RecoveryResult> LeafServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (leaf_state_.state() != LeafState::kInit) {
      return Status::FailedPrecondition("leaf server already started");
    }
    // Process-wide monotonic token: every started leaf instance, across
    // every restart, gets a distinct value (cache keys depend on that).
    static std::atomic<uint64_t> next_instance_token{1};
    instance_token_.store(next_instance_token.fetch_add(1),
                          std::memory_order_release);
    if (!config_.backup_dir.empty()) {
      SCUBA_RETURN_IF_ERROR(UsesColumnarBackup() ? columnar_writer_.Init()
                                                 : backup_writer_.Init());
    }

    // Fig 5b: INIT -> MEMORY_RECOVERY if enabled, else DISK_RECOVERY.
    if (config_.memory_recovery_enabled) {
      SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kMemoryRecovery));
    } else {
      SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kDiskRecovery));
    }

    SCUBA_ASSIGN_OR_RETURN(
        last_recovery_,
        restart_manager_.Recover(&leaf_map_, clock()->NowUnixSeconds()));

    // Exception edge: memory recovery attempted but the data came from disk.
    if (leaf_state_.state() == LeafState::kMemoryRecovery &&
        last_recovery_.source != RecoverySource::kSharedMemory) {
      SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kDiskRecovery));
    }
    SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kAlive));

    // Table state machines mirror the leaf's recovery path (Fig 5d).
    for (const std::string& name : leaf_map_.TableNames()) {
      TableStateMachine& ts = table_states_[name];
      Status s = ts.Transition(last_recovery_.source ==
                                       RecoverySource::kSharedMemory
                                   ? TableState::kMemoryRecovery
                                   : TableState::kDiskRecovery);
      if (s.ok()) s = ts.Transition(TableState::kAlive);
      SCUBA_RETURN_IF_ERROR(s);
      InstallSealObserver(leaf_map_.GetTable(name));
    }

    if (heartbeat_.has_value()) heartbeat_->SetPhase(RestartPhase::kAlive);
    SCUBA_INFO << "leaf " << config_.leaf_id << " alive ("
               << RecoverySourceName(last_recovery_.source) << " recovery, "
               << leaf_map_.TotalRowCount() << " rows)";
  }  // release mutex_: the exporter's sink inserts through it

  if (config_.self_stats_enabled) StartSelfStats();
  return last_recovery_;
}

void LeafServer::StartSelfStats() {
  obs::StatsExporterOptions opts;
  opts.period_millis = config_.self_stats_period_millis;
  opts.generation = heartbeat_generation();
  opts.leaf_id = config_.leaf_id;
  opts.now_unix_seconds = [this] { return clock()->NowUnixSeconds(); };
  exporter_ = std::make_unique<obs::StatsExporter>(
      std::move(opts),
      [this](const std::string& table, const std::vector<Row>& rows) {
        std::lock_guard<std::mutex> lock(mutex_);
        return AddRowsLocked(table, rows, /*system=*/true);
      });
  // One restart-history row per process generation — this is what makes
  // "how long did the last N restarts take, and from which source" a
  // __scuba_stats query spanning generations — then an immediate export
  // so the recovery metrics land before the first periodic tick.
  int64_t recovery_micros =
      last_recovery_.source == RecoverySource::kSharedMemory
          ? last_recovery_.shm_stats.elapsed_micros.load()
          : last_recovery_.disk_stats.read_micros +
                last_recovery_.disk_stats.translate_micros +
                last_recovery_.columnar_stats.read_micros +
                last_recovery_.columnar_stats.translate_micros;
  (void)exporter_->ExportRestartEvent(
      RestartPhaseName(RestartPhase::kAlive),
      RecoverySourceName(last_recovery_.source), recovery_micros);
  (void)exporter_->ExportOnce();
  exporter_->Start();
}

Status LeafServer::AddRows(const std::string& table,
                           const std::vector<Row>& rows) {
  if (obs::IsSystemTable(table)) {
    // Reserved namespace: only the leaf's own exporter writes here, via
    // the system path below. Letting external ingest in would mix workload
    // data into the self-stats (and bypass its no-backup rules).
    return Status::InvalidArgument("table name '" + table +
                                   "' is reserved for system tables");
  }
  IngestObserver observer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SCUBA_RETURN_IF_ERROR(AddRowsLocked(table, rows, /*system=*/false));
    observer = ingest_observer_;
  }
  // Fired outside the mutex: the observer typically takes the result
  // cache's own lock, and holding both invites ordering trouble.
  if (observer) observer(table);
  return Status::OK();
}

Status LeafServer::AddRowsLocked(const std::string& table,
                                 const std::vector<Row>& rows, bool system) {
  ServerMetrics& metrics = ServerMetrics::Get();
  if (!leaf_state_.CanAcceptAdds()) {
    if (!system) metrics.adds_rejected->Add(1);
    return Status::Unavailable("leaf " + std::to_string(config_.leaf_id) +
                               " not accepting adds (state " +
                               std::string(LeafStateName(leaf_state_.state())) +
                               ")");
  }
  auto [it, inserted] = table_states_.try_emplace(table);
  if (inserted) {
    // Fresh table created by ingest goes straight to ALIVE.
    SCUBA_RETURN_IF_ERROR(it->second.Transition(TableState::kAlive));
  }
  if (!it->second.CanAcceptAdds()) {
    if (!system) metrics.adds_rejected->Add(1);
    return Status::Unavailable("table '" + table + "' not accepting adds");
  }

  // Backup first ("Scuba stores backups of all incoming data to disk",
  // §4.1), then the in-memory store. System tables skip the backup: their
  // durability is the shm handoff, and their contents are regenerated by
  // the next process anyway — a disk copy would only amplify every export
  // into disk writes.
  if (!system) SCUBA_RETURN_IF_ERROR(BackupBatch(table, rows));
  Table* t = leaf_map_.GetTable(table);
  if (t == nullptr) {
    SCUBA_ASSIGN_OR_RETURN(
        t, leaf_map_.CreateTable(table, config_.default_table_limits));
    InstallSealObserver(t);
  }
  size_t blocks_before = t->num_row_blocks();
  SCUBA_RETURN_IF_ERROR(t->AddRows(rows, clock()->NowUnixSeconds()));

  // Columnar backup: a seal during this batch rotated the tail away,
  // taking the batch's unsealed suffix with it — re-seed the fresh tail
  // from the write buffer so blocks + tail always cover every row.
  if (!system && UsesColumnarBackup() &&
      t->num_row_blocks() != blocks_before && !t->write_buffer().empty()) {
    SCUBA_RETURN_IF_ERROR(columnar_writer_.AppendBatch(
        table, t->write_buffer().MaterializeRows()));
  }
  if (!system) {
    // Self-amplification guard: the exporter's own inserts must not move
    // the ingestion counters it is about to export, or every export cycle
    // would manufacture the next cycle's rows.
    metrics.add_batches->Add(1);
    metrics.rows_added->Add(rows.size());
  }
  return Status::OK();
}

StatusOr<QueryResult> LeafServer::ExecuteQuery(const Query& query) {
  return ExecuteQuery(query, QueryContext{});
}

StatusOr<QueryResult> LeafServer::ExecuteQuery(const Query& query,
                                               const QueryContext& ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerMetrics& metrics = ServerMetrics::Get();
  if (!leaf_state_.CanAcceptQueries()) {
    metrics.queries_rejected->Add(1);
    return Status::Unavailable("leaf " + std::to_string(config_.leaf_id) +
                               " not accepting queries (state " +
                               std::string(LeafStateName(leaf_state_.state())) +
                               ")");
  }
  metrics.queries->Add(1);
  // The leaf's whole execution under one span; on a parallel fan-out this
  // runs on a pool worker with an empty span stack, so it attaches under
  // the aggregator's fan-out root via the explicit parent.
  obs::PhaseTracer::Span leaf_span(
      ctx.tracer, ctx.parent_span,
      "leaf " + std::to_string(config_.leaf_id) + " execute");
  Stopwatch leaf_watch;

  const Table* table = leaf_map_.GetTable(query.table);
  if (table == nullptr) {
    // This leaf holds no fraction of the table: empty (not an error).
    QueryResult empty(query.aggregates);
    empty.leaves_total = 1;
    empty.leaves_responded = 1;
    empty.profile().leaves_total = 1;
    empty.profile().leaves_responded = 1;
    empty.profile().leaf_execute_micros = leaf_watch.ElapsedMicros();
    return empty;
  }
  auto ts_it = table_states_.find(query.table);
  if (ts_it != table_states_.end() && !ts_it->second.CanAcceptQueries()) {
    return Status::Unavailable("table '" + query.table +
                               "' not accepting queries");
  }
  // Executor-level spans (prune / per-block scans / merge) nest under the
  // leaf span: on this thread via the open-span stack, on scan workers via
  // the explicit parent.
  QueryContext leaf_ctx = ctx;
  leaf_ctx.parent_span = leaf_span.id();
  LeafExecutor::ExecOptions options;
  options.pool = query_pool_.get();
  options.ctx = &leaf_ctx;
  SCUBA_ASSIGN_OR_RETURN(QueryResult result,
                         LeafExecutor::Execute(*table, query, options));
  result.leaves_total = 1;
  result.leaves_responded = 1;
  result.profile().leaves_total = 1;
  result.profile().leaves_responded = 1;
  result.profile().leaf_execute_micros = leaf_watch.ElapsedMicros();
  return result;
}

size_t LeafServer::ExpireData() {
  size_t dropped = 0;
  std::vector<std::string> changed;
  IngestObserver observer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!leaf_state_.CanDeleteExpired()) return 0;
    int64_t now = clock()->NowUnixSeconds();
    for (const std::string& name : leaf_map_.TableNames()) {
      auto ts_it = table_states_.find(name);
      if (ts_it != table_states_.end() && !ts_it->second.CanDeleteExpired()) {
        // "Scuba stops deleting expired table data once shutdown starts"
        // (Fig 5 caption).
        continue;
      }
      size_t table_dropped = leaf_map_.GetTable(name)->ExpireData(now);
      if (table_dropped > 0) changed.push_back(name);
      dropped += table_dropped;
    }
    ServerMetrics::Get().rows_expired->Add(dropped);
    observer = ingest_observer_;
  }
  // Expiry changes a table's queryable contents just like ingest does;
  // cached partials over the dropped blocks must go.
  if (observer) {
    for (const std::string& name : changed) observer(name);
  }
  return dropped;
}

bool LeafServer::WriteBufferOverlaps(const std::string& table, int64_t begin,
                                     int64_t end) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Table* t = leaf_map_.GetTable(table);
  if (t == nullptr || t->write_buffer().empty()) return false;
  return t->write_buffer().min_time() <= end &&
         t->write_buffer().max_time() >= begin;
}

Status LeafServer::ShutdownToSharedMemory(ShutdownStats* stats,
                                          FootprintTracker* tracker) {
  // Self-stats wind-down happens BEFORE taking mutex_: the exporter's sink
  // inserts through it, so stopping under the lock would deadlock. One
  // restart-history row marks the shutdown, then the final flush captures
  // every delta since the last tick — all of it rides to the successor in
  // the shm copy below.
  if (exporter_ != nullptr) {
    (void)exporter_->ExportRestartEvent(
        RestartPhaseName(RestartPhase::kPrepare), "shutdown", 0);
    exporter_->Stop();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  int64_t now = clock()->NowUnixSeconds();

  // Fig 5a: ALIVE -> COPY_TO_SHM. The mutex we hold IS the drain: no add,
  // query, or delete can be in flight past this point.
  SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kCopyToShm));
  if (heartbeat_.has_value()) heartbeat_->SetPhase(RestartPhase::kPrepare);

  // Fig 5c per-table PREPARE: reject new work (done via state), finish
  // in-flight work (mutex), seal buffers, flush data to disk.
  for (const std::string& name : leaf_map_.TableNames()) {
    TableStateMachine& ts = table_states_[name];
    if (ts.state() == TableState::kInit) {
      SCUBA_RETURN_IF_ERROR(ts.Transition(TableState::kAlive));
    }
    SCUBA_RETURN_IF_ERROR(ts.Transition(TableState::kPrepare));
    SCUBA_RETURN_IF_ERROR(leaf_map_.GetTable(name)->SealWriteBuffer(now));
  }
  SCUBA_RETURN_IF_ERROR(SyncBackups());
  for (auto& [name, ts] : table_states_) {
    if (ts.state() == TableState::kPrepare) {
      SCUBA_RETURN_IF_ERROR(ts.Transition(TableState::kCopyToShm));
    }
  }

  // Failure injection (§4.3 watchdog): the process is "killed" mid-copy.
  // Any partial segments have valid=false and are scrubbed; the backups
  // flushed above are the successor's only source. The heartbeat is
  // deliberately NOT advanced here — a killed process writes nothing, and
  // that silence is exactly what a stall monitor should observe.
  if (inject_shutdown_kill_) {
    inject_shutdown_kill_ = false;
    restart_manager_.ScrubSharedMemory();
    leaf_map_.Clear();
    table_states_.clear();
    SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kExit));
    return Status::Aborted("shutdown killed by watchdog (injected)");
  }

  // Fig 6: the chunked copy itself.
  RestartConfig rc = restart_manager_.config();
  rc.shutdown.now = now;
  rc.shutdown.cancel = &shutdown_cancel_;
  rc.shutdown.after_block_copied = shutdown_block_hook_;
  RestartManager manager(rc);
  Status s = manager.Shutdown(&leaf_map_, stats, tracker);
  if (s.IsAborted()) {
    // Cooperative watchdog kill: the copy stopped at a block boundary with
    // the valid bit still false. Same aftermath as the injected kill —
    // scrub partial segments, drop state, exit; the successor
    // disk-recovers from the backups flushed above.
    if (heartbeat_.has_value()) heartbeat_->SetPhase(RestartPhase::kFailed);
    restart_manager_.ScrubSharedMemory();
    leaf_map_.Clear();
    table_states_.clear();
    SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kExit));
    return s;
  }
  SCUBA_RETURN_IF_ERROR(s);

  for (auto& [name, ts] : table_states_) {
    if (ts.state() == TableState::kCopyToShm) {
      SCUBA_RETURN_IF_ERROR(ts.Transition(TableState::kDone));
    }
  }
  SCUBA_RETURN_IF_ERROR(leaf_state_.Transition(LeafState::kExit));
  if (heartbeat_.has_value()) heartbeat_->SetPhase(RestartPhase::kExited);
  return Status::OK();
}

void LeafServer::Crash() {
  // Join the exporter thread first (its sink takes mutex_; no final flush —
  // a crash preserves nothing).
  exporter_.reset();
  std::lock_guard<std::mutex> lock(mutex_);
  leaf_map_.Clear();
  table_states_.clear();
  // No valid bit is ever set on this path; the next process will find
  // either nothing or a stale metadata segment with valid=false and will
  // recover from disk (§4, "we do not use shared memory to recover from a
  // crash").
}

LeafServer::Stats LeafServer::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.leaf_id = config_.leaf_id;
  stats.state = leaf_state_.state();
  stats.last_recovery_source = last_recovery_.source;
  stats.last_recovery_micros =
      last_recovery_.source == RecoverySource::kSharedMemory
          ? last_recovery_.shm_stats.elapsed_micros.load()
          : last_recovery_.disk_stats.read_micros +
                last_recovery_.disk_stats.translate_micros +
                last_recovery_.columnar_stats.read_micros +
                last_recovery_.columnar_stats.translate_micros;
  stats.total_rows = leaf_map_.TotalRowCount();
  stats.memory_used_bytes = leaf_map_.TotalMemoryBytes();
  stats.memory_capacity_bytes = config_.memory_capacity_bytes;

  for (const std::string& name : leaf_map_.TableNames()) {
    const Table* table = leaf_map_.GetTable(name);
    TableStats ts;
    ts.name = name;
    ts.row_count = table->RowCount();
    ts.buffered_rows = table->write_buffer().row_count();
    ts.num_row_blocks = table->num_row_blocks();
    ts.heap_bytes = table->MemoryBytes();
    bool first_block = true;
    uint64_t sealed_bytes = 0;
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      const RowBlock* block = table->row_block(b);
      if (block == nullptr) continue;
      sealed_bytes += block->MemoryBytes();
      for (size_t c = 0; c < block->num_columns(); ++c) {
        if (block->column(c) != nullptr) {
          ts.uncompressed_bytes += block->column(c)->uncompressed_bytes();
        }
      }
      if (first_block) {
        ts.min_time = block->header().min_time;
        ts.max_time = block->header().max_time;
        first_block = false;
      } else {
        ts.min_time = std::min(ts.min_time, block->header().min_time);
        ts.max_time = std::max(ts.max_time, block->header().max_time);
      }
    }
    ts.compression_ratio =
        sealed_bytes == 0 ? 0.0
                          : static_cast<double>(ts.uncompressed_bytes) /
                                static_cast<double>(sealed_bytes);
    stats.tables.push_back(std::move(ts));
  }
  return stats;
}

LeafState LeafServer::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leaf_state_.state();
}

bool LeafServer::CanAcceptAdds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leaf_state_.CanAcceptAdds();
}

bool LeafServer::CanAcceptQueries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leaf_state_.CanAcceptQueries();
}

uint64_t LeafServer::MemoryUsedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leaf_map_.TotalMemoryBytes();
}

uint64_t LeafServer::FreeMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t used = leaf_map_.TotalMemoryBytes();
  return used >= config_.memory_capacity_bytes
             ? 0
             : config_.memory_capacity_bytes - used;
}

uint64_t LeafServer::RowCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leaf_map_.TotalRowCount();
}

std::vector<std::string> LeafServer::TableNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leaf_map_.TableNames();
}

}  // namespace scuba
