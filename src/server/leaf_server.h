#ifndef SCUBA_SERVER_LEAF_SERVER_H_
#define SCUBA_SERVER_LEAF_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/leaf_map.h"
#include "core/footprint.h"
#include "core/restart_manager.h"
#include "core/state_machine.h"
#include "disk/backup_writer.h"
#include "obs/stats_exporter.h"
#include "query/executor.h"
#include "shm/restart_heartbeat.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace scuba {

/// Configuration of one leaf server.
struct LeafServerConfig {
  uint32_t leaf_id = 0;
  /// Isolates this cluster's shm segments (and tests) in /dev/shm.
  std::string namespace_prefix = "scuba";
  /// Directory for the per-table on-disk backups.
  std::string backup_dir;
  /// On-disk backup format: kRowMajor is the paper's production format
  /// (slow translate on recovery); kColumnar is its §6 future work
  /// (sealed blocks stored in the shm column format; fast recovery).
  BackupFormatKind backup_format = BackupFormatKind::kRowMajor;
  /// Fig 5b: when false, a new process always disk-recovers.
  bool memory_recovery_enabled = true;
  /// Capacity used for free-memory reporting to the tailers' two-choice
  /// placement (§2). Scuba machines have 144 GB for 8 leaves; scale to
  /// taste in tests/benches.
  uint64_t memory_capacity_bytes = 1ull << 30;
  /// Retention limits applied to tables created via ingest.
  TableLimits default_table_limits;
  /// >0 paces disk-recovery reads to model a slow disk.
  uint64_t disk_throttle_bytes_per_sec = 0;
  /// Verify RBC checksums during memory recovery.
  bool verify_checksums_on_restore = true;
  /// Copy/translate workers for shutdown-to-shm, restore-from-shm, and
  /// disk recovery (the parallel copy engine). 1 keeps the paper's serial
  /// loops; ingest/query serving is unaffected either way.
  size_t num_copy_threads = 1;
  /// Cap on in-flight bytes for the parallel copy paths (§4.4's footprint
  /// invariant, widened from one row-block-column to this budget). 0 =
  /// auto: num_copy_threads x the largest copy unit.
  uint64_t max_in_flight_copy_bytes = 0;
  /// Worker threads for the per-row-block scan fan-out within one query.
  /// 1 keeps the paper's single-threaded leaf (§2); >1 spawns a leaf-owned
  /// pool whose size stays fixed for the server's lifetime. Results are
  /// identical for every setting.
  size_t num_query_threads = 1;
  /// Publish restart progress through the fixed-name shm heartbeat block
  /// (/<prefix>_hb_<id>): phase, bytes copied/total, liveness stamp. The
  /// block survives this process, so rollover monitors and dashboards can
  /// watch the restart from outside (§4.3 made observable). Attach failure
  /// logs a warning and runs without a heartbeat.
  bool publish_restart_heartbeat = true;
  /// Self-monitoring ("Scuba monitors Scuba"): run a StatsExporter that
  /// periodically collapses the process MetricsRegistry into rows of the
  /// reserved `__scuba_stats` table on this leaf — compressed, queryable
  /// through the normal leaf/aggregator path, and carried across restarts
  /// by the shm handoff. Also writes one restart-history row per process
  /// generation (recovery source + duration) and one when shutdown begins.
  bool self_stats_enabled = false;
  /// Export period for the self-stats background thread.
  int64_t self_stats_period_millis = 1000;
  /// Time source (simulated in tests; real otherwise).
  Clock* clock = nullptr;
};

/// A Scuba leaf server (§2): stores row data, ingests batches from
/// tailers, answers aggregation queries, expires old data, and — the
/// paper's contribution — hands its memory to its successor process
/// through shared memory on clean shutdown.
///
/// All public operations are gated by the Fig 5 state machines; calls
/// arriving in the wrong state get Unavailable, which callers (tailers,
/// aggregators) treat as "pick another leaf / return partial results".
///
/// Thread-safe: one internal mutex serializes operations (the production
/// system runs 8 single-threaded leaves per machine for parallelism, §2 —
/// the same topology our cluster module uses).
class LeafServer {
 public:
  explicit LeafServer(LeafServerConfig config);

  LeafServer(const LeafServer&) = delete;
  LeafServer& operator=(const LeafServer&) = delete;

  /// Starts the server: INIT -> MEMORY_RECOVERY or DISK_RECOVERY -> ALIVE
  /// (Fig 5b). Returns the recovery outcome. Queries and adds are
  /// accepted per-state while recovery runs (§4.3); since this
  /// single-process implementation recovers synchronously, Start() returns
  /// once the leaf is ALIVE.
  StatusOr<RecoveryResult> Start();

  /// Appends rows to a table: backs them up to disk, then inserts into the
  /// in-memory store. Unavailable unless the state accepts adds.
  /// InvalidArgument for reserved `__scuba*` system-table names — only the
  /// leaf's own exporter writes those.
  Status AddRows(const std::string& table, const std::vector<Row>& rows);

  /// Executes a query. Unavailable unless the state accepts queries.
  /// Querying a table this leaf does not hold yields an empty result
  /// (leaves hold fractions of tables; aggregators merge).
  StatusOr<QueryResult> ExecuteQuery(const Query& query);

  /// Same, with the aggregator's observability context: a sampled query
  /// records a "leaf <id> execute" span (nested under ctx.parent_span)
  /// covering this leaf's whole execution, and the returned profile
  /// carries leaf_execute_micros. The context is read-only and may be
  /// shared across concurrent leaf calls.
  StatusOr<QueryResult> ExecuteQuery(const Query& query,
                                     const QueryContext& ctx);

  /// Applies retention limits across tables (delete requests). Returns
  /// blocks dropped; 0 when the state forbids deletes.
  size_t ExpireData();

  /// Clean shutdown via shared memory (Fig 5a/5c + Fig 6):
  ///   PREPARE: reject new work, seal write buffers, flush backups
  ///   COPY_TO_SHM: chunked copy of every table, then valid bit
  ///   EXIT
  /// After this returns the server object holds no data.
  Status ShutdownToSharedMemory(ShutdownStats* stats,
                                FootprintTracker* tracker = nullptr);

  /// Simulates an unclean death: drops in-memory state WITHOUT copying to
  /// shm or setting the valid bit. Whatever shm segments exist keep their
  /// valid bits as-is (false unless a previous clean shutdown completed).
  void Crash();

  /// Failure injection: the next ShutdownToSharedMemory performs PREPARE
  /// (drain + flush) and then behaves as if the watchdog killed the
  /// process mid-copy ("we kill the leaf server if it has not shut down
  /// after 3 minutes", §4.3): partial segments are scrubbed, no valid bit
  /// is set, and Aborted is returned. The successor must disk-recover.
  void InjectShutdownKillForTest() { inject_shutdown_kill_ = true; }

  /// Asks an in-flight ShutdownToSharedMemory to stop at the next
  /// row-block boundary — the phase-aware watchdog's targeted kill, issued
  /// by a monitor whose heartbeat samples stopped advancing. Lock-free and
  /// safe to call from any thread, INCLUDING while the shutdown holds the
  /// server mutex (that is the whole point). The cancelled shutdown scrubs
  /// its partial segments, leaves the valid bit false, and returns Aborted;
  /// the successor recovers from disk.
  void RequestShutdownCancel() {
    shutdown_cancel_.store(true, std::memory_order_release);
  }

  /// Installs a hook invoked after every row-block copy during shutdown
  /// (from whichever copy thread performed it). Fault injection uses it to
  /// freeze the copy loop and exercise heartbeat stall detection. Must be
  /// set before ShutdownToSharedMemory is called.
  void SetShutdownBlockHookForTest(std::function<void()> hook) {
    shutdown_block_hook_ = std::move(hook);
  }

  /// The heartbeat generation this process attached as, or 0 when the
  /// heartbeat is disabled/unavailable.
  uint64_t heartbeat_generation() const {
    return heartbeat_.has_value() ? heartbeat_->generation() : 0;
  }

  /// Process-unique token assigned by Start(), 0 before it. Distinguishes
  /// this leaf INSTANCE from its predecessors and successors even when the
  /// heartbeat is disabled — the aggregator's result cache keys entries by
  /// it so a restarted leaf's rebuilt data never matches pre-restart
  /// entries.
  uint64_t instance_token() const {
    return instance_token_.load(std::memory_order_acquire);
  }

  /// Observer invoked (outside the server mutex) after rows land in or
  /// expire from `table` — every event that changes a non-system table's
  /// queryable contents. The aggregator's result cache hangs its
  /// invalidation off this. System-table writes by the leaf's own exporter
  /// do not fire it (`__scuba*` results are never cached).
  using IngestObserver = std::function<void(const std::string& table)>;
  void SetIngestObserver(IngestObserver observer) {
    std::lock_guard<std::mutex> lock(mutex_);
    ingest_observer_ = std::move(observer);
  }

  /// True when `table`'s write buffer holds rows overlapping [begin, end]
  /// — rows a result cache must never serve stale. False for absent
  /// tables and empty buffers.
  bool WriteBufferOverlaps(const std::string& table, int64_t begin,
                           int64_t end) const;

  /// The self-stats exporter, or nullptr when self_stats_enabled is false
  /// or the server has not started. Tests use it to force export cycles.
  obs::StatsExporter* stats_exporter() { return exporter_.get(); }

  // --- introspection --------------------------------------------------------

  /// Live statistics of one table.
  struct TableStats {
    std::string name;
    uint64_t row_count = 0;
    uint64_t buffered_rows = 0;
    size_t num_row_blocks = 0;
    uint64_t heap_bytes = 0;
    uint64_t uncompressed_bytes = 0;  // pre-compression size of sealed data
    double compression_ratio = 0.0;   // uncompressed / sealed heap bytes
    int64_t min_time = 0;             // across sealed blocks (0 if none)
    int64_t max_time = 0;
  };

  /// Live statistics of this leaf — what the §4.5 rollover monitoring and
  /// the tailers' placement decisions read.
  struct Stats {
    uint32_t leaf_id = 0;
    LeafState state = LeafState::kInit;
    RecoverySource last_recovery_source = RecoverySource::kFresh;
    int64_t last_recovery_micros = 0;
    uint64_t total_rows = 0;
    uint64_t memory_used_bytes = 0;
    uint64_t memory_capacity_bytes = 0;
    std::vector<TableStats> tables;
  };

  Stats GetStats() const;

  LeafState state() const;
  bool IsAlive() const { return state() == LeafState::kAlive; }
  bool CanAcceptAdds() const;
  bool CanAcceptQueries() const;

  uint64_t MemoryUsedBytes() const;
  uint64_t FreeMemoryBytes() const;
  uint64_t RowCount() const;
  std::vector<std::string> TableNames() const;

  const LeafServerConfig& config() const { return config_; }
  const RecoveryResult& last_recovery() const { return last_recovery_; }

 private:
  Clock* clock() const;
  bool UsesColumnarBackup() const {
    return config_.backup_format == BackupFormatKind::kColumnar &&
           !config_.backup_dir.empty();
  }
  /// Installs the columnar backup's seal observer on `table` (no-op for
  /// system tables, which are never backed up to disk).
  void InstallSealObserver(Table* table);
  Status BackupBatch(const std::string& table, const std::vector<Row>& rows);
  Status SyncBackups();
  /// Shared insert body; callers hold mutex_. `system` marks the leaf's
  /// own `__scuba*` writes: no disk backup, and no ingestion-metric
  /// updates (the self-amplification guard — exporting must not feed the
  /// metrics it exports).
  Status AddRowsLocked(const std::string& table, const std::vector<Row>& rows,
                       bool system);
  /// Creates + starts the self-stats exporter (after recovery; not under
  /// mutex_): one restart-history row, an immediate export of the recovery
  /// metrics, then the periodic thread.
  void StartSelfStats();

  LeafServerConfig config_;
  /// Declared before restart_manager_: the manager's config captures a
  /// pointer to this block, so it must be attached first (and must outlive
  /// the manager). Engaged only when config_.publish_restart_heartbeat and
  /// the shm attach succeeded.
  std::optional<RestartHeartbeat> heartbeat_;
  std::atomic<bool> shutdown_cancel_{false};
  std::function<void()> shutdown_block_hook_;
  RestartManager restart_manager_;
  /// Scan workers shared by every query on this leaf (null when
  /// num_query_threads <= 1). Created once; queries run one at a time
  /// under mutex_, so they never contend for the pool.
  std::unique_ptr<ThreadPool> query_pool_;

  mutable std::mutex mutex_;
  LeafStateMachine leaf_state_;
  std::unordered_map<std::string, TableStateMachine> table_states_;
  LeafMap leaf_map_;
  BackupWriter backup_writer_;              // row-major format
  ColumnarBackupWriter columnar_writer_;    // columnar format (§6)
  RecoveryResult last_recovery_;
  bool inject_shutdown_kill_ = false;
  std::atomic<uint64_t> instance_token_{0};
  IngestObserver ingest_observer_;
  /// Declared last so it is destroyed FIRST: the exporter thread's sink
  /// takes mutex_ and touches leaf_map_, so it must join before any of
  /// them go away.
  std::unique_ptr<obs::StatsExporter> exporter_;
};

}  // namespace scuba

#endif  // SCUBA_SERVER_LEAF_SERVER_H_
