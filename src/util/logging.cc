#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace scuba {
namespace {

// Case-insensitive match against the leading `n` chars of `name`.
bool LevelNameIs(const char* value, const char* name) {
  size_t i = 0;
  for (; value[i] != '\0' && name[i] != '\0'; ++i) {
    char a = value[i];
    if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
    if (a != name[i]) return false;
  }
  return value[i] == '\0' && name[i] == '\0';
}

// Startup level: SCUBA_LOG_LEVEL env var (debug|info|warn|warning|error or
// 0-3), defaulting to warning.
int InitialLogLevel() {
  const char* env = std::getenv("SCUBA_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (LevelNameIs(env, "debug") || LevelNameIs(env, "0")) {
    return static_cast<int>(LogLevel::kDebug);
  }
  if (LevelNameIs(env, "info") || LevelNameIs(env, "1")) {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (LevelNameIs(env, "warn") || LevelNameIs(env, "warning") ||
      LevelNameIs(env, "2")) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (LevelNameIs(env, "error") || LevelNameIs(env, "3")) {
    return static_cast<int>(LogLevel::kError);
  }
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int> g_log_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Emit the whole line (newline included) with a single write() so lines
  // from concurrent copy/scan workers never interleave mid-line. A full
  // line per syscall is also what log collectors expect.
  stream_ << '\n';
  std::string line = stream_.str();
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n <= 0) break;  // best effort; logging must never loop forever
    off += static_cast<size_t>(n);
  }
}

}  // namespace internal_logging
}  // namespace scuba
