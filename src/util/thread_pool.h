#ifndef SCUBA_UTIL_THREAD_POOL_H_
#define SCUBA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace scuba {

/// A fixed-size worker pool for the restart copy engine (§4.2: "recovery
/// using shared memory is ... limited only by memory bandwidth" — one
/// memcpy stream cannot saturate a multi-channel memory system, so the
/// shutdown/restore/disk-translate hot paths fan their copies out over N
/// workers).
///
/// Tasks are run in FIFO submission order; the copy paths rely on this to
/// keep workers near the drain frontier (restore truncates segments from
/// the tail, so tail-most blocks are submitted — and therefore started —
/// first).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueued = 0;  // steady micros at Submit, for queue-wait stats
  };

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): everything drained
  std::deque<QueuedTask> queue_;
  size_t in_flight_ = 0;  // dequeued but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(0..n-1) across `pool` and blocks until every started call has
/// finished; the first non-OK status (lowest index wins on ties is NOT
/// guaranteed) is returned. A failure short-circuits the loop: iterations
/// that have not started yet are skipped, since an error aborts the
/// caller's whole operation (e.g. disk recovery falls back after the
/// first bad table). With a null pool (or n <= 1) the calls run inline on
/// the caller's thread and stop at the first error — callers pass nullptr
/// for the single-threaded configuration so the serial path stays
/// allocation- and lock-free.
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn);

/// Counting semaphore over bytes: bounds how much data the parallel copy
/// engine holds "in flight" (copied to the destination but not yet freed
/// from the source), which is exactly the amount by which the restart
/// footprint can exceed the live data size (§4.4's invariant, widened from
/// one row-block-column to one budget's worth).
///
/// An acquire larger than the whole budget is granted once nothing else is
/// in flight, so a single oversized item degrades to serial instead of
/// deadlocking; while one waits, new smaller acquisitions block behind it
/// so a steady stream of small items cannot starve it. limit == 0 means
/// unlimited.
class ByteBudget {
 public:
  explicit ByteBudget(uint64_t limit) : limit_(limit) {}

  ByteBudget(const ByteBudget&) = delete;
  ByteBudget& operator=(const ByteBudget&) = delete;

  /// Blocks until `bytes` fits under the limit (or nothing is in flight).
  void Acquire(uint64_t bytes);

  /// Returns `bytes` to the budget.
  void Release(uint64_t bytes);

  uint64_t limit() const { return limit_; }
  uint64_t in_flight() const;

 private:
  const uint64_t limit_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  uint64_t in_flight_bytes_ = 0;
  size_t oversized_waiting_ = 0;  // acquires > limit_ parked for exclusivity
};

}  // namespace scuba

#endif  // SCUBA_UTIL_THREAD_POOL_H_
