#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace scuba {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Cumulative pool metrics (scuba.util.thread_pool.*): queue wait is the
// submit->dequeue gap (scheduling latency), run micros the task body
// itself. Handles are cached once; the per-task cost is two clock reads
// and three relaxed shard increments.
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Histogram* queue_wait_micros;
  obs::Histogram* run_micros;

  static PoolMetrics& Get() {
    static PoolMetrics m{
        obs::MetricsRegistry::Global().GetCounter(
            "scuba.util.thread_pool.tasks"),
        obs::MetricsRegistry::Global().GetHistogram(
            "scuba.util.thread_pool.queue_wait_micros"),
        obs::MetricsRegistry::Global().GetHistogram(
            "scuba.util.thread_pool.run_micros")};
    return m;
  }
};

// ByteBudget metrics (scuba.util.byte_budget.*): how often and for how
// long the §4.4 in-flight cap actually throttled a copy worker.
struct BudgetMetrics {
  obs::Counter* stalls;
  obs::Histogram* stall_micros;

  static BudgetMetrics& Get() {
    static BudgetMetrics m{
        obs::MetricsRegistry::Global().GetCounter(
            "scuba.util.byte_budget.stalls"),
        obs::MetricsRegistry::Global().GetHistogram(
            "scuba.util.byte_budget.stall_micros")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(QueuedTask{std::move(task), SteadyNowMicros()});
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    int64_t start = SteadyNowMicros();
    metrics.queue_wait_micros->Record(
        static_cast<uint64_t>(std::max<int64_t>(0, start - task.enqueued)));
    task.fn();
    metrics.run_micros->Record(
        static_cast<uint64_t>(std::max<int64_t>(0, SteadyNowMicros() - start)));
    metrics.tasks->Add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    // Inline: stop at the first error, exactly like the serial loops this
    // replaces — a failure sends the caller to its fallback path, so the
    // remaining iterations would be wasted work.
    for (size_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  // Pooled: after the first failure, iterations that have not started yet
  // are skipped (tasks already running finish normally); only the first
  // error is kept.
  struct Shared {
    std::mutex mutex;
    Status first_error;
    std::atomic<bool> failed{false};
  };
  auto shared = std::make_shared<Shared>();
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([fn, i, shared] {
      if (shared->failed.load(std::memory_order_acquire)) return;
      Status s = fn(i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (shared->first_error.ok()) shared->first_error = std::move(s);
        shared->failed.store(true, std::memory_order_release);
      }
    });
  }
  pool->Wait();
  std::lock_guard<std::mutex> lock(shared->mutex);
  return shared->first_error;
}

void ByteBudget::Acquire(uint64_t bytes) {
  if (limit_ == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (bytes > limit_) {
    // Oversized: needs exclusive use of the budget. Registering as a
    // waiter blocks new small acquisitions, so a steady stream of them
    // cannot starve this request — in-flight bytes drain to zero as the
    // current holders release.
    if (in_flight_bytes_ != 0) {
      BudgetMetrics& metrics = BudgetMetrics::Get();
      metrics.stalls->Add(1);
      int64_t start = SteadyNowMicros();
      ++oversized_waiting_;
      cv_.wait(lock, [this] { return in_flight_bytes_ == 0; });
      --oversized_waiting_;
      metrics.stall_micros->Record(
          static_cast<uint64_t>(std::max<int64_t>(0, SteadyNowMicros() - start)));
    }
    in_flight_bytes_ += bytes;
    return;
  }
  if (oversized_waiting_ != 0 || in_flight_bytes_ + bytes > limit_) {
    BudgetMetrics& metrics = BudgetMetrics::Get();
    metrics.stalls->Add(1);
    int64_t start = SteadyNowMicros();
    cv_.wait(lock, [this, bytes] {
      return oversized_waiting_ == 0 && in_flight_bytes_ + bytes <= limit_;
    });
    metrics.stall_micros->Record(
        static_cast<uint64_t>(std::max<int64_t>(0, SteadyNowMicros() - start)));
  }
  in_flight_bytes_ += bytes;
}

void ByteBudget::Release(uint64_t bytes) {
  if (limit_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_bytes_ -= std::min(bytes, in_flight_bytes_);
  }
  cv_.notify_all();
}

uint64_t ByteBudget::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_bytes_;
}

}  // namespace scuba
