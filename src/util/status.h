#ifndef SCUBA_UTIL_STATUS_H_
#define SCUBA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace scuba {

/// Error categories used across the library. Library code never throws;
/// every fallible operation returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kResourceExhausted = 6,
  kFailedPrecondition = 7,
  kUnavailable = 8,
  kInternal = 9,
  kAborted = 10,
};

/// Returns a human-readable name for `code` (e.g. "Corruption").
std::string_view StatusCodeToString(StatusCode code);

/// A RocksDB/Abseil-style status: a code plus an optional message.
/// The OK status carries no allocation and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Either a value of type T or a non-OK Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK StatusOr must
  /// carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace scuba

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define SCUBA_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::scuba::Status _scuba_status = (expr);           \
    if (!_scuba_status.ok()) return _scuba_status;    \
  } while (0)

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define SCUBA_ASSIGN_OR_RETURN(lhs, rexpr)            \
  SCUBA_ASSIGN_OR_RETURN_IMPL_(                       \
      SCUBA_STATUS_CONCAT_(_scuba_statusor, __LINE__), lhs, rexpr)

#define SCUBA_STATUS_CONCAT_INNER_(a, b) a##b
#define SCUBA_STATUS_CONCAT_(a, b) SCUBA_STATUS_CONCAT_INNER_(a, b)
#define SCUBA_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                 \
  if (!statusor.ok()) return statusor.status();            \
  lhs = std::move(statusor).value()

#endif  // SCUBA_UTIL_STATUS_H_
