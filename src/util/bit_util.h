#ifndef SCUBA_UTIL_BIT_UTIL_H_
#define SCUBA_UTIL_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace scuba {
namespace bit_util {

/// Number of bits needed to represent `v` (0 -> 0 bits).
inline int BitWidth(uint64_t v) {
  return v == 0 ? 0 : 64 - std::countl_zero(v);
}

/// Rounds `v` up to the next multiple of `multiple` (power of two).
inline uint64_t RoundUp(uint64_t v, uint64_t multiple) {
  return (v + multiple - 1) & ~(multiple - 1);
}

inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace bit_util
}  // namespace scuba

#endif  // SCUBA_UTIL_BIT_UTIL_H_
