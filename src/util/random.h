#ifndef SCUBA_UTIL_RANDOM_H_
#define SCUBA_UTIL_RANDOM_H_

#include <cstdint>

namespace scuba {

/// Deterministic, fast xorshift128+ PRNG. Used everywhere randomness is
/// needed so that workloads and simulations are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to expand the seed into two non-zero lanes.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability p in [0, 1].
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Zipfian-ish skew helper: picks in [0, n) with heavier weight on small
  /// indices. Cheap approximation (squared uniform), good enough for
  /// generating dictionary-friendly columns.
  uint64_t Skewed(uint64_t n) {
    double u = NextDouble();
    return static_cast<uint64_t>(u * u * static_cast<double>(n));
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace scuba

#endif  // SCUBA_UTIL_RANDOM_H_
