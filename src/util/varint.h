#ifndef SCUBA_UTIL_VARINT_H_
#define SCUBA_UTIL_VARINT_H_

#include <cstdint>

#include "util/byte_buffer.h"
#include "util/slice.h"

namespace scuba {
namespace varint {

/// Maximum encoded size of a 64-bit varint.
inline constexpr int kMaxLen64 = 10;

/// Appends the LEB128 encoding of `v`.
void AppendU64(ByteBuffer* out, uint64_t v);

/// ZigZag-maps a signed value so that small magnitudes encode short.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void AppendI64(ByteBuffer* out, int64_t v) {
  AppendU64(out, ZigZagEncode(v));
}

/// Decodes a varint from the front of `*in`, advancing it past the encoding.
/// Returns false on truncated or over-long input (in which case *in is
/// unspecified).
bool ReadU64(Slice* in, uint64_t* value);

inline bool ReadI64(Slice* in, int64_t* value) {
  uint64_t raw = 0;
  if (!ReadU64(in, &raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

}  // namespace varint
}  // namespace scuba

#endif  // SCUBA_UTIL_VARINT_H_
