#include "util/byte_buffer.h"

#include <algorithm>

namespace scuba {

void ByteBuffer::Reserve(size_t n) {
  if (n <= capacity_) return;
  Grow(n);
}

void ByteBuffer::Grow(size_t min_capacity) {
  size_t new_capacity = std::max<size_t>(64, capacity_);
  while (new_capacity < min_capacity) new_capacity *= 2;
  std::unique_ptr<uint8_t[]> fresh(new uint8_t[new_capacity]);
  if (size_ > 0) std::memcpy(fresh.get(), data_.get(), size_);
  data_ = std::move(fresh);
  capacity_ = new_capacity;
}

}  // namespace scuba
