#ifndef SCUBA_UTIL_CLOCK_H_
#define SCUBA_UTIL_CLOCK_H_

#include <cstdint>
#include <memory>

namespace scuba {

/// Time source abstraction so that servers, expiry, and the cluster
/// simulator can run on either the real clock or a simulated one.
/// All times are microseconds; NowUnixSeconds() is provided for row
/// timestamps (Scuba's required "time" column is a unix timestamp).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since the epoch of this clock.
  virtual int64_t NowMicros() const = 0;

  /// Advances (simulated clocks) or sleeps (real clock) for `micros`.
  virtual void SleepMicros(int64_t micros) = 0;

  int64_t NowUnixSeconds() const { return NowMicros() / 1000000; }
};

/// Wall-clock implementation backed by std::chrono::system_clock.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepMicros(int64_t micros) override;

  /// Process-wide shared instance.
  static RealClock* Get();
};

/// Deterministic clock for tests and the discrete-event simulator.
/// SleepMicros advances time instantly.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_; }
  void SleepMicros(int64_t micros) override { now_ += micros; }

  void AdvanceMicros(int64_t micros) { now_ += micros; }
  void SetMicros(int64_t micros) { now_ = micros; }

 private:
  int64_t now_;
};

/// Monotonic stopwatch over the real clock, for measuring bench phases.
class Stopwatch {
 public:
  Stopwatch();
  /// Resets the start point to now.
  void Restart();
  /// Microseconds elapsed since construction or last Restart().
  int64_t ElapsedMicros() const;
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_micros_;
};

}  // namespace scuba

#endif  // SCUBA_UTIL_CLOCK_H_
