#include "util/crc32c.h"

#include <array>

namespace scuba {
namespace crc32c {
namespace {

// Table-driven (slicing-by-4) CRC-32C, polynomial 0x1EDC6F41 (reflected
// 0x82F63B78). Computed once at startup; tables are trivially destructible.
struct Tables {
  uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tables{};
  constexpr uint32_t kPoly = 0x82F63B78u;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFF];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFF];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFF];
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables& tables = *new Tables(BuildTables());
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const uint8_t* data, size_t n) {
  const Tables& tb = GetTables();
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  // Process 4 bytes at a time.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    data += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *data) & 0xFF];
    ++data;
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace scuba
