#ifndef SCUBA_UTIL_LOGGING_H_
#define SCUBA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace scuba {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace scuba

#define SCUBA_LOG(level)                                                      \
  (static_cast<int>(::scuba::LogLevel::k##level) <                            \
   static_cast<int>(::scuba::GetLogLevel()))                                  \
      ? void(0)                                                               \
      : void(::scuba::internal_logging::LogMessage(                           \
                 ::scuba::LogLevel::k##level, __FILE__, __LINE__)             \
                 .stream())

#define SCUBA_LOG_STREAM(level)                              \
  ::scuba::internal_logging::LogMessage(                     \
      ::scuba::LogLevel::k##level, __FILE__, __LINE__)       \
      .stream()

// Convenience macros: SCUBA_DEBUG/INFO/WARN/ERROR << "message";
#define SCUBA_DEBUG                                                        \
  if (static_cast<int>(::scuba::LogLevel::kDebug) >=                       \
      static_cast<int>(::scuba::GetLogLevel()))                            \
  SCUBA_LOG_STREAM(Debug)
#define SCUBA_INFO                                                         \
  if (static_cast<int>(::scuba::LogLevel::kInfo) >=                        \
      static_cast<int>(::scuba::GetLogLevel()))                            \
  SCUBA_LOG_STREAM(Info)
#define SCUBA_WARN                                                         \
  if (static_cast<int>(::scuba::LogLevel::kWarning) >=                     \
      static_cast<int>(::scuba::GetLogLevel()))                            \
  SCUBA_LOG_STREAM(Warning)
#define SCUBA_ERROR                                                        \
  if (static_cast<int>(::scuba::LogLevel::kError) >=                       \
      static_cast<int>(::scuba::GetLogLevel()))                            \
  SCUBA_LOG_STREAM(Error)

#endif  // SCUBA_UTIL_LOGGING_H_
