#ifndef SCUBA_UTIL_CRC32C_H_
#define SCUBA_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace scuba {
namespace crc32c {

/// Returns the CRC-32C (Castagnoli) of data[0, n). `init_crc` is the CRC of
/// a preceding chunk for incremental computation (pass 0 for a fresh CRC).
uint32_t Extend(uint32_t init_crc, const uint8_t* data, size_t n);

inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}

/// Masks a CRC so that storing it next to the data it covers cannot produce
/// a buffer whose CRC is its own stored checksum (RocksDB/LevelDB idiom).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace scuba

#endif  // SCUBA_UTIL_CRC32C_H_
