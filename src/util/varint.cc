#include "util/varint.h"

namespace scuba {
namespace varint {

void AppendU64(ByteBuffer* out, uint64_t v) {
  uint8_t buf[kMaxLen64];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<uint8_t>(v);
  out->Append(buf, static_cast<size_t>(n));
}

bool ReadU64(Slice* in, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = 0;
  const size_t limit = in->size();
  while (i < limit && shift <= 63) {
    uint8_t byte = (*in)[i];
    ++i;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      in->RemovePrefix(i);
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace varint
}  // namespace scuba
