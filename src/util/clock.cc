#include "util/clock.h"

#include <chrono>
#include <thread>

namespace scuba {

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

RealClock* RealClock::Get() {
  static RealClock* const clock = new RealClock();
  return clock;
}

namespace {
int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Stopwatch::Stopwatch() : start_micros_(SteadyNowMicros()) {}

void Stopwatch::Restart() { start_micros_ = SteadyNowMicros(); }

int64_t Stopwatch::ElapsedMicros() const {
  return SteadyNowMicros() - start_micros_;
}

}  // namespace scuba
