#ifndef SCUBA_UTIL_SLICE_H_
#define SCUBA_UTIL_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace scuba {

/// A non-owning view over a contiguous byte range (RocksDB-style).
/// Unlike std::string_view it exposes the bytes as uint8_t and offers
/// byte-oriented helpers used by the codecs and segment layouts.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  explicit Slice(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  explicit Slice(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes. Caller must ensure n <= size().
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// Returns the sub-slice [offset, offset + len). Caller must ensure
  /// offset + len <= size().
  Slice Subslice(size_t offset, size_t len) const {
    return Slice(data_ + offset, len);
  }

  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace scuba

#endif  // SCUBA_UTIL_SLICE_H_
