#ifndef SCUBA_UTIL_BYTE_BUFFER_H_
#define SCUBA_UTIL_BYTE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

#include "util/slice.h"

namespace scuba {

/// Growable, 8-byte-aligned byte buffer used to assemble row block columns,
/// disk records, and shm images. Append never throws; growth uses geometric
/// doubling. The backing store is heap memory released on destruction.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t initial_capacity) { Reserve(initial_capacity); }

  ByteBuffer(const ByteBuffer&) = delete;
  ByteBuffer& operator=(const ByteBuffer&) = delete;
  ByteBuffer(ByteBuffer&&) noexcept = default;
  ByteBuffer& operator=(ByteBuffer&&) noexcept = default;

  const uint8_t* data() const { return data_.get(); }
  uint8_t* data() { return data_.get(); }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  Slice AsSlice() const { return Slice(data_.get(), size_); }

  void Clear() { size_ = 0; }

  /// Ensures capacity >= n, preserving contents.
  void Reserve(size_t n);

  /// Appends raw bytes.
  void Append(const void* src, size_t n) {
    EnsureRoom(n);
    std::memcpy(data_.get() + size_, src, n);
    size_ += n;
  }
  void Append(Slice s) { Append(s.data(), s.size()); }

  /// Appends `n` zero bytes and returns the offset of the first one.
  /// Used to reserve space for headers that are patched afterwards.
  size_t AppendZeros(size_t n) {
    EnsureRoom(n);
    std::memset(data_.get() + size_, 0, n);
    size_t offset = size_;
    size_ += n;
    return offset;
  }

  /// Pads with zeros so that size() becomes a multiple of `alignment`
  /// (which must be a power of two).
  void AlignTo(size_t alignment) {
    size_t rem = size_ & (alignment - 1);
    if (rem != 0) AppendZeros(alignment - rem);
  }

  // Fixed-width little-endian appends. (x86-64 is little-endian; these are
  // written as explicit byte stores so the on-disk/in-shm format is
  // endian-defined.)
  void AppendU8(uint8_t v) { Append(&v, 1); }
  void AppendU16(uint16_t v) {
    uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
    Append(b, 2);
  }
  void AppendU32(uint32_t v) {
    uint8_t b[4];
    EncodeU32(b, v);
    Append(b, 4);
  }
  void AppendU64(uint64_t v) {
    uint8_t b[8];
    EncodeU64(b, v);
    Append(b, 8);
  }

  /// Overwrites 4/8 bytes at `offset` (which must be within size()).
  void PatchU32(size_t offset, uint32_t v) { EncodeU32(data_.get() + offset, v); }
  void PatchU64(size_t offset, uint64_t v) { EncodeU64(data_.get() + offset, v); }

  static void EncodeU32(uint8_t* dst, uint32_t v) {
    dst[0] = static_cast<uint8_t>(v);
    dst[1] = static_cast<uint8_t>(v >> 8);
    dst[2] = static_cast<uint8_t>(v >> 16);
    dst[3] = static_cast<uint8_t>(v >> 24);
  }
  static void EncodeU64(uint8_t* dst, uint64_t v) {
    EncodeU32(dst, static_cast<uint32_t>(v));
    EncodeU32(dst + 4, static_cast<uint32_t>(v >> 32));
  }
  static uint32_t DecodeU32(const uint8_t* src) {
    return static_cast<uint32_t>(src[0]) | (static_cast<uint32_t>(src[1]) << 8) |
           (static_cast<uint32_t>(src[2]) << 16) |
           (static_cast<uint32_t>(src[3]) << 24);
  }
  static uint64_t DecodeU64(const uint8_t* src) {
    return static_cast<uint64_t>(DecodeU32(src)) |
           (static_cast<uint64_t>(DecodeU32(src + 4)) << 32);
  }

  /// Releases ownership of the backing array (size() bytes meaningful).
  std::unique_ptr<uint8_t[]> Release() {
    capacity_ = 0;
    size_ = 0;
    return std::move(data_);
  }

 private:
  void EnsureRoom(size_t n) {
    if (size_ + n > capacity_) Grow(size_ + n);
  }
  void Grow(size_t min_capacity);

  std::unique_ptr<uint8_t[]> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_UTIL_BYTE_BUFFER_H_
