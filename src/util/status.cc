#include "util/status.h"

namespace scuba {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace scuba
