#ifndef SCUBA_CORE_RESTART_MANAGER_H_
#define SCUBA_CORE_RESTART_MANAGER_H_

#include <cstdint>
#include <string>

#include "columnar/leaf_map.h"
#include "core/restore.h"
#include "core/shutdown.h"
#include "disk/backup_reader.h"
#include "disk/columnar_backup.h"
#include "obs/trace.h"
#include "util/status.h"

namespace scuba {

/// Where a recovery ultimately sourced its data.
enum class RecoverySource {
  kSharedMemory,  // fast path: memcpy out of shm
  kDisk,          // slow path: read + translate the backup
  kFresh,         // nothing to recover (new leaf)
};

std::string_view RecoverySourceName(RecoverySource source);

/// Version of the restart-report JSON artifacts
/// (leaf_<id>.{shutdown,recovery}_report.json) and of the bench --json
/// metrics section. v1 had no version field; v2 added "schema_version"
/// itself plus interpolated histogram percentiles in the metrics snapshot;
/// v3 added the per-case query profile object (QueryProfile::ToJson) and
/// the sampled-trace section to bench_query; v4 added the profile's
/// cache_hit_buckets/cache_miss_buckets fields and bench_query's
/// result_digest per case. Bump when a consumer-visible field changes
/// shape or meaning.
inline constexpr int kRestartReportSchemaVersion = 4;

/// On-disk backup format.
enum class BackupFormatKind {
  /// The paper's production format: row-major, value-encoded — recovery
  /// must decode every value and re-run compression (§1's 2.5-3 h path).
  kRowMajor,
  /// The paper's §6 future work: sealed blocks stored in the shared-memory
  /// column format — recovery is one memcpy per column plus a short
  /// row-major tail replay.
  kColumnar,
};

std::string_view BackupFormatKindName(BackupFormatKind kind);

/// Configuration shared by both restart directions.
struct RestartConfig {
  std::string namespace_prefix = "scuba";
  uint32_t leaf_id = 0;
  /// Directory holding the leaf's per-table backup files.
  std::string backup_dir;
  /// "memory recovery disabled" edge in Fig 5b: when false, a new process
  /// always takes the disk path (and scrubs any shm segments).
  bool memory_recovery_enabled = true;
  /// Which on-disk backup format this leaf reads and writes.
  BackupFormatKind backup_format = BackupFormatKind::kRowMajor;
  /// Copy/translate workers for every recovery and shutdown path; fanned
  /// into restore.num_copy_threads, shutdown.num_copy_threads,
  /// disk.num_threads and columnar_disk.num_threads by the constructor.
  /// 1 keeps the paper's serial loops. Set the sub-options directly for
  /// per-path control (the constructor only overwrites them when this is
  /// > 1 and the sub-option is still at its default of 1).
  size_t num_copy_threads = 1;
  /// Restore-side knobs.
  RestoreOptions restore;
  /// Disk-recovery knobs (throttle, limits).
  BackupReader::Options disk;
  /// Columnar-disk-recovery knobs (used when backup_format == kColumnar).
  ColumnarBackupReader::Options columnar_disk;
  /// Shutdown-side knobs.
  ShutdownOptions shutdown;
  /// Write a JSON restart report — the Fig 6/7 phase timeline, the op's
  /// stats, and a cumulative metrics snapshot — into `backup_dir` after
  /// every Recover ("leaf_<id>.recovery_report.json") and Shutdown
  /// ("leaf_<id>.shutdown_report.json"). The shutdown artifact is the
  /// durable sibling of the shm leaf-metadata block: the next process (or
  /// an operator) can see exactly how the previous one went down. Partial
  /// write failures log a warning and bump
  /// scuba.core.restart.report_write_failures instead of failing the op.
  /// Skipped silently when backup_dir is empty.
  bool dump_restart_report = true;
  /// Optional restart heartbeat (owned by the server for its process
  /// lifetime); fanned into restore.heartbeat and shutdown.heartbeat by the
  /// constructor, and used by Recover to publish the open_metadata /
  /// disk_recover / alive / failed phases. nullptr = no publication.
  RestartHeartbeat* heartbeat = nullptr;
};

/// Result of RestartManager::Recover.
struct RecoveryResult {
  RecoverySource source = RecoverySource::kFresh;
  RestoreStats shm_stats;
  BackupReader::Stats disk_stats;            // row-major path
  ColumnarBackupReader::Stats columnar_stats;  // columnar path
  /// Status of the abandoned shm attempt when source == kDisk (OK when the
  /// disk path was taken because there was simply nothing in shm).
  Status shm_attempt_status;
  /// Phase timeline of this recovery (obs::PhaseTracer::ToJson format):
  /// shm spans (open_metadata/copy_in/...) and/or disk spans
  /// (disk_read/disk_translate).
  std::string trace_json;
};

/// Ties the two recovery paths together with the decision logic of
/// Fig 5b / §4.3: try shared memory if enabled and present; on any
/// failure, scrub shm and fall back to the on-disk backup.
class RestartManager {
 public:
  explicit RestartManager(RestartConfig config);

  /// Recovers a leaf's state into `leaf_map` (which must be empty).
  /// `now` is the unix timestamp for block creation / expiry decisions.
  StatusOr<RecoveryResult> Recover(LeafMap* leaf_map, int64_t now);

  /// Clean-shutdown backup into shared memory (Fig 6). On failure the
  /// valid bit stays false and the caller should exit anyway — the next
  /// process will use the disk backup.
  Status Shutdown(LeafMap* leaf_map, ShutdownStats* stats,
                  FootprintTracker* tracker = nullptr);

  /// Removes every shm segment belonging to this leaf (crash cleanup,
  /// "memory recovery disabled" path, tests).
  size_t ScrubSharedMemory();

  const RestartConfig& config() const { return config_; }

  /// Phase timeline of the most recent Shutdown on this manager
  /// (obs::PhaseTracer::ToJson format; empty before the first shutdown).
  const std::string& last_shutdown_trace_json() const {
    return last_shutdown_trace_json_;
  }

 private:
  /// Best-effort JSON report write; warns + counts failures.
  void WriteReport(const std::string& op, const std::string& body_json);

  RestartConfig config_;
  std::string last_shutdown_trace_json_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_RESTART_MANAGER_H_
