#ifndef SCUBA_CORE_FOOTPRINT_H_
#define SCUBA_CORE_FOOTPRINT_H_

#include <algorithm>
#include <cstdint>

namespace scuba {

/// Tracks the peak combined footprint (heap bytes + shared memory bytes)
/// during shutdown/restore. The paper's chunked, free-as-you-copy scheme
/// (§4.4) keeps this peak within one row block column of the live data
/// size; tests and bench_footprint assert that invariant.
class FootprintTracker {
 public:
  void Observe(uint64_t bytes) {
    last_ = bytes;
    peak_ = std::max(peak_, bytes);
  }

  uint64_t peak() const { return peak_; }
  uint64_t last() const { return last_; }
  void Reset() { peak_ = last_ = 0; }

 private:
  uint64_t peak_ = 0;
  uint64_t last_ = 0;
};

}  // namespace scuba

#endif  // SCUBA_CORE_FOOTPRINT_H_
