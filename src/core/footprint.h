#ifndef SCUBA_CORE_FOOTPRINT_H_
#define SCUBA_CORE_FOOTPRINT_H_

#include <atomic>
#include <cstdint>

namespace scuba {

/// Tracks the peak combined footprint (heap bytes + shared memory bytes)
/// during shutdown/restore. The paper's chunked, free-as-you-copy scheme
/// (§4.4) keeps this peak within one row block column of the live data
/// size; with the parallel copy engine the bound widens to the configured
/// in-flight byte budget. Tests and bench_footprint/bench_parallel_copy
/// assert those invariants.
///
/// Thread-safe: the parallel copy paths observe from every worker.
class FootprintTracker {
 public:
  void Observe(uint64_t bytes) {
    last_.store(bytes, std::memory_order_relaxed);
    uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < bytes &&
           !peak_.compare_exchange_weak(prev, bytes,
                                        std::memory_order_relaxed)) {
    }
  }

  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t last() const { return last_.load(std::memory_order_relaxed); }
  void Reset() {
    peak_.store(0, std::memory_order_relaxed);
    last_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> last_{0};
};

/// Combined heap+shm byte counter shared by the copy workers: each worker
/// adjusts it as it copies/frees and feeds the result to the tracker, so
/// the observed footprint is consistent no matter which thread moved the
/// bytes.
class FootprintCounter {
 public:
  explicit FootprintCounter(uint64_t initial, FootprintTracker* tracker)
      : bytes_(initial), tracker_(tracker) {
    Observe(bytes_.load(std::memory_order_relaxed));
  }

  void Add(uint64_t delta) {
    Observe(bytes_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  void Sub(uint64_t delta) {
    Observe(bytes_.fetch_sub(delta, std::memory_order_relaxed) - delta);
  }

  uint64_t value() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  void Observe(uint64_t bytes) {
    if (tracker_ != nullptr) tracker_->Observe(bytes);
  }

  std::atomic<uint64_t> bytes_;
  FootprintTracker* tracker_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_FOOTPRINT_H_
