#ifndef SCUBA_CORE_SHUTDOWN_H_
#define SCUBA_CORE_SHUTDOWN_H_

#include <cstdint>
#include <string>

#include "columnar/leaf_map.h"
#include "core/footprint.h"
#include "util/status.h"

namespace scuba {

/// Options for the shutdown-to-shared-memory path (Fig 6).
struct ShutdownOptions {
  /// Namespace prefix isolating clusters (and tests) in /dev/shm.
  std::string namespace_prefix = "scuba";
  /// This leaf's id; determines the hard-coded metadata segment name.
  uint32_t leaf_id = 0;
  /// Segment size estimate = table heap bytes * factor + fixed overhead.
  /// Underestimates grow the segment; overestimates are truncated.
  double size_estimate_factor = 1.05;
  /// Paper behaviour (true): copy one row block column at a time, freeing
  /// each heap column immediately, so the footprint never grows (§4.4).
  /// False keeps the heap data until the end — the naive strategy
  /// bench_footprint contrasts against (it needs ~2x the memory).
  bool free_incrementally = true;
  /// Unix timestamp used if a non-empty write buffer must be sealed.
  int64_t now = 0;
};

/// Counters from one shutdown.
struct ShutdownStats {
  uint64_t tables_copied = 0;
  uint64_t row_blocks_copied = 0;
  uint64_t columns_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t segment_grow_count = 0;
  int64_t elapsed_micros = 0;
};

/// Backs up all of `leaf_map`'s tables into shared memory segments and
/// empties the leaf map, following Fig 6 exactly:
///
///   create shared memory segment for leaf metadata
///   set valid bit to false
///   for each table
///     estimate size of table; create table shm segment; register it
///     for each row block
///       grow the table segment in size if needed
///       for each row block column
///         copy data from heap to the table segment   (one memcpy)
///         delete row block column from heap
///       delete row block from heap
///     delete table from heap
///   set valid bit to true
///
/// On failure the metadata's valid bit stays false, so the next start
/// falls back to disk recovery. The caller (leaf server) must have drained
/// in-flight work and flushed backups first (Fig 5c PREPARE).
///
/// `tracker` (optional) observes heap+shm footprint after every column.
Status ShutdownToShm(LeafMap* leaf_map, const ShutdownOptions& options,
                     ShutdownStats* stats, FootprintTracker* tracker = nullptr);

}  // namespace scuba

#endif  // SCUBA_CORE_SHUTDOWN_H_
