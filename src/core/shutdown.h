#ifndef SCUBA_CORE_SHUTDOWN_H_
#define SCUBA_CORE_SHUTDOWN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "columnar/leaf_map.h"
#include "core/footprint.h"
#include "obs/trace.h"
#include "shm/restart_heartbeat.h"
#include "util/status.h"

namespace scuba {

/// Options for the shutdown-to-shared-memory path (Fig 6).
struct ShutdownOptions {
  /// Namespace prefix isolating clusters (and tests) in /dev/shm.
  std::string namespace_prefix = "scuba";
  /// This leaf's id; determines the hard-coded metadata segment name.
  uint32_t leaf_id = 0;
  /// Segment size estimate = table heap bytes * factor + fixed overhead.
  /// Underestimates grow the segment; overestimates are truncated.
  double size_estimate_factor = 1.05;
  /// Paper behaviour (true): copy one row block column at a time, freeing
  /// each heap column immediately, so the footprint never grows (§4.4).
  /// False keeps the heap data until the end — the naive strategy
  /// bench_footprint contrasts against (it needs ~2x the memory).
  bool free_incrementally = true;
  /// Unix timestamp used if a non-empty write buffer must be sealed.
  int64_t now = 0;
  /// Copy workers for the heap->shm memcpy fan-out (§4.2: restart speed is
  /// a memory-bandwidth problem; one stream does not saturate it). 1 keeps
  /// the paper's serial Fig 6 loop.
  size_t num_copy_threads = 1;
  /// Cap on bytes copied to shm but not yet freed from the heap — the
  /// amount by which the footprint may exceed the live data size (§4.4
  /// widened for parallelism). 0 = auto: num_copy_threads x the largest
  /// row block column.
  uint64_t max_in_flight_bytes = 0;
  /// Optional phase tracer: records the Fig 6 timeline as back-to-back
  /// root spans (seal_buffers, create_metadata, copy_out, set_valid) with
  /// per-table and segment_grow child spans. nullptr = tracing off.
  obs::PhaseTracer* tracer = nullptr;
  /// Optional restart heartbeat: the copy loop publishes bytes_total, the
  /// copy_out/set_valid phases, and per-block byte progress through it so
  /// the shutdown is observable from OUTSIDE the process. nullptr = off.
  RestartHeartbeat* heartbeat = nullptr;
  /// Optional cooperative cancel, polled between row-block copies (both
  /// serial and parallel modes). When it reads true the shutdown stops,
  /// returns Aborted, and leaves the valid bit false — the phase-aware
  /// watchdog's targeted kill: the successor recovers from disk without
  /// waiting out the blunt 180 s timeout (§4.3).
  const std::atomic<bool>* cancel = nullptr;
  /// Test hook invoked after every row-block copy, from whichever thread
  /// performed it. Fault injection uses it to freeze the copy loop and
  /// exercise heartbeat stall detection. nullptr = off.
  std::function<void()> after_block_copied;
};

/// Counters from one shutdown. Fields are atomics because the parallel
/// copy engine updates them from every worker; copying the struct takes a
/// (racy-free, quiescent-time) snapshot.
///
/// This is the PER-OPERATION view; the same increments also land in the
/// process-wide MetricsRegistry under scuba.core.shutdown.* (cumulative
/// across operations, exported by MetricsRegistry::ToJson).
struct ShutdownStats {
  std::atomic<uint64_t> tables_copied{0};
  std::atomic<uint64_t> row_blocks_copied{0};
  std::atomic<uint64_t> columns_copied{0};
  std::atomic<uint64_t> bytes_copied{0};
  std::atomic<uint64_t> segment_grow_count{0};
  std::atomic<int64_t> elapsed_micros{0};

  ShutdownStats() = default;
  ShutdownStats(const ShutdownStats& other) { *this = other; }
  ShutdownStats& operator=(const ShutdownStats& other) {
    tables_copied = other.tables_copied.load();
    row_blocks_copied = other.row_blocks_copied.load();
    columns_copied = other.columns_copied.load();
    bytes_copied = other.bytes_copied.load();
    segment_grow_count = other.segment_grow_count.load();
    elapsed_micros = other.elapsed_micros.load();
    return *this;
  }
};

/// Backs up all of `leaf_map`'s tables into shared memory segments and
/// empties the leaf map, following Fig 6 exactly:
///
///   create shared memory segment for leaf metadata
///   set valid bit to false
///   for each table
///     estimate size of table; create table shm segment; register it
///     for each row block
///       grow the table segment in size if needed
///       for each row block column
///         copy data from heap to the table segment   (one memcpy)
///         delete row block column from heap
///       delete row block from heap
///     delete table from heap
///   set valid bit to true
///
/// On failure the metadata's valid bit stays false, so the next start
/// falls back to disk recovery. The caller (leaf server) must have drained
/// in-flight work and flushed backups first (Fig 5c PREPARE).
///
/// With options.num_copy_threads > 1 the per-column copies fan out over a
/// worker pool: each table's segment layout is reserved up front (offsets
/// are computed serially, so the mapping never moves under a worker), then
/// the column memcpys run in parallel, each freeing its heap column the
/// moment it lands. A ByteBudget bounds copied-but-not-yet-freed bytes so
/// the §4.4 footprint invariant holds with the budget in place of "one row
/// block column". The valid bit is still set only after every worker has
/// finished and every segment is sealed.
///
/// `tracker` (optional) observes heap+shm footprint after every column.
Status ShutdownToShm(LeafMap* leaf_map, const ShutdownOptions& options,
                     ShutdownStats* stats, FootprintTracker* tracker = nullptr);

}  // namespace scuba

#endif  // SCUBA_CORE_SHUTDOWN_H_
