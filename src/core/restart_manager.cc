#include "core/restart_manager.h"

#include "disk/file.h"
#include "shm/shm_segment.h"
#include "util/logging.h"

namespace scuba {

std::string_view RecoverySourceName(RecoverySource source) {
  switch (source) {
    case RecoverySource::kSharedMemory:
      return "shared-memory";
    case RecoverySource::kDisk:
      return "disk";
    case RecoverySource::kFresh:
      return "fresh";
  }
  return "unknown";
}

std::string_view BackupFormatKindName(BackupFormatKind kind) {
  switch (kind) {
    case BackupFormatKind::kRowMajor:
      return "row-major";
    case BackupFormatKind::kColumnar:
      return "columnar";
  }
  return "unknown";
}

RestartManager::RestartManager(RestartConfig config)
    : config_(std::move(config)) {
  // Keep the sub-option leaf coordinates in sync with the top-level ones
  // so callers only have to set them once.
  config_.restore.namespace_prefix = config_.namespace_prefix;
  config_.restore.leaf_id = config_.leaf_id;
  config_.shutdown.namespace_prefix = config_.namespace_prefix;
  config_.shutdown.leaf_id = config_.leaf_id;
  // Fan the top-level thread count into each copy path, without clobbering
  // a sub-option a caller tuned individually.
  if (config_.num_copy_threads > 1) {
    if (config_.restore.num_copy_threads <= 1) {
      config_.restore.num_copy_threads = config_.num_copy_threads;
    }
    if (config_.shutdown.num_copy_threads <= 1) {
      config_.shutdown.num_copy_threads = config_.num_copy_threads;
    }
    if (config_.disk.num_threads <= 1) {
      config_.disk.num_threads = config_.num_copy_threads;
    }
    if (config_.columnar_disk.num_threads <= 1) {
      config_.columnar_disk.num_threads = config_.num_copy_threads;
    }
  }
}

size_t RestartManager::ScrubSharedMemory() {
  return ShmSegment::RemoveAll("/" + config_.namespace_prefix + "_leaf_" +
                               std::to_string(config_.leaf_id) + "_");
}

StatusOr<RecoveryResult> RestartManager::Recover(LeafMap* leaf_map,
                                                 int64_t now) {
  if (leaf_map->num_tables() != 0) {
    return Status::FailedPrecondition("recover: leaf map must be empty");
  }
  RecoveryResult result;

  if (config_.memory_recovery_enabled) {
    Status s = RestoreFromShm(leaf_map, config_.restore, &result.shm_stats);
    if (s.ok()) {
      result.source = RecoverySource::kSharedMemory;
      return result;
    }
    result.shm_attempt_status = s;
    if (!s.IsNotFound()) {
      SCUBA_WARN << "leaf " << config_.leaf_id
                 << ": memory recovery unavailable (" << s.ToString()
                 << "); recovering from disk";
    }
    // RestoreFromShm already scrubbed segments / cleared partial state on
    // the failure paths; scrub again defensively (idempotent).
    ScrubSharedMemory();
  } else {
    // Fig 5b "memory recovery disabled": free any shared memory in use.
    size_t scrubbed = ScrubSharedMemory();
    if (scrubbed > 0) {
      SCUBA_INFO << "leaf " << config_.leaf_id << ": memory recovery "
                 << "disabled; removed " << scrubbed << " shm segments";
    }
  }

  // Disk path (Fig 5b DISK RECOVERY).
  if (config_.backup_dir.empty() || !FileExists(config_.backup_dir)) {
    result.source = RecoverySource::kFresh;
    return result;
  }
  uint64_t tables_recovered = 0;
  if (config_.backup_format == BackupFormatKind::kColumnar) {
    SCUBA_RETURN_IF_ERROR(
        ColumnarBackupReader::RecoverLeaf(config_.backup_dir, leaf_map,
                                          config_.columnar_disk, now,
                                          &result.columnar_stats));
    tables_recovered = result.columnar_stats.tables_recovered;
  } else {
    SCUBA_RETURN_IF_ERROR(BackupReader::RecoverLeaf(
        config_.backup_dir, leaf_map, config_.disk, now, &result.disk_stats));
    tables_recovered = result.disk_stats.tables_recovered;
  }
  result.source = tables_recovered > 0 ? RecoverySource::kDisk
                                       : RecoverySource::kFresh;
  return result;
}

Status RestartManager::Shutdown(LeafMap* leaf_map, ShutdownStats* stats,
                                FootprintTracker* tracker) {
  // A leftover metadata segment (e.g. the previous shutdown was killed
  // before its new process consumed it) would fail Create; scrub first.
  // Its valid bit semantics make this safe: either it was consumed, or the
  // disk backup is authoritative anyway.
  ScrubSharedMemory();
  return ShutdownToShm(leaf_map, config_.shutdown, stats, tracker);
}

}  // namespace scuba
