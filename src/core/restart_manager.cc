#include "core/restart_manager.h"

#include <fstream>
#include <sstream>

#include "disk/file.h"
#include "obs/metrics.h"
#include "shm/shm_segment.h"
#include "util/logging.h"

namespace scuba {
namespace {

// Reconstructs the paper's disk-recovery phase split (Fig 5b: raw read vs
// decode+rebuild) as a timeline. The readers accumulate read/translate
// micros but interleave the two phases per record, so the spans are laid
// end to end inside the measured disk window — same convention as Fig 7's
// stacked bars.
void AddDiskPhaseSpans(obs::PhaseTracer* tracer, int64_t window_start,
                       int64_t read_micros, int64_t translate_micros,
                       uint64_t bytes_read) {
  if (tracer == nullptr) return;
  tracer->AddCompletedSpan("disk_read", window_start,
                           window_start + read_micros, bytes_read);
  tracer->AddCompletedSpan("disk_translate", window_start + read_micros,
                           window_start + read_micros + translate_micros);
}

}  // namespace

std::string_view RecoverySourceName(RecoverySource source) {
  switch (source) {
    case RecoverySource::kSharedMemory:
      return "shared-memory";
    case RecoverySource::kDisk:
      return "disk";
    case RecoverySource::kFresh:
      return "fresh";
  }
  return "unknown";
}

std::string_view BackupFormatKindName(BackupFormatKind kind) {
  switch (kind) {
    case BackupFormatKind::kRowMajor:
      return "row-major";
    case BackupFormatKind::kColumnar:
      return "columnar";
  }
  return "unknown";
}

RestartManager::RestartManager(RestartConfig config)
    : config_(std::move(config)) {
  // Keep the sub-option leaf coordinates in sync with the top-level ones
  // so callers only have to set them once.
  config_.restore.namespace_prefix = config_.namespace_prefix;
  config_.restore.leaf_id = config_.leaf_id;
  config_.shutdown.namespace_prefix = config_.namespace_prefix;
  config_.shutdown.leaf_id = config_.leaf_id;
  if (config_.heartbeat != nullptr) {
    config_.restore.heartbeat = config_.heartbeat;
    config_.shutdown.heartbeat = config_.heartbeat;
  }
  // Fan the top-level thread count into each copy path, without clobbering
  // a sub-option a caller tuned individually.
  if (config_.num_copy_threads > 1) {
    if (config_.restore.num_copy_threads <= 1) {
      config_.restore.num_copy_threads = config_.num_copy_threads;
    }
    if (config_.shutdown.num_copy_threads <= 1) {
      config_.shutdown.num_copy_threads = config_.num_copy_threads;
    }
    if (config_.disk.num_threads <= 1) {
      config_.disk.num_threads = config_.num_copy_threads;
    }
    if (config_.columnar_disk.num_threads <= 1) {
      config_.columnar_disk.num_threads = config_.num_copy_threads;
    }
  }
}

size_t RestartManager::ScrubSharedMemory() {
  return ShmSegment::RemoveAll("/" + config_.namespace_prefix + "_leaf_" +
                               std::to_string(config_.leaf_id) + "_");
}

StatusOr<RecoveryResult> RestartManager::Recover(LeafMap* leaf_map,
                                                 int64_t now) {
  if (leaf_map->num_tables() != 0) {
    return Status::FailedPrecondition("recover: leaf map must be empty");
  }
  RecoveryResult result;
  obs::PhaseTracer tracer;
  RestartHeartbeat* heartbeat = config_.heartbeat;
  auto finish = [&](RecoverySource source) {
    result.source = source;
    result.trace_json = tracer.ToJson();
    obs::SetGauge("scuba.core.restart.last_recovery_source",
                  static_cast<int64_t>(source));
    std::ostringstream body;
    body << "\"source\": \"" << RecoverySourceName(source)
         << "\", \"trace\": " << result.trace_json;
    WriteReport("recovery", body.str());
  };

  if (heartbeat != nullptr) heartbeat->SetPhase(RestartPhase::kOpenMetadata);
  if (config_.memory_recovery_enabled) {
    RestoreOptions restore_options = config_.restore;
    restore_options.tracer = &tracer;
    Status s = RestoreFromShm(leaf_map, restore_options, &result.shm_stats);
    if (s.ok()) {
      finish(RecoverySource::kSharedMemory);
      return result;
    }
    result.shm_attempt_status = s;
    if (!s.IsNotFound()) {
      obs::IncrCounter("scuba.core.restart.shm_recovery_failures");
      SCUBA_WARN << "leaf " << config_.leaf_id
                 << ": memory recovery unavailable (" << s.ToString()
                 << "); recovering from disk";
    }
    // RestoreFromShm already scrubbed segments / cleared partial state on
    // the failure paths; scrub again defensively (idempotent).
    ScrubSharedMemory();
  } else {
    // Fig 5b "memory recovery disabled": free any shared memory in use.
    size_t scrubbed = ScrubSharedMemory();
    if (scrubbed > 0) {
      SCUBA_INFO << "leaf " << config_.leaf_id << ": memory recovery "
                 << "disabled; removed " << scrubbed << " shm segments";
    }
  }

  // Disk path (Fig 5b DISK RECOVERY).
  if (config_.backup_dir.empty() || !FileExists(config_.backup_dir)) {
    finish(RecoverySource::kFresh);
    return result;
  }
  if (heartbeat != nullptr) heartbeat->SetPhase(RestartPhase::kDiskRecover);
  int64_t disk_start = tracer.ElapsedMicros();
  uint64_t tables_recovered = 0;
  Status disk_status;
  if (config_.backup_format == BackupFormatKind::kColumnar) {
    disk_status = ColumnarBackupReader::RecoverLeaf(
        config_.backup_dir, leaf_map, config_.columnar_disk, now,
        &result.columnar_stats);
    tables_recovered = result.columnar_stats.tables_recovered;
    AddDiskPhaseSpans(&tracer, disk_start, result.columnar_stats.read_micros,
                      result.columnar_stats.translate_micros,
                      result.columnar_stats.bytes_read);
  } else {
    disk_status = BackupReader::RecoverLeaf(config_.backup_dir, leaf_map,
                                            config_.disk, now,
                                            &result.disk_stats);
    tables_recovered = result.disk_stats.tables_recovered;
    AddDiskPhaseSpans(&tracer, disk_start, result.disk_stats.read_micros,
                      result.disk_stats.translate_micros,
                      result.disk_stats.bytes_read);
  }
  if (!disk_status.ok()) {
    if (heartbeat != nullptr) heartbeat->SetPhase(RestartPhase::kFailed);
    return disk_status;
  }
  finish(tables_recovered > 0 ? RecoverySource::kDisk
                              : RecoverySource::kFresh);
  return result;
}

Status RestartManager::Shutdown(LeafMap* leaf_map, ShutdownStats* stats,
                                FootprintTracker* tracker) {
  // A leftover metadata segment (e.g. the previous shutdown was killed
  // before its new process consumed it) would fail Create; scrub first.
  // Its valid bit semantics make this safe: either it was consumed, or the
  // disk backup is authoritative anyway.
  ScrubSharedMemory();
  obs::PhaseTracer tracer;
  ShutdownOptions shutdown_options = config_.shutdown;
  shutdown_options.tracer = &tracer;
  Status s = ShutdownToShm(leaf_map, shutdown_options, stats, tracker);
  last_shutdown_trace_json_ = tracer.ToJson();
  std::ostringstream body;
  body << "\"status\": \"" << (s.ok() ? "ok" : s.ToString())
       << "\", \"bytes_copied\": " << stats->bytes_copied.load()
       << ", \"tables_copied\": " << stats->tables_copied.load()
       << ", \"elapsed_micros\": " << stats->elapsed_micros.load()
       << ", \"trace\": " << last_shutdown_trace_json_;
  WriteReport("shutdown", body.str());
  return s;
}

void RestartManager::WriteReport(const std::string& op,
                                 const std::string& body_json) {
  if (!config_.dump_restart_report || config_.backup_dir.empty()) return;
  std::string path = config_.backup_dir + "/leaf_" +
                     std::to_string(config_.leaf_id) + "." + op +
                     "_report.json";
  std::ofstream out(path, std::ios::trunc);
  if (out) {
    out << "{\"schema_version\": " << kRestartReportSchemaVersion
        << ", \"leaf_id\": " << config_.leaf_id << ", \"op\": \"" << op
        << "\", " << body_json
        << ", \"metrics\": " << obs::MetricsRegistry::Global().ToJson()
        << "}\n";
    out.flush();
  }
  if (!out) {
    // Never fail the restart over a report, but never be silent either:
    // the operator loses the artifact, the dashboard sees the counter.
    obs::IncrCounter("scuba.core.restart.report_write_failures");
    SCUBA_WARN << "leaf " << config_.leaf_id << ": failed to write " << op
               << " report to " << path;
  }
}

}  // namespace scuba
