#ifndef SCUBA_CORE_STATE_MACHINE_H_
#define SCUBA_CORE_STATE_MACHINE_H_

#include <string_view>

#include "util/status.h"

namespace scuba {

/// Leaf server states (Fig 5a/5b). "At all times, each leaf and table
/// keeps track of its state. The state ... determines which actions are
/// permissible: adding data, deleting (expired) data, evaluating queries"
/// (§4.3).
enum class LeafState {
  kInit = 0,            // new process, nothing recovered yet
  kMemoryRecovery = 1,  // restoring from shared memory
  kDiskRecovery = 2,    // restoring from the on-disk backup
  kAlive = 3,           // serving adds, deletes, and queries
  kCopyToShm = 4,       // clean shutdown: copying heap -> shm
  kExit = 5,            // terminal
};

/// Table states (Fig 5c/5d). Tables add one state over leaves: PREPARE,
/// which rejects new requests, kills in-progress deletes, waits for
/// in-flight adds/queries, and flushes to disk.
enum class TableState {
  kInit = 0,
  kMemoryRecovery = 1,
  kDiskRecovery = 2,
  kAlive = 3,
  kPrepare = 4,
  kCopyToShm = 5,
  kDone = 6,  // terminal (backup finished)
};

std::string_view LeafStateName(LeafState state);
std::string_view TableStateName(TableState state);

/// Validating wrapper around LeafState with the Fig 5 transition edges:
///   backup  (5a): Alive -> CopyToShm -> Exit
///   restore (5b): Init -> MemoryRecovery | DiskRecovery -> Alive,
///                 MemoryRecovery -> DiskRecovery (exception),
///                 Init -> Alive (fresh leaf with no prior data).
class LeafStateMachine {
 public:
  LeafStateMachine() : state_(LeafState::kInit) {}

  LeafState state() const { return state_; }

  /// Moves to `next` if that edge exists; FailedPrecondition otherwise.
  Status Transition(LeafState next);

  static bool IsAllowed(LeafState from, LeafState to);

  // Permissible actions per state (§4.3): memory recovery accepts nothing;
  // disk recovery accepts adds and queries (returning partial results);
  // only a live leaf deletes expired data.
  bool CanAcceptAdds() const {
    return state_ == LeafState::kAlive || state_ == LeafState::kDiskRecovery;
  }
  bool CanAcceptQueries() const {
    return state_ == LeafState::kAlive || state_ == LeafState::kDiskRecovery;
  }
  bool CanDeleteExpired() const { return state_ == LeafState::kAlive; }

 private:
  LeafState state_;
};

/// Validating wrapper around TableState with the Fig 5c/5d edges:
///   backup  (5c): Alive -> Prepare -> CopyToShm -> Done
///   restore (5d): Init -> MemoryRecovery | DiskRecovery -> Alive,
///                 MemoryRecovery -> DiskRecovery (exception),
///                 Init -> Alive (fresh table).
class TableStateMachine {
 public:
  TableStateMachine() : state_(TableState::kInit) {}

  TableState state() const { return state_; }

  Status Transition(TableState next);

  static bool IsAllowed(TableState from, TableState to);

  bool CanAcceptAdds() const {
    return state_ == TableState::kAlive ||
           state_ == TableState::kDiskRecovery;
  }
  bool CanAcceptQueries() const {
    return state_ == TableState::kAlive ||
           state_ == TableState::kDiskRecovery;
  }
  /// Deletes are killed once shutdown starts; "any needed deletions are
  /// made after recovery" (Fig 5 caption).
  bool CanDeleteExpired() const { return state_ == TableState::kAlive; }

 private:
  TableState state_;
};

}  // namespace scuba

#endif  // SCUBA_CORE_STATE_MACHINE_H_
