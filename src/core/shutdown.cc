#include "core/shutdown.h"

#include <vector>

#include "shm/leaf_metadata.h"
#include "shm/table_segment.h"
#include "util/clock.h"
#include "util/logging.h"

namespace scuba {
namespace {

std::string TableSegmentName(const ShutdownOptions& options, size_t index) {
  return "/" + options.namespace_prefix + "_leaf_" +
         std::to_string(options.leaf_id) + "_table_" + std::to_string(index);
}

}  // namespace

Status ShutdownToShm(LeafMap* leaf_map, const ShutdownOptions& options,
                     ShutdownStats* stats, FootprintTracker* tracker) {
  Stopwatch watch;

  // The server's PREPARE step seals write buffers; seal here as a backstop
  // so no buffered rows are silently dropped. Done before byte accounting
  // so heap_bytes reflects the sealed (compressed) sizes.
  std::vector<std::string> table_names = leaf_map->TableNames();
  for (const std::string& name : table_names) {
    SCUBA_RETURN_IF_ERROR(
        leaf_map->GetTable(name)->SealWriteBuffer(options.now));
  }

  // Heap-side byte accounting, decremented as columns are freed.
  uint64_t heap_bytes = leaf_map->TotalMemoryBytes();
  uint64_t shm_bytes = 0;
  auto observe = [&]() {
    if (tracker != nullptr) tracker->Observe(heap_bytes + shm_bytes);
  };
  observe();

  // Fig 6 step 1-2: metadata segment with valid=false.
  SCUBA_ASSIGN_OR_RETURN(
      LeafMetadata meta,
      LeafMetadata::Create(options.namespace_prefix, options.leaf_id));

  for (size_t t = 0; t < table_names.size(); ++t) {
    Table* table = leaf_map->GetTable(table_names[t]);

    // Fig 6: estimate size of table, create table shm segment.
    uint64_t table_bytes = table->MemoryBytes();
    size_t estimate = static_cast<size_t>(
        static_cast<double>(table_bytes) * options.size_estimate_factor +
        4096.0 + 512.0 * static_cast<double>(table->num_row_blocks()));
    std::string segment_name = TableSegmentName(options, t);
    SCUBA_ASSIGN_OR_RETURN(
        TableSegmentWriter writer,
        TableSegmentWriter::Create(segment_name, table->name(), estimate));
    SCUBA_RETURN_IF_ERROR(meta.AddTableSegment(segment_name));
    shm_bytes += writer.used_bytes();

    uint64_t blocks = table->num_row_blocks();
    for (size_t b = 0; b < blocks; ++b) {
      const RowBlock* block = table->row_block(b);
      SCUBA_RETURN_IF_ERROR(writer.AppendRowBlockMeta(*block));

      const size_t num_columns = block->num_columns();
      for (size_t c = 0; c < num_columns; ++c) {
        const RowBlockColumn* column = block->column(c);
        uint64_t column_bytes = column->total_bytes();
        // Fig 6: copy data from heap to the table segment (ONE memcpy —
        // offsets, not pointers, make the buffer position-independent).
        SCUBA_RETURN_IF_ERROR(writer.AppendColumnBuffer(column->AsSlice()));
        shm_bytes += column_bytes;
        ++stats->columns_copied;
        stats->bytes_copied += column_bytes;

        if (options.free_incrementally) {
          // Fig 6: delete row block column from heap.
          table->mutable_row_block(b)->ReleaseColumn(c).reset();
          heap_bytes -= column_bytes;
        }
        observe();
      }
      if (options.free_incrementally) {
        // Fig 6: delete row block from heap.
        table->ReleaseRowBlock(b).reset();
      }
      ++stats->row_blocks_copied;
    }
    stats->segment_grow_count += writer.grow_count();
    SCUBA_RETURN_IF_ERROR(writer.Finish(blocks));

    // Fig 6: delete table from heap.
    if (options.free_incrementally) {
      leaf_map->ReleaseTable(table_names[t]).reset();
    }
    ++stats->tables_copied;
  }

  // Naive (non-paper) strategy frees everything only now.
  if (!options.free_incrementally) {
    for (const std::string& name : table_names) {
      Table* table = leaf_map->GetTable(name);
      heap_bytes -= table->MemoryBytes();
      leaf_map->ReleaseTable(name).reset();
      observe();
    }
  }

  // Fig 6 final step: set valid bit to true. Everything before this point
  // leaves the valid bit false, so a failure or kill forces disk recovery.
  SCUBA_RETURN_IF_ERROR(meta.SetValid(true));

  stats->elapsed_micros = watch.ElapsedMicros();
  SCUBA_INFO << "shutdown-to-shm: " << stats->tables_copied << " tables, "
             << stats->bytes_copied << " bytes in "
             << stats->elapsed_micros / 1000 << " ms";
  return Status::OK();
}

}  // namespace scuba
