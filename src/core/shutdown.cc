#include "core/shutdown.h"

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "shm/leaf_metadata.h"
#include "shm/table_segment.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

// Cumulative process-wide mirror of ShutdownStats (scuba.core.shutdown.*).
struct ShutdownMetrics {
  obs::Counter* operations;
  obs::Counter* tables;
  obs::Counter* row_blocks;
  obs::Counter* columns;
  obs::Counter* bytes;
  obs::Counter* segment_grows;
  obs::Histogram* column_bytes;
  obs::Histogram* elapsed_micros;

  static ShutdownMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ShutdownMetrics m{
        reg.GetCounter("scuba.core.shutdown.operations"),
        reg.GetCounter("scuba.core.shutdown.tables_copied"),
        reg.GetCounter("scuba.core.shutdown.row_blocks_copied"),
        reg.GetCounter("scuba.core.shutdown.columns_copied"),
        reg.GetCounter("scuba.core.shutdown.bytes_copied"),
        reg.GetCounter("scuba.core.shutdown.segment_grows"),
        reg.GetHistogram("scuba.core.shutdown.column_bytes"),
        reg.GetHistogram("scuba.core.shutdown.elapsed_micros")};
    return m;
  }
};

std::string TableSegmentName(const ShutdownOptions& options, size_t index) {
  return "/" + options.namespace_prefix + "_leaf_" +
         std::to_string(options.leaf_id) + "_table_" + std::to_string(index);
}

// Largest single RBC buffer in the leaf — the unit of the §4.4 footprint
// overshoot, and the auto-budget multiplier.
uint64_t MaxColumnBytes(const LeafMap& leaf_map) {
  uint64_t max_column = 0;
  for (const std::string& name : leaf_map.TableNames()) {
    const Table* table = leaf_map.GetTable(name);
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      const RowBlock* block = table->row_block(b);
      if (block == nullptr) continue;
      for (size_t c = 0; c < block->num_columns(); ++c) {
        if (block->column(c) != nullptr) {
          max_column = std::max(max_column, block->column(c)->total_bytes());
        }
      }
    }
  }
  return max_column;
}

// One table's shm segment plus what is needed to seal and free it after
// the copy fan-out completes.
struct TableCopyJob {
  std::unique_ptr<TableSegmentWriter> writer;
  std::string table_name;
  uint64_t num_blocks = 0;
};

}  // namespace

Status ShutdownToShm(LeafMap* leaf_map, const ShutdownOptions& options,
                     ShutdownStats* stats, FootprintTracker* tracker) {
  Stopwatch watch;
  obs::PhaseTracer* tracer = options.tracer;
  // The first span opens immediately: metric-handle initialization (first
  // call only) costs tens of microseconds and must not show up as a hole
  // at the front of the timeline.
  obs::PhaseTracer::Span seal_span(tracer, "seal_buffers");
  ShutdownMetrics& metrics = ShutdownMetrics::Get();
  metrics.operations->Add(1);

  // The server's PREPARE step seals write buffers; seal here as a backstop
  // so no buffered rows are silently dropped. Done before byte accounting
  // so heap_bytes reflects the sealed (compressed) sizes.
  std::vector<std::string> table_names = leaf_map->TableNames();
  for (const std::string& name : table_names) {
    SCUBA_RETURN_IF_ERROR(
        leaf_map->GetTable(name)->SealWriteBuffer(options.now));
  }
  seal_span.End();

  // Combined heap+shm accounting, shared by all copy workers.
  FootprintCounter footprint(leaf_map->TotalMemoryBytes(), tracker);

  // External progress publication (§4.3 made observable): total first, so
  // a watcher that sees copy_out can already render a percentage.
  RestartHeartbeat* heartbeat = options.heartbeat;
  if (heartbeat != nullptr) {
    heartbeat->SetBytesTotal(leaf_map->TotalMemoryBytes());
  }

  // Cooperative cancel: the first observer (an options.cancel flip or a
  // failed worker) sets `aborted`; everyone else drains fast.
  std::atomic<bool> aborted{false};
  auto cancelled = [&options, &aborted] {
    return aborted.load(std::memory_order_relaxed) ||
           (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_acquire));
  };

  // Fig 6 step 1-2: metadata segment with valid=false.
  obs::PhaseTracer::Span meta_span(tracer, "create_metadata");
  SCUBA_ASSIGN_OR_RETURN(
      LeafMetadata meta,
      LeafMetadata::Create(options.namespace_prefix, options.leaf_id));
  meta_span.End();

  // The copy-out phase: budget sizing, per-table layout reservation, the
  // column memcpy fan-out, and segment sealing all belong to it.
  obs::PhaseTracer::Span copy_span(tracer, "copy_out");
  if (heartbeat != nullptr) heartbeat->SetPhase(RestartPhase::kCopyOut);

  // In-flight budget: bytes copied to shm whose heap column has not been
  // freed yet. Serial mode needs none — the Fig 6 loop frees each column
  // right after its copy, so the overshoot is exactly one column.
  const size_t threads = std::max<size_t>(1, options.num_copy_threads);
  uint64_t budget_limit = 0;
  if (threads > 1) {
    budget_limit = options.max_in_flight_bytes != 0
                       ? options.max_in_flight_bytes
                       : threads * MaxColumnBytes(*leaf_map);
  }
  ByteBudget budget(budget_limit);

  // Destruction order matters on early return: the pool (declared last)
  // drains and joins first, so queued tasks never outlive the writers,
  // tables, budget, or footprint counter they reference.
  std::vector<TableCopyJob> jobs;
  jobs.reserve(table_names.size());
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  for (size_t t = 0; t < table_names.size(); ++t) {
    Table* table = leaf_map->GetTable(table_names[t]);

    // Serial mode: the span covers the table's whole Fig 6 copy. Parallel
    // mode: it covers only the layout reservation — the copies drain
    // asynchronously under the enclosing copy_out span.
    obs::PhaseTracer::Span table_span(
        tracer, (pool == nullptr ? "table:" : "reserve:") + table_names[t]);

    // Fig 6: estimate size of table, create table shm segment.
    uint64_t table_bytes = table->MemoryBytes();
    table_span.AddBytes(table_bytes);
    size_t estimate = static_cast<size_t>(
        static_cast<double>(table_bytes) * options.size_estimate_factor +
        4096.0 + 512.0 * static_cast<double>(table->num_row_blocks()));
    std::string segment_name = TableSegmentName(options, t);
    SCUBA_ASSIGN_OR_RETURN(
        TableSegmentWriter writer,
        TableSegmentWriter::Create(segment_name, table->name(), estimate));
    SCUBA_RETURN_IF_ERROR(meta.AddTableSegment(segment_name));

    jobs.push_back(TableCopyJob{
        std::make_unique<TableSegmentWriter>(std::move(writer)),
        table_names[t], table->num_row_blocks()});
    TableCopyJob& job = jobs.back();
    TableSegmentWriter* w = job.writer.get();
    footprint.Add(w->used_bytes());

    // Reserve the whole table's layout serially — reservation may grow
    // (remap) the segment, so every reservation must finish before this
    // segment's copies start (the table_segment.h contract). Tasks are
    // buffered and submitted only after the loop, once the mapping can no
    // longer move; copies then write to disjoint, stable offsets.
    std::vector<std::function<void()>> deferred;
    if (pool != nullptr) deferred.reserve(job.num_blocks);
    for (uint64_t b = 0; b < job.num_blocks; ++b) {
      RowBlock* block = table->mutable_row_block(b);
      SCUBA_RETURN_IF_ERROR(w->AppendRowBlockMeta(*block));

      const size_t num_columns = block->num_columns();
      std::vector<size_t> offsets(num_columns);
      for (size_t c = 0; c < num_columns; ++c) {
        uint64_t grows_before = tracer != nullptr ? w->grow_count() : 0;
        int64_t reserve_start = tracer != nullptr ? tracer->ElapsedMicros() : 0;
        SCUBA_ASSIGN_OR_RETURN(
            offsets[c],
            w->ReserveColumnSlot(block->column(c)->total_bytes()));
        if (tracer != nullptr && w->grow_count() != grows_before) {
          tracer->AddCompletedSpan("segment_grow", reserve_start,
                                   tracer->ElapsedMicros(),
                                   block->column(c)->total_bytes());
        }
      }

      // Fig 6 inner loop for one row block: copy each column (ONE memcpy —
      // offsets, not pointers, make the buffer position-independent), then
      // delete it from the heap.
      auto copy_block = [w, block, offsets = std::move(offsets), &budget,
                         &footprint, stats, &metrics, heartbeat, &cancelled,
                         &aborted, &options,
                         free_incrementally = options.free_incrementally] {
        // Cancel granularity is one row block: a watchdog kill lands here
        // before the next block's memcpys start.
        if (cancelled()) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        for (size_t c = 0; c < offsets.size(); ++c) {
          const RowBlockColumn* column = block->column(c);
          uint64_t column_bytes = column->total_bytes();
          budget.Acquire(column_bytes);
          w->CopyIntoSlot(offsets[c], column->AsSlice());
          footprint.Add(column_bytes);
          ++stats->columns_copied;
          stats->bytes_copied += column_bytes;
          metrics.columns->Add(1);
          metrics.bytes->Add(column_bytes);
          metrics.column_bytes->Record(column_bytes);
          if (heartbeat != nullptr) heartbeat->AddBytesCopied(column_bytes);
          if (free_incrementally) {
            // Fig 6: delete row block column from heap.
            block->ReleaseColumn(c).reset();
            footprint.Sub(column_bytes);
          }
          budget.Release(column_bytes);
        }
        ++stats->row_blocks_copied;
        metrics.row_blocks->Add(1);
        if (options.after_block_copied) options.after_block_copied();
      };
      if (pool != nullptr) {
        deferred.push_back(std::move(copy_block));
      } else {
        copy_block();
        if (aborted.load(std::memory_order_relaxed)) {
          return Status::Aborted("shutdown cancelled mid-copy");
        }
      }
    }
    for (auto& task : deferred) pool->Submit(std::move(task));

    if (pool == nullptr) {
      // Serial mode: seal and free this table before moving to the next,
      // exactly the Fig 6 ordering.
      stats->segment_grow_count += w->grow_count();
      metrics.segment_grows->Add(w->grow_count());
      SCUBA_RETURN_IF_ERROR(w->Finish(job.num_blocks));
      if (options.free_incrementally) {
        for (uint64_t b = 0; b < job.num_blocks; ++b) {
          // Fig 6: delete row block from heap (columns already freed).
          table->ReleaseRowBlock(b).reset();
        }
        // Fig 6: delete table from heap.
        leaf_map->ReleaseTable(table_names[t]).reset();
      }
      ++stats->tables_copied;
      metrics.tables->Add(1);
      // Unmap now, inside the table span: munmap's page-table teardown is
      // proportional to segment size and must not land after the timeline.
      job.writer.reset();
    }
  }

  if (pool != nullptr) {
    // The drain: layout is fully reserved, workers finish the memcpys,
    // then every segment is sealed.
    obs::PhaseTracer::Span drain_span(tracer, "drain");
    pool->Wait();
    if (cancelled()) {
      // A worker observed the cancel (or the flag flipped while draining):
      // segments are part-copied, so skip sealing — the valid bit stays
      // false and the successor disk-recovers.
      return Status::Aborted("shutdown cancelled mid-copy");
    }
    for (TableCopyJob& job : jobs) {
      stats->segment_grow_count += job.writer->grow_count();
      metrics.segment_grows->Add(job.writer->grow_count());
      SCUBA_RETURN_IF_ERROR(job.writer->Finish(job.num_blocks));
      if (options.free_incrementally) {
        Table* table = leaf_map->GetTable(job.table_name);
        for (uint64_t b = 0; b < job.num_blocks; ++b) {
          table->ReleaseRowBlock(b).reset();
        }
        leaf_map->ReleaseTable(job.table_name).reset();
      }
      ++stats->tables_copied;
      metrics.tables->Add(1);
      // As in serial mode: the size-proportional munmap belongs to the
      // drain, not to destructors running after the timeline closed.
      job.writer.reset();
    }
    // Tear the pool down while the drain span is open: joining the worker
    // threads is part of the drain, not post-shutdown cleanup.
    pool.reset();
  }

  // Naive (non-paper) strategy frees everything only now.
  if (!options.free_incrementally) {
    for (const std::string& name : table_names) {
      Table* table = leaf_map->GetTable(name);
      footprint.Sub(table->MemoryBytes());
      leaf_map->ReleaseTable(name).reset();
    }
  }
  copy_span.End();

  // Fig 6 final step: set valid bit to true. Everything before this point
  // leaves the valid bit false, so a failure or kill forces disk recovery.
  if (cancelled()) {
    return Status::Aborted("shutdown cancelled before set_valid");
  }
  obs::PhaseTracer::Span valid_span(tracer, "set_valid");
  if (heartbeat != nullptr) heartbeat->SetPhase(RestartPhase::kSetValid);
  SCUBA_RETURN_IF_ERROR(meta.SetValid(true));
  valid_span.End();

  // The epilogue — stats recording plus the one-line shutdown log (a
  // formatted write() syscall) — is covered by its own span so the dumped
  // timeline accounts for (nearly) all wall time.
  obs::PhaseTracer::Span report_span(tracer, "report");
  stats->elapsed_micros = watch.ElapsedMicros();
  metrics.elapsed_micros->Record(
      static_cast<uint64_t>(stats->elapsed_micros.load()));
  SCUBA_INFO << "shutdown-to-shm: " << stats->tables_copied << " tables, "
             << stats->bytes_copied << " bytes in "
             << stats->elapsed_micros / 1000 << " ms ("
             << threads << (threads == 1 ? " thread)" : " threads)");
  return Status::OK();
}

}  // namespace scuba
