#include "core/restore.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "shm/leaf_metadata.h"
#include "shm/table_segment.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

// Cumulative process-wide mirror of RestoreStats (scuba.core.restore.*).
struct RestoreMetrics {
  obs::Counter* operations;
  obs::Counter* tables;
  obs::Counter* row_blocks;
  obs::Counter* columns;
  obs::Counter* bytes;
  obs::Histogram* block_bytes;
  obs::Histogram* elapsed_micros;

  static RestoreMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static RestoreMetrics m{
        reg.GetCounter("scuba.core.restore.operations"),
        reg.GetCounter("scuba.core.restore.tables_restored"),
        reg.GetCounter("scuba.core.restore.row_blocks_restored"),
        reg.GetCounter("scuba.core.restore.columns_restored"),
        reg.GetCounter("scuba.core.restore.bytes_copied"),
        reg.GetHistogram("scuba.core.restore.block_bytes"),
        reg.GetHistogram("scuba.core.restore.elapsed_micros")};
    return m;
  }
};

// Leaked /dev/shm segments are invisible to the process that leaked them;
// a destroy failure must at least leave a trace for the operator. The
// warning metric makes the partial failure visible to dashboards, not
// just whoever happens to read stderr.
void DestroyAllSegmentsLogged(LeafMetadata* meta, const char* why) {
  Status s = meta->DestroyAllSegments();
  if (!s.ok()) {
    obs::IncrCounter("scuba.core.restore.shm_scrub_failures");
    SCUBA_WARN << "failed to destroy shm segments (" << why
               << "); /dev/shm segments may be leaked: " << s.ToString();
  }
}

// Copies one column out of a segment into a fresh heap buffer and parses
// it (Fig 7's "allocate memory in heap; copy data from table segment to
// heap" — a single memcpy thanks to offset-only addressing).
StatusOr<std::unique_ptr<RowBlockColumn>> CopyColumnToHeap(
    const uint8_t* src, size_t size, bool verify_checksums) {
  std::unique_ptr<uint8_t[]> heap_buf(new uint8_t[size]);
  std::memcpy(heap_buf.get(), src, size);
  SCUBA_ASSIGN_OR_RETURN(
      RowBlockColumn column,
      RowBlockColumn::FromBuffer(std::move(heap_buf), size,
                                 verify_checksums));
  return std::make_unique<RowBlockColumn>(std::move(column));
}

// Restores one table segment into a fresh Table, draining row blocks from
// the tail and truncating the segment as it goes. Serial Fig 7 path.
Status RestoreTableSegment(const std::string& segment_name,
                           const RestoreOptions& options, LeafMap* leaf_map,
                           RestoreStats* stats, FootprintCounter* footprint) {
  RestoreMetrics& metrics = RestoreMetrics::Get();
  obs::PhaseTracer* tracer = options.tracer;
  SCUBA_ASSIGN_OR_RETURN(TableSegmentReader reader,
                         TableSegmentReader::Open(segment_name));

  SCUBA_ASSIGN_OR_RETURN(
      Table * table,
      leaf_map->CreateTable(reader.table_name(), options.table_limits));

  obs::PhaseTracer::Span table_span(tracer, "table:" + reader.table_name());

  const size_t num_blocks = reader.num_row_blocks();
  // Tail-first drain: blocks are collected newest-first, then adopted in
  // original order.
  std::vector<std::unique_ptr<RowBlock>> reversed;
  reversed.reserve(num_blocks);

  for (size_t rb = num_blocks; rb-- > 0;) {
    const TableSegmentReader::BlockEntry& entry = reader.block(rb);
    const size_t num_columns = entry.columns.size();

    uint64_t block_payload = 0;
    std::vector<std::unique_ptr<RowBlockColumn>> columns(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      Slice src = reader.ColumnSlice(rb, c);
      SCUBA_ASSIGN_OR_RETURN(
          columns[c],
          CopyColumnToHeap(src.data(), src.size(), options.verify_checksums));
      footprint->Add(src.size());
      stats->bytes_copied += src.size();
      ++stats->columns_restored;
      metrics.bytes->Add(src.size());
      metrics.columns->Add(1);
      if (options.heartbeat != nullptr) {
        options.heartbeat->AddBytesCopied(src.size());
      }
      block_payload += src.size();
    }
    table_span.AddBytes(block_payload);
    metrics.block_bytes->Record(block_payload);

    SCUBA_ASSIGN_OR_RETURN(
        std::unique_ptr<RowBlock> block,
        RowBlock::FromParts(entry.meta.header, entry.meta.schema,
                            std::move(columns)));
    reversed.push_back(std::move(block));
    ++stats->row_blocks_restored;
    metrics.row_blocks->Add(1);

    // Fig 7: truncate the table shared memory segment if needed — the
    // drained tail's pages go back to the OS immediately.
    size_t before = reader.segment_bytes();
    int64_t truncate_start = tracer != nullptr ? tracer->ElapsedMicros() : 0;
    SCUBA_RETURN_IF_ERROR(reader.TruncateTo(entry.block_offset));
    if (tracer != nullptr && reader.segment_bytes() != before) {
      tracer->AddCompletedSpan("segment_truncate", truncate_start,
                               tracer->ElapsedMicros(),
                               before - reader.segment_bytes());
    }
    footprint->Sub(before - reader.segment_bytes());
  }

  for (size_t i = reversed.size(); i-- > 0;) {
    table->AdoptRowBlock(std::move(reversed[i]));
  }

  // Fig 7: delete the table shared memory segment.
  SCUBA_RETURN_IF_ERROR(reader.Unlink());
  ++stats->tables_restored;
  metrics.tables->Add(1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parallel restore engine
// ---------------------------------------------------------------------------

// Per-segment state shared by the copy workers.
struct SegmentRestoreJob {
  explicit SegmentRestoreJob(TableSegmentReader r)
      : reader(std::move(r)), base(reader.data()) {}

  TableSegmentReader reader;
  // Stable base of the mapping, captured before any task runs: truncation
  // shrinks the mapping in place, so base + offset stays valid for every
  // not-yet-drained block. Workers read through this instead of the reader
  // so they never race with TruncateTo's internal bookkeeping.
  const uint8_t* base = nullptr;
  Table* table = nullptr;
  std::vector<std::unique_ptr<RowBlock>> blocks;   // slot per block index
  std::vector<uint64_t> payload_bytes;             // per block: column bytes

  // Fig 7's truncate-as-you-drain under concurrency: a block's shm pages
  // (and its byte budget) are released only once every block behind it —
  // toward the segment tail — has also finished, so truncation remains
  // strictly tail-ordered no matter how copies complete.
  std::mutex mutex;
  std::vector<uint8_t> done;
  size_t drained = 0;
};

// Cross-segment control shared by every task.
struct RestoreControl {
  explicit RestoreControl(uint64_t budget_limit) : budget(budget_limit) {}

  ByteBudget budget;
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  Status first_error;

  void RecordError(Status s) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = std::move(s);
    }
    cancelled.store(true, std::memory_order_release);
  }
};

// Copies block `rb` of `job` to the heap, verifying checksums if asked.
// On failure, uncounts every byte it added: the partial columns are freed
// on return, so leaving them counted would overstate the tracker's
// last/peak readings on the fallback path.
Status CopyOneBlock(SegmentRestoreJob* job, size_t rb, bool verify_checksums,
                    RestartHeartbeat* heartbeat, RestoreStats* stats,
                    FootprintCounter* footprint) {
  const TableSegmentReader::BlockEntry& entry = job->reader.block(rb);
  const size_t num_columns = entry.columns.size();

  RestoreMetrics& metrics = RestoreMetrics::Get();
  uint64_t added = 0;
  std::vector<std::unique_ptr<RowBlockColumn>> columns(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    const auto& [offset, size] = entry.columns[c];
    auto column =
        CopyColumnToHeap(job->base + offset, size, verify_checksums);
    if (!column.ok()) {
      footprint->Sub(added);
      return column.status();
    }
    columns[c] = std::move(column).value();
    footprint->Add(size);
    added += size;
    stats->bytes_copied += size;
    ++stats->columns_restored;
    metrics.bytes->Add(size);
    metrics.columns->Add(1);
    if (heartbeat != nullptr) heartbeat->AddBytesCopied(size);
  }
  metrics.block_bytes->Record(added);

  auto block = RowBlock::FromParts(entry.meta.header, entry.meta.schema,
                                   std::move(columns));
  if (!block.ok()) {
    footprint->Sub(added);
    return block.status();
  }
  job->blocks[rb] = std::move(block).value();
  ++stats->row_blocks_restored;
  metrics.row_blocks->Add(1);
  return Status::OK();
}

// Terminal bookkeeping of one block task: mark it done and advance the
// segment's tail watermark, truncating and releasing budget for every
// newly contiguous drained block. Runs even when the task was skipped
// after cancellation, so the budget always drains and the submitting
// thread can never wedge in Acquire.
void FinishBlock(SegmentRestoreJob* job, size_t rb, RestoreControl* ctl,
                 FootprintCounter* footprint) {
  std::lock_guard<std::mutex> lock(job->mutex);
  job->done[rb] = 1;
  const size_t n = job->reader.num_row_blocks();
  while (job->drained < n && job->done[n - 1 - job->drained] != 0) {
    size_t idx = n - 1 - job->drained;
    if (!ctl->cancelled.load(std::memory_order_acquire)) {
      size_t before = job->reader.segment_bytes();
      Status s = job->reader.TruncateTo(job->reader.block(idx).block_offset);
      if (s.ok()) {
        footprint->Sub(before - job->reader.segment_bytes());
      } else {
        ctl->RecordError(std::move(s));
      }
    }
    ctl->budget.Release(job->payload_bytes[idx]);
    ++job->drained;
  }
}

// Restores all table segments with a worker pool: copies fan out across
// row blocks and across segments, budget-gated tail-first.
Status RestoreSegmentsParallel(const std::vector<std::string>& segment_names,
                               const RestoreOptions& options,
                               LeafMap* leaf_map, RestoreStats* stats,
                               FootprintCounter* footprint) {
  const size_t threads = std::max<size_t>(1, options.num_copy_threads);

  // Open every segment up front (mapping adds no physical memory — the
  // pages already live in /dev/shm) to size the auto budget and create
  // the tables.
  std::vector<std::unique_ptr<SegmentRestoreJob>> jobs;
  jobs.reserve(segment_names.size());
  uint64_t max_block_bytes = 0;
  for (const std::string& segment_name : segment_names) {
    SCUBA_ASSIGN_OR_RETURN(TableSegmentReader reader,
                           TableSegmentReader::Open(segment_name));
    auto job = std::make_unique<SegmentRestoreJob>(std::move(reader));
    SCUBA_ASSIGN_OR_RETURN(
        job->table,
        leaf_map->CreateTable(job->reader.table_name(), options.table_limits));
    const size_t n = job->reader.num_row_blocks();
    job->blocks.resize(n);
    job->done.assign(n, 0);
    job->payload_bytes.resize(n);
    for (size_t rb = 0; rb < n; ++rb) {
      uint64_t payload = 0;
      for (const auto& [offset, size] : job->reader.block(rb).columns) {
        (void)offset;
        payload += size;
      }
      job->payload_bytes[rb] = payload;
      max_block_bytes = std::max(max_block_bytes, payload);
    }
    jobs.push_back(std::move(job));
  }

  uint64_t budget_limit = options.max_in_flight_bytes != 0
                              ? options.max_in_flight_bytes
                              : threads * max_block_bytes;
  RestoreControl ctl(budget_limit);
  const bool verify = options.verify_checksums;
  RestartHeartbeat* heartbeat = options.heartbeat;

  {
    // Scoped so the pool drains and joins before jobs/ctl are destroyed,
    // including on the cancellation path.
    ThreadPool pool(threads);
    for (auto& job_ptr : jobs) {
      SegmentRestoreJob* job = job_ptr.get();
      const size_t n = job->reader.num_row_blocks();
      // Tail-first submission + tail-first budget acquisition: the block
      // at the truncation watermark always holds budget already, so
      // workers cluster near the drain frontier and the footprint bound
      // follows from the budget alone.
      for (size_t rb = n; rb-- > 0;) {
        if (ctl.cancelled.load(std::memory_order_acquire)) break;
        ctl.budget.Acquire(job->payload_bytes[rb]);
        pool.Submit([job, rb, &ctl, stats, footprint, verify, heartbeat] {
          if (!ctl.cancelled.load(std::memory_order_acquire)) {
            Status s =
                CopyOneBlock(job, rb, verify, heartbeat, stats, footprint);
            if (!s.ok()) ctl.RecordError(std::move(s));
          }
          FinishBlock(job, rb, &ctl, footprint);
        });
      }
      if (ctl.cancelled.load(std::memory_order_acquire)) break;
    }
    pool.Wait();
  }

  if (ctl.cancelled.load(std::memory_order_acquire)) {
    // The blocks copied so far are dropped with `jobs` on return; uncount
    // them so the tracker matches the heap (failed blocks' partial columns
    // were already uncounted by CopyOneBlock itself).
    for (const auto& job_ptr : jobs) {
      for (size_t rb = 0; rb < job_ptr->blocks.size(); ++rb) {
        if (job_ptr->blocks[rb] != nullptr) {
          footprint->Sub(job_ptr->payload_bytes[rb]);
        }
      }
    }
    std::lock_guard<std::mutex> lock(ctl.error_mutex);
    return ctl.first_error.ok()
               ? Status::Internal("parallel restore cancelled")
               : ctl.first_error;
  }

  // All copies landed; adopt in original block order and delete the
  // segments (Fig 7).
  RestoreMetrics& metrics = RestoreMetrics::Get();
  for (auto& job_ptr : jobs) {
    SegmentRestoreJob* job = job_ptr.get();
    for (auto& block : job->blocks) {
      job->table->AdoptRowBlock(std::move(block));
    }
    SCUBA_RETURN_IF_ERROR(job->reader.Unlink());
    ++stats->tables_restored;
    metrics.tables->Add(1);
  }
  return Status::OK();
}

}  // namespace

Status RestoreFromShm(LeafMap* leaf_map, const RestoreOptions& options,
                      RestoreStats* stats, FootprintTracker* tracker) {
  Stopwatch watch;
  obs::PhaseTracer* tracer = options.tracer;
  // Opens immediately so the existence probe and first-call metric-handle
  // initialization do not show up as a hole at the front of the timeline.
  // RAII ends it on the early-return paths.
  obs::PhaseTracer::Span open_span(tracer, "open_metadata");

  if (!LeafMetadata::Exists(options.namespace_prefix, options.leaf_id)) {
    return Status::NotFound("no shared memory metadata for leaf " +
                            std::to_string(options.leaf_id));
  }
  RestoreMetrics::Get().operations->Add(1);

  auto meta_or = LeafMetadata::Open(options.namespace_prefix, options.leaf_id);
  if (!meta_or.ok()) {
    // Unreadable metadata: scrub any segments we can find by prefix so the
    // broken state does not linger, then send the caller to disk.
    ShmSegment::RemoveAll("/" + options.namespace_prefix + "_leaf_" +
                          std::to_string(options.leaf_id) + "_");
    return Status::FailedPrecondition("leaf metadata unreadable: " +
                                      meta_or.status().ToString());
  }
  LeafMetadata meta = std::move(meta_or).value();

  // Fig 7: if valid bit is false -> delete segments, recover from disk.
  if (!meta.valid()) {
    DestroyAllSegmentsLogged(&meta, "valid bit false");
    return Status::FailedPrecondition(
        "shared memory valid bit is false (crash or interrupted restore)");
  }
  // Layout version mismatch: the new binary cannot interpret the segments.
  if (meta.layout_version() != kShmLayoutVersion) {
    DestroyAllSegmentsLogged(&meta, "layout version mismatch");
    return Status::FailedPrecondition(
        "shared memory layout version mismatch: segment v" +
        std::to_string(meta.layout_version()) + " vs binary v" +
        std::to_string(kShmLayoutVersion));
  }

  // Fig 7: set valid bit to false — if restore is interrupted from here
  // on, the next restart will take the disk path.
  SCUBA_RETURN_IF_ERROR(meta.SetValid(false));
  open_span.End();

  // The copy-in phase: every segment's blocks memcpy'd back to the heap,
  // truncating shm as the drain advances.
  obs::PhaseTracer::Span copy_span(tracer, "copy_in");

  uint64_t shm_bytes = TotalShmBytes("/" + options.namespace_prefix +
                                     "_leaf_" +
                                     std::to_string(options.leaf_id) + "_");
  FootprintCounter footprint(shm_bytes, tracker);
  if (options.heartbeat != nullptr) {
    options.heartbeat->SetBytesTotal(shm_bytes);
    options.heartbeat->SetPhase(RestartPhase::kCopyIn);
  }

  Status restore_status;
  if (options.num_copy_threads > 1 && !meta.table_segment_names().empty()) {
    restore_status = RestoreSegmentsParallel(meta.table_segment_names(),
                                             options, leaf_map, stats,
                                             &footprint);
  } else {
    for (const std::string& segment_name : meta.table_segment_names()) {
      restore_status = RestoreTableSegment(segment_name, options, leaf_map,
                                           stats, &footprint);
      if (!restore_status.ok()) break;
    }
  }
  if (!restore_status.ok()) {
    SCUBA_WARN << "memory recovery failed: " << restore_status.ToString()
               << "; falling back to disk";
    DestroyAllSegmentsLogged(&meta, "restore failed mid-way");
    leaf_map->Clear();
    return Status::Corruption("memory recovery failed: " +
                              restore_status.ToString());
  }

  copy_span.AddBytes(stats->bytes_copied.load());
  copy_span.End();

  // Fig 7: delete the metadata shared memory segment.
  obs::PhaseTracer::Span destroy_span(tracer, "destroy_metadata");
  SCUBA_RETURN_IF_ERROR(meta.Destroy());
  destroy_span.End();

  // Epilogue span: stats recording plus the restore log line, so the
  // timeline covers (nearly) all wall time.
  obs::PhaseTracer::Span report_span(tracer, "report");
  stats->elapsed_micros = watch.ElapsedMicros();
  RestoreMetrics::Get().elapsed_micros->Record(
      static_cast<uint64_t>(stats->elapsed_micros.load()));
  SCUBA_INFO << "restore-from-shm: " << stats->tables_restored << " tables, "
             << stats->bytes_copied << " bytes in "
             << stats->elapsed_micros / 1000 << " ms ("
             << std::max<size_t>(1, options.num_copy_threads)
             << (options.num_copy_threads > 1 ? " threads)" : " thread)");
  return Status::OK();
}

}  // namespace scuba
