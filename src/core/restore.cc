#include "core/restore.h"

#include <cstring>
#include <vector>

#include "shm/leaf_metadata.h"
#include "shm/table_segment.h"
#include "util/clock.h"
#include "util/logging.h"

namespace scuba {
namespace {

// Restores one table segment into a fresh Table, draining row blocks from
// the tail and truncating the segment as it goes.
Status RestoreTableSegment(const std::string& segment_name,
                           const RestoreOptions& options, LeafMap* leaf_map,
                           RestoreStats* stats, uint64_t* heap_bytes,
                           uint64_t* shm_bytes, FootprintTracker* tracker) {
  SCUBA_ASSIGN_OR_RETURN(TableSegmentReader reader,
                         TableSegmentReader::Open(segment_name));
  auto observe = [&]() {
    if (tracker != nullptr) tracker->Observe(*heap_bytes + *shm_bytes);
  };

  SCUBA_ASSIGN_OR_RETURN(
      Table * table,
      leaf_map->CreateTable(reader.table_name(), options.table_limits));

  const size_t num_blocks = reader.num_row_blocks();
  // Tail-first drain: blocks are collected newest-first, then adopted in
  // original order.
  std::vector<std::unique_ptr<RowBlock>> reversed;
  reversed.reserve(num_blocks);

  for (size_t rb = num_blocks; rb-- > 0;) {
    const TableSegmentReader::BlockEntry& entry = reader.block(rb);
    const size_t num_columns = entry.columns.size();

    std::vector<std::unique_ptr<RowBlockColumn>> columns(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      Slice src = reader.ColumnSlice(rb, c);
      // Fig 7: allocate memory in heap; copy data from table segment to
      // heap — again a single memcpy thanks to offset-only addressing.
      std::unique_ptr<uint8_t[]> heap_buf(new uint8_t[src.size()]);
      std::memcpy(heap_buf.get(), src.data(), src.size());

      SCUBA_ASSIGN_OR_RETURN(
          RowBlockColumn column,
          RowBlockColumn::FromBuffer(std::move(heap_buf), src.size(),
                                     options.verify_checksums));
      columns[c] = std::make_unique<RowBlockColumn>(std::move(column));
      *heap_bytes += src.size();
      stats->bytes_copied += src.size();
      ++stats->columns_restored;
      observe();
    }

    SCUBA_ASSIGN_OR_RETURN(
        std::unique_ptr<RowBlock> block,
        RowBlock::FromParts(entry.meta.header, entry.meta.schema,
                            std::move(columns)));
    reversed.push_back(std::move(block));
    ++stats->row_blocks_restored;

    // Fig 7: truncate the table shared memory segment if needed — the
    // drained tail's pages go back to the OS immediately.
    size_t before = reader.segment_bytes();
    SCUBA_RETURN_IF_ERROR(reader.TruncateTo(entry.block_offset));
    *shm_bytes -= before - reader.segment_bytes();
    observe();
  }

  for (size_t i = reversed.size(); i-- > 0;) {
    table->AdoptRowBlock(std::move(reversed[i]));
  }

  // Fig 7: delete the table shared memory segment.
  SCUBA_RETURN_IF_ERROR(reader.Unlink());
  ++stats->tables_restored;
  return Status::OK();
}

}  // namespace

Status RestoreFromShm(LeafMap* leaf_map, const RestoreOptions& options,
                      RestoreStats* stats, FootprintTracker* tracker) {
  Stopwatch watch;

  if (!LeafMetadata::Exists(options.namespace_prefix, options.leaf_id)) {
    return Status::NotFound("no shared memory metadata for leaf " +
                            std::to_string(options.leaf_id));
  }

  auto meta_or = LeafMetadata::Open(options.namespace_prefix, options.leaf_id);
  if (!meta_or.ok()) {
    // Unreadable metadata: scrub any segments we can find by prefix so the
    // broken state does not linger, then send the caller to disk.
    ShmSegment::RemoveAll("/" + options.namespace_prefix + "_leaf_" +
                          std::to_string(options.leaf_id) + "_");
    return Status::FailedPrecondition("leaf metadata unreadable: " +
                                      meta_or.status().ToString());
  }
  LeafMetadata meta = std::move(meta_or).value();

  // Fig 7: if valid bit is false -> delete segments, recover from disk.
  if (!meta.valid()) {
    meta.DestroyAllSegments().ok();
    return Status::FailedPrecondition(
        "shared memory valid bit is false (crash or interrupted restore)");
  }
  // Layout version mismatch: the new binary cannot interpret the segments.
  if (meta.layout_version() != kShmLayoutVersion) {
    meta.DestroyAllSegments().ok();
    return Status::FailedPrecondition(
        "shared memory layout version mismatch: segment v" +
        std::to_string(meta.layout_version()) + " vs binary v" +
        std::to_string(kShmLayoutVersion));
  }

  // Fig 7: set valid bit to false — if restore is interrupted from here
  // on, the next restart will take the disk path.
  SCUBA_RETURN_IF_ERROR(meta.SetValid(false));

  uint64_t heap_bytes = 0;
  uint64_t shm_bytes =
      TotalShmBytes("/" + options.namespace_prefix + "_leaf_" +
                    std::to_string(options.leaf_id) + "_");
  if (tracker != nullptr) tracker->Observe(heap_bytes + shm_bytes);

  for (const std::string& segment_name : meta.table_segment_names()) {
    Status s = RestoreTableSegment(segment_name, options, leaf_map, stats,
                                   &heap_bytes, &shm_bytes, tracker);
    if (!s.ok()) {
      SCUBA_WARN << "memory recovery failed on segment " << segment_name
                 << ": " << s.ToString() << "; falling back to disk";
      meta.DestroyAllSegments().ok();
      leaf_map->Clear();
      return Status::Corruption("memory recovery failed: " + s.ToString());
    }
  }

  // Fig 7: delete the metadata shared memory segment.
  SCUBA_RETURN_IF_ERROR(meta.Destroy());

  stats->elapsed_micros = watch.ElapsedMicros();
  SCUBA_INFO << "restore-from-shm: " << stats->tables_restored << " tables, "
             << stats->bytes_copied << " bytes in "
             << stats->elapsed_micros / 1000 << " ms";
  return Status::OK();
}

}  // namespace scuba
