#include "core/state_machine.h"

#include <string>

namespace scuba {

std::string_view LeafStateName(LeafState state) {
  switch (state) {
    case LeafState::kInit:
      return "INIT";
    case LeafState::kMemoryRecovery:
      return "MEMORY_RECOVERY";
    case LeafState::kDiskRecovery:
      return "DISK_RECOVERY";
    case LeafState::kAlive:
      return "ALIVE";
    case LeafState::kCopyToShm:
      return "COPY_TO_SHM";
    case LeafState::kExit:
      return "EXIT";
  }
  return "UNKNOWN";
}

std::string_view TableStateName(TableState state) {
  switch (state) {
    case TableState::kInit:
      return "INIT";
    case TableState::kMemoryRecovery:
      return "MEMORY_RECOVERY";
    case TableState::kDiskRecovery:
      return "DISK_RECOVERY";
    case TableState::kAlive:
      return "ALIVE";
    case TableState::kPrepare:
      return "PREPARE";
    case TableState::kCopyToShm:
      return "COPY_TO_SHM";
    case TableState::kDone:
      return "DONE";
  }
  return "UNKNOWN";
}

bool LeafStateMachine::IsAllowed(LeafState from, LeafState to) {
  switch (from) {
    case LeafState::kInit:
      return to == LeafState::kMemoryRecovery ||
             to == LeafState::kDiskRecovery || to == LeafState::kAlive;
    case LeafState::kMemoryRecovery:
      // Exception during memory recovery falls back to disk (Fig 5b).
      return to == LeafState::kAlive || to == LeafState::kDiskRecovery;
    case LeafState::kDiskRecovery:
      return to == LeafState::kAlive;
    case LeafState::kAlive:
      return to == LeafState::kCopyToShm;
    case LeafState::kCopyToShm:
      return to == LeafState::kExit;
    case LeafState::kExit:
      return false;
  }
  return false;
}

Status LeafStateMachine::Transition(LeafState next) {
  if (!IsAllowed(state_, next)) {
    return Status::FailedPrecondition(
        std::string("leaf state: illegal transition ") +
        std::string(LeafStateName(state_)) + " -> " +
        std::string(LeafStateName(next)));
  }
  state_ = next;
  return Status::OK();
}

bool TableStateMachine::IsAllowed(TableState from, TableState to) {
  switch (from) {
    case TableState::kInit:
      return to == TableState::kMemoryRecovery ||
             to == TableState::kDiskRecovery || to == TableState::kAlive;
    case TableState::kMemoryRecovery:
      return to == TableState::kAlive || to == TableState::kDiskRecovery;
    case TableState::kDiskRecovery:
      return to == TableState::kAlive;
    case TableState::kAlive:
      return to == TableState::kPrepare;
    case TableState::kPrepare:
      return to == TableState::kCopyToShm;
    case TableState::kCopyToShm:
      return to == TableState::kDone;
    case TableState::kDone:
      return false;
  }
  return false;
}

Status TableStateMachine::Transition(TableState next) {
  if (!IsAllowed(state_, next)) {
    return Status::FailedPrecondition(
        std::string("table state: illegal transition ") +
        std::string(TableStateName(state_)) + " -> " +
        std::string(TableStateName(next)));
  }
  state_ = next;
  return Status::OK();
}

}  // namespace scuba
