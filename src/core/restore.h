#ifndef SCUBA_CORE_RESTORE_H_
#define SCUBA_CORE_RESTORE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "columnar/leaf_map.h"
#include "core/footprint.h"
#include "obs/trace.h"
#include "shm/restart_heartbeat.h"
#include "util/status.h"

namespace scuba {

/// Options for the restore-from-shared-memory path (Fig 7).
struct RestoreOptions {
  std::string namespace_prefix = "scuba";
  uint32_t leaf_id = 0;
  /// Verify each column's CRC32C while adopting it (cheap insurance; the
  /// paper trusts clean-shutdown state, but the checksum catches torn
  /// segments and fat-fingered segment names).
  bool verify_checksums = true;
  /// Retention limits applied to restored tables.
  TableLimits table_limits;
  /// Copy workers for the shm->heap memcpy + checksum fan-out; work is
  /// spread across row blocks and across table segments. 1 keeps the
  /// paper's serial Fig 7 loop.
  size_t num_copy_threads = 1;
  /// Cap on bytes copied to heap whose shm pages have not yet been
  /// truncated away. Truncation is tail-ordered per segment, so the unit
  /// of release is a row block. 0 = auto: num_copy_threads x the largest
  /// row block payload.
  uint64_t max_in_flight_bytes = 0;
  /// Optional phase tracer: records the Fig 7 timeline as back-to-back
  /// root spans (open_metadata, copy_in, destroy_metadata); the serial
  /// path adds per-table and segment_truncate child spans. nullptr =
  /// tracing off.
  obs::PhaseTracer* tracer = nullptr;
  /// Optional restart heartbeat: the restore publishes bytes_total, the
  /// copy_in phase, and per-block byte progress through it so the recovery
  /// is observable from OUTSIDE the process. nullptr = off.
  RestartHeartbeat* heartbeat = nullptr;
};

/// Counters from one restore. Fields are atomics because the parallel
/// copy engine updates them from every worker; copying the struct takes a
/// snapshot.
///
/// This is the PER-OPERATION view; the same increments also land in the
/// process-wide MetricsRegistry under scuba.core.restore.* (cumulative
/// across operations, exported by MetricsRegistry::ToJson).
struct RestoreStats {
  std::atomic<uint64_t> tables_restored{0};
  std::atomic<uint64_t> row_blocks_restored{0};
  std::atomic<uint64_t> columns_restored{0};
  std::atomic<uint64_t> bytes_copied{0};
  std::atomic<int64_t> elapsed_micros{0};

  RestoreStats() = default;
  RestoreStats(const RestoreStats& other) { *this = other; }
  RestoreStats& operator=(const RestoreStats& other) {
    tables_restored = other.tables_restored.load();
    row_blocks_restored = other.row_blocks_restored.load();
    columns_restored = other.columns_restored.load();
    bytes_copied = other.bytes_copied.load();
    elapsed_micros = other.elapsed_micros.load();
    return *this;
  }
};

/// Restores a leaf's tables from shared memory into `leaf_map`, following
/// Fig 7:
///
///   if valid bit is false
///     delete shared memory segments; recover from disk    (caller's job)
///   set valid bit to false
///   for each table shared memory segment
///     for each row block
///       for each row block column
///         allocate memory in heap; copy data from table segment to heap
///       truncate the table shared memory segment if needed
///     delete the table shared memory segment
///   delete the metadata shared memory segment
///
/// Returns:
///  - NotFound            — no metadata segment (first boot / after crash
///                          cleanup); caller recovers from disk.
///  - FailedPrecondition  — valid bit false or layout version mismatch;
///                          segments are deleted; caller recovers from disk.
///  - Corruption          — segment contents failed validation mid-restore;
///                          all segments are deleted and `leaf_map` is
///                          cleared; caller recovers from disk.
///
/// If THIS code path is interrupted (process dies mid-restore), the valid
/// bit is already false, so the next restart goes to disk (Fig 7 caption).
///
/// Row blocks are drained tail-first so the segment can be truncated as it
/// empties, mirroring the shutdown path's flat memory footprint (§4.4);
/// block order within each table is preserved in the rebuilt state.
///
/// With options.num_copy_threads > 1 block copies (and checksum verifies)
/// fan out over a worker pool, across row blocks and across table
/// segments. The valid-bit / truncate-as-you-drain protocol is preserved:
/// a ByteBudget is acquired tail-first before each block is dispatched,
/// and each segment is truncated only up to the contiguous run of
/// completed blocks at its tail (a per-segment watermark), releasing that
/// run's budget. Segment truncation shrinks the mapping in place, so
/// workers copying earlier blocks never see the base address move.
Status RestoreFromShm(LeafMap* leaf_map, const RestoreOptions& options,
                      RestoreStats* stats, FootprintTracker* tracker = nullptr);

}  // namespace scuba

#endif  // SCUBA_CORE_RESTORE_H_
