#ifndef SCUBA_CORE_RESTORE_H_
#define SCUBA_CORE_RESTORE_H_

#include <cstdint>
#include <string>

#include "columnar/leaf_map.h"
#include "core/footprint.h"
#include "util/status.h"

namespace scuba {

/// Options for the restore-from-shared-memory path (Fig 7).
struct RestoreOptions {
  std::string namespace_prefix = "scuba";
  uint32_t leaf_id = 0;
  /// Verify each column's CRC32C while adopting it (cheap insurance; the
  /// paper trusts clean-shutdown state, but the checksum catches torn
  /// segments and fat-fingered segment names).
  bool verify_checksums = true;
  /// Retention limits applied to restored tables.
  TableLimits table_limits;
};

/// Counters from one restore.
struct RestoreStats {
  uint64_t tables_restored = 0;
  uint64_t row_blocks_restored = 0;
  uint64_t columns_restored = 0;
  uint64_t bytes_copied = 0;
  int64_t elapsed_micros = 0;
};

/// Restores a leaf's tables from shared memory into `leaf_map`, following
/// Fig 7:
///
///   if valid bit is false
///     delete shared memory segments; recover from disk    (caller's job)
///   set valid bit to false
///   for each table shared memory segment
///     for each row block
///       for each row block column
///         allocate memory in heap; copy data from table segment to heap
///       truncate the table shared memory segment if needed
///     delete the table shared memory segment
///   delete the metadata shared memory segment
///
/// Returns:
///  - NotFound            — no metadata segment (first boot / after crash
///                          cleanup); caller recovers from disk.
///  - FailedPrecondition  — valid bit false or layout version mismatch;
///                          segments are deleted; caller recovers from disk.
///  - Corruption          — segment contents failed validation mid-restore;
///                          all segments are deleted and `leaf_map` is
///                          cleared; caller recovers from disk.
///
/// If THIS code path is interrupted (process dies mid-restore), the valid
/// bit is already false, so the next restart goes to disk (Fig 7 caption).
///
/// Row blocks are drained tail-first so the segment can be truncated as it
/// empties, mirroring the shutdown path's flat memory footprint (§4.4);
/// block order within each table is preserved in the rebuilt state.
Status RestoreFromShm(LeafMap* leaf_map, const RestoreOptions& options,
                      RestoreStats* stats, FootprintTracker* tracker = nullptr);

}  // namespace scuba

#endif  // SCUBA_CORE_RESTORE_H_
