#include "cluster/dashboard.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

DashboardSample Sample(double t, double old_f, double roll_f, double new_f) {
  DashboardSample s;
  s.time_seconds = t;
  s.fraction_old = old_f;
  s.fraction_restarting = roll_f;
  s.fraction_new = new_f;
  return s;
}

size_t CountChar(const std::string& s, char c) {
  size_t n = 0;
  for (char x : s) {
    if (x == c) ++n;
  }
  return n;
}

TEST(DashboardTest, BarProportionsMatchFractions) {
  std::string line =
      Dashboard::RenderSample(Sample(0, 0.5, 0.25, 0.25), /*bar_width=*/48);
  // The labels also contain 'o'/'n'; count inside the brackets only.
  size_t open = line.find('[');
  size_t close = line.find(']');
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  std::string bar = line.substr(open + 1, close - open - 1);
  ASSERT_EQ(bar.size(), 48u);
  EXPECT_EQ(CountChar(bar, 'o'), 24u);
  EXPECT_EQ(CountChar(bar, '#'), 12u);
  EXPECT_EQ(CountChar(bar, 'n'), 12u);
}

TEST(DashboardTest, AllOldAndAllNewBars) {
  std::string all_old = Dashboard::RenderSample(Sample(0, 1, 0, 0), 10);
  size_t open = all_old.find('[');
  EXPECT_EQ(all_old.substr(open + 1, 10), "oooooooooo");

  std::string all_new = Dashboard::RenderSample(Sample(0, 0, 0, 1), 10);
  open = all_new.find('[');
  EXPECT_EQ(all_new.substr(open + 1, 10), "nnnnnnnnnn");
}

TEST(DashboardTest, PercentagesAppear) {
  std::string line = Dashboard::RenderSample(Sample(120, 0.98, 0.02, 0.0));
  EXPECT_NE(line.find("98.0%"), std::string::npos);
  EXPECT_NE(line.find("2.0%"), std::string::npos);
  EXPECT_NE(line.find("t="), std::string::npos);
}

TEST(DashboardTest, RenderSubsamplesLongTimelines) {
  std::vector<DashboardSample> timeline;
  for (int i = 0; i < 200; ++i) {
    timeline.push_back(Sample(i, 1.0 - i / 200.0, 0.0, i / 200.0));
  }
  std::string out = Dashboard::Render(timeline, /*max_rows=*/10);
  size_t lines = CountChar(out, '\n');
  EXPECT_LE(lines, 12u);  // max_rows plus possibly the final sample
  EXPECT_GE(lines, 8u);
}

TEST(DashboardTest, EmptyTimelineRendersEmpty) {
  EXPECT_TRUE(Dashboard::Render({}).empty());
}

TEST(DashboardTest, ShortTimelineRendersEveryRow) {
  std::vector<DashboardSample> timeline = {Sample(0, 1, 0, 0),
                                           Sample(10, 0.5, 0.1, 0.4),
                                           Sample(20, 0, 0, 1)};
  std::string out = Dashboard::Render(timeline, 16);
  EXPECT_EQ(CountChar(out, '\n'), 3u);
}

TEST(DashboardTest, QueryPanelRendersCountsAndSlowest) {
  Dashboard::QueryPanelStats stats;
  stats.queries = 1234;
  stats.qps = 41.1;
  stats.p50_micros = 800;
  stats.p95_micros = 3100;
  stats.p99_micros = 9400;
  stats.slowest_query_id = 87;
  stats.slowest_latency_micros = 12345;
  stats.slowest_fingerprint = "events|service==?|count";
  std::string out = Dashboard::RenderQueryPanel(stats);
  EXPECT_NE(out.find("queries: 1234 (41.1/s)"), std::string::npos) << out;
  EXPECT_NE(out.find("p50 0.8 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("p95 3.1 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("p99 9.4 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("slowest: query 87  12.3 ms  events|service==?|count"),
            std::string::npos)
      << out;
}

TEST(DashboardTest, QueryPanelRendersNoneWithoutSlowest) {
  Dashboard::QueryPanelStats stats;
  std::string out = Dashboard::RenderQueryPanel(stats);
  EXPECT_NE(out.find("slowest: (none)"), std::string::npos) << out;
}

TEST(DashboardTest, CollectQueryPanelSamplesAggregator) {
  Aggregator aggregator;  // no leaves: queries succeed with empty results
  Query q;
  q.table = "events";
  q.aggregates = {Count()};
  ASSERT_TRUE(aggregator.Execute(q).ok());
  ASSERT_TRUE(aggregator.Execute(q).ok());

  Dashboard::QueryPanelStats stats =
      Dashboard::CollectQueryPanel(aggregator, /*window_seconds=*/2.0);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_DOUBLE_EQ(stats.qps, 1.0);
  EXPECT_GT(stats.slowest_query_id, 0u);
  EXPECT_GE(stats.slowest_latency_micros, 0);
  EXPECT_FALSE(stats.slowest_fingerprint.empty());
  // The global latency histogram saw at least these two queries.
  EXPECT_GE(stats.p99_micros, 0.0);
  std::string out = Dashboard::RenderQueryPanel(stats);
  EXPECT_NE(out.find("queries: 2 (1.0/s)"), std::string::npos) << out;
}

}  // namespace
}  // namespace scuba
