#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "cluster/dashboard.h"
#include "ingest/row_generator.h"
#include "obs/stats_exporter.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;
using testing_util::TempDir;

class HeartbeatRolloverTest : public ::testing::Test {
 protected:
  HeartbeatRolloverTest() : ns_("hbroll"), dir_("hbroll") {}

  ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.num_machines = 1;
    config.leaves_per_machine = 2;
    config.namespace_prefix = ns_.prefix();
    config.backup_root = dir_.path() + "/backups";
    config.self_stats_enabled = true;
    config.self_stats_period_millis = 3600 * 1000;  // explicit cycles only
    return config;
  }

  void Fill(Cluster* cluster, size_t rows = 4000) {
    RowGenerator gen;
    cluster->log().AppendBatch("requests", gen.NextBatch(rows));
    cluster->AddTailer("requests", /*batch_rows=*/256);
    auto pumped = cluster->PumpTailers(true);
    ASSERT_TRUE(pumped.ok());
    ASSERT_EQ(*pumped, rows);
  }

  static Query WorkloadQuery() {
    Query q;
    q.table = "requests";
    q.aggregates = {Count()};
    return q;
  }

  static Query RestartRowsQuery() {
    Query q;
    q.table = obs::kStatsTableName;
    q.predicates.push_back(
        {"kind", CompareOp::kEq, Value(std::string("restart"))});
    q.aggregates = {Count()};
    return q;
  }

  static double CountOf(Aggregator& agg, const Query& q) {
    auto result = agg.Execute(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return -1;
    auto rows = result->Finalize({Count()});
    return rows.empty() ? 0.0 : rows[0].aggregates[0];
  }

  ShmNamespace ns_;
  TempDir dir_;
};

// The monitor observes live restart phases through the heartbeat block and
// records them (with progress bytes) into the rollover timeline, which the
// dashboard renders.
TEST_F(HeartbeatRolloverTest, MonitoredRolloverRecordsLivePhases) {
  Cluster cluster(MakeConfig());
  ASSERT_TRUE(cluster.Start().ok());
  Fill(&cluster);

  // Slow each row-block copy enough for the 5 ms poll to observe the
  // copy_out phase in flight.
  for (size_t i = 0; i < cluster.num_leaves(); ++i) {
    cluster.leaf(i)->SetShutdownBlockHookForTest(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(40)); });
  }

  RealRolloverOptions options;
  options.batch_fraction = 0.5;  // one leaf per batch
  options.heartbeat_poll_millis = 5;
  options.heartbeat_stall_millis = 10'000;  // far above the injected delay
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaves_rolled, 2u);
  EXPECT_EQ(report->shm_recoveries, 2u);
  EXPECT_EQ(report->heartbeat_stall_cancels, 0u);
  // Workload data is intact (self-stats rows grow during the rollover, so
  // raw row totals are not comparable).
  EXPECT_EQ(CountOf(cluster.aggregator(), WorkloadQuery()), 4000.0);

  bool saw_live_phase = false;
  for (const DashboardSample& s : report->timeline) {
    if (s.phase == "copy_out" && s.bytes_total > 0) {
      saw_live_phase = true;
      EXPECT_LE(s.bytes_copied, s.bytes_total);
      // The dashboard renders the heartbeat progress for such samples.
      std::string line = Dashboard::RenderDetailedSample(s);
      EXPECT_NE(line.find("copy_out"), std::string::npos);
      EXPECT_NE(line.find('%'), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_live_phase)
      << "no copy_out sample with progress bytes in the timeline";
  cluster.Cleanup();
}

// Fault injection for the phase-aware watchdog: a frozen copy loop stops
// advancing the heartbeat; the monitor cancels the shutdown and the
// successor recovers from disk. No data is lost.
TEST_F(HeartbeatRolloverTest, StalledShutdownIsCancelledAndFallsBackToDisk) {
  Cluster cluster(MakeConfig());
  ASSERT_TRUE(cluster.Start().ok());
  Fill(&cluster);

  // Freeze far longer than the stall threshold on every block copy.
  for (size_t i = 0; i < cluster.num_leaves(); ++i) {
    cluster.leaf(i)->SetShutdownBlockHookForTest(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(600)); });
  }

  RealRolloverOptions options;
  options.batch_fraction = 0.5;
  options.heartbeat_poll_millis = 10;
  options.heartbeat_stall_millis = 120;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaves_rolled, 2u);
  EXPECT_GE(report->heartbeat_stall_cancels, 1u);
  EXPECT_GE(report->watchdog_kills, 1u);
  EXPECT_GE(report->disk_recoveries, 1u);
  // Disk backups make the fallback lossless for workload data.
  EXPECT_EQ(CountOf(cluster.aggregator(), WorkloadQuery()), 4000.0);
  cluster.Cleanup();
}

// Tentpole acceptance: each leaf's __scuba_stats restart history is
// queryable through the aggregator BEFORE the rollover and still there —
// now spanning two process generations — AFTER it, because the system
// table rides the shm handoff.
TEST_F(HeartbeatRolloverTest, RestartHistorySurvivesRolloverViaAggregator) {
  Cluster cluster(MakeConfig());
  ASSERT_TRUE(cluster.Start().ok());
  Fill(&cluster);

  double before = CountOf(cluster.aggregator(), RestartRowsQuery());
  // One "alive" restart row per leaf from generation 1.
  EXPECT_GE(before, 2.0);

  RealRolloverOptions options;
  options.batch_fraction = 0.5;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->shm_recoveries, 2u);

  double after = CountOf(cluster.aggregator(), RestartRowsQuery());
  // Generation 1's rows survived AND generation 2 added its own
  // ("prepare" at shutdown + "alive" after recovery).
  EXPECT_GE(after, before + 2.0);
  cluster.Cleanup();
}

}  // namespace
}  // namespace scuba
