#include "cluster/rollover_sim.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

RolloverSimConfig PaperScaleConfig(RecoveryPath path) {
  RolloverSimConfig config;
  config.num_machines = 100;
  config.leaves_per_machine = 8;
  config.bytes_per_leaf = 15ull << 30;
  config.batch_fraction = 0.02;
  config.path = path;
  return config;
}

TEST(RolloverSimTest, ShmRolloverUnderAnHourAtPaperScale) {
  RolloverReport report =
      SimulateRollover(PaperScaleConfig(RecoveryPath::kSharedMemory));
  // Paper: "The entire cluster upgrade time is now under an hour" (§1)
  // including ~40 min of deployment overhead (§6).
  EXPECT_LT(report.total_seconds, 3600.0 * 1.5);
  EXPECT_GT(report.total_seconds, 600.0);  // not absurdly fast either
}

TEST(RolloverSimTest, DiskRolloverTakesHalfADayAtPaperScale) {
  RolloverReport report =
      SimulateRollover(PaperScaleConfig(RecoveryPath::kDisk));
  // Paper: "about 12 hours to restart the entire Scuba cluster" (§1).
  EXPECT_GT(report.total_seconds, 8.0 * 3600);
  EXPECT_LT(report.total_seconds, 20.0 * 3600);
}

TEST(RolloverSimTest, ShmBeatsDiskByAtLeastEightX) {
  double shm = SimulateRollover(PaperScaleConfig(RecoveryPath::kSharedMemory))
                   .total_seconds;
  double disk =
      SimulateRollover(PaperScaleConfig(RecoveryPath::kDisk)).total_seconds;
  EXPECT_GT(disk / shm, 8.0);
}

TEST(RolloverSimTest, AvailabilityNeverBelowBatchFraction) {
  RolloverReport report =
      SimulateRollover(PaperScaleConfig(RecoveryPath::kSharedMemory));
  // 2% batches -> at least 98% of data online at all times (§4.5, Fig 8).
  EXPECT_GE(report.min_data_availability, 0.98 - 1e-9);
  EXPECT_GE(report.mean_data_availability, 0.98);
  EXPECT_LE(report.mean_data_availability, 1.0);
}

TEST(RolloverSimTest, WeeklyFullAvailabilityMatchesPaper) {
  constexpr double kWeek = 7 * 24 * 3600.0;
  double shm_frac =
      SimulateRollover(PaperScaleConfig(RecoveryPath::kSharedMemory))
          .FullAvailabilityFraction(kWeek);
  double disk_frac = SimulateRollover(PaperScaleConfig(RecoveryPath::kDisk))
                         .FullAvailabilityFraction(kWeek);
  // Paper §1: 93% (12h rollover) vs 99.5% (under-an-hour rollover).
  EXPECT_NEAR(disk_frac, 0.93, 0.03);
  EXPECT_GT(shm_frac, 0.99);
}

TEST(RolloverSimTest, TimelineIsConsistent) {
  RolloverReport report =
      SimulateRollover(PaperScaleConfig(RecoveryPath::kSharedMemory));
  ASSERT_FALSE(report.timeline.empty());
  double prev_time = -1;
  for (const DashboardSample& s : report.timeline) {
    EXPECT_GE(s.time_seconds, prev_time);
    prev_time = s.time_seconds;
    EXPECT_NEAR(s.fraction_old + s.fraction_restarting + s.fraction_new, 1.0,
                1e-9);
    EXPECT_GE(s.fraction_old, -1e-9);
    EXPECT_GE(s.fraction_new, -1e-9);
  }
  // Starts all-old, ends all-new.
  EXPECT_NEAR(report.timeline.front().fraction_old, 1.0, 1e-9);
  EXPECT_NEAR(report.timeline.back().fraction_new, 1.0, 1e-9);
}

TEST(RolloverSimTest, BatchCountMatchesFraction) {
  RolloverSimConfig config = PaperScaleConfig(RecoveryPath::kSharedMemory);
  RolloverReport report = SimulateRollover(config);
  // 800 leaves at 2% = 16 per batch = 50 batches.
  EXPECT_EQ(report.num_batches, 50u);
}

TEST(RolloverSimTest, WatchdogKillsForceDiskFallbacks) {
  RolloverSimConfig config = PaperScaleConfig(RecoveryPath::kSharedMemory);
  config.shutdown_kill_probability = 0.05;
  RolloverReport report = SimulateRollover(config);
  EXPECT_GT(report.disk_fallbacks, 10u);
  // Fallbacks make the rollover slower than the clean case.
  RolloverSimConfig clean = PaperScaleConfig(RecoveryPath::kSharedMemory);
  EXPECT_GT(report.total_seconds,
            SimulateRollover(clean).total_seconds);
}

TEST(RolloverSimTest, DeterministicForSeed) {
  RolloverSimConfig config = PaperScaleConfig(RecoveryPath::kSharedMemory);
  config.shutdown_kill_probability = 0.1;
  RolloverReport a = SimulateRollover(config);
  RolloverReport b = SimulateRollover(config);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.disk_fallbacks, b.disk_fallbacks);
}

TEST(RolloverSimTest, EmptyClusterIsTrivial) {
  RolloverSimConfig config;
  config.num_machines = 0;
  RolloverReport report = SimulateRollover(config);
  EXPECT_EQ(report.total_seconds, 0.0);
}

// E6: spreading restarts across machines beats stacking them on one
// machine, because per-machine bandwidth is the bottleneck (§2, §6).
TEST(ParallelRestartTest, PerMachineBandwidthIsTheBottleneck) {
  RolloverSimConfig config = PaperScaleConfig(RecoveryPath::kSharedMemory);
  double one_at_a_time = SimulateFullClusterRestartSeconds(config, 1);
  double all_eight = SimulateFullClusterRestartSeconds(config, 8);
  // Copy time is bandwidth-bound either way, but the fixed per-leaf
  // overhead amortizes when concurrent; with contention modeled, running
  // 8-wide on one machine is NOT 8x faster:
  EXPECT_LT(all_eight, one_at_a_time);           // some amortization...
  EXPECT_GT(all_eight, one_at_a_time / 8.0);     // ...but nowhere near 8x.
}

TEST(ParallelRestartTest, DiskPathScalesTheSameWay) {
  RolloverSimConfig config = PaperScaleConfig(RecoveryPath::kDisk);
  double serial = SimulateFullClusterRestartSeconds(config, 1);
  double packed = SimulateFullClusterRestartSeconds(config, 8);
  EXPECT_GT(packed, serial / 8.0 * 6.0);  // bandwidth sharing dominates
}

TEST(ParallelRestartTest, NLeavesPerMachineEnablesNParallelism) {
  // The paper's §6 point: with N leaves per machine, a rollover batch can
  // touch N times as many machines' worth of leaves while each machine
  // loses only 1/N of its data. Compare availability between 1 and 8
  // leaves/machine at the same per-machine data.
  RolloverSimConfig one_leaf = PaperScaleConfig(RecoveryPath::kSharedMemory);
  one_leaf.leaves_per_machine = 1;
  one_leaf.bytes_per_leaf = 120ull << 30;
  RolloverReport one = SimulateRollover(one_leaf);

  RolloverSimConfig eight = PaperScaleConfig(RecoveryPath::kSharedMemory);
  RolloverReport eight_report = SimulateRollover(eight);

  // With 1 leaf/machine and 2% batches, each restarting leaf takes a full
  // machine's data offline; min availability is the same 98%, but each
  // batch moves 8x more bytes per leaf, so the rollover takes longer.
  EXPECT_GT(one.total_seconds, eight_report.total_seconds);
}

}  // namespace
}  // namespace scuba
