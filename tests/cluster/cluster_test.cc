#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "ingest/row_generator.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;
using testing_util::TempDir;

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : ns_("cluster"), dir_("cluster") {}

  ClusterConfig MakeConfig(size_t machines = 2, size_t leaves = 4) {
    ClusterConfig config;
    config.num_machines = machines;
    config.leaves_per_machine = leaves;
    config.namespace_prefix = ns_.prefix();
    config.backup_root = dir_.path() + "/backups";
    return config;
  }

  void FillCluster(Cluster* cluster, size_t rows = 4000) {
    RowGenerator gen;
    cluster->log().AppendBatch("requests", gen.NextBatch(rows));
    cluster->AddTailer("requests", /*batch_rows=*/256);
    auto pumped = cluster->PumpTailers(true);
    ASSERT_TRUE(pumped.ok());
    ASSERT_EQ(*pumped, rows);
  }

  Query CountQuery() {
    Query q;
    q.table = "requests";
    q.aggregates = {Count()};
    return q;
  }

  ShmNamespace ns_;
  TempDir dir_;
};

TEST_F(ClusterTest, StartIngestQuery) {
  Cluster cluster(MakeConfig());
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.num_leaves(), 8u);
  FillCluster(&cluster);
  EXPECT_EQ(cluster.TotalRowCount(), 4000u);

  auto result = cluster.aggregator().Execute(CountQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->IsPartial());
  EXPECT_EQ(result->Finalize({Count()})[0].aggregates[0], 4000.0);
  cluster.Cleanup();
}

TEST_F(ClusterTest, RealShmRolloverKeepsAllData) {
  Cluster cluster(MakeConfig());
  ASSERT_TRUE(cluster.Start().ok());
  FillCluster(&cluster);

  RealRolloverOptions options;
  options.batch_fraction = 0.25;  // 2 leaves per batch at this scale
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->leaves_rolled, 8u);
  EXPECT_EQ(report->shm_recoveries, 8u);
  EXPECT_EQ(report->disk_recoveries, 0u);
  EXPECT_EQ(report->rows_after, report->rows_before);
  EXPECT_GE(report->min_availability, 0.75 - 1e-9);

  auto result = cluster.aggregator().Execute(CountQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Finalize({Count()})[0].aggregates[0], 4000.0);
  cluster.Cleanup();
}

TEST_F(ClusterTest, ForcedDiskRolloverAlsoKeepsData) {
  Cluster cluster(MakeConfig(1, 4));
  ASSERT_TRUE(cluster.Start().ok());
  FillCluster(&cluster, 2000);

  RealRolloverOptions options;
  options.batch_fraction = 0.25;
  options.use_shared_memory = false;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->disk_recoveries, 4u);
  EXPECT_EQ(report->shm_recoveries, 0u);
  EXPECT_EQ(cluster.TotalRowCount(), 2000u);
  cluster.Cleanup();
}

TEST_F(ClusterTest, IngestContinuesDuringRollover) {
  Cluster cluster(MakeConfig());
  ASSERT_TRUE(cluster.Start().ok());
  FillCluster(&cluster, 2000);

  // More rows land in the log; tailers pump between rollover batches.
  RowGenerator gen;
  cluster.log().AppendBatch("requests", gen.NextBatch(1000));

  RealRolloverOptions options;
  options.batch_fraction = 0.25;
  options.pump_tailers_between_batches = true;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(cluster.PumpTailers(true).ok());
  EXPECT_EQ(cluster.TotalRowCount(), 3000u);
  cluster.Cleanup();
}

TEST_F(ClusterTest, WholeClusterHandoffAcrossClusterObjects) {
  ClusterConfig config = MakeConfig();
  {
    Cluster cluster(config);
    ASSERT_TRUE(cluster.Start().ok());
    FillCluster(&cluster);
    ASSERT_TRUE(cluster.ShutdownAllToSharedMemory().ok());
  }
  // "New deployment": a brand-new cluster object over the same namespace.
  Cluster fresh(config);
  ASSERT_TRUE(fresh.Start().ok());
  EXPECT_EQ(fresh.TotalRowCount(), 4000u);
  auto result = fresh.aggregator().Execute(CountQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Finalize({Count()})[0].aggregates[0], 4000.0);
  fresh.Cleanup();
}

TEST_F(ClusterTest, RolloverSurvivesWatchdogKills) {
  // Every shutdown is "killed" by the watchdog (§4.3): the rollover must
  // still complete, with every leaf disk-recovered and zero row loss.
  Cluster cluster(MakeConfig(2, 4));
  ASSERT_TRUE(cluster.Start().ok());
  FillCluster(&cluster, 2000);

  RealRolloverOptions options;
  options.batch_fraction = 0.25;
  options.inject_shutdown_kill_rate = 1.0;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->watchdog_kills, 8u);
  EXPECT_EQ(report->shm_recoveries, 0u);
  // A leaf that happened to hold no rows recovers "fresh"; all others
  // must take the disk path.
  EXPECT_EQ(report->disk_recoveries + report->fresh_recoveries, 8u);
  EXPECT_GE(report->disk_recoveries, 7u);
  EXPECT_EQ(cluster.TotalRowCount(), 2000u);
  cluster.Cleanup();
}

TEST_F(ClusterTest, PartialWatchdogKillsMixRecoveryPaths) {
  Cluster cluster(MakeConfig(2, 4));
  ASSERT_TRUE(cluster.Start().ok());
  FillCluster(&cluster, 2000);

  RealRolloverOptions options;
  options.batch_fraction = 0.25;
  options.inject_shutdown_kill_rate = 0.5;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LE(report->disk_recoveries, report->watchdog_kills);
  EXPECT_EQ(report->shm_recoveries + report->disk_recoveries +
                report->fresh_recoveries,
            8u);
  EXPECT_GT(report->shm_recoveries, 0u);
  EXPECT_GT(report->disk_recoveries, 0u);
  EXPECT_EQ(cluster.TotalRowCount(), 2000u);
  cluster.Cleanup();
}

TEST_F(ClusterTest, TimelineShowsProgress) {
  Cluster cluster(MakeConfig(1, 4));
  ASSERT_TRUE(cluster.Start().ok());
  FillCluster(&cluster, 1000);
  RealRolloverOptions options;
  options.batch_fraction = 0.25;
  auto report = cluster.Rollover(options);
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->timeline.size(), 3u);
  EXPECT_NEAR(report->timeline.front().fraction_old, 1.0, 1e-9);
  EXPECT_NEAR(report->timeline.back().fraction_new, 1.0, 1e-9);
  cluster.Cleanup();
}

}  // namespace
}  // namespace scuba
