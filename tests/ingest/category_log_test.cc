#include "ingest/category_log.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;

TEST(CategoryLogTest, AppendAndRead) {
  CategoryLog log;
  log.AppendBatch("events", MakeRows(100));
  EXPECT_EQ(log.Size("events"), 100u);
  EXPECT_EQ(log.Size("other"), 0u);

  std::vector<Row> out;
  EXPECT_EQ(log.Read("events", 0, 30, &out), 30u);
  EXPECT_EQ(out.size(), 30u);
  out.clear();
  EXPECT_EQ(log.Read("events", 90, 30, &out), 10u);  // clipped at end
  out.clear();
  EXPECT_EQ(log.Read("events", 100, 30, &out), 0u);  // caught up
  EXPECT_EQ(log.Read("missing", 0, 30, &out), 0u);
}

TEST(CategoryLogTest, SingleAppend) {
  CategoryLog log;
  Row row;
  row.SetTime(5);
  log.Append("events", row);
  EXPECT_EQ(log.Size("events"), 1u);
  std::vector<Row> out;
  ASSERT_EQ(log.Read("events", 0, 10, &out), 1u);
  EXPECT_EQ(out[0].Time(), 5);
}

TEST(CategoryLogTest, ReadAppendsToExistingVector) {
  CategoryLog log;
  log.AppendBatch("a", MakeRows(5, 100));
  log.AppendBatch("b", MakeRows(5, 200));
  std::vector<Row> out;
  log.Read("a", 0, 5, &out);
  log.Read("b", 0, 5, &out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(CategoryLogTest, CategoriesLists) {
  CategoryLog log;
  log.AppendBatch("zeta", MakeRows(1));
  log.AppendBatch("alpha", MakeRows(1));
  auto cats = log.Categories();
  EXPECT_EQ(cats.size(), 2u);
}

TEST(CategoryLogTest, OffsetsAreStable) {
  CategoryLog log;
  log.AppendBatch("events", MakeRows(10, 100));
  std::vector<Row> first;
  log.Read("events", 3, 2, &first);
  log.AppendBatch("events", MakeRows(10, 200));
  std::vector<Row> second;
  log.Read("events", 3, 2, &second);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(first[0].Time(), second[0].Time());
}

}  // namespace
}  // namespace scuba
