#include "ingest/tailer.h"

#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

class TailerTest : public ::testing::Test {
 protected:
  TailerTest() : ns_("tailer"), dir_("tailer") {}

  void StartLeaves(size_t n, uint64_t capacity = 1 << 30) {
    for (size_t i = 0; i < n; ++i) {
      LeafServerConfig config;
      config.leaf_id = static_cast<uint32_t>(i);
      config.namespace_prefix = ns_.prefix();
      config.backup_dir = dir_.path() + "/leaf_" + std::to_string(i);
      config.memory_capacity_bytes = capacity;
      leaves_.push_back(std::make_unique<LeafServer>(config));
      ASSERT_TRUE(leaves_.back()->Start().ok());
    }
  }

  std::vector<LeafServer*> LeafPtrs() {
    std::vector<LeafServer*> out;
    for (auto& leaf : leaves_) out.push_back(leaf.get());
    return out;
  }

  uint64_t TotalRows() {
    uint64_t total = 0;
    for (auto& leaf : leaves_) total += leaf->RowCount();
    return total;
  }

  ShmNamespace ns_;
  TempDir dir_;
  CategoryLog log_;
  std::vector<std::unique_ptr<LeafServer>> leaves_;
};

TEST_F(TailerTest, DeliversFullBatches) {
  StartLeaves(4);
  log_.AppendBatch("events", MakeRows(2500));

  TailerConfig config;
  config.category = "events";
  config.batch_rows = 1000;
  Tailer tailer(config, &log_, LeafPtrs());

  auto delivered = tailer.Pump();
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 2000u);  // two full batches; 500 left
  EXPECT_EQ(tailer.backlog(), 500u);
  EXPECT_EQ(TotalRows(), 2000u);

  // Flush pushes the short batch.
  delivered = tailer.Pump(/*flush=*/true);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 500u);
  EXPECT_EQ(TotalRows(), 2500u);
  EXPECT_EQ(tailer.stats().batches_delivered, 3u);
}

TEST_F(TailerTest, TwoChoicePrefersFreerLeaf) {
  StartLeaves(2, /*capacity=*/64 << 20);
  // Pre-load leaf 0 so leaf 1 has more free memory.
  ASSERT_TRUE(leaves_[0]->AddRows("preload", MakeRows(30000)).ok());

  TailerConfig config;
  config.category = "events";
  config.batch_rows = 100;
  Tailer tailer(config, &log_, LeafPtrs());

  log_.AppendBatch("events", MakeRows(5000));
  ASSERT_TRUE(tailer.Pump(true).ok());
  // With both leaves always alive, every batch goes to the leaf with more
  // free memory -> leaf 1 gets the (large) majority.
  uint64_t leaf1_events = leaves_[1]->RowCount();
  uint64_t leaf0_events = leaves_[0]->RowCount() - 30000;
  EXPECT_GT(leaf1_events, leaf0_events * 3);
}

TEST_F(TailerTest, SkipsDeadLeaves) {
  StartLeaves(3);
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[0]->ShutdownToSharedMemory(&stats).ok());

  TailerConfig config;
  config.category = "events";
  config.batch_rows = 100;
  Tailer tailer(config, &log_, LeafPtrs());
  log_.AppendBatch("events", MakeRows(1000));
  auto delivered = tailer.Pump(true);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 1000u);
  EXPECT_EQ(leaves_[0]->RowCount(), 0u);  // dead leaf got nothing
  EXPECT_EQ(leaves_[1]->RowCount() + leaves_[2]->RowCount(), 1000u);
}

TEST_F(TailerTest, AllDeadMeansRetryLater) {
  StartLeaves(2);
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[0]->ShutdownToSharedMemory(&stats).ok());
  ASSERT_TRUE(leaves_[1]->ShutdownToSharedMemory(&stats).ok());

  TailerConfig config;
  config.category = "events";
  config.batch_rows = 100;
  Tailer tailer(config, &log_, LeafPtrs());
  log_.AppendBatch("events", MakeRows(500));
  auto delivered = tailer.Pump(true);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 0u);
  EXPECT_GT(tailer.stats().batches_failed, 0u);
  EXPECT_EQ(tailer.backlog(), 500u);  // rows retained for retry
}

TEST_F(TailerTest, RetriesSucceedAfterLeafReturns) {
  StartLeaves(1);
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[0]->ShutdownToSharedMemory(&stats).ok());

  TailerConfig config;
  config.category = "events";
  config.batch_rows = 100;
  Tailer tailer(config, &log_, LeafPtrs());
  log_.AppendBatch("events", MakeRows(200));
  ASSERT_TRUE(tailer.Pump(true).ok());
  EXPECT_EQ(tailer.backlog(), 200u);

  // The replacement process comes up and recovers from shm.
  LeafServerConfig lc = leaves_[0]->config();
  leaves_[0] = std::make_unique<LeafServer>(lc);
  ASSERT_TRUE(leaves_[0]->Start().ok());
  tailer.SetLeaves(LeafPtrs());

  auto delivered = tailer.Pump(true);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 200u);
  EXPECT_EQ(tailer.backlog(), 0u);
}

TEST_F(TailerTest, ChooseLeafReturnsNullWhenNothingAccepts) {
  StartLeaves(2);
  ShutdownStats stats;
  ASSERT_TRUE(leaves_[0]->ShutdownToSharedMemory(&stats).ok());
  ASSERT_TRUE(leaves_[1]->ShutdownToSharedMemory(&stats).ok());
  TailerConfig config;
  config.category = "events";
  Tailer tailer(config, &log_, LeafPtrs());
  bool fallback = false;
  EXPECT_EQ(tailer.ChooseLeaf(&fallback), nullptr);
}

}  // namespace
}  // namespace scuba
