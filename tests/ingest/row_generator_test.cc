#include "ingest/row_generator.h"

#include <gtest/gtest.h>

#include <set>

namespace scuba {
namespace {

TEST(RowGeneratorTest, DeterministicForSeed) {
  RowGeneratorConfig config;
  config.seed = 5;
  RowGenerator a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    Row ra = a.Next();
    Row rb = b.Next();
    ASSERT_EQ(ra.fields.size(), rb.fields.size());
    EXPECT_EQ(ra.Time(), rb.Time());
  }
}

TEST(RowGeneratorTest, EveryRowHasRequiredColumns) {
  RowGenerator gen;
  for (int i = 0; i < 1000; ++i) {
    Row row = gen.Next();
    ASSERT_TRUE(row.Time().has_value());
    bool has_service = false, has_status = false, has_latency = false;
    for (const auto& [name, value] : row.fields) {
      if (name == "service") has_service = true;
      if (name == "status") has_status = true;
      if (name == "latency_ms") has_latency = true;
    }
    EXPECT_TRUE(has_service && has_status && has_latency);
  }
}

TEST(RowGeneratorTest, TimeAdvancesRoughlyChronologically) {
  RowGeneratorConfig config;
  config.rows_per_second = 100;
  config.time_jitter_seconds = 2;
  RowGenerator gen(config);
  int64_t first = *gen.Next().Time();
  for (int i = 0; i < 999; ++i) gen.Next();
  int64_t later = *gen.Next().Time();
  // 1000 rows at 100 rows/s ~ 10 seconds of event time (+/- jitter).
  EXPECT_NEAR(later - first, 10, 5);
}

TEST(RowGeneratorTest, ErrorFractionApproximatelyHonored) {
  RowGeneratorConfig config;
  config.error_fraction = 0.10;
  RowGenerator gen(config);
  int errors = 0;
  constexpr int kRows = 20000;
  for (int i = 0; i < kRows; ++i) {
    Row row = gen.Next();
    for (const auto& [name, value] : row.fields) {
      if (name == "status" && std::get<int64_t>(value) >= 500) ++errors;
    }
  }
  EXPECT_NEAR(static_cast<double>(errors) / kRows, 0.10, 0.02);
}

TEST(RowGeneratorTest, CardinalitiesRespectConfig) {
  RowGeneratorConfig config;
  config.num_services = 5;
  RowGenerator gen(config);
  std::set<std::string> services;
  for (int i = 0; i < 5000; ++i) {
    Row row = gen.Next();
    for (const auto& [name, value] : row.fields) {
      if (name == "service") services.insert(std::get<std::string>(value));
    }
  }
  EXPECT_LE(services.size(), 5u);
  EXPECT_GE(services.size(), 2u);  // skewed but not degenerate
}

TEST(RowGeneratorTest, NextBatchSizes) {
  RowGenerator gen;
  EXPECT_EQ(gen.NextBatch(0).size(), 0u);
  EXPECT_EQ(gen.NextBatch(123).size(), 123u);
  EXPECT_EQ(gen.rows_generated(), 123u);
}

}  // namespace
}  // namespace scuba
