#include "util/status.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(StatusTest, AllPredicatesMatchTheirFactories) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

StatusOr<int> DoubleIfPositive(int x) {
  SCUBA_RETURN_IF_ERROR(FailsWhenNegative(x));
  return x * 2;
}

StatusOr<int> ChainThroughMacro(int x) {
  SCUBA_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_TRUE(DoubleIfPositive(-1).status().IsInvalidArgument());
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  auto ok = ChainThroughMacro(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_TRUE(ChainThroughMacro(-5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
