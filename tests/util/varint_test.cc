#include "util/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  for (uint64_t v : {0ull, 1ull, 42ull, 127ull}) {
    ByteBuffer buf;
    varint::AppendU64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    Slice in = buf.AsSlice();
    uint64_t decoded = 0;
    ASSERT_TRUE(varint::ReadU64(&in, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, BoundaryValues) {
  std::vector<uint64_t> values = {
      127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    ByteBuffer buf;
    varint::AppendU64(&buf, v);
    Slice in = buf.AsSlice();
    uint64_t decoded = 0;
    ASSERT_TRUE(varint::ReadU64(&in, &decoded)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, MaxValueUsesTenBytes) {
  ByteBuffer buf;
  varint::AppendU64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), static_cast<size_t>(varint::kMaxLen64));
}

TEST(VarintTest, TruncatedInputFails) {
  ByteBuffer buf;
  varint::AppendU64(&buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t decoded = 0;
    EXPECT_FALSE(varint::ReadU64(&in, &decoded)) << "cut at " << cut;
  }
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(varint::ZigZagEncode(0), 0u);
  EXPECT_EQ(varint::ZigZagEncode(-1), 1u);
  EXPECT_EQ(varint::ZigZagEncode(1), 2u);
  EXPECT_EQ(varint::ZigZagEncode(-2), 3u);
  EXPECT_EQ(varint::ZigZagEncode(2), 4u);
}

TEST(VarintTest, SignedRoundTrip) {
  std::vector<int64_t> values = {0, 1, -1, 1000, -1000,
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    ByteBuffer buf;
    varint::AppendI64(&buf, v);
    Slice in = buf.AsSlice();
    int64_t decoded = 0;
    ASSERT_TRUE(varint::ReadI64(&in, &decoded)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, RandomRoundTripSweep) {
  Random random(2024);
  ByteBuffer buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    // Cover all magnitudes by masking with a random width.
    uint64_t v = random.Next() >> (random.Next() % 64);
    values.push_back(v);
    varint::AppendU64(&buf, v);
  }
  Slice in = buf.AsSlice();
  for (uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(varint::ReadU64(&in, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace scuba
