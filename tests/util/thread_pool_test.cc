#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace scuba {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SingleWorkerRunsFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, InlineWhenPoolIsNull) {
  std::vector<int> hits(5, 0);
  Status s = ParallelFor(nullptr, 5, [&](size_t i) {
    hits[i] = 1;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ReturnsErrorAndSkipsUnstartedIterations) {
  // One worker runs the tasks FIFO, so after iteration 0 fails every
  // later iteration must see the failure flag and be skipped.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  Status s = ParallelFor(&pool, 20, [&](size_t i) -> Status {
    count.fetch_add(1);
    if (i == 0) return Status::Corruption("boom");
    return Status::OK();
  });
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, InlineStopsAtFirstError) {
  std::atomic<int> count{0};
  Status s = ParallelFor(nullptr, 5, [&](size_t i) -> Status {
    count.fetch_add(1);
    return i == 1 ? Status::Internal("first") : Status::OK();
  });
  EXPECT_TRUE(s.IsInternal()) << s.ToString();
  EXPECT_EQ(count.load(), 2);
}

TEST(ByteBudgetTest, UnlimitedNeverBlocks) {
  ByteBudget budget(0);
  budget.Acquire(1ull << 40);
  budget.Acquire(1ull << 40);
  EXPECT_EQ(budget.in_flight(), 0u);  // unlimited tracks nothing
  budget.Release(1ull << 40);
}

TEST(ByteBudgetTest, CapsInFlightBytes) {
  ByteBudget budget(100);
  budget.Acquire(60);
  budget.Acquire(40);
  EXPECT_EQ(budget.in_flight(), 100u);

  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    budget.Acquire(10);  // must wait: 100/100 used
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  budget.Release(60);
  blocked.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(budget.in_flight(), 50u);
  budget.Release(50);
  EXPECT_EQ(budget.in_flight(), 0u);
}

TEST(ByteBudgetTest, OversizedAcquireGrantedWhenIdle) {
  ByteBudget budget(100);
  // Larger than the whole limit: granted because nothing is in flight —
  // degrades to serial instead of deadlocking.
  budget.Acquire(1000);
  EXPECT_EQ(budget.in_flight(), 1000u);

  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    budget.Acquire(1);
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());  // oversized holder blocks everyone else
  budget.Release(1000);
  blocked.join();
  EXPECT_TRUE(acquired.load());
  budget.Release(1);
}

TEST(ByteBudgetTest, OversizedWaiterBlocksNewSmallAcquires) {
  ByteBudget budget(100);
  budget.Acquire(50);

  std::atomic<bool> oversized_done{false};
  std::thread oversized([&] {
    budget.Acquire(1000);  // must wait for the 50 in flight to drain
    oversized_done.store(true);
    budget.Release(1000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_FALSE(oversized_done.load());

  // 50 + 10 <= 100, but the parked oversized request must win over new
  // small acquisitions or it could be starved forever.
  std::atomic<bool> small_done{false};
  std::thread small([&] {
    budget.Acquire(10);
    small_done.store(true);
    budget.Release(10);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(small_done.load());

  budget.Release(50);
  oversized.join();
  small.join();
  EXPECT_TRUE(oversized_done.load());
  EXPECT_TRUE(small_done.load());
  EXPECT_EQ(budget.in_flight(), 0u);
}

}  // namespace
}  // namespace scuba
