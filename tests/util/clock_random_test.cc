#include <gtest/gtest.h>

#include <set>

#include "util/bit_util.h"
#include "util/clock.h"
#include "util/random.h"

namespace scuba {
namespace {

TEST(SimulatedClockTest, AdvancesOnlyWhenAsked) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SleepMicros(250);  // sleeping advances simulated time instantly
  EXPECT_EQ(clock.NowMicros(), 1750);
  clock.SetMicros(42);
  EXPECT_EQ(clock.NowMicros(), 42);
  EXPECT_EQ(clock.NowUnixSeconds(), 0);
}

TEST(RealClockTest, MonotoneAndRoughlyNow) {
  RealClock* clock = RealClock::Get();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
  // Sanity: after 2020-01-01 in microseconds.
  EXPECT_GT(a, 1577836800000000ll);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  RealClock::Get()->SleepMicros(2000);
  EXPECT_GE(watch.ElapsedMicros(), 1500);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMicros(), 1500);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random random(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(random.Uniform(17), 17u);
    int64_t v = random.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, BernoulliApproximatesProbability) {
  Random random(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (random.Bernoulli(0.25)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(RandomTest, SkewedFavorsSmallIndices) {
  Random random(13);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = random.Skewed(100);
    EXPECT_LT(v, 100u);
    if (v < 25) ++low;
    if (v >= 75) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(BitUtilTest, BitWidth) {
  EXPECT_EQ(bit_util::BitWidth(0), 0);
  EXPECT_EQ(bit_util::BitWidth(1), 1);
  EXPECT_EQ(bit_util::BitWidth(2), 2);
  EXPECT_EQ(bit_util::BitWidth(255), 8);
  EXPECT_EQ(bit_util::BitWidth(256), 9);
  EXPECT_EQ(bit_util::BitWidth(~0ull), 64);
}

TEST(BitUtilTest, RoundUp) {
  EXPECT_EQ(bit_util::RoundUp(0, 8), 0u);
  EXPECT_EQ(bit_util::RoundUp(1, 8), 8u);
  EXPECT_EQ(bit_util::RoundUp(8, 8), 8u);
  EXPECT_EQ(bit_util::RoundUp(9, 8), 16u);
}

TEST(BitUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(bit_util::IsPowerOfTwo(0));
  EXPECT_TRUE(bit_util::IsPowerOfTwo(1));
  EXPECT_TRUE(bit_util::IsPowerOfTwo(64));
  EXPECT_FALSE(bit_util::IsPowerOfTwo(65));
}

}  // namespace
}  // namespace scuba
