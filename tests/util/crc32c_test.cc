#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace scuba {
namespace {

uint32_t CrcOf(const std::string& s) {
  return crc32c::Value(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

// Known-answer vectors for CRC-32C (Castagnoli), from RFC 3720 / kernel
// test suites.
TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(CrcOf(""), 0x00000000u);
  EXPECT_EQ(CrcOf("a"), 0xC1D04330u);
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);

  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(crc32c::Value(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "hello world, this is an incremental crc test";
  uint32_t whole = CrcOf(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t part = crc32c::Value(
        reinterpret_cast<const uint8_t*>(data.data()), split);
    uint32_t total = crc32c::Extend(
        part, reinterpret_cast<const uint8_t*>(data.data()) + split,
        data.size() - split);
    EXPECT_EQ(total, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    uint32_t masked = crc32c::Mask(crc);
    EXPECT_NE(masked, crc);
    EXPECT_EQ(crc32c::Unmask(masked), crc);
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::string data(1024, 'x');
  uint32_t base = CrcOf(data);
  data[512] = 'y';
  EXPECT_NE(CrcOf(data), base);
}

TEST(Crc32cTest, UnalignedOffsetsAgree) {
  // The 4-byte fast path must agree with byte-at-a-time for any length.
  std::string data = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (size_t len = 0; len <= data.size(); ++len) {
    uint32_t fast = crc32c::Value(
        reinterpret_cast<const uint8_t*>(data.data()), len);
    uint32_t slow = 0;
    for (size_t i = 0; i < len; ++i) {
      slow = crc32c::Extend(
          slow, reinterpret_cast<const uint8_t*>(data.data()) + i, 1);
    }
    EXPECT_EQ(fast, slow) << "length " << len;
  }
}

}  // namespace
}  // namespace scuba
