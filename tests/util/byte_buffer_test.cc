#include "util/byte_buffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace scuba {
namespace {

TEST(ByteBufferTest, StartsEmpty) {
  ByteBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ByteBufferTest, AppendGrowsAndPreservesContents) {
  ByteBuffer buf;
  std::string chunk(100, 'a');
  for (int i = 0; i < 100; ++i) buf.Append(chunk.data(), chunk.size());
  ASSERT_EQ(buf.size(), 10000u);
  for (size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf.data()[i], 'a') << i;
  }
}

TEST(ByteBufferTest, FixedWidthAppendsAreLittleEndian) {
  ByteBuffer buf;
  buf.AppendU32(0x04030201u);
  buf.AppendU64(0x0807060504030201ull);
  ASSERT_EQ(buf.size(), 12u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(buf.data()[i], i + 1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf.data()[4 + i], i + 1);
}

TEST(ByteBufferTest, DecodeInvertsEncode) {
  uint8_t scratch[8];
  ByteBuffer::EncodeU32(scratch, 0xDEADBEEFu);
  EXPECT_EQ(ByteBuffer::DecodeU32(scratch), 0xDEADBEEFu);
  ByteBuffer::EncodeU64(scratch, 0x0123456789ABCDEFull);
  EXPECT_EQ(ByteBuffer::DecodeU64(scratch), 0x0123456789ABCDEFull);
}

TEST(ByteBufferTest, PatchOverwritesReservedHeader) {
  ByteBuffer buf;
  size_t at = buf.AppendZeros(8);
  buf.AppendU32(7);
  buf.PatchU64(at, 0x1122334455667788ull);
  EXPECT_EQ(ByteBuffer::DecodeU64(buf.data() + at), 0x1122334455667788ull);
  EXPECT_EQ(ByteBuffer::DecodeU32(buf.data() + 8), 7u);
}

TEST(ByteBufferTest, AlignToPadsWithZeros) {
  ByteBuffer buf;
  buf.AppendU8(0xFF);
  buf.AlignTo(8);
  EXPECT_EQ(buf.size(), 8u);
  for (size_t i = 1; i < 8; ++i) EXPECT_EQ(buf.data()[i], 0);
  buf.AlignTo(8);  // already aligned: no-op
  EXPECT_EQ(buf.size(), 8u);
}

TEST(ByteBufferTest, ClearKeepsCapacity) {
  ByteBuffer buf;
  buf.AppendZeros(1000);
  size_t cap = buf.capacity();
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), cap);
}

TEST(ByteBufferTest, ReleaseTransfersOwnership) {
  ByteBuffer buf;
  buf.AppendU32(0xABCD1234u);
  auto owned = buf.Release();
  EXPECT_EQ(ByteBuffer::DecodeU32(owned.get()), 0xABCD1234u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ByteBufferTest, MoveSemantics) {
  ByteBuffer a;
  a.AppendU32(5);
  ByteBuffer b = std::move(a);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(ByteBuffer::DecodeU32(b.data()), 5u);
}

TEST(SliceTest, EqualityAndSubslice) {
  std::string data = "hello world";
  Slice s(data);
  EXPECT_EQ(s.size(), 11u);
  EXPECT_EQ(s.Subslice(6, 5).ToString(), "world");
  EXPECT_EQ(Slice(data), Slice(data));
  EXPECT_NE(Slice(data), Slice(data).Subslice(0, 5));

  Slice t(data);
  t.RemovePrefix(6);
  EXPECT_EQ(t.ToString(), "world");
}

}  // namespace
}  // namespace scuba
