#include <gtest/gtest.h>

#include "disk/backup_reader.h"
#include "disk/backup_writer.h"
#include "disk/file.h"
#include "test_util.h"
#include "util/clock.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::TempDir;

TEST(BackupWriterTest, WritesAndTracksDirtyTables) {
  TempDir dir("bw1");
  BackupWriter writer(dir.path());
  ASSERT_TRUE(writer.Init().ok());

  ASSERT_TRUE(writer.AppendBatch("events", MakeRows(100)).ok());
  ASSERT_TRUE(writer.AppendBatch("errors", MakeRows(10)).ok());
  EXPECT_EQ(writer.dirty_table_count(), 2u);
  EXPECT_GT(writer.total_bytes_written(), 0u);

  ASSERT_TRUE(writer.SyncAll().ok());
  EXPECT_EQ(writer.dirty_table_count(), 0u);

  EXPECT_TRUE(FileExists(writer.FilePathFor("events")));
  EXPECT_TRUE(FileExists(writer.FilePathFor("errors")));
}

TEST(BackupRoundTripTest, RecoverLeafRebuildsTables) {
  TempDir dir("bw2");
  {
    BackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(500, 1000)).ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(500, 2000)).ok());
    ASSERT_TRUE(writer.AppendBatch("errors", MakeRows(42, 1000)).ok());
    ASSERT_TRUE(writer.SyncAll().ok());
  }

  LeafMap leaf_map;
  BackupReader::Options options;
  BackupReader::Stats stats;
  ASSERT_TRUE(
      BackupReader::RecoverLeaf(dir.path(), &leaf_map, options, 5000, &stats)
          .ok());

  EXPECT_EQ(stats.tables_recovered, 2u);
  EXPECT_EQ(stats.rows_recovered, 1042u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(leaf_map.TotalRowCount(), 1042u);
  ASSERT_NE(leaf_map.GetTable("events"), nullptr);
  EXPECT_EQ(leaf_map.GetTable("events")->RowCount(), 1000u);
  // Recovery seals blocks: recovered data is in row blocks, not buffers.
  EXPECT_GE(leaf_map.GetTable("events")->num_row_blocks(), 1u);
}

TEST(BackupRoundTripTest, TornTailKeepsPrefix) {
  TempDir dir("bw3");
  std::string path;
  {
    BackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(100, 1000)).ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(100, 2000)).ok());
    ASSERT_TRUE(writer.SyncAll().ok());
    path = writer.FilePathFor("events");
  }
  // Simulate a crash mid-append: chop off the last 10 bytes.
  uint64_t size = FileSize(path);
  ASSERT_GT(size, 10u);
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(size - 10)), 0);

  Table table("events");
  BackupReader::Options options;
  BackupReader::Stats stats;
  ASSERT_TRUE(
      BackupReader::RecoverTable(path, &table, options, 5000, &stats).ok());
  EXPECT_EQ(table.RowCount(), 100u);  // first batch survives
  EXPECT_EQ(stats.records_dropped, 1u);
}

TEST(BackupRoundTripTest, StatsSplitReadAndTranslate) {
  TempDir dir("bw4");
  {
    BackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          writer.AppendBatch("events", MakeRows(1000, 1000 + i)).ok());
    }
    ASSERT_TRUE(writer.SyncAll().ok());
  }
  LeafMap leaf_map;
  BackupReader::Options options;
  BackupReader::Stats stats;
  ASSERT_TRUE(
      BackupReader::RecoverLeaf(dir.path(), &leaf_map, options, 5000, &stats)
          .ok());
  // Translation (decode + rebuild + recompress) dominates the raw read —
  // the paper's key disk-recovery property (§1).
  EXPECT_GT(stats.translate_micros, stats.read_micros);
}

TEST(BackupRoundTripTest, ThrottleSlowsRead) {
  TempDir dir("bw5");
  {
    BackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(5000, 1000)).ok());
    ASSERT_TRUE(writer.SyncAll().ok());
  }
  uint64_t file_bytes = FileSize(dir.path() + "/events.bak");

  auto run = [&](uint64_t throttle) {
    Table table("events");
    BackupReader::Options options;
    options.throttle_bytes_per_sec = throttle;
    BackupReader::Stats stats;
    EXPECT_TRUE(BackupReader::RecoverTable(dir.path() + "/events.bak", &table,
                                           options, 5000, &stats)
                    .ok());
    return stats.read_micros;
  };
  int64_t unthrottled = run(0);
  // Throttle to make the read take ~0.2s regardless of disk speed.
  int64_t throttled = run(file_bytes * 5);
  EXPECT_GT(throttled, unthrottled);
  EXPECT_GT(throttled, 100000);  // >= 0.1 s
}

TEST(BackupRoundTripTest, RecoveryAppliesRetentionLimits) {
  TempDir dir("bw6");
  {
    BackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(100, 1000)).ok());
    ASSERT_TRUE(writer.SyncAll().ok());
  }
  LeafMap leaf_map;
  BackupReader::Options options;
  options.table_limits.max_age_seconds = 10;  // rows at t~1000, now=99999
  BackupReader::Stats stats;
  ASSERT_TRUE(
      BackupReader::RecoverLeaf(dir.path(), &leaf_map, options, 99999, &stats)
          .ok());
  EXPECT_EQ(leaf_map.GetTable("events")->RowCount(), 0u);
}

TEST(FileTest, ListFilesFiltersBySuffix) {
  TempDir dir("bw7");
  {
    auto f1 = AppendableFile::Open(dir.path() + "/a.bak");
    ASSERT_TRUE(f1.ok());
    auto f2 = AppendableFile::Open(dir.path() + "/b.tmp");
    ASSERT_TRUE(f2.ok());
  }
  auto files = ListFiles(dir.path(), ".bak");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  EXPECT_EQ((*files)[0], "a.bak");
}

TEST(FileTest, ReadMissingFileIsNotFound) {
  ByteBuffer buf;
  EXPECT_TRUE(ReadFileFully("/tmp/definitely_missing_scuba", &buf)
                  .IsNotFound());
}

}  // namespace
}  // namespace scuba
