#include "disk/backup_format.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;

TEST(BackupFormatTest, FileHeaderRoundTrip) {
  ByteBuffer buf;
  backup_format::AppendFileHeader(&buf);
  Slice in = buf.AsSlice();
  ASSERT_TRUE(backup_format::CheckFileHeader(&in).ok());
  EXPECT_TRUE(in.empty());
}

TEST(BackupFormatTest, BadMagicRejected) {
  ByteBuffer buf;
  backup_format::AppendFileHeader(&buf);
  buf.data()[0] ^= 0xFF;
  Slice in = buf.AsSlice();
  EXPECT_TRUE(backup_format::CheckFileHeader(&in).IsCorruption());
}

TEST(BackupFormatTest, RowBatchRoundTrip) {
  std::vector<Row> rows = MakeRows(50, 777);
  ByteBuffer buf;
  ASSERT_TRUE(backup_format::AppendRowBatchRecord(rows, &buf).ok());

  Slice in = buf.AsSlice();
  std::vector<Row> decoded;
  ASSERT_TRUE(backup_format::ReadRowBatchRecord(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded.size(), rows.size());
  // Dense decoding preserves values (all MakeRows rows share a field set).
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].Time(), rows[i].Time()) << i;
    ASSERT_EQ(decoded[i].fields.size(), rows[i].fields.size());
  }
}

TEST(BackupFormatTest, HeterogeneousRowsDensify) {
  std::vector<Row> rows;
  Row a;
  a.SetTime(1);
  a.Set("status", int64_t{200});
  rows.push_back(a);
  Row b;
  b.SetTime(2);
  b.Set("error", std::string("boom"));
  rows.push_back(b);

  ByteBuffer buf;
  ASSERT_TRUE(backup_format::AppendRowBatchRecord(rows, &buf).ok());
  Slice in = buf.AsSlice();
  std::vector<Row> decoded;
  ASSERT_TRUE(backup_format::ReadRowBatchRecord(&in, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  // Both rows carry the union schema (time, status, error).
  EXPECT_EQ(decoded[0].fields.size(), 3u);
  EXPECT_EQ(decoded[1].fields.size(), 3u);
}

TEST(BackupFormatTest, EmptyBatchRejected) {
  ByteBuffer buf;
  EXPECT_TRUE(
      backup_format::AppendRowBatchRecord({}, &buf).IsInvalidArgument());
}

TEST(BackupFormatTest, RowWithoutTimeRejected) {
  Row row;
  row.Set("x", int64_t{1});
  ByteBuffer buf;
  EXPECT_TRUE(
      backup_format::AppendRowBatchRecord({row}, &buf).IsInvalidArgument());
}

TEST(BackupFormatTest, ConflictingTypesRejected) {
  Row a;
  a.SetTime(1);
  a.Set("v", int64_t{1});
  Row b;
  b.SetTime(2);
  b.Set("v", std::string("one"));
  ByteBuffer buf;
  EXPECT_TRUE(
      backup_format::AppendRowBatchRecord({a, b}, &buf).IsInvalidArgument());
}

TEST(BackupFormatTest, EndOfInputIsNotFound) {
  Slice empty;
  std::vector<Row> rows;
  EXPECT_TRUE(backup_format::ReadRowBatchRecord(&empty, &rows).IsNotFound());
}

TEST(BackupFormatTest, TornRecordIsCorruption) {
  std::vector<Row> rows = MakeRows(20);
  ByteBuffer buf;
  ASSERT_TRUE(backup_format::AppendRowBatchRecord(rows, &buf).ok());
  for (size_t keep : {size_t{4}, size_t{8}, size_t{20}, buf.size() - 1}) {
    Slice in(buf.data(), keep);
    std::vector<Row> decoded;
    EXPECT_TRUE(
        backup_format::ReadRowBatchRecord(&in, &decoded).IsCorruption())
        << "keep " << keep;
  }
}

TEST(BackupFormatTest, PayloadBitFlipFailsCrc) {
  std::vector<Row> rows = MakeRows(20);
  ByteBuffer buf;
  ASSERT_TRUE(backup_format::AppendRowBatchRecord(rows, &buf).ok());
  buf.data()[buf.size() / 2] ^= 0x10;
  Slice in = buf.AsSlice();
  std::vector<Row> decoded;
  EXPECT_TRUE(backup_format::ReadRowBatchRecord(&in, &decoded).IsCorruption());
}

TEST(BackupFormatTest, MultipleRecordsDecodeInOrder) {
  ByteBuffer buf;
  ASSERT_TRUE(
      backup_format::AppendRowBatchRecord(MakeRows(5, 100), &buf).ok());
  ASSERT_TRUE(
      backup_format::AppendRowBatchRecord(MakeRows(7, 200), &buf).ok());
  Slice in = buf.AsSlice();
  std::vector<Row> first, second;
  ASSERT_TRUE(backup_format::ReadRowBatchRecord(&in, &first).ok());
  ASSERT_TRUE(backup_format::ReadRowBatchRecord(&in, &second).ok());
  EXPECT_EQ(first.size(), 5u);
  EXPECT_EQ(second.size(), 7u);
  EXPECT_TRUE(backup_format::ReadRowBatchRecord(&in, &first).IsNotFound());
}

}  // namespace
}  // namespace scuba
