#include "disk/columnar_backup.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include "disk/backup_format.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::TempDir;

// Drives the writer the way a LeafServer does: batches to the tail, seal
// observer mirroring blocks.
class ColumnarHarness {
 public:
  explicit ColumnarHarness(const std::string& dir)
      : writer_(dir), table_("events") {
    EXPECT_TRUE(writer_.Init().ok());
    table_.SetSealObserver([this](const RowBlock& block) {
      return writer_.OnBlockSealed("events", block);
    });
  }

  void AddBatch(const std::vector<Row>& rows) {
    ASSERT_TRUE(writer_.AppendBatch("events", rows).ok());
    ASSERT_TRUE(table_.AddRows(rows, 0).ok());
  }

  void Seal() { ASSERT_TRUE(table_.SealWriteBuffer(0).ok()); }
  void Sync() { ASSERT_TRUE(writer_.SyncAll().ok()); }

  ColumnarBackupWriter& writer() { return writer_; }
  Table& table() { return table_; }

 private:
  ColumnarBackupWriter writer_;
  Table table_;
};

ColumnarBackupReader::Stats Recover(const std::string& dir, Table* out) {
  ColumnarBackupReader::Options options;
  ColumnarBackupReader::Stats stats;
  Status s =
      ColumnarBackupReader::RecoverTable(dir, "events", out, options, 0,
                                         &stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return stats;
}

TEST(ColumnarBackupTest, SealedBlocksAndTailRoundTrip) {
  TempDir dir("cb1");
  ColumnarHarness harness(dir.path());
  harness.AddBatch(MakeRows(500, 1000));
  harness.Seal();  // block 0 -> .cols, tail rotates to .tail.1
  harness.AddBatch(MakeRows(300, 2000));
  harness.Seal();  // block 1
  harness.AddBatch(MakeRows(77, 3000));  // stays in tail.2
  harness.Sync();

  Table recovered("events");
  auto stats = Recover(dir.path(), &recovered);
  EXPECT_EQ(stats.blocks_recovered, 2u);
  EXPECT_EQ(stats.tail_rows_recovered, 77u);
  EXPECT_EQ(recovered.RowCount(), 877u);
  EXPECT_EQ(recovered.num_row_blocks(), 2u);
  EXPECT_EQ(stats.stale_tails_ignored, 0u);
  EXPECT_EQ(stats.records_dropped, 0u);

  // Data integrity: decode a column from a recovered block.
  std::vector<int64_t> times;
  ASSERT_TRUE(recovered.row_block(0)
                  ->ColumnByName("time")
                  ->DecodeInt64(&times)
                  .ok());
  EXPECT_EQ(times.size(), 500u);
  EXPECT_EQ(times.front(), 1000);
}

TEST(ColumnarBackupTest, OnlyTailNoBlocks) {
  TempDir dir("cb2");
  ColumnarHarness harness(dir.path());
  harness.AddBatch(MakeRows(42, 1000));
  harness.Sync();

  Table recovered("events");
  auto stats = Recover(dir.path(), &recovered);
  EXPECT_EQ(stats.blocks_recovered, 0u);
  EXPECT_EQ(recovered.RowCount(), 42u);
}

TEST(ColumnarBackupTest, StaleTailIgnoredAfterCrashMidSeal) {
  TempDir dir("cb3");
  ColumnarHarness harness(dir.path());
  harness.AddBatch(MakeRows(500, 1000));
  harness.Seal();
  harness.AddBatch(MakeRows(100, 2000));
  harness.Sync();

  // Crash simulation: a stale tail.0 reappears (e.g. the delete in the
  // seal protocol never hit disk). Its rows are already in block 0.
  {
    auto stale = AppendableFile::Open(dir.path() + "/events.tail.0");
    ASSERT_TRUE(stale.ok());
    ByteBuffer header;
    header.AppendU32(0x4C494154);
    header.AppendU16(1);
    header.AppendU16(0);
    header.AppendU64(0);
    ByteBuffer record;
    ASSERT_TRUE(backup_format::AppendRowBatchRecord(MakeRows(500, 1000),
                                                    &record)
                    .ok());
    ASSERT_TRUE(stale->Append(header.data(), header.size()).ok());
    ASSERT_TRUE(stale->Append(record.data(), record.size()).ok());
  }

  Table recovered("events");
  auto stats = Recover(dir.path(), &recovered);
  // No duplicates: exactly block 0's 500 rows + live tail's 100.
  EXPECT_EQ(recovered.RowCount(), 600u);
  EXPECT_EQ(stats.stale_tails_ignored, 1u);
}

TEST(ColumnarBackupTest, TornColsRecordKeepsPrefix) {
  TempDir dir("cb4");
  std::string cols_path;
  {
    ColumnarHarness harness(dir.path());
    harness.AddBatch(MakeRows(500, 1000));
    harness.Seal();
    harness.AddBatch(MakeRows(500, 2000));
    harness.Seal();
    harness.Sync();
    cols_path = harness.writer().ColsPathFor("events");
  }
  // Tear the second block record.
  uint64_t size = FileSize(cols_path);
  ASSERT_EQ(truncate(cols_path.c_str(), static_cast<off_t>(size - 64)), 0);

  Table recovered("events");
  ColumnarBackupReader::Options options;
  ColumnarBackupReader::Stats stats;
  ASSERT_TRUE(ColumnarBackupReader::RecoverTable(dir.path(), "events",
                                                 &recovered, options, 0,
                                                 &stats)
                  .ok());
  EXPECT_EQ(stats.blocks_recovered, 1u);
  EXPECT_EQ(stats.records_dropped, 1u);
  EXPECT_EQ(recovered.RowCount(), 500u);
}

TEST(ColumnarBackupTest, CorruptMetaCrcDetected) {
  TempDir dir("cb5");
  std::string cols_path;
  {
    ColumnarHarness harness(dir.path());
    harness.AddBatch(MakeRows(500, 1000));
    harness.Seal();
    harness.Sync();
    cols_path = harness.writer().ColsPathFor("events");
  }
  // Flip a byte early in the record payload (the CRC-covered meta region).
  {
    int fd = ::open(cols_path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    uint8_t byte;
    ASSERT_EQ(pread(fd, &byte, 1, 16), 1);
    byte ^= 0xFF;
    ASSERT_EQ(pwrite(fd, &byte, 1, 16), 1);
    ::close(fd);
  }
  Table recovered("events");
  ColumnarBackupReader::Options options;
  ColumnarBackupReader::Stats stats;
  ASSERT_TRUE(ColumnarBackupReader::RecoverTable(dir.path(), "events",
                                                 &recovered, options, 0,
                                                 &stats)
                  .ok());
  EXPECT_EQ(stats.blocks_recovered, 0u);
  EXPECT_EQ(stats.records_dropped, 1u);
}

TEST(ColumnarBackupTest, WriterResumesBlockCountAcrossInstances) {
  TempDir dir("cb6");
  {
    ColumnarHarness harness(dir.path());
    harness.AddBatch(MakeRows(500, 1000));
    harness.Seal();
    harness.Sync();
  }
  // A new writer (new process) picks up K=1 by scanning the .cols file.
  {
    ColumnarHarness harness(dir.path());
    harness.AddBatch(MakeRows(200, 2000));
    harness.Seal();  // must become block 1, tail rotates to .tail.2
    harness.Sync();
  }
  EXPECT_TRUE(FileExists(dir.path() + "/events.tail.2"));
  EXPECT_FALSE(FileExists(dir.path() + "/events.tail.1"));

  Table recovered("events");
  auto stats = Recover(dir.path(), &recovered);
  EXPECT_EQ(stats.blocks_recovered, 2u);
  EXPECT_EQ(recovered.RowCount(), 700u);
}

TEST(ColumnarBackupTest, CountBlocks) {
  TempDir dir("cb7");
  ColumnarHarness harness(dir.path());
  for (int i = 0; i < 3; ++i) {
    harness.AddBatch(MakeRows(100, 1000 * (i + 1)));
    harness.Seal();
  }
  harness.Sync();
  auto count =
      ColumnarBackupReader::CountBlocks(harness.writer().ColsPathFor("events"));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
}

TEST(ColumnarBackupTest, RecoverLeafMultipleTables) {
  TempDir dir("cb8");
  {
    ColumnarBackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    for (const char* name : {"alpha", "beta"}) {
      Table table(name);
      table.SetSealObserver([&writer, name](const RowBlock& block) {
        return writer.OnBlockSealed(name, block);
      });
      ASSERT_TRUE(writer.AppendBatch(name, MakeRows(250, 1000)).ok());
      ASSERT_TRUE(table.AddRows(MakeRows(250, 1000), 0).ok());
      ASSERT_TRUE(table.SealWriteBuffer(0).ok());
    }
    ASSERT_TRUE(writer.SyncAll().ok());
  }
  LeafMap leaf_map;
  ColumnarBackupReader::Options options;
  ColumnarBackupReader::Stats stats;
  ASSERT_TRUE(ColumnarBackupReader::RecoverLeaf(dir.path(), &leaf_map,
                                                options, 0, &stats)
                  .ok());
  EXPECT_EQ(stats.tables_recovered, 2u);
  EXPECT_EQ(leaf_map.TotalRowCount(), 500u);
}

TEST(ColumnarBackupTest, VerifyChecksumsCatchesColumnBitFlip) {
  TempDir dir("cb9");
  std::string cols_path;
  {
    ColumnarHarness harness(dir.path());
    harness.AddBatch(MakeRows(2000, 1000));
    harness.Seal();
    harness.Sync();
    cols_path = harness.writer().ColsPathFor("events");
  }
  // Flip a byte deep in a column payload (outside the 512-byte meta CRC).
  uint64_t size = FileSize(cols_path);
  {
    int fd = ::open(cols_path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    off_t offset = static_cast<off_t>(size - 128);
    uint8_t byte;
    ASSERT_EQ(pread(fd, &byte, 1, offset), 1);
    byte ^= 0x01;
    ASSERT_EQ(pwrite(fd, &byte, 1, offset), 1);
    ::close(fd);
  }
  Table recovered("events");
  ColumnarBackupReader::Options options;
  options.verify_checksums = true;
  ColumnarBackupReader::Stats stats;
  ASSERT_TRUE(ColumnarBackupReader::RecoverTable(dir.path(), "events",
                                                 &recovered, options, 0,
                                                 &stats)
                  .ok());
  EXPECT_EQ(stats.blocks_recovered, 0u);  // RBC CRC rejected the block
  EXPECT_EQ(stats.records_dropped, 1u);
}

}  // namespace
}  // namespace scuba
