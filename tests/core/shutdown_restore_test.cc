#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "core/restore.h"
#include "core/shutdown.h"
#include "shm/leaf_metadata.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;

void FillLeaf(LeafMap* leaf_map, size_t tables = 3, size_t rows = 500) {
  for (size_t t = 0; t < tables; ++t) {
    Table* table = leaf_map->GetOrCreateTable("table_" + std::to_string(t));
    ASSERT_TRUE(
        table->AddRows(MakeRows(rows, 1000 * (t + 1), /*seed=*/t + 1), 0)
            .ok());
    ASSERT_TRUE(table->SealWriteBuffer(0).ok());
  }
}

ShutdownOptions MakeShutdownOptions(const ShmNamespace& ns,
                                    uint32_t leaf_id = 0) {
  ShutdownOptions options;
  options.namespace_prefix = ns.prefix();
  options.leaf_id = leaf_id;
  return options;
}

RestoreOptions MakeRestoreOptions(const ShmNamespace& ns,
                                  uint32_t leaf_id = 0) {
  RestoreOptions options;
  options.namespace_prefix = ns.prefix();
  options.leaf_id = leaf_id;
  return options;
}

TEST(ShutdownRestoreTest, FullCycleRoundTrips) {
  ShmNamespace ns("cycle");
  LeafMap leaf_map;
  FillLeaf(&leaf_map);
  uint64_t rows_before = leaf_map.TotalRowCount();
  uint64_t bytes_before = leaf_map.TotalMemoryBytes();

  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());
  EXPECT_EQ(leaf_map.num_tables(), 0u);  // heap emptied (Fig 6)
  EXPECT_EQ(sstats.tables_copied, 3u);
  EXPECT_EQ(sstats.bytes_copied, bytes_before);

  LeafMap restored;
  RestoreStats rstats;
  ASSERT_TRUE(
      RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats).ok());
  EXPECT_EQ(restored.TotalRowCount(), rows_before);
  EXPECT_EQ(restored.num_tables(), 3u);
  EXPECT_EQ(rstats.bytes_copied, sstats.bytes_copied);
  EXPECT_EQ(rstats.columns_restored, sstats.columns_copied);

  // Segments are consumed: a second restore finds nothing (Fig 7 deletes).
  LeafMap again;
  RestoreStats rstats2;
  EXPECT_TRUE(RestoreFromShm(&again, MakeRestoreOptions(ns), &rstats2)
                  .IsNotFound());
}

TEST(ShutdownRestoreTest, RestoredDataIsBitIdentical) {
  ShmNamespace ns("bits");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 1, 2000);
  // Capture decoded values before shutdown.
  const RowBlock* block = leaf_map.GetTable("table_0")->row_block(0);
  std::vector<int64_t> times_before;
  ASSERT_TRUE(block->ColumnByName("time")->DecodeInt64(&times_before).ok());
  std::vector<std::string> services_before;
  ASSERT_TRUE(
      block->ColumnByName("service")->DecodeString(&services_before).ok());

  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());
  LeafMap restored;
  RestoreStats rstats;
  ASSERT_TRUE(
      RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats).ok());

  const RowBlock* rblock = restored.GetTable("table_0")->row_block(0);
  std::vector<int64_t> times_after;
  ASSERT_TRUE(rblock->ColumnByName("time")->DecodeInt64(&times_after).ok());
  std::vector<std::string> services_after;
  ASSERT_TRUE(
      rblock->ColumnByName("service")->DecodeString(&services_after).ok());
  EXPECT_EQ(times_after, times_before);
  EXPECT_EQ(services_after, services_before);
}

TEST(ShutdownRestoreTest, BlockOrderPreserved) {
  ShmNamespace ns("order");
  LeafMap leaf_map;
  Table* table = leaf_map.GetOrCreateTable("t");
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(table->AddRows(MakeRows(100, 1000 * (b + 1)), 0).ok());
    ASSERT_TRUE(table->SealWriteBuffer(0).ok());
  }
  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());
  LeafMap restored;
  RestoreStats rstats;
  ASSERT_TRUE(
      RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats).ok());
  Table* rt = restored.GetTable("t");
  ASSERT_EQ(rt->num_row_blocks(), 5u);
  for (int b = 0; b < 5; ++b) {
    EXPECT_EQ(rt->row_block(b)->header().min_time,
              1000 * (b + 1) + 0)  // MakeRows starts exactly at start_time
        << "block " << b;
  }
}

TEST(ShutdownRestoreTest, UnsealedWriteBufferIsFlushedBackstop) {
  ShmNamespace ns("buf");
  LeafMap leaf_map;
  Table* table = leaf_map.GetOrCreateTable("t");
  ASSERT_TRUE(table->AddRows(MakeRows(77), 0).ok());  // stays buffered

  ShutdownStats sstats;
  ShutdownOptions options = MakeShutdownOptions(ns);
  options.now = 4242;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, options, &sstats).ok());

  LeafMap restored;
  RestoreStats rstats;
  ASSERT_TRUE(
      RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats).ok());
  EXPECT_EQ(restored.TotalRowCount(), 77u);
  EXPECT_EQ(restored.GetTable("t")->row_block(0)->header().creation_timestamp,
            4242);
}

TEST(ShutdownRestoreTest, EmptyLeafRoundTrips) {
  ShmNamespace ns("empty");
  LeafMap leaf_map;
  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());
  LeafMap restored;
  RestoreStats rstats;
  ASSERT_TRUE(
      RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats).ok());
  EXPECT_EQ(restored.num_tables(), 0u);
}

TEST(ShutdownRestoreTest, InvalidBitForcesDiskPath) {
  ShmNamespace ns("invalid");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 1, 100);
  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());

  // Clear the valid bit, simulating an interrupted previous restore.
  {
    auto meta = LeafMetadata::Open(ns.prefix(), 0);
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(meta->SetValid(false).ok());
  }

  LeafMap restored;
  RestoreStats rstats;
  Status s = RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats);
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  // Fig 7: segments are deleted so they cannot be mistaken for good state.
  EXPECT_FALSE(LeafMetadata::Exists(ns.prefix(), 0));
  EXPECT_TRUE(ShmSegment::List("/" + ns.prefix()).empty());
}

TEST(ShutdownRestoreTest, CorruptColumnFallsBackAndScrubs) {
  ShmNamespace ns("corrupt");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 1, 1000);
  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());

  // Flip a byte inside the table segment payload.
  auto names = ShmSegment::List("/" + ns.prefix());
  std::string table_seg;
  for (const auto& n : names) {
    if (n.find("_table_") != std::string::npos) table_seg = n;
  }
  ASSERT_FALSE(table_seg.empty());
  {
    auto raw = ShmSegment::Open(table_seg);
    ASSERT_TRUE(raw.ok());
    raw->data()[raw->size() / 2] ^= 0x40;
  }

  LeafMap restored;
  RestoreStats rstats;
  Status s = RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(restored.num_tables(), 0u);  // partial state discarded
  EXPECT_TRUE(ShmSegment::List("/" + ns.prefix()).empty());
}

TEST(ShutdownRestoreTest, LayoutVersionMismatchForcesDiskPath) {
  ShmNamespace ns("version");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 1, 10);
  ShutdownStats sstats;
  ASSERT_TRUE(
      ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats).ok());

  // Rewrite the version field in the metadata segment.
  {
    auto raw = ShmSegment::Open(LeafMetadata::SegmentNameForLeaf(ns.prefix(), 0));
    ASSERT_TRUE(raw.ok());
    raw->data()[4] = static_cast<uint8_t>(kShmLayoutVersion + 1);
  }
  LeafMap restored;
  RestoreStats rstats;
  Status s = RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats);
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  EXPECT_TRUE(ShmSegment::List("/" + ns.prefix()).empty());
}

TEST(ShutdownRestoreTest, FootprintStaysFlatWithChunkedCopy) {
  ShmNamespace ns("flat");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 2, 5000);
  uint64_t live_bytes = leaf_map.TotalMemoryBytes();

  // Shutdown frees per column, so its overshoot is bounded by one column;
  // restore truncates the segment per row BLOCK (Fig 7), so its overshoot
  // is bounded by one block.
  uint64_t max_column = 0;
  uint64_t max_block = 0;
  for (const std::string& name : leaf_map.TableNames()) {
    Table* table = leaf_map.GetTable(name);
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      const RowBlock* block = table->row_block(b);
      max_block = std::max(max_block, block->MemoryBytes());
      for (size_t c = 0; c < block->num_columns(); ++c) {
        max_column = std::max(max_column, block->column(c)->total_bytes());
      }
    }
  }

  FootprintTracker tracker;
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, MakeShutdownOptions(ns), &sstats,
                            &tracker)
                  .ok());
  // Peak <= live + one column + small per-segment overhead.
  EXPECT_LE(tracker.peak(), live_bytes + max_column + 64 * 1024);

  FootprintTracker restore_tracker;
  LeafMap restored;
  RestoreStats rstats;
  ASSERT_TRUE(RestoreFromShm(&restored, MakeRestoreOptions(ns), &rstats,
                             &restore_tracker)
                  .ok());
  // Slack: the 64 KiB metadata segment + per-segment headers/alignment.
  EXPECT_LE(restore_tracker.peak(), live_bytes + max_block + 160 * 1024);
}

TEST(ShutdownRestoreTest, NaiveCopyDoublesFootprint) {
  ShmNamespace ns("naive");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 2, 5000);
  uint64_t live_bytes = leaf_map.TotalMemoryBytes();

  FootprintTracker tracker;
  ShutdownOptions options = MakeShutdownOptions(ns);
  options.free_incrementally = false;
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, options, &sstats, &tracker).ok());
  // Peak ~= 2x live: heap copy + shm copy coexist.
  EXPECT_GE(tracker.peak(), live_bytes + live_bytes * 9 / 10);
}

TEST(ShutdownRestoreTest, ShutdownTwiceFails) {
  ShmNamespace ns("twice");
  LeafMap a;
  FillLeaf(&a, 1, 10);
  ShutdownStats stats;
  ASSERT_TRUE(ShutdownToShm(&a, MakeShutdownOptions(ns), &stats).ok());
  LeafMap b;
  FillLeaf(&b, 1, 10);
  ShutdownStats stats2;
  // The metadata segment already exists: AlreadyExists.
  EXPECT_TRUE(ShutdownToShm(&b, MakeShutdownOptions(ns), &stats2)
                  .IsAlreadyExists());
}

// The real thing: the state crosses a PROCESS boundary. The child fills a
// leaf and copies it to shared memory; the parent (a different process)
// restores it.
TEST(ShutdownRestoreTest, SurvivesProcessBoundary) {
  ShmNamespace ns("proc");

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: build state, hand it to shm, exit without cleanup.
    LeafMap leaf_map;
    Table* table = leaf_map.GetOrCreateTable("events");
    if (!table->AddRows(MakeRows(1234, 5000), 0).ok()) _exit(2);
    if (!table->SealWriteBuffer(0).ok()) _exit(3);
    ShutdownOptions options;
    options.namespace_prefix = ns.prefix();
    options.leaf_id = 9;
    ShutdownStats stats;
    if (!ShutdownToShm(&leaf_map, options, &stats).ok()) _exit(4);
    _exit(0);
  }

  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  // Parent: the child is gone; its memory lives on.
  LeafMap restored;
  RestoreOptions options;
  options.namespace_prefix = ns.prefix();
  options.leaf_id = 9;
  RestoreStats rstats;
  ASSERT_TRUE(RestoreFromShm(&restored, options, &rstats).ok());
  ASSERT_NE(restored.GetTable("events"), nullptr);
  EXPECT_EQ(restored.GetTable("events")->RowCount(), 1234u);
}

}  // namespace
}  // namespace scuba
