// Golden invariant, property-style: for randomized workloads, query
// results are IDENTICAL before and after every recovery path —
//   (a) shutdown-to-shm -> restore-from-shm            (planned upgrade)
//   (b) crash -> row-major disk recovery               (paper's format)
//   (c) crash -> columnar disk recovery                (§6's format)
// Aggregations accumulate in row order, which all three paths preserve,
// so even floating-point sums must match bit for bit.

#include <gtest/gtest.h>

#include <memory>

#include "ingest/row_generator.h"
#include "query/executor.h"
#include "server/leaf_server.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;
using testing_util::TempDir;

// The query battery every scenario is checked against.
std::vector<Query> QueryBattery() {
  std::vector<Query> queries;
  {
    Query q;
    q.table = "service_logs";
    q.aggregates = {Count(), Sum("bytes_out"), Min("latency_ms"),
                    Max("latency_ms"), Avg("latency_ms")};
    queries.push_back(q);
  }
  {
    Query q;
    q.table = "service_logs";
    q.group_by = {"service"};
    q.aggregates = {Count(), Sum("latency_ms")};
    queries.push_back(q);
  }
  {
    Query q;
    q.table = "service_logs";
    q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
    q.group_by = {"endpoint"};
    q.aggregates = {Count(), P99("latency_ms")};
    queries.push_back(q);
  }
  {
    Query q;
    q.table = "service_logs";
    q.time_bucket_seconds = 7;
    q.aggregates = {Count(), Avg("bytes_out")};
    queries.push_back(q);
  }
  return queries;
}

std::vector<std::vector<ResultRow>> Snapshot(LeafServer* leaf) {
  std::vector<std::vector<ResultRow>> results;
  for (const Query& q : QueryBattery()) {
    auto result = leaf->ExecuteQuery(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(result->Finalize(q.aggregates));
  }
  return results;
}

void ExpectIdentical(const std::vector<std::vector<ResultRow>>& a,
                     const std::vector<std::vector<ResultRow>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
    for (size_t r = 0; r < a[q].size(); ++r) {
      EXPECT_TRUE(a[q][r].group_key == b[q][r].group_key)
          << "query " << q << " row " << r;
      ASSERT_EQ(a[q][r].aggregates.size(), b[q][r].aggregates.size());
      for (size_t c = 0; c < a[q][r].aggregates.size(); ++c) {
        EXPECT_DOUBLE_EQ(a[q][r].aggregates[c], b[q][r].aggregates[c])
            << "query " << q << " row " << r << " agg " << c;
      }
    }
  }
}

struct Scenario {
  const char* name;
  BackupFormatKind format;
  bool crash;  // false = clean shm handoff
  RecoverySource expected_source;
};

class RoundTripPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

const Scenario kScenarios[] = {
    {"shm", BackupFormatKind::kRowMajor, false,
     RecoverySource::kSharedMemory},
    {"rowmajor_disk", BackupFormatKind::kRowMajor, true,
     RecoverySource::kDisk},
    {"columnar_disk", BackupFormatKind::kColumnar, true,
     RecoverySource::kDisk},
};

TEST_P(RoundTripPropertyTest, QueriesIdenticalAcrossRecovery) {
  auto [seed, scenario_index] = GetParam();
  const Scenario& scenario = kScenarios[scenario_index];

  ShmNamespace ns("prop" + std::to_string(seed) + "_" +
                  std::to_string(scenario_index));
  TempDir dir("prop" + std::to_string(seed) + "_" +
              std::to_string(scenario_index));

  LeafServerConfig config;
  config.leaf_id = 0;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path() + "/leaf";
  config.backup_format = scenario.format;

  std::vector<std::vector<ResultRow>> before;
  {
    LeafServer leaf(config);
    ASSERT_TRUE(leaf.Start().ok());
    RowGeneratorConfig gconfig;
    gconfig.seed = seed;
    RowGenerator gen(gconfig);
    Random random(seed * 31 + 7);
    // Random batch sizes; total large enough to seal blocks sometimes.
    size_t remaining = 20000 + random.Uniform(80000);
    while (remaining > 0) {
      size_t n = std::min<size_t>(remaining, 1 + random.Uniform(9000));
      ASSERT_TRUE(leaf.AddRows("service_logs", gen.NextBatch(n)).ok());
      remaining -= n;
    }
    before = Snapshot(&leaf);

    if (scenario.crash) {
      leaf.Crash();
    } else {
      ShutdownStats stats;
      ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
    }
  }

  LeafServer recovered(config);
  auto started = recovered.Start();
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  ASSERT_EQ(started->source, scenario.expected_source) << scenario.name;

  ExpectIdentical(before, Snapshot(&recovered));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScenarios, RoundTripPropertyTest,
    ::testing::Combine(::testing::Values(1u, 17u, 99u),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int>>& info) {
      return std::string(kScenarios[std::get<1>(info.param)].name) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace scuba
