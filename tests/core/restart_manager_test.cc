#include "core/restart_manager.h"

#include <gtest/gtest.h>

#include "disk/backup_writer.h"
#include "shm/leaf_metadata.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

RestartConfig MakeConfig(const ShmNamespace& ns, const TempDir& dir,
                         uint32_t leaf_id = 0) {
  RestartConfig config;
  config.namespace_prefix = ns.prefix();
  config.leaf_id = leaf_id;
  config.backup_dir = dir.path();
  return config;
}

void FillAndBackup(LeafMap* leaf_map, const std::string& backup_dir,
                   size_t rows = 300) {
  BackupWriter writer(backup_dir);
  ASSERT_TRUE(writer.Init().ok());
  std::vector<Row> data = MakeRows(rows, 1000);
  ASSERT_TRUE(writer.AppendBatch("events", data).ok());
  ASSERT_TRUE(writer.SyncAll().ok());
  Table* table = leaf_map->GetOrCreateTable("events");
  ASSERT_TRUE(table->AddRows(data, 0).ok());
  ASSERT_TRUE(table->SealWriteBuffer(0).ok());
}

TEST(RestartManagerTest, FreshLeafWithNothingToRecover) {
  ShmNamespace ns("rm1");
  TempDir dir("rm1");
  RestartManager manager(MakeConfig(ns, dir));
  LeafMap leaf_map;
  auto result = manager.Recover(&leaf_map, 2000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->source, RecoverySource::kFresh);
  EXPECT_EQ(leaf_map.num_tables(), 0u);
}

TEST(RestartManagerTest, ShmPathPreferred) {
  ShmNamespace ns("rm2");
  TempDir dir("rm2");
  RestartManager manager(MakeConfig(ns, dir));

  LeafMap leaf_map;
  FillAndBackup(&leaf_map, dir.path());
  ShutdownStats sstats;
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());

  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->source, RecoverySource::kSharedMemory);
  EXPECT_EQ(recovered.TotalRowCount(), 300u);
  EXPECT_GT(result->shm_stats.bytes_copied, 0u);
}

TEST(RestartManagerTest, FallsBackToDiskWhenShmInvalid) {
  ShmNamespace ns("rm3");
  TempDir dir("rm3");
  RestartManager manager(MakeConfig(ns, dir));

  LeafMap leaf_map;
  FillAndBackup(&leaf_map, dir.path());
  ShutdownStats sstats;
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());

  // Crash simulation: valid bit cleared.
  {
    auto meta = LeafMetadata::Open(ns.prefix(), 0);
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(meta->SetValid(false).ok());
  }

  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->source, RecoverySource::kDisk);
  EXPECT_TRUE(result->shm_attempt_status.IsFailedPrecondition());
  EXPECT_EQ(recovered.TotalRowCount(), 300u);  // same data, slow path
  EXPECT_GT(result->disk_stats.translate_micros, 0);
}

TEST(RestartManagerTest, DiskPathWhenNoShmAtAll) {
  ShmNamespace ns("rm4");
  TempDir dir("rm4");
  {
    LeafMap scratch;
    FillAndBackup(&scratch, dir.path());
  }
  RestartManager manager(MakeConfig(ns, dir));
  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source, RecoverySource::kDisk);
  EXPECT_TRUE(result->shm_attempt_status.IsNotFound());
  EXPECT_EQ(recovered.TotalRowCount(), 300u);
}

TEST(RestartManagerTest, MemoryRecoveryDisabledScrubsAndUsesDisk) {
  ShmNamespace ns("rm5");
  TempDir dir("rm5");
  RestartConfig config = MakeConfig(ns, dir);

  {
    RestartManager manager(config);
    LeafMap leaf_map;
    FillAndBackup(&leaf_map, dir.path());
    ShutdownStats sstats;
    ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());
  }
  ASSERT_FALSE(ShmSegment::List("/" + ns.prefix()).empty());

  // Fig 5b "memory recovery disabled": disk path + segments freed.
  config.memory_recovery_enabled = false;
  RestartManager manager(config);
  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source, RecoverySource::kDisk);
  EXPECT_EQ(recovered.TotalRowCount(), 300u);
  EXPECT_TRUE(ShmSegment::List("/" + ns.prefix()).empty());
}

TEST(RestartManagerTest, RecoverRequiresEmptyLeafMap) {
  ShmNamespace ns("rm6");
  TempDir dir("rm6");
  RestartManager manager(MakeConfig(ns, dir));
  LeafMap leaf_map;
  leaf_map.GetOrCreateTable("already_here");
  EXPECT_TRUE(
      manager.Recover(&leaf_map, 0).status().IsFailedPrecondition());
}

TEST(RestartManagerTest, ShutdownScrubsStaleSegments) {
  ShmNamespace ns("rm7");
  TempDir dir("rm7");
  RestartManager manager(MakeConfig(ns, dir));

  // A stale metadata segment from a previous kill.
  ASSERT_TRUE(LeafMetadata::Create(ns.prefix(), 0).ok());

  LeafMap leaf_map;
  FillAndBackup(&leaf_map, dir.path());
  ShutdownStats sstats;
  // Shutdown succeeds despite the leftover (it scrubs first).
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());

  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source, RecoverySource::kSharedMemory);
}

TEST(RestartManagerTest, RoundTripsThroughBothPathsAgree) {
  ShmNamespace ns("rm8");
  TempDir dir("rm8");
  RestartManager manager(MakeConfig(ns, dir));

  LeafMap leaf_map;
  FillAndBackup(&leaf_map, dir.path(), 1000);
  ShutdownStats sstats;
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());

  LeafMap via_shm;
  auto shm_result = manager.Recover(&via_shm, 2000);
  ASSERT_TRUE(shm_result.ok());
  ASSERT_EQ(shm_result->source, RecoverySource::kSharedMemory);

  LeafMap via_disk;
  auto disk_result = manager.Recover(&via_disk, 2000);
  ASSERT_TRUE(disk_result.ok());
  ASSERT_EQ(disk_result->source, RecoverySource::kDisk);

  // Both recoveries see the same logical data.
  EXPECT_EQ(via_shm.TotalRowCount(), via_disk.TotalRowCount());
  EXPECT_EQ(via_shm.TableNames(), via_disk.TableNames());
}

}  // namespace
}  // namespace scuba
