#include "core/state_machine.h"

#include <gtest/gtest.h>

#include <vector>

namespace scuba {
namespace {

const std::vector<LeafState> kAllLeafStates = {
    LeafState::kInit,  LeafState::kMemoryRecovery, LeafState::kDiskRecovery,
    LeafState::kAlive, LeafState::kCopyToShm,      LeafState::kExit};

const std::vector<TableState> kAllTableStates = {
    TableState::kInit,    TableState::kMemoryRecovery,
    TableState::kDiskRecovery, TableState::kAlive,
    TableState::kPrepare, TableState::kCopyToShm,
    TableState::kDone};

TEST(LeafStateMachineTest, BackupPathFig5a) {
  LeafStateMachine sm;
  ASSERT_TRUE(sm.Transition(LeafState::kAlive).ok());
  ASSERT_TRUE(sm.Transition(LeafState::kCopyToShm).ok());
  ASSERT_TRUE(sm.Transition(LeafState::kExit).ok());
  EXPECT_EQ(sm.state(), LeafState::kExit);
}

TEST(LeafStateMachineTest, RestorePathsFig5b) {
  {
    LeafStateMachine sm;
    ASSERT_TRUE(sm.Transition(LeafState::kMemoryRecovery).ok());
    ASSERT_TRUE(sm.Transition(LeafState::kAlive).ok());
  }
  {
    LeafStateMachine sm;
    ASSERT_TRUE(sm.Transition(LeafState::kDiskRecovery).ok());
    ASSERT_TRUE(sm.Transition(LeafState::kAlive).ok());
  }
  {
    // Exception during memory recovery falls back to disk.
    LeafStateMachine sm;
    ASSERT_TRUE(sm.Transition(LeafState::kMemoryRecovery).ok());
    ASSERT_TRUE(sm.Transition(LeafState::kDiskRecovery).ok());
    ASSERT_TRUE(sm.Transition(LeafState::kAlive).ok());
  }
}

TEST(LeafStateMachineTest, IllegalTransitionsRejected) {
  LeafStateMachine sm;
  EXPECT_TRUE(sm.Transition(LeafState::kCopyToShm).IsFailedPrecondition());
  EXPECT_TRUE(sm.Transition(LeafState::kExit).IsFailedPrecondition());
  ASSERT_TRUE(sm.Transition(LeafState::kAlive).ok());
  EXPECT_TRUE(sm.Transition(LeafState::kInit).IsFailedPrecondition());
  EXPECT_TRUE(
      sm.Transition(LeafState::kMemoryRecovery).IsFailedPrecondition());
  // Failed transition leaves the state unchanged.
  EXPECT_EQ(sm.state(), LeafState::kAlive);
}

TEST(LeafStateMachineTest, ExitIsTerminal) {
  for (LeafState to : kAllLeafStates) {
    EXPECT_FALSE(LeafStateMachine::IsAllowed(LeafState::kExit, to));
  }
}

// Property: the full transition relation matches Fig 5a/5b exactly.
TEST(LeafStateMachineTest, ExactTransitionRelation) {
  auto expect_allowed = [](LeafState from, LeafState to) {
    return (from == LeafState::kInit &&
            (to == LeafState::kMemoryRecovery ||
             to == LeafState::kDiskRecovery || to == LeafState::kAlive)) ||
           (from == LeafState::kMemoryRecovery &&
            (to == LeafState::kAlive || to == LeafState::kDiskRecovery)) ||
           (from == LeafState::kDiskRecovery && to == LeafState::kAlive) ||
           (from == LeafState::kAlive && to == LeafState::kCopyToShm) ||
           (from == LeafState::kCopyToShm && to == LeafState::kExit);
  };
  for (LeafState from : kAllLeafStates) {
    for (LeafState to : kAllLeafStates) {
      EXPECT_EQ(LeafStateMachine::IsAllowed(from, to),
                expect_allowed(from, to))
          << LeafStateName(from) << " -> " << LeafStateName(to);
    }
  }
}

TEST(LeafStateMachineTest, ActionGatingPerPaper) {
  LeafStateMachine sm;
  // INIT: nothing.
  EXPECT_FALSE(sm.CanAcceptAdds());
  EXPECT_FALSE(sm.CanAcceptQueries());
  EXPECT_FALSE(sm.CanDeleteExpired());

  // MEMORY_RECOVERY: "no add data requests or queries are accepted" (§4.3).
  ASSERT_TRUE(sm.Transition(LeafState::kMemoryRecovery).ok());
  EXPECT_FALSE(sm.CanAcceptAdds());
  EXPECT_FALSE(sm.CanAcceptQueries());

  // DISK_RECOVERY: "both add and query requests are processed" (§4.3).
  ASSERT_TRUE(sm.Transition(LeafState::kDiskRecovery).ok());
  EXPECT_TRUE(sm.CanAcceptAdds());
  EXPECT_TRUE(sm.CanAcceptQueries());
  EXPECT_FALSE(sm.CanDeleteExpired());

  // ALIVE: everything.
  ASSERT_TRUE(sm.Transition(LeafState::kAlive).ok());
  EXPECT_TRUE(sm.CanAcceptAdds());
  EXPECT_TRUE(sm.CanAcceptQueries());
  EXPECT_TRUE(sm.CanDeleteExpired());

  // COPY_TO_SHM: nothing.
  ASSERT_TRUE(sm.Transition(LeafState::kCopyToShm).ok());
  EXPECT_FALSE(sm.CanAcceptAdds());
  EXPECT_FALSE(sm.CanAcceptQueries());
  EXPECT_FALSE(sm.CanDeleteExpired());
}

TEST(TableStateMachineTest, BackupPathFig5cHasPrepare) {
  TableStateMachine sm;
  ASSERT_TRUE(sm.Transition(TableState::kAlive).ok());
  // A table cannot jump to COPY_TO_SHM without PREPARE.
  EXPECT_TRUE(sm.Transition(TableState::kCopyToShm).IsFailedPrecondition());
  ASSERT_TRUE(sm.Transition(TableState::kPrepare).ok());
  ASSERT_TRUE(sm.Transition(TableState::kCopyToShm).ok());
  ASSERT_TRUE(sm.Transition(TableState::kDone).ok());
}

TEST(TableStateMachineTest, PrepareKillsDeletes) {
  TableStateMachine sm;
  ASSERT_TRUE(sm.Transition(TableState::kAlive).ok());
  EXPECT_TRUE(sm.CanDeleteExpired());
  ASSERT_TRUE(sm.Transition(TableState::kPrepare).ok());
  // "Scuba stops deleting expired table data once shutdown starts."
  EXPECT_FALSE(sm.CanDeleteExpired());
  EXPECT_FALSE(sm.CanAcceptAdds());
  EXPECT_FALSE(sm.CanAcceptQueries());
}

TEST(TableStateMachineTest, RestorePathMirrorsLeaf) {
  TableStateMachine sm;
  ASSERT_TRUE(sm.Transition(TableState::kMemoryRecovery).ok());
  ASSERT_TRUE(sm.Transition(TableState::kDiskRecovery).ok());
  ASSERT_TRUE(sm.Transition(TableState::kAlive).ok());
}

TEST(TableStateMachineTest, DoneIsTerminal) {
  for (TableState to : kAllTableStates) {
    EXPECT_FALSE(TableStateMachine::IsAllowed(TableState::kDone, to));
  }
}

TEST(StateNamesTest, AllNamed) {
  for (LeafState s : kAllLeafStates) {
    EXPECT_NE(LeafStateName(s), "UNKNOWN");
  }
  for (TableState s : kAllTableStates) {
    EXPECT_NE(TableStateName(s), "UNKNOWN");
  }
}

}  // namespace
}  // namespace scuba
