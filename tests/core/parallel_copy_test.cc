// Tests for the parallel copy engine: equivalence with the serial Fig 6/7
// loops, the widened §4.4 footprint budget, and failure fallback under
// concurrency.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/footprint.h"
#include "core/restore.h"
#include "core/shutdown.h"
#include "shm/leaf_metadata.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;

// Several tables x several sealed blocks, deterministic contents.
void FillLeaf(LeafMap* leaf_map, size_t tables = 3, size_t blocks = 4,
              size_t rows = 400) {
  for (size_t t = 0; t < tables; ++t) {
    Table* table = leaf_map->GetOrCreateTable("table_" + std::to_string(t));
    for (size_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(table
                      ->AddRows(MakeRows(rows, 1000 * (t + 1) + 100 * b,
                                         /*seed=*/t * 31 + b + 1),
                                0)
                      .ok());
      ASSERT_TRUE(table->SealWriteBuffer(0).ok());
    }
  }
}

struct LeafShape {
  uint64_t live_bytes = 0;
  uint64_t max_column_bytes = 0;
  uint64_t max_block_bytes = 0;
};

LeafShape ShapeOf(const LeafMap& leaf_map) {
  LeafShape shape;
  shape.live_bytes = leaf_map.TotalMemoryBytes();
  for (const std::string& name : leaf_map.TableNames()) {
    const Table* table = leaf_map.GetTable(name);
    for (size_t b = 0; b < table->num_row_blocks(); ++b) {
      const RowBlock* block = table->row_block(b);
      if (block == nullptr) continue;
      uint64_t payload = 0;
      for (size_t c = 0; c < block->num_columns(); ++c) {
        uint64_t bytes = block->column(c)->total_bytes();
        shape.max_column_bytes = std::max(shape.max_column_bytes, bytes);
        payload += bytes;
      }
      shape.max_block_bytes = std::max(shape.max_block_bytes, payload);
    }
  }
  return shape;
}

// Every raw RBC buffer of `a` byte-equal to its counterpart in `b`.
void ExpectLeafMapsByteIdentical(const LeafMap& a, const LeafMap& b) {
  ASSERT_EQ(a.TableNames(), b.TableNames());
  for (const std::string& name : a.TableNames()) {
    const Table* ta = a.GetTable(name);
    const Table* tb = b.GetTable(name);
    ASSERT_EQ(ta->num_row_blocks(), tb->num_row_blocks()) << name;
    for (size_t blk = 0; blk < ta->num_row_blocks(); ++blk) {
      const RowBlock* ba = ta->row_block(blk);
      const RowBlock* bb = tb->row_block(blk);
      ASSERT_EQ(ba->num_columns(), bb->num_columns()) << name << "/" << blk;
      for (size_t c = 0; c < ba->num_columns(); ++c) {
        Slice sa = ba->column(c)->AsSlice();
        Slice sb = bb->column(c)->AsSlice();
        ASSERT_EQ(sa.size(), sb.size()) << name << "/" << blk << "/" << c;
        EXPECT_EQ(0, std::memcmp(sa.data(), sb.data(), sa.size()))
            << name << "/" << blk << "/" << c;
      }
    }
  }
}

TEST(ParallelCopyTest, ParallelRoundTripMatchesSerialByteForByte) {
  ShmNamespace ns_serial("pc_ser");
  ShmNamespace ns_parallel("pc_par");

  LeafMap leaf_serial;
  LeafMap leaf_parallel;
  FillLeaf(&leaf_serial);
  FillLeaf(&leaf_parallel);
  uint64_t bytes_before = leaf_serial.TotalMemoryBytes();
  ASSERT_EQ(bytes_before, leaf_parallel.TotalMemoryBytes());

  ShutdownOptions so_serial;
  so_serial.namespace_prefix = ns_serial.prefix();
  so_serial.num_copy_threads = 1;
  ShutdownStats ss_serial;
  ASSERT_TRUE(ShutdownToShm(&leaf_serial, so_serial, &ss_serial).ok());

  ShutdownOptions so_parallel;
  so_parallel.namespace_prefix = ns_parallel.prefix();
  so_parallel.num_copy_threads = 4;
  ShutdownStats ss_parallel;
  ASSERT_TRUE(ShutdownToShm(&leaf_parallel, so_parallel, &ss_parallel).ok());

  EXPECT_EQ(ss_parallel.bytes_copied, ss_serial.bytes_copied);
  EXPECT_EQ(ss_parallel.columns_copied, ss_serial.columns_copied);
  EXPECT_EQ(ss_parallel.row_blocks_copied, ss_serial.row_blocks_copied);
  EXPECT_EQ(ss_parallel.tables_copied, ss_serial.tables_copied);
  EXPECT_EQ(leaf_parallel.num_tables(), 0u);  // heap emptied either way

  // Restore with checksums ON so every copied column is verified.
  RestoreOptions ro_serial;
  ro_serial.namespace_prefix = ns_serial.prefix();
  ro_serial.num_copy_threads = 1;
  ro_serial.verify_checksums = true;
  RestoreStats rs_serial;
  LeafMap restored_serial;
  ASSERT_TRUE(RestoreFromShm(&restored_serial, ro_serial, &rs_serial).ok());

  RestoreOptions ro_parallel;
  ro_parallel.namespace_prefix = ns_parallel.prefix();
  ro_parallel.num_copy_threads = 4;
  ro_parallel.verify_checksums = true;
  RestoreStats rs_parallel;
  LeafMap restored_parallel;
  ASSERT_TRUE(
      RestoreFromShm(&restored_parallel, ro_parallel, &rs_parallel).ok());

  EXPECT_EQ(rs_parallel.bytes_copied, rs_serial.bytes_copied);
  EXPECT_EQ(rs_parallel.bytes_copied, bytes_before);
  EXPECT_EQ(rs_parallel.row_blocks_restored, rs_serial.row_blocks_restored);
  ExpectLeafMapsByteIdentical(restored_serial, restored_parallel);

  // Both namespaces fully consumed.
  EXPECT_TRUE(ShmSegment::List("/" + ns_serial.prefix()).empty());
  EXPECT_TRUE(ShmSegment::List("/" + ns_parallel.prefix()).empty());
}

TEST(ParallelCopyTest, ParallelShutdownSurvivesSegmentGrowth) {
  ShmNamespace ns("pc_grow");
  LeafMap leaf_map;
  LeafMap reference;
  FillLeaf(&leaf_map);
  FillLeaf(&reference);
  uint64_t bytes_before = leaf_map.TotalMemoryBytes();

  // Deliberately worthless size estimate: every table segment must Grow
  // (remap, possibly moving the mapping) many times during reservation
  // while earlier tables' copies are already in flight. A table's copy
  // tasks must therefore not start until its layout is fully reserved —
  // this is the regression test for submitting them too early.
  ShutdownOptions soptions;
  soptions.namespace_prefix = ns.prefix();
  soptions.num_copy_threads = 4;
  soptions.size_estimate_factor = 0.0;
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, soptions, &sstats).ok());
  EXPECT_GT(sstats.segment_grow_count.load(), 0u);

  RestoreOptions roptions;
  roptions.namespace_prefix = ns.prefix();
  roptions.num_copy_threads = 4;
  roptions.verify_checksums = true;
  RestoreStats rstats;
  LeafMap restored;
  ASSERT_TRUE(RestoreFromShm(&restored, roptions, &rstats).ok());
  EXPECT_EQ(rstats.bytes_copied, bytes_before);
  ExpectLeafMapsByteIdentical(reference, restored);
}

TEST(ParallelCopyTest, FootprintStaysWithinBudgetBound) {
  ShmNamespace ns("pc_foot");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 2, 6, 600);
  LeafShape shape = ShapeOf(leaf_map);
  const uint64_t kSlack = 256 * 1024;  // headers + segment meta

  // Shutdown: budget = explicit cap; overshoot above the live data must
  // stay within it (§4.4 widened to the in-flight budget).
  ShutdownOptions soptions;
  soptions.namespace_prefix = ns.prefix();
  soptions.num_copy_threads = 4;
  soptions.max_in_flight_bytes = 2 * shape.max_column_bytes;
  FootprintTracker stracker;
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, soptions, &sstats, &stracker).ok());
  EXPECT_LE(stracker.peak(),
            shape.live_bytes + soptions.max_in_flight_bytes + kSlack);

  uint64_t shm_bytes = TotalShmBytes("/" + ns.prefix());
  ASSERT_GT(shm_bytes, 0u);

  // Restore: the budget bounds heap bytes whose shm pages have not been
  // truncated yet, so peak <= initial shm size + budget (+ slack).
  RestoreOptions roptions;
  roptions.namespace_prefix = ns.prefix();
  roptions.num_copy_threads = 4;
  roptions.max_in_flight_bytes = 2 * shape.max_block_bytes;
  FootprintTracker rtracker;
  RestoreStats rstats;
  LeafMap restored;
  ASSERT_TRUE(RestoreFromShm(&restored, roptions, &rstats, &rtracker).ok());
  EXPECT_LE(rtracker.peak(),
            shm_bytes + roptions.max_in_flight_bytes + kSlack);
  EXPECT_EQ(rstats.bytes_copied, sstats.bytes_copied);
}

TEST(ParallelCopyTest, CorruptColumnMidParallelRestoreFallsBack) {
  ShmNamespace ns("pc_corrupt");
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 2, 4, 500);
  ShutdownOptions soptions;
  soptions.namespace_prefix = ns.prefix();
  soptions.num_copy_threads = 4;
  ShutdownStats sstats;
  ASSERT_TRUE(ShutdownToShm(&leaf_map, soptions, &sstats).ok());

  // Flip a byte inside one table segment's payload.
  std::string table_seg;
  for (const auto& n : ShmSegment::List("/" + ns.prefix())) {
    if (n.find("_table_") != std::string::npos) table_seg = n;
  }
  ASSERT_FALSE(table_seg.empty());
  {
    auto raw = ShmSegment::Open(table_seg);
    ASSERT_TRUE(raw.ok());
    raw->data()[raw->size() / 2] ^= 0x40;
  }

  RestoreOptions roptions;
  roptions.namespace_prefix = ns.prefix();
  roptions.num_copy_threads = 4;
  roptions.verify_checksums = true;
  RestoreStats rstats;
  LeafMap restored;
  Status s = RestoreFromShm(&restored, roptions, &rstats);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // Partial state discarded, so the caller's disk recovery starts clean.
  EXPECT_EQ(restored.num_tables(), 0u);
  // Every segment scrubbed, valid bit gone with the metadata.
  EXPECT_TRUE(ShmSegment::List("/" + ns.prefix()).empty());
}

}  // namespace
}  // namespace scuba
