// Phase-timeline observability of the restart pipeline: a full
// shutdown -> restore round trip must produce Fig 6/7 span timelines whose
// roots cover >95% of the measured wall time, and the RestartManager must
// leave its JSON report artifacts behind.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/restart_manager.h"
#include "core/restore.h"
#include "core/shutdown.h"
#include "disk/backup_writer.h"
#include "disk/file.h"
#include "obs/trace.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

// The coverage tests need enough data that the copy phases dominate the
// fixed inter-span gaps (a few tens of microseconds), hence the large
// default. Manager tests that only check artifacts use a smaller fill.
void FillLeaf(LeafMap* leaf_map, size_t rows = 200000) {
  Table* table = leaf_map->GetOrCreateTable("events");
  ASSERT_TRUE(table->AddRows(MakeRows(rows, 1000), 0).ok());
  ASSERT_TRUE(table->SealWriteBuffer(0).ok());
}

std::set<std::string> SpanNames(const std::vector<obs::TraceSpan>& spans) {
  std::set<std::string> names;
  for (const obs::TraceSpan& s : spans) names.insert(s.name);
  return names;
}

// One traced round trip; returns true if both timelines cover >95% of
// their measured wall time. The deterministic checks (span names, row
// count, byte attribution) assert unconditionally; the coverage check is
// returned so the caller can retry — on a loaded 1-core CI box a
// scheduler preemption landing exactly between two spans can poke a hole
// in any threshold, and one clean pass proves the instrumentation covers
// the operation.
bool TracedRoundTripCovers(ShmNamespace* ns, size_t num_copy_threads,
                           std::string* dump) {
  LeafMap leaf_map;
  FillLeaf(&leaf_map);

  // Shutdown with a tracer attached: Fig 6 phases, back to back.
  obs::PhaseTracer shutdown_tracer;
  ShutdownOptions soptions;
  soptions.namespace_prefix = ns->prefix();
  soptions.num_copy_threads = num_copy_threads;
  soptions.tracer = &shutdown_tracer;
  ShutdownStats sstats;
  EXPECT_TRUE(ShutdownToShm(&leaf_map, soptions, &sstats).ok());
  int64_t shutdown_wall = shutdown_tracer.ElapsedMicros();

  std::set<std::string> names = SpanNames(shutdown_tracer.Snapshot());
  EXPECT_TRUE(names.count("seal_buffers"));
  EXPECT_TRUE(names.count("create_metadata"));
  EXPECT_TRUE(names.count("copy_out"));
  EXPECT_TRUE(names.count("set_valid"));
  if (num_copy_threads > 1) {
    // Parallel mode adds the drain phase.
    EXPECT_TRUE(names.count("drain"));
  } else {
    EXPECT_TRUE(names.count("table:events"));
  }

  // Restore with a tracer: Fig 7 phases.
  obs::PhaseTracer restore_tracer;
  RestoreOptions roptions;
  roptions.namespace_prefix = ns->prefix();
  roptions.num_copy_threads = num_copy_threads;
  roptions.tracer = &restore_tracer;
  RestoreStats rstats;
  LeafMap restored;
  EXPECT_TRUE(RestoreFromShm(&restored, roptions, &rstats).ok());
  int64_t restore_wall = restore_tracer.ElapsedMicros();
  EXPECT_EQ(restored.TotalRowCount(), 200000u);

  names = SpanNames(restore_tracer.Snapshot());
  EXPECT_TRUE(names.count("open_metadata"));
  EXPECT_TRUE(names.count("copy_in"));
  EXPECT_TRUE(names.count("destroy_metadata"));

  // The copy_in span carries the bytes moved.
  for (const obs::TraceSpan& s : restore_tracer.Snapshot()) {
    if (s.name == "copy_in") {
      EXPECT_EQ(s.bytes, rstats.bytes_copied.load());
    }
  }

  *dump = shutdown_tracer.ToJson() + "\n" + restore_tracer.ToJson();
  EXPECT_GT(shutdown_wall, 0);
  EXPECT_GT(restore_wall, 0);
  // The named root phases must cover >95% of the measured wall time.
  return static_cast<double>(shutdown_tracer.RootCoverageMicros()) >
             0.95 * static_cast<double>(shutdown_wall) &&
         static_cast<double>(restore_tracer.RootCoverageMicros()) >
             0.95 * static_cast<double>(restore_wall);
}

TEST(RestartTraceTest, RoundTripTimelineCoversWallTime) {
  ShmNamespace ns("rt1");
  bool covered = false;
  std::string dump;
  for (int attempt = 0; attempt < 3 && !covered; ++attempt) {
    covered = TracedRoundTripCovers(&ns, 1, &dump);
  }
  EXPECT_TRUE(covered) << dump;
}

TEST(RestartTraceTest, ParallelRoundTripStillCovers) {
  ShmNamespace ns("rt2");
  bool covered = false;
  std::string dump;
  for (int attempt = 0; attempt < 3 && !covered; ++attempt) {
    covered = TracedRoundTripCovers(&ns, 4, &dump);
  }
  EXPECT_TRUE(covered) << dump;
}

TEST(RestartTraceTest, ManagerRecoveryResultCarriesTraceJson) {
  ShmNamespace ns("rt3");
  TempDir dir("rt3");
  RestartConfig config;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path();
  RestartManager manager(config);

  LeafMap leaf_map;
  FillLeaf(&leaf_map, 500);
  ShutdownStats sstats;
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());
  EXPECT_NE(manager.last_shutdown_trace_json().find("copy_out"),
            std::string::npos);

  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->source, RecoverySource::kSharedMemory);
  EXPECT_NE(result->trace_json.find("\"spans\""), std::string::npos);
  EXPECT_NE(result->trace_json.find("copy_in"), std::string::npos);
}

TEST(RestartTraceTest, ManagerWritesReportArtifacts) {
  ShmNamespace ns("rt4");
  TempDir dir("rt4");
  RestartConfig config;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path();
  ASSERT_TRUE(config.dump_restart_report);  // default on
  RestartManager manager(config);

  LeafMap leaf_map;
  FillLeaf(&leaf_map, 500);
  ShutdownStats sstats;
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());
  std::string shutdown_path = dir.path() + "/leaf_0.shutdown_report.json";
  ASSERT_TRUE(FileExists(shutdown_path));

  LeafMap recovered;
  ASSERT_TRUE(manager.Recover(&recovered, 2000).ok());
  std::string recovery_path = dir.path() + "/leaf_0.recovery_report.json";
  ASSERT_TRUE(FileExists(recovery_path));

  // Both artifacts name the leaf, the op, the trace, and a metrics block.
  for (const std::string& path : {shutdown_path, recovery_path}) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string body = buffer.str();
    EXPECT_NE(body.find("\"leaf_id\": 0"), std::string::npos) << path;
    EXPECT_NE(body.find("\"trace\""), std::string::npos) << path;
    EXPECT_NE(body.find("\"metrics\""), std::string::npos) << path;
    EXPECT_NE(body.find("\"counters\""), std::string::npos) << path;
  }
}

TEST(RestartTraceTest, ReportsSkippedWithoutBackupDir) {
  ShmNamespace ns("rt5");
  RestartConfig config;
  config.namespace_prefix = ns.prefix();
  // No backup_dir: reports silently skipped, shutdown still works.
  RestartManager manager(config);
  LeafMap leaf_map;
  FillLeaf(&leaf_map, 100);
  ShutdownStats sstats;
  ASSERT_TRUE(manager.Shutdown(&leaf_map, &sstats).ok());
  EXPECT_FALSE(manager.last_shutdown_trace_json().empty());
}

TEST(RestartTraceTest, DiskRecoveryTimelineHasReadAndTranslate) {
  ShmNamespace ns("rt6");
  TempDir dir("rt6");
  RestartConfig config;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path();
  // Memory recovery disabled: the recovery must take the disk path and
  // synthesize the disk_read/disk_translate spans from the reader stats.
  config.memory_recovery_enabled = false;
  {
    BackupWriter writer(dir.path());
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer.AppendBatch("events", MakeRows(300, 1000)).ok());
    ASSERT_TRUE(writer.SyncAll().ok());
  }
  RestartManager manager(config);
  LeafMap recovered;
  auto result = manager.Recover(&recovered, 2000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->source, RecoverySource::kDisk);
  EXPECT_NE(result->trace_json.find("disk_read"), std::string::npos);
  EXPECT_NE(result->trace_json.find("disk_translate"), std::string::npos);
}

}  // namespace
}  // namespace scuba
