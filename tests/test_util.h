#ifndef SCUBA_TESTS_TEST_UTIL_H_
#define SCUBA_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "columnar/row.h"
#include "disk/file.h"
#include "shm/shm_segment.h"
#include "util/random.h"

namespace scuba {
namespace testing_util {

/// A /dev/shm namespace unique to this process + tag, so parallel test
/// binaries never collide. RemoveAll-ed on destruction.
class ShmNamespace {
 public:
  explicit ShmNamespace(const std::string& tag)
      : prefix_("sctest_" + std::to_string(getpid()) + "_" + tag) {
    ShmSegment::RemoveAll("/" + prefix_);
  }
  ~ShmNamespace() { ShmSegment::RemoveAll("/" + prefix_); }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
};

/// A temp directory unique to this process + tag, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = "/tmp/sctest_" + std::to_string(getpid()) + "_" + tag;
    std::string cmd = "rm -rf " + path_;
    if (std::system(cmd.c_str()) != 0) {
      // Best effort; EnsureDir below surfaces real failures.
    }
    EnsureDir(path_).ok();
  }
  ~TempDir() {
    std::string cmd = "rm -rf " + path_;
    if (std::system(cmd.c_str()) != 0) {
      // Best effort cleanup.
    }
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Deterministic small service-log-like rows for table tests.
inline std::vector<Row> MakeRows(size_t n, int64_t start_time = 1000,
                                 uint64_t seed = 99) {
  Random random(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.SetTime(start_time + static_cast<int64_t>(i / 10));
    row.Set("service", std::string("svc_") +
                           std::to_string(random.Uniform(8)));
    row.Set("status", static_cast<int64_t>(random.Bernoulli(0.1) ? 500 : 200));
    row.Set("latency_ms", 1.0 + random.NextDouble() * 20.0);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace testing_util
}  // namespace scuba

#endif  // SCUBA_TESTS_TEST_UTIL_H_
