// Zone-map pruning: comparison predicates on int64/double columns skip
// whole row blocks from the v2 footer min/max, the generalization of the
// paper's min/max-time block pruning (§2.1) to arbitrary numeric columns.
// Pruning must never change results — only blocks_scanned/blocks_pruned.

#include <gtest/gtest.h>

#include <cmath>

#include "columnar/table.h"
#include "query/executor.h"

namespace scuba {
namespace {

// One sealed block per call, `shard` spanning [base, base + rows), plus a
// double `temp` mirroring it and a constant string `tag`.
void AddBlock(Table* table, int64_t base, size_t rows = 50) {
  std::vector<Row> batch;
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.SetTime(1000 + static_cast<int64_t>(i));
    row.Set("shard", base + static_cast<int64_t>(i));
    row.Set("temp", static_cast<double>(base + static_cast<int64_t>(i)));
    row.Set("tag", std::string("block_") + std::to_string(base));
    batch.push_back(std::move(row));
  }
  ASSERT_TRUE(table->AddRows(batch, 0).ok());
  ASSERT_TRUE(table->SealWriteBuffer(0).ok());
}

// 8 blocks: shard ranges [0,50), [100,150), ..., [700,750).
void FillTable(Table* table) {
  for (int b = 0; b < 8; ++b) AddBlock(table, b * 100);
}

QueryResult MustExecute(const Table& table, const Query& q) {
  auto result = LeafExecutor::Execute(table, q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *std::move(result);
}

// Pruning is an optimization, not a semantic: matched rows and groups must
// equal the scalar engine's (which never zone-prunes).
void ExpectMatchesScalar(const Table& table, const Query& q) {
  auto vec = LeafExecutor::Execute(table, q);
  auto scalar = LeafExecutor::ExecuteScalar(table, q);
  ASSERT_TRUE(vec.ok());
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(vec->rows_matched, scalar->rows_matched);
  auto vrows = vec->Finalize(q.aggregates);
  auto srows = scalar->Finalize(q.aggregates);
  ASSERT_EQ(vrows.size(), srows.size());
  for (size_t r = 0; r < vrows.size(); ++r) {
    EXPECT_EQ(vrows[r].group_key, srows[r].group_key);
    ASSERT_EQ(vrows[r].aggregates.size(), srows[r].aggregates.size());
    for (size_t c = 0; c < vrows[r].aggregates.size(); ++c) {
      EXPECT_DOUBLE_EQ(vrows[r].aggregates[c], srows[r].aggregates[c]);
    }
  }
}

TEST(ZoneMapTest, EqPrunesAllButMatchingBlock) {
  Table table("t");
  FillTable(&table);
  Query q;
  q.table = "t";
  q.predicates = {{"shard", CompareOp::kEq, Value(int64_t{425})}};
  q.aggregates = {Count()};

  QueryResult result = MustExecute(table, q);
  EXPECT_EQ(result.blocks_scanned, 1u);
  EXPECT_EQ(result.blocks_pruned, 7u);
  EXPECT_EQ(result.rows_matched, 1u);
  ExpectMatchesScalar(table, q);
}

TEST(ZoneMapTest, RangeOpsPruneByBound) {
  Table table("t");
  FillTable(&table);

  struct Case {
    CompareOp op;
    int64_t literal;
    uint64_t expect_scanned;
  };
  const Case cases[] = {
      {CompareOp::kGe, 700, 1},  // only the last block reaches 700
      {CompareOp::kGt, 749, 0},  // nothing exceeds the global max
      {CompareOp::kLt, 50, 1},   // only block 0 is below 50
      {CompareOp::kLe, 149, 2},  // blocks 0 and 1
      {CompareOp::kEq, 60, 0},   // falls in the gap between blocks
  };
  for (const Case& c : cases) {
    Query q;
    q.table = "t";
    q.predicates = {{"shard", c.op, Value(c.literal)}};
    q.aggregates = {Count()};
    QueryResult result = MustExecute(table, q);
    EXPECT_EQ(result.blocks_scanned, c.expect_scanned)
        << "op " << static_cast<int>(c.op) << " lit " << c.literal;
    EXPECT_EQ(result.blocks_pruned, 8u - c.expect_scanned);
    ExpectMatchesScalar(table, q);
  }
}

TEST(ZoneMapTest, NePrunesOnlySingleValueBlocks) {
  Table table("t");
  // A block where every shard value is 7, and one with a spread.
  std::vector<Row> constant;
  for (int i = 0; i < 20; ++i) {
    Row row;
    row.SetTime(1000);
    row.Set("shard", int64_t{7});
    constant.push_back(std::move(row));
  }
  ASSERT_TRUE(table.AddRows(constant, 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());
  AddBlock(&table, 0);

  Query q;
  q.table = "t";
  q.predicates = {{"shard", CompareOp::kNe, Value(int64_t{7})}};
  q.aggregates = {Count()};
  QueryResult result = MustExecute(table, q);
  // The all-7 block is provably all-excluded; the spread block must scan.
  EXPECT_EQ(result.blocks_pruned, 1u);
  EXPECT_EQ(result.blocks_scanned, 1u);
  EXPECT_EQ(result.rows_matched, 49u);  // [0,50) minus the shard==7 row
  ExpectMatchesScalar(table, q);
}

TEST(ZoneMapTest, DoubleColumnPrunes) {
  Table table("t");
  FillTable(&table);
  Query q;
  q.table = "t";
  q.predicates = {{"temp", CompareOp::kGe, Value(600.0)}};
  q.group_by = {"tag"};
  q.aggregates = {Count(), Avg("temp")};

  QueryResult result = MustExecute(table, q);
  EXPECT_EQ(result.blocks_scanned, 2u);  // blocks 6 and 7
  EXPECT_EQ(result.blocks_pruned, 6u);
  ExpectMatchesScalar(table, q);
}

TEST(ZoneMapTest, AbsentColumnHasImplicitZeroZone) {
  Table table("t");
  FillTable(&table);

  // A column no block carries reads as its default (0) for every row: the
  // implicit zone [0, 0] prunes everything for literals off zero...
  Query q;
  q.table = "t";
  q.predicates = {{"nonexistent", CompareOp::kEq, Value(int64_t{1})}};
  q.aggregates = {Count()};
  QueryResult result = MustExecute(table, q);
  EXPECT_EQ(result.blocks_scanned, 0u);
  EXPECT_EQ(result.blocks_pruned, 8u);
  EXPECT_EQ(result.rows_matched, 0u);
  ExpectMatchesScalar(table, q);

  // ...and prunes nothing for eq 0, where every row matches.
  q.predicates = {{"nonexistent", CompareOp::kEq, Value(int64_t{0})}};
  result = MustExecute(table, q);
  EXPECT_EQ(result.blocks_scanned, 8u);
  EXPECT_EQ(result.rows_matched, 400u);
  ExpectMatchesScalar(table, q);
}

TEST(ZoneMapTest, PartiallyAbsentColumnPrunesPerBlock) {
  Table table("t");
  AddBlock(&table, 500);  // has `shard` in [500, 550)
  std::vector<Row> no_shard;
  for (int i = 0; i < 30; ++i) {
    Row row;
    row.SetTime(1000);
    row.Set("other", int64_t{1});
    no_shard.push_back(std::move(row));
  }
  ASSERT_TRUE(table.AddRows(no_shard, 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  Query q;
  q.table = "t";
  q.predicates = {{"shard", CompareOp::kGe, Value(int64_t{500})}};
  q.aggregates = {Count()};
  QueryResult result = MustExecute(table, q);
  // The shard-less block reads default 0 for every row: pruned via the
  // implicit [0, 0] zone. The shard block scans.
  EXPECT_EQ(result.blocks_scanned, 1u);
  EXPECT_EQ(result.blocks_pruned, 1u);
  EXPECT_EQ(result.rows_matched, 50u);
  ExpectMatchesScalar(table, q);
}

TEST(ZoneMapTest, MismatchedLiteralTypeStillErrors) {
  Table table("t");
  FillTable(&table);

  // Even though the zone map could "prove" no match, a type error must
  // surface exactly as it does in the scalar engine.
  Query q;
  q.table = "t";
  q.predicates = {{"shard", CompareOp::kEq, Value(std::string("425"))}};
  q.aggregates = {Count()};
  auto vec = LeafExecutor::Execute(table, q);
  auto scalar = LeafExecutor::ExecuteScalar(table, q);
  ASSERT_FALSE(vec.ok());
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(vec.status().code(), scalar.status().code());
  EXPECT_EQ(vec.status().message(), scalar.status().message());

  q.predicates = {{"shard", CompareOp::kEq, Value(425.0)}};
  EXPECT_FALSE(LeafExecutor::Execute(table, q).ok());
}

TEST(ZoneMapTest, TextOperatorsNeverPrune) {
  Table table("t");
  FillTable(&table);
  Query q;
  q.table = "t";
  q.predicates = {{"tag", CompareOp::kPrefix, Value(std::string("block_3"))}};
  q.aggregates = {Count()};
  QueryResult result = MustExecute(table, q);
  EXPECT_EQ(result.blocks_pruned, 0u);
  EXPECT_EQ(result.blocks_scanned, 8u);
  EXPECT_EQ(result.rows_matched, 50u);
  ExpectMatchesScalar(table, q);
}

TEST(ZoneMapTest, NanDoubleColumnDisablesPruning) {
  Table table("t");
  std::vector<Row> batch;
  for (int i = 0; i < 10; ++i) {
    Row row;
    row.SetTime(1000);
    row.Set("temp", i == 5 ? std::nan("") : static_cast<double>(i));
    batch.push_back(std::move(row));
  }
  ASSERT_TRUE(table.AddRows(batch, 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  Query q;
  q.table = "t";
  q.predicates = {{"temp", CompareOp::kGe, Value(100.0)}};
  q.aggregates = {Count()};
  QueryResult result = MustExecute(table, q);
  // No zone map on a NaN-bearing column: the block is scanned, not pruned.
  EXPECT_EQ(result.blocks_scanned, 1u);
  EXPECT_EQ(result.blocks_pruned, 0u);
  EXPECT_EQ(result.rows_matched, 0u);
}

TEST(ZoneMapTest, TimeRangeAndZonePruningCompose) {
  Table table("t");
  // Two epochs x two shard ranges; header time pruning removes one axis,
  // zone maps the other.
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (int s = 0; s < 2; ++s) {
      std::vector<Row> batch;
      for (int i = 0; i < 25; ++i) {
        Row row;
        row.SetTime(1000 + epoch * 1000 + i);
        row.Set("shard", static_cast<int64_t>(s * 100 + i));
        batch.push_back(std::move(row));
      }
      ASSERT_TRUE(table.AddRows(batch, 0).ok());
      ASSERT_TRUE(table.SealWriteBuffer(0).ok());
    }
  }

  Query q;
  q.table = "t";
  q.begin_time = 2000;  // drops epoch 0 via header min/max time
  q.predicates = {{"shard", CompareOp::kGe, Value(int64_t{100})}};
  q.aggregates = {Count()};
  QueryResult result = MustExecute(table, q);
  EXPECT_EQ(result.blocks_scanned, 1u);  // epoch 1, shard range [100, 125)
  EXPECT_EQ(result.blocks_pruned, 3u);
  EXPECT_EQ(result.rows_matched, 25u);
  ExpectMatchesScalar(table, q);
}

}  // namespace
}  // namespace scuba
