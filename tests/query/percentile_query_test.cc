// Percentile aggregates end to end: leaf executor + cross-leaf merge.

#include <gtest/gtest.h>

#include <cmath>

#include "query/executor.h"
#include "server/aggregator.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;
using testing_util::TempDir;

Row LatencyRow(int64_t time, double latency, const std::string& svc = "web") {
  Row row;
  row.SetTime(time);
  row.Set("service", svc);
  row.Set("latency_ms", latency);
  return row;
}

TEST(PercentileQueryTest, LeafExecutorPercentiles) {
  Table table("requests");
  std::vector<Row> rows;
  for (int i = 1; i <= 1000; ++i) {
    rows.push_back(LatencyRow(100, static_cast<double>(i)));
  }
  ASSERT_TRUE(table.AddRows(rows, 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  Query q;
  q.table = "requests";
  q.aggregates = {P50("latency_ms"), P90("latency_ms"), P99("latency_ms")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].aggregates[0], 500.0, 500.0 * 0.08);
  EXPECT_NEAR(out[0].aggregates[1], 900.0, 900.0 * 0.08);
  EXPECT_NEAR(out[0].aggregates[2], 990.0, 990.0 * 0.08);
}

TEST(PercentileQueryTest, PercentilePerGroup) {
  Table table("requests");
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(LatencyRow(100, 2.0, "fast"));
    rows.push_back(LatencyRow(100, 200.0, "slow"));
  }
  ASSERT_TRUE(table.AddRows(rows, 0).ok());

  Query q;
  q.table = "requests";
  q.group_by = {"service"};
  q.aggregates = {P50("latency_ms")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<std::string>(out[0].group_key[0]), "fast");
  EXPECT_NEAR(out[0].aggregates[0], 2.0, 0.2);
  EXPECT_NEAR(out[1].aggregates[0], 200.0, 20.0);
}

TEST(PercentileQueryTest, MergeAcrossLeavesEqualsUnion) {
  // Split a known distribution across 3 leaves; the aggregator's merged
  // percentile must equal a single-leaf run over all the data.
  ShmNamespace ns("pq1");
  TempDir dir("pq1");

  std::vector<std::unique_ptr<LeafServer>> leaves;
  Aggregator aggregator;
  for (uint32_t i = 0; i < 3; ++i) {
    LeafServerConfig config;
    config.leaf_id = i;
    config.namespace_prefix = ns.prefix();
    config.backup_dir = dir.path() + "/leaf_" + std::to_string(i);
    leaves.push_back(std::make_unique<LeafServer>(config));
    ASSERT_TRUE(leaves.back()->Start().ok());
    aggregator.AddLeaf(leaves.back().get());
  }

  Table reference("requests");
  Random random(3);
  for (int i = 0; i < 3000; ++i) {
    double latency = std::exp(random.NextDouble() * 6.0);
    Row row = LatencyRow(100, latency);
    ASSERT_TRUE(
        leaves[static_cast<size_t>(i % 3)]->AddRows("requests", {row}).ok());
    ASSERT_TRUE(reference.AddRows({row}, 0).ok());
  }

  Query q;
  q.table = "requests";
  q.aggregates = {P50("latency_ms"), P99("latency_ms")};

  auto merged = aggregator.Execute(q);
  ASSERT_TRUE(merged.ok());
  auto single = LeafExecutor::Execute(reference, q);
  ASSERT_TRUE(single.ok());

  auto merged_rows = merged->Finalize(q.aggregates);
  auto single_rows = single->Finalize(q.aggregates);
  ASSERT_EQ(merged_rows.size(), 1u);
  ASSERT_EQ(single_rows.size(), 1u);
  // Bucket-wise merge is exact: identical finalized values.
  EXPECT_DOUBLE_EQ(merged_rows[0].aggregates[0],
                   single_rows[0].aggregates[0]);
  EXPECT_DOUBLE_EQ(merged_rows[0].aggregates[1],
                   single_rows[0].aggregates[1]);
}

TEST(PercentileQueryTest, PercentileOverIntColumn) {
  Table table("requests");
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    Row row;
    row.SetTime(10);
    row.Set("bytes", static_cast<int64_t>(100 + i * 10));
    rows.push_back(row);
  }
  ASSERT_TRUE(table.AddRows(rows, 0).ok());
  Query q;
  q.table = "requests";
  q.aggregates = {P90("bytes")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->Finalize(q.aggregates)[0].aggregates[0], 1000.0,
              100.0);
}

TEST(PercentileQueryTest, PercentileOverStringFails) {
  Table table("requests");
  ASSERT_TRUE(table.AddRows({LatencyRow(1, 1.0)}, 0).ok());
  Query q;
  q.table = "requests";
  q.aggregates = {P50("service")};
  EXPECT_TRUE(LeafExecutor::Execute(table, q).status().IsInvalidArgument());
}

TEST(PercentileQueryTest, ValidateRequiresColumn) {
  Query q;
  q.table = "t";
  q.aggregates = {Aggregate{AggregateOp::kP99, ""}};
  EXPECT_TRUE(q.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
