// Differential test: the vectorized engine (selection vectors, dictionary
// filters, zone maps, lazy decode) against the row-at-a-time scalar oracle,
// over randomized queries, at 1 and N scan threads. The engines must agree
// on results AND on errors (same status code), and the vectorized engine
// must be bit-deterministic across thread counts.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "ingest/row_generator.h"
#include "query/executor.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

// 6 sealed blocks of 2000 rows plus 500 unsealed write-buffer rows — the
// buffer path and the block path both participate in every query.
std::unique_ptr<Table> BuildTable(int64_t* min_time, int64_t* max_time) {
  auto table = std::make_unique<Table>("service_logs");
  RowGeneratorConfig config;
  config.seed = 11;
  config.rows_per_second = 500;
  RowGenerator gen(config);
  *min_time = gen.current_time();
  for (int b = 0; b < 6; ++b) {
    EXPECT_TRUE(table->AddRows(gen.NextBatch(2000), gen.current_time()).ok());
    EXPECT_TRUE(table->SealWriteBuffer(0).ok());
  }
  EXPECT_TRUE(table->AddRows(gen.NextBatch(500), gen.current_time()).ok());
  *max_time = gen.current_time();
  return table;
}

// Random queries over the generator's schema. Literal types deliberately
// mismatch the column type ~1 in 5 times so the error paths diff too.
class QueryFuzzer {
 public:
  explicit QueryFuzzer(uint32_t seed, int64_t min_time, int64_t max_time)
      : rng_(seed), min_time_(min_time), max_time_(max_time) {}

  Query Next() {
    Query q;
    q.table = "service_logs";
    if (Chance(0.3)) {
      int64_t span = max_time_ - min_time_;
      q.begin_time = min_time_ + Int(0, span / 2);
      q.end_time = q.begin_time + Int(1, span);
    }
    if (Chance(0.25)) q.time_bucket_seconds = Pick<int64_t>({10, 60, 300});
    int num_preds = static_cast<int>(Int(0, 3));
    for (int i = 0; i < num_preds; ++i) q.predicates.push_back(RandPredicate());
    int num_groups = static_cast<int>(Int(0, 2));
    for (int i = 0; i < num_groups; ++i) {
      q.group_by.push_back(
          Pick<std::string>({"service", "host", "status", "endpoint"}));
    }
    q.aggregates.push_back(Count());
    int extra_aggs = static_cast<int>(Int(0, 2));
    for (int i = 0; i < extra_aggs; ++i) q.aggregates.push_back(RandAggregate());
    if (Chance(0.2)) q.limit = Int(1, 20);
    return q;
  }

 private:
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }
  int64_t Int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
  }
  template <typename T>
  T Pick(std::vector<T> options) {
    return options[static_cast<size_t>(Int(0, options.size() - 1))];
  }

  Value RandLiteralFor(ColumnType type) {
    if (Chance(0.2)) {
      // Wrong-typed literal: both engines must reject identically.
      type = Pick<ColumnType>(
          {ColumnType::kInt64, ColumnType::kDouble, ColumnType::kString});
    }
    switch (type) {
      case ColumnType::kInt64:
        return Value(Pick<int64_t>({0, 1, 200, 500, 503, 1 << 20}));
      case ColumnType::kDouble:
        return Value(Pick<double>({0.0, 1.5, 10.0, 19.5, 100.0}));
      case ColumnType::kString:
      default:
        return Value(Pick<std::string>({"svc_3", "svc_17", "/api/v2/endpoint_5",
                                        "endpoint_1", "/api/", "host_2", "",
                                        "no_such_value"}));
    }
  }

  Predicate RandPredicate() {
    struct Col {
      const char* name;
      ColumnType type;
    };
    Col col = Pick<Col>({{"service", ColumnType::kString},
                         {"endpoint", ColumnType::kString},
                         {"host", ColumnType::kString},
                         {"status", ColumnType::kInt64},
                         {"bytes_out", ColumnType::kInt64},
                         {"latency_ms", ColumnType::kDouble},
                         {"missing_col", ColumnType::kInt64}});
    CompareOp op = Pick<CompareOp>({CompareOp::kEq, CompareOp::kNe,
                                    CompareOp::kLt, CompareOp::kLe,
                                    CompareOp::kGt, CompareOp::kGe,
                                    CompareOp::kContains, CompareOp::kPrefix});
    return Predicate{col.name, op, RandLiteralFor(col.type)};
  }

  Aggregate RandAggregate() {
    // `service` appears as an aggregate column to diff the
    // string-aggregate error path.
    std::string numeric =
        Pick<std::string>({"latency_ms", "bytes_out", "status", "service"});
    switch (Int(0, 5)) {
      case 0: return Sum(numeric);
      case 1: return Min(numeric);
      case 2: return Max(numeric);
      case 3: return Avg(numeric);
      case 4: return P50(numeric);
      default: return P99(numeric);
    }
  }

  std::mt19937 rng_;
  int64_t min_time_;
  int64_t max_time_;
};

class VectorizedDiffTest : public ::testing::Test {
 protected:
  VectorizedDiffTest() : pool_(3) {
    table_ = BuildTable(&min_time_, &max_time_);
  }

  // Runs the query through all three paths; returns true when it succeeded
  // (as opposed to an agreed-upon error).
  bool DiffOne(const Query& q, const std::string& label) {
    auto scalar = LeafExecutor::ExecuteScalar(*table_, q);
    auto vec1 = LeafExecutor::Execute(*table_, q);
    LeafExecutor::ExecOptions pooled;
    pooled.pool = &pool_;
    auto vecN = LeafExecutor::Execute(*table_, q, pooled);

    if (!scalar.ok()) {
      // Which block reports first may differ under the pool, so compare
      // status codes, not messages.
      EXPECT_FALSE(vec1.ok()) << label << ": scalar failed ("
                              << scalar.status().ToString()
                              << ") but vectorized succeeded";
      EXPECT_FALSE(vecN.ok()) << label;
      if (!vec1.ok()) {
        EXPECT_EQ(vec1.status().code(), scalar.status().code()) << label;
      }
      if (!vecN.ok()) {
        EXPECT_EQ(vecN.status().code(), scalar.status().code()) << label;
      }
      return false;
    }

    EXPECT_TRUE(vec1.ok()) << label << ": " << vec1.status().ToString();
    EXPECT_TRUE(vecN.ok()) << label << ": " << vecN.status().ToString();
    if (!vec1.ok() || !vecN.ok()) return false;

    // Scalar vs vectorized: same matches, same groups; aggregates to
    // relative tolerance (summation association differs by design).
    EXPECT_EQ(vec1->rows_matched, scalar->rows_matched) << label;
    auto srows = scalar->Finalize(q.aggregates);
    auto v1rows = vec1->Finalize(q.aggregates);
    auto vnrows = vecN->Finalize(q.aggregates);
    EXPECT_EQ(v1rows.size(), srows.size()) << label;
    if (v1rows.size() != srows.size()) return false;
    for (size_t r = 0; r < srows.size(); ++r) {
      EXPECT_TRUE(v1rows[r].group_key == srows[r].group_key) << label;
      EXPECT_EQ(v1rows[r].aggregates.size(), srows[r].aggregates.size());
      if (v1rows[r].aggregates.size() != srows[r].aggregates.size()) {
        return false;
      }
      for (size_t c = 0; c < srows[r].aggregates.size(); ++c) {
        double want = srows[r].aggregates[c];
        EXPECT_NEAR(v1rows[r].aggregates[c], want,
                    std::abs(want) * 1e-9 + 1e-12)
            << label << " group " << r << " agg " << c;
      }
    }

    // Serial vectorized vs pooled vectorized: per-block partials merge in
    // block order either way, so results must be bit-identical.
    EXPECT_EQ(vnrows.size(), v1rows.size()) << label;
    if (vnrows.size() != v1rows.size()) return false;
    for (size_t r = 0; r < v1rows.size(); ++r) {
      EXPECT_TRUE(vnrows[r].group_key == v1rows[r].group_key) << label;
      for (size_t c = 0; c < v1rows[r].aggregates.size(); ++c) {
        EXPECT_TRUE(
            SameBits(vnrows[r].aggregates[c], v1rows[r].aggregates[c]))
            << label << ": pooled scan not bit-identical at group " << r
            << " agg " << c;
      }
    }
    EXPECT_EQ(vecN->rows_matched, vec1->rows_matched) << label;
    return true;
  }

  std::unique_ptr<Table> table_;
  int64_t min_time_ = 0;
  int64_t max_time_ = 0;
  ThreadPool pool_;
};

TEST_F(VectorizedDiffTest, RandomizedQueriesAgree) {
  QueryFuzzer fuzz(20140601, min_time_, max_time_);
  int succeeded = 0;
  for (int i = 0; i < 60; ++i) {
    Query q = fuzz.Next();
    if (DiffOne(q, "query " + std::to_string(i))) ++succeeded;
    if (HasFatalFailure()) return;
  }
  // The fuzzer mixes in wrong-typed literals; most queries must still be
  // valid or the test isn't exercising the result path.
  EXPECT_GE(succeeded, 20);
}

TEST_F(VectorizedDiffTest, HandWrittenEdgeQueries) {
  // Empty selection after predicates: lazy decode skips the aggregate
  // columns entirely; must still agree with scalar.
  Query none;
  none.table = "service_logs";
  none.predicates = {
      {"service", CompareOp::kEq, Value(std::string("no_such_service"))}};
  none.group_by = {"endpoint"};
  none.aggregates = {Count(), Avg("latency_ms")};
  EXPECT_TRUE(DiffOne(none, "empty_selection"));

  // All rows match (dictionary filter's keep-everything short-circuit).
  Query all;
  all.table = "service_logs";
  all.predicates = {{"endpoint", CompareOp::kPrefix, Value(std::string("/"))}};
  all.aggregates = {Count(), Sum("bytes_out")};
  EXPECT_TRUE(DiffOne(all, "all_match"));

  // Compound: string dict filter + numeric range + bucketed percentile.
  Query compound;
  compound.table = "service_logs";
  compound.predicates = {
      {"service", CompareOp::kPrefix, Value(std::string("svc_1"))},
      {"status", CompareOp::kGe, Value(int64_t{500})},
      {"latency_ms", CompareOp::kLt, Value(15.0)}};
  compound.time_bucket_seconds = 60;
  compound.group_by = {"service"};
  compound.aggregates = {Count(), P99("latency_ms")};
  EXPECT_TRUE(DiffOne(compound, "compound"));

  // String aggregate: both engines reject with the same code.
  Query bad;
  bad.table = "service_logs";
  bad.aggregates = {Sum("service")};
  EXPECT_FALSE(DiffOne(bad, "string_aggregate"));
}

TEST_F(VectorizedDiffTest, SignedZeroGroupKeysStayDistinct) {
  // -0.0 and 0.0 compare equal but are distinct group keys (bit-pattern
  // hashing) — in the scalar engine, the vectorized one, and under a pool.
  Table table("zeros");
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    Row row;
    row.SetTime(1000 + i);
    row.Set("delta", (i % 2 == 0) ? 0.0 : -0.0);
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(table.AddRows(rows, 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  Query q;
  q.table = "zeros";
  q.group_by = {"delta"};
  q.aggregates = {Count()};

  auto scalar = LeafExecutor::ExecuteScalar(table, q);
  auto vec1 = LeafExecutor::Execute(table, q);
  LeafExecutor::ExecOptions pooled;
  pooled.pool = &pool_;
  auto vecN = LeafExecutor::Execute(table, q, pooled);
  ASSERT_TRUE(scalar.ok());
  ASSERT_TRUE(vec1.ok());
  ASSERT_TRUE(vecN.ok());
  EXPECT_EQ(scalar->num_groups(), 2u);
  EXPECT_EQ(vec1->num_groups(), 2u);
  EXPECT_EQ(vecN->num_groups(), 2u);
  for (auto* result : {&*scalar, &*vec1, &*vecN}) {
    for (const ResultRow& row : result->Finalize(q.aggregates)) {
      EXPECT_EQ(row.aggregates[0], 20.0);
    }
  }
}

}  // namespace
}  // namespace scuba
