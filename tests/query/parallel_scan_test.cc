// Parallel per-row-block scan: thread-count independence (bit-identical
// results for every pool size, because per-block partials always merge in
// block order), error propagation through the pool, and the plumbing that
// hands a leaf-owned pool to the executor. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "ingest/row_generator.h"
#include "query/executor.h"
#include "server/aggregator.h"
#include "server/leaf_server.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void ExpectBitIdentical(const std::vector<ResultRow>& want,
                        const std::vector<ResultRow>& got,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t r = 0; r < want.size(); ++r) {
    EXPECT_TRUE(got[r].group_key == want[r].group_key) << label;
    ASSERT_EQ(got[r].aggregates.size(), want[r].aggregates.size()) << label;
    for (size_t c = 0; c < want[r].aggregates.size(); ++c) {
      EXPECT_TRUE(SameBits(got[r].aggregates[c], want[r].aggregates[c]))
          << label << ": group " << r << " agg " << c << " differs ("
          << got[r].aggregates[c] << " vs " << want[r].aggregates[c] << ")";
    }
  }
}

// 8 sealed blocks (uneven group mix across blocks) plus optional buffered
// rows so the pool races real per-block work.
std::unique_ptr<Table> BuildTable(bool with_buffer) {
  auto table = std::make_unique<Table>("service_logs");
  RowGeneratorConfig config;
  config.seed = 5;
  config.rows_per_second = 1000;
  RowGenerator gen(config);
  for (int b = 0; b < 8; ++b) {
    EXPECT_TRUE(table->AddRows(gen.NextBatch(1500), gen.current_time()).ok());
    EXPECT_TRUE(table->SealWriteBuffer(0).ok());
  }
  if (with_buffer) {
    EXPECT_TRUE(table->AddRows(gen.NextBatch(700), gen.current_time()).ok());
  }
  return table;
}

Query MixedQuery() {
  Query q;
  q.table = "service_logs";
  q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})},
                  {"endpoint", CompareOp::kPrefix,
                   Value(std::string("/api/v2/endpoint_1"))}};
  q.group_by = {"service"};
  q.aggregates = {Count(), Sum("latency_ms"), Avg("bytes_out"),
                  P99("latency_ms")};
  return q;
}

TEST(ParallelScanTest, ResultsIdenticalAcrossPoolSizes) {
  std::unique_ptr<Table> table = BuildTable(/*with_buffer=*/false);
  Query q = MixedQuery();

  auto serial = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto want = serial->Finalize(q.aggregates);

  for (size_t threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    LeafExecutor::ExecOptions options;
    options.pool = &pool;
    // Twice per pool: reuse must not perturb results either.
    for (int round = 0; round < 2; ++round) {
      auto pooled = LeafExecutor::Execute(*table, q, options);
      ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
      EXPECT_EQ(pooled->rows_matched, serial->rows_matched);
      EXPECT_EQ(pooled->rows_scanned, serial->rows_scanned);
      EXPECT_EQ(pooled->blocks_scanned, serial->blocks_scanned);
      ExpectBitIdentical(want, pooled->Finalize(q.aggregates),
                         std::to_string(threads) + " threads, round " +
                             std::to_string(round));
    }
  }
}

TEST(ParallelScanTest, WriteBufferScansWithPooledBlocks) {
  std::unique_ptr<Table> table = BuildTable(/*with_buffer=*/true);
  Query q = MixedQuery();

  auto serial = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(4);
  LeafExecutor::ExecOptions options;
  options.pool = &pool;
  auto pooled = LeafExecutor::Execute(*table, q, options);
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(pooled->rows_scanned, serial->rows_scanned);
  ExpectBitIdentical(serial->Finalize(q.aggregates),
                     pooled->Finalize(q.aggregates), "with write buffer");
}

TEST(ParallelScanTest, ErrorsPropagateFromWorkerThreads) {
  std::unique_ptr<Table> table = BuildTable(/*with_buffer=*/true);

  // A per-block failure (string aggregate) must surface through the pool
  // with the same status code as the serial path.
  Query bad;
  bad.table = "service_logs";
  bad.aggregates = {Sum("endpoint")};

  auto serial = LeafExecutor::Execute(*table, bad);
  ASSERT_FALSE(serial.ok());

  ThreadPool pool(4);
  LeafExecutor::ExecOptions options;
  options.pool = &pool;
  auto pooled = LeafExecutor::Execute(*table, bad, options);
  ASSERT_FALSE(pooled.ok());
  EXPECT_EQ(pooled.status().code(), serial.status().code());

  // The pool survives an error and serves the next query.
  Query ok = MixedQuery();
  auto after = LeafExecutor::Execute(*table, ok, options);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(ParallelScanTest, LeafServerThreadCountInvisibleInResults) {
  ShmNamespace ns("pscan");
  TempDir dir("pscan");

  auto make_leaf = [&](uint32_t id, size_t threads) {
    LeafServerConfig config;
    config.leaf_id = id;
    config.namespace_prefix = ns.prefix();
    config.backup_dir = dir.path() + "/leaf_" + std::to_string(id);
    config.num_query_threads = threads;
    auto leaf = std::make_unique<LeafServer>(config);
    EXPECT_TRUE(leaf->Start().ok());
    // Blocks seal at kMaxRowsPerBlock (64Ki): 150k rows -> 2 sealed
    // blocks + a buffered tail, so the pool has real per-block work.
    for (int b = 0; b < 3; ++b) {
      EXPECT_TRUE(
          leaf->AddRows("events", MakeRows(50000, 1000 + b * 5000, 9)).ok());
    }
    return leaf;
  };
  std::unique_ptr<LeafServer> single = make_leaf(0, 1);
  std::unique_ptr<LeafServer> pooled = make_leaf(1, 3);

  Query q;
  q.table = "events";
  q.predicates = {{"status", CompareOp::kEq, Value(int64_t{500})}};
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms"), P90("latency_ms")};

  auto a = single->ExecuteQuery(q);
  auto b = pooled->ExecuteQuery(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectBitIdentical(a->Finalize(q.aggregates), b->Finalize(q.aggregates),
                     "num_query_threads 1 vs 3");
}

TEST(ParallelScanTest, AggregatorFanoutPoolComposesWithLeafPools) {
  ShmNamespace ns("pfan");
  TempDir dir("pfan");

  std::vector<std::unique_ptr<LeafServer>> leaves;
  Aggregator aggregator;
  for (uint32_t i = 0; i < 3; ++i) {
    LeafServerConfig config;
    config.leaf_id = i;
    config.namespace_prefix = ns.prefix();
    config.backup_dir = dir.path() + "/leaf_" + std::to_string(i);
    config.num_query_threads = 2;  // leaf pools under the fan-out pool
    leaves.push_back(std::make_unique<LeafServer>(config));
    ASSERT_TRUE(leaves.back()->Start().ok());
    ASSERT_TRUE(
        leaves.back()->AddRows("events", MakeRows(600, 2000 + i, i + 1)).ok());
    aggregator.AddLeaf(leaves.back().get());
  }

  Query q;
  q.table = "events";
  q.group_by = {"service"};
  q.aggregates = {Count(), Sum("latency_ms"), P99("latency_ms")};

  auto sequential = aggregator.Execute(q);
  ASSERT_TRUE(sequential.ok());

  aggregator.SetParallelFanout(true);
  // Two parallel executions: the shared fan-out pool is created once and
  // reused; partials merge in leaf order, so both match exactly.
  auto first = aggregator.Execute(q);
  auto second = aggregator.Execute(q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->leaves_responded, 3u);

  ExpectBitIdentical(sequential->Finalize(q.aggregates),
                     first->Finalize(q.aggregates), "fanout run 1");
  ExpectBitIdentical(first->Finalize(q.aggregates),
                     second->Finalize(q.aggregates), "fanout run 2");
}

}  // namespace
}  // namespace scuba
