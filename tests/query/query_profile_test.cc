// QueryProfile: merge rules (associative counters, identity fields kept),
// JSON/text rendering, executor population (scanned/pruned split, bytes
// decoded, rows), and bit-identical counters for every scan pool size.

#include "query/query_profile.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "ingest/row_generator.h"
#include "query/executor.h"
#include "query/query_context.h"
#include "util/thread_pool.h"

namespace scuba {
namespace {

TEST(QueryProfileMerge, SumsCountersKeepsIdentity) {
  QueryProfile a;
  a.query_id = 42;
  a.wall_micros = 1000;
  a.blocks_scanned = 3;
  a.blocks_time_pruned = 1;
  a.blocks_zone_pruned = 2;
  a.rows_scanned = 100;
  a.rows_matched = 10;
  a.bytes_decoded = 800;
  a.leaves_total = 1;
  a.leaves_responded = 1;
  a.prune_micros = 5;
  a.decode_micros = 7;
  a.kernel_micros = 9;
  a.merge_micros = 2;
  a.leaf_execute_micros = 30;
  a.fanout_queue_wait_micros = 4;

  QueryProfile b = a;
  b.query_id = 99;
  b.wall_micros = 7777;
  b.unavailable_leaves = {6};

  a.Merge(b);
  EXPECT_EQ(a.query_id, 42u);            // identity kept
  EXPECT_EQ(a.wall_micros, 1000);        // aggregator-stamped, kept
  EXPECT_EQ(a.blocks_scanned, 6u);
  EXPECT_EQ(a.blocks_time_pruned, 2u);
  EXPECT_EQ(a.blocks_zone_pruned, 4u);
  EXPECT_EQ(a.rows_scanned, 200u);
  EXPECT_EQ(a.rows_matched, 20u);
  EXPECT_EQ(a.bytes_decoded, 1600u);
  EXPECT_EQ(a.leaves_total, 2u);
  EXPECT_EQ(a.leaves_responded, 2u);
  EXPECT_EQ(a.prune_micros, 10);
  EXPECT_EQ(a.decode_micros, 14);
  EXPECT_EQ(a.kernel_micros, 18);
  EXPECT_EQ(a.merge_micros, 4);
  EXPECT_EQ(a.leaf_execute_micros, 60);
  EXPECT_EQ(a.fanout_queue_wait_micros, 8);
  ASSERT_EQ(a.unavailable_leaves.size(), 1u);
  EXPECT_EQ(a.unavailable_leaves[0], 6u);
}

TEST(QueryProfileMerge, AssociativeOverCounters) {
  auto make = [](uint64_t n) {
    QueryProfile p;
    p.blocks_scanned = n;
    p.rows_scanned = 10 * n;
    p.bytes_decoded = 100 * n;
    p.unavailable_leaves = {static_cast<uint32_t>(n)};
    return p;
  };
  QueryProfile left = make(1);
  QueryProfile bc = make(2);
  bc.Merge(make(3));
  left.Merge(bc);  // 1 + (2 + 3)

  QueryProfile right = make(1);
  right.Merge(make(2));
  right.Merge(make(3));  // (1 + 2) + 3

  EXPECT_EQ(left.blocks_scanned, right.blocks_scanned);
  EXPECT_EQ(left.rows_scanned, right.rows_scanned);
  EXPECT_EQ(left.bytes_decoded, right.bytes_decoded);
  EXPECT_EQ(left.unavailable_leaves, right.unavailable_leaves);
}

TEST(QueryProfileRender, JsonHasEveryField) {
  QueryProfile p;
  p.query_id = 7;
  p.unavailable_leaves = {3, 5};
  std::string json = p.ToJson();
  for (const char* key :
       {"query_id", "wall_micros", "blocks_scanned", "blocks_time_pruned",
        "blocks_zone_pruned", "rows_scanned", "rows_matched", "bytes_decoded",
        "leaves_total", "leaves_responded", "unavailable_leaves",
        "prune_micros", "decode_micros", "kernel_micros", "merge_micros",
        "leaf_execute_micros", "fanout_queue_wait_micros",
        "cache_hit_buckets", "cache_miss_buckets"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
  }
  EXPECT_NE(json.find("\"unavailable_leaves\": [3, 5]"), std::string::npos);
}

TEST(QueryProfileRender, TextReadsLikeExplainAnalyze) {
  QueryProfile p;
  p.query_id = 12;
  p.wall_micros = 12345;
  p.blocks_scanned = 5;
  p.blocks_time_pruned = 10;
  p.blocks_zone_pruned = 1;
  p.rows_scanned = 40960;
  p.rows_matched = 512;
  p.leaves_total = 4;
  p.leaves_responded = 3;
  p.unavailable_leaves = {2};
  std::string text = p.ToText();
  EXPECT_NE(text.find("query 12"), std::string::npos);
  EXPECT_NE(text.find("3/4 leaves"), std::string::npos);
  EXPECT_NE(text.find("unavailable: 2"), std::string::npos);
  EXPECT_NE(text.find("10 time-pruned"), std::string::npos);
  EXPECT_NE(text.find("1 zone-pruned"), std::string::npos);
  EXPECT_NE(text.find("512 matched"), std::string::npos);
}

// --- executor population ---------------------------------------------------

// 6 sealed blocks + a write buffer; blocks seal in time order so both the
// header time range and the status zone map can prune.
std::unique_ptr<Table> BuildTable() {
  auto table = std::make_unique<Table>("service_logs");
  RowGeneratorConfig config;
  config.seed = 17;
  config.rows_per_second = 1000;
  RowGenerator gen(config);
  for (int b = 0; b < 6; ++b) {
    EXPECT_TRUE(table->AddRows(gen.NextBatch(1200), gen.current_time()).ok());
    EXPECT_TRUE(table->SealWriteBuffer(0).ok());
  }
  EXPECT_TRUE(table->AddRows(gen.NextBatch(300), gen.current_time()).ok());
  return table;
}

int64_t TableMaxTime(const Table& table) {
  int64_t max_time = 0;
  for (size_t b = 0; b < table.num_row_blocks(); ++b) {
    max_time = std::max(max_time, table.row_block(b)->header().max_time);
  }
  return max_time;
}

TEST(ExecutorProfile, PopulatesCountersAndSplitsPruneKinds) {
  std::unique_ptr<Table> table = BuildTable();

  // Time range cuts old blocks; the time-column predicate exercises the
  // zone maps on whatever survives the header check.
  Query q;
  q.table = "service_logs";
  q.begin_time = TableMaxTime(*table) - 2;
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms")};

  auto result = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryProfile& p = result->profile();

  EXPECT_GT(p.blocks_time_pruned, 0u);
  EXPECT_GT(p.blocks_scanned, 0u);
  EXPECT_EQ(p.blocks_scanned, result->blocks_scanned);
  EXPECT_EQ(p.blocks_time_pruned + p.blocks_zone_pruned,
            result->blocks_pruned);
  EXPECT_EQ(p.rows_scanned, result->rows_scanned);
  EXPECT_EQ(p.rows_matched, result->rows_matched);
  EXPECT_GT(p.rows_scanned, 0u);
  EXPECT_GT(p.bytes_decoded, 0u);
  EXPECT_GE(p.prune_micros, 0);
}

TEST(ExecutorProfile, ZonePruneCountedSeparately) {
  std::unique_ptr<Table> table = BuildTable();
  Query q;
  q.table = "service_logs";
  // Wide-open time range; the predicate is on the time COLUMN, so only
  // the zone maps prune.
  q.predicates = {
      {kTimeColumnName, CompareOp::kGe, Value(TableMaxTime(*table) - 1)}};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->profile().blocks_time_pruned, 0u);
  EXPECT_GT(result->profile().blocks_zone_pruned, 0u);
}

TEST(ExecutorProfile, CountersBitIdenticalAcrossThreadCounts) {
  std::unique_ptr<Table> table = BuildTable();
  Query q;
  q.table = "service_logs";
  q.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms")};

  auto baseline = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(baseline.ok());
  const QueryProfile& want = baseline->profile();

  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (ThreadPool* pool : {&pool2, &pool8}) {
    LeafExecutor::ExecOptions options;
    options.pool = pool;
    auto result = LeafExecutor::Execute(*table, q, options);
    ASSERT_TRUE(result.ok());
    const QueryProfile& got = result->profile();
    EXPECT_EQ(got.blocks_scanned, want.blocks_scanned);
    EXPECT_EQ(got.blocks_time_pruned, want.blocks_time_pruned);
    EXPECT_EQ(got.blocks_zone_pruned, want.blocks_zone_pruned);
    EXPECT_EQ(got.rows_scanned, want.rows_scanned);
    EXPECT_EQ(got.rows_matched, want.rows_matched);
    EXPECT_EQ(got.bytes_decoded, want.bytes_decoded);
  }
}

TEST(ExecutorProfile, QueryIdStampedFromContext) {
  std::unique_ptr<Table> table = BuildTable();
  Query q;
  q.table = "service_logs";
  q.aggregates = {Count()};
  QueryContext ctx;
  ctx.query_id = 4711;
  LeafExecutor::ExecOptions options;
  options.ctx = &ctx;
  auto result = LeafExecutor::Execute(*table, q, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profile().query_id, 4711u);
}

TEST(QueryContextTest, NextQueryIdMonotoneNonZero) {
  uint64_t a = NextQueryId();
  uint64_t b = NextQueryId();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

TEST(QueryFingerprint, ShapeNotLiterals) {
  Query a;
  a.table = "events";
  a.predicates = {{"status", CompareOp::kGe, Value(int64_t{500})}};
  a.group_by = {"service"};
  a.aggregates = {Count(), Avg("latency_ms")};
  Query b = a;
  b.predicates[0].literal = Value(int64_t{200});  // literal differs
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  Query c = a;
  c.predicates[0].column = "other";
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_NE(a.Fingerprint().find("events"), std::string::npos);
  EXPECT_NE(a.Fingerprint().find("status"), std::string::npos);
}

}  // namespace
}  // namespace scuba
