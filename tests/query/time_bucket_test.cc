// Time-bucketed grouping: the per-minute dashboard series.

#include <gtest/gtest.h>

#include "query/executor.h"
#include "server/aggregator.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::ShmNamespace;
using testing_util::TempDir;

Row EventAt(int64_t time, const std::string& svc = "web") {
  Row row;
  row.SetTime(time);
  row.Set("service", svc);
  row.Set("latency_ms", 1.0);
  return row;
}

TEST(TimeBucketTest, CountsPerBucket) {
  Table table("events");
  // 3 events in [0,60), 2 in [60,120), 1 in [180,240).
  std::vector<Row> rows = {EventAt(5),   EventAt(10), EventAt(59),
                           EventAt(60),  EventAt(119), EventAt(185)};
  ASSERT_TRUE(table.AddRows(rows, 0).ok());

  Query q;
  q.table = "events";
  q.time_bucket_seconds = 60;
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 3u);
  // Chronological order via the order-preserving int key encoding.
  EXPECT_EQ(std::get<int64_t>(out[0].group_key[0]), 0);
  EXPECT_EQ(out[0].aggregates[0], 3.0);
  EXPECT_EQ(std::get<int64_t>(out[1].group_key[0]), 60);
  EXPECT_EQ(out[1].aggregates[0], 2.0);
  EXPECT_EQ(std::get<int64_t>(out[2].group_key[0]), 180);
  EXPECT_EQ(out[2].aggregates[0], 1.0);
}

TEST(TimeBucketTest, BucketComposesWithGroupBy) {
  Table table("events");
  std::vector<Row> rows = {EventAt(5, "web"), EventAt(10, "api"),
                           EventAt(65, "web"), EventAt(70, "web")};
  ASSERT_TRUE(table.AddRows(rows, 0).ok());

  Query q;
  q.table = "events";
  q.time_bucket_seconds = 60;
  q.group_by = {"service"};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 3u);
  // (0, api)=1, (0, web)=1, (60, web)=2; bucket is the FIRST key element.
  EXPECT_EQ(std::get<int64_t>(out[0].group_key[0]), 0);
  EXPECT_EQ(std::get<std::string>(out[0].group_key[1]), "api");
  EXPECT_EQ(std::get<int64_t>(out[2].group_key[0]), 60);
  EXPECT_EQ(out[2].aggregates[0], 2.0);
}

TEST(TimeBucketTest, NegativeTimesFloorConsistently) {
  Table table("events");
  std::vector<Row> rows = {EventAt(-1), EventAt(-60), EventAt(-61),
                           EventAt(0)};
  ASSERT_TRUE(table.AddRows(rows, 0).ok());
  Query q;
  q.table = "events";
  q.begin_time = std::numeric_limits<int64_t>::min();
  q.time_bucket_seconds = 60;
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto out = result->Finalize(q.aggregates);
  // Buckets: [-120,-60) holds -61; [-60,0) holds -60 and -1; [0,60) holds 0.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(out[0].group_key[0]), -120);
  EXPECT_EQ(out[0].aggregates[0], 1.0);
  EXPECT_EQ(std::get<int64_t>(out[1].group_key[0]), -60);
  EXPECT_EQ(out[1].aggregates[0], 2.0);
}

TEST(TimeBucketTest, MergesAcrossLeaves) {
  ShmNamespace ns("tb1");
  TempDir dir("tb1");
  std::vector<std::unique_ptr<LeafServer>> leaves;
  Aggregator aggregator;
  for (uint32_t i = 0; i < 2; ++i) {
    LeafServerConfig config;
    config.leaf_id = i;
    config.namespace_prefix = ns.prefix();
    config.backup_dir = dir.path() + "/leaf_" + std::to_string(i);
    leaves.push_back(std::make_unique<LeafServer>(config));
    ASSERT_TRUE(leaves.back()->Start().ok());
    aggregator.AddLeaf(leaves.back().get());
  }
  // Bucket [0,60): 2 rows on leaf 0, 3 on leaf 1.
  ASSERT_TRUE(leaves[0]->AddRows("events", {EventAt(1), EventAt(2)}).ok());
  ASSERT_TRUE(
      leaves[1]->AddRows("events", {EventAt(3), EventAt(4), EventAt(5)})
          .ok());

  Query q;
  q.table = "events";
  q.time_bucket_seconds = 60;
  q.aggregates = {Count()};
  auto result = aggregator.Execute(q);
  ASSERT_TRUE(result.ok());
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].aggregates[0], 5.0);
}

TEST(TimeBucketTest, ZeroMeansDisabledNegativeRejected) {
  Table table("events");
  ASSERT_TRUE(table.AddRows({EventAt(5)}, 0).ok());
  Query q;
  q.table = "events";
  q.aggregates = {Count()};
  q.time_bucket_seconds = 0;
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Finalize(q.aggregates)[0].group_key.empty());

  q.time_bucket_seconds = -5;
  EXPECT_TRUE(LeafExecutor::Execute(table, q).status().IsInvalidArgument());
}

TEST(TimeBucketTest, PercentilePerBucket) {
  Table table("events");
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    Row row;
    row.SetTime(i < 50 ? 10 : 70);             // two buckets
    row.Set("latency_ms", i < 50 ? 5.0 : 50.0);  // distinct latencies
    rows.push_back(row);
  }
  ASSERT_TRUE(table.AddRows(rows, 0).ok());
  Query q;
  q.table = "events";
  q.time_bucket_seconds = 60;
  q.aggregates = {P50("latency_ms")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto out = result->Finalize(q.aggregates);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0].aggregates[0], 5.0, 0.5);
  EXPECT_NEAR(out[1].aggregates[0], 50.0, 5.0);
}

}  // namespace
}  // namespace scuba
