// Differential fuzz for the compressed-domain (packed) scan kernels: for
// every bit width 1..64, every CompareOp, and every SIMD tier the build
// carries, FilterPackedU64 / FilterPackedByBitmap / ExtractPackedLane must
// be bit-identical to unpacking the lanes and running the scalar oracle.
// This is the executable form of the SIMD/scalar equivalence contract in
// DESIGN.md §3: a SIMD kernel may only ever be faster, never different.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "compress/bitpack.h"
#include "query/scan_kernels.h"
#include "util/byte_buffer.h"

namespace scuba {
namespace {

using scan::SelVector;

constexpr CompareOp kAllOps[] = {
    CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,       CompareOp::kLe,
    CompareOp::kGt, CompareOp::kGe, CompareOp::kContains, CompareOp::kPrefix,
};

// Unsigned-domain scalar oracle (the packed kernels compare raw lanes:
// dictionary codes and zigzag deltas are unsigned). kContains/kPrefix have
// no numeric meaning and clear the selection, same as the kernel contract.
void OracleFilter(CompareOp op, const std::vector<uint64_t>& values,
                  uint64_t literal, SelVector* sel) {
  SelVector out;
  out.reserve(sel->size());
  for (uint32_t row : *sel) {
    uint64_t v = values[row];
    bool keep = false;
    switch (op) {
      case CompareOp::kEq: keep = v == literal; break;
      case CompareOp::kNe: keep = v != literal; break;
      case CompareOp::kLt: keep = v < literal; break;
      case CompareOp::kLe: keep = v <= literal; break;
      case CompareOp::kGt: keep = v > literal; break;
      case CompareOp::kGe: keep = v >= literal; break;
      case CompareOp::kContains:
      case CompareOp::kPrefix: keep = false; break;
    }
    if (keep) out.push_back(row);
  }
  sel->swap(out);
}

uint64_t MaskForWidth(int width) {
  return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

// Every SIMD tier this build can actually reach on this host; the override
// hook clamps levels the CPU lacks, so asking for AVX2 on an SSE2 box
// exercises SSE2 twice rather than skipping.
std::vector<int> TestableLevels() { return {0, 1, 2}; }

struct PackedStream {
  std::vector<uint64_t> values;
  ByteBuffer packed;
  int width = 0;
};

PackedStream MakeStream(std::mt19937_64* rng, int width, size_t count) {
  PackedStream s;
  s.width = width;
  s.values.resize(count);
  uint64_t mask = MaskForWidth(width);
  std::uniform_int_distribution<uint64_t> dist;
  for (size_t i = 0; i < count; ++i) {
    // Mix of random lanes and clustered extremes so Eq/Ne hit duplicates
    // and Lt/Ge hit both boundary values.
    switch (dist(*rng) % 8) {
      case 0: s.values[i] = 0; break;
      case 1: s.values[i] = mask; break;
      case 2: s.values[i] = 1 & mask; break;
      default: s.values[i] = dist(*rng) & mask; break;
    }
  }
  bitpack::Pack(s.values, width, &s.packed);
  return s;
}

// Selections that stress the kernels' word-boundary handling: full, empty,
// sparse strides, a dense random subset, and a run straddling the 64-lane
// mark where the SIMD paths switch batches.
std::vector<SelVector> MakeSelections(std::mt19937_64* rng, size_t count) {
  std::vector<SelVector> sels;
  SelVector full(count);
  for (size_t i = 0; i < count; ++i) full[i] = static_cast<uint32_t>(i);
  sels.push_back(full);
  sels.push_back(SelVector{});
  SelVector stride;
  for (size_t i = 0; i < count; i += 3) stride.push_back(static_cast<uint32_t>(i));
  sels.push_back(std::move(stride));
  SelVector random_subset;
  std::uniform_int_distribution<int> coin(0, 3);
  for (size_t i = 0; i < count; ++i) {
    if (coin(*rng) != 0) random_subset.push_back(static_cast<uint32_t>(i));
  }
  sels.push_back(std::move(random_subset));
  if (count > 70) {
    SelVector straddle;
    for (size_t i = 60; i < 70; ++i) straddle.push_back(static_cast<uint32_t>(i));
    sels.push_back(std::move(straddle));
  }
  return sels;
}

TEST(PackedKernelFuzz, FilterMatchesOracleAllWidthsOpsAndLevels) {
  std::mt19937_64 rng(0x5c0ba);
  // Counts around the mini-block size (128) and packed-word boundaries.
  const size_t counts[] = {1, 63, 64, 65, 127, 128, 129, 300};
  for (int width = 1; width <= 64; ++width) {
    size_t count = counts[static_cast<size_t>(width) % 8];
    PackedStream s = MakeStream(&rng, width, count);
    std::vector<SelVector> sels = MakeSelections(&rng, count);
    uint64_t mask = MaskForWidth(width);
    std::uniform_int_distribution<uint64_t> dist;
    const uint64_t literals[] = {0, 1 & mask, mask, dist(rng) & mask,
                                 s.values[count / 2]};
    for (int level : TestableLevels()) {
      scan::SetSimdLevelOverrideForTest(level);
      for (CompareOp op : kAllOps) {
        for (const SelVector& base : sels) {
          for (uint64_t literal : literals) {
            SelVector got = base;
            scan::FilterPackedU64(op, s.packed.data(), s.packed.size(),
                                  width, count, literal, &got);
            SelVector want = base;
            OracleFilter(op, s.values, literal, &want);
            ASSERT_EQ(got, want)
                << "width " << width << " op " << static_cast<int>(op)
                << " literal " << literal << " level " << level
                << " selsize " << base.size();
          }
        }
      }
    }
  }
  scan::SetSimdLevelOverrideForTest(-1);
}

TEST(PackedKernelFuzz, BitmapFilterMatchesOracleAndDropsCorruptCodes) {
  std::mt19937_64 rng(99);
  for (int width : {1, 3, 7, 8, 11, 12, 16, 21, 32}) {
    const size_t count = 257;
    PackedStream s = MakeStream(&rng, width, count);
    // keep table deliberately SMALLER than the code domain, so some lanes
    // index past it: those must drop out, not read out of bounds.
    size_t dict_size = std::min<uint64_t>(MaskForWidth(width), 37) + 1;
    std::vector<uint8_t> keep(dict_size / 2 + 1);
    std::uniform_int_distribution<int> coin(0, 1);
    for (auto& k : keep) k = static_cast<uint8_t>(coin(rng));
    std::vector<SelVector> sels = MakeSelections(&rng, count);
    for (int level : TestableLevels()) {
      scan::SetSimdLevelOverrideForTest(level);
      for (const SelVector& base : sels) {
        SelVector got = base;
        scan::FilterPackedByBitmap(s.packed.data(), s.packed.size(), width,
                                   count, keep, &got);
        SelVector want;
        for (uint32_t row : base) {
          uint64_t code = s.values[row];
          if (code < keep.size() && keep[code] != 0) want.push_back(row);
        }
        ASSERT_EQ(got, want) << "width " << width << " level " << level;
      }
    }
  }
  scan::SetSimdLevelOverrideForTest(-1);
}

TEST(PackedKernelFuzz, ExtractPackedLaneMatchesUnpack) {
  std::mt19937_64 rng(7);
  for (int width = 1; width <= 64; ++width) {
    const size_t count = 130;
    PackedStream s = MakeStream(&rng, width, count);
    std::vector<uint64_t> unpacked;
    ASSERT_TRUE(bitpack::Unpack(Slice(s.packed.data(), s.packed.size()),
                                width, count, &unpacked)
                    .ok());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(scan::ExtractPackedLane(s.packed.data(), s.packed.size(),
                                        width, i),
                unpacked[i])
          << "width " << width << " index " << i;
    }
  }
}

// The test override can only lower the tier, never raise it past what the
// CPU supports — and -1 restores auto-detection. (The SCUBA_FORCE_SCALAR
// env knob is read once at process start; the ci gate exercises it by
// launching the whole query suite with it set.)
TEST(PackedKernelFuzz, OverrideClampsToDetectedLevel) {
  scan::SetSimdLevelOverrideForTest(-1);
  scan::SimdLevel natural = scan::ActiveSimdLevel();
  scan::SetSimdLevelOverrideForTest(0);
  EXPECT_EQ(scan::ActiveSimdLevel(), scan::SimdLevel::kScalar);
  scan::SetSimdLevelOverrideForTest(2);
  EXPECT_LE(static_cast<int>(scan::ActiveSimdLevel()),
            static_cast<int>(natural));
  scan::SetSimdLevelOverrideForTest(-1);
  EXPECT_EQ(scan::ActiveSimdLevel(), natural);
}

}  // namespace
}  // namespace scuba
