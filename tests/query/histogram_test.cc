#include "query/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace scuba {
namespace {

// The histogram's bucket ratio bounds its relative error.
constexpr double kRelTolerance = 0.08;

void ExpectNear(double actual, double expected) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * kRelTolerance + 1e-6)
      << "actual " << actual << " expected " << expected;
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.ValueAtPercentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    ExpectNear(h.ValueAtPercentile(p), 42.0);
  }
}

TEST(HistogramTest, UniformValuesHitExactQuantiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  ExpectNear(h.ValueAtPercentile(50), 500.0);
  ExpectNear(h.ValueAtPercentile(90), 900.0);
  ExpectNear(h.ValueAtPercentile(99), 990.0);
  ExpectNear(h.ValueAtPercentile(100), 1000.0);
}

TEST(HistogramTest, SkewedDistribution) {
  // 99% fast (about 2ms), 1% slow (about 800ms): p50 near 2, p99 near the
  // boundary, p99.9-ish far out.
  Histogram h;
  Random random(5);
  for (int i = 0; i < 100000; ++i) {
    h.Add(random.Bernoulli(0.01) ? 800.0 : 2.0);
  }
  ExpectNear(h.ValueAtPercentile(50), 2.0);
  ExpectNear(h.ValueAtPercentile(98), 2.0);
  ExpectNear(h.ValueAtPercentile(99.5), 800.0);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdges) {
  Histogram h;
  h.Add(-5.0);
  h.Add(0.0);
  h.Add(1e300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LT(h.ValueAtPercentile(10), 0.01);
  EXPECT_GT(h.ValueAtPercentile(99), 1e8);
}

TEST(HistogramTest, MergeEqualsUnion) {
  Histogram a, b, whole;
  Random random(7);
  for (int i = 0; i < 5000; ++i) {
    double v = std::exp(random.NextDouble() * 8.0);
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    whole.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.ValueAtPercentile(p), whole.ValueAtPercentile(p))
        << p;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Add(3.0);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  ExpectNear(empty.ValueAtPercentile(50), 3.0);
}

TEST(HistogramTest, MergeIsCommutativeAndAssociative) {
  auto fill = [](uint64_t seed, int n) {
    Histogram h;
    Random random(seed);
    for (int i = 0; i < n; ++i) h.Add(1.0 + random.Uniform(10000));
    return h;
  };
  Histogram a = fill(1, 300), b = fill(2, 500), c = fill(3, 700);

  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);
  EXPECT_DOUBLE_EQ(ab.ValueAtPercentile(75), ba.ValueAtPercentile(75));

  Histogram ab_c = ab;
  ab_c.Merge(c);
  Histogram bc = b;
  bc.Merge(c);
  Histogram a_bc = a;
  a_bc.Merge(bc);
  EXPECT_DOUBLE_EQ(ab_c.ValueAtPercentile(75), a_bc.ValueAtPercentile(75));
}

// Property: against a sorted reference, the histogram percentile is within
// one bucket ratio for log-uniform data across the full range.
class HistogramAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramAccuracyTest, WithinRelativeTolerance) {
  double p = GetParam();
  Histogram h;
  std::vector<double> values;
  Random random(11);
  for (int i = 0; i < 50000; ++i) {
    double v = 1e-2 * std::exp(random.NextDouble() * 18.0);  // 1e-2..1e6
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  rank = std::max<size_t>(rank, 1);
  double expected = values[rank - 1];
  ExpectNear(h.ValueAtPercentile(p), expected);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, HistogramAccuracyTest,
                         ::testing::Values(1.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0, 99.0, 99.9));

}  // namespace
}  // namespace scuba
