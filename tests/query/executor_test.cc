#include "query/executor.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace scuba {
namespace {

// A table with known contents:
//   block 1: t in [100, 109], service web/api alternating, status 200,
//            latency = t - 100
//   block 2: t in [200, 209], all service "web", status 500, latency 9.5
std::unique_ptr<Table> MakeTestTable() {
  auto table_ptr = std::make_unique<Table>("requests");
  Table& table = *table_ptr;
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    Row row;
    row.SetTime(100 + i);
    row.Set("service", std::string(i % 2 == 0 ? "web" : "api"));
    row.Set("status", int64_t{200});
    row.Set("latency_ms", static_cast<double>(i));
    rows.push_back(row);
  }
  EXPECT_TRUE(table.AddRows(rows, 0).ok());
  EXPECT_TRUE(table.SealWriteBuffer(0).ok());

  rows.clear();
  for (int i = 0; i < 10; ++i) {
    Row row;
    row.SetTime(200 + i);
    row.Set("service", std::string("web"));
    row.Set("status", int64_t{500});
    row.Set("latency_ms", 9.5);
    rows.push_back(row);
  }
  EXPECT_TRUE(table.AddRows(rows, 0).ok());
  EXPECT_TRUE(table.SealWriteBuffer(0).ok());
  return table_ptr;
}

Query CountAll() {
  Query q;
  q.table = "requests";
  q.aggregates = {Count()};
  return q;
}

TEST(ExecutorTest, CountAllRows) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  auto result = LeafExecutor::Execute(table, CountAll());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->Finalize({Count()});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggregates[0], 20.0);
  EXPECT_EQ(result->rows_scanned, 20u);
  EXPECT_EQ(result->rows_matched, 20u);
}

TEST(ExecutorTest, TimeRangePrunesBlocks) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q = CountAll();
  q.begin_time = 200;
  q.end_time = 205;
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  // Block 1 [100,109] is pruned without decoding (§2.1).
  EXPECT_EQ(result->blocks_pruned, 1u);
  EXPECT_EQ(result->blocks_scanned, 1u);
  EXPECT_EQ(result->rows_scanned, 10u);  // only block 2 decoded
  auto rows = result->Finalize({Count()});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggregates[0], 6.0);  // t in {200..205}
}

TEST(ExecutorTest, StringPredicate) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q = CountAll();
  q.predicates = {{"service", CompareOp::kEq, Value(std::string("api"))}};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize({Count()});
  EXPECT_EQ(rows[0].aggregates[0], 5.0);  // 5 api rows in block 1
}

TEST(ExecutorTest, IntComparisons) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  for (auto [op, expected] :
       std::vector<std::pair<CompareOp, double>>{{CompareOp::kEq, 10.0},
                                                 {CompareOp::kNe, 10.0},
                                                 {CompareOp::kLt, 10.0},
                                                 {CompareOp::kLe, 20.0},
                                                 {CompareOp::kGt, 0.0},
                                                 {CompareOp::kGe, 10.0}}) {
    Query q = CountAll();
    q.predicates = {{"status", op, Value(int64_t{500})}};
    auto result = LeafExecutor::Execute(table, q);
    ASSERT_TRUE(result.ok());
    auto rows = result->Finalize({Count()});
    double got = rows.empty() ? 0.0 : rows[0].aggregates[0];
    EXPECT_EQ(got, expected) << CompareOpName(op);
  }
}

TEST(ExecutorTest, GroupByWithAggregates) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q;
  q.table = "requests";
  q.group_by = {"service"};
  q.aggregates = {Count(), Avg("latency_ms"), Max("latency_ms")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize(q.aggregates);
  ASSERT_EQ(rows.size(), 2u);  // api, web (ordered by key)
  // "api": 5 rows, latencies 1,3,5,7,9 -> avg 5, max 9.
  EXPECT_EQ(std::get<std::string>(rows[0].group_key[0]), "api");
  EXPECT_EQ(rows[0].aggregates[0], 5.0);
  EXPECT_DOUBLE_EQ(rows[0].aggregates[1], 5.0);
  EXPECT_EQ(rows[0].aggregates[2], 9.0);
  // "web": 5 rows from block 1 (0,2,4,6,8) + 10 rows at 9.5.
  EXPECT_EQ(std::get<std::string>(rows[1].group_key[0]), "web");
  EXPECT_EQ(rows[1].aggregates[0], 15.0);
  EXPECT_DOUBLE_EQ(rows[1].aggregates[2], 9.5);
}

TEST(ExecutorTest, SumMinOverInts) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q;
  q.table = "requests";
  q.aggregates = {Sum("status"), Min("status")};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize(q.aggregates);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggregates[0], 10 * 200.0 + 10 * 500.0);
  EXPECT_EQ(rows[0].aggregates[1], 200.0);
}

TEST(ExecutorTest, SeesUnsealedBufferedRows) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  // 3 more rows still in the write buffer.
  std::vector<Row> extra;
  for (int i = 0; i < 3; ++i) {
    Row row;
    row.SetTime(300 + i);
    row.Set("service", std::string("cache"));
    row.Set("status", int64_t{200});
    row.Set("latency_ms", 1.0);
    extra.push_back(row);
  }
  ASSERT_TRUE(table.AddRows(extra, 0).ok());
  ASSERT_GT(table.write_buffer().row_count(), 0u);

  auto result = LeafExecutor::Execute(table, CountAll());
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize({Count()});
  EXPECT_EQ(rows[0].aggregates[0], 23.0);
}

TEST(ExecutorTest, MissingColumnReadsAsDefault) {
  Table table("t");
  std::vector<Row> rows;
  for (int i = 0; i < 5; ++i) {
    Row row;
    row.SetTime(10 + i);
    rows.push_back(row);  // no "status" column anywhere
  }
  ASSERT_TRUE(table.AddRows(rows, 0).ok());
  ASSERT_TRUE(table.SealWriteBuffer(0).ok());

  Query q;
  q.table = "t";
  q.predicates = {{"status", CompareOp::kEq, Value(int64_t{0})}};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto out = result->Finalize({Count()});
  EXPECT_EQ(out[0].aggregates[0], 5.0);  // default 0 matches == 0
}

TEST(ExecutorTest, PredicateTypeMismatchFails) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q = CountAll();
  q.predicates = {{"status", CompareOp::kEq, Value(std::string("200"))}};
  EXPECT_TRUE(
      LeafExecutor::Execute(table, q).status().IsInvalidArgument());
}

TEST(ExecutorTest, AggregateOverStringFails) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q;
  q.table = "requests";
  q.aggregates = {Sum("service")};
  EXPECT_TRUE(
      LeafExecutor::Execute(table, q).status().IsInvalidArgument());
}

TEST(ExecutorTest, ValidationErrors) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query no_aggs;
  no_aggs.table = "requests";
  EXPECT_TRUE(
      LeafExecutor::Execute(table, no_aggs).status().IsInvalidArgument());

  Query bad_range = CountAll();
  bad_range.begin_time = 10;
  bad_range.end_time = 5;
  EXPECT_TRUE(
      LeafExecutor::Execute(table, bad_range).status().IsInvalidArgument());
}

TEST(ExecutorTest, GroupByIntAndDoubleKeys) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q;
  q.table = "requests";
  q.group_by = {"status"};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize(q.aggregates);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(rows[0].group_key[0]), 200);
  EXPECT_EQ(std::get<int64_t>(rows[1].group_key[0]), 500);
}

TEST(ExecutorTest, LimitCapsGroups) {
  auto table_ptr = MakeTestTable();
  Table& table = *table_ptr;
  Query q;
  q.table = "requests";
  q.group_by = {"time"};  // 20 distinct times
  q.aggregates = {Count()};
  q.limit = 5;
  auto result = LeafExecutor::Execute(table, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 20u);
  EXPECT_EQ(result->Finalize(q.aggregates, q.limit).size(), 5u);
}

}  // namespace
}  // namespace scuba
