// Filter-before-decode equivalence: queries whose predicates run on the
// packed bytes (dict-code bitmap filters, mini-block zone pruning, partial
// materialization of survivors) must produce exactly the scalar engine's
// results at every SIMD tier — blocks_pruned may differ, rows and groups
// may not.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "query/executor.h"
#include "query/scan_kernels.h"

namespace scuba {
namespace {

// One sealed 300-row block (3 mini-blocks v2, the last one partial):
// `seq` ascending with jitter (delta+zigzag+mbpack chain), `shard` from a
// small domain (dict+bitpack chain), `noise` wide random (tests the
// fallback when dict overflows never happens here but values span words).
void AddBlock(Table* table, std::mt19937_64* rng, int64_t time_base,
              int64_t seq_base) {
  std::uniform_int_distribution<int64_t> jitter(-5, 5);
  std::uniform_int_distribution<int64_t> wide(-1'000'000'000LL,
                                              1'000'000'000LL);
  std::vector<Row> batch;
  for (int64_t i = 0; i < 300; ++i) {
    Row row;
    row.SetTime(time_base + i / 4);
    row.Set("seq", seq_base + i * 3 + jitter(*rng));
    row.Set("shard", (seq_base / 1000 + i) % 7);
    row.Set("noise", wide(*rng));
    batch.push_back(std::move(row));
  }
  ASSERT_TRUE(table->AddRows(batch, 0).ok());
  ASSERT_TRUE(table->SealWriteBuffer(0).ok());
}

void ExpectSameResults(const Table& table, const Query& q,
                       const char* label) {
  auto scalar = LeafExecutor::ExecuteScalar(table, q);
  ASSERT_TRUE(scalar.ok()) << label << ": " << scalar.status().ToString();
  for (int level : {0, 1, 2}) {
    scan::SetSimdLevelOverrideForTest(level);
    auto vec = LeafExecutor::Execute(table, q);
    ASSERT_TRUE(vec.ok()) << label << ": " << vec.status().ToString();
    EXPECT_EQ(vec->rows_matched, scalar->rows_matched)
        << label << " level " << level;
    auto vrows = vec->Finalize(q.aggregates);
    auto srows = scalar->Finalize(q.aggregates);
    ASSERT_EQ(vrows.size(), srows.size()) << label << " level " << level;
    for (size_t r = 0; r < vrows.size(); ++r) {
      EXPECT_EQ(vrows[r].group_key, srows[r].group_key) << label;
      ASSERT_EQ(vrows[r].aggregates.size(), srows[r].aggregates.size());
      for (size_t c = 0; c < vrows[r].aggregates.size(); ++c) {
        EXPECT_DOUBLE_EQ(vrows[r].aggregates[c], srows[r].aggregates[c])
            << label << " level " << level << " row " << r;
      }
    }
  }
  scan::SetSimdLevelOverrideForTest(-1);
}

class PackedScanTest : public ::testing::Test {
 protected:
  PackedScanTest() : table_("t") {
    std::mt19937_64 rng(11);
    for (int b = 0; b < 4; ++b) {
      AddBlock(&table_, &rng, 1000 + b * 100, b * 10000);
    }
    // Plus an unsealed write-buffer tail, which must take the decoded path.
    std::vector<Row> tail;
    for (int64_t i = 0; i < 40; ++i) {
      Row row;
      row.SetTime(1400 + i);
      row.Set("seq", int64_t{40000 + i});
      row.Set("shard", i % 7);
      row.Set("noise", i * 12345);
      tail.push_back(std::move(row));
    }
    if (!table_.AddRows(tail, 0).ok()) std::abort();
  }

  Table table_;
};

TEST_F(PackedScanTest, DictCodeFilterAllOps) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    Query q;
    q.table = "t";
    q.predicates = {{"shard", op, Value(int64_t{3})}};
    q.aggregates = {Count(), Sum("seq")};
    ExpectSameResults(table_, q, "dict_filter");
  }
}

TEST_F(PackedScanTest, MiniBlockFilterPrunesAndDecodesPartially) {
  for (int64_t literal : {int64_t{0}, int64_t{15000}, int64_t{90000}}) {
    Query q;
    q.table = "t";
    q.predicates = {{"seq", CompareOp::kGe, Value(literal)}};
    q.group_by = {"shard"};
    q.aggregates = {Count(), Avg("noise")};
    ExpectSameResults(table_, q, "miniblock_ge");
  }
}

TEST_F(PackedScanTest, PackedTimeRangeSelectsAcrossMiniBlocks) {
  Query q;
  q.table = "t";
  q.begin_time = 1105;  // straddles block 1's mini-blocks
  q.end_time = 1320;
  q.aggregates = {Count()};
  ExpectSameResults(table_, q, "time_range");
}

TEST_F(PackedScanTest, BucketedQueryDecodesSurvivorTimesLazily) {
  Query q;
  q.table = "t";
  q.time_bucket_seconds = 50;
  q.predicates = {{"seq", CompareOp::kLt, Value(int64_t{20000})},
                  {"shard", CompareOp::kNe, Value(int64_t{0})}};
  q.aggregates = {Count(), Avg("seq")};
  ExpectSameResults(table_, q, "bucketed");
}

TEST_F(PackedScanTest, ChainedPredicatesShrinkSelection) {
  Query q;
  q.table = "t";
  q.predicates = {{"seq", CompareOp::kGe, Value(int64_t{5000})},
                  {"seq", CompareOp::kLe, Value(int64_t{25000})},
                  {"shard", CompareOp::kEq, Value(int64_t{2})},
                  {"noise", CompareOp::kGt, Value(int64_t{0})}};
  q.group_by = {"shard"};
  q.aggregates = {Count(), Sum("noise")};
  ExpectSameResults(table_, q, "chained");
}

TEST_F(PackedScanTest, EmptySelectionShortCircuits) {
  Query q;
  q.table = "t";
  q.predicates = {{"seq", CompareOp::kGt, Value(int64_t{1'000'000'000})},
                  {"shard", CompareOp::kEq, Value(int64_t{1})}};
  q.aggregates = {Count()};
  ExpectSameResults(table_, q, "empty_sel");
}

}  // namespace
}  // namespace scuba
