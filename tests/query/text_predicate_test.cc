// Text predicates (contains / prefix) — Scuba's free-text log filters.

#include <gtest/gtest.h>

#include "query/executor.h"

namespace scuba {
namespace {

std::unique_ptr<Table> MakeLogTable() {
  auto table = std::make_unique<Table>("logs");
  const char* messages[] = {
      "upstream timeout after retry",
      "connection refused by 10.0.0.1",
      "timeout waiting for lock",
      "request ok",
      "TIMEOUT (uppercase)",
  };
  std::vector<Row> rows;
  int64_t t = 100;
  for (const char* msg : messages) {
    Row row;
    row.SetTime(t++);
    row.Set("msg", std::string(msg));
    row.Set("endpoint", std::string("/api/v2/users"));
    rows.push_back(row);
  }
  {
    Row row;
    row.SetTime(t++);
    row.Set("msg", std::string("static asset served"));
    row.Set("endpoint", std::string("/static/logo.png"));
    rows.push_back(row);
  }
  EXPECT_TRUE(table->AddRows(rows, 0).ok());
  EXPECT_TRUE(table->SealWriteBuffer(0).ok());
  return table;
}

double CountWhere(const Table& table, Predicate pred) {
  Query q;
  q.table = "logs";
  q.predicates = {std::move(pred)};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(table, q);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->Finalize(q.aggregates);
  return rows.empty() ? 0.0 : rows[0].aggregates[0];
}

TEST(TextPredicateTest, ContainsIsCaseSensitiveSubstring) {
  auto table = MakeLogTable();
  EXPECT_EQ(CountWhere(*table, {"msg", CompareOp::kContains,
                                Value(std::string("timeout"))}),
            2.0);
  EXPECT_EQ(CountWhere(*table, {"msg", CompareOp::kContains,
                                Value(std::string("TIMEOUT"))}),
            1.0);
  EXPECT_EQ(CountWhere(*table, {"msg", CompareOp::kContains,
                                Value(std::string("nope"))}),
            0.0);
}

TEST(TextPredicateTest, EmptyNeedleMatchesEverything) {
  auto table = MakeLogTable();
  EXPECT_EQ(CountWhere(*table, {"msg", CompareOp::kContains,
                                Value(std::string(""))}),
            6.0);
  EXPECT_EQ(CountWhere(*table, {"msg", CompareOp::kPrefix,
                                Value(std::string(""))}),
            6.0);
}

TEST(TextPredicateTest, PrefixAnchorsAtStart) {
  auto table = MakeLogTable();
  EXPECT_EQ(CountWhere(*table, {"endpoint", CompareOp::kPrefix,
                                Value(std::string("/api/"))}),
            5.0);
  EXPECT_EQ(CountWhere(*table, {"endpoint", CompareOp::kPrefix,
                                Value(std::string("/static/"))}),
            1.0);
  // "timeout" appears mid-string in one message, at the start of another.
  EXPECT_EQ(CountWhere(*table, {"msg", CompareOp::kPrefix,
                                Value(std::string("timeout"))}),
            1.0);
}

TEST(TextPredicateTest, ComposesWithOtherPredicatesAndGroups) {
  auto table = MakeLogTable();
  Query q;
  q.table = "logs";
  q.predicates = {{"msg", CompareOp::kContains, Value(std::string("timeout"))},
                  {"endpoint", CompareOp::kPrefix,
                   Value(std::string("/api/"))}};
  q.group_by = {"endpoint"};
  q.aggregates = {Count()};
  auto result = LeafExecutor::Execute(*table, q);
  ASSERT_TRUE(result.ok());
  auto rows = result->Finalize(q.aggregates);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggregates[0], 2.0);
}

TEST(TextPredicateTest, NonStringColumnRejected) {
  auto table = MakeLogTable();
  Query q;
  q.table = "logs";
  q.predicates = {{"time", CompareOp::kContains, Value(std::string("1"))}};
  q.aggregates = {Count()};
  EXPECT_TRUE(LeafExecutor::Execute(*table, q).status().IsInvalidArgument());
}

TEST(TextPredicateTest, NonStringLiteralRejected) {
  auto table = MakeLogTable();
  Query q;
  q.table = "logs";
  q.predicates = {{"msg", CompareOp::kPrefix, Value(int64_t{7})}};
  q.aggregates = {Count()};
  EXPECT_TRUE(LeafExecutor::Execute(*table, q).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
