#include "query/result.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

QueryResult::Sample SampleOf(double v) { return {v, true}; }
QueryResult::Sample CountSample() { return {0.0, false}; }

TEST(AggPartialTest, AccumulatesAndFinalizes) {
  AggPartial p;
  p.AddSample(3.0);
  p.AddSample(1.0);
  p.AddSample(8.0);
  EXPECT_EQ(p.Finalize(AggregateOp::kCount), 3.0);
  EXPECT_EQ(p.Finalize(AggregateOp::kSum), 12.0);
  EXPECT_EQ(p.Finalize(AggregateOp::kMin), 1.0);
  EXPECT_EQ(p.Finalize(AggregateOp::kMax), 8.0);
  EXPECT_EQ(p.Finalize(AggregateOp::kAvg), 4.0);
}

TEST(AggPartialTest, EmptyAvgIsZero) {
  AggPartial p;
  EXPECT_EQ(p.Finalize(AggregateOp::kAvg), 0.0);
}

TEST(AggPartialTest, MergeComposesLikeSingleStream) {
  AggPartial a, b, whole;
  for (double v : {5.0, -2.0, 7.0}) {
    a.AddSample(v);
    whole.AddSample(v);
  }
  for (double v : {100.0, -50.0}) {
    b.AddSample(v);
    whole.AddSample(v);
  }
  a.Merge(b);
  for (AggregateOp op : {AggregateOp::kCount, AggregateOp::kSum,
                         AggregateOp::kMin, AggregateOp::kMax,
                         AggregateOp::kAvg}) {
    EXPECT_EQ(a.Finalize(op), whole.Finalize(op));
  }
}

TEST(AggPartialTest, MergeWithEmptyIsIdentity) {
  AggPartial a;
  a.AddSample(4.0);
  AggPartial empty;
  a.Merge(empty);
  EXPECT_EQ(a.Finalize(AggregateOp::kMin), 4.0);
  empty.Merge(a);
  EXPECT_EQ(empty.Finalize(AggregateOp::kMax), 4.0);
}

TEST(QueryResultTest, GroupsAccumulateByKey) {
  QueryResult result(1);
  result.Accumulate({Value(std::string("web"))}, {SampleOf(1.0)});
  result.Accumulate({Value(std::string("api"))}, {SampleOf(2.0)});
  result.Accumulate({Value(std::string("web"))}, {SampleOf(3.0)});
  EXPECT_EQ(result.num_groups(), 2u);
  auto rows = result.Finalize({Sum("x")});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rows[0].group_key[0]), "api");
  EXPECT_EQ(rows[0].aggregates[0], 2.0);
  EXPECT_EQ(rows[1].aggregates[0], 4.0);
}

TEST(QueryResultTest, IntKeysOrderNumerically) {
  QueryResult result(1);
  for (int64_t key : {500, -3, 200, 0}) {
    result.Accumulate({Value(key)}, {CountSample()});
  }
  auto rows = result.Finalize({Count()});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(std::get<int64_t>(rows[0].group_key[0]), -3);
  EXPECT_EQ(std::get<int64_t>(rows[1].group_key[0]), 0);
  EXPECT_EQ(std::get<int64_t>(rows[2].group_key[0]), 200);
  EXPECT_EQ(std::get<int64_t>(rows[3].group_key[0]), 500);
}

TEST(QueryResultTest, DoubleKeysOrderNumerically) {
  QueryResult result(1);
  for (double key : {2.5, -1.5, 0.0, 100.25}) {
    result.Accumulate({Value(key)}, {CountSample()});
  }
  auto rows = result.Finalize({Count()});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(std::get<double>(rows[0].group_key[0]), -1.5);
  EXPECT_EQ(std::get<double>(rows[3].group_key[0]), 100.25);
}

TEST(QueryResultTest, CompositeKeys) {
  QueryResult result(1);
  result.Accumulate({Value(std::string("a")), Value(int64_t{1})},
                    {CountSample()});
  result.Accumulate({Value(std::string("a")), Value(int64_t{2})},
                    {CountSample()});
  result.Accumulate({Value(std::string("a")), Value(int64_t{1})},
                    {CountSample()});
  EXPECT_EQ(result.num_groups(), 2u);
}

TEST(QueryResultTest, MergeCombinesGroupsAndStats) {
  QueryResult a(2), b(2);
  a.rows_scanned = 100;
  a.blocks_pruned = 2;
  a.leaves_total = 1;
  a.leaves_responded = 1;
  b.rows_scanned = 50;
  b.leaves_total = 1;
  b.leaves_responded = 1;

  a.Accumulate({Value(std::string("web"))}, {CountSample(), SampleOf(10.0)});
  b.Accumulate({Value(std::string("web"))}, {CountSample(), SampleOf(30.0)});
  b.Accumulate({Value(std::string("db"))}, {CountSample(), SampleOf(5.0)});

  a.Merge(b);
  EXPECT_EQ(a.rows_scanned, 150u);
  EXPECT_EQ(a.blocks_pruned, 2u);
  EXPECT_EQ(a.leaves_total, 2u);
  EXPECT_FALSE(a.IsPartial());

  auto rows = a.Finalize({Count(), Avg("latency")});
  ASSERT_EQ(rows.size(), 2u);
  // "db" first (key order), then "web" with merged avg (10+30)/2.
  EXPECT_EQ(std::get<std::string>(rows[0].group_key[0]), "db");
  EXPECT_EQ(std::get<std::string>(rows[1].group_key[0]), "web");
  EXPECT_EQ(rows[1].aggregates[0], 2.0);
  EXPECT_DOUBLE_EQ(rows[1].aggregates[1], 20.0);
}

TEST(QueryResultTest, PartialFlagReflectsMissingLeaves) {
  QueryResult merged(1);
  merged.leaves_total = 10;
  merged.leaves_responded = 8;
  EXPECT_TRUE(merged.IsPartial());
  merged.leaves_responded = 10;
  EXPECT_FALSE(merged.IsPartial());
}

TEST(QueryResultTest, MergeIntoEmptyAdoptsShape) {
  QueryResult empty;
  QueryResult b(1);
  b.Accumulate({Value(int64_t{1})}, {SampleOf(2.0)});
  empty.Merge(b);
  EXPECT_EQ(empty.num_groups(), 1u);
  auto rows = empty.Finalize({Sum("x")});
  EXPECT_EQ(rows[0].aggregates[0], 2.0);
}

TEST(QueryResultTest, StringKeysWithEmbeddedTerminators) {
  QueryResult result(1);
  result.Accumulate({Value(std::string("ab"))}, {CountSample()});
  result.Accumulate({Value(std::string(std::string("a\0b", 3)))},
                    {CountSample()});
  // Different strings must form different groups despite the NUL.
  EXPECT_EQ(result.num_groups(), 2u);
}

}  // namespace
}  // namespace scuba
