// End-to-end tests of a LeafServer configured with the §6 columnar disk
// format: ingest mirrors sealed blocks + tail, crash recovery takes the
// fast columnar path, and shm recovery still wins when available.

#include <gtest/gtest.h>

#include "server/leaf_server.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

LeafServerConfig MakeConfig(const ShmNamespace& ns, const TempDir& dir) {
  LeafServerConfig config;
  config.leaf_id = 0;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path() + "/leaf_0";
  config.backup_format = BackupFormatKind::kColumnar;
  return config;
}

TEST(ColumnarLeafTest, CrashRecoversFromColumnarBackup) {
  ShmNamespace ns("cl1");
  TempDir dir("cl1");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    // Enough rows to seal a block (65,536) plus a tail.
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(leaf.AddRows("events", MakeRows(8192, 1000 + i)).ok());
    }
    EXPECT_EQ(leaf.RowCount(), 9u * 8192);
    leaf.Crash();
  }
  // .cols file holds the sealed block; tail holds the rest.
  EXPECT_TRUE(FileExists(dir.path() + "/leaf_0/events.cols"));

  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  EXPECT_EQ(started->source, RecoverySource::kDisk);
  EXPECT_EQ(started->columnar_stats.blocks_recovered, 1u);
  EXPECT_EQ(started->columnar_stats.tail_rows_recovered,
            9u * 8192 - 65536);
  EXPECT_EQ(fresh.RowCount(), 9u * 8192);
}

TEST(ColumnarLeafTest, ShmStillPreferredOverColumnarDisk) {
  ShmNamespace ns("cl2");
  TempDir dir("cl2");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(500, 1000)).ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }
  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kSharedMemory);
  EXPECT_EQ(fresh.RowCount(), 500u);
}

TEST(ColumnarLeafTest, SealObserverSurvivesShmRestart) {
  // After an shm restart the new process must keep mirroring seals to the
  // .cols file, resuming the block count K from the file.
  ShmNamespace ns("cl3");
  TempDir dir("cl3");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    for (int i = 0; i < 8; ++i) {  // exactly one sealed block
      ASSERT_TRUE(leaf.AddRows("events", MakeRows(8192, 1000 + i)).ok());
    }
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }
  {
    LeafServer leaf(MakeConfig(ns, dir));
    auto started = leaf.Start();
    ASSERT_TRUE(started.ok());
    ASSERT_EQ(started->source, RecoverySource::kSharedMemory);
    // Another block's worth of rows seals in the NEW process.
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(leaf.AddRows("events", MakeRows(8192, 2000 + i)).ok());
    }
    leaf.Crash();
  }
  // Disk recovery must see BOTH blocks (the shutdown seal from process 1
  // and the ingest seal from process 2).
  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kDisk);
  EXPECT_EQ(started->columnar_stats.blocks_recovered, 2u);
  EXPECT_EQ(fresh.RowCount(), 16u * 8192);
}

TEST(ColumnarLeafTest, CleanShutdownFlushesTailViaSeal) {
  // PREPARE seals the write buffer; the seal observer mirrors it to disk,
  // so even with the shm segments scrubbed (forced disk path) no rows are
  // lost.
  ShmNamespace ns("cl4");
  TempDir dir("cl4");
  {
    LeafServer leaf(MakeConfig(ns, dir));
    ASSERT_TRUE(leaf.Start().ok());
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(777, 1000)).ok());
    ShutdownStats stats;
    ASSERT_TRUE(leaf.ShutdownToSharedMemory(&stats).ok());
  }
  ShmSegment::RemoveAll("/" + ns.prefix());  // lose the shm handoff

  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kDisk);
  EXPECT_EQ(fresh.RowCount(), 777u);
  // The 777 rows were sealed at shutdown, so they come from a block.
  EXPECT_EQ(started->columnar_stats.blocks_recovered, 1u);
  EXPECT_EQ(started->columnar_stats.tail_rows_recovered, 0u);
}

TEST(ColumnarLeafTest, BothFormatsRecoverSameData) {
  ShmNamespace ns("cl5");
  TempDir dir("cl5");
  std::vector<Row> rows = MakeRows(3000, 1000);

  auto run = [&](BackupFormatKind format, uint32_t leaf_id) -> uint64_t {
    LeafServerConfig config;
    config.leaf_id = leaf_id;
    config.namespace_prefix = ns.prefix();
    config.backup_dir =
        dir.path() + "/leaf_" + std::to_string(leaf_id);
    config.backup_format = format;
    {
      LeafServer leaf(config);
      EXPECT_TRUE(leaf.Start().ok());
      EXPECT_TRUE(leaf.AddRows("events", rows).ok());
      leaf.Crash();
    }
    LeafServer fresh(config);
    auto started = fresh.Start();
    EXPECT_TRUE(started.ok());
    EXPECT_EQ(started->source, RecoverySource::kDisk);
    return fresh.RowCount();
  };

  EXPECT_EQ(run(BackupFormatKind::kRowMajor, 1), 3000u);
  EXPECT_EQ(run(BackupFormatKind::kColumnar, 2), 3000u);
}

}  // namespace
}  // namespace scuba
