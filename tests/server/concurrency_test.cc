// Concurrency: adds and queries race a shutdown. The leaf's mutex is the
// drain the paper's PREPARE step describes — every AddRows that returned
// OK must be in shared memory; everything after the state flip gets
// Unavailable; nothing crashes or deadlocks.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/leaf_server.h"
#include "test_util.h"

namespace scuba {
namespace {

using testing_util::MakeRows;
using testing_util::ShmNamespace;
using testing_util::TempDir;

LeafServerConfig MakeConfig(const ShmNamespace& ns, const TempDir& dir,
                            uint32_t leaf_id = 0) {
  LeafServerConfig config;
  config.leaf_id = leaf_id;
  config.namespace_prefix = ns.prefix();
  config.backup_dir = dir.path() + "/leaf_" + std::to_string(leaf_id);
  return config;
}

TEST(ConcurrencyTest, ShutdownDrainsConcurrentAddsExactly) {
  ShmNamespace ns("conc1");
  TempDir dir("conc1");
  auto leaf = std::make_unique<LeafServer>(MakeConfig(ns, dir));
  ASSERT_TRUE(leaf->Start().ok());

  constexpr int kWriters = 3;
  std::atomic<uint64_t> rows_accepted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random random(static_cast<uint64_t>(w) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        size_t n = 1 + random.Uniform(50);
        Status s = leaf->AddRows("events", MakeRows(n, 1000));
        if (s.ok()) {
          rows_accepted.fetch_add(n, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(s.IsUnavailable()) << s.ToString();
          break;  // shutdown won the race
        }
      }
    });
  }

  std::thread reader([&] {
    Query q;
    q.table = "events";
    q.aggregates = {Count()};
    while (!stop.load(std::memory_order_relaxed)) {
      auto result = leaf->ExecuteQuery(q);
      if (!result.ok()) {
        ASSERT_TRUE(result.status().IsUnavailable());
        break;
      }
    }
  });

  // Let the writers get some work in, then pull the plug mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ShutdownStats stats;
  ASSERT_TRUE(leaf->ShutdownToSharedMemory(&stats).ok());
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  reader.join();

  // Post-shutdown the server accepts nothing.
  EXPECT_TRUE(leaf->AddRows("events", MakeRows(1)).IsUnavailable());
  leaf.reset();

  // Every accepted row crossed into the new process — no more, no less.
  LeafServer fresh(MakeConfig(ns, dir));
  auto started = fresh.Start();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->source, RecoverySource::kSharedMemory);
  EXPECT_EQ(fresh.RowCount(), rows_accepted.load());
}

TEST(ConcurrencyTest, ParallelQueriesDuringIngest) {
  ShmNamespace ns("conc2");
  TempDir dir("conc2");
  LeafServer leaf(MakeConfig(ns, dir));
  ASSERT_TRUE(leaf.Start().ok());
  ASSERT_TRUE(leaf.AddRows("events", MakeRows(5000, 1000)).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_run{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Query q;
      q.table = "events";
      q.group_by = {"service"};
      q.aggregates = {Count(), Avg("latency_ms")};
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = leaf.ExecuteQuery(q);
        ASSERT_TRUE(result.ok());
        ASSERT_GT(result->num_groups(), 0u);
        queries_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(leaf.AddRows("events", MakeRows(500, 2000 + i)).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(queries_run.load(), 0u);
  EXPECT_EQ(leaf.RowCount(), 5000u + 20 * 500u);
}

}  // namespace
}  // namespace scuba
